// Command hdvbench is the HD-VideoBench front end: it runs the benchmark
// matrix and regenerates the paper's evaluation artifacts.
//
//	hdvbench -describe             # Tables I-IV: suite composition
//	hdvbench -table5               # Table V: PSNR + bitrate matrix
//	hdvbench -fig1a                # Figure 1(a): decode fps, scalar
//	hdvbench -fig1b                # Figure 1(b): decode fps, SIMD
//	hdvbench -fig1c                # Figure 1(c): encode fps, scalar
//	hdvbench -fig1d                # Figure 1(d): encode fps, SIMD
//	hdvbench -scaling              # Figure 1 scaling: encode+decode fps
//	                               # sweeping slices {1,2,4} × workers
//	                               # {1,2,4,NumCPU} at the paper's
//	                               # first-frame-only-intra default
//	hdvbench -scaling -json f.json # same, plus machine-readable results
//	                               # (the BENCH_*.json trajectory format;
//	                               # "-" writes the JSON to stdout)
//	hdvbench -summary              # §VI: compression gains + SIMD speed-ups
//
// Common flags: -frames N (default 25; the paper uses 100), -q N
// (quantizer, default 5), -res 576p25,720p25,1088p25, -seqs a,b,
// -codecs mpeg2,mpeg4,h264.
//
// Profiling: -cpuprofile f / -memprofile f write pprof profiles of the
// selected run (CPU for the whole run, heap at exit), so performance work
// on the codecs can be driven by `go tool pprof` instead of guesswork.
//
// Parallelism flags: -workers N runs the codecs' GOP-parallel pipeline
// on N goroutines (default runtime.NumCPU(); 1 = legacy serial path);
// -gop N sets the intra period that defines the closed GOP chunks
// (default 0 = first frame only, the paper's setting); -slices N splits
// every frame into N independently coded macroblock-row slices, the
// axis that parallelizes encode and decode even at -gop 0 (default 1;
// in -scaling mode 0 means "sweep {1,2,4}"). Output streams are
// byte-identical for every -workers value at a fixed -slices count.
// -wavefront adds the third axis: 2D wavefront scheduling of the
// macroblocks inside every slice, which parallelizes encode even at
// -gop 0 -slices 1 with zero compression cost — the bitstream is
// byte-identical with the flag on or off.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"hdvideobench"
)

func main() {
	var (
		describe = flag.Bool("describe", false, "print the suite composition (Tables I-IV)")
		table5   = flag.Bool("table5", false, "run the rate-distortion matrix (Table V)")
		fig1a    = flag.Bool("fig1a", false, "decode fps, scalar kernels (Figure 1a)")
		fig1b    = flag.Bool("fig1b", false, "decode fps, SIMD kernels (Figure 1b)")
		fig1c    = flag.Bool("fig1c", false, "encode fps, scalar kernels (Figure 1c)")
		fig1d    = flag.Bool("fig1d", false, "encode fps, SIMD kernels (Figure 1d)")
		scaling  = flag.Bool("scaling", false, "fps at 1,2,4,NumCPU workers (Figure 1 scaling dimension)")
		ladder   = flag.String("ladder", "", "rendition-ladder encode, e.g. 240p,576p@1200,720p: decode once, share the top rung's motion analysis down the ladder")
		kbps     = flag.Int("kbps", 0, "with -ladder: default bitrate target for rungs without an explicit @kbps (0 = constant-Q)")
		jsonPath = flag.String("json", "", "with -scaling: write machine-readable results to this file (\"-\" = stdout)")
		summary  = flag.Bool("summary", false, "compression gains and SIMD speed-ups (§VI)")
		frames   = flag.Int("frames", 25, "frames per sequence (paper: 100)")
		repeats  = flag.Int("repeats", 3, "timing repetitions, fastest kept (paper: 5 runs)")
		q        = flag.Int("q", 5, "quantizer, MPEG scale 1..31 (paper: 5)")
		gop      = flag.Int("gop", 0, "intra period / closed-GOP length (0 = first frame only)")
		slices   = flag.Int("slices", 0, "macroblock-row slices per frame (0 = 1, or the {1,2,4} sweep in -scaling mode)")
		wavefrnt = flag.Bool("wavefront", false, "wavefront (2D) macroblock scheduling inside each slice (encode; bytes unchanged)")
		workers  = flag.Int("workers", runtime.NumCPU(), "GOP-parallel worker goroutines (1 = serial)")
		resList  = flag.String("res", "", "comma-separated resolutions, up to 2160p25 (default: the paper's three)")
		seqList  = flag.String("seqs", "", "comma-separated sequences, incl. sport_pan/scene_cut (default: the paper's four)")
		cdcList  = flag.String("codecs", "", "comma-separated codecs (default: all three)")
		cpuProf  = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProf  = flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	)
	flag.Parse()

	// Profiling hooks: perf PRs should be driven by profiles, not
	// guesswork — `hdvbench -fig1c -cpuprofile cpu.pb.gz` then
	// `go tool pprof cpu.pb.gz`.
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatalf("cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatalf("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		// Report failures without os.Exit: exiting here would skip the
		// still-pending StopCPUProfile defer and truncate the CPU profile.
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "hdvbench: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
				fmt.Fprintf(os.Stderr, "hdvbench: memprofile: %v\n", err)
			}
		}()
	}

	opts := hdvideobench.SuiteOptions{
		Frames: *frames, Q: *q, Repeats: *repeats,
		IntraPeriod: *gop, Workers: *workers, Slices: *slices,
		Wavefront: *wavefrnt,
	}
	if *resList != "" {
		for _, name := range strings.Split(*resList, ",") {
			r, err := hdvideobench.ResolutionByName(name)
			if err != nil {
				fatalf("%v", err)
			}
			opts.Resolutions = append(opts.Resolutions, r)
		}
	}
	if *seqList != "" {
		for _, name := range strings.Split(*seqList, ",") {
			s, err := hdvideobench.ParseSequence(name)
			if err != nil {
				fatalf("%v", err)
			}
			opts.Sequences = append(opts.Sequences, s)
		}
	}
	if *cdcList != "" {
		for _, name := range strings.Split(*cdcList, ",") {
			c, err := hdvideobench.ParseCodec(name)
			if err != nil {
				fatalf("%v", err)
			}
			opts.Codecs = append(opts.Codecs, c)
		}
	}

	ran := false
	if *describe {
		fmt.Print(hdvideobench.Describe())
		ran = true
	}
	if *table5 {
		rs, err := hdvideobench.RunTableV(opts)
		if err != nil {
			fatalf("table5: %v", err)
		}
		fmt.Print(hdvideobench.FormatTableV(rs))
		fmt.Print(hdvideobench.Gains(rs))
		ran = true
	}
	runFig := func(simd, encode bool, title string) {
		o := opts
		o.SIMD = simd
		rs, err := hdvideobench.RunFigure1(o, encode)
		if err != nil {
			fatalf("%s: %v", title, err)
		}
		fmt.Print(hdvideobench.FormatFigure1(rs, title))
		ran = true
	}
	if *fig1a {
		runFig(false, false, "Figure 1(a): Decoding Performance Scalar Version")
	}
	if *fig1b {
		runFig(true, false, "Figure 1(b): Decoding Performance with SIMD Optimizations")
	}
	if *fig1c {
		runFig(false, true, "Figure 1(c): Encoding Performance Scalar Version")
	}
	if *fig1d {
		runFig(true, true, "Figure 1(d): Encoding Performance with SIMD Optimizations")
	}
	if *scaling {
		// The scaling run sweeps slices × workers at the options' GOP
		// setting — by default the paper's first-frame-only-intra shape,
		// where slices are the only axis that buys multicore speedup.
		sliceCounts := []int{1, 2, 4}
		if *slices > 0 {
			sliceCounts = []int{*slices}
		}
		var all []hdvideobench.SpeedResult
		for _, dir := range []struct {
			encode bool
			title  string
		}{
			{false, "Figure 1 scaling: Decoding Performance by Worker Count"},
			{true, "Figure 1 scaling: Encoding Performance by Worker Count"},
		} {
			rs, err := hdvideobench.RunScalingMatrixReport(opts, dir.encode, nil, sliceCounts)
			if err != nil {
				fatalf("scaling: %v", err)
			}
			// With the JSON going to stdout, keep it parseable: the
			// human-readable tables move to stderr.
			table := hdvideobench.FormatScaling(rs, dir.title)
			if *jsonPath == "-" {
				fmt.Fprint(os.Stderr, table)
			} else {
				fmt.Print(table)
			}
			all = append(all, rs...)
		}
		if *jsonPath != "" {
			out, err := hdvideobench.FormatScalingJSON(opts, all)
			if err != nil {
				fatalf("scaling json: %v", err)
			}
			if *jsonPath == "-" {
				os.Stdout.Write(out)
			} else if err := os.WriteFile(*jsonPath, out, 0o644); err != nil {
				fatalf("scaling json: %v", err)
			}
		}
		ran = true
	}
	if *ladder != "" {
		runLadder(opts, *ladder, *kbps, *frames, *q, *gop, *slices, *wavefrnt, *workers)
		ran = true
	}
	if *summary {
		rs, err := hdvideobench.RunTableV(opts)
		if err != nil {
			fatalf("summary: %v", err)
		}
		fmt.Print(hdvideobench.Gains(rs))
		for _, enc := range []bool{false, true} {
			oS := opts
			oS.SIMD = false
			scalar, err := hdvideobench.RunFigure1(oS, enc)
			if err != nil {
				fatalf("summary: %v", err)
			}
			oW := opts
			oW.SIMD = true
			simd, err := hdvideobench.RunFigure1(oW, enc)
			if err != nil {
				fatalf("summary: %v", err)
			}
			fmt.Print(hdvideobench.FormatSpeedupReport(scalar, simd))
		}
		ran = true
	}
	if !ran {
		fmt.Print(hdvideobench.Describe())
		fmt.Println("\nrun with -table5, -fig1a..-fig1d or -summary; see -help")
	}
}

// runLadder drives the one-mezzanine-N-renditions path: generate the
// mezzanine once (first -res entry, default 720p25; first -seqs entry,
// default blue_sky), encode every rung with the top rung's motion
// analysis shared down the ladder, and report per-rung size, achieved
// bitrate, and PSNR against the downscaled mezzanine.
func runLadder(opts hdvideobench.SuiteOptions, spec string, defKbps, nFrames, q, gop, slices int, wavefront bool, workers int) {
	mezz := hdvideobench.Resolutions[1] // 720p25
	if len(opts.Resolutions) > 0 {
		mezz = opts.Resolutions[0]
	}
	seq := hdvideobench.BlueSky
	if len(opts.Sequences) > 0 {
		seq = opts.Sequences[0]
	}
	codecs := opts.Codecs
	if len(codecs) == 0 {
		codecs = []hdvideobench.Codec{hdvideobench.MPEG2, hdvideobench.MPEG4, hdvideobench.H264}
	}
	rungs, err := hdvideobench.ParseLadder(spec, mezz.Width, mezz.Height)
	if err != nil {
		fatalf("ladder: %v", err)
	}
	if defKbps > 0 {
		for i := range rungs {
			if rungs[i].Kbps == 0 {
				rungs[i].Kbps = defKbps
			}
		}
	}
	frames := hdvideobench.NewSequence(seq, mezz.Width, mezz.Height).Generate(nFrames)
	for _, c := range codecs {
		eo := hdvideobench.EncoderOptions{
			Width: mezz.Width, Height: mezz.Height, Q: q,
			IntraPeriod: gop, Slices: slices, Wavefront: wavefront,
			Workers: workers,
		}
		start := time.Now()
		rends, err := hdvideobench.EncodeLadder(c, eo, frames, rungs)
		if err != nil {
			fatalf("ladder: %v", err)
		}
		wall := time.Since(start)
		fmt.Printf("Ladder %v: %s mezzanine, %v, %d frames, %.2fs wall\n",
			c, mezz.Name, seq, len(frames), wall.Seconds())
		fmt.Printf("  %-8s %-10s %8s %10s %8s %8s\n",
			"rung", "geometry", "target", "bytes", "kbps", "psnr")
		for _, r := range rends {
			bytes := 0
			for _, p := range r.Packets {
				bytes += len(p.Payload)
			}
			dec, err := hdvideobench.NewDecoder(r.Header, false)
			if err != nil {
				fatalf("ladder: %v", err)
			}
			out, err := hdvideobench.DecodePackets(dec, r.Packets)
			if err != nil {
				fatalf("ladder rung %s: %v", r.Rung.Name, err)
			}
			psnr := 0.0
			for i := range out {
				ref := frames[i]
				if r.Rung.Width != mezz.Width || r.Rung.Height != mezz.Height {
					ref = hdvideobench.DownscaleFrame(ref, r.Rung.Width, r.Rung.Height)
				}
				psnr += hdvideobench.PSNR(ref, out[i])
			}
			psnr /= float64(len(out))
			fps := float64(r.Header.FPSNum) / float64(r.Header.FPSDen)
			achieved := float64(bytes) * 8 * fps / float64(len(frames)) / 1000
			target := "const-q"
			if r.Rung.Kbps > 0 {
				target = fmt.Sprintf("%d", r.Rung.Kbps)
			}
			fmt.Printf("  %-8s %-10s %8s %10d %8.0f %8.2f\n",
				r.Rung.Name, fmt.Sprintf("%dx%d", r.Rung.Width, r.Rung.Height),
				target, bytes, achieved, psnr)
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hdvbench: "+format+"\n", args...)
	os.Exit(1)
}
