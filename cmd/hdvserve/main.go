// Command hdvserve is the HTTP front end of the streaming subsystem: it
// encodes benchmark sequences on the fly (GET /transcode), re-encodes
// uploaded HDVB streams (POST /transcode), and serves repeat traffic
// from a disk-backed LRU cache of coded GOP streams so identical
// requests are I/O-bound instead of CPU-bound — the serving-tier
// workload the ROADMAP's north star asks for on top of the codec core.
// The service itself lives in internal/serve so the SLO harness
// (cmd/hdvslo) and the httptest suites can run it in-process; this
// command only parses flags and owns the listener lifecycle.
//
// Start the server and request a stream:
//
//	hdvserve -addr :8080 -cache-dir /var/cache/hdvserve
//	curl -s 'http://localhost:8080/transcode?codec=h264&seq=blue_sky&width=1280&height=720' > blue_sky.hdvb
//	curl -s --data-binary @blue_sky.hdvb 'http://localhost:8080/transcode?codec=mpeg2' > blue_sky.m2.hdvb
//	vcodec -decode -i blue_sky.hdvb -o blue_sky.yuv
//
// # GET /transcode — generate and stream a coded sequence
//
// Query parameters:
//
//	codec    target codec: mpeg2, mpeg4, h264 (default h264)
//	seq      source sequence: blue_sky, pedestrian_area, riverbed,
//	         rush_hour, sport_pan, scene_cut (default blue_sky)
//	res      named resolution (576p25, 720p25, 1088p25, 2160p25, plus
//	         aliases like 1080p and 4k); sets width and height, which
//	         explicit width=/height= still override
//	width    frame width, multiple of 16 (default 1280)
//	height   frame height, multiple of 16 (default 720)
//	frames   frames to encode, 1..-max-frames (default 250)
//	q        quantizer, MPEG scale 1..31 (default 5)
//	gop      closed-GOP length in frames, 1..255 (default 8; the chunk
//	         unit of the streaming encoder, the cache's fill unit, and
//	         the granularity of the seek index)
//	slices   macroblock-row slices per frame, 1..255 (default 1),
//	         clamped to the request's worker budget
//	workers  encoder goroutines for this request, clamped to -workers
//	simd     use the SWAR kernel set (strconv.ParseBool syntax;
//	         default false — garbage values are 400s, not false)
//	vlc      H.264 only: VLC entropy instead of CABAC (same syntax)
//	index    with caching enabled: return the entry's GOP index as JSON
//	         ({"size":N,"gops":[{"offset":O,"frame":F},...]}) instead
//	         of the stream — the seek table for Range requests
//
// Cold requests stream with chunked transfer, one coded packet per
// flush, while a tee populates the cache; repeat requests are served
// straight from disk, byte-identical to the cold response (the entry IS
// the cold byte stream), with Content-Length, Accept-Ranges and an
// X-HDVB-Cache: hit header.
//
// # Range and seek
//
// Cached entries carry a GOP index: the byte offset of every closed
// GOP's first packet. Because nothing references across a closed-GOP
// boundary, a client that fetches the index can start mid-sequence with
// a standard HTTP Range request for a GOP-aligned span (the stream
// header plus any indexed suffix decodes cleanly). Byte ranges are
// served exactly as requested (206 Partial Content via the standard
// library); the index is what makes GOP-aligned offsets discoverable.
// A Range or index request that misses the cache encodes the entry
// first, then serves from it; with caching disabled, Range is ignored
// (full 200) and index requests are 400s.
//
// # POST /transcode — re-encode an uploaded HDVB stream
//
// The request body is an HDVB container (any of the three codecs); the
// response streams its transcode to the target codec. Query parameters
// codec, q, gop, slices, workers, simd and vlc apply as for GET;
// width/height default to the input's dimensions. Uploads are capped at
// -max-upload bytes. Transcodes are not cached (the key space is the
// upload's content, not a small parameter tuple).
//
// # Operations
//
// GET /metrics exposes Prometheus text metrics: request counts, cache
// hits/misses/evictions/bytes, active and completed streams, bytes
// served, cumulative encode seconds, rate-limit rejections, and latency
// histograms labeled by {endpoint, codec, res, cache} plus the encode
// pipeline's chunk/queue/gate series (see the README's Observability
// section for the full catalogue). GET /healthz reports readiness and
// current load as JSON.
//
// Every /transcode response carries an X-Request-ID (propagated from
// the request or generated) and a Server-Timing header; cold chunked
// streams add a Server-Timing trailer with the encode phases. Logs are
// structured (log/slog, text): stream completions at info, per-request
// summaries at debug (-v), failures at warn, each line keyed by the
// request id.
//
// -debug-addr starts a second listener (bind it to loopback) with the
// private diagnostics: /debug/pprof/* for CPU/heap/goroutine profiling
// and /debug/requests, a JSON ring of the last 64 completed requests
// with per-phase timings. Neither is ever served on the public -addr
// listener.
//
// Per-client (peer IP) token-bucket rate limiting is enabled with
// -rate-limit requests/second and -rate-burst; excess requests get 429
// + Retry-After. A semaphore caps concurrent *encoding* requests
// (-max-concurrent) — cache hits bypass it, since serving off disk
// costs no encoder — and excess cold requests get 503 + Retry-After. A
// dropped client aborts its encode promptly, and SIGINT/SIGTERM drain
// in-flight streams before exit (-shutdown-timeout). Stream headers
// (Content-Type, X-HDVB-*) are set at the first body byte, so failures
// before any output produce clean, headerless error statuses.
package main

import (
	"context"
	"flag"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"hdvideobench/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		debugAddr   = flag.String("debug-addr", "", "listen address for /debug/pprof/* and /debug/requests (empty = off; keep it loopback)")
		verbose     = flag.Bool("v", false, "log per-request debug lines (request id, status, bytes, phases)")
		workers     = flag.Int("workers", runtime.NumCPU(), "per-request worker-goroutine budget")
		window      = flag.Int("window", 0, "per-request chunk window (0 = 2x workers)")
		maxConc     = flag.Int("max-concurrent", 4, "max concurrent encoding requests (excess get 503; cache hits bypass)")
		maxFrames   = flag.Int("max-frames", 5000, "max frames a single request may ask for")
		maxUpload   = flag.Int64("max-upload", 1<<30, "max POST /transcode upload bytes")
		cacheDir    = flag.String("cache-dir", "", "disk cache directory for coded GOP streams (empty = caching off)")
		cacheBytes  = flag.Int64("cache-bytes", 1<<30, "cache byte budget before LRU eviction (<=0 = unlimited)")
		rateLimit   = flag.Float64("rate-limit", 0, "per-client requests/second on /transcode (0 = off)")
		rateBurst   = flag.Int("rate-burst", 4, "per-client burst on top of -rate-limit")
		shutdownSec = flag.Int("shutdown-timeout", 30, "seconds to drain in-flight streams on SIGINT/SIGTERM")
	)
	flag.Parse()

	level := slog.LevelInfo
	if *verbose {
		level = slog.LevelDebug
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	srv, err := serve.New(serve.Config{
		Workers:       *workers,
		Window:        *window,
		MaxConcurrent: *maxConc,
		MaxFrames:     *maxFrames,
		MaxUpload:     *maxUpload,
		CacheDir:      *cacheDir,
		CacheBytes:    *cacheBytes,
		RateLimit:     *rateLimit,
		RateBurst:     *rateBurst,
		Logger:        logger,
	})
	if err != nil {
		logger.Error("startup failed", "err", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Routes()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr, "workers", *workers, "window", *window,
			"max_concurrent", *maxConc, "cache", *cacheDir, "rate", *rateLimit)
		done <- httpSrv.ListenAndServe()
	}()
	if *debugAddr != "" {
		// The debug mux never joins the public handler: a separate
		// listener is what lets operators firewall it to loopback.
		debugSrv := &http.Server{Addr: *debugAddr, Handler: srv.DebugRoutes()}
		go func() {
			logger.Info("debug listener", "addr", *debugAddr)
			if err := debugSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Error("debug listener failed", "err", err)
			}
		}()
		defer debugSrv.Close()
	}

	select {
	case err := <-done:
		logger.Error("server failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
		logger.Info("shutting down, draining in-flight streams")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), time.Duration(*shutdownSec)*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			logger.Warn("shutdown", "err", err)
		}
	}
}
