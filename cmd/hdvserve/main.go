// Command hdvserve is the HTTP front end of the streaming subsystem: it
// encodes benchmark sequences on the fly and streams the HDVB container
// to the client with chunked transfer, one coded packet per flush, so
// playback-side tooling can start decoding long before the sequence is
// finished. It is the serving-tier workload the ROADMAP's north star
// asks for on top of the codec core.
//
// Start the server and request a stream:
//
//	hdvserve -addr :8080
//	curl -s 'http://localhost:8080/transcode?codec=h264&seq=blue_sky&width=1280&height=720' > blue_sky.hdvb
//	vcodec -decode -i blue_sky.hdvb -o blue_sky.yuv
//
// GET /transcode query parameters:
//
//	codec    target codec: mpeg2, mpeg4, h264 (default h264)
//	seq      source sequence: blue_sky, pedestrian_area, riverbed,
//	         rush_hour (default blue_sky)
//	width    frame width, multiple of 16 (default 1280)
//	height   frame height, multiple of 16 (default 720)
//	frames   frames to encode, 1..-max-frames (default 250)
//	q        quantizer, MPEG scale 1..31 (default 5)
//	gop      closed-GOP length in frames, 1..255 (default 8; the chunk
//	         unit of the bounded-window streaming encoder, kept under
//	         the decoder-side parallel-fallback threshold)
//	slices   macroblock-row slices per frame, 1..255 (default 1),
//	         clamped to the request's worker budget; slices let a
//	         request scale inside each frame even at gop=1-per-stream
//	         shapes, at a small compression cost baked into the stream
//	workers  encoder goroutines for this request, clamped to -workers
//	         (default: the full budget)
//	simd     use the SWAR kernel set (default false)
//	vlc      H.264 only: VLC entropy instead of CABAC (default false)
//
// GET /healthz reports readiness and current load.
//
// Each request runs the bounded-memory streaming encoder under a
// per-request worker budget (-workers) and window (-window), so peak
// memory per request is O(window × gop) frames at the requested
// resolution. A semaphore caps concurrent requests (-max-concurrent);
// excess requests get 503 + Retry-After rather than queueing without
// bound. A dropped client aborts its encode promptly (the context
// cancels the frame feed and the chunked writes fail), and SIGINT/
// SIGTERM drain in-flight streams before exit (-shutdown-timeout).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"sync/atomic"
	"syscall"
	"time"

	"hdvideobench"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", runtime.NumCPU(), "per-request worker-goroutine budget")
		window      = flag.Int("window", 0, "per-request chunk window (0 = 2x workers)")
		maxConc     = flag.Int("max-concurrent", 4, "max concurrent transcode requests (excess get 503)")
		maxFrames   = flag.Int("max-frames", 5000, "max frames a single request may ask for")
		shutdownSec = flag.Int("shutdown-timeout", 30, "seconds to drain in-flight streams on SIGINT/SIGTERM")
	)
	flag.Parse()

	srv := newServer(serverConfig{
		Workers:       *workers,
		Window:        *window,
		MaxConcurrent: *maxConc,
		MaxFrames:     *maxFrames,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.routes()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() {
		log.Printf("hdvserve: listening on %s (workers=%d window=%d max-concurrent=%d)",
			*addr, *workers, *window, *maxConc)
		done <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-done:
		log.Fatalf("hdvserve: %v", err)
	case <-ctx.Done():
		log.Printf("hdvserve: shutting down, draining in-flight streams")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), time.Duration(*shutdownSec)*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("hdvserve: shutdown: %v", err)
		}
	}
}

// serverConfig carries the per-process limits.
type serverConfig struct {
	Workers       int // per-request worker budget
	Window        int // per-request chunk window (0 = default)
	MaxConcurrent int // concurrent /transcode requests before 503
	MaxFrames     int // cap on the frames= parameter
}

// server is the HTTP transcoding service; it is constructed by
// newServer so the httptest suite can drive the exact production
// handler.
type server struct {
	cfg    serverConfig
	sem    chan struct{}
	active atomic.Int64
	served atomic.Int64
}

func newServer(cfg serverConfig) *server {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.MaxConcurrent < 1 {
		cfg.MaxConcurrent = 1
	}
	if cfg.MaxFrames < 1 {
		cfg.MaxFrames = 5000
	}
	return &server{cfg: cfg, sem: make(chan struct{}, cfg.MaxConcurrent)}
}

func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /transcode", s.handleTranscode)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// intParam parses an integer query parameter with a default and bounds.
func intParam(q map[string][]string, name string, def, lo, hi int) (int, error) {
	vs, ok := q[name]
	if !ok || len(vs) == 0 || vs[0] == "" {
		return def, nil
	}
	v, err := strconv.Atoi(vs[0])
	if err != nil {
		return 0, fmt.Errorf("%s: not an integer: %q", name, vs[0])
	}
	if v < lo || v > hi {
		return 0, fmt.Errorf("%s: %d out of range [%d,%d]", name, v, lo, hi)
	}
	return v, nil
}

// transcodeRequest is a validated /transcode query.
type transcodeRequest struct {
	codec  hdvideobench.Codec
	seq    hdvideobench.Sequence
	frames int
	opts   hdvideobench.EncoderOptions
}

func (s *server) parseTranscode(r *http.Request) (transcodeRequest, error) {
	q := r.URL.Query()
	var req transcodeRequest
	var err error

	codecName := q.Get("codec")
	if codecName == "" {
		codecName = "h264"
	}
	if req.codec, err = hdvideobench.ParseCodec(codecName); err != nil {
		return req, err
	}
	seqName := q.Get("seq")
	if seqName == "" {
		seqName = "blue_sky"
	}
	if req.seq, err = hdvideobench.ParseSequence(seqName); err != nil {
		return req, err
	}

	width, err := intParam(q, "width", 1280, 16, 4096)
	if err != nil {
		return req, err
	}
	height, err := intParam(q, "height", 720, 16, 4096)
	if err != nil {
		return req, err
	}
	if err := hdvideobench.ValidateResolution(width, height); err != nil {
		return req, err
	}
	if req.frames, err = intParam(q, "frames", min(250, s.cfg.MaxFrames), 1, s.cfg.MaxFrames); err != nil {
		return req, err
	}
	qp, err := intParam(q, "q", 5, 1, 31)
	if err != nil {
		return req, err
	}
	// The gop ceiling matches the streaming decoder's fallback
	// threshold, so every stream this server emits stays fully
	// GOP-parallel on the client's decode side.
	gop, err := intParam(q, "gop", 8, 1, 255)
	if err != nil {
		return req, err
	}
	// workers clamps to the server's budget rather than rejecting, so
	// one client request works against any replica's CPU budget.
	workers, err := intParam(q, "workers", s.cfg.Workers, 1, 4096)
	if err != nil {
		return req, err
	}
	workers = min(workers, s.cfg.Workers)
	// slices clamps to the request's worker budget: more slices than
	// workers would pay the compression cost without buying speedup.
	slices, err := intParam(q, "slices", 1, 1, 255)
	if err != nil {
		return req, err
	}
	slices = min(slices, workers)

	req.opts = hdvideobench.EncoderOptions{
		Width: width, Height: height, Q: qp,
		IntraPeriod: gop,
		Slices:      slices,
		Workers:     workers,
		Window:      s.cfg.Window,
		SIMD:        q.Get("simd") == "1" || q.Get("simd") == "true",
	}
	if q.Get("vlc") == "1" || q.Get("vlc") == "true" {
		req.opts.Entropy = hdvideobench.EntropyVLC
	}
	return req, nil
}

func (s *server) handleTranscode(w http.ResponseWriter, r *http.Request) {
	req, err := s.parseTranscode(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	// Admission control: hand back 503 instead of queueing unbounded
	// work — the client can retry against another replica.
	select {
	case s.sem <- struct{}{}:
	default:
		w.Header().Set("Retry-After", "1")
		http.Error(w, "transcoder at capacity", http.StatusServiceUnavailable)
		return
	}
	defer func() { <-s.sem }()
	s.active.Add(1)
	defer s.active.Add(-1)

	w.Header().Set("Content-Type", "application/x-hdvideobench")
	w.Header().Set("X-HDVB-Codec", req.codec.String())
	w.Header().Set("X-HDVB-Frames", strconv.Itoa(req.frames))

	// The frame feed checks the request context so a dropped client
	// aborts the encode from the input side too (the output side dies
	// on its own when chunked writes start failing).
	ctx := r.Context()
	gen := hdvideobench.NewSequence(req.seq, req.opts.Width, req.opts.Height)
	i := 0
	start := time.Now()
	stats, err := hdvideobench.EncodeStream(w, req.codec, req.opts, req.frames, func() (*hdvideobench.Frame, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if i >= req.frames {
			return nil, io.EOF
		}
		f := gen.Frame(i)
		i++
		return f, nil
	})
	switch {
	case err == nil:
		s.served.Add(1)
		log.Printf("hdvserve: %s %s %dx%d frames=%d workers=%d: %d bytes in %v",
			req.codec, req.seq, req.opts.Width, req.opts.Height,
			req.frames, req.opts.Workers, stats.Bytes, time.Since(start).Round(time.Millisecond))
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) || ctx.Err() != nil:
		log.Printf("hdvserve: client gone after %d frames (%d bytes)", stats.Frames, stats.Bytes)
	case stats.Bytes == 0:
		// Nothing on the wire yet: the error can still become a status.
		http.Error(w, err.Error(), http.StatusBadRequest)
	default:
		// Mid-stream failure; the truncated body is the only signal.
		log.Printf("hdvserve: stream failed after %d frames: %v", stats.Frames, err)
	}
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"status":"ok","active":%d,"capacity":%d,"served":%d}`+"\n",
		s.active.Load(), s.cfg.MaxConcurrent, s.served.Load())
}
