// Command hdvslo is the real-time SLO harness for the hdvserve serving
// tier: it spawns N concurrent synthetic viewers, each consuming the
// chunked HDVB stream against wall-clock frame deadlines (internal/slo's
// deadline model), and reports dropped/late frame counts, TTFB and
// per-frame latency quantiles, bytes served, and — in -search mode —
// the maximum concurrent stream count that sustains a deadline-miss
// budget. Each fixed-load point also scrapes the server's /metrics
// before and after the run, embedding the counter movement (encoder
// runs, cache hits/misses, bytes served) in the report — the
// server-side receipt that a warm point really served from cache.
//
//	hdvslo                          # in-process server, cold+warm at 24/30fps
//	hdvslo -fps 24,30,60 -clients 8
//	hdvslo -search -miss-budget 0.01 -max-streams 32
//	hdvslo -url http://host:8080    # against an already-running hdvserve
//	hdvslo -json BENCH_SLO.json     # machine-readable trajectory report
//	hdvslo -short -json -           # CI smoke: tiny run, JSON to stdout
//
// With no -url the harness starts the production handler (internal/serve,
// the same code cmd/hdvserve runs) in-process on a loopback listener
// with a throwaway cache directory, so results measure the serving
// stack rather than network distance. The "cold" path uses a fresh
// server — and in -search mode a fresh server per probe — so every
// stream pays the encode; the "warm" path primes the GOP cache with one
// greedy request first, so paced viewers measure the cache-serving path.
// Admission control is sized to the viewer count under test: capacity
// limits are meant to show up as missed deadlines, not 503s.
//
// Stream shape flags mirror hdvserve's /transcode parameters: -codec,
// -seq (incl. sport_pan/scene_cut), -res (up to 2160p25) or -w/-h,
// -frames, -q, -gop. Pacing flags: -fps (comma list), -readahead
// (frames buffered past the playhead, 0 = one second's worth),
// -drop-after (lateness at which a frame counts dropped, 0 = one
// display period).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"hdvideobench"
	"hdvideobench/internal/serve"
	"hdvideobench/internal/slo"
)

func main() {
	var (
		baseURL    = flag.String("url", "", "base URL of a running hdvserve (default: start one in-process)")
		codecName  = flag.String("codec", "mpeg2", "codec: mpeg2, mpeg4, h264")
		seqName    = flag.String("seq", "blue_sky", "sequence: blue_sky, pedestrian_area, riverbed, rush_hour, sport_pan, scene_cut")
		resName    = flag.String("res", "", "resolution name (576p25 .. 2160p25; overrides -w/-h)")
		width      = flag.Int("w", 704, "stream width")
		height     = flag.Int("h", 576, "stream height")
		frames     = flag.Int("frames", 72, "frames per stream")
		q          = flag.Int("q", 5, "quantizer, MPEG scale 1..31")
		gop        = flag.Int("gop", 12, "intra period / closed-GOP length")
		fpsList    = flag.String("fps", "24,30", "comma-separated display rates to test")
		clients    = flag.Int("clients", 4, "concurrent viewers per run")
		pathList   = flag.String("paths", "cold,warm", "serving paths to exercise: cold, warm")
		readAhead  = flag.Int("readahead", 0, "viewer buffer in frames past the playhead (0 = one second's worth)")
		dropAfter  = flag.Duration("drop-after", 0, "lateness at which a frame counts dropped (0 = one display period)")
		search     = flag.Bool("search", false, "binary-search the max sustainable stream count per path x fps")
		missBudget = flag.Float64("miss-budget", 0.01, "with -search: tolerated (late+dropped)/frames fraction")
		maxStreams = flag.Int("max-streams", 32, "with -search: viewer-count ceiling")
		jsonPath   = flag.String("json", "", "write the machine-readable report to this file (\"-\" = stdout)")
		short      = flag.Bool("short", false, "CI smoke preset: tiny stream, one easy load point")
	)
	flag.Parse()

	codec, err := hdvideobench.ParseCodec(*codecName)
	if err != nil {
		fatalf("%v", err)
	}
	seq, err := hdvideobench.ParseSequence(*seqName)
	if err != nil {
		fatalf("%v", err)
	}
	w, h := *width, *height
	if *resName != "" {
		r, err := hdvideobench.ResolutionByName(*resName)
		if err != nil {
			fatalf("%v", err)
		}
		w, h = r.Width, r.Height
	}
	if err := hdvideobench.ValidateResolution(w, h); err != nil {
		fatalf("%v", err)
	}
	rates, err := parseFPSList(*fpsList)
	if err != nil {
		fatalf("%v", err)
	}
	paths := strings.Split(*pathList, ",")
	if *short {
		// The smoke preset must pass on a loaded 1-core CI box: a tiny
		// stream at a deliberately easy display rate, warm path only.
		w, h, *frames, *gop = 96, 80, 10, 5
		*clients, rates, paths, *search = 2, []int{10}, []string{"warm"}, false
	}
	for _, p := range paths {
		if p != "cold" && p != "warm" {
			fatalf("unknown path %q (want cold or warm)", p)
		}
	}

	report := slo.Report{
		Benchmark: "hdvslo",
		Description: "deadline-driven hdvserve load harness: paced viewers vs wall-clock frame deadlines; " +
			"cold = every stream encoded, warm = GOP cache primed",
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		NumCPU: runtime.NumCPU(),
		Config: slo.ReportConfig{
			Codec: codec.String(), Seq: seq.String(),
			Width: w, Height: h, Frames: *frames, Q: *q, GOP: *gop,
			Clients: *clients, ReadAheadFrames: *readAhead,
			DropAfterMS: float64(*dropAfter) / float64(time.Millisecond),
		},
	}
	if *search {
		report.Config.MissBudget = *missBudget
	}

	// Admission control sized so capacity shows up as missed deadlines,
	// not 503s; the cap only protects against runaway flag values.
	maxConc := *clients
	if *search && *maxStreams > maxConc {
		maxConc = *maxStreams
	}
	lab := harness{
		remote:  *baseURL,
		maxConc: maxConc,
		query: url.Values{
			"codec":  {codec.String()},
			"seq":    {seq.String()},
			"width":  {strconv.Itoa(w)},
			"height": {strconv.Itoa(h)},
			"frames": {strconv.Itoa(*frames)},
			"q":      {strconv.Itoa(*q)},
			"gop":    {strconv.Itoa(*gop)},
		},
	}

	ctx := context.Background()
	// runPoint measures one load point; when withDelta is true it also
	// scrapes the server's /metrics around the run and returns the
	// counter movement (nil on scrape failure — the delta is garnish,
	// never a reason to fail the run).
	runPoint := func(path string, fps, n int, withDelta bool) (slo.RunResult, *slo.ServerDelta) {
		base, streamURL, shutdown := lab.prepare(ctx, path)
		defer shutdown()
		var before slo.ServerStats
		scraped := false
		if withDelta {
			// Scraped after prepare, so a warm path's priming request
			// does not pollute the delta.
			if s, err := slo.ScrapeServer(ctx, base); err == nil {
				before, scraped = s, true
			}
		}
		r := slo.Run(ctx, slo.RunConfig{
			URL: streamURL, Clients: n, FPS: fps,
			DropAfter: *dropAfter, ReadAhead: *readAhead,
		})
		var delta *slo.ServerDelta
		if scraped {
			if after, err := slo.ScrapeServer(ctx, base); err == nil {
				delta = after.Delta(before)
			}
		}
		return r, delta
	}

	for _, path := range paths {
		for _, fps := range rates {
			r, delta := runPoint(path, fps, *clients, true)
			report.Runs = append(report.Runs, slo.ReportRun{Path: path, RunResult: r, Server: delta})
			srv := ""
			if delta != nil {
				srv = fmt.Sprintf(", server: %d encodes %d hits %d misses", delta.Encodes, delta.CacheHits, delta.CacheMisses)
			}
			fmt.Fprintf(os.Stderr,
				"hdvslo: %-4s %2dfps %2d clients: %d/%d frames, %d late, %d dropped (miss %.2f%%), "+
					"ttfb p95 %.1fms, frame p99 %.1fms, %d cache hits, %.1fs%s\n",
				path, fps, r.Clients, r.Frames, r.Expected, r.Late, r.Dropped, 100*r.MissRate,
				r.TTFB.P95, r.FrameLatency.P99, r.CacheHits, r.WallSeconds, srv)
		}
	}
	if *search {
		for _, path := range paths {
			for _, fps := range rates {
				sr := slo.Search(func(n int) slo.RunResult {
					r, _ := runPoint(path, fps, n, false) // probes skip the scrape
					return r
				}, *missBudget, *maxStreams)
				report.Searches = append(report.Searches,
					slo.ReportSearch{Path: path, FPS: fps, SearchResult: sr})
				fmt.Fprintf(os.Stderr, "hdvslo: %-4s %2dfps search: max sustainable streams = %d (budget %.2f%%, %d probes)\n",
					path, fps, sr.MaxStreams, 100**missBudget, len(sr.Probes))
			}
		}
	}

	out, err := report.Marshal()
	if err != nil {
		fatalf("report: %v", err)
	}
	switch *jsonPath {
	case "":
	case "-":
		os.Stdout.Write(out)
	default:
		if err := os.WriteFile(*jsonPath, out, 0o644); err != nil {
			fatalf("report: %v", err)
		}
	}
}

// harness prepares the server side of one load point.
type harness struct {
	remote  string // non-empty: benchmark that URL instead of in-process servers
	maxConc int
	query   url.Values
}

// prepare returns the server base URL and stream URL for one run on the
// requested path, plus a shutdown func. In-process, "cold" gets a
// brand-new server and cache so every stream pays the encode, and
// "warm" gets a new server whose cache is primed by one greedy request.
// Against a remote server the cache is whatever the server already
// holds: "cold" runs as-is (first contact genuinely cold), "warm" still
// primes first.
func (l harness) prepare(ctx context.Context, path string) (base, streamURL string, shutdown func()) {
	base = l.remote
	shutdown = func() {}
	if l.remote == "" {
		base, shutdown = l.startServer()
	}
	streamURL = base + "/transcode?" + l.query.Encode()
	if path == "warm" {
		if err := prime(ctx, streamURL); err != nil {
			shutdown()
			fatalf("priming cache: %v", err)
		}
	}
	return base, streamURL, shutdown
}

// startServer brings up the production handler on a loopback listener
// with a throwaway cache directory.
func (l harness) startServer() (base string, shutdown func()) {
	dir, err := os.MkdirTemp("", "hdvslo-cache-")
	if err != nil {
		fatalf("cache dir: %v", err)
	}
	srv, err := serve.New(serve.Config{
		Workers:       runtime.NumCPU(),
		MaxConcurrent: l.maxConc,
		CacheDir:      dir,
	})
	if err != nil {
		os.RemoveAll(dir)
		fatalf("server: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		os.RemoveAll(dir)
		fatalf("listen: %v", err)
	}
	httpSrv := &http.Server{Handler: srv.Routes()}
	go httpSrv.Serve(ln)
	return "http://" + ln.Addr().String(), func() {
		httpSrv.Close()
		os.RemoveAll(dir)
	}
}

// prime fetches the stream once, greedily, so the server's GOP cache
// holds it before the paced viewers start.
func prime(ctx context.Context, streamURL string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, streamURL, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", streamURL, resp.Status)
	}
	_, err = io.Copy(io.Discard, resp.Body)
	return err
}

func parseFPSList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad -fps entry %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hdvslo: "+format+"\n", args...)
	os.Exit(1)
}
