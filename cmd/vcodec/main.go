// Command vcodec is the single encode/decode front end for all three
// HD-VideoBench codecs — the role MPlayer/MEncoder play in the paper's
// Table IV (one command that selects the right codec and runs it with
// display output disabled).
//
// Encode raw I420 video to an HDVB stream:
//
//	vcodec -encode -codec h264 -w 720 -h 576 -i in.yuv -o out.hdvb -q 5
//
// Decode an HDVB stream back to raw I420 (use -o /dev/null to benchmark the
// decoder alone, like the paper's `-vo null -benchmark`):
//
//	vcodec -decode -i out.hdvb -o out.yuv -benchmark
//
// Both directions run the bounded-memory streaming engine: frames are
// read, coded and written incrementally with at most -window closed-GOP
// chunks in flight across -workers goroutines (default runtime.NumCPU();
// 1 = serial), so peak memory is O(window × gop) frames no matter how
// long the input is — a multi-hour sequence transcodes at the same
// footprint as a 25-frame one. Parallel encoding needs closed GOPs to
// chunk on, so pass -gop N (intra period) when encoding with more than
// one worker; output is byte-identical to the serial and batch paths
// either way. With -gop 0 (the paper's first-frame-only-intra default)
// pass -slices N instead: each frame is split into N independently
// coded macroblock-row slices that spread across the workers, at a
// small compression cost. Decoding picks the slice count up from the
// stream automatically. For a fixed -slices value the output bytes are
// identical at every -workers count. -wavefront additionally schedules
// the macroblocks inside each slice as a 2D wavefront during encoding,
// a zero-compression-cost axis that is also byte-identical on or off.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"hdvideobench"
)

func main() {
	var (
		encode    = flag.Bool("encode", false, "encode raw I420 input")
		decode    = flag.Bool("decode", false, "decode an HDVB stream")
		codecName = flag.String("codec", "h264", "codec: mpeg2, mpeg4, h264")
		inPath    = flag.String("i", "", "input file")
		outPath   = flag.String("o", "", "output file")
		width     = flag.Int("w", 0, "width (encode)")
		height    = flag.Int("h", 0, "height (encode)")
		q         = flag.Int("q", 5, "quantizer (MPEG scale)")
		frames    = flag.Int("frames", 0, "max frames (0 = all)")
		bframes   = flag.Int("bframes", 2, "consecutive B frames (0 disables)")
		refs      = flag.Int("refs", 4, "H.264 reference frames")
		gop       = flag.Int("gop", 0, "intra period / closed-GOP length (0 = first frame only)")
		slices    = flag.Int("slices", 1, "macroblock-row slices per frame (encode; parallelizes inside frames even with -gop 0, small quality cost)")
		wavefrnt  = flag.Bool("wavefront", false, "wavefront (2D) macroblock scheduling inside each slice (encode; bytes unchanged)")
		workers   = flag.Int("workers", runtime.NumCPU(), "GOP-parallel worker goroutines (1 = serial)")
		window    = flag.Int("window", 0, "closed-GOP chunks in flight (0 = 2x workers); caps peak memory")
		simd      = flag.Bool("simd", false, "use the SIMD (SWAR) kernels")
		vlc       = flag.Bool("vlc", false, "H.264: use VLC entropy instead of CABAC")
		bench     = flag.Bool("benchmark", false, "print fps timing")
	)
	flag.Parse()

	switch {
	case *encode == *decode:
		fatalf("exactly one of -encode or -decode is required")
	case *inPath == "" || *outPath == "":
		fatalf("-i and -o are required")
	}

	in, err := os.Open(*inPath)
	if err != nil {
		fatalf("%v", err)
	}
	defer in.Close()
	out, err := os.Create(*outPath)
	if err != nil {
		fatalf("%v", err)
	}
	defer out.Close()
	bw := bufio.NewWriterSize(out, 1<<20)
	defer bw.Flush()

	if *encode {
		runEncode(bufio.NewReaderSize(in, 1<<20), bw, encodeParams{
			codec: *codecName, w: *width, h: *height, q: *q,
			frames: *frames, bframes: *bframes, refs: *refs,
			gop: *gop, slices: *slices, wavefront: *wavefrnt,
			workers: *workers, window: *window,
			simd: *simd, vlc: *vlc, bench: *bench,
		})
		return
	}
	runDecode(bufio.NewReaderSize(in, 1<<20), bw, *simd, *workers, *window, *bench)
}

type encodeParams struct {
	codec     string
	w, h, q   int
	frames    int
	bframes   int
	refs      int
	gop       int
	slices    int
	wavefront bool
	workers   int
	window    int
	simd, vlc bool
	bench     bool
}

func runEncode(in io.Reader, out io.Writer, p encodeParams) {
	c, err := hdvideobench.ParseCodec(p.codec)
	if err != nil {
		fatalf("%v", err)
	}
	if err := hdvideobench.ValidateResolution(p.w, p.h); err != nil {
		fatalf("%v", err)
	}
	opts := hdvideobench.EncoderOptions{
		Width: p.w, Height: p.h, Q: p.q,
		BFrames: p.bframes, Refs: p.refs, SIMD: p.simd,
		IntraPeriod: p.gop, Slices: p.slices, Wavefront: p.wavefront,
		Workers: p.workers, Window: p.window,
	}
	if p.bframes == 0 {
		opts.BFrames = -1
	}
	if p.vlc {
		opts.Entropy = hdvideobench.EntropyVLC
	}

	// Frames flow straight from the raw reader into the streaming
	// encoder — never more than the chunk window in memory.
	rr := hdvideobench.NewRawFrameReader(in, p.w, p.h)
	start := time.Now()
	stats, err := hdvideobench.EncodeStream(out, c, opts, 0, func() (*hdvideobench.Frame, error) {
		if p.frames > 0 && rr.Count() >= p.frames {
			return nil, io.EOF
		}
		f, err := rr.Next()
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, io.EOF // trailing partial frame: stop cleanly
		}
		return f, err
	})
	if err != nil {
		fatalf("encoding: %v", err)
	}
	elapsed := time.Since(start)
	if stats.Frames == 0 {
		fatalf("no complete frames in %dx%d input", p.w, p.h)
	}

	fmt.Fprintf(os.Stderr, "vcodec: encoded %d frames, %d bytes (%.1f kbit/s at 25 fps)\n",
		stats.Frames, stats.Bytes, float64(stats.Bytes*8*25)/float64(stats.Frames)/1000)
	if p.bench {
		fmt.Fprintf(os.Stderr, "vcodec: %.2f fps (%v)\n", float64(stats.Frames)/elapsed.Seconds(), elapsed)
	}
}

func runDecode(in io.Reader, out io.Writer, simd bool, workers, window int, bench bool) {
	start := time.Now()
	hdr, stats, err := hdvideobench.DecodeStream(in, simd, workers, window, func(f *hdvideobench.Frame) error {
		return f.WriteRaw(out)
	})
	if err != nil {
		fatalf("decoding: %v", err)
	}
	elapsed := time.Since(start)
	fmt.Fprintf(os.Stderr, "vcodec: decoded %d frames of %s %dx%d\n",
		stats.Frames, hdr.Codec, hdr.Width, hdr.Height)
	if bench {
		fmt.Fprintf(os.Stderr, "vcodec: %.2f fps (%v)\n",
			float64(stats.Frames)/elapsed.Seconds(), elapsed)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "vcodec: "+format+"\n", args...)
	os.Exit(1)
}
