// Command vcodec is the single encode/decode front end for all three
// HD-VideoBench codecs — the role MPlayer/MEncoder play in the paper's
// Table IV (one command that selects the right codec and runs it with
// display output disabled).
//
// Encode raw I420 video to an HDVB stream:
//
//	vcodec -encode -codec h264 -w 720 -h 576 -i in.yuv -o out.hdvb -q 5
//
// Decode an HDVB stream back to raw I420 (use -o /dev/null to benchmark the
// decoder alone, like the paper's `-vo null -benchmark`):
//
//	vcodec -decode -i out.hdvb -o out.yuv -benchmark
//
// Both directions run the GOP-parallel pipeline on -workers goroutines
// (default runtime.NumCPU(); 1 = legacy serial path). Parallel encoding
// needs closed GOPs to chunk on, so pass -gop N (intra period) when
// encoding with more than one worker; output is byte-identical to the
// serial path either way.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"hdvideobench"
)

func main() {
	var (
		encode    = flag.Bool("encode", false, "encode raw I420 input")
		decode    = flag.Bool("decode", false, "decode an HDVB stream")
		codecName = flag.String("codec", "h264", "codec: mpeg2, mpeg4, h264")
		inPath    = flag.String("i", "", "input file")
		outPath   = flag.String("o", "", "output file")
		width     = flag.Int("w", 0, "width (encode)")
		height    = flag.Int("h", 0, "height (encode)")
		q         = flag.Int("q", 5, "quantizer (MPEG scale)")
		frames    = flag.Int("frames", 0, "max frames (0 = all)")
		bframes   = flag.Int("bframes", 2, "consecutive B frames (0 disables)")
		refs      = flag.Int("refs", 4, "H.264 reference frames")
		gop       = flag.Int("gop", 0, "intra period / closed-GOP length (0 = first frame only)")
		workers   = flag.Int("workers", runtime.NumCPU(), "GOP-parallel worker goroutines (1 = serial)")
		simd      = flag.Bool("simd", false, "use the SIMD (SWAR) kernels")
		vlc       = flag.Bool("vlc", false, "H.264: use VLC entropy instead of CABAC")
		bench     = flag.Bool("benchmark", false, "print fps timing")
	)
	flag.Parse()

	switch {
	case *encode == *decode:
		fatalf("exactly one of -encode or -decode is required")
	case *inPath == "" || *outPath == "":
		fatalf("-i and -o are required")
	}

	in, err := os.Open(*inPath)
	if err != nil {
		fatalf("%v", err)
	}
	defer in.Close()
	out, err := os.Create(*outPath)
	if err != nil {
		fatalf("%v", err)
	}
	defer out.Close()
	bw := bufio.NewWriterSize(out, 1<<20)
	defer bw.Flush()

	if *encode {
		runEncode(bufio.NewReaderSize(in, 1<<20), bw, encodeParams{
			codec: *codecName, w: *width, h: *height, q: *q,
			frames: *frames, bframes: *bframes, refs: *refs,
			gop: *gop, workers: *workers,
			simd: *simd, vlc: *vlc, bench: *bench,
		})
		return
	}
	runDecode(bufio.NewReaderSize(in, 1<<20), bw, *simd, *workers, *bench)
}

type encodeParams struct {
	codec     string
	w, h, q   int
	frames    int
	bframes   int
	refs      int
	gop       int
	workers   int
	simd, vlc bool
	bench     bool
}

func runEncode(in io.Reader, out io.Writer, p encodeParams) {
	c, err := hdvideobench.ParseCodec(p.codec)
	if err != nil {
		fatalf("%v", err)
	}
	if err := hdvideobench.ValidateResolution(p.w, p.h); err != nil {
		fatalf("%v", err)
	}
	opts := hdvideobench.EncoderOptions{
		Width: p.w, Height: p.h, Q: p.q,
		BFrames: p.bframes, Refs: p.refs, SIMD: p.simd,
		IntraPeriod: p.gop, Workers: p.workers,
	}
	if p.bframes == 0 {
		opts.BFrames = -1
	}
	if p.vlc {
		opts.Entropy = hdvideobench.EntropyVLC
	}

	var frames []*hdvideobench.Frame
	n := 0
	for p.frames == 0 || n < p.frames {
		f := hdvideobench.NewFrame(p.w, p.h)
		if err := f.ReadRaw(in); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				break
			}
			fatalf("reading frame %d: %v", n, err)
		}
		frames = append(frames, f)
		n++
	}

	start := time.Now()
	pkts, hdr, err := hdvideobench.EncodeFramesParallel(c, opts, frames)
	if err != nil {
		fatalf("encoding: %v", err)
	}
	elapsed := time.Since(start)

	if err := hdvideobench.WriteStream(out, hdr, pkts); err != nil {
		fatalf("writing stream: %v", err)
	}
	bytes := 0
	for _, pk := range pkts {
		bytes += len(pk.Payload)
	}
	fmt.Fprintf(os.Stderr, "vcodec: encoded %d frames, %d bytes (%.1f kbit/s at 25 fps)\n",
		n, bytes, float64(bytes*8*25)/float64(n)/1000)
	if p.bench {
		fmt.Fprintf(os.Stderr, "vcodec: %.2f fps (%v)\n", float64(n)/elapsed.Seconds(), elapsed)
	}
}

func runDecode(in io.Reader, out io.Writer, simd bool, workers int, bench bool) {
	hdr, pkts, err := hdvideobench.ReadStream(in)
	if err != nil {
		fatalf("reading stream: %v", err)
	}
	start := time.Now()
	frames, err := hdvideobench.DecodePacketsParallel(hdr, simd, workers, pkts)
	if err != nil {
		fatalf("decoding: %v", err)
	}
	elapsed := time.Since(start)
	for _, f := range frames {
		if err := f.WriteRaw(out); err != nil {
			fatalf("writing raw video: %v", err)
		}
	}
	fmt.Fprintf(os.Stderr, "vcodec: decoded %d frames of %s %dx%d\n",
		len(frames), hdr.Codec, hdr.Width, hdr.Height)
	if bench {
		fmt.Fprintf(os.Stderr, "vcodec: %.2f fps (%v)\n",
			float64(len(frames))/elapsed.Seconds(), elapsed)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "vcodec: "+format+"\n", args...)
	os.Exit(1)
}
