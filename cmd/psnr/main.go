// Command psnr computes the per-frame and average luma PSNR between two raw
// I420 files — the measurement behind the paper's Table V quality column
// (the `psnr` options of the Table IV encoder command lines).
//
//	psnr -w 720 -h 576 -a original.yuv -b decoded.yuv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"hdvideobench"
)

func main() {
	var (
		aPath  = flag.String("a", "", "reference .yuv file")
		bPath  = flag.String("b", "", "distorted .yuv file")
		width  = flag.Int("w", 0, "width")
		height = flag.Int("h", 0, "height")
		quiet  = flag.Bool("quiet", false, "print only the average")
	)
	flag.Parse()
	if *aPath == "" || *bPath == "" || *width <= 0 || *height <= 0 {
		fatalf("-a, -b, -w and -h are required")
	}

	fa, err := os.Open(*aPath)
	if err != nil {
		fatalf("%v", err)
	}
	defer fa.Close()
	fb, err := os.Open(*bPath)
	if err != nil {
		fatalf("%v", err)
	}
	defer fb.Close()
	// Stream both files frame by frame through the raw readers, reusing
	// one frame buffer per side: memory stays at two frames no matter
	// how long the inputs are.
	ra := hdvideobench.NewRawFrameReader(bufio.NewReaderSize(fa, 1<<20), *width, *height)
	rb := hdvideobench.NewRawFrameReader(bufio.NewReaderSize(fb, 1<<20), *width, *height)

	refF := hdvideobench.NewFrame(*width, *height)
	disF := hdvideobench.NewFrame(*width, *height)
	n := 0
	sum := 0.0
	for {
		if err := ra.ReadInto(refF); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				break
			}
			fatalf("reading %s: %v", *aPath, err)
		}
		if err := rb.ReadInto(disF); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				fatalf("%s is shorter than %s", *bPath, *aPath)
			}
			fatalf("reading %s: %v", *bPath, err)
		}
		p := hdvideobench.PSNR(refF, disF)
		if !*quiet {
			fmt.Printf("frame %4d: %6.2f dB\n", n, p)
		}
		sum += p
		n++
	}
	if n == 0 {
		fatalf("no frames compared")
	}
	fmt.Printf("average luma PSNR over %d frames: %.2f dB\n", n, sum/float64(n))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "psnr: "+format+"\n", args...)
	os.Exit(1)
}
