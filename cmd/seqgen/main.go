// Command seqgen writes HD-VideoBench input sequences as raw planar I420
// files — the role of the downloadable YUV inputs on the paper's web page.
//
//	seqgen -seq blue_sky -res 1088p25 -frames 100 -o blue_sky_1088p25.yuv
//	seqgen -seq riverbed -w 320 -h 240 -frames 25 -o riverbed_small.yuv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"hdvideobench"
)

func main() {
	var (
		seqName = flag.String("seq", "blue_sky", "sequence: blue_sky, pedestrian_area, riverbed, rush_hour, sport_pan, scene_cut")
		resName = flag.String("res", "", "resolution name (576p25, 720p25, 1088p25, 2160p25; aliases like 1080p, 4k)")
		width   = flag.Int("w", 0, "custom width (multiple of 16)")
		height  = flag.Int("h", 0, "custom height (multiple of 16)")
		frames  = flag.Int("frames", 100, "number of frames")
		outPath = flag.String("o", "", "output .yuv file")
	)
	flag.Parse()

	seq, err := hdvideobench.ParseSequence(*seqName)
	if err != nil {
		fatalf("%v", err)
	}
	w, h := *width, *height
	if *resName != "" {
		r, err := hdvideobench.ResolutionByName(*resName)
		if err != nil {
			fatalf("%v", err)
		}
		w, h = r.Width, r.Height
	}
	if err := hdvideobench.ValidateResolution(w, h); err != nil {
		fatalf("%v", err)
	}
	if *outPath == "" {
		fatalf("-o is required")
	}

	out, err := os.Create(*outPath)
	if err != nil {
		fatalf("%v", err)
	}
	defer out.Close()
	bw := bufio.NewWriterSize(out, 1<<20)

	gen := hdvideobench.NewSequence(seq, w, h)
	f := hdvideobench.NewFrame(w, h)
	for i := 0; i < *frames; i++ {
		gen.FrameInto(f, i)
		if err := f.WriteRaw(bw); err != nil {
			fatalf("writing frame %d: %v", i, err)
		}
	}
	if err := bw.Flush(); err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "seqgen: wrote %d frames of %v at %dx%d (%d bytes)\n",
		*frames, seq, w, h, *frames*hdvideobench.RawFrameSize(w, h))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "seqgen: "+format+"\n", args...)
	os.Exit(1)
}
