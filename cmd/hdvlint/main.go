// Command hdvlint is the repository's multichecker: it runs the four
// internal/lint analyzers (determinism, noalloc, lockcheck, metriclint)
// over the given package patterns and exits nonzero on any finding.
// CI runs `hdvlint ./...` as its own leg; the tree is expected to stay
// clean — legitimate exceptions carry a per-line
// `//hdvlint:allow <analyzer> -- <reason>` annotation, and the
// annotation grammar itself is linted (stale or malformed annotations
// are findings too).
//
// Usage:
//
//	hdvlint [-list] [packages...]
//
// With no patterns it lints ./.... Run it from the module root (it
// drives `go list`, so it needs the module context).
package main

import (
	"flag"
	"fmt"
	"os"

	"hdvideobench/internal/lint"
	"hdvideobench/internal/lint/loader"
)

func main() {
	listOnly := flag.Bool("list", false, "print the analyzer catalogue and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: hdvlint [-list] [packages...]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Static checks for the invariants this repository runs on.\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listOnly {
		for _, a := range lint.Analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		os.Exit(0)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	l := loader.New(".")
	pkgs, err := l.Load(patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hdvlint: %v\n", err)
		os.Exit(2)
	}
	findings := lint.Run(pkgs, lint.Analyzers)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "hdvlint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
