package hdvideobench

// Ladder-mode acceptance tests: per-rung byte determinism across every
// parallelism setting, the quality guard on hint-seeded motion search,
// and the rate controller's CBR tolerance.

import (
	"crypto/sha256"
	"fmt"
	"testing"
)

// ladderDigest hashes a rendition's header and packet bytes.
func ladderDigest(r LadderRendition) string {
	h := sha256.New()
	fmt.Fprintf(h, "%v|%d|%d|%d|", r.Header.Codec, r.Header.Width, r.Header.Height, r.Header.Flags)
	for _, p := range r.Packets {
		fmt.Fprintf(h, "%d|%d|", p.Type, p.DisplayIndex)
		h.Write(p.Payload)
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// TestLadderDeterministicAcrossParallelism pins the tentpole guarantee:
// every rung's bytes are identical at every worker count and wavefront
// setting, because the analysis rung is deterministic and so are the
// hint fields it feeds the seeded rungs.
func TestLadderDeterministicAcrossParallelism(t *testing.T) {
	const w, h = 192, 160
	rungs := []LadderRung{
		{Name: "low", Width: 96, Height: 80},
		{Name: "full", Width: w, Height: h, Kbps: 300},
	}
	frames := NewSequence(PedestrianArea, w, h).Generate(9)
	for _, c := range []Codec{MPEG2, MPEG4, H264} {
		var want []string
		for _, workers := range []int{1, 4} {
			for _, wavefront := range []bool{false, true} {
				rends, err := EncodeLadder(c, EncoderOptions{
					Width: w, Height: h, IntraPeriod: 4,
					Workers: workers, Wavefront: wavefront,
				}, frames, rungs)
				if err != nil {
					t.Fatalf("%v workers=%d wavefront=%v: %v", c, workers, wavefront, err)
				}
				got := make([]string, len(rends))
				for i, r := range rends {
					got[i] = ladderDigest(r)
				}
				if want == nil {
					want = got
					continue
				}
				for i := range got {
					if got[i] != want[i] {
						t.Errorf("%v workers=%d wavefront=%v: rung %s bytes differ from workers=1 wavefront=off",
							c, workers, wavefront, rends[i].Rung.Name)
					}
				}
			}
		}
	}
}

// TestLadderSeededPSNRGuard bounds the quality cost of cross-rung
// seeding: the seeded rung must land within 0.2 dB of the same rung
// encoded cold (no hints) at the same quantizer — the seed is one extra
// predictor feeding the same RD decisions, so it may shift individual
// vector choices but not degrade the operating point.
func TestLadderSeededPSNRGuard(t *testing.T) {
	const mezzW, mezzH = 352, 288
	const rungW, rungH = 176, 144
	frames := NewSequence(PedestrianArea, mezzW, mezzH).Generate(9)
	small := make([]*Frame, len(frames))
	for i, f := range frames {
		small[i] = DownscaleFrame(f, rungW, rungH)
	}
	opts := EncoderOptions{Width: mezzW, Height: mezzH, IntraPeriod: 4}
	rungs := []LadderRung{
		{Name: "low", Width: rungW, Height: rungH},
		{Name: "top", Width: mezzW, Height: mezzH},
	}
	for _, c := range []Codec{MPEG2, MPEG4, H264} {
		rends, err := EncodeLadder(c, opts, frames, rungs)
		if err != nil {
			t.Fatal(err)
		}
		seeded := rends[0]
		coldOpts := opts
		coldOpts.Width, coldOpts.Height = rungW, rungH
		coldPkts, coldHdr, err := EncodeFramesParallel(c, coldOpts, small)
		if err != nil {
			t.Fatal(err)
		}
		psnr := func(hdr StreamHeader, pkts []Packet) float64 {
			dec, err := NewDecoder(hdr, false)
			if err != nil {
				t.Fatal(err)
			}
			out, err := DecodePackets(dec, pkts)
			if err != nil {
				t.Fatal(err)
			}
			if len(out) != len(small) {
				t.Fatalf("decoded %d frames, want %d", len(out), len(small))
			}
			sum := 0.0
			for i := range out {
				sum += PSNR(small[i], out[i])
			}
			return sum / float64(len(out))
		}
		seededPSNR := psnr(seeded.Header, seeded.Packets)
		coldPSNR := psnr(coldHdr, coldPkts)
		if diff := coldPSNR - seededPSNR; diff > 0.2 {
			t.Errorf("%v: seeded rung %.2f dB vs cold %.2f dB — %.2f dB worse, want <= 0.2",
				c, seededPSNR, coldPSNR, diff)
		}
	}
}

// TestLadderCBRWithinTolerance pins the rate controller's acceptance
// bound: a rate-targeted rung's achieved bitrate lands within 10% of
// the declared budget at the paper's first-frame-only-intra default.
func TestLadderCBRWithinTolerance(t *testing.T) {
	const mezzW, mezzH = 352, 288
	frames := NewSequence(PedestrianArea, mezzW, mezzH).Generate(25)
	rungs := []LadderRung{
		{Name: "low", Width: 176, Height: 144, Kbps: 300},
		{Name: "top", Width: mezzW, Height: mezzH, Kbps: 900},
	}
	for _, c := range []Codec{MPEG2, MPEG4, H264} {
		rends, err := EncodeLadder(c, EncoderOptions{Width: mezzW, Height: mezzH}, frames, rungs)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rends {
			bytes := 0
			for _, p := range r.Packets {
				bytes += len(p.Payload)
			}
			fps := float64(r.Header.FPSNum) / float64(r.Header.FPSDen)
			achieved := float64(bytes) * 8 * fps / float64(len(frames)) / 1000
			target := float64(r.Rung.Kbps)
			if ratio := achieved / target; ratio < 0.9 || ratio > 1.1 {
				t.Errorf("%v rung %s: achieved %.0f kbps vs %.0f target (%.0f%%), want within 10%%",
					c, r.Rung.Name, achieved, target, 100*ratio)
			}
			// The rate-targeted stream must still decode cleanly (the
			// per-slice quantizer bytes round-trip).
			dec, err := NewDecoder(r.Header, false)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := DecodePackets(dec, r.Packets); err != nil {
				t.Fatalf("%v rung %s decode: %v", c, r.Rung.Name, err)
			}
		}
	}
}
