package hdvideobench

import (
	"testing"
)

// TestResolutionByName pins the extended resolution table and its
// aliases: the paper's trio stays canonical, 2160p25 extends it, and
// the "1080p" family lands on the macroblock-aligned 1088-line raster.
func TestResolutionByName(t *testing.T) {
	cases := map[string]string{
		"576p25": "576p25", "sd": "576p25",
		"720p25": "720p25", "hd": "720p25",
		"1088p25": "1088p25", "1080p": "1088p25", "fullhd": "1088p25",
		"2160p25": "2160p25", "4k": "2160p25", "uhd": "2160p25", "2160p": "2160p25",
		"240p25": "240p25", "240p": "240p25", "ld": "240p25",
	}
	for name, want := range cases {
		r, err := ResolutionByName(name)
		if err != nil {
			t.Errorf("ResolutionByName(%q): %v", name, err)
			continue
		}
		if r.Name != want {
			t.Errorf("ResolutionByName(%q) = %q, want %q", name, r.Name, want)
		}
		if r.Width%16 != 0 || r.Height%16 != 0 {
			t.Errorf("%q: %dx%d not macroblock aligned", name, r.Width, r.Height)
		}
	}
	if _, err := ResolutionByName("8k"); err == nil {
		t.Error("unknown resolution accepted")
	}
	if len(Resolutions) != 3 {
		t.Fatalf("the paper's resolution list grew to %d — extensions belong in AllResolutions", len(Resolutions))
	}
	if n := len(AllResolutions); n != 5 {
		t.Fatalf("AllResolutions has %d entries, want the paper's 3 plus 2160p25 and 240p25", n)
	}
}

// TestHDScenarioRoundTrip drives the widened scenario axes end to end:
// the two stressor scenes at 1088p and 2160p must encode and decode in
// all three codecs with sane fidelity. Frame counts stay tiny — the
// point is that the full pixel path works at these rasters, not speed.
func TestHDScenarioRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-megapixel round trips are slow on -short")
	}
	points := []struct {
		res Resolution
		seq Sequence
	}{
		{mustRes(t, "1088p25"), SportPan},
		{mustRes(t, "2160p25"), SceneCut},
	}
	for _, pt := range points {
		for _, c := range []Codec{MPEG2, MPEG4, H264} {
			frames := NewSequence(pt.seq, pt.res.Width, pt.res.Height).Generate(2)
			enc, err := NewEncoder(c, EncoderOptions{
				Width: pt.res.Width, Height: pt.res.Height, SearchRange: 8,
			})
			if err != nil {
				t.Fatalf("%v %s: %v", c, pt.res.Name, err)
			}
			pkts, err := EncodeFrames(enc, frames)
			if err != nil {
				t.Fatalf("%v %s encode: %v", c, pt.res.Name, err)
			}
			dec, err := NewDecoder(enc.Header(), false)
			if err != nil {
				t.Fatalf("%v %s: %v", c, pt.res.Name, err)
			}
			out, err := DecodePackets(dec, pkts)
			if err != nil {
				t.Fatalf("%v %s decode: %v", c, pt.res.Name, err)
			}
			if len(out) != len(frames) {
				t.Fatalf("%v %s: %d frames out, want %d", c, pt.res.Name, len(out), len(frames))
			}
			for i := range out {
				if out[i].Width != pt.res.Width || out[i].Height != pt.res.Height {
					t.Fatalf("%v %s frame %d: decoded %dx%d", c, pt.res.Name, i, out[i].Width, out[i].Height)
				}
				if p := PSNR(frames[i], out[i]); p < 25 {
					t.Errorf("%v %s frame %d: PSNR %.2f below floor", c, pt.res.Name, i, p)
				}
			}
		}
	}
}

// TestStressorScenesAllCodecs round-trips both new scenes in every codec
// at a small raster, so the cheap path runs even under -short.
func TestStressorScenesAllCodecs(t *testing.T) {
	for _, seq := range []Sequence{SportPan, SceneCut, FilmGrain} {
		for _, c := range []Codec{MPEG2, MPEG4, H264} {
			frames := NewSequence(seq, 176, 144).Generate(3)
			enc, err := NewEncoder(c, EncoderOptions{Width: 176, Height: 144})
			if err != nil {
				t.Fatal(err)
			}
			pkts, err := EncodeFrames(enc, frames)
			if err != nil {
				t.Fatalf("%v %v encode: %v", c, seq, err)
			}
			dec, err := NewDecoder(enc.Header(), false)
			if err != nil {
				t.Fatal(err)
			}
			out, err := DecodePackets(dec, pkts)
			if err != nil {
				t.Fatalf("%v %v decode: %v", c, seq, err)
			}
			for i := range out {
				if p := PSNR(frames[i], out[i]); p < 22 {
					t.Errorf("%v %v frame %d: PSNR %.2f below floor", c, seq, i, p)
				}
			}
		}
	}
	if len(AllSequences) != 7 {
		t.Fatalf("AllSequences has %d entries, want the paper's 4 plus 3 stressors", len(AllSequences))
	}
}

func mustRes(t *testing.T, name string) Resolution {
	t.Helper()
	r, err := ResolutionByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return r
}
