package hdvideobench

// Benchmark harness regenerating the paper's evaluation artifacts:
//
//	Figure 1(a) — BenchmarkFig1aDecodeScalar/<codec>/<resolution>
//	Figure 1(b) — BenchmarkFig1bDecodeSIMD/...
//	Figure 1(c) — BenchmarkFig1cEncodeScalar/...
//	Figure 1(d) — BenchmarkFig1dEncodeSIMD/...
//	Table V     — BenchmarkTableV (prints the RD table once; the timing
//	              value is incidental)
//	§VI ablations — BenchmarkAblationH264Entropy, BenchmarkAblationMotionSearch
//
// Every Figure 1 benchmark reports an "fps" metric: frames per second of
// pure encode or decode work, the unit of the paper's Figure 1 axes.
// Absolute values depend on the host (the paper used a 2.4 GHz Xeon); the
// shapes to compare are the codec ordering, the resolution scaling and the
// scalar→SIMD gain. Run with:
//
//	go test -bench=. -benchmem
//
// The frame counts are small (one full I-P-B-B GOP plus one) so the full
// matrix completes in minutes; pass -frames via cmd/hdvbench for longer
// paper-style runs (100 frames).

import (
	"fmt"
	"sync"
	"testing"

	"hdvideobench/internal/codec"
	"hdvideobench/internal/core"
	"hdvideobench/internal/kernel"
	"hdvideobench/internal/motion"
)

// benchFrames is the number of frames per measurement (I P B B P).
const benchFrames = 5

// benchResolutions mirrors the paper's three sizes.
var benchResolutions = Resolutions

var benchCodecs = []Codec{MPEG2, MPEG4, H264}

// inputCache avoids re-rendering source frames for every sub-benchmark.
var (
	inputMu    sync.Mutex
	inputCache = map[string][]*Frame{}
)

func benchInputs(b *testing.B, seq Sequence, w, h int) []*Frame {
	return benchInputsN(b, seq, w, h, benchFrames)
}

// benchInputsN renders and caches n source frames for sub-benchmarks.
func benchInputsN(b *testing.B, seq Sequence, w, h, n int) []*Frame {
	b.Helper()
	key := fmt.Sprintf("%v-%dx%d-%d", seq, w, h, n)
	inputMu.Lock()
	defer inputMu.Unlock()
	if fs, ok := inputCache[key]; ok {
		return fs
	}
	fs := NewSequence(seq, w, h).Generate(n)
	inputCache[key] = fs
	return fs
}

// streamCache holds pre-encoded packets for the decode benchmarks.
var (
	streamMu    sync.Mutex
	streamCache = map[string]struct {
		hdr  StreamHeader
		pkts []Packet
	}{}
)

func benchStream(b *testing.B, c Codec, seq Sequence, w, h int) (StreamHeader, []Packet) {
	b.Helper()
	key := fmt.Sprintf("%v-%v-%dx%d", c, seq, w, h)
	streamMu.Lock()
	defer streamMu.Unlock()
	if s, ok := streamCache[key]; ok {
		return s.hdr, s.pkts
	}
	inputs := NewSequence(seq, w, h).Generate(benchFrames)
	enc, err := NewEncoder(c, EncoderOptions{Width: w, Height: h})
	if err != nil {
		b.Fatal(err)
	}
	pkts, err := EncodeFrames(enc, inputs)
	if err != nil {
		b.Fatal(err)
	}
	streamCache[key] = struct {
		hdr  StreamHeader
		pkts []Packet
	}{enc.Header(), pkts}
	return enc.Header(), pkts
}

func benchDecode(b *testing.B, simd bool) {
	for _, c := range benchCodecs {
		for _, res := range benchResolutions {
			b.Run(fmt.Sprintf("%v/%s", c, res.Name), func(b *testing.B) {
				hdr, pkts := benchStream(b, c, PedestrianArea, res.Width, res.Height)
				b.ReportAllocs()
				b.ResetTimer()
				frames := 0
				for i := 0; i < b.N; i++ {
					dec, err := NewDecoder(hdr, simd)
					if err != nil {
						b.Fatal(err)
					}
					out, err := DecodePackets(dec, pkts)
					if err != nil {
						b.Fatal(err)
					}
					frames += len(out)
				}
				b.ReportMetric(float64(frames)/b.Elapsed().Seconds(), "fps")
			})
		}
	}
}

func benchEncode(b *testing.B, simd bool) {
	for _, c := range benchCodecs {
		for _, res := range benchResolutions {
			b.Run(fmt.Sprintf("%v/%s", c, res.Name), func(b *testing.B) {
				inputs := benchInputs(b, PedestrianArea, res.Width, res.Height)
				b.ReportAllocs()
				b.ResetTimer()
				frames := 0
				for i := 0; i < b.N; i++ {
					enc, err := NewEncoder(c, EncoderOptions{
						Width: res.Width, Height: res.Height, SIMD: simd,
					})
					if err != nil {
						b.Fatal(err)
					}
					if _, err := EncodeFrames(enc, inputs); err != nil {
						b.Fatal(err)
					}
					frames += len(inputs)
				}
				b.ReportMetric(float64(frames)/b.Elapsed().Seconds(), "fps")
			})
		}
	}
}

// BenchmarkFig1aDecodeScalar regenerates Figure 1(a): decoding fps, scalar.
func BenchmarkFig1aDecodeScalar(b *testing.B) { benchDecode(b, false) }

// BenchmarkFig1bDecodeSIMD regenerates Figure 1(b): decoding fps, SIMD.
func BenchmarkFig1bDecodeSIMD(b *testing.B) { benchDecode(b, true) }

// BenchmarkFig1cEncodeScalar regenerates Figure 1(c): encoding fps, scalar.
func BenchmarkFig1cEncodeScalar(b *testing.B) { benchEncode(b, false) }

// BenchmarkFig1dEncodeSIMD regenerates Figure 1(d): encoding fps, SIMD.
func BenchmarkFig1dEncodeSIMD(b *testing.B) { benchEncode(b, true) }

// --- per-codec throughput with GOP-parallel scaling --------------------------
//
// Benchmark{Encode,Decode}{MPEG2,MPEG4,H264} measure one codec at a time
// in raw bytes/s (b.SetBytes of the I420 input) and fps, with workers=N
// sub-benchmarks exercising the GOP-parallel pipeline. The bitstream is
// identical at every worker count, so the sub-benchmarks are directly
// comparable: on a 4+ core machine workers=4 should approach 4× the
// workers=1 figure.

const (
	scaleW, scaleH = 320, 240
	scaleFrames    = 12 // 4 closed GOPs of scaleGOP
	scaleGOP       = 3
)

var scaleWorkerCounts = []int{1, 2, 4}

// benchSliceCounts exercises the intra-frame axis: slices=4 sub-
// benchmarks run at IntraPeriod 0 (the paper's default), where slices
// are the only source of parallel speedup.
var benchSliceCounts = []int{1, 4}

func benchEncodeCodec(b *testing.B, c Codec) {
	inputs := benchInputsN(b, PedestrianArea, scaleW, scaleH, scaleFrames)
	raw := int64(scaleFrames) * int64(RawFrameSize(scaleW, scaleH))
	for _, workers := range scaleWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			opts := EncoderOptions{
				Width: scaleW, Height: scaleH,
				IntraPeriod: scaleGOP, Workers: workers,
			}
			b.SetBytes(raw)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := EncodeFramesParallel(c, opts, inputs); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N*scaleFrames)/b.Elapsed().Seconds(), "fps")
		})
	}
	for _, slices := range benchSliceCounts {
		for _, workers := range scaleWorkerCounts {
			b.Run(fmt.Sprintf("slices=%d/workers=%d", slices, workers), func(b *testing.B) {
				opts := EncoderOptions{
					Width: scaleW, Height: scaleH,
					Slices: slices, Workers: workers, // IntraPeriod 0: slice scaling only
				}
				b.SetBytes(raw)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, _, err := EncodeFramesParallel(c, opts, inputs); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(b.N*scaleFrames)/b.Elapsed().Seconds(), "fps")
			})
		}
	}
}

func benchDecodeCodec(b *testing.B, c Codec) {
	inputs := benchInputsN(b, PedestrianArea, scaleW, scaleH, scaleFrames)
	raw := int64(scaleFrames) * int64(RawFrameSize(scaleW, scaleH))
	pkts, hdr, err := EncodeFramesParallel(c, EncoderOptions{
		Width: scaleW, Height: scaleH, IntraPeriod: scaleGOP,
	}, inputs)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range scaleWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.SetBytes(raw)
			b.ReportAllocs()
			b.ResetTimer()
			frames := 0
			for i := 0; i < b.N; i++ {
				out, err := DecodePacketsParallel(hdr, false, workers, pkts)
				if err != nil {
					b.Fatal(err)
				}
				frames += len(out)
			}
			b.ReportMetric(float64(frames)/b.Elapsed().Seconds(), "fps")
		})
	}
	for _, slices := range benchSliceCounts {
		spkts, shdr, err := EncodeFramesParallel(c, EncoderOptions{
			Width: scaleW, Height: scaleH, Slices: slices,
		}, inputs)
		if err != nil {
			b.Fatal(err)
		}
		for _, workers := range scaleWorkerCounts {
			b.Run(fmt.Sprintf("slices=%d/workers=%d", slices, workers), func(b *testing.B) {
				b.SetBytes(raw)
				b.ReportAllocs()
				b.ResetTimer()
				frames := 0
				for i := 0; i < b.N; i++ {
					out, err := DecodePacketsParallel(shdr, false, workers, spkts)
					if err != nil {
						b.Fatal(err)
					}
					frames += len(out)
				}
				b.ReportMetric(float64(frames)/b.Elapsed().Seconds(), "fps")
			})
		}
	}
}

func BenchmarkEncodeMPEG2(b *testing.B) { benchEncodeCodec(b, MPEG2) }
func BenchmarkEncodeMPEG4(b *testing.B) { benchEncodeCodec(b, MPEG4) }
func BenchmarkEncodeH264(b *testing.B)  { benchEncodeCodec(b, H264) }
func BenchmarkDecodeMPEG2(b *testing.B) { benchDecodeCodec(b, MPEG2) }
func BenchmarkDecodeMPEG4(b *testing.B) { benchDecodeCodec(b, MPEG4) }
func BenchmarkDecodeH264(b *testing.B)  { benchDecodeCodec(b, H264) }

// BenchmarkTableV regenerates Table V on a reduced matrix (one run prints
// the table; use cmd/hdvbench -table5 for the full 100-frame version).
func BenchmarkTableV(b *testing.B) {
	o := SuiteOptions{
		Frames:      benchFrames,
		Resolutions: []Resolution{{Name: "576p25", Width: 720, Height: 576}},
	}
	for i := 0; i < b.N; i++ {
		rs, err := RunTableV(o)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s\n%s", FormatTableV(rs), Gains(rs))
		}
	}
}

// BenchmarkAblationH264Entropy measures the CABAC-vs-VLC trade
// (DESIGN.md §5): compressed bits and speed for both entropy backends.
func BenchmarkAblationH264Entropy(b *testing.B) {
	for _, mode := range []struct {
		name string
		e    EntropyMode
	}{{"CABAC", EntropyCABAC}, {"VLC", EntropyVLC}} {
		b.Run(mode.name, func(b *testing.B) {
			inputs := benchInputs(b, PedestrianArea, 320, 240)
			bits := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				enc, err := NewEncoder(H264, EncoderOptions{
					Width: 320, Height: 240, Entropy: mode.e,
				})
				if err != nil {
					b.Fatal(err)
				}
				pkts, err := EncodeFrames(enc, inputs)
				if err != nil {
					b.Fatal(err)
				}
				bits = 0
				for _, p := range pkts {
					bits += 8 * len(p.Payload)
				}
			}
			b.ReportMetric(float64(bits), "stream-bits")
		})
	}
}

// BenchmarkAblationMotionSearch compares the search algorithms of §IV
// (EPZS for MPEG-2/4, hexagon for H.264) against full search and diamond.
func BenchmarkAblationMotionSearch(b *testing.B) {
	// A realistic block-matching workload: smooth texture, moderate motion.
	w, h, pad := 192, 192, 32
	stride := w + 2*pad
	ref := make([]byte, stride*(h+2*pad))
	for i := range ref {
		ref[i] = byte((i*7)%251) ^ byte(i/stride)
	}
	origin := pad*stride + pad
	cur := make([]byte, w*h)
	for r := 0; r < h; r++ {
		for c := 0; c < w; c++ {
			cur[r*w+c] = ref[origin+(r+5)*stride+(c-7)]
		}
	}
	newEst := func() *motion.Estimator {
		e := &motion.Estimator{
			Kern: kernel.SWAR,
			Cur:  cur, CurOff: 64*w + 64, CurStride: w,
			Ref: ref, RefOrigin: origin, RefStride: stride,
			PosX: 64, PosY: 64, W: 16, H: 16,
			Lambda: 4,
		}
		e.Window(24, w, h, pad)
		return e
	}
	b.Run("FullSearch", func(b *testing.B) {
		e := newEst()
		for i := 0; i < b.N; i++ {
			e.FullSearch()
		}
	})
	b.Run("EPZS", func(b *testing.B) {
		e := newEst()
		preds := []motion.MV{{X: -7, Y: 5}}
		for i := 0; i < b.N; i++ {
			e.EPZS(preds, 0)
		}
	})
	b.Run("Hexagon", func(b *testing.B) {
		e := newEst()
		for i := 0; i < b.N; i++ {
			e.HexagonSearch(motion.MV{})
		}
	})
	b.Run("Diamond", func(b *testing.B) {
		e := newEst()
		for i := 0; i < b.N; i++ {
			e.DiamondSearch(motion.MV{})
		}
	})
}

// BenchmarkLadder pins the tentpole claim of the ladder encoder: a rung
// whose motion searches are seeded with the top rung's scaled motion
// field (ladder mode) encodes measurably faster than the same rung
// searching cold, because the seed predictor lands near the optimum and
// the early-termination threshold fires almost immediately. The input
// is the high-motion sport_pan stressor — the scenario the seed
// targets: a cold search must walk the pan distance before its spatial
// predictors adapt, while the seeded search starts on the true motion.
// (On near-static content both searches terminate early and the gap
// shrinks toward zero; the seed never makes the search slower than one
// extra candidate evaluation.) The top rung's analysis runs once in
// setup for the seeded case; both cases time only the 576p rung
// encode, so the fps metrics compare directly.
func BenchmarkLadder(b *testing.B) {
	const mezzW, mezzH = 1280, 720
	const rungW, rungH = 720, 576
	src := benchInputsN(b, SportPan, mezzW, mezzH, benchFrames)
	small := make([]*Frame, len(src))
	for i, f := range src {
		small[i] = DownscaleFrame(f, rungW, rungH)
	}
	raw := int64(len(small)) * int64(RawFrameSize(rungW, rungH))
	for _, c := range benchCodecs {
		// One top-rung analysis pass per codec, outside the timers.
		top := codec.Default(mezzW, mezzH)
		fields := make(map[int]*motion.Field, len(src))
		var mu sync.Mutex
		top.MotionTap = func(pts int, f *motion.Field) {
			mu.Lock()
			fields[pts] = f
			mu.Unlock()
		}
		if _, _, err := core.EncodeSequenceParallel(c, top, src, 1); err != nil {
			b.Fatal(err)
		}
		for _, seeded := range []bool{false, true} {
			name := fmt.Sprintf("%v/cold", c)
			if seeded {
				name = fmt.Sprintf("%v/seeded", c)
			}
			b.Run(name, func(b *testing.B) {
				cfg := codec.Default(rungW, rungH)
				if seeded {
					cfg.MotionHints = func(pts int) *motion.Field { return fields[pts] }
				}
				b.SetBytes(raw)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, _, err := core.EncodeSequenceParallel(c, cfg, small, 1); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(b.N*len(small))/b.Elapsed().Seconds(), "fps")
			})
		}
	}
}
