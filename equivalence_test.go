package hdvideobench

// Equivalence matrix for the motion-search hot-path overhaul (PR 4).
//
// The early-termination SAD, the per-reference half-pel planes and the
// SWAR residual/reconstruction kernels are pure speed work: every one of
// them must leave the encoded bitstream byte-for-byte unchanged. This
// test pins that property against golden SHA-256 digests captured from
// the pre-overhaul encoder (the PR 3 tree), over the full decision
// surface: all three codecs, two resolutions, both kernel sets and two
// worker counts (workers never change bytes, so both worker counts must
// land on the same digest).
//
// If an intentional bitstream change ever happens (new syntax, different
// mode decision), re-capture the digests by running the test with
// -update-golden and paste the printed map — but for a perf-only PR a
// digest mismatch means a real regression.

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"flag"
	"fmt"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "print golden stream digests instead of asserting them")

// goldenStreams maps codec/resolution/kernels to the SHA-256 of the
// encoded packet sequence, captured at the PR 3 tree (seed path for the
// PR 4 hot-path overhaul).
var goldenStreams = map[string]string{
	"MPEG-2/576p/Scalar": "bc4b841cb952f85f729f0db286d736ff90ef3bf636f36bd505a4b39969f19509",
	"MPEG-2/576p/SIMD":   "bc4b841cb952f85f729f0db286d736ff90ef3bf636f36bd505a4b39969f19509",
	"MPEG-2/720p/Scalar": "f3dbff32729fc3508a9f056bd25a07f981f4f797d20d20f2e534838eee968b3e",
	"MPEG-2/720p/SIMD":   "f3dbff32729fc3508a9f056bd25a07f981f4f797d20d20f2e534838eee968b3e",
	"MPEG-4/576p/Scalar": "145cbb66850de51ab7604f03d2a76aceb8fd5a07c431fea86d004b55d45e9031",
	"MPEG-4/576p/SIMD":   "145cbb66850de51ab7604f03d2a76aceb8fd5a07c431fea86d004b55d45e9031",
	"MPEG-4/720p/Scalar": "684f31d6e430dee10eda1763e61759aea2dbef9257f56fdac7d2e2ab64c2273c",
	"MPEG-4/720p/SIMD":   "684f31d6e430dee10eda1763e61759aea2dbef9257f56fdac7d2e2ab64c2273c",
	"H.264/576p/Scalar":  "e9a89549e0a5c717657925cfb8a0529d8589bf5bc62e38bc081e7b2d243b4815",
	"H.264/576p/SIMD":    "e9a89549e0a5c717657925cfb8a0529d8589bf5bc62e38bc081e7b2d243b4815",
	"H.264/720p/Scalar":  "27e02184810d1ed69a36b3bcbfa7034df365a5a69c5bee19356aa227cf9dd19b",
	"H.264/720p/SIMD":    "27e02184810d1ed69a36b3bcbfa7034df365a5a69c5bee19356aa227cf9dd19b",
}

// digestPackets hashes everything a decoder sees: per packet the frame
// type, display index, payload length and payload bytes.
func digestPackets(pkts []Packet) string {
	h := sha256.New()
	var tmp [16]byte
	for _, p := range pkts {
		binary.LittleEndian.PutUint32(tmp[0:], uint32(p.Type))
		binary.LittleEndian.PutUint32(tmp[4:], uint32(p.DisplayIndex))
		binary.LittleEndian.PutUint64(tmp[8:], uint64(len(p.Payload)))
		h.Write(tmp[:])
		h.Write(p.Payload)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// TestEncodeEquivalenceMatrix pins byte-identical bitstreams between the
// seed encoder path and the optimized hot path.
func TestEncodeEquivalenceMatrix(t *testing.T) {
	resolutions := []struct {
		name string
		w, h int
	}{
		{"576p", 720, 576},
		{"720p", 1280, 720},
	}
	const frames = 5 // one full I-P-B-B GOP plus the trailing P
	for _, c := range []Codec{MPEG2, MPEG4, H264} {
		for _, res := range resolutions {
			inputs := NewSequence(PedestrianArea, res.w, res.h).Generate(frames)
			for _, simd := range []bool{false, true} {
				kname := "Scalar"
				if simd {
					kname = "SIMD"
				}
				key := fmt.Sprintf("%v/%s/%s", c, res.name, kname)
				t.Run(key, func(t *testing.T) {
					// Wavefront is a pure scheduling axis (PR 8): it must
					// land on the same golden digest as the serial path at
					// every worker count, with the flag on or off.
					var first string
					for _, wavefront := range []bool{false, true} {
						for _, workers := range []int{1, 4} {
							pkts, _, err := EncodeFramesParallel(c, EncoderOptions{
								Width: res.w, Height: res.h, SIMD: simd,
								Workers: workers, Wavefront: wavefront,
							}, inputs)
							if err != nil {
								t.Fatalf("workers=%d wavefront=%v: %v", workers, wavefront, err)
							}
							d := digestPackets(pkts)
							if first == "" {
								first = d
							} else if d != first {
								t.Fatalf("workers=%d wavefront=%v diverges: %s vs %s",
									workers, wavefront, d, first)
							}
						}
					}
					if *updateGolden {
						t.Logf("golden %q: %s", key, first)
						return
					}
					want, ok := goldenStreams[key]
					if !ok || want == "" {
						t.Fatalf("no golden digest for %q (run with -update-golden)", key)
					}
					if first != want {
						t.Errorf("bitstream changed: got %s, golden %s", first, want)
					}
				})
			}
		}
	}
}
