// Package hdvideobench is a Go reproduction of HD-VideoBench (Alvarez,
// Salamí, Ramírez, Valero — IISWC 2007): a benchmark for High Definition
// digital video applications.
//
// It provides three complete video codecs built from scratch —
// MPEG-2-class, MPEG-4-ASP-class (Xvid role) and H.264-class (x264 role) —
// together with the paper's four input sequences (procedural equivalents),
// its three HD resolutions, the §IV coding options, and runners that
// regenerate Table V (rate-distortion) and Figure 1(a-d) (decode/encode
// throughput, scalar vs SIMD).
//
// Quick start:
//
//	gen := hdvideobench.NewSequence(hdvideobench.BlueSky, 1280, 720)
//	enc, _ := hdvideobench.NewEncoder(hdvideobench.H264, hdvideobench.EncoderOptions{Width: 1280, Height: 720})
//	for i := 0; i < 25; i++ {
//		pkts, _ := enc.Encode(gen.Frame(i))
//		// write pkts ...
//	}
//
// # GOP-parallel encoding and decoding
//
// The paper's future-work direction — parallel codec versions for chip
// multiprocessors — is built in. With EncoderOptions.IntraPeriod > 0 the
// stream is a series of closed GOPs (no picture references across an I
// frame), and EncodeFramesParallel / DecodePacketsParallel spread those
// GOPs over EncoderOptions.Workers goroutines, each driving a private
// codec instance, with an ordered merge stage reassembling the results:
//
//	frames := hdvideobench.NewSequence(hdvideobench.RushHour, 1280, 720).Generate(48)
//	pkts, hdr, _ := hdvideobench.EncodeFramesParallel(hdvideobench.H264,
//		hdvideobench.EncoderOptions{Width: 1280, Height: 720, IntraPeriod: 6, Workers: 8},
//		frames)
//	decoded, _ := hdvideobench.DecodePacketsParallel(hdr, false, 8, pkts)
//
// The parallel output — bitstream bytes, packet order, display stamps,
// decoded pixels — is byte-identical to the serial path at every worker
// count (a benchmark whose results change with GOMAXPROCS is worthless);
// internal/pipeline's test suite proves it under the race detector.
// SuiteOptions.Workers threads the same parallelism through the Table V
// and Figure 1 runners, and RunScalingReport adds the frames/s-by-worker-
// count dimension to Figure 1.
//
// # Slice-level parallelism
//
// GOP chunks need IntraPeriod > 0, but the paper's default is first-
// frame-only intra — one chunk, no scaling. EncoderOptions.Slices splits
// every frame into N independently coded macroblock-row slices (x264's
// sliced-threads shape): prediction state resets and clamps at slice
// boundaries, the frame packet carries a slice table, and the slices of
// each frame are coded and decoded concurrently across the same Workers
// budget — composing with GOP chunking when both exist. Slices change
// the bitstream (a small, bounded quality cost), but for a fixed slice
// count the output remains byte-identical at every worker count.
// RunScalingMatrixReport sweeps the full slices × workers grid.
//
// See the examples/ directory for complete programs (examples/parallel is
// the parallel API demo) and cmd/hdvbench for the benchmark front end;
// both front ends expose a -workers flag (default runtime.NumCPU(),
// 1 = serial).
package hdvideobench

import (
	"fmt"
	"io"

	"hdvideobench/internal/codec"
	"hdvideobench/internal/container"
	"hdvideobench/internal/core"
	"hdvideobench/internal/frame"
	"hdvideobench/internal/kernel"
	"hdvideobench/internal/metrics"
	"hdvideobench/internal/obs"
	"hdvideobench/internal/seqgen"
	"hdvideobench/internal/stream"
)

// Codec identifies one of the three benchmark codecs.
type Codec = core.CodecID

// The benchmark codecs, in the paper's table order.
const (
	MPEG2 = core.MPEG2
	MPEG4 = core.MPEG4
	H264  = core.H264
)

// ParseCodec maps names like "mpeg2", "xvid" or "h264" to a Codec.
func ParseCodec(name string) (Codec, error) { return core.ParseCodec(name) }

// Frame is a planar YUV 4:2:0 picture.
type Frame = frame.Frame

// NewFrame allocates a picture. Width and height must be even.
func NewFrame(width, height int) *Frame { return frame.New(width, height) }

// RawFrameSize returns the byte size of one raw I420 frame.
func RawFrameSize(width, height int) int { return frame.RawSize(width, height) }

// DownscaleFrame returns src resized to width×height — a box filter
// when both axes shrink by an integer factor, center-aligned bilinear
// otherwise (the ladder downscaler). Both dimensions must be even and
// no larger than the source; there is no upscaler.
func DownscaleFrame(src *Frame, width, height int) *Frame {
	return frame.DownscaleNew(src, width, height)
}

// PSNR returns the luma peak signal-to-noise ratio between two frames in
// decibels (the paper's Table V quality metric).
func PSNR(ref, dist *Frame) float64 { return metrics.PSNRFrames(ref, dist) }

// Sequence identifies one of the four benchmark input sequences (Table III).
type Sequence = seqgen.Sequence

// The four benchmark sequences, plus the scenario stressors
// (SportPan: fast global camera pan; SceneCut: hard shot alternation
// every seqgen.SceneCutPeriod frames; FilmGrain: temporally
// decorrelated grain over a static scene, the rate-control stressor).
const (
	BlueSky        = seqgen.BlueSky
	PedestrianArea = seqgen.PedestrianArea
	Riverbed       = seqgen.Riverbed
	RushHour       = seqgen.RushHour
	SportPan       = seqgen.SportPan
	SceneCut       = seqgen.SceneCut
	FilmGrain      = seqgen.FilmGrain
)

// Sequences lists the paper's four in table order (the benchmark
// default matrix).
var Sequences = seqgen.All

// AllSequences lists every available sequence: the paper's four plus
// the scenario stressors.
var AllSequences = seqgen.Extended

// ParseSequence maps a sequence name ("blue_sky", ...) to its value.
func ParseSequence(name string) (Sequence, error) { return seqgen.Parse(name) }

// SequenceGenerator deterministically renders the frames of one benchmark
// sequence at one resolution.
type SequenceGenerator = seqgen.Generator

// NewSequence returns a generator for the given sequence and resolution.
func NewSequence(s Sequence, width, height int) *SequenceGenerator {
	return seqgen.New(s, width, height)
}

// Resolution is one of the benchmark picture sizes (§IV).
type Resolution = core.Resolution

// Resolutions lists the paper's three sizes: 576p25, 720p25, 1088p25
// (the benchmark default matrix).
var Resolutions = core.Resolutions

// AllResolutions lists every named resolution: the paper's three plus
// 2160p25 (4K UHD).
var AllResolutions = core.AllResolutions

// ResolutionByName resolves a resolution name — canonical ("720p25",
// "2160p25") or alias ("1080p", "4k"; 1080p maps to the 1088-row size,
// heights must be multiples of 16).
func ResolutionByName(name string) (Resolution, error) { return core.ResolutionByName(name) }

// Packet is one coded frame in coding order.
type Packet = container.Packet

// StreamHeader describes a coded stream.
type StreamHeader = container.Header

// Frame types within a Packet.
const (
	FrameI = container.FrameI
	FrameP = container.FrameP
	FrameB = container.FrameB
)

// Encoder consumes display-order frames and produces coded packets.
type Encoder = codec.Encoder

// Decoder consumes coded packets and produces display-order frames.
type Decoder = codec.Decoder

// EntropyMode selects the H.264 entropy coder.
type EntropyMode = codec.EntropyMode

// Entropy coder choices (H.264 only).
const (
	EntropyCABAC = codec.EntropyCABAC
	EntropyVLC   = codec.EntropyVLC
)

// EncoderOptions configures an encoder. Zero fields take the paper's §IV
// defaults (Q=5, two B frames, first-frame-only intra, search range 24,
// four references, CABAC, scalar kernels).
type EncoderOptions struct {
	Width, Height int
	// Q is the quantizer in MPEG scale 1..31; H.264 maps it via Eq. 1.
	Q int
	// Kbps, when > 0, switches the encoder from constant-Q to
	// rate-targeted coding: a per-frame quantizer controller steers the
	// stream toward this average bitrate (at the configured frame rate),
	// and with Slices > 1 each slice additionally carries its own
	// quantizer, rebalanced from the previous frame's per-slice spend.
	// Q then only seeds the controller. 0 (the default) keeps exact
	// constant-Q streams.
	Kbps int
	// BFrames is the number of consecutive B pictures (paper: 2).
	// Set to -1 for no B frames.
	BFrames int
	// IntraPeriod inserts an I frame every N frames; 0 = first frame only.
	IntraPeriod int
	// SearchRange is the full-pel motion search range.
	SearchRange int
	// Refs is the H.264 reference-frame count.
	Refs int
	// SIMD selects the SWAR kernel set (the paper's SIMD codec versions).
	SIMD bool
	// Entropy selects the H.264 entropy coder.
	Entropy EntropyMode
	// Workers is the GOP-chunk parallelism used by EncodeFramesParallel:
	// closed GOPs (IntraPeriod frames each) are encoded concurrently on
	// this many goroutines. 0 or 1 is the serial path, negative selects
	// runtime.NumCPU(). Output is byte-identical for every value.
	Workers int
	// Slices splits every frame into this many independently coded
	// macroblock-row slices (x264's sliced-threads shape; 0/1 = one
	// slice). Unlike Workers, Slices affects the bitstream: prediction
	// clamps at slice boundaries, costing a little compression. In
	// exchange the slices of one frame are coded concurrently across
	// the Workers budget, which is the only parallelism available at
	// the paper's IntraPeriod == 0 default — and for a fixed slice
	// count output stays byte-identical at every worker count.
	Slices int
	// Wavefront enables wavefront (2D) macroblock scheduling inside each
	// slice: macroblock rows run concurrently as soon as their left and
	// top-right dependencies are met, drawing goroutines from the same
	// Workers budget as GOP chunks and slices. Unlike Slices it never
	// changes the bitstream — output stays byte-identical with the flag
	// on or off, at every worker count — so it is the axis that scales a
	// single-slice, IntraPeriod == 0 stream without any compression cost.
	Wavefront bool
	// SceneCutIntra enables adaptive I-frame placement: a subsampled-luma
	// SAD spike between consecutive input frames restarts the GOP with an
	// I frame at the cut instead of waiting for the next IntraPeriod
	// boundary. Opt-in because it moves frame types (the bitstream
	// changes); off, streams are exactly the fixed-GOP ones.
	SceneCutIntra bool
	// Window caps the closed-GOP chunks in flight on the streaming paths
	// (NewStreamEncoder, EncodeStream, Transcode): peak memory is
	// O(Window × IntraPeriod) frames regardless of sequence length.
	// 0 selects 2×Workers. It does not affect the batch entry points.
	Window int
	// Collector, when non-nil, receives the encode pipeline's
	// self-measurements on the streaming paths: per-chunk encode wall
	// time, pool queue depth, ordered-drain stalls, and slice-gate
	// spawn/wait accounting. The serving tier wires one backed by its
	// metrics registry; nil (the default) disables collection with zero
	// per-frame overhead.
	Collector *Collector
}

// config converts public options to the internal configuration.
func (o EncoderOptions) config() (codec.Config, error) {
	cfg := codec.Default(o.Width, o.Height)
	if o.Q != 0 {
		cfg.Q = o.Q
	}
	switch {
	case o.BFrames < 0:
		cfg.BFrames = 0
	case o.BFrames > 0:
		cfg.BFrames = o.BFrames
	}
	cfg.TargetKbps = o.Kbps
	cfg.IntraPeriod = o.IntraPeriod
	if o.SearchRange != 0 {
		cfg.SearchRange = o.SearchRange
	}
	if o.Refs != 0 {
		cfg.Refs = o.Refs
	}
	if o.SIMD {
		cfg.Kernels = kernel.SWAR
	}
	cfg.Entropy = o.Entropy
	cfg.Slices = o.Slices
	cfg.Wavefront = o.Wavefront
	cfg.SceneCutIntra = o.SceneCutIntra
	if err := cfg.Validate(); err != nil {
		return codec.Config{}, err
	}
	return cfg, nil
}

// NewEncoder constructs an encoder for the given codec.
func NewEncoder(c Codec, opts EncoderOptions) (Encoder, error) {
	cfg, err := opts.config()
	if err != nil {
		return nil, err
	}
	return core.NewEncoder(c, cfg)
}

// NewDecoder constructs a decoder for a coded stream. simd selects the SWAR
// motion-compensation kernels (the paper's SIMD decoder versions).
func NewDecoder(hdr StreamHeader, simd bool) (Decoder, error) {
	k := kernel.Scalar
	if simd {
		k = kernel.SWAR
	}
	return core.NewDecoder(hdr, k)
}

// WriteStream writes a stream header and packets to w in HDVB container
// format.
func WriteStream(w io.Writer, hdr StreamHeader, pkts []Packet) error {
	cw, err := container.NewWriter(w, hdr)
	if err != nil {
		return err
	}
	for _, p := range pkts {
		if err := cw.WritePacket(p); err != nil {
			return err
		}
	}
	return nil
}

// ReadStream reads a complete HDVB stream from r.
func ReadStream(r io.Reader) (StreamHeader, []Packet, error) {
	cr, err := container.NewReader(r)
	if err != nil {
		return StreamHeader{}, nil, err
	}
	var pkts []Packet
	for {
		p, err := cr.ReadPacket()
		if err == io.EOF {
			break
		}
		if err != nil {
			return StreamHeader{}, nil, err
		}
		pkts = append(pkts, p)
	}
	return cr.Header(), pkts, nil
}

// EncodeFrames is a convenience that drives enc over frames and flushes.
func EncodeFrames(enc Encoder, frames []*Frame) ([]Packet, error) {
	var pkts []Packet
	for _, f := range frames {
		ps, err := enc.Encode(f)
		if err != nil {
			return nil, err
		}
		pkts = append(pkts, ps...)
	}
	ps, err := enc.Flush()
	if err != nil {
		return nil, err
	}
	return append(pkts, ps...), nil
}

// DecodePackets is a convenience that drives dec over pkts and flushes,
// returning frames in display order.
func DecodePackets(dec Decoder, pkts []Packet) ([]*Frame, error) {
	var out []*Frame
	for _, p := range pkts {
		fs, err := dec.Decode(p)
		if err != nil {
			return nil, err
		}
		out = append(out, fs...)
	}
	return append(out, dec.Flush()...), nil
}

// EncodeFramesParallel encodes display-order frames with opts.Workers
// parallel encoder instances, one closed GOP (opts.IntraPeriod frames)
// per task, and returns the packets in coding order plus the stream
// header. The stream is byte-identical to the serial path (NewEncoder +
// EncodeFrames) for every worker count; opts.Workers of 0 or 1, or
// opts.IntraPeriod == 0, simply run serially, and negative Workers
// selects runtime.NumCPU().
func EncodeFramesParallel(c Codec, opts EncoderOptions, frames []*Frame) ([]Packet, StreamHeader, error) {
	cfg, err := opts.config()
	if err != nil {
		return nil, StreamHeader{}, err
	}
	return core.EncodeSequenceParallel(c, cfg, frames, opts.Workers)
}

// LadderRung is one output rendition of EncodeLadder: a target geometry
// (a named resolution no larger than the mezzanine) plus an optional
// bitrate in kbps (0 = constant-Q at the mezzanine's Q).
type LadderRung = core.LadderRung

// LadderRendition is one finished ladder rung: its coded packets and
// the stream header that decodes them.
type LadderRendition = core.LadderRendition

// ParseLadder parses a rendition-ladder spec like "240p,576p@1200,720p"
// — comma-separated resolution names, each optionally suffixed with
// "@kbps" — and validates it against the mezzanine geometry: known
// names only, no duplicates, no rung larger than the mezzanine.
func ParseLadder(spec string, mezzWidth, mezzHeight int) ([]LadderRung, error) {
	return core.ParseLadder(spec, mezzWidth, mezzHeight)
}

// EncodeLadder encodes one mezzanine sequence into every rung of a
// rendition ladder with shared motion analysis: the largest rung
// encodes first and its per-frame motion fields, scaled down, seed the
// motion searches of every smaller rung, which therefore early-
// terminate far sooner than a cold search. Frames are downscaled from
// the mezzanine once per rung. opts describes the mezzanine (Width and
// Height must match frames); each rung inherits its coding options,
// overridden per rung by the rung's geometry and Kbps. Every rung's
// stream is byte-identical at every Workers count and Wavefront
// setting.
func EncodeLadder(c Codec, opts EncoderOptions, frames []*Frame, rungs []LadderRung) ([]LadderRendition, error) {
	cfg, err := opts.config()
	if err != nil {
		return nil, err
	}
	return core.EncodeLadder(c, cfg, frames, rungs, opts.Workers)
}

// DecodePacketsParallel decodes a coding-order packet stream with workers
// parallel decoder instances, one closed GOP per task, returning frames
// in display order — identical to the serial path for every worker
// count. simd selects the SWAR kernels as in NewDecoder.
func DecodePacketsParallel(hdr StreamHeader, simd bool, workers int, pkts []Packet) ([]*Frame, error) {
	k := kernel.Scalar
	if simd {
		k = kernel.SWAR
	}
	return core.DecodePacketsParallel(hdr, k, pkts, workers)
}

// --- streaming ---------------------------------------------------------------

// StreamEncoder is the bounded-memory streaming encoder: Write accepts
// display-order frames, ReadPacket emits coded packets, and at most
// Window closed-GOP chunks are in flight, so peak memory is independent
// of sequence length. One goroutine writes (then calls Close exactly
// once); another reads until io.EOF. See internal/stream for the full
// scheduling model.
type StreamEncoder = stream.Encoder

// StreamDecoder is the streaming decoder: Write accepts coding-order
// packets, ReadFrame emits display-order frames, same windowed contract
// as StreamEncoder.
type StreamDecoder = stream.Decoder

// ErrStreamAborted is returned by streaming calls after the stream has
// been torn down early (Abort, a failure on the other side, or a gone
// client).
var ErrStreamAborted = stream.ErrAborted

// Collector is the encode pipeline's observability hook (see
// EncoderOptions.Collector). Its fields are metric cells owned by a
// registry in the serving tier; a nil *Collector disables collection
// everywhere it is threaded.
type Collector = obs.Collector

// StreamStats summarizes one streaming pass.
type StreamStats = core.StreamStats

// TranscodeStats summarizes one streaming transcode.
type TranscodeStats = core.TranscodeStats

// NewStreamEncoder builds a streaming encoder for the given codec. The
// chunk length is opts.IntraPeriod, the parallelism opts.Workers, the
// window opts.Window; opts.Workers <= 1 or opts.IntraPeriod == 0 runs
// the serial constant-memory mode. The packet stream is byte-identical
// to the batch path for every worker count and window.
func NewStreamEncoder(c Codec, opts EncoderOptions) (*StreamEncoder, error) {
	cfg, err := opts.config()
	if err != nil {
		return nil, err
	}
	return core.NewStreamEncoder(c, cfg, opts.Workers, opts.Window, opts.Collector)
}

// NewStreamDecoder builds a streaming decoder for a coded stream. simd
// selects the SWAR kernels as in NewDecoder; workers and window as in
// NewStreamEncoder.
func NewStreamDecoder(hdr StreamHeader, simd bool, workers, window int) (*StreamDecoder, error) {
	k := kernel.Scalar
	if simd {
		k = kernel.SWAR
	}
	return core.NewStreamDecoder(hdr, k, workers, window)
}

// EncodeStream pulls frames from next until it returns io.EOF, encodes
// them as c, and writes the HDVB container to w incrementally — the
// constant-memory counterpart of EncodeFramesParallel + WriteStream.
// When w exposes an http.ResponseWriter-style Flush, every packet is
// flushed onto the wire as it is coded. frames declares the sequence
// length in the container header when known upfront (readers can then
// detect truncated transfers); 0 means unknown, read until EOF.
func EncodeStream(w io.Writer, c Codec, opts EncoderOptions, frames int, next func() (*Frame, error)) (StreamStats, error) {
	cfg, err := opts.config()
	if err != nil {
		return StreamStats{}, err
	}
	return core.EncodeStream(w, c, cfg, opts.Workers, opts.Window, frames, next, nil, opts.Collector)
}

// GOPIndex locates every closed GOP of a coded stream by byte offset —
// the seek table behind cmd/hdvserve's HTTP Range support: any entry's
// Offset is a safe point to start reading packets from, because closed
// GOPs never reference across their boundary.
type GOPIndex = container.GOPIndex

// GOPIndexEntry is one GOPIndex row: the byte offset of a GOP's first
// packet header and the display index of its first (I) frame.
type GOPIndexEntry = container.GOPIndexEntry

// EncodeStreamIndexed is EncodeStream plus a GOP index of the produced
// container: the returned index records the byte offset and first frame
// of every closed-GOP chunk, built on the fly without re-parsing the
// stream. The container bytes are identical to EncodeStream's. Use a
// bounded opts.IntraPeriod: indexing drains chunk-granularly, so a
// boundary-less stream would buffer all its coded packets as one chunk.
func EncodeStreamIndexed(w io.Writer, c Codec, opts EncoderOptions, frames int, next func() (*Frame, error)) (StreamStats, GOPIndex, error) {
	cfg, err := opts.config()
	if err != nil {
		return StreamStats{}, GOPIndex{}, err
	}
	var idx GOPIndex
	stats, err := core.EncodeStream(w, c, cfg, opts.Workers, opts.Window, frames, next, func(offset int64, frame int) {
		idx.Entries = append(idx.Entries, GOPIndexEntry{Offset: offset, Frame: frame})
	}, opts.Collector)
	idx.Size = stats.Bytes
	return stats, idx, err
}

// DecodeStream reads an HDVB container from r incrementally, decodes it,
// and hands each display-order frame to yield — the constant-memory
// counterpart of ReadStream + DecodePacketsParallel. An error from yield
// aborts the stream and is returned.
func DecodeStream(r io.Reader, simd bool, workers, window int, yield func(*Frame) error) (StreamHeader, StreamStats, error) {
	k := kernel.Scalar
	if simd {
		k = kernel.SWAR
	}
	return core.DecodeStream(r, k, workers, window, yield)
}

// Transcode decodes the HDVB stream on r and re-encodes it as c, writing
// the new container to w. All stages run concurrently under the same
// bounded window, so arbitrarily long streams transcode at constant
// memory. opts supplies the target coding options; zero Width/Height
// copy the input's dimensions (there is no scaler — explicit dimensions
// must match the input), and opts.SIMD selects the kernels for both the
// decode and encode stages.
func Transcode(r io.Reader, w io.Writer, c Codec, opts EncoderOptions) (TranscodeStats, error) {
	k := kernel.Scalar
	if opts.SIMD {
		k = kernel.SWAR
	}
	return core.Transcode(r, w, c, k, opts.Workers, opts.Window, opts.transcodeConfig(), opts.Collector)
}

// TranscodeReader is the pull-flavored Transcode: it returns a reader
// producing the transcoded HDVB container while the four-stage pipeline
// runs concurrently behind it. Reads surface the first pipeline failure
// as their error (io.EOF on success); Close tears the pipeline down
// early without leaking its goroutines — the natural shape for HTTP
// handlers and io.Copy plumbing that want to stop mid-stream.
func TranscodeReader(r io.Reader, c Codec, opts EncoderOptions) io.ReadCloser {
	k := kernel.Scalar
	if opts.SIMD {
		k = kernel.SWAR
	}
	return core.TranscodeReader(r, c, k, opts.Workers, opts.Window, opts.transcodeConfig(), opts.Collector)
}

// transcodeConfig maps a parsed input header to the target coding
// options shared by Transcode and TranscodeReader: zero Width/Height
// copy the input's dimensions, and the input's frame rate carries over.
func (o EncoderOptions) transcodeConfig() func(container.Header) (codec.Config, error) {
	return func(hdr container.Header) (codec.Config, error) {
		if o.Width == 0 {
			o.Width = hdr.Width
		}
		if o.Height == 0 {
			o.Height = hdr.Height
		}
		cfg, err := o.config()
		if err != nil {
			return codec.Config{}, err
		}
		if hdr.FPSNum > 0 && hdr.FPSDen > 0 {
			cfg.FPSNum, cfg.FPSDen = hdr.FPSNum, hdr.FPSDen
		}
		return cfg, nil
	}
}

// RawFrameReader iterates a raw planar I420 stream frame by frame (the
// input side of cmd/vcodec and cmd/psnr): Next allocates each frame,
// ReadInto reuses one.
type RawFrameReader = frame.RawReader

// NewRawFrameReader returns a frame-by-frame reader over raw I420 data.
func NewRawFrameReader(r io.Reader, width, height int) *RawFrameReader {
	return frame.NewRawReader(r, width, height)
}

// --- benchmark suite ---------------------------------------------------------

// SuiteOptions configures a benchmark run. Zero fields take the paper
// defaults: the full codec/sequence/resolution matrix, Q=5, 25 frames.
type SuiteOptions struct {
	Frames      int
	Q           int
	SIMD        bool
	Resolutions []Resolution
	Sequences   []Sequence
	Codecs      []Codec
	// IntraPeriod inserts an I frame every N frames (0 = first frame
	// only, the paper's setting). Nonzero periods produce closed GOPs,
	// the unit of Workers parallelism.
	IntraPeriod int
	// Workers is the GOP-chunk parallelism for the suite's encode and
	// decode passes (0/1 = serial). Results are byte-identical across
	// worker counts.
	Workers int
	// Slices is the per-frame macroblock-row slice count (0/1 = one
	// slice). Slices parallelize inside each frame — the axis that
	// scales the paper's IntraPeriod == 0 default — at a small,
	// documented prediction-efficiency cost.
	Slices int
	// Wavefront enables wavefront (2D) macroblock scheduling inside each
	// slice for the suite's encode passes — frame-internal parallelism
	// with no bitstream change (see EncoderOptions.Wavefront).
	Wavefront bool
	// Repeats is the number of timing repetitions for speed runs (the
	// fastest is kept); the paper used five runs of each application.
	Repeats int
}

func (o SuiteOptions) core() core.Options {
	k := kernel.Scalar
	if o.SIMD {
		k = kernel.SWAR
	}
	return core.Options{
		Frames:      o.Frames,
		Q:           o.Q,
		Kernels:     k,
		Resolutions: o.Resolutions,
		Sequences:   o.Sequences,
		Codecs:      o.Codecs,
		IntraPeriod: o.IntraPeriod,
		Workers:     o.Workers,
		Slices:      o.Slices,
		Wavefront:   o.Wavefront,
		Repeats:     o.Repeats,
	}
}

// RDResult is one Table V row group.
type RDResult = core.RDResult

// SpeedResult is one Figure 1 bar.
type SpeedResult = core.SpeedResult

// RunTableV measures rate-distortion for the configured matrix.
func RunTableV(o SuiteOptions) ([]RDResult, error) { return core.RunRD(o.core()) }

// RunFigure1 measures throughput: encode=false gives panels (a)/(b)
// depending on o.SIMD, encode=true gives panels (c)/(d).
func RunFigure1(o SuiteOptions, encode bool) ([]SpeedResult, error) {
	dir := core.Decode
	if encode {
		dir = core.Encode
	}
	return core.RunSpeed(o.core(), dir)
}

// RunScalingReport measures throughput at each worker count — Figure 1's
// scaling dimension (frames/s at 1, 2, 4, N workers). encode selects the
// encode or decode direction; workerCounts nil defaults to
// {1, 2, 4, runtime.NumCPU()}. All counts run identical coding options
// (IntraPeriod defaults to core's scaling GOP so chunks exist), so the
// bitstreams agree and only wall-clock varies.
func RunScalingReport(o SuiteOptions, encode bool, workerCounts []int) ([]SpeedResult, error) {
	dir := core.Decode
	if encode {
		dir = core.Encode
	}
	return core.RunScaling(o.core(), dir, workerCounts)
}

// RunScalingMatrixReport sweeps the full slices × workers grid: every
// slice count is measured at every worker count under otherwise
// identical options (IntraPeriod is honored as given — 0, the paper's
// default, is exactly where slices are the only scaling axis). nil
// workerCounts defaults to {1, 2, 4, runtime.NumCPU()}; nil sliceCounts
// measures only o.Slices.
func RunScalingMatrixReport(o SuiteOptions, encode bool, workerCounts, sliceCounts []int) ([]SpeedResult, error) {
	dir := core.Decode
	if encode {
		dir = core.Encode
	}
	return core.RunScalingMatrix(o.core(), dir, workerCounts, sliceCounts)
}

// FormatScaling renders scaling results as a worker-count table.
func FormatScaling(rs []SpeedResult, title string) string { return core.FormatScaling(rs, title) }

// FormatScalingJSON renders scaling results as machine-readable JSON
// (the BENCH_*.json trajectory format), carrying the run configuration
// so the file is self-describing.
func FormatScalingJSON(o SuiteOptions, rs []SpeedResult) ([]byte, error) {
	return core.FormatScalingJSON(o.core(), rs)
}

// FormatTableV renders RD results in the paper's Table V layout.
func FormatTableV(rs []RDResult) string { return core.FormatTableV(rs) }

// FormatFigure1 renders speed results as one Figure 1 panel.
func FormatFigure1(rs []SpeedResult, title string) string { return core.FormatFigure1(rs, title) }

// Describe summarizes the benchmark composition (Tables I-IV).
func Describe() string { return core.Describe() }

// FormatSpeedupReport joins a scalar and a SIMD speed run into the §VI
// SIMD speed-up summary.
func FormatSpeedupReport(scalar, simd []SpeedResult) string {
	return core.FormatSpeedups(core.Speedups(scalar, simd))
}

// Gains summarizes compression gains versus MPEG-2 (§VI narrative).
func Gains(rs []RDResult) string { return core.FormatGains(core.CompressionGains(rs)) }

// ValidateResolution checks that a custom size is usable (multiple of 16).
func ValidateResolution(width, height int) error {
	if width <= 0 || height <= 0 || width%16 != 0 || height%16 != 0 {
		return fmt.Errorf("hdvideobench: dimensions must be positive multiples of 16, got %dx%d", width, height)
	}
	return nil
}
