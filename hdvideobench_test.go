package hdvideobench

import (
	"bytes"
	"fmt"
	"io"
	"testing"
	"time"
)

func TestPublicRoundTripAllCodecs(t *testing.T) {
	for _, c := range []Codec{MPEG2, MPEG4, H264} {
		gen := NewSequence(RushHour, 96, 80)
		frames := gen.Generate(5)
		enc, err := NewEncoder(c, EncoderOptions{Width: 96, Height: 80})
		if err != nil {
			t.Fatal(err)
		}
		pkts, err := EncodeFrames(enc, frames)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := NewDecoder(enc.Header(), false)
		if err != nil {
			t.Fatal(err)
		}
		out, err := DecodePackets(dec, pkts)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != len(frames) {
			t.Fatalf("%v: %d frames out", c, len(out))
		}
		for i := range out {
			if PSNR(frames[i], out[i]) < 25 {
				t.Errorf("%v frame %d: PSNR %.2f", c, i, PSNR(frames[i], out[i]))
			}
		}
	}
}

func TestStreamFileRoundTrip(t *testing.T) {
	gen := NewSequence(BlueSky, 96, 80)
	enc, err := NewEncoder(H264, EncoderOptions{Width: 96, Height: 80})
	if err != nil {
		t.Fatal(err)
	}
	pkts, err := EncodeFrames(enc, gen.Generate(4))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteStream(&buf, enc.Header(), pkts); err != nil {
		t.Fatal(err)
	}
	hdr, pkts2, err := ReadStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Width != 96 || len(pkts2) != len(pkts) {
		t.Fatalf("header %+v, %d packets", hdr, len(pkts2))
	}
	dec, err := NewDecoder(hdr, true)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodePackets(dec, pkts2)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 {
		t.Fatalf("%d frames", len(out))
	}
}

func TestEncoderOptionsValidation(t *testing.T) {
	if _, err := NewEncoder(H264, EncoderOptions{Width: 100, Height: 80}); err == nil {
		t.Error("non-multiple-of-16 width must fail")
	}
	if _, err := NewEncoder(H264, EncoderOptions{Width: 96, Height: 80, Q: 40}); err == nil {
		t.Error("Q out of range must fail")
	}
	if err := ValidateResolution(96, 80); err != nil {
		t.Error(err)
	}
	if err := ValidateResolution(97, 80); err == nil {
		t.Error("odd width must fail validation")
	}
}

func TestBFramesDisabled(t *testing.T) {
	gen := NewSequence(RushHour, 96, 80)
	enc, err := NewEncoder(MPEG2, EncoderOptions{Width: 96, Height: 80, BFrames: -1})
	if err != nil {
		t.Fatal(err)
	}
	pkts, err := EncodeFrames(enc, gen.Generate(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkts {
		if p.Type == FrameB {
			t.Fatal("B frame produced with BFrames: -1")
		}
	}
}

// TestTableVShape runs the mini suite and checks the paper's headline
// orderings: at equal quantizer the bitrate ladder is
// H.264 < MPEG-4 < MPEG-2 (Table V / §VI).
func TestTableVShape(t *testing.T) {
	o := SuiteOptions{
		Frames:      5,
		Resolutions: []Resolution{{Name: "test", Width: 160, Height: 96}},
	}
	results, err := RunTableV(o)
	if err != nil {
		t.Fatal(err)
	}
	type kbps map[Codec]float64
	bySeq := map[Sequence]kbps{}
	for _, r := range results {
		if bySeq[r.Sequence] == nil {
			bySeq[r.Sequence] = kbps{}
		}
		bySeq[r.Sequence][r.Codec] = r.Kbps
	}
	violations := 0
	for seq, m := range bySeq {
		if !(m[H264] < m[MPEG4] && m[MPEG4] < m[MPEG2]) {
			t.Logf("%v: H.264 %.0f, MPEG-4 %.0f, MPEG-2 %.0f", seq, m[H264], m[MPEG4], m[MPEG2])
			violations++
		}
	}
	// The ordering must hold on the clear majority of sequences (the paper
	// itself has riverbed compressing poorly for everyone).
	if violations > 1 {
		t.Errorf("bitrate ladder violated on %d of %d sequences", violations, len(bySeq))
	}
}

// TestSIMDNotSlower verifies the Figure 1 kernel axis is wired: the SWAR
// encoder must not be slower than the scalar one (the strict >1 speed-up
// shape is measured by the benchmarks, where timing is controlled).
func TestSIMDNotSlower(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	run := func(simd bool) time.Duration {
		gen := NewSequence(PedestrianArea, 320, 240)
		frames := gen.Generate(6)
		enc, err := NewEncoder(MPEG2, EncoderOptions{Width: 320, Height: 240, SIMD: simd})
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		if _, err := EncodeFrames(enc, frames); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	run(false) // warm up page cache / JIT-free but warms branch predictors
	scalar := run(false)
	simd := run(true)
	t.Logf("scalar %v, SIMD %v, speed-up %.2fx", scalar, simd, scalar.Seconds()/simd.Seconds())
	if simd > scalar*11/10 {
		t.Errorf("SWAR encode slower than scalar: %v vs %v", simd, scalar)
	}
}

func TestDescribeAndFormatters(t *testing.T) {
	if Describe() == "" {
		t.Error("empty describe")
	}
	o := SuiteOptions{
		Frames:      3,
		Resolutions: []Resolution{{Name: "test", Width: 96, Height: 80}},
		Sequences:   []Sequence{RushHour},
	}
	rs, err := RunTableV(o)
	if err != nil {
		t.Fatal(err)
	}
	if FormatTableV(rs) == "" || Gains(rs) == "" {
		t.Error("empty reports")
	}
}

// TestPublicStreamingRoundTrip drives the public streaming API end to
// end: EncodeStream must reproduce the batch container bytes, Transcode
// must convert it, and DecodeStream must recover every frame.
func TestPublicStreamingRoundTrip(t *testing.T) {
	const w, h, n, gop = 96, 80, 10, 3
	opts := EncoderOptions{Width: w, Height: h, IntraPeriod: gop, Workers: 4, SearchRange: 8, Refs: 2}

	// Batch reference.
	inputs := NewSequence(BlueSky, w, h).Generate(n)
	pkts, hdr, err := EncodeFramesParallel(MPEG2, opts, inputs)
	if err != nil {
		t.Fatal(err)
	}
	var batch bytes.Buffer
	if err := WriteStream(&batch, hdr, pkts); err != nil {
		t.Fatal(err)
	}

	// Streaming encode.
	gen := NewSequence(BlueSky, w, h)
	i := 0
	var streamed bytes.Buffer
	stats, err := EncodeStream(&streamed, MPEG2, opts, 0, func() (*Frame, error) {
		if i >= n {
			return nil, io.EOF
		}
		f := gen.Frame(i)
		i++
		return f, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Frames != n {
		t.Fatalf("encoded %d frames, want %d", stats.Frames, n)
	}
	if !bytes.Equal(streamed.Bytes(), batch.Bytes()) {
		t.Fatalf("streaming container differs from batch (%d vs %d bytes)", streamed.Len(), batch.Len())
	}

	// Streaming transcode MPEG-2 -> H.264.
	var h264 bytes.Buffer
	tstats, err := Transcode(bytes.NewReader(streamed.Bytes()), &h264, H264,
		EncoderOptions{IntraPeriod: gop, Workers: 2, SearchRange: 8, Refs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tstats.Frames != n {
		t.Fatalf("transcoded %d frames, want %d", tstats.Frames, n)
	}

	// Streaming decode of the transcoded stream.
	count := 0
	dhdr, _, err := DecodeStream(bytes.NewReader(h264.Bytes()), false, 2, 0, func(f *Frame) error {
		if f.PTS != count {
			return fmt.Errorf("frame %d: PTS %d", count, f.PTS)
		}
		if p := PSNR(inputs[count], f); p < 20 {
			return fmt.Errorf("frame %d: PSNR %.2f dB after transcode", count, p)
		}
		count++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if dhdr.Width != w || dhdr.Height != h {
		t.Fatalf("decoded header %dx%d", dhdr.Width, dhdr.Height)
	}
	if count != n {
		t.Fatalf("decoded %d frames, want %d", count, n)
	}
}

// TestRawFrameReader round-trips frames through WriteRaw and the
// streaming raw reader, checking PTS stamping and clean EOF.
func TestRawFrameReader(t *testing.T) {
	const w, h, n = 96, 80, 4
	frames := NewSequence(RushHour, w, h).Generate(n)
	var raw bytes.Buffer
	for _, f := range frames {
		if err := f.WriteRaw(&raw); err != nil {
			t.Fatal(err)
		}
	}
	rr := NewRawFrameReader(bytes.NewReader(raw.Bytes()), w, h)
	for i := 0; i < n; i++ {
		f, err := rr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.PTS != i {
			t.Fatalf("frame %d: PTS %d", i, f.PTS)
		}
		if p := PSNR(frames[i], f); p < 100 {
			t.Fatalf("frame %d: lossy raw round trip (PSNR %.2f)", i, p)
		}
	}
	if _, err := rr.Next(); err != io.EOF {
		t.Fatalf("after last frame: %v, want io.EOF", err)
	}
	if rr.Count() != n {
		t.Fatalf("Count = %d, want %d", rr.Count(), n)
	}
}
