module hdvideobench

go 1.24
