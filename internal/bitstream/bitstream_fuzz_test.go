package bitstream

import (
	"testing"
)

// FuzzBitReader drives a Reader with an op tape derived from the fuzz
// input: each op byte selects read/peek/skip/align and a width. Whatever
// the tape does, the Reader must never panic, never report negative
// remaining bits, and must return zeros once it has overrun.
func FuzzBitReader(f *testing.F) {
	// Seed corpus from valid streams produced by the Writer.
	w := NewWriter(16)
	w.WriteBits(0x5a5, 12)
	w.WriteBits(1, 1)
	w.AlignByte()
	w.WriteBits(0xffff, 16)
	valid := append([]byte(nil), w.Bytes()...)
	f.Add(valid, valid)
	f.Add([]byte{}, []byte{1, 2, 3})
	f.Add([]byte{0xde, 0xad, 0xbe, 0xef}, []byte{57, 0, 1, 32, 8})

	f.Fuzz(func(t *testing.T, data, ops []byte) {
		r := NewReader(data)
		for _, op := range ops {
			n := uint(op & 0x3f)
			if n > 57 {
				n = 57
			}
			before := r.BitsRemaining()
			if before < 0 {
				t.Fatalf("negative BitsRemaining %d", before)
			}
			switch op >> 6 {
			case 0:
				v := r.ReadBits(n)
				if n < 57 && v >= 1<<n {
					t.Fatalf("ReadBits(%d) = %#x exceeds %d bits", n, v, n)
				}
				if r.Err() != nil && v != 0 {
					t.Fatalf("ReadBits(%d) = %#x after overrun, want 0", n, v)
				}
			case 1:
				p := r.PeekBits(n)
				if r.Err() == nil {
					if got := r.ReadBits(n); r.Err() == nil && got != p {
						t.Fatalf("PeekBits(%d) = %#x but ReadBits = %#x", n, p, got)
					}
				}
			case 2:
				r.SkipBits(n)
			default:
				r.AlignByte()
			}
			if after := r.BitsRemaining(); after > before {
				t.Fatalf("BitsRemaining grew %d -> %d", before, after)
			}
		}
	})
}

// FuzzBitRoundTrip writes fuzz-chosen values through the Writer and reads
// them back, checking writer/reader symmetry for arbitrary widths.
func FuzzBitRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint8(1), uint64(1), uint8(57))
	f.Add(uint64(0xdead), uint8(16), uint64(0x1), uint8(3))
	f.Fuzz(func(t *testing.T, a uint64, an uint8, b uint64, bn uint8) {
		na := uint(an)%57 + 1
		nb := uint(bn)%57 + 1
		w := NewWriter(16)
		w.WriteBits(a, na)
		w.WriteBits(b, nb)
		r := NewReader(w.Bytes())
		wantA := a & ((1 << na) - 1)
		wantB := b & ((1 << nb) - 1)
		if got := r.ReadBits(na); got != wantA {
			t.Fatalf("ReadBits(%d) = %#x, want %#x", na, got, wantA)
		}
		if got := r.ReadBits(nb); got != wantB {
			t.Fatalf("ReadBits(%d) = %#x, want %#x", nb, got, wantB)
		}
		if r.Err() != nil {
			t.Fatalf("unexpected error: %v", r.Err())
		}
	})
}
