// Package bitstream implements MSB-first bit-level writers and readers used
// by the VLC entropy layers of the MPEG-2 and MPEG-4 codecs.
package bitstream

import (
	"errors"
	"fmt"
)

// ErrOverrun is returned when a reader is asked for more bits than remain.
var ErrOverrun = errors.New("bitstream: read past end of stream")

// Writer accumulates bits MSB-first into a growing byte buffer.
// The zero value is ready to use.
type Writer struct {
	buf  []byte
	acc  uint64 // pending bits, left-aligned within the low `n` bits
	n    uint   // number of pending bits in acc (< 8 after flushAcc)
	bits int    // total bits written
}

// NewWriter returns a Writer with capacity preallocated for sizeHint bytes.
func NewWriter(sizeHint int) *Writer {
	return &Writer{buf: make([]byte, 0, sizeHint)}
}

// WriteBits writes the low n bits of v, MSB first. n must be in [0, 57].
func (w *Writer) WriteBits(v uint64, n uint) {
	if n > 57 {
		panic(fmt.Sprintf("bitstream: WriteBits n=%d out of range", n))
	}
	if n == 0 {
		return
	}
	v &= (1 << n) - 1
	w.acc = w.acc<<n | v
	w.n += n
	w.bits += int(n)
	for w.n >= 8 {
		w.n -= 8
		w.buf = append(w.buf, byte(w.acc>>w.n))
	}
}

// WriteBit writes a single bit.
func (w *Writer) WriteBit(b int) {
	w.WriteBits(uint64(b&1), 1)
}

// BitsWritten reports the total number of bits written so far.
func (w *Writer) BitsWritten() int { return w.bits }

// Len reports the number of complete bytes buffered so far.
func (w *Writer) Len() int { return len(w.buf) }

// Bytes flushes any partial byte (padding with zero bits) and returns the
// underlying buffer. The Writer remains usable; further writes start on a
// byte boundary.
func (w *Writer) Bytes() []byte {
	w.AlignByte()
	return w.buf
}

// AlignByte pads the stream with zero bits up to the next byte boundary.
func (w *Writer) AlignByte() {
	if w.n > 0 {
		pad := 8 - w.n
		w.acc <<= pad
		w.buf = append(w.buf, byte(w.acc))
		w.acc = 0
		w.n = 0
		w.bits += int(pad)
	}
}

// AppendWriter appends src's entire bit sequence — complete bytes plus any
// pending partial byte — to w, without aligning either writer. The result
// is bit-for-bit what a single writer would hold after replaying both
// write sequences in order, which is what lets per-row writers concatenate
// into one slice stream. src is not modified and stays usable.
func (w *Writer) AppendWriter(src *Writer) {
	if w.n == 0 {
		// Byte-aligned destination: complete bytes copy wholesale.
		w.buf = append(w.buf, src.buf...)
		w.bits += 8 * len(src.buf)
	} else {
		for _, b := range src.buf {
			w.WriteBits(uint64(b), 8)
		}
	}
	if src.n > 0 {
		w.WriteBits(src.acc, src.n)
	}
}

// Reset clears the writer for reuse, keeping the allocated buffer.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.acc = 0
	w.n = 0
	w.bits = 0
}

// Reader consumes bits MSB-first from a byte slice.
type Reader struct {
	buf []byte
	pos int // next byte index
	acc uint64
	n   uint // valid bits in acc
	err error
}

// NewReader returns a Reader over buf. The Reader does not copy buf.
func NewReader(buf []byte) *Reader {
	return &Reader{buf: buf}
}

// Reset re-points the reader at buf and clears all state, allowing one
// Reader to serve many payloads without reallocation.
func (r *Reader) Reset(buf []byte) {
	*r = Reader{buf: buf}
}

// Err returns the first error encountered (ErrOverrun), if any.
func (r *Reader) Err() error { return r.err }

func (r *Reader) fill() {
	for r.n <= 56 && r.pos < len(r.buf) {
		r.acc = r.acc<<8 | uint64(r.buf[r.pos])
		r.pos++
		r.n += 8
	}
}

// ReadBits reads n bits MSB-first. n must be in [0, 57]. After the end of
// the stream it returns 0 and records ErrOverrun.
func (r *Reader) ReadBits(n uint) uint64 {
	if n > 57 {
		panic(fmt.Sprintf("bitstream: ReadBits n=%d out of range", n))
	}
	if n == 0 {
		return 0
	}
	if r.n < n {
		r.fill()
		if r.n < n {
			r.err = ErrOverrun
			r.n = 0
			return 0
		}
	}
	r.n -= n
	v := (r.acc >> r.n) & ((1 << n) - 1)
	return v
}

// ReadBit reads a single bit.
func (r *Reader) ReadBit() int {
	return int(r.ReadBits(1))
}

// PeekBits returns the next n bits without consuming them. Peeking past the
// end of the stream returns the available bits padded with zeros and does
// not set an error.
func (r *Reader) PeekBits(n uint) uint64 {
	if n > 57 {
		panic(fmt.Sprintf("bitstream: PeekBits n=%d out of range", n))
	}
	if r.n < n {
		r.fill()
	}
	if r.n >= n {
		return (r.acc >> (r.n - n)) & ((1 << n) - 1)
	}
	// Fewer than n bits remain: left-align what we have.
	return (r.acc & ((1 << r.n) - 1)) << (n - r.n)
}

// SkipBits discards n bits.
func (r *Reader) SkipBits(n uint) {
	r.ReadBits(n)
}

// BitsRemaining reports how many unread bits remain.
func (r *Reader) BitsRemaining() int {
	return int(r.n) + 8*(len(r.buf)-r.pos)
}

// AlignByte discards bits up to the next byte boundary.
func (r *Reader) AlignByte() {
	if rem := r.n % 8; rem != 0 {
		r.ReadBits(rem)
	}
}
