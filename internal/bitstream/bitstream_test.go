package bitstream

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadBasic(t *testing.T) {
	w := NewWriter(16)
	w.WriteBits(0b101, 3)
	w.WriteBits(0xFF, 8)
	w.WriteBits(0, 5)
	w.WriteBits(0x12345, 20)
	data := w.Bytes()

	r := NewReader(data)
	if got := r.ReadBits(3); got != 0b101 {
		t.Fatalf("got %b", got)
	}
	if got := r.ReadBits(8); got != 0xFF {
		t.Fatalf("got %x", got)
	}
	if got := r.ReadBits(5); got != 0 {
		t.Fatalf("got %x", got)
	}
	if got := r.ReadBits(20); got != 0x12345 {
		t.Fatalf("got %x", got)
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

func TestSingleBits(t *testing.T) {
	w := NewWriter(4)
	bits := []int{1, 0, 1, 1, 0, 0, 1, 0, 1}
	for _, b := range bits {
		w.WriteBit(b)
	}
	r := NewReader(w.Bytes())
	for i, want := range bits {
		if got := r.ReadBit(); got != want {
			t.Fatalf("bit %d: got %d want %d", i, got, want)
		}
	}
}

func TestBitsWritten(t *testing.T) {
	w := NewWriter(4)
	w.WriteBits(1, 1)
	w.WriteBits(3, 7)
	if w.BitsWritten() != 8 {
		t.Fatalf("BitsWritten = %d", w.BitsWritten())
	}
	w.WriteBits(1, 3)
	if w.BitsWritten() != 11 {
		t.Fatalf("BitsWritten = %d", w.BitsWritten())
	}
	w.AlignByte()
	if w.BitsWritten() != 16 {
		t.Fatalf("after align BitsWritten = %d", w.BitsWritten())
	}
}

func TestOverrun(t *testing.T) {
	r := NewReader([]byte{0xAB})
	r.ReadBits(8)
	if r.Err() != nil {
		t.Fatal("unexpected early error")
	}
	if got := r.ReadBits(1); got != 0 {
		t.Fatalf("overrun read = %d", got)
	}
	if r.Err() != ErrOverrun {
		t.Fatalf("err = %v", r.Err())
	}
}

func TestPeek(t *testing.T) {
	w := NewWriter(4)
	w.WriteBits(0b1101_0110, 8)
	w.WriteBits(0b1010, 4)
	r := NewReader(w.Bytes())
	if got := r.PeekBits(4); got != 0b1101 {
		t.Fatalf("peek = %b", got)
	}
	// Peek must not consume.
	if got := r.ReadBits(8); got != 0b1101_0110 {
		t.Fatalf("read after peek = %b", got)
	}
	if got := r.PeekBits(4); got != 0b1010 {
		t.Fatalf("second peek = %b", got)
	}
}

func TestPeekPastEnd(t *testing.T) {
	r := NewReader([]byte{0b1100_0000})
	r.ReadBits(6)
	// Only 2 bits remain; peeking 8 pads with zeros.
	if got := r.PeekBits(8); got != 0 {
		t.Fatalf("peek past end = %b", got)
	}
	if r.Err() != nil {
		t.Fatal("peek must not set error")
	}
}

func TestAlign(t *testing.T) {
	w := NewWriter(4)
	w.WriteBits(1, 1)
	w.AlignByte()
	w.WriteBits(0xCD, 8)
	r := NewReader(w.Bytes())
	r.ReadBits(1)
	r.AlignByte()
	if got := r.ReadBits(8); got != 0xCD {
		t.Fatalf("after align got %x", got)
	}
}

func TestBitsRemaining(t *testing.T) {
	r := NewReader([]byte{0, 0, 0})
	if r.BitsRemaining() != 24 {
		t.Fatalf("BitsRemaining = %d", r.BitsRemaining())
	}
	r.ReadBits(5)
	if r.BitsRemaining() != 19 {
		t.Fatalf("BitsRemaining = %d", r.BitsRemaining())
	}
}

func TestWriterReset(t *testing.T) {
	w := NewWriter(4)
	w.WriteBits(0xFFFF, 16)
	w.Reset()
	if w.Len() != 0 || w.BitsWritten() != 0 {
		t.Fatal("reset did not clear writer")
	}
	w.WriteBits(0xA, 4)
	r := NewReader(w.Bytes())
	if got := r.ReadBits(4); got != 0xA {
		t.Fatalf("after reset got %x", got)
	}
}

// TestAppendWriter proves bit-level concatenation of independent writers
// reproduces the single-writer bit sequence exactly — the property the
// wavefront row writers rely on. Random token streams are split at random
// boundaries across several writers and reassembled with AppendWriter; the
// result must be byte-identical (including the final alignment padding) to
// one writer taking every token.
func TestAppendWriter(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		parts := 1 + rng.Intn(6)
		ref := NewWriter(64)
		ws := make([]*Writer, parts)
		for i := range ws {
			ws[i] = NewWriter(16)
		}
		for i := 0; i < n; i++ {
			bits := uint(1 + rng.Intn(57))
			v := rng.Uint64() & ((1 << bits) - 1)
			ref.WriteBits(v, bits)
			ws[i*parts/n].WriteBits(v, bits)
		}
		cat := NewWriter(64)
		for _, w := range ws {
			cat.AppendWriter(w)
		}
		if cat.BitsWritten() != ref.BitsWritten() {
			return false
		}
		got, want := cat.Bytes(), ref.Bytes()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestAppendWriterEmpty covers the degenerate shapes: empty source, empty
// destination, and both partial.
func TestAppendWriterEmpty(t *testing.T) {
	w := NewWriter(4)
	w.AppendWriter(NewWriter(0))
	if w.BitsWritten() != 0 {
		t.Fatalf("append empty onto empty: bits = %d", w.BitsWritten())
	}
	src := NewWriter(4)
	src.WriteBits(0b101, 3)
	w.AppendWriter(src)
	if w.BitsWritten() != 3 {
		t.Fatalf("append partial onto empty: bits = %d", w.BitsWritten())
	}
	w.AppendWriter(NewWriter(0))
	if w.BitsWritten() != 3 {
		t.Fatalf("append empty onto partial: bits = %d", w.BitsWritten())
	}
	r := NewReader(w.Bytes())
	if got := r.ReadBits(3); got != 0b101 {
		t.Fatalf("got %b", got)
	}
}

// TestRoundTripProperty writes a random token sequence and reads it back.
func TestRoundTripProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		type tok struct {
			v uint64
			n uint
		}
		toks := make([]tok, n)
		w := NewWriter(64)
		for i := range toks {
			bits := uint(1 + rng.Intn(57))
			v := rng.Uint64() & ((1 << bits) - 1)
			toks[i] = tok{v, bits}
			w.WriteBits(v, bits)
		}
		r := NewReader(w.Bytes())
		for _, tk := range toks {
			if got := r.ReadBits(tk.n); got != tk.v {
				return false
			}
		}
		return r.Err() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
