package interp

import (
	"testing"

	"hdvideobench/internal/kernel"
)

// BenchmarkChromaInterp sizes the "per-reference chroma planes" idea —
// precompute every eighth-pel chroma sub-position once per reference
// (like BuildHalfPel6 does for luma) so motion compensation becomes a
// copy — by measuring both sides of the trade at 720p chroma geometry
// (640×360 per plane).
//
// Measured verdict (Xeon 2.10 GHz, 1-core container): NEGATIVE — the
// planes do not pay for themselves, so they were not landed.
//
//   - OnDemandMB:  ~0.30 µs per 8×8 two-plane MC (one MB's chroma)
//   - BuildPlanes: ~60 ms per reference (63 sub-positions × 2 planes)
//
// Chroma interpolation only runs for each MB's *winning* vector — the
// search loop scores luma only — so a 720p frame does ~3 600 on-demand
// MC calls ≈ 1.1 ms total, while precomputing planes for one new
// reference costs ~60 ms and ~29 MB of extra memory (63 full
// sub-position planes). Every coded P/I frame adds a reference, so the
// build cost recurs per frame and is ~55× the total work it replaces;
// break-even would need each reference's chroma to be re-read dozens of
// times at every sub-position. The luma case is different in kind:
// half-pel planes sit inside the search loop and are read hundreds of
// times per MB, which is why BuildHalfPel6 wins and this doesn't.
func BenchmarkChromaInterp(b *testing.B) {
	const (
		cw, ch = 640, 360 // 720p chroma plane (1280×720 ÷ 2)
		stride = cw + 16
	)
	src := make([]byte, stride*(ch+16))
	for i := range src {
		src[i] = byte(i*31 + i/stride*17)
	}

	for _, k := range []kernel.Set{kernel.Scalar, kernel.SWAR} {
		name := "Scalar"
		if k == kernel.SWAR {
			name = "SWAR"
		}

		// One macroblock's chroma MC as the encoder issues it: two 8×8
		// regions (Cb+Cr) at a non-trivial eighth-pel position.
		b.Run("OnDemandMB/"+name, func(b *testing.B) {
			var dst [64]byte
			b.SetBytes(2 * 64)
			for i := 0; i < b.N; i++ {
				ChromaBilin(dst[:], 8, src[5*stride+5:], stride, 8, 8, 3, 5, k)
				ChromaBilin(dst[:], 8, src[9*stride+9:], stride, 8, 8, 3, 5, k)
			}
		})

		// The hypothetical per-reference build: all 63 fractional
		// sub-positions for both planes, full plane each.
		b.Run("BuildPlanes/"+name, func(b *testing.B) {
			dst := make([]byte, cw*ch)
			b.SetBytes(2 * 63 * cw * ch)
			for i := 0; i < b.N; i++ {
				for dy := 0; dy < 8; dy++ {
					for dx := 0; dx < 8; dx++ {
						if dx == 0 && dy == 0 {
							continue
						}
						ChromaBilin(dst, cw, src, stride, cw, ch, dx, dy, k) // Cb
						ChromaBilin(dst, cw, src, stride, cw, ch, dx, dy, k) // Cr
					}
				}
			}
		})
	}
}
