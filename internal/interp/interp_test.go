package interp

import (
	"math/rand"
	"testing"

	"hdvideobench/internal/kernel"
)

// paddedPlane builds a random plane with margin on every side and returns
// (plane, stride, origin) where origin is a sample safely inside.
func paddedPlane(rng *rand.Rand, w, h, margin int) ([]byte, int, int) {
	stride := w + 2*margin
	p := make([]byte, stride*(h+2*margin))
	rng.Read(p)
	return p, stride, margin*stride + margin
}

func TestHalfPelScalarSWAREquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		src, stride, so := paddedPlane(rng, 48, 48, 16)
		for fy := 0; fy < 2; fy++ {
			for fx := 0; fx < 2; fx++ {
				for _, wh := range [][2]int{{16, 16}, {8, 8}, {16, 8}, {8, 16}} {
					w, h := wh[0], wh[1]
					ds := make([]byte, 16*16)
					dw := make([]byte, 16*16)
					HalfPel(ds, 16, src[so:], stride, w, h, fx, fy, kernel.Scalar)
					HalfPel(dw, 16, src[so:], stride, w, h, fx, fy, kernel.SWAR)
					for i := range ds {
						if ds[i] != dw[i] {
							t.Fatalf("halfpel (%d,%d) %dx%d: scalar/SWAR differ at %d: %d vs %d",
								fx, fy, w, h, i, ds[i], dw[i])
						}
					}
				}
			}
		}
	}
}

func TestHalfPelValues(t *testing.T) {
	// A tiny deterministic case computed by hand.
	src := []byte{
		10, 20, 30, 40,
		50, 60, 70, 80,
		90, 100, 110, 120,
		130, 140, 150, 160,
	}
	dst := make([]byte, 16)
	HalfPel(dst, 4, src, 4, 2, 2, 1, 0, kernel.Scalar)
	if dst[0] != 15 || dst[1] != 25 {
		t.Fatalf("h halfpel row0 = %v", dst[:2])
	}
	HalfPel(dst, 4, src, 4, 2, 2, 0, 1, kernel.Scalar)
	if dst[0] != 30 || dst[1] != 40 {
		t.Fatalf("v halfpel row0 = %v", dst[:2])
	}
	HalfPel(dst, 4, src, 4, 2, 2, 1, 1, kernel.Scalar)
	if dst[0] != (10+20+50+60+2)/4 {
		t.Fatalf("hv halfpel = %d", dst[0])
	}
}

func TestQPelScalarSWAREquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var qs, qw QPel
	for trial := 0; trial < 30; trial++ {
		src, stride, so := paddedPlane(rng, 48, 48, 16)
		for fy := 0; fy < 4; fy++ {
			for fx := 0; fx < 4; fx++ {
				for _, wh := range [][2]int{{16, 16}, {8, 8}, {16, 8}, {4, 4}} {
					w, h := wh[0], wh[1]
					ds := make([]byte, 16*16)
					dw := make([]byte, 16*16)
					qs.Luma(ds, 16, src, so, stride, w, h, fx, fy, kernel.Scalar)
					qw.Luma(dw, 16, src, so, stride, w, h, fx, fy, kernel.SWAR)
					for r := 0; r < h; r++ {
						for c := 0; c < w; c++ {
							if ds[r*16+c] != dw[r*16+c] {
								t.Fatalf("qpel (%d,%d) %dx%d trial %d: differ at %d,%d: %d vs %d",
									fx, fy, w, h, trial, r, c, ds[r*16+c], dw[r*16+c])
							}
						}
					}
				}
			}
		}
	}
}

func TestQPelIntegerPositionIsCopy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	src, stride, so := paddedPlane(rng, 32, 32, 8)
	var q QPel
	dst := make([]byte, 16*16)
	q.Luma(dst, 16, src, so, stride, 16, 16, 0, 0, kernel.Scalar)
	for r := 0; r < 16; r++ {
		for c := 0; c < 16; c++ {
			if dst[r*16+c] != src[so+r*stride+c] {
				t.Fatalf("(0,0) must copy; mismatch at %d,%d", r, c)
			}
		}
	}
}

func TestQPelFlatPlaneStaysFlat(t *testing.T) {
	// Interpolating a constant plane must return the constant at every
	// fractional position (filter DC gain is exactly 32/32).
	src := make([]byte, 64*64)
	for i := range src {
		src[i] = 173
	}
	var q QPel
	for fy := 0; fy < 4; fy++ {
		for fx := 0; fx < 4; fx++ {
			dst := make([]byte, 16*16)
			q.Luma(dst, 16, src, 20*64+20, 64, 16, 16, fx, fy, kernel.Scalar)
			for i, v := range dst {
				if v != 173 {
					t.Fatalf("(%d,%d): flat plane produced %d at %d", fx, fy, v, i)
				}
			}
		}
	}
}

func TestSixTapHalfPelKnownValue(t *testing.T) {
	// A horizontal step edge: samples ...0,0,0,255,255,255... The 6-tap at
	// the edge midpoint: (0 -5·0 +20·0 +20·255 -5·255 +255 +16)>>5 =
	// (5100-1275+255+16)>>5 = 4096>>5 = 128.
	src := make([]byte, 16*16)
	for r := 0; r < 16; r++ {
		for c := 8; c < 16; c++ {
			src[r*16+c] = 255
		}
	}
	dst := make([]byte, 16)
	filterH(dst, 16, src, 5*16+7, 16, 1, 1, kernel.Scalar)
	if dst[0] != 128 {
		t.Fatalf("step edge half-pel = %d, want 128", dst[0])
	}
}

func TestSixTapClipping(t *testing.T) {
	// Alternating extremes overshoot the [0,255] range and must clip
	// identically in both kernel sets.
	rng := rand.New(rand.NewSource(4))
	src := make([]byte, 64*64)
	for i := range src {
		if rng.Intn(2) == 0 {
			src[i] = 255
		}
	}
	ds := make([]byte, 16*16)
	dw := make([]byte, 16*16)
	filterH(ds, 16, src, 20*64+20, 64, 16, 16, kernel.Scalar)
	filterH(dw, 16, src, 20*64+20, 64, 16, 16, kernel.SWAR)
	for i := range ds {
		if ds[i] != dw[i] {
			t.Fatalf("clipping differs at %d: %d vs %d", i, ds[i], dw[i])
		}
	}
	dsv := make([]byte, 16*16)
	dwv := make([]byte, 16*16)
	filterV(dsv, 16, src, 20*64+20, 64, 16, 16, kernel.Scalar)
	filterV(dwv, 16, src, 20*64+20, 64, 16, 16, kernel.SWAR)
	for i := range dsv {
		if dsv[i] != dwv[i] {
			t.Fatalf("vertical clipping differs at %d: %d vs %d", i, dsv[i], dwv[i])
		}
	}
}

func TestChromaBilin(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	src, stride, so := paddedPlane(rng, 16, 16, 8)
	// dx=dy=0 is a copy.
	dst := make([]byte, 8*8)
	ChromaBilin(dst, 8, src[so:], stride, 8, 8, 0, 0, kernel.Scalar)
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			if dst[r*8+c] != src[so+r*stride+c] {
				t.Fatal("chroma (0,0) must copy")
			}
		}
	}
	// dx=4, dy=0 equals the rounded 2-tap average... weights 32,32:
	ChromaBilin(dst, 8, src[so:], stride, 8, 8, 4, 0, kernel.Scalar)
	for c := 0; c < 8; c++ {
		want := byte((32*int(src[so+c]) + 32*int(src[so+c+1]) + 32) >> 6)
		if dst[c] != want {
			t.Fatalf("chroma (4,0) col %d: got %d want %d", c, dst[c], want)
		}
	}
	// Flat region stays flat for all fractions.
	flat := make([]byte, 32*32)
	for i := range flat {
		flat[i] = 99
	}
	for dy := 0; dy < 8; dy++ {
		for dx := 0; dx < 8; dx++ {
			ChromaBilin(dst, 8, flat[5*32+5:], 32, 8, 8, dx, dy, kernel.Scalar)
			for i, v := range dst {
				if v != 99 {
					t.Fatalf("chroma (%d,%d) flat -> %d at %d", dx, dy, v, i)
				}
			}
		}
	}
}

func TestAvgKernelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20; trial++ {
		a := make([]byte, 16*20)
		b := make([]byte, 16*20)
		rng.Read(a)
		rng.Read(b)
		as := append([]byte(nil), a...)
		aw := append([]byte(nil), a...)
		Avg(as, 20, b, 20, 16, 16, kernel.Scalar)
		Avg(aw, 20, b, 20, 16, 16, kernel.SWAR)
		for i := range as {
			if as[i] != aw[i] {
				t.Fatalf("Avg differs at %d", i)
			}
		}
	}
}

func BenchmarkFilterHScalar(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	src, stride, so := paddedPlane(rng, 64, 64, 16)
	dst := make([]byte, 16*16)
	for i := 0; i < b.N; i++ {
		filterH(dst, 16, src, so, stride, 16, 16, kernel.Scalar)
	}
}

func BenchmarkFilterHSWAR(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	src, stride, so := paddedPlane(rng, 64, 64, 16)
	dst := make([]byte, 16*16)
	for i := 0; i < b.N; i++ {
		filterH(dst, 16, src, so, stride, 16, 16, kernel.SWAR)
	}
}
