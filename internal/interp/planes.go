package interp

// Per-reference half-pel planes (x264 hpel style).
//
// Instead of re-running the half-pel filters into a scratch block for
// every candidate of every macroblock, the encoders interpolate each
// reference frame ONCE into three full planes — H (half sample right),
// V (half sample down) and HV (centre) — right after its reconstruction
// is finished. Motion search then scores sub-pel candidates directly
// against plane memory (half-pel positions) or against the rounded
// average of two plane rows (quarter-pel positions, LumaPlanes); both
// produce exactly the filterH/filterV/filterHV sample values, so the
// chosen vectors, predictions and therefore bitstreams are byte-identical
// to the per-block interpolation path (pinned by TestHalfPlanes* and the
// root equivalence matrix).
//
// Only the plane region reachable by a clamped MV must be valid. The
// builders fill rows [2, rows-4] × cols [2, stride-4] of the padded
// plane; motion.Estimator.Window keeps every access at least 8 pixels
// inside the padding (margin = pad-8), so with RefPad = 32 all legal
// reads — including the +1 column/row of averaging and the refinement's
// ±1 integer step — land inside the built interior.

import (
	"hdvideobench/internal/frame"
	"hdvideobench/internal/kernel"
	"hdvideobench/internal/swar"
)

// BuildHalfPelBilin fills f.HpelBilin with the bilinear half-sample
// planes used by MPEG-2-style motion compensation: H[p] = avg(p, p+1),
// V[p] = avg(p, p+stride), HV[p] = avg4 of the quad — exactly the values
// HalfPel produces per block. No-op if the planes are already built.
func BuildHalfPelBilin(f *frame.Frame, k kernel.Set) {
	if f.HpelBilin != nil {
		return
	}
	stride := f.YStride
	rows := len(f.Y) / stride
	hp := &frame.HalfPlanes{
		H:  make([]byte, len(f.Y)),
		V:  make([]byte, len(f.Y)),
		HV: make([]byte, len(f.Y)),
	}
	n := stride - 1 // H and HV read column +1
	for r := 0; r+1 < rows; r++ {
		row := r * stride
		if k == kernel.SWAR {
			swar.AvgRowRound(hp.H[row:], f.Y[row:], f.Y[row+1:], n)
			swar.AvgRowRound(hp.V[row:], f.Y[row:], f.Y[row+stride:], stride)
			swar.Avg4RowRound2(hp.HV[row:], f.Y[row:], f.Y[row+1:],
				f.Y[row+stride:], f.Y[row+stride+1:], n)
			continue
		}
		s0 := f.Y[row:]
		s1 := f.Y[row+stride:]
		hRow := hp.H[row:]
		vRow := hp.V[row:]
		hvRow := hp.HV[row:]
		for c := 0; c < n; c++ {
			hRow[c] = byte((int(s0[c]) + int(s0[c+1]) + 1) >> 1)
			vRow[c] = byte((int(s0[c]) + int(s1[c]) + 1) >> 1)
			hvRow[c] = byte((int(s0[c]) + int(s0[c+1]) + int(s1[c]) + int(s1[c+1]) + 2) >> 2)
		}
		vRow[n] = byte((int(s0[n]) + int(s1[n]) + 1) >> 1)
	}
	f.HpelBilin = hp
}

// BilinPlaneFor returns the plane holding bilinear half-pel position
// (fx, fy) of a reference frame: the luma plane itself for (0,0). The
// prediction block for a half-pel MV with integer part (ix, iy) is the
// block at (ix, iy) of this plane.
func BilinPlaneFor(f *frame.Frame, fx, fy int) []byte {
	switch {
	case fx == 0 && fy == 0:
		return f.Y
	case fy == 0:
		return f.HpelBilin.H
	case fx == 0:
		return f.HpelBilin.V
	default:
		return f.HpelBilin.HV
	}
}

// BuildHalfPel6 fills f.Hpel6 with the 6-tap (1,-5,20,20,-5,1) half-pel
// planes of the H.264/MPEG-4 quarter-pel scheme: H is the b position,
// V the h position and HV the centre j position, sample-identical to
// filterH/filterV/filterHV. No-op if already built.
func BuildHalfPel6(f *frame.Frame, k kernel.Set) {
	if f.Hpel6 != nil {
		return
	}
	stride := f.YStride
	rows := len(f.Y) / stride
	hp := &frame.HalfPlanes{
		H:  make([]byte, len(f.Y)),
		V:  make([]byte, len(f.Y)),
		HV: make([]byte, len(f.Y)),
	}
	w := stride - 5 // cols [2, stride-4]
	hRows := rows - 5
	filterH(hp.H[2*stride+2:], stride, f.Y, 2*stride+2, stride, w, hRows, k)
	filterV(hp.V[2*stride+2:], stride, f.Y, 2*stride+2, stride, w, hRows, k)

	// HV (the j position): vertical 6-tap over unrounded horizontal
	// intermediates, via a rolling six-row int32 window.
	ring := make([]int32, 6*w)
	hrow := func(r int, dst []int32) {
		base := r*stride + 2
		for c := 0; c < w; c++ {
			p := base + c
			dst[c] = sixTap(int32(f.Y[p-2]), int32(f.Y[p-1]), int32(f.Y[p]),
				int32(f.Y[p+1]), int32(f.Y[p+2]), int32(f.Y[p+3]))
		}
	}
	for r := 0; r < 5; r++ {
		hrow(r, ring[r*w:(r+1)*w])
	}
	for r := 2; r <= rows-4; r++ {
		hrow(r+3, ring[((r+3)%6)*w:((r+3)%6)*w+w])
		out := hp.HV[r*stride+2 : r*stride+2+w]
		t0 := ring[((r-2)%6)*w:]
		t1 := ring[((r-1)%6)*w:]
		t2 := ring[(r%6)*w:]
		t3 := ring[((r+1)%6)*w:]
		t4 := ring[((r+2)%6)*w:]
		t5 := ring[((r+3)%6)*w:]
		for c := 0; c < w; c++ {
			v := sixTap(t0[c], t1[c], t2[c], t3[c], t4[c], t5[c])
			out[c] = clip255((v + 512) >> 10)
		}
	}
	f.Hpel6 = hp
}

// QPelSources resolves quarter-pel position (fx, fy) ∈ [0,3]² into the
// one or two plane/offset sources whose rounded average forms the H.264
// luma prediction. b == nil means the prediction is a plain copy of a.
// so addresses the integer-pel top-left sample; the mapping mirrors the
// position cases of QPel.Luma exactly.
func QPelSources(y []byte, hp *frame.HalfPlanes, so, sStride, fx, fy int) (a []byte, ao int, b []byte, bo int) {
	switch fy*4 + fx {
	case 0: // G
		return y, so, nil, 0
	case 1: // a = avg(G, b)
		return y, so, hp.H, so
	case 2: // b
		return hp.H, so, nil, 0
	case 3: // c = avg(b, H)
		return hp.H, so, y, so + 1
	case 4: // d = avg(G, h)
		return y, so, hp.V, so
	case 5: // e = avg(b, h)
		return hp.H, so, hp.V, so
	case 6: // f = avg(b, j)
		return hp.H, so, hp.HV, so
	case 7: // g = avg(b, m)
		return hp.H, so, hp.V, so + 1
	case 8: // h
		return hp.V, so, nil, 0
	case 9: // i = avg(h, j)
		return hp.V, so, hp.HV, so
	case 10: // j
		return hp.HV, so, nil, 0
	case 11: // k = avg(j, m)
		return hp.HV, so, hp.V, so + 1
	case 12: // n = avg(h, M)
		return hp.V, so, y, so + sStride
	case 13: // p = avg(h, s)
		return hp.V, so, hp.H, so + sStride
	case 14: // q = avg(j, s)
		return hp.HV, so, hp.H, so + sStride
	default: // 15: r = avg(m, s)
		return hp.V, so + 1, hp.H, so + sStride
	}
}

// LumaPlanes is QPel.Luma computed from the precomputed 6-tap half-pel
// planes — bit-exact with it, but every quarter position reduces to a
// copy or a rounded average of two plane blocks: no per-candidate
// filtering at all.
func LumaPlanes(dst []byte, dStride int, y []byte, hp *frame.HalfPlanes, so, sStride, w, h, fx, fy int, k kernel.Set) {
	a, ao, b, bo := QPelSources(y, hp, so, sStride, fx, fy)
	if b == nil {
		Copy(dst, dStride, a[ao:], sStride, w, h)
		return
	}
	Avg2(dst, dStride, a[ao:], sStride, b[bo:], sStride, w, h, k)
}
