package interp

import (
	"math/rand"
	"testing"

	"hdvideobench/internal/frame"
	"hdvideobench/internal/kernel"
)

// randomRef builds a padded, border-extended reference frame with random
// visible content.
func randomRef(t *testing.T, w, h int, seed int64) *frame.Frame {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	f := frame.NewPadded(w, h, 32)
	for r := 0; r < h; r++ {
		for c := 0; c < w; c++ {
			f.SetLuma(r, c, byte(rng.Intn(256)))
		}
	}
	f.ExtendBorders()
	return f
}

// TestHalfPlanesBilinBitExact compares every half-pel position of the
// bilinear planes against per-block HalfPel over the MV-reachable region.
func TestHalfPlanesBilinBitExact(t *testing.T) {
	for _, k := range []kernel.Set{kernel.Scalar, kernel.SWAR} {
		f := randomRef(t, 64, 48, 11)
		BuildHalfPelBilin(f, k)
		var want [256]byte
		margin := f.Pad - 8
		for fy := 0; fy <= 1; fy++ {
			for fx := 0; fx <= 1; fx++ {
				plane := BilinPlaneFor(f, fx, fy)
				for _, pos := range [][2]int{
					{-margin - 1, -margin - 1}, {0, 0}, {17, 9},
					{f.Width - 16 + margin, f.Height - 16 + margin},
				} {
					so := f.YOrigin + pos[1]*f.YStride + pos[0]
					HalfPel(want[:], 16, f.Y[so:], f.YStride, 16, 16, fx, fy, k)
					for r := 0; r < 16; r++ {
						for c := 0; c < 16; c++ {
							got := plane[so+r*f.YStride+c]
							if got != want[r*16+c] {
								t.Fatalf("k=%v frac=(%d,%d) pos=%v sample (%d,%d): plane %d, block %d",
									k, fx, fy, pos, r, c, got, want[r*16+c])
							}
						}
					}
				}
			}
		}
	}
}

// TestHalfPlanes6BitExact compares all 16 quarter-pel positions derived
// from the 6-tap planes (LumaPlanes) against per-block QPel.Luma.
func TestHalfPlanes6BitExact(t *testing.T) {
	for _, k := range []kernel.Set{kernel.Scalar, kernel.SWAR} {
		f := randomRef(t, 64, 48, 12)
		BuildHalfPel6(f, k)
		var q QPel
		var want, got [256]byte
		margin := f.Pad - 8
		for fy := 0; fy < 4; fy++ {
			for fx := 0; fx < 4; fx++ {
				for _, pos := range [][2]int{
					{-margin - 1, -margin - 1}, {0, 0}, {13, 21},
					{f.Width - 16 + margin, f.Height - 16 + margin},
				} {
					for _, dims := range [][2]int{{16, 16}, {8, 8}, {16, 8}} {
						w, h := dims[0], dims[1]
						so := f.YOrigin + pos[1]*f.YStride + pos[0]
						q.Luma(want[:], 16, f.Y, so, f.YStride, w, h, fx, fy, k)
						LumaPlanes(got[:], 16, f.Y, f.Hpel6, so, f.YStride, w, h, fx, fy, k)
						for r := 0; r < h; r++ {
							for c := 0; c < w; c++ {
								if got[r*16+c] != want[r*16+c] {
									t.Fatalf("k=%v frac=(%d,%d) pos=%v %dx%d sample (%d,%d): planes %d, block %d",
										k, fx, fy, pos, w, h, r, c, got[r*16+c], want[r*16+c])
								}
							}
						}
					}
				}
			}
		}
	}
}

// TestBuildHalfPelIdempotent pins the build-once contract.
func TestBuildHalfPelIdempotent(t *testing.T) {
	f := randomRef(t, 32, 32, 13)
	BuildHalfPelBilin(f, kernel.Scalar)
	BuildHalfPel6(f, kernel.Scalar)
	b, s := f.HpelBilin, f.Hpel6
	BuildHalfPelBilin(f, kernel.SWAR)
	BuildHalfPel6(f, kernel.SWAR)
	if f.HpelBilin != b || f.Hpel6 != s {
		t.Fatal("rebuild replaced existing planes")
	}
}
