package interp

import (
	"hdvideobench/internal/kernel"
	"hdvideobench/internal/swar"
)

// QPel interpolates luma blocks at quarter-pel positions using the 6-tap
// (1,-5,20,20,-5,1) half-pel filter and bilinear quarter positions (the
// H.264 scheme; also used by the MPEG-4 codec's quarter-pel tool). A QPel
// value holds the scratch buffers, so one instance per encoder/decoder
// avoids per-block allocation. Blocks up to 16×16 are supported.
//
// All source accesses are expressed as plane+offset (src[so+r*stride+c])
// because the filter reads up to 2 samples left/above the block: the
// caller's offset must sit at least 2 rows and 2 columns inside the padded
// plane (guaranteed by frame padding plus MV clamping in the codecs).
type QPel struct {
	bbuf [16 * 16]byte  // horizontal half-pel (b / s)
	hbuf [16 * 16]byte  // vertical half-pel (h / m)
	jbuf [16 * 16]byte  // centre half-pel (j)
	ibuf [21 * 16]int32 // unrounded horizontal intermediates for j
}

// Luma writes the w×h luma prediction for quarter-pel fractions
// fx, fy ∈ [0, 3]. src[so] is the integer-pel top-left reference sample.
//
//hdvlint:noalloc
func (q *QPel) Luma(dst []byte, dStride int, src []byte, so, sStride, w, h, fx, fy int, k kernel.Set) {
	switch fy*4 + fx {
	case 0: // G
		Copy(dst, dStride, src[so:], sStride, w, h)
	case 1: // a = avg(G, b)
		filterH(q.bbuf[:], 16, src, so, sStride, w, h, k)
		Avg2(dst, dStride, src[so:], sStride, q.bbuf[:], 16, w, h, k)
	case 2: // b
		filterH(dst, dStride, src, so, sStride, w, h, k)
	case 3: // c = avg(b, H)
		filterH(q.bbuf[:], 16, src, so, sStride, w, h, k)
		Avg2(dst, dStride, src[so+1:], sStride, q.bbuf[:], 16, w, h, k)
	case 4: // d = avg(G, h)
		filterV(q.hbuf[:], 16, src, so, sStride, w, h, k)
		Avg2(dst, dStride, src[so:], sStride, q.hbuf[:], 16, w, h, k)
	case 5: // e = avg(b, h)
		filterH(q.bbuf[:], 16, src, so, sStride, w, h, k)
		filterV(q.hbuf[:], 16, src, so, sStride, w, h, k)
		Avg2(dst, dStride, q.bbuf[:], 16, q.hbuf[:], 16, w, h, k)
	case 6: // f = avg(b, j)
		filterH(q.bbuf[:], 16, src, so, sStride, w, h, k)
		q.filterHV(q.jbuf[:], 16, src, so, sStride, w, h)
		Avg2(dst, dStride, q.bbuf[:], 16, q.jbuf[:], 16, w, h, k)
	case 7: // g = avg(b, m)  [m = h one column right]
		filterH(q.bbuf[:], 16, src, so, sStride, w, h, k)
		filterV(q.hbuf[:], 16, src, so+1, sStride, w, h, k)
		Avg2(dst, dStride, q.bbuf[:], 16, q.hbuf[:], 16, w, h, k)
	case 8: // h
		filterV(dst, dStride, src, so, sStride, w, h, k)
	case 9: // i = avg(h, j)
		filterV(q.hbuf[:], 16, src, so, sStride, w, h, k)
		q.filterHV(q.jbuf[:], 16, src, so, sStride, w, h)
		Avg2(dst, dStride, q.hbuf[:], 16, q.jbuf[:], 16, w, h, k)
	case 10: // j
		q.filterHV(dst, dStride, src, so, sStride, w, h)
	case 11: // k = avg(j, m)
		q.filterHV(q.jbuf[:], 16, src, so, sStride, w, h)
		filterV(q.hbuf[:], 16, src, so+1, sStride, w, h, k)
		Avg2(dst, dStride, q.jbuf[:], 16, q.hbuf[:], 16, w, h, k)
	case 12: // n = avg(h, M)  [M = G one row down]
		filterV(q.hbuf[:], 16, src, so, sStride, w, h, k)
		Avg2(dst, dStride, src[so+sStride:], sStride, q.hbuf[:], 16, w, h, k)
	case 13: // p = avg(h, s)  [s = b one row down]
		filterV(q.hbuf[:], 16, src, so, sStride, w, h, k)
		filterH(q.bbuf[:], 16, src, so+sStride, sStride, w, h, k)
		Avg2(dst, dStride, q.hbuf[:], 16, q.bbuf[:], 16, w, h, k)
	case 14: // q = avg(j, s)
		q.filterHV(q.jbuf[:], 16, src, so, sStride, w, h)
		filterH(q.bbuf[:], 16, src, so+sStride, sStride, w, h, k)
		Avg2(dst, dStride, q.jbuf[:], 16, q.bbuf[:], 16, w, h, k)
	default: // 15: r = avg(m, s)
		filterV(q.hbuf[:], 16, src, so+1, sStride, w, h, k)
		filterH(q.bbuf[:], 16, src, so+sStride, sStride, w, h, k)
		Avg2(dst, dStride, q.hbuf[:], 16, q.bbuf[:], 16, w, h, k)
	}
}

// Avg2 writes the rounded average of two blocks into dst (also the
// quarter-pel combiner of LumaPlanes).
//
//hdvlint:noalloc
func Avg2(dst []byte, dStride int, a []byte, aStride int, b []byte, bStride, w, h int, k kernel.Set) {
	if k == kernel.SWAR {
		swar.AvgBlockRound(dst, dStride, a, aStride, b, bStride, w, h)
		return
	}
	for r := 0; r < h; r++ {
		d := dst[r*dStride : r*dStride+w]
		ar := a[r*aStride:]
		br := b[r*bStride:]
		for i := 0; i < w; i++ {
			d[i] = byte((int(ar[i]) + int(br[i]) + 1) >> 1)
		}
	}
}

// sixTap is the raw unclipped 6-tap filter value.
func sixTap(e, f, g, h, i, j int32) int32 {
	return e - 5*f + 20*g + 20*h - 5*i + j
}

// filterH computes horizontal half-pel samples: clip((6tap+16)>>5).
//
//hdvlint:noalloc
func filterH(dst []byte, dStride int, src []byte, so, sStride, w, h int, k kernel.Set) {
	if k == kernel.SWAR && w >= 8 {
		filterHSWAR(dst, dStride, src, so, sStride, w, h)
		return
	}
	for r := 0; r < h; r++ {
		base := so + r*sStride
		d := dst[r*dStride : r*dStride+w]
		for c := 0; c < w; c++ {
			p := base + c
			v := sixTap(int32(src[p-2]), int32(src[p-1]), int32(src[p]),
				int32(src[p+1]), int32(src[p+2]), int32(src[p+3]))
			d[c] = clip255((v + 16) >> 5)
		}
	}
}

// filterV computes vertical half-pel samples.
//
//hdvlint:noalloc
func filterV(dst []byte, dStride int, src []byte, so, sStride, w, h int, k kernel.Set) {
	if k == kernel.SWAR && w >= 8 {
		filterVSWAR(dst, dStride, src, so, sStride, w, h)
		return
	}
	for r := 0; r < h; r++ {
		d := dst[r*dStride : r*dStride+w]
		for c := 0; c < w; c++ {
			p := so + r*sStride + c
			v := sixTap(int32(src[p-2*sStride]), int32(src[p-sStride]),
				int32(src[p]), int32(src[p+sStride]),
				int32(src[p+2*sStride]), int32(src[p+3*sStride]))
			d[c] = clip255((v + 16) >> 5)
		}
	}
}

// filterHV computes the centre half-pel sample j: a vertical 6-tap over
// unrounded horizontal 6-tap intermediates, clip((v+512)>>10). The
// intermediates exceed 16-bit lanes, so scalar and SWAR kernel sets share
// this implementation (centre positions are the rarest in real streams).
//
//hdvlint:noalloc
func (q *QPel) filterHV(dst []byte, dStride int, src []byte, so, sStride, w, h int) {
	ib := q.ibuf[:]
	rows := h + 5
	for r := 0; r < rows; r++ {
		base := so + (r-2)*sStride
		out := ib[r*w : r*w+w]
		for c := 0; c < w; c++ {
			p := base + c
			out[c] = sixTap(int32(src[p-2]), int32(src[p-1]), int32(src[p]),
				int32(src[p+1]), int32(src[p+2]), int32(src[p+3]))
		}
	}
	for r := 0; r < h; r++ {
		d := dst[r*dStride : r*dStride+w]
		for c := 0; c < w; c++ {
			v := sixTap(ib[r*w+c], ib[(r+1)*w+c], ib[(r+2)*w+c],
				ib[(r+3)*w+c], ib[(r+4)*w+c], ib[(r+5)*w+c])
			d[c] = clip255((v + 512) >> 10)
		}
	}
}

// SWAR 6-tap constants: 16-bit lanes holding 8-bit inputs.
const (
	lane1   = uint64(0x0001000100010001)
	laneLo8 = uint64(0x00FF00FF00FF00FF)
	// sixTap min is -5*(255+255) = -2550; bias keeps lanes non-negative.
	laneBias = 2560 * lane1
	lane9FF  = uint64(0x01FF01FF01FF01FF)
	lane80   = 80 * lane1
	lane335  = 335 * lane1
)

// sixTapLanes evaluates clip255((6tap(e..j)+16)>>5) for four samples held in
// 16-bit lanes, via a bias to [80, 335] and back.
func sixTapLanes(e, f, g, h, i, j uint64) uint64 {
	t := 20*(g+h) + (e + j) + laneBias - 5*(f+i) // lanes in [10, 13270]
	v80 := ((t + 16*lane1) >> 5) & lane9FF       // value+80, in [0, 415]
	// max(v80, 80):
	m80 := (((v80 + 432*lane1) >> 9) & lane1) * 0xFFFF
	lo := (v80 & m80) | (lane80 &^ m80)
	// min(lo, 335):
	m335 := (((lo + 176*lane1) >> 9) & lane1) * 0xFFFF
	hi := (lo &^ m335) | (lane335 & m335)
	return hi - lane80 // lanes now hold clip255 results
}

//hdvlint:noalloc
func filterHSWAR(dst []byte, dStride int, src []byte, so, sStride, w, h int) {
	for r := 0; r < h; r++ {
		row := so + r*sStride
		c := 0
		for ; c+8 <= w; c += 8 {
			e := swar.Load64(src[row+c-2:])
			f := swar.Load64(src[row+c-1:])
			g := swar.Load64(src[row+c:])
			hh := swar.Load64(src[row+c+1:])
			i := swar.Load64(src[row+c+2:])
			j := swar.Load64(src[row+c+3:])
			even := sixTapLanes(e&laneLo8, f&laneLo8, g&laneLo8, hh&laneLo8, i&laneLo8, j&laneLo8)
			odd := sixTapLanes((e>>8)&laneLo8, (f>>8)&laneLo8, (g>>8)&laneLo8, (hh>>8)&laneLo8, (i>>8)&laneLo8, (j>>8)&laneLo8)
			swar.Store64(dst[r*dStride+c:], even|odd<<8)
		}
		for ; c < w; c++ {
			p := row + c
			v := sixTap(int32(src[p-2]), int32(src[p-1]), int32(src[p]),
				int32(src[p+1]), int32(src[p+2]), int32(src[p+3]))
			dst[r*dStride+c] = clip255((v + 16) >> 5)
		}
	}
}

//hdvlint:noalloc
func filterVSWAR(dst []byte, dStride int, src []byte, so, sStride, w, h int) {
	for r := 0; r < h; r++ {
		base := so + r*sStride
		c := 0
		for ; c+8 <= w; c += 8 {
			e := swar.Load64(src[base+c-2*sStride:])
			f := swar.Load64(src[base+c-sStride:])
			g := swar.Load64(src[base+c:])
			hh := swar.Load64(src[base+c+sStride:])
			i := swar.Load64(src[base+c+2*sStride:])
			j := swar.Load64(src[base+c+3*sStride:])
			even := sixTapLanes(e&laneLo8, f&laneLo8, g&laneLo8, hh&laneLo8, i&laneLo8, j&laneLo8)
			odd := sixTapLanes((e>>8)&laneLo8, (f>>8)&laneLo8, (g>>8)&laneLo8, (hh>>8)&laneLo8, (i>>8)&laneLo8, (j>>8)&laneLo8)
			swar.Store64(dst[r*dStride+c:], even|odd<<8)
		}
		for ; c < w; c++ {
			p := base + c
			v := sixTap(int32(src[p-2*sStride]), int32(src[p-sStride]),
				int32(src[p]), int32(src[p+sStride]),
				int32(src[p+2*sStride]), int32(src[p+3*sStride]))
			dst[r*dStride+c] = clip255((v + 16) >> 5)
		}
	}
}
