// Package interp implements sub-pixel motion-compensation interpolation:
//
//   - half-pel bilinear (MPEG-2 and MPEG-4 chroma paths),
//   - quarter-pel with a 6-tap (1,-5,20,20,-5,1) half-pel filter and
//     bilinear quarter positions (H.264 luma; also used for the MPEG-4
//     quarter-pel tool, see DESIGN.md §2),
//   - 1/8-pel weighted bilinear (H.264 chroma).
//
// Every routine has a scalar and a SWAR implementation selected by
// kernel.Set; the two are bit-exact (verified by exhaustive tests), so
// kernel choice affects speed only.
//
// The per-block routines have plane-at-a-time twins (see planes.go): the
// encoders interpolate each reference frame once into H/V/HV half-sample
// planes and derive every sub-pel candidate from plane memory — a copy
// for half-pel positions, a rounded two-plane average for quarter-pel
// positions. Each plane sample is computed by the same filter expression
// as its per-block counterpart, so the two paths are bit-exact and the
// choice between them is invisible in the bitstream; the decoders keep
// the cheap per-block path (one interpolation per macroblock partition,
// not hundreds of candidates).
package interp

import (
	"hdvideobench/internal/kernel"
	"hdvideobench/internal/swar"
)

func clip255(v int32) byte {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return byte(v)
}

// Copy copies a w×h block.
//
//hdvlint:noalloc
func Copy(dst []byte, dStride int, src []byte, sStride, w, h int) {
	for r := 0; r < h; r++ {
		copy(dst[r*dStride:r*dStride+w], src[r*sStride:r*sStride+w])
	}
}

// Avg overwrites dst with the rounded average of dst and src (used for
// bi-directional prediction in B frames).
//
//hdvlint:noalloc
func Avg(dst []byte, dStride int, src []byte, sStride, w, h int, k kernel.Set) {
	if k == kernel.SWAR {
		for r := 0; r < h; r++ {
			swar.AvgRowRound(dst[r*dStride:], dst[r*dStride:], src[r*sStride:], w)
		}
		return
	}
	for r := 0; r < h; r++ {
		d := dst[r*dStride : r*dStride+w]
		s := src[r*sStride : r*sStride+w]
		for i := 0; i < w; i++ {
			d[i] = byte((int(d[i]) + int(s[i]) + 1) >> 1)
		}
	}
}

// HalfPel performs MPEG-2-style bilinear motion compensation. fx and fy are
// the half-pel fraction bits (0 or 1); src addresses the integer-pel
// top-left sample of the reference block.
//
//hdvlint:noalloc
func HalfPel(dst []byte, dStride int, src []byte, sStride, w, h, fx, fy int, k kernel.Set) {
	switch {
	case fx == 0 && fy == 0:
		Copy(dst, dStride, src, sStride, w, h)
	case fx == 1 && fy == 0:
		if k == kernel.SWAR {
			for r := 0; r < h; r++ {
				swar.AvgRowRound(dst[r*dStride:], src[r*sStride:], src[r*sStride+1:], w)
			}
			return
		}
		for r := 0; r < h; r++ {
			d := dst[r*dStride : r*dStride+w]
			s := src[r*sStride:]
			for i := 0; i < w; i++ {
				d[i] = byte((int(s[i]) + int(s[i+1]) + 1) >> 1)
			}
		}
	case fx == 0 && fy == 1:
		if k == kernel.SWAR {
			for r := 0; r < h; r++ {
				swar.AvgRowRound(dst[r*dStride:], src[r*sStride:], src[(r+1)*sStride:], w)
			}
			return
		}
		for r := 0; r < h; r++ {
			d := dst[r*dStride : r*dStride+w]
			s0 := src[r*sStride:]
			s1 := src[(r+1)*sStride:]
			for i := 0; i < w; i++ {
				d[i] = byte((int(s0[i]) + int(s1[i]) + 1) >> 1)
			}
		}
	default: // (1,1)
		if k == kernel.SWAR {
			for r := 0; r < h; r++ {
				swar.Avg4RowRound2(dst[r*dStride:],
					src[r*sStride:], src[r*sStride+1:],
					src[(r+1)*sStride:], src[(r+1)*sStride+1:], w)
			}
			return
		}
		for r := 0; r < h; r++ {
			d := dst[r*dStride : r*dStride+w]
			s0 := src[r*sStride:]
			s1 := src[(r+1)*sStride:]
			for i := 0; i < w; i++ {
				d[i] = byte((int(s0[i]) + int(s0[i+1]) + int(s1[i]) + int(s1[i+1]) + 2) >> 2)
			}
		}
	}
}

// ChromaBilin performs H.264-style weighted bilinear chroma interpolation
// with eighth-pel fractions dx, dy ∈ [0, 8).
//
//hdvlint:noalloc
func ChromaBilin(dst []byte, dStride int, src []byte, sStride, w, h, dx, dy int, k kernel.Set) {
	if dx == 0 && dy == 0 {
		Copy(dst, dStride, src, sStride, w, h)
		return
	}
	a := int32((8 - dx) * (8 - dy))
	b := int32(dx * (8 - dy))
	c := int32((8 - dx) * dy)
	d := int32(dx * dy)
	// The weighted sum does not decompose into byte averages, so scalar and
	// SWAR share this loop (the multiply-bound inner body is already tight).
	_ = k
	for r := 0; r < h; r++ {
		s0 := src[r*sStride:]
		s1 := src[(r+1)*sStride:]
		out := dst[r*dStride : r*dStride+w]
		for i := 0; i < w; i++ {
			v := a*int32(s0[i]) + b*int32(s0[i+1]) + c*int32(s1[i]) + d*int32(s1[i+1])
			out[i] = byte((v + 32) >> 6)
		}
	}
}
