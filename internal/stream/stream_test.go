// Streaming determinism and bounded-memory suite: the streaming engine
// must reproduce the batch path byte for byte at every worker count, and
// its frame residency must stay inside the window bound no matter how
// long the sequence is. Run under -race (CI does) for the full story.
package stream_test

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"hdvideobench/internal/codec"
	"hdvideobench/internal/container"
	"hdvideobench/internal/core"
	"hdvideobench/internal/frame"
	"strings"

	"hdvideobench/internal/seqgen"
	"hdvideobench/internal/stream"
)

const (
	eqFrames = 10 // with eqGOP=3: chunks of 3,3,3,1 — ragged tail
	eqGOP    = 3
)

// eqWorkers exercises the serial path and the chunked scheduler.
var eqWorkers = []int{1, 4}

var eqResolutions = []struct {
	name string
	w, h int
}{
	{"576p", 720, 576},
	{"720p", 1280, 720},
}

func eqConfig(w, h int) codec.Config {
	cfg := codec.Default(w, h)
	cfg.IntraPeriod = eqGOP
	cfg.SearchRange = 8
	cfg.Refs = 2
	return cfg
}

func encFactory(id core.CodecID, cfg codec.Config) func() (codec.Encoder, error) {
	return func() (codec.Encoder, error) { return core.NewEncoder(id, cfg) }
}

func decFactory(hdr container.Header, cfg codec.Config) func() (codec.Decoder, error) {
	return func() (codec.Decoder, error) { return core.NewDecoder(hdr, cfg.Kernels) }
}

// streamEncode drives the streaming encoder over frames with a writer
// goroutine and drains the packets from the test goroutine.
func streamEncode(t *testing.T, id core.CodecID, cfg codec.Config, frames []*frame.Frame, workers, window int) ([]container.Packet, *stream.Encoder) {
	t.Helper()
	enc, err := stream.NewEncoder(encFactory(id, cfg), cfg.IntraPeriod, workers, window, nil)
	if err != nil {
		t.Fatal(err)
	}
	werr := make(chan error, 1)
	go func() {
		for _, f := range frames {
			if err := enc.Write(f); err != nil {
				enc.Close()
				werr <- err
				return
			}
		}
		werr <- enc.Close()
	}()
	var pkts []container.Packet
	for {
		p, err := enc.ReadPacket()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("ReadPacket: %v", err)
		}
		pkts = append(pkts, p)
	}
	if err := <-werr; err != nil {
		t.Fatalf("writer side: %v", err)
	}
	return pkts, enc
}

// streamDecode mirrors streamEncode for the decoder.
func streamDecode(t *testing.T, hdr container.Header, cfg codec.Config, pkts []container.Packet, workers, window int) ([]*frame.Frame, *stream.Decoder) {
	t.Helper()
	dec, err := stream.NewDecoder(decFactory(hdr, cfg), workers, window)
	if err != nil {
		t.Fatal(err)
	}
	werr := make(chan error, 1)
	go func() {
		for _, p := range pkts {
			if err := dec.Write(p); err != nil {
				dec.Close()
				werr <- err
				return
			}
		}
		werr <- dec.Close()
	}()
	var frames []*frame.Frame
	for {
		f, err := dec.ReadFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		frames = append(frames, f)
	}
	if err := <-werr; err != nil {
		t.Fatalf("writer side: %v", err)
	}
	return frames, dec
}

// containerBytes serializes a packet stream the way both vcodec paths do.
func containerBytes(t *testing.T, hdr container.Header, pkts []container.Packet) []byte {
	t.Helper()
	var buf bytes.Buffer
	cw, err := container.NewWriter(&buf, hdr)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkts {
		if err := cw.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestStreamingMatchesBatch is the equivalence matrix: codec ×
// {576p, 720p} × {1, 4} workers. The streaming encoder must produce a
// container byte-identical to the batch path, and the streaming decoder
// must reproduce the batch decode exactly (planes and PTS stamps).
func TestStreamingMatchesBatch(t *testing.T) {
	for _, res := range eqResolutions {
		if testing.Short() && res.name == "720p" {
			continue
		}
		for _, id := range core.AllCodecs {
			t.Run(fmt.Sprintf("%s/%v", res.name, id), func(t *testing.T) {
				cfg := eqConfig(res.w, res.h)
				inputs := seqgen.New(seqgen.PedestrianArea, res.w, res.h).Generate(eqFrames)

				batchPkts, hdr, err := core.EncodeSequence(id, cfg, inputs)
				if err != nil {
					t.Fatal(err)
				}
				batchBytes := containerBytes(t, hdr, batchPkts)
				batchFrames, err := core.DecodePackets(hdr, cfg.Kernels, batchPkts)
				if err != nil {
					t.Fatal(err)
				}

				for _, workers := range eqWorkers {
					t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
						fresh := seqgen.New(seqgen.PedestrianArea, res.w, res.h).Generate(eqFrames)
						pkts, enc := streamEncode(t, id, cfg, fresh, workers, 0)
						if enc.Header() != hdr {
							t.Fatalf("header %+v, batch has %+v", enc.Header(), hdr)
						}
						if got := containerBytes(t, enc.Header(), pkts); !bytes.Equal(got, batchBytes) {
							t.Fatalf("streaming container differs from batch (%d vs %d bytes)",
								len(got), len(batchBytes))
						}

						decoded, _ := streamDecode(t, hdr, cfg, pkts, workers, 0)
						if len(decoded) != len(batchFrames) {
							t.Fatalf("decoded %d frames, batch has %d", len(decoded), len(batchFrames))
						}
						for i := range decoded {
							if decoded[i].PTS != batchFrames[i].PTS {
								t.Fatalf("frame %d: PTS %d, batch has %d", i, decoded[i].PTS, batchFrames[i].PTS)
							}
							if !bytes.Equal(decoded[i].Y, batchFrames[i].Y) ||
								!bytes.Equal(decoded[i].Cb, batchFrames[i].Cb) ||
								!bytes.Equal(decoded[i].Cr, batchFrames[i].Cr) {
								t.Fatalf("frame %d: decoded planes differ from batch", i)
							}
						}
					})
				}
			})
		}
	}
}

// TestBoundedResidency is the constant-memory proof: a sequence 16× the
// window must flow through the chunked encoder and decoder with the
// frame high-water mark inside the (Window+1)×GOP bound — a scheduler
// that buffered the sequence would blow past it immediately.
func TestBoundedResidency(t *testing.T) {
	const (
		w, h    = 96, 80
		gop     = 3
		workers = 2
		window  = 2
		frames  = 16 * window * gop // 96 frames, 16× the window
		bound   = (window + 1) * gop
	)
	cfg := eqConfig(w, h)
	cfg.IntraPeriod = gop
	gen := seqgen.New(seqgen.RushHour, w, h)

	enc, err := stream.NewEncoder(encFactory(core.MPEG2, cfg), gop, workers, window, nil)
	if err != nil {
		t.Fatal(err)
	}
	if enc.Window() != window {
		t.Fatalf("window %d, want %d", enc.Window(), window)
	}
	werr := make(chan error, 1)
	go func() {
		for i := 0; i < frames; i++ {
			if err := enc.Write(gen.Frame(i)); err != nil {
				enc.Close()
				werr <- err
				return
			}
		}
		werr <- enc.Close()
	}()
	var pkts []container.Packet
	for {
		p, err := enc.ReadPacket()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		pkts = append(pkts, p)
	}
	if err := <-werr; err != nil {
		t.Fatal(err)
	}
	if len(pkts) != frames {
		t.Fatalf("encoded %d packets, want %d", len(pkts), frames)
	}
	if peak := enc.PeakResident(); peak > bound || peak == 0 {
		t.Fatalf("encoder peak residency %d frames, want within (0, %d]", peak, bound)
	}

	decoded, dec := streamDecode(t, enc.Header(), cfg, pkts, workers, window)
	if len(decoded) != frames {
		t.Fatalf("decoded %d frames, want %d", len(decoded), frames)
	}
	for i, f := range decoded {
		if f.PTS != i {
			t.Fatalf("frame %d: PTS %d", i, f.PTS)
		}
	}
	if peak := dec.PeakResident(); peak > bound || peak == 0 {
		t.Fatalf("decoder peak residency %d frames, want within (0, %d]", peak, bound)
	}
}

// TestEncoderAbortUnblocksWriter reads a few packets, aborts, and checks
// a writer mid-sequence gets ErrAborted instead of hanging on the window.
func TestEncoderAbortUnblocksWriter(t *testing.T) {
	const w, h = 96, 80
	cfg := eqConfig(w, h)
	enc, err := stream.NewEncoder(encFactory(core.MPEG2, cfg), eqGOP, 2, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	gen := seqgen.New(seqgen.BlueSky, w, h)
	werr := make(chan error, 1)
	go func() {
		var err error
		for i := 0; err == nil; i++ { // unbounded: only an abort stops it
			err = enc.Write(gen.Frame(i))
		}
		enc.Close()
		werr <- err
	}()
	if _, err := enc.ReadPacket(); err != nil {
		t.Fatalf("first packet: %v", err)
	}
	enc.Abort()
	if err := <-werr; err != stream.ErrAborted {
		t.Fatalf("writer got %v, want ErrAborted", err)
	}
	if _, err := enc.ReadPacket(); err != stream.ErrAborted {
		t.Fatalf("reader after abort got %v, want ErrAborted", err)
	}
}

// TestEncoderErrorPropagates feeds a wrong-size frame mid-stream: the
// chunk worker fails and ReadPacket must surface the error (and tear the
// stream down) rather than hang.
func TestEncoderErrorPropagates(t *testing.T) {
	cfg := eqConfig(96, 80)
	for _, workers := range eqWorkers {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			enc, err := stream.NewEncoder(encFactory(core.MPEG2, cfg), eqGOP, workers, 0, nil)
			if err != nil {
				t.Fatal(err)
			}
			gen := seqgen.New(seqgen.BlueSky, 96, 80)
			werr := make(chan error, 1)
			go func() {
				var err error
				for i := 0; i < eqGOP && err == nil; i++ {
					err = enc.Write(gen.Frame(i))
				}
				if err == nil {
					err = enc.Write(frame.New(48, 48)) // wrong size: chunk must fail
				}
				if cerr := enc.Close(); err == nil {
					err = cerr
				}
				werr <- err
			}()
			sawErr := false
			for {
				_, err := enc.ReadPacket()
				if err == io.EOF {
					break
				}
				if err != nil {
					sawErr = true
					break
				}
			}
			if !sawErr {
				t.Fatal("reader never saw the encode error")
			}
			<-werr // writer must unblock too, whatever error it reports
		})
	}
}

// TestDecoderSerialFallback streams a first-frame-only-intra sequence
// longer than FallbackPackets through the chunked decoder: with no
// closed-GOP boundary to split on it must fall back to the serial mode
// (observable as zero pool residency) and still decode every frame
// exactly as the batch path does.
func TestDecoderSerialFallback(t *testing.T) {
	const w, h = 96, 80
	n := stream.FallbackPackets + 20
	cfg := eqConfig(w, h)
	cfg.IntraPeriod = 0 // the paper's setting: one segment, no boundaries

	inputs := seqgen.New(seqgen.BlueSky, w, h).Generate(n)
	pkts, hdr, err := core.EncodeSequence(core.MPEG2, cfg, inputs)
	if err != nil {
		t.Fatal(err)
	}
	batchFrames, err := core.DecodePackets(hdr, cfg.Kernels, pkts)
	if err != nil {
		t.Fatal(err)
	}

	decoded, dec := streamDecode(t, hdr, cfg, pkts, 4, 2)
	if len(decoded) != len(batchFrames) {
		t.Fatalf("decoded %d frames, batch has %d", len(decoded), len(batchFrames))
	}
	for i := range decoded {
		if decoded[i].PTS != batchFrames[i].PTS {
			t.Fatalf("frame %d: PTS %d, batch has %d", i, decoded[i].PTS, batchFrames[i].PTS)
		}
		if !bytes.Equal(decoded[i].Y, batchFrames[i].Y) {
			t.Fatalf("frame %d: luma differs from batch decode", i)
		}
	}
	// The pool never decoded a segment: the whole stream went through
	// the serial fallback, whose memory is the codec's own constant.
	if peak := dec.PeakResident(); peak != 0 {
		t.Fatalf("pool residency %d after fallback, want 0", peak)
	}
}

// TestDecoderRejectsOpenGOP feeds a segment whose second packet displays
// before its I frame — the open-GOP shape the version-2 container
// forbids. The chunked decoder must fail with a clean error, not decode
// garbage in a different order than the batch path would.
func TestDecoderRejectsOpenGOP(t *testing.T) {
	cfg := eqConfig(96, 80)
	hdr := container.Header{Codec: container.CodecMPEG2, Width: 96, Height: 80, FPSNum: 25, FPSDen: 1}
	dec, err := stream.NewDecoder(decFactory(hdr, cfg), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	werr := make(chan error, 1)
	go func() {
		var err error
		for _, p := range []container.Packet{
			{Type: container.FrameI, DisplayIndex: 5, Payload: []byte{1}},
			{Type: container.FrameP, DisplayIndex: 2, Payload: []byte{2}},
		} {
			if err = dec.Write(p); err != nil {
				break
			}
		}
		if cerr := dec.Close(); err == nil {
			err = cerr
		}
		werr <- err
	}()
	_, rerr := dec.ReadFrame()
	if rerr == nil || !strings.Contains(rerr.Error(), "displays before") {
		t.Fatalf("ReadFrame: %v, want open-GOP rejection", rerr)
	}
	<-werr
}

// TestDecoderMidStreamFallback covers the mixed shape: a closed-GOP head
// (segments flow through the pool) followed by a boundary-less tail
// longer than FallbackPackets. The decoder must hand the head to the
// pool, then fall back to serial for the tail — with display stamps
// rebased across the switch — and the result must match the batch
// decode frame for frame.
func TestDecoderMidStreamFallback(t *testing.T) {
	const w, h, headFrames, gop = 96, 80, 6, 3
	tailFrames := stream.FallbackPackets + 10

	headCfg := eqConfig(w, h)
	headCfg.IntraPeriod = gop
	head, hdr, err := core.EncodeSequence(core.MPEG2, headCfg, seqgen.New(seqgen.BlueSky, w, h).Generate(headFrames))
	if err != nil {
		t.Fatal(err)
	}
	tailCfg := eqConfig(w, h)
	tailCfg.IntraPeriod = 0 // no boundaries ever again
	tail, _, err := core.EncodeSequence(core.MPEG2, tailCfg, seqgen.New(seqgen.RushHour, w, h).Generate(tailFrames))
	if err != nil {
		t.Fatal(err)
	}
	// Concatenate: the tail opens with an I frame (a reference reset
	// under the version-2 semantics), display indices shifted behind
	// the head.
	pkts := append([]container.Packet{}, head...)
	for _, p := range tail {
		p.DisplayIndex += headFrames
		pkts = append(pkts, p)
	}

	batchFrames, err := core.DecodePackets(hdr, headCfg.Kernels, pkts)
	if err != nil {
		t.Fatal(err)
	}
	if len(batchFrames) != headFrames+tailFrames {
		t.Fatalf("batch decoded %d frames, want %d", len(batchFrames), headFrames+tailFrames)
	}

	decoded, dec := streamDecode(t, hdr, headCfg, pkts, 4, 2)
	if len(decoded) != len(batchFrames) {
		t.Fatalf("decoded %d frames, batch has %d", len(decoded), len(batchFrames))
	}
	for i := range decoded {
		if decoded[i].PTS != batchFrames[i].PTS {
			t.Fatalf("frame %d: PTS %d, batch has %d", i, decoded[i].PTS, batchFrames[i].PTS)
		}
		if !bytes.Equal(decoded[i].Y, batchFrames[i].Y) {
			t.Fatalf("frame %d: luma differs from batch decode", i)
		}
	}
	// The head's segments went through the pool (nonzero residency);
	// the unbounded tail did not (it would have pushed the peak toward
	// tailFrames).
	if peak := dec.PeakResident(); peak == 0 || peak > (dec.Window()+1)*gop {
		t.Fatalf("pool residency %d, want within (0, %d] (head only)", peak, (dec.Window()+1)*gop)
	}
}

// TestDecoderRearmsAfterFallback covers the inverse of the mid-stream
// fallback: a boundary-less head longer than FallbackPackets (serial
// fallback engages) followed by a closed-GOP tail. At the tail's first
// boundary I frame the decoder must re-arm — flush the serial instance
// and hand the remaining segments to a fresh pool — instead of staying
// serial forever, and the output must still match the batch decode
// frame for frame.
func TestDecoderRearmsAfterFallback(t *testing.T) {
	const w, h, gop = 96, 80, 3
	headFrames := stream.FallbackPackets + 10
	const tailFrames = 9

	headCfg := eqConfig(w, h)
	headCfg.IntraPeriod = 0 // boundary-less: forces the fallback
	head, hdr, err := core.EncodeSequence(core.MPEG2, headCfg, seqgen.New(seqgen.BlueSky, w, h).Generate(headFrames))
	if err != nil {
		t.Fatal(err)
	}
	tailCfg := eqConfig(w, h)
	tailCfg.IntraPeriod = gop // boundaries return: the decoder must re-arm
	tail, _, err := core.EncodeSequence(core.MPEG2, tailCfg, seqgen.New(seqgen.RushHour, w, h).Generate(tailFrames))
	if err != nil {
		t.Fatal(err)
	}
	pkts := append([]container.Packet{}, head...)
	for _, p := range tail {
		p.DisplayIndex += headFrames
		pkts = append(pkts, p)
	}

	batchFrames, err := core.DecodePackets(hdr, headCfg.Kernels, pkts)
	if err != nil {
		t.Fatal(err)
	}
	if len(batchFrames) != headFrames+tailFrames {
		t.Fatalf("batch decoded %d frames, want %d", len(batchFrames), headFrames+tailFrames)
	}

	decoded, dec := streamDecode(t, hdr, headCfg, pkts, 4, 2)
	if len(decoded) != len(batchFrames) {
		t.Fatalf("decoded %d frames, batch has %d", len(decoded), len(batchFrames))
	}
	for i := range decoded {
		if decoded[i].PTS != batchFrames[i].PTS {
			t.Fatalf("frame %d: PTS %d, batch has %d", i, decoded[i].PTS, batchFrames[i].PTS)
		}
		if !bytes.Equal(decoded[i].Y, batchFrames[i].Y) {
			t.Fatalf("frame %d: luma differs from batch decode", i)
		}
	}
	if got := dec.Rearms(); got != 1 {
		t.Fatalf("decoder re-armed %d times, want 1", got)
	}
	// The tail's segments went through the re-armed pool, so pool
	// residency is visible again after the fallback window.
	if peak := dec.PeakResident(); peak == 0 {
		t.Fatal("no pool residency after re-arm: tail decoded serially")
	}
}
