// Package stream is the bounded-memory streaming subsystem: it turns the
// batch GOP-parallel pipeline into an incremental engine that can encode,
// decode and transcode sequences of any length at constant memory.
//
// # The window/backpressure model
//
// Both directions are scheduled the same way. The input side accumulates
// work into closed-GOP chunks — GOP frames on the encode side, the
// packets between consecutive closed-GOP I frames on the decode side —
// and submits each completed chunk to a pipeline.OrderedPool: a fixed
// set of worker goroutines, each running a private codec instance per
// chunk, with results drained in submission order. The pool admits at
// most Window chunks that are submitted, processing, or emitted but not
// yet consumed. When the window is full, Write blocks until the reader
// drains a chunk; when the reader outruns the writer, ReadPacket /
// ReadFrame block until a chunk completes. Peak residency is therefore
// O(Window × GOP) frames regardless of sequence length — the property
// that lets cmd/vcodec transcode arbitrarily long sequences and
// cmd/hdvserve cap per-request memory. The Encoder and Decoder track
// their own raw-frame residency and expose the high-water mark via
// PeakResident, so the bound is asserted, not assumed, in the tests.
//
// # Determinism
//
// Chunk workers inherit the closed-GOP invariant of internal/pipeline:
// every chunk starts at an I frame, nothing references across the
// boundary, and codec state resets there, so the streaming output is
// byte-identical to the batch path (and to the serial path) for every
// worker count and window size. stream_test.go proves the full
// codec × resolution × workers matrix.
//
// # Concurrency contract
//
// One goroutine writes (Write then exactly one Close, even after an
// abort); another reads until io.EOF or an error. Abort is safe from any
// goroutine and tears the stream down early — pending work is dropped
// and both sides unblock with ErrAborted. ReadPacket/ReadFrame abort the
// stream automatically when a worker fails, so a blocked writer cannot
// deadlock on an error the reader has already seen.
//
// With Workers <= 1 — or GOP <= 0, where no chunk boundaries exist — the
// engine degrades to a single persistent codec instance driven inline by
// Write, which is still constant-memory (the codec buffers only its
// B-frame lookahead and reference frames) and still byte-identical to
// the batch serial path. With Workers > 1 that single instance is not
// the end of parallelism: codec instances run their per-frame
// macroblock-row slices on a shared pipeline.SliceGate, so streams coded
// with Slices > 1 scale inside each frame even when the GOP gives the
// window scheduler nothing to chunk — including inside the decoder's
// serial-fallback window, which now also re-arms to chunked mode at the
// next closed-GOP boundary (see Decoder).
package stream

import (
	"errors"
	"sync/atomic"

	"hdvideobench/internal/pipeline"
)

// ErrAborted is returned by blocked or subsequent calls after Abort (or
// after a failure on the other side of the stream tore it down).
var ErrAborted = pipeline.ErrAborted

// ErrClosed is returned by Write after Close.
var ErrClosed = errors.New("stream: write after Close")

// DefaultWindowPerWorker sizes the default chunk window: two chunks per
// worker keeps every worker busy while the reader drains the previous
// result, without growing the frame footprint past 2×Workers×GOP.
const DefaultWindowPerWorker = 2

// FallbackPackets is the boundary-less segment length at which the
// chunked decoder gives up on GOP parallelism and falls back to the
// serial single-instance mode: a stream with no interior I frames (the
// paper's first-frame-only-intra setting) is a single segment, and
// buffering it whole would break the constant-memory guarantee. Only
// compressed packets — never decoded frames — are buffered up to this
// point, and serial decode of the replayed prefix is bit-identical, so
// the fallback trades parallelism for the memory bound, not
// correctness. Two mitigations keep the fallback cheap: sliced frames
// still decode in parallel inside it, and the decoder re-arms to
// chunked mode at the next boundary I frame, so the serial window is
// bounded by the pathological segment rather than the stream.
const FallbackPackets = 256

// normWindow resolves a window option against a worker count: non-positive
// selects the default, and the window is never smaller than the worker
// count (a tighter window would just idle workers).
func normWindow(window, workers int) int {
	if window <= 0 {
		window = DefaultWindowPerWorker * workers
	}
	if window < workers {
		window = workers
	}
	if window < 2 {
		window = 2
	}
	return window
}

// gauge is an atomic level/high-water-mark pair: the residency
// accounting both the Encoder and Decoder expose via PeakResident.
type gauge struct {
	cur  atomic.Int64
	peak atomic.Int64
}

// add moves the level by d, folding increases into the high-water mark.
func (g *gauge) add(d int) {
	n := g.cur.Add(int64(d))
	for d > 0 {
		p := g.peak.Load()
		if n <= p || g.peak.CompareAndSwap(p, n) {
			break
		}
	}
}

// high reports the high-water mark.
func (g *gauge) high() int { return int(g.peak.Load()) }
