package stream

import (
	"io"
	"sync"
	"time"

	"hdvideobench/internal/codec"
	"hdvideobench/internal/container"
	"hdvideobench/internal/frame"
	"hdvideobench/internal/obs"
	"hdvideobench/internal/pipeline"
)

// Encoder is the streaming encoder: Write accepts display-order frames,
// ReadPacket emits the coded packets in coding order, and a bounded
// window of closed-GOP chunks in flight keeps peak memory independent of
// sequence length. See the package comment for the scheduling model and
// the concurrency contract.
type Encoder struct {
	hdr    container.Header
	gop    int
	window int

	// chunked mode (workers > 1 and gop > 0)
	pool    *pipeline.OrderedPool[encChunk, []container.Packet]
	cur     []*frame.Frame // chunk being filled (writer goroutine only)
	written int            // frames accepted so far (writer goroutine only)

	// serial mode: one persistent encoder driven inline by Write.
	enc codec.Encoder
	out chan container.Packet

	// reader-side state
	pending   []container.Packet
	chunkHold []container.Packet // ReadChunk serial mode: held-back GOP opener
	rerr      error

	closed   bool
	closeErr error // serial mode: set before out is closed

	closeOut sync.Once
	aborted  chan struct{}
	abortOne sync.Once

	resident gauge
	col      *obs.Collector // nil = no collection
}

type encChunk struct {
	base   int
	frames []*frame.Frame
}

// NewEncoder builds a streaming encoder. factory constructs the codec
// instances (one per chunk in chunked mode); gop is the closed-GOP chunk
// length in frames, workers the number of chunk workers, and window the
// maximum chunks in flight (<= 0 selects 2×workers). workers <= 1 or
// gop <= 0 selects the serial single-instance mode. col, when non-nil,
// receives pipeline measurements (chunk encode time, queue depth, drain
// stalls, slice-gate waits); it must be a constructor parameter because
// the serial-mode slice gate is built right here.
func NewEncoder(factory pipeline.EncoderFactory, gop, workers, window int, col *obs.Collector) (*Encoder, error) {
	if workers > 1 && gop <= 0 {
		// With no chunk boundaries the serial single-instance mode below
		// is the whole pipeline; a slice gate with the full budget is
		// what lets it scale past one core. In chunked mode the pool's
		// workers already consume the budget, so slices run inline on
		// the chunk workers (no gate — the total stays at `workers`).
		factory = pipeline.NewSliceGate(workers).Observe(col).Encoders(factory)
	}
	enc, err := factory()
	if err != nil {
		return nil, err
	}
	e := &Encoder{
		hdr:     enc.Header(),
		gop:     gop,
		aborted: make(chan struct{}),
		col:     col,
	}
	if workers <= 1 || gop <= 0 {
		e.window = normWindow(window, 1)
		e.enc = enc
		// The serial queue holds coded packets, not frames; size it in
		// GOP units so the writer can stay a window ahead of the reader.
		e.out = make(chan container.Packet, e.window*max(gop, 4))
		return e, nil
	}
	e.window = normWindow(window, workers)
	e.pool = pipeline.NewOrderedPool(workers, e.window,
		func(c encChunk) ([]container.Packet, error) {
			defer col.ChunkDone()
			ce, err := factory()
			if err != nil {
				e.resident.add(-len(c.frames))
				return nil, err
			}
			//hdvlint:allow determinism -- collector timing only; the duration feeds metrics, never the bitstream
			t0 := time.Now()
			pkts, err := pipeline.EncodeChunk(ce, c.frames, c.base)
			//hdvlint:allow determinism -- collector timing only; the duration feeds metrics, never the bitstream
			col.ObserveChunkEncode(time.Since(t0))
			// The chunk's raw frames are released here, whether or not
			// the encode succeeded; only coded bytes travel onward.
			e.resident.add(-len(c.frames))
			return pkts, err
		},
		func(c encChunk) { // dropped on abort, never coded
			e.resident.add(-len(c.frames))
			col.ChunkDone()
		},
	)
	return e, nil
}

// Header describes the stream being produced (same header as the batch
// path: codec, dimensions, frame rate; Frames is zero, unknown upfront).
func (e *Encoder) Header() container.Header { return e.hdr }

// Window reports the resolved chunk window.
func (e *Encoder) Window() int { return e.window }

// PeakResident reports the high-water mark of raw input frames held by
// the encoder (chunked mode). The scheduler bounds it by
// (Window+1)×GOP: up to Window admitted chunks plus the chunk being
// filled. In serial mode frames pass straight into the codec and this
// reports zero.
func (e *Encoder) PeakResident() int { return e.resident.high() }

// Write accepts the next display-order frame. The encoder takes
// ownership of f (it is handed to a codec instance and released once its
// chunk is coded). Write blocks while the chunk window is full — the
// backpressure that bounds memory — and returns ErrAborted once the
// stream is torn down.
func (e *Encoder) Write(f *frame.Frame) error {
	if e.closed {
		return ErrClosed
	}
	select {
	case <-e.aborted:
		// A dead stream must not keep accumulating frames: without this
		// check the chunked path would bump resident and buffer into the
		// current chunk between an Abort and the writer noticing (the
		// abort only surfaced at the next full-chunk Submit).
		return ErrAborted
	default:
	}
	if e.pool == nil {
		if e.closeErr != nil {
			return e.closeErr
		}
		pkts, err := e.enc.Encode(f)
		if err != nil {
			e.closeErr = err
			return err
		}
		return e.push(pkts)
	}
	e.resident.add(1)
	e.cur = append(e.cur, f)
	e.written++
	if len(e.cur) == e.gop {
		return e.submit()
	}
	return nil
}

func (e *Encoder) submit() error {
	c := encChunk{base: e.written - len(e.cur), frames: e.cur}
	e.cur = nil
	// Queued before Submit so the gauge pairs with exactly one ChunkDone:
	// a rejected Submit routes the chunk through the pool's drop callback.
	e.col.ChunkQueued()
	return e.pool.Submit(c)
}

// push queues serial-mode packets for the reader, honoring aborts.
func (e *Encoder) push(pkts []container.Packet) error {
	for _, p := range pkts {
		select {
		case e.out <- p:
		case <-e.aborted:
			return ErrAborted
		}
	}
	return nil
}

// Close flushes the final (possibly partial) chunk and marks the end of
// input; ReadPacket drains the remaining packets and then reports
// io.EOF. Close must be called exactly once from the writer side, even
// after an error or an Abort.
func (e *Encoder) Close() error {
	if e.closed {
		return ErrClosed
	}
	e.closed = true
	if e.pool == nil {
		err := e.closeErr
		if err == nil {
			var pkts []container.Packet
			if pkts, err = e.enc.Flush(); err == nil {
				err = e.push(pkts)
			}
			e.closeErr = err
		}
		e.closeOut.Do(func() { close(e.out) })
		return err
	}
	var err error
	if len(e.cur) > 0 {
		err = e.submit()
	}
	e.pool.Close()
	return err
}

// ReadPacket returns the next packet in coding order, blocking until one
// is available. It reports io.EOF after Close once everything has been
// drained. On a worker failure it returns the error and aborts the
// stream so a blocked writer unblocks too; errors are sticky.
func (e *Encoder) ReadPacket() (container.Packet, error) {
	if e.rerr != nil {
		return container.Packet{}, e.rerr
	}
	select { // an aborted stream is dead even if coded data remains
	case <-e.aborted:
		e.rerr = ErrAborted
		return container.Packet{}, e.rerr
	default:
	}
	if e.pool == nil {
		select {
		case p, ok := <-e.out:
			if !ok {
				e.rerr = io.EOF
				if e.closeErr != nil {
					e.rerr = e.closeErr
				}
				return container.Packet{}, e.rerr
			}
			return p, nil
		case <-e.aborted:
			e.rerr = ErrAborted
			return container.Packet{}, e.rerr
		}
	}
	for len(e.pending) == 0 {
		pkts, err := e.next()
		if err != nil {
			if err == io.EOF {
				e.rerr = io.EOF
			} else {
				e.rerr = err
				e.Abort() // unblock the writer; the stream is dead
			}
			return container.Packet{}, e.rerr
		}
		e.pending = pkts
	}
	p := e.pending[0]
	e.pending = e.pending[1:]
	return p, nil
}

// ReadChunk returns the packets of the next whole closed-GOP chunk in
// coding order — the chunk-granular tap that lets a caller observe GOP
// boundaries without re-parsing the stream (the fill unit of the
// hdvserve disk cache, which records each chunk's byte offset for
// range/seek serving). In chunked mode a chunk is exactly the
// scheduler's unit; in serial mode packets are grouped at the I packets
// that open each closed GOP, so both modes agree for the same gop. With
// gop <= 0 the whole stream is one chunk. Same contract as ReadPacket
// (io.EOF after Close, sticky errors, abort on worker failure); do not
// interleave ReadChunk and ReadPacket mid-chunk.
func (e *Encoder) ReadChunk() ([]container.Packet, error) {
	if e.pool != nil {
		if e.rerr != nil {
			return nil, e.rerr
		}
		select {
		case <-e.aborted:
			e.rerr = ErrAborted
			return nil, e.rerr
		default:
		}
		if len(e.pending) > 0 { // remainder of a ReadPacket-opened chunk
			pkts := e.pending
			e.pending = nil
			return pkts, nil
		}
		for {
			pkts, err := e.next()
			if err != nil {
				if err == io.EOF {
					e.rerr = io.EOF
				} else {
					e.rerr = err
					e.Abort() // unblock the writer; the stream is dead
				}
				return nil, e.rerr
			}
			if len(pkts) > 0 {
				return pkts, nil
			}
		}
	}
	// Serial mode: group packets at GOP-opening I frames, holding the
	// opener of the next chunk across calls.
	chunk := e.chunkHold
	e.chunkHold = nil
	for {
		p, err := e.ReadPacket()
		if err == io.EOF {
			if len(chunk) > 0 {
				return chunk, nil
			}
			return nil, io.EOF
		}
		if err != nil {
			return nil, err
		}
		if p.Type == container.FrameI && len(chunk) > 0 {
			e.chunkHold = append(e.chunkHold, p)
			return chunk, nil
		}
		chunk = append(chunk, p)
	}
}

// next pulls the next chunk off the ordered drain, timing the wait when
// a collector is attached: near-zero when the pool runs ahead of the
// consumer, the head-of-line stall otherwise.
func (e *Encoder) next() ([]container.Packet, error) {
	if e.col == nil {
		return e.pool.Next()
	}
	//hdvlint:allow determinism -- collector timing only; the duration feeds metrics, never the bitstream
	t0 := time.Now()
	pkts, err := e.pool.Next()
	//hdvlint:allow determinism -- collector timing only; the duration feeds metrics, never the bitstream
	e.col.ObserveDrainStall(time.Since(t0))
	return pkts, err
}

// Abort tears the stream down early (client gone, downstream failure):
// pending chunks are dropped, and blocked Write/ReadPacket calls return
// ErrAborted. Safe from any goroutine; idempotent. The writer must still
// call Close.
func (e *Encoder) Abort() {
	e.abortOne.Do(func() { close(e.aborted) })
	if e.pool != nil {
		e.pool.Abort()
	}
}
