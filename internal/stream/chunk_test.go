// ReadChunk (the chunk-granular packet tap) and the abort/Write ordering
// fix: an aborted stream must reject frames immediately, and chunk
// grouping must agree between the scheduler's chunked mode and the
// serial mode's I-frame grouping.
package stream_test

import (
	"io"
	"testing"

	"hdvideobench/internal/codec"
	"hdvideobench/internal/container"
	"hdvideobench/internal/core"
	"hdvideobench/internal/seqgen"
	"hdvideobench/internal/stream"
)

// streamEncodeChunks mirrors streamEncode but drains via ReadChunk.
func streamEncodeChunks(t *testing.T, id core.CodecID, cfg codec.Config, n, workers, window int) [][]container.Packet {
	t.Helper()
	const w, h = 96, 80
	frames := seqgen.New(seqgen.BlueSky, w, h).Generate(n)
	enc, err := stream.NewEncoder(encFactory(id, cfg), cfg.IntraPeriod, workers, window, nil)
	if err != nil {
		t.Fatal(err)
	}
	werr := make(chan error, 1)
	go func() {
		for _, f := range frames {
			if err := enc.Write(f); err != nil {
				enc.Close()
				werr <- err
				return
			}
		}
		werr <- enc.Close()
	}()
	var chunks [][]container.Packet
	for {
		pkts, err := enc.ReadChunk()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("ReadChunk: %v", err)
		}
		chunks = append(chunks, pkts)
	}
	if err := <-werr; err != nil {
		t.Fatalf("writer side: %v", err)
	}
	return chunks
}

// TestReadChunkGOPBoundaries: in both modes, every chunk must open with
// the GOP's I packet, cover gop frames (ragged tail aside), and the
// concatenation must be the exact ReadPacket stream.
func TestReadChunkGOPBoundaries(t *testing.T) {
	const w, h, n, gop = 96, 80, 10, 3 // chunks of 3,3,3,1
	cfg := eqConfig(w, h)
	cfg.IntraPeriod = gop

	ref, _ := streamEncode(t, core.MPEG2, cfg,
		seqgen.New(seqgen.BlueSky, w, h).Generate(n), 1, 0)

	for _, workers := range []int{1, 4} {
		chunks := streamEncodeChunks(t, core.MPEG2, cfg, n, workers, 0)
		if want := (n + gop - 1) / gop; len(chunks) != want {
			t.Fatalf("workers=%d: %d chunks, want %d", workers, len(chunks), want)
		}
		flat := 0
		for ci, chunk := range chunks {
			if len(chunk) == 0 {
				t.Fatalf("workers=%d: chunk %d empty", workers, ci)
			}
			if chunk[0].Type != container.FrameI {
				t.Fatalf("workers=%d: chunk %d opens with %c, want I", workers, ci, chunk[0].Type)
			}
			if chunk[0].DisplayIndex != ci*gop {
				t.Fatalf("workers=%d: chunk %d opens at display %d, want %d",
					workers, ci, chunk[0].DisplayIndex, ci*gop)
			}
			for pi, p := range chunk {
				if pi > 0 && p.Type == container.FrameI {
					t.Fatalf("workers=%d: chunk %d has interior I packet at %d", workers, ci, pi)
				}
				if flat >= len(ref) {
					t.Fatalf("workers=%d: more chunked packets than the packet stream", workers)
				}
				r := ref[flat]
				if p.Type != r.Type || p.DisplayIndex != r.DisplayIndex || string(p.Payload) != string(r.Payload) {
					t.Fatalf("workers=%d: chunk %d packet %d differs from packet-stream position %d",
						workers, ci, pi, flat)
				}
				flat++
			}
		}
		if flat != len(ref) {
			t.Fatalf("workers=%d: %d packets via chunks, want %d", workers, flat, len(ref))
		}
	}
}

// TestReadChunkSingleGOP: gop=0 in serial mode yields the whole stream
// as one chunk (the degenerate seek unit).
func TestReadChunkSingleGOP(t *testing.T) {
	const w, h, n = 96, 80, 5
	cfg := eqConfig(w, h)
	cfg.IntraPeriod = 0
	chunks := streamEncodeChunks(t, core.MPEG2, cfg, n, 1, 0)
	if len(chunks) != 1 || len(chunks[0]) != n {
		t.Fatalf("got %d chunks (first %d packets), want 1 chunk of %d", len(chunks), len(chunks[0]), n)
	}
}

// TestWriteAfterAbortRejected pins the Write/Abort ordering fix: once a
// stream is aborted, further Writes must return ErrAborted immediately
// instead of buffering frames into the current chunk — a dead stream
// must not keep accumulating memory between the abort and the writer
// noticing.
func TestWriteAfterAbortRejected(t *testing.T) {
	const w, h, gop = 96, 80, 4
	cfg := eqConfig(w, h)
	cfg.IntraPeriod = gop
	enc, err := stream.NewEncoder(encFactory(core.MPEG2, cfg), gop, 2, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	gen := seqgen.New(seqgen.BlueSky, w, h)
	// One frame in: less than a chunk, so nothing has been submitted and
	// the old code path would happily keep buffering.
	if err := enc.Write(gen.Frame(0)); err != nil {
		t.Fatal(err)
	}
	enc.Abort()
	for i := 1; i <= 8; i++ {
		if err := enc.Write(gen.Frame(i)); err != stream.ErrAborted {
			t.Fatalf("Write %d after Abort: %v, want ErrAborted", i, err)
		}
	}
	if got := enc.PeakResident(); got > 1 {
		t.Fatalf("aborted stream accumulated frames: PeakResident=%d, want <=1", got)
	}
	if err := enc.Close(); err != nil && err != stream.ErrAborted {
		t.Fatalf("Close after abort: %v, want nil or ErrAborted", err)
	}
}
