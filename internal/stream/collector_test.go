package stream_test

import (
	"io"
	"testing"

	"hdvideobench/internal/core"
	"hdvideobench/internal/obs"
	"hdvideobench/internal/seqgen"
	"hdvideobench/internal/stream"
)

// testCollector builds a fully populated collector on a throwaway
// registry, returning both so assertions can read the cells directly.
func testCollector() *obs.Collector {
	r := obs.NewRegistry()
	gate := r.Counter("gate_slices_total", "x.", "mode")
	return &obs.Collector{
		ChunkEncode: r.Histogram("chunk_seconds", "x.", nil).With(),
		DrainStall:  r.Histogram("stall_seconds", "x.", nil).With(),
		QueueDepth:  r.Gauge("queue_depth", "x.").With(),
		GateWait:    r.Histogram("gate_seconds", "x.", nil).With(),
		GateSpawned: gate.With("spawned"),
		GateInline:  gate.With("inline"),
	}
}

// TestCollectorChunkedMode: a chunked encode must account every chunk
// exactly once in the encode histogram, balance the queue-depth gauge
// back to zero, and record one drain wait per reader pull — all
// deterministic counts, no timing assertions.
func TestCollectorChunkedMode(t *testing.T) {
	const n, gop = 8, 2 // 4 chunks
	w, h := 96, 80
	cfg := eqConfig(w, h)
	cfg.IntraPeriod = gop
	col := testCollector()
	enc, err := stream.NewEncoder(encFactory(core.MPEG2, cfg), gop, 2, 0, col)
	if err != nil {
		t.Fatal(err)
	}
	frames := seqgen.New(seqgen.BlueSky, w, h).Generate(n)
	done := make(chan error, 1)
	go func() {
		for _, f := range frames {
			if err := enc.Write(f); err != nil {
				done <- err
				return
			}
		}
		done <- enc.Close()
	}()
	var drains int
	for {
		_, err := enc.ReadChunk()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		drains++
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got := col.ChunkEncode.Count(); got != 4 {
		t.Errorf("ChunkEncode count = %d, want 4", got)
	}
	if got := col.QueueDepth.Value(); got != 0 {
		t.Errorf("QueueDepth at rest = %v, want 0", got)
	}
	// One drain observation per pool pull: the 4 chunks plus the EOF pull.
	if got := col.DrainStall.Count(); got < int64(drains) {
		t.Errorf("DrainStall count = %d, want >= %d", got, drains)
	}
	// Chunked mode installs no gate: slices run inline on chunk workers.
	if col.GateWait.Count() != 0 || col.GateSpawned.Value() != 0 {
		t.Errorf("gate series moved in chunked mode: wait=%d spawned=%v",
			col.GateWait.Count(), col.GateSpawned.Value())
	}
}

// TestCollectorAbortBalancesQueue: chunks dropped by an abort must still
// decrement the queue gauge.
func TestCollectorAbortBalancesQueue(t *testing.T) {
	const gop = 2
	w, h := 96, 80
	cfg := eqConfig(w, h)
	cfg.IntraPeriod = gop
	col := testCollector()
	enc, err := stream.NewEncoder(encFactory(core.MPEG2, cfg), gop, 2, 2, col)
	if err != nil {
		t.Fatal(err)
	}
	// The writer pushes more chunks than the window holds with nothing
	// draining, so it blocks mid-sequence; Abort from the test goroutine
	// unblocks it with ErrAborted and routes queued chunks through the
	// pool's drop callback. Whatever the interleaving — chunks coded,
	// dropped, or never submitted — the gauge must end at zero.
	frames := seqgen.New(seqgen.BlueSky, w, h).Generate(12)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for _, f := range frames {
			if err := enc.Write(f); err != nil {
				break
			}
		}
		enc.Close()
	}()
	enc.Abort()
	<-done
	if _, err := enc.ReadChunk(); err != stream.ErrAborted {
		t.Fatalf("ReadChunk after abort: %v", err)
	}
	if got := col.QueueDepth.Value(); got != 0 {
		t.Errorf("QueueDepth after abort = %v, want 0", got)
	}
}

// TestCollectorSerialGateMode: workers > 1 with no GOP boundaries runs
// the serial slice-gate mode; the gate series must move and the chunk
// series must not.
func TestCollectorSerialGateMode(t *testing.T) {
	const n = 4
	w, h := 96, 80
	cfg := eqConfig(w, h)
	cfg.IntraPeriod = 0 // first-frame-only intra: the serial gate shape
	cfg.Slices = 2
	col := testCollector()
	enc, err := stream.NewEncoder(encFactory(core.MPEG2, cfg), 0, 2, 0, col)
	if err != nil {
		t.Fatal(err)
	}
	frames := seqgen.New(seqgen.BlueSky, w, h).Generate(n)
	done := make(chan error, 1)
	go func() {
		for _, f := range frames {
			if err := enc.Write(f); err != nil {
				done <- err
				return
			}
		}
		done <- enc.Close()
	}()
	for {
		if _, err := enc.ReadPacket(); err != nil {
			if err != io.EOF {
				t.Fatal(err)
			}
			break
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	slices := col.GateSpawned.Value() + col.GateInline.Value()
	if slices == 0 {
		t.Error("no slice jobs accounted in serial gate mode")
	}
	if got := col.GateWait.Count(); got == 0 {
		t.Error("no gate waits observed in serial gate mode")
	}
	if got := col.ChunkEncode.Count(); got != 0 {
		t.Errorf("ChunkEncode moved in serial mode: %d", got)
	}
}
