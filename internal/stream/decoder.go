package stream

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"hdvideobench/internal/codec"
	"hdvideobench/internal/container"
	"hdvideobench/internal/frame"
	"hdvideobench/internal/pipeline"
)

// Decoder is the streaming decoder: Write accepts coding-order packets,
// ReadFrame emits decoded frames in display order, and a bounded window
// of closed-GOP segments in flight keeps peak memory independent of
// stream length. See the package comment for the scheduling model and
// the concurrency contract.
//
// Segment boundaries are detected on the fly: a mid-stream I packet
// whose display index exceeds everything seen so far opens a new
// segment. That is exactly where the container's version-2 closed-GOP
// semantics guarantee a reference reset, so each segment decodes
// independently; a packet that displays before its segment's I frame
// (an open GOP the version-2 container forbids) fails with a clean
// error. A segment that reaches FallbackPackets packets without a
// boundary — the paper's first-frame-only-intra setting, or any stream
// whose I frames stop coming — switches the decoder to the serial
// single-instance mode for the rest of the stream, preserving the
// memory bound at the cost of parallelism.
type Decoder struct {
	window  int
	factory pipeline.DecoderFactory

	// chunked mode (workers > 1)
	pool       *pipeline.OrderedPool[decSegment, []*frame.Frame]
	cur        []container.Packet // segment being collected (writer goroutine only)
	maxDisplay int                // highest display index seen (writer goroutine only)
	submitted  int                // segments handed to the pool (writer goroutine only)
	fellBack   atomic.Bool        // writer→reader signal: serial fallback engaged

	// serial mode: one persistent decoder driven inline by Write. Also
	// the landing spot of the chunked mode's boundary-less fallback;
	// serialBase rebases display stamps when that takeover happens
	// mid-stream (the codec's reorder buffer counts from zero).
	dec        codec.Decoder
	out        chan *frame.Frame
	serialBase int

	// reader-side state
	pending   []*frame.Frame
	useSerial bool // reader observed the fallback
	rerr      error

	closed   bool
	closeErr error

	closeOut sync.Once
	aborted  chan struct{}
	abortOne sync.Once

	resident gauge
}

type decSegment struct {
	pkts []container.Packet
}

// NewDecoder builds a streaming decoder. factory constructs the codec
// instances (one per closed-GOP segment in chunked mode); workers is the
// number of segment workers and window the maximum segments in flight
// (<= 0 selects 2×workers). workers <= 1 selects the serial
// single-instance mode, which handles any stream — including open-ended
// single-segment ones — at the codec's own constant memory.
func NewDecoder(factory pipeline.DecoderFactory, workers, window int) (*Decoder, error) {
	d := &Decoder{
		factory:    factory,
		maxDisplay: -1,
		aborted:    make(chan struct{}),
	}
	if workers <= 1 {
		dec, err := factory()
		if err != nil {
			return nil, err
		}
		d.window = normWindow(window, 1)
		d.dec = dec
		d.out = make(chan *frame.Frame, d.window)
		return d, nil
	}
	d.window = normWindow(window, workers)
	d.pool = pipeline.NewOrderedPool(workers, d.window,
		func(s decSegment) ([]*frame.Frame, error) {
			base := s.pkts[0].DisplayIndex
			for _, p := range s.pkts {
				if p.DisplayIndex < base {
					return nil, fmt.Errorf("stream: packet (type %c, display %d) displays before its segment's I frame (display %d): open-GOP or malformed stream",
						p.Type, p.DisplayIndex, base)
				}
			}
			dec, err := factory()
			if err != nil {
				return nil, err
			}
			frames, err := pipeline.DecodeSegment(dec, s.pkts)
			if err != nil {
				return nil, err
			}
			// Decoded frames are the expensive payload from here on;
			// account them until ReadFrame hands each one to the caller.
			d.resident.add(len(frames))
			return frames, nil
		},
		nil,
	)
	return d, nil
}

// Window reports the resolved segment window.
func (d *Decoder) Window() int { return d.window }

// PeakResident reports the high-water mark of decoded frames held by the
// decoder (chunked mode), bounded by (Window+1)×GOP for a closed-GOP
// stream. In serial mode frames flow through a small channel and this
// reports zero; after a boundary-less fallback only the segments decoded
// before the switch are counted.
func (d *Decoder) PeakResident() int { return d.resident.high() }

// Write accepts the next coding-order packet, blocking while the segment
// window is full. It returns ErrAborted once the stream is torn down.
func (d *Decoder) Write(p container.Packet) error {
	if d.closed {
		return ErrClosed
	}
	if d.dec != nil {
		return d.writeSerial(p)
	}
	// A closed-GOP boundary: an I packet that displays after everything
	// seen so far. The version-2 container guarantees no references
	// cross it, so the collected segment is complete.
	if len(d.cur) > 0 && p.Type == container.FrameI && p.DisplayIndex > d.maxDisplay {
		if err := d.submit(); err != nil {
			return err
		}
	}
	d.cur = append(d.cur, p)
	if p.DisplayIndex > d.maxDisplay {
		d.maxDisplay = p.DisplayIndex
	}
	if len(d.cur) >= FallbackPackets {
		return d.fallBackToSerial()
	}
	return nil
}

func (d *Decoder) writeSerial(p container.Packet) error {
	if d.closeErr != nil {
		return d.closeErr
	}
	p.DisplayIndex -= d.serialBase
	frames, err := d.dec.Decode(p)
	if err != nil {
		d.closeErr = err
		return err
	}
	return d.push(frames)
}

// fallBackToSerial abandons GOP parallelism for the rest of this
// stream: FallbackPackets packets of the current segment arrived
// without a closed-GOP boundary, so segment decoding would buffer
// without bound. The segment always starts at a reference reset (the
// stream head or a boundary I frame), so a persistent serial decoder —
// rebased to the segment's first display index — replays the
// compressed prefix and takes over. The pool is closed; earlier
// segments drain to the reader in order, and the pool's EOF plus the
// fallback flag tell it to switch to the serial channel.
func (d *Decoder) fallBackToSerial() error {
	dec, err := d.factory()
	if err != nil {
		return err
	}
	d.dec = dec
	d.serialBase = d.cur[0].DisplayIndex
	d.out = make(chan *frame.Frame, d.window)
	d.fellBack.Store(true)
	d.pool.Close()
	pkts := d.cur
	d.cur = nil
	for _, p := range pkts {
		if err := d.writeSerial(p); err != nil {
			return err
		}
	}
	return nil
}

func (d *Decoder) submit() error {
	s := decSegment{pkts: d.cur}
	d.cur = nil
	d.submitted++
	return d.pool.Submit(s)
}

// push queues serial-mode frames for the reader, restoring the global
// display stamps a mid-stream fallback rebased away and honoring aborts.
func (d *Decoder) push(frames []*frame.Frame) error {
	for _, f := range frames {
		f.PTS += d.serialBase
		select {
		case d.out <- f:
		case <-d.aborted:
			return ErrAborted
		}
	}
	return nil
}

// Close flushes the final segment and marks the end of input; ReadFrame
// drains the remaining frames and then reports io.EOF. Close must be
// called exactly once from the writer side, even after an error or an
// Abort.
func (d *Decoder) Close() error {
	if d.closed {
		return ErrClosed
	}
	d.closed = true
	if d.dec != nil { // serial mode, or chunked mode after the fallback
		err := d.closeErr
		if err == nil {
			err = d.push(d.dec.Flush())
			d.closeErr = err
		}
		d.closeOut.Do(func() { close(d.out) })
		return err
	}
	var err error
	if len(d.cur) > 0 {
		err = d.submit()
	}
	d.pool.Close()
	return err
}

// ReadFrame returns the next frame in display order, blocking until one
// is available. It reports io.EOF after Close once everything has been
// drained. On a worker failure it returns the error and aborts the
// stream so a blocked writer unblocks too; errors are sticky.
func (d *Decoder) ReadFrame() (*frame.Frame, error) {
	if d.rerr != nil {
		return nil, d.rerr
	}
	select { // an aborted stream is dead even if decoded frames remain
	case <-d.aborted:
		d.rerr = ErrAborted
		return nil, d.rerr
	default:
	}
	if d.pool == nil || d.useSerial {
		return d.readSerial()
	}
	for len(d.pending) == 0 {
		frames, err := d.pool.Next()
		if err != nil {
			if err == io.EOF {
				if d.fellBack.Load() {
					// The writer switched to the serial fallback; all
					// frames now arrive on the serial channel.
					d.useSerial = true
					return d.readSerial()
				}
				d.rerr = io.EOF
			} else {
				d.rerr = err
				d.Abort()
			}
			return nil, d.rerr
		}
		d.pending = frames
	}
	f := d.pending[0]
	d.pending = d.pending[1:]
	d.resident.add(-1)
	return f, nil
}

func (d *Decoder) readSerial() (*frame.Frame, error) {
	select {
	case f, ok := <-d.out:
		if !ok {
			d.rerr = io.EOF
			if d.closeErr != nil {
				d.rerr = d.closeErr
			}
			return nil, d.rerr
		}
		return f, nil
	case <-d.aborted:
		d.rerr = ErrAborted
		return nil, d.rerr
	}
}

// Abort tears the stream down early: pending segments are dropped and
// blocked Write/ReadFrame calls return ErrAborted. Safe from any
// goroutine; idempotent. The writer must still call Close.
func (d *Decoder) Abort() {
	d.abortOne.Do(func() { close(d.aborted) })
	if d.pool != nil {
		d.pool.Abort()
	}
}
