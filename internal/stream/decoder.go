package stream

import (
	"fmt"
	"io"
	"sync"

	"hdvideobench/internal/codec"
	"hdvideobench/internal/container"
	"hdvideobench/internal/frame"
	"hdvideobench/internal/pipeline"
)

// Decoder is the streaming decoder: Write accepts coding-order packets,
// ReadFrame emits decoded frames in display order, and a bounded window
// of closed-GOP segments in flight keeps peak memory independent of
// stream length. See the package comment for the scheduling model and
// the concurrency contract.
//
// Segment boundaries are detected on the fly: a mid-stream I packet
// whose display index exceeds everything seen so far opens a new
// segment. That is exactly where the container's closed-GOP semantics
// guarantee a reference reset, so each segment decodes independently; a
// packet that displays before its segment's I frame (an open GOP the
// container forbids) fails with a clean error.
//
// A segment that reaches FallbackPackets packets without a boundary —
// the paper's first-frame-only-intra setting, or any stream whose I
// frames stop coming — switches the decoder to a serial single-instance
// mode, preserving the memory bound; the serial decoder still scales
// through slice-level parallelism when the stream was coded with
// Slices > 1. The fallback is no longer forever: when a later boundary
// I frame does arrive, the decoder re-arms — the serial instance is
// flushed and a fresh segment pool takes over — so a stream with one
// pathological segment pays for that segment only. The writer hands
// each phase (pool or serial channel) to the reader in order through an
// internal phase queue.
type Decoder struct {
	window  int
	workers int
	factory pipeline.DecoderFactory
	// fbFactory builds the serial-fallback instance: its codecs run
	// their per-frame slices on a gate with the full worker budget.
	// Pool segment decoders use the plain factory instead — the pool's
	// workers already consume the budget, so their slices run inline.
	fbFactory pipeline.DecoderFactory

	// Writer-side state. Exactly one of pool/dec is active at a time in
	// chunked mode; serialOnly (workers <= 1) keeps dec forever.
	pool       *pipeline.OrderedPool[decSegment, []*frame.Frame]
	cur        []container.Packet // segment being collected
	maxDisplay int                // highest display index seen
	dec        codec.Decoder      // serial instance (fallback or serialOnly)
	out        chan *frame.Frame  // serial phase channel
	serialBase int                // display rebase for the serial instance
	serialOnly bool
	rearms     int
	closed     bool
	closeErr   error

	// phases hands each decode phase to the reader in consumption order.
	phases chan decPhase

	// reader-side state
	rp      decPhase
	haveRP  bool
	pending []*frame.Frame
	rerr    error

	poolsMu sync.Mutex
	pools   []*pipeline.OrderedPool[decSegment, []*frame.Frame] // guarded by poolsMu

	aborted  chan struct{}
	abortOne sync.Once

	resident gauge
}

// decPhase is one reader-visible stage of the stream: a segment pool or
// a serial frame channel.
type decPhase struct {
	pool *pipeline.OrderedPool[decSegment, []*frame.Frame]
	out  chan *frame.Frame
}

type decSegment struct {
	pkts []container.Packet
}

// NewDecoder builds a streaming decoder. factory constructs the codec
// instances (one per closed-GOP segment in chunked mode); workers is the
// number of segment workers and window the maximum segments in flight
// (<= 0 selects 2×workers). workers <= 1 selects the serial
// single-instance mode, which handles any stream — including open-ended
// single-segment ones — at the codec's own constant memory. With
// workers > 1, the serial-fallback instance runs its per-frame slices
// on a gate with the full worker budget (the pool is closed by then),
// so sliced boundary-less streams keep scaling inside the fallback.
func NewDecoder(factory pipeline.DecoderFactory, workers, window int) (*Decoder, error) {
	d := &Decoder{
		maxDisplay: -1,
		aborted:    make(chan struct{}),
		phases:     make(chan decPhase, 16),
	}
	if workers <= 1 {
		dec, err := factory()
		if err != nil {
			return nil, err
		}
		d.window = normWindow(window, 1)
		d.factory = factory
		d.serialOnly = true
		d.dec = dec
		d.out = make(chan *frame.Frame, d.window)
		d.phases <- decPhase{out: d.out}
		return d, nil
	}
	d.factory = factory
	d.fbFactory = pipeline.NewSliceGate(workers).Decoders(factory)
	d.workers = workers
	d.window = normWindow(window, workers)
	d.pool = d.newPool()
	d.phases <- decPhase{pool: d.pool}
	return d, nil
}

// newPool starts a fresh segment pool (the initial one, or a re-armed
// one after a serial fallback ends at a boundary I frame).
func (d *Decoder) newPool() *pipeline.OrderedPool[decSegment, []*frame.Frame] {
	p := pipeline.NewOrderedPool(d.workers, d.window,
		func(s decSegment) ([]*frame.Frame, error) {
			base := s.pkts[0].DisplayIndex
			for _, p := range s.pkts {
				if p.DisplayIndex < base {
					return nil, fmt.Errorf("stream: packet (type %c, display %d) displays before its segment's I frame (display %d): open-GOP or malformed stream",
						p.Type, p.DisplayIndex, base)
				}
			}
			dec, err := d.factory()
			if err != nil {
				return nil, err
			}
			frames, err := pipeline.DecodeSegment(dec, s.pkts)
			if err != nil {
				return nil, err
			}
			// Decoded frames are the expensive payload from here on;
			// account them until ReadFrame hands each one to the caller.
			d.resident.add(len(frames))
			return frames, nil
		},
		nil,
	)
	d.poolsMu.Lock()
	d.pools = append(d.pools, p)
	select {
	case <-d.aborted:
		p.Abort()
	default:
	}
	d.poolsMu.Unlock()
	return p
}

// pushPhase queues a phase for the reader, honoring aborts.
func (d *Decoder) pushPhase(ph decPhase) error {
	select {
	case d.phases <- ph:
		return nil
	case <-d.aborted:
		return ErrAborted
	}
}

// Window reports the resolved segment window.
func (d *Decoder) Window() int { return d.window }

// PeakResident reports the high-water mark of decoded frames held by the
// decoder's segment pools, bounded by (Window+1)×GOP for a closed-GOP
// stream. Frames flowing through a serial phase move one at a time and
// are not counted.
func (d *Decoder) PeakResident() int { return d.resident.high() }

// Rearms reports how many times the decoder returned from the serial
// fallback to chunked mode at a boundary I frame.
func (d *Decoder) Rearms() int { return d.rearms }

// Write accepts the next coding-order packet, blocking while the segment
// window is full. It returns ErrAborted once the stream is torn down.
func (d *Decoder) Write(p container.Packet) error {
	if d.closed {
		return ErrClosed
	}
	if d.serialOnly {
		return d.writeSerial(p)
	}
	if d.dec != nil { // serial fallback active
		if d.closeErr != nil {
			return d.closeErr
		}
		if p.Type == container.FrameI && p.DisplayIndex > d.maxDisplay {
			return d.rearm(p)
		}
		if p.DisplayIndex > d.maxDisplay {
			d.maxDisplay = p.DisplayIndex
		}
		return d.writeSerial(p)
	}
	// A closed-GOP boundary: an I packet that displays after everything
	// seen so far. The container's closed-GOP semantics guarantee no
	// references cross it, so the collected segment is complete.
	if len(d.cur) > 0 && p.Type == container.FrameI && p.DisplayIndex > d.maxDisplay {
		if err := d.submit(); err != nil {
			return err
		}
	}
	d.cur = append(d.cur, p)
	if p.DisplayIndex > d.maxDisplay {
		d.maxDisplay = p.DisplayIndex
	}
	if len(d.cur) >= FallbackPackets {
		return d.fallBackToSerial()
	}
	return nil
}

func (d *Decoder) writeSerial(p container.Packet) error {
	if d.closeErr != nil {
		return d.closeErr
	}
	p.DisplayIndex -= d.serialBase
	frames, err := d.dec.Decode(p)
	if err != nil {
		d.closeErr = err
		return err
	}
	return d.push(frames)
}

// fallBackToSerial abandons GOP parallelism for the current segment:
// FallbackPackets packets arrived without a closed-GOP boundary, so
// segment decoding would buffer without bound. The segment always starts
// at a reference reset (the stream head, a boundary I frame, or a
// re-armed pool's first segment), so a persistent serial decoder —
// rebased to the segment's first display index — replays the compressed
// prefix and takes over. The current pool is closed; its segments drain
// to the reader in order before the serial phase begins.
func (d *Decoder) fallBackToSerial() error {
	dec, err := d.fbFactory()
	if err != nil {
		return err
	}
	d.dec = dec
	d.serialBase = d.cur[0].DisplayIndex
	d.out = make(chan *frame.Frame, d.window)
	d.pool.Close()
	d.pool = nil
	if err := d.pushPhase(decPhase{out: d.out}); err != nil {
		return err
	}
	pkts := d.cur
	d.cur = nil
	for _, p := range pkts {
		if err := d.writeSerial(p); err != nil {
			return err
		}
	}
	return nil
}

// rearm ends the serial fallback at a boundary I frame: the serial
// decoder is flushed and retired, a fresh segment pool opens, and the
// boundary packet starts its first segment — the stream is chunk-
// parallel again (ROADMAP: closed-GOP streams with one over-long segment
// no longer decode single-threaded forever).
func (d *Decoder) rearm(p container.Packet) error {
	if err := d.push(d.dec.Flush()); err != nil {
		return err
	}
	close(d.out)
	d.dec = nil
	d.out = nil
	d.rearms++
	d.pool = d.newPool()
	if err := d.pushPhase(decPhase{pool: d.pool}); err != nil {
		return err
	}
	d.cur = append(d.cur[:0:0], p)
	d.maxDisplay = p.DisplayIndex
	return nil
}

func (d *Decoder) submit() error {
	s := decSegment{pkts: d.cur}
	d.cur = nil
	return d.pool.Submit(s)
}

// push queues serial-phase frames for the reader, restoring the global
// display stamps a mid-stream fallback rebased away and honoring aborts.
func (d *Decoder) push(frames []*frame.Frame) error {
	for _, f := range frames {
		f.PTS += d.serialBase
		select {
		case d.out <- f:
		case <-d.aborted:
			return ErrAborted
		}
	}
	return nil
}

// Close flushes the final segment (or the serial decoder) and marks the
// end of input; ReadFrame drains the remaining frames and then reports
// io.EOF. Close must be called exactly once from the writer side, even
// after an error or an Abort.
func (d *Decoder) Close() error {
	if d.closed {
		return ErrClosed
	}
	d.closed = true
	var err error
	if d.dec != nil { // serial-only mode, or chunked mode inside a fallback
		err = d.closeErr
		if err == nil {
			err = d.push(d.dec.Flush())
			d.closeErr = err
		}
		close(d.out)
	} else if d.pool != nil {
		if len(d.cur) > 0 {
			err = d.submit()
		}
		d.pool.Close()
	}
	close(d.phases)
	return err
}

// ReadFrame returns the next frame in display order, blocking until one
// is available. It reports io.EOF after Close once everything has been
// drained. On a worker failure it returns the error and aborts the
// stream so a blocked writer unblocks too; errors are sticky.
func (d *Decoder) ReadFrame() (*frame.Frame, error) {
	if d.rerr != nil {
		return nil, d.rerr
	}
	select { // an aborted stream is dead even if decoded frames remain
	case <-d.aborted:
		d.rerr = ErrAborted
		return nil, d.rerr
	default:
	}
	for {
		if !d.haveRP {
			select {
			case ph, ok := <-d.phases:
				if !ok {
					d.rerr = io.EOF
					if d.closeErr != nil {
						d.rerr = d.closeErr
					}
					return nil, d.rerr
				}
				d.rp = ph
				d.haveRP = true
			case <-d.aborted:
				d.rerr = ErrAborted
				return nil, d.rerr
			}
		}
		if d.rp.pool != nil {
			for len(d.pending) == 0 {
				frames, err := d.rp.pool.Next()
				if err == io.EOF {
					d.haveRP = false
					break
				}
				if err != nil {
					d.rerr = err
					d.Abort()
					return nil, d.rerr
				}
				d.pending = frames
			}
			if len(d.pending) == 0 {
				continue // pool drained; move to the next phase
			}
			f := d.pending[0]
			d.pending = d.pending[1:]
			d.resident.add(-1)
			return f, nil
		}
		select {
		case f, ok := <-d.rp.out:
			if !ok {
				d.haveRP = false
				continue // serial phase ended (re-arm or Close)
			}
			return f, nil
		case <-d.aborted:
			d.rerr = ErrAborted
			return nil, d.rerr
		}
	}
}

// Abort tears the stream down early: pending segments are dropped and
// blocked Write/ReadFrame calls return ErrAborted. Safe from any
// goroutine; idempotent. The writer must still call Close.
func (d *Decoder) Abort() {
	d.abortOne.Do(func() { close(d.aborted) })
	d.poolsMu.Lock()
	for _, p := range d.pools {
		p.Abort()
	}
	d.poolsMu.Unlock()
}
