package container

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// TestGOPIndexRoundTrip encodes an index behind fake container bytes and
// reads it back through the trailer path.
func TestGOPIndexRoundTrip(t *testing.T) {
	body := bytes.Repeat([]byte{0xAB}, 1000)
	idx := GOPIndex{
		Size: int64(len(body)),
		Entries: []GOPIndexEntry{
			{Offset: 20, Frame: 0},
			{Offset: 333, Frame: 8},
			{Offset: 804, Frame: 16},
		},
	}
	file := AppendGOPIndex(append([]byte(nil), body...), idx)
	if want := len(body) + GOPIndexRecordSize(len(idx.Entries)); len(file) != want {
		t.Fatalf("file length %d, want %d", len(file), want)
	}

	got, err := ReadGOPIndexTrailer(bytes.NewReader(file), int64(len(file)))
	if err != nil {
		t.Fatal(err)
	}
	if got.Size != idx.Size || len(got.Entries) != len(idx.Entries) {
		t.Fatalf("got %+v, want %+v", got, idx)
	}
	for i := range idx.Entries {
		if got.Entries[i] != idx.Entries[i] {
			t.Fatalf("entry %d: got %+v, want %+v", i, got.Entries[i], idx.Entries[i])
		}
	}
}

// TestGOPIndexEmptyEntries: a zero-GOP index (degenerate but legal)
// still round-trips.
func TestGOPIndexEmptyEntries(t *testing.T) {
	file := AppendGOPIndex([]byte("body"), GOPIndex{Size: 4})
	got, err := ReadGOPIndexTrailer(bytes.NewReader(file), int64(len(file)))
	if err != nil {
		t.Fatal(err)
	}
	if got.Size != 4 || len(got.Entries) != 0 {
		t.Fatalf("got %+v", got)
	}
}

// TestGOPIndexMissing: files without the footer magic report
// ErrNoGOPIndex, not a parse error.
func TestGOPIndexMissing(t *testing.T) {
	for _, b := range [][]byte{
		nil,
		[]byte("short"),
		bytes.Repeat([]byte{0}, 100),
	} {
		if _, err := ReadGOPIndexTrailer(bytes.NewReader(b), int64(len(b))); !errors.Is(err, ErrNoGOPIndex) {
			t.Fatalf("%d-byte junk: err = %v, want ErrNoGOPIndex", len(b), err)
		}
	}
}

// TestGOPIndexCorrupt: structurally damaged trailers fail with a real
// error instead of returning garbage offsets.
func TestGOPIndexCorrupt(t *testing.T) {
	body := bytes.Repeat([]byte{1}, 200)
	idx := GOPIndex{Size: 200, Entries: []GOPIndexEntry{{Offset: 20, Frame: 0}, {Offset: 90, Frame: 4}}}
	clean := AppendGOPIndex(append([]byte(nil), body...), idx)

	corrupt := func(name string, mutate func(b []byte)) {
		t.Helper()
		b := append([]byte(nil), clean...)
		mutate(b)
		if _, err := ReadGOPIndexTrailer(bytes.NewReader(b), int64(len(b))); err == nil {
			t.Fatalf("%s: corrupt trailer parsed cleanly", name)
		}
	}
	recStart := len(body)
	corrupt("record length too small", func(b []byte) {
		binary.LittleEndian.PutUint32(b[len(b)-8:], 4)
	})
	corrupt("record length past file", func(b []byte) {
		binary.LittleEndian.PutUint32(b[len(b)-8:], uint32(len(b)+1))
	})
	corrupt("bad version", func(b []byte) { b[recStart+4] = 99 })
	corrupt("count inconsistent", func(b []byte) {
		binary.LittleEndian.PutUint32(b[recStart+5:], 7)
	})
	corrupt("offsets out of order", func(b []byte) {
		binary.LittleEndian.PutUint64(b[recStart+9:], 95) // first offset > second
	})
	corrupt("offset out of bounds", func(b []byte) {
		binary.LittleEndian.PutUint64(b[recStart+9+12:], 1000)
	})
	corrupt("size mismatch", func(b []byte) {
		binary.LittleEndian.PutUint64(b[recStart+9+24:], 150)
	})
}
