package container

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	hdr := Header{
		Codec: CodecH264, Flags: 3,
		Width: 1280, Height: 720,
		FPSNum: 25, FPSDen: 1,
		Frames: 2,
	}
	w, err := NewWriter(&buf, hdr)
	if err != nil {
		t.Fatal(err)
	}
	pkts := []Packet{
		{Type: FrameI, DisplayIndex: 0, Payload: []byte{1, 2, 3}},
		{Type: FrameP, DisplayIndex: 3, Payload: bytes.Repeat([]byte{7}, 1000)},
		{Type: FrameB, DisplayIndex: 1, Payload: nil},
	}
	for _, p := range pkts {
		if err := w.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 3 {
		t.Fatalf("count = %d", w.Count())
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Header(); got != hdr {
		t.Fatalf("header = %+v, want %+v", got, hdr)
	}
	for i, want := range pkts {
		got, err := r.ReadPacket()
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if got.Type != want.Type || got.DisplayIndex != want.DisplayIndex {
			t.Fatalf("packet %d: %+v", i, got)
		}
		if !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("packet %d payload mismatch", i)
		}
	}
	if _, err := r.ReadPacket(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestBadMagic(t *testing.T) {
	buf := bytes.NewBufferString("NOTAVIDEOSTREAMHEADER!")
	if _, err := NewReader(buf); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v", err)
	}
}

func TestBadVersion(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf, Header{Codec: CodecMPEG2}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[4] = 99
	if _, err := NewReader(bytes.NewReader(data)); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("err = %v", err)
	}
}

func TestTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, Header{Codec: CodecMPEG4, Width: 16, Height: 16})
	_ = w.WritePacket(Packet{Type: FrameI, Payload: []byte{1, 2, 3, 4}})
	data := buf.Bytes()
	r, err := NewReader(bytes.NewReader(data[:len(data)-2]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.ReadPacket(); err == nil || err == io.EOF {
		t.Fatalf("truncated payload must error, got %v", err)
	}
}

func TestCodecNames(t *testing.T) {
	if CodecMPEG2.String() != "MPEG-2" || CodecMPEG4.String() != "MPEG-4" || CodecH264.String() != "H.264" {
		t.Fatal("codec names must match the paper")
	}
}
