package container

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

var streamPkts = []Packet{
	{Type: FrameI, DisplayIndex: 0, Payload: []byte{1, 2, 3}},
	{Type: FrameP, DisplayIndex: 3, Payload: bytes.Repeat([]byte{7}, 500)},
	{Type: FrameB, DisplayIndex: 1, Payload: []byte{9}},
}

func streamHdr(frames int) Header {
	return Header{Codec: CodecMPEG2, Width: 96, Height: 80, FPSNum: 25, FPSDen: 1, Frames: frames}
}

// TestStreamWriterMatchesBatch checks the incremental writer produces
// exactly the bytes of the batch Writer, and accounts bytes and packets.
func TestStreamWriterMatchesBatch(t *testing.T) {
	var batch bytes.Buffer
	bw, err := NewWriter(&batch, streamHdr(len(streamPkts)))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range streamPkts {
		if err := bw.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}

	var inc bytes.Buffer
	sw, err := NewStreamWriter(&inc, streamHdr(len(streamPkts)))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range streamPkts {
		if err := sw.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(inc.Bytes(), batch.Bytes()) {
		t.Fatalf("stream writer bytes differ from batch (%d vs %d)", inc.Len(), batch.Len())
	}
	if sw.Count() != len(streamPkts) {
		t.Fatalf("count = %d, want %d", sw.Count(), len(streamPkts))
	}
	if sw.BytesWritten() != int64(inc.Len()) {
		t.Fatalf("BytesWritten = %d, want %d", sw.BytesWritten(), inc.Len())
	}
}

// netFlusher mimics http.ResponseWriter: error-less Flush.
type netFlusher struct {
	bytes.Buffer
	flushes int
}

func (f *netFlusher) Flush() { f.flushes++ }

// errFlusher mimics bufio.Writer: Flush returns an error.
type errFlusher struct {
	bytes.Buffer
	flushes int
}

func (f *errFlusher) Flush() error { f.flushes++; return nil }

// TestStreamWriterFlushThrough checks each packet is pushed through an
// http-style flusher, while bufio-style flushers keep their batching
// (only an explicit Flush reaches them).
func TestStreamWriterFlushThrough(t *testing.T) {
	var nf netFlusher
	sw, err := NewStreamWriter(&nf, streamHdr(0))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range streamPkts {
		if err := sw.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	if nf.flushes != len(streamPkts) {
		t.Fatalf("http-style flushes = %d, want one per packet (%d)", nf.flushes, len(streamPkts))
	}

	var ef errFlusher
	sw, err = NewStreamWriter(&ef, streamHdr(0))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range streamPkts {
		if err := sw.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	if ef.flushes != 0 {
		t.Fatalf("bufio-style flushes = %d, want 0 (batching preserved)", ef.flushes)
	}
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	if ef.flushes != 1 {
		t.Fatalf("explicit Flush reached the flusher %d times, want 1", ef.flushes)
	}
}

// TestStreamReaderDeclaredLength checks a declared-length stream stops
// cleanly after its packets without touching trailing bytes, so streams
// can be concatenated or followed by other data.
func TestStreamReaderDeclaredLength(t *testing.T) {
	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf, streamHdr(len(streamPkts)))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range streamPkts {
		if err := sw.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	streamLen := buf.Len()
	buf.WriteString("TRAILING GARBAGE")

	sr, err := NewStreamReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range streamPkts {
		p, err := sr.Next()
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if p.Type != streamPkts[i].Type || p.DisplayIndex != streamPkts[i].DisplayIndex ||
			!bytes.Equal(p.Payload, streamPkts[i].Payload) {
			t.Fatalf("packet %d differs", i)
		}
	}
	if _, err := sr.Next(); err != io.EOF {
		t.Fatalf("after declared count: %v, want io.EOF", err)
	}
	if sr.Count() != len(streamPkts) {
		t.Fatalf("Count = %d, want %d", sr.Count(), len(streamPkts))
	}
	if sr.BytesRead() != int64(streamLen) {
		t.Fatalf("BytesRead = %d, want %d (trailing bytes must stay unread)", sr.BytesRead(), streamLen)
	}
}

// TestStreamReaderTruncated checks a declared-length stream that ends
// early reports io.ErrUnexpectedEOF, not a clean EOF.
func TestStreamReaderTruncated(t *testing.T) {
	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf, streamHdr(5)) // declares 5, delivers 2
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range streamPkts[:2] {
		if err := sw.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	sr, err := NewStreamReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := sr.Next(); err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
	}
	if _, err := sr.Next(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated stream: %v, want io.ErrUnexpectedEOF", err)
	}
	// The error must be sticky.
	if _, err := sr.Next(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("second read after truncation: %v, want sticky io.ErrUnexpectedEOF", err)
	}
}

// TestStreamReaderUndeclaredLength checks the Frames=0 convention still
// reads to EOF like the batch Reader.
func TestStreamReaderUndeclaredLength(t *testing.T) {
	var buf bytes.Buffer
	sw, err := NewStreamWriter(&buf, streamHdr(0))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range streamPkts {
		if err := sw.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	sr, err := NewStreamReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, err := sr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != len(streamPkts) {
		t.Fatalf("read %d packets, want %d", n, len(streamPkts))
	}
}
