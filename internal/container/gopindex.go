package container

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// GOP index record. A coded HDVB stream made of closed GOPs is seekable
// at GOP granularity: every GOP opens with an I packet and nothing
// references across the boundary, so a decoder handed the stream header
// plus any GOP-aligned byte suffix can decode from there. The index
// records where those boundaries sit in the byte stream. It is written
// as a trailer *behind* the container bytes (the disk-cache layout in
// internal/gopcache): the stream itself stays byte-identical to an
// unindexed one, and a reader that has random access finds the record
// from the file's tail.
//
// Record layout (little-endian):
//
//	"HDVX" | u8 version | u32 count | count × (u64 offset, u32 frame) |
//	u64 size | u32 recordLen | "HDVX"
//
// The trailing (recordLen, magic) pair is the footer: a reader seeks to
// the last 8 bytes, validates the magic, and steps back recordLen bytes
// to the record's start. size is the byte length of the container
// stream the offsets index into — for a cache entry file, everything
// before the record.

// GOPIndexEntry locates one closed GOP inside a coded stream.
type GOPIndexEntry struct {
	Offset int64 // byte offset of the GOP's first packet header
	Frame  int   // display index of the GOP's first (I) frame
}

// GOPIndex locates every closed GOP of a coded stream.
type GOPIndex struct {
	Size    int64 // container byte length the offsets index into
	Entries []GOPIndexEntry
}

// ErrNoGOPIndex reports that a file or buffer carries no GOP index
// trailer.
var ErrNoGOPIndex = errors.New("container: no GOP index trailer")

const (
	gopIndexMagic   = "HDVX"
	gopIndexVersion = 1
	// gopIndexFixed is the record length excluding the per-entry part:
	// magic(4) + version(1) + count(4) + size(8) + recordLen(4) + magic(4).
	gopIndexFixed = 25
	gopEntrySize  = 12
	// MaxGOPEntries bounds index parsing the way the packet reader bounds
	// payload sizes: far beyond any real stream, small enough that a
	// corrupt count cannot demand an absurd allocation.
	MaxGOPEntries = 1 << 22
)

// GOPIndexRecordSize returns the encoded byte length of an index with n
// entries.
func GOPIndexRecordSize(n int) int { return gopIndexFixed + n*gopEntrySize }

// AppendGOPIndex appends the encoded index record (including its footer)
// to dst.
func AppendGOPIndex(dst []byte, idx GOPIndex) []byte {
	dst = append(dst, gopIndexMagic...)
	dst = append(dst, gopIndexVersion)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(idx.Entries)))
	for _, e := range idx.Entries {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(e.Offset))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(e.Frame))
	}
	dst = binary.LittleEndian.AppendUint64(dst, uint64(idx.Size))
	dst = binary.LittleEndian.AppendUint32(dst, uint32(GOPIndexRecordSize(len(idx.Entries))))
	return append(dst, gopIndexMagic...)
}

// WriteGOPIndex writes the encoded index record to w.
func WriteGOPIndex(w io.Writer, idx GOPIndex) (int, error) {
	return w.Write(AppendGOPIndex(make([]byte, 0, GOPIndexRecordSize(len(idx.Entries))), idx))
}

// ReadGOPIndexTrailer reads a GOP index record from the tail of a
// fileSize-byte random-access file (a cache entry: container bytes
// followed by the record). It validates the footer, the declared sizes
// against fileSize, and that the offsets form a strictly increasing
// in-bounds sequence. A file with no (or an unrecognizable) footer
// reports ErrNoGOPIndex.
func ReadGOPIndexTrailer(r io.ReaderAt, fileSize int64) (GOPIndex, error) {
	var foot [8]byte
	if fileSize < gopIndexFixed {
		return GOPIndex{}, ErrNoGOPIndex
	}
	if _, err := r.ReadAt(foot[:], fileSize-8); err != nil {
		return GOPIndex{}, fmt.Errorf("container: reading GOP index footer: %w", err)
	}
	if string(foot[4:]) != gopIndexMagic {
		return GOPIndex{}, ErrNoGOPIndex
	}
	recLen := int64(binary.LittleEndian.Uint32(foot[:4]))
	if recLen < gopIndexFixed || recLen > fileSize || (recLen-gopIndexFixed)%gopEntrySize != 0 {
		return GOPIndex{}, fmt.Errorf("container: GOP index record length %d invalid for %d-byte file", recLen, fileSize)
	}
	buf := make([]byte, recLen)
	if _, err := r.ReadAt(buf, fileSize-recLen); err != nil {
		return GOPIndex{}, fmt.Errorf("container: reading GOP index record: %w", err)
	}
	if string(buf[:4]) != gopIndexMagic {
		return GOPIndex{}, fmt.Errorf("container: GOP index record magic mismatch")
	}
	if buf[4] != gopIndexVersion {
		return GOPIndex{}, fmt.Errorf("container: GOP index version %d unsupported", buf[4])
	}
	count := int64(binary.LittleEndian.Uint32(buf[5:]))
	if count > MaxGOPEntries || GOPIndexRecordSize(int(count)) != int(recLen) {
		return GOPIndex{}, fmt.Errorf("container: GOP index count %d inconsistent with record length %d", count, recLen)
	}
	idx := GOPIndex{Entries: make([]GOPIndexEntry, count)}
	p := int64(9)
	for i := range idx.Entries {
		idx.Entries[i].Offset = int64(binary.LittleEndian.Uint64(buf[p:]))
		idx.Entries[i].Frame = int(binary.LittleEndian.Uint32(buf[p+8:]))
		p += gopEntrySize
	}
	idx.Size = int64(binary.LittleEndian.Uint64(buf[p:]))
	if idx.Size != fileSize-recLen {
		return GOPIndex{}, fmt.Errorf("container: GOP index declares %d container bytes, file holds %d", idx.Size, fileSize-recLen)
	}
	prev := int64(-1)
	for i, e := range idx.Entries {
		if e.Offset <= prev || e.Offset >= idx.Size {
			return GOPIndex{}, fmt.Errorf("container: GOP index entry %d offset %d out of order or out of bounds", i, e.Offset)
		}
		prev = e.Offset
	}
	return idx, nil
}
