// Package container defines the HDVB elementary-stream container that the
// three codecs write and read. It plays the role the .m2v/.avi/.h264 files
// play in the paper's Table IV commands: a self-describing file holding one
// coded video stream.
//
// Layout (all integers little-endian):
//
//	header:  magic "HDVB" | u8 version | u8 codec | u16 flags |
//	         u16 width | u16 height | u16 fpsNum | u16 fpsDen | u32 frames
//	frame:   u8 type ('I','P','B') | u32 displayIndex | u32 size | payload
//
// Frames are stored in coding order; displayIndex carries the presentation
// order (the IPBB GOP reorders B frames after their backward reference).
package container

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Codec identifies the coded stream format.
type Codec uint8

const (
	CodecMPEG2 Codec = 1
	CodecMPEG4 Codec = 2
	CodecH264  Codec = 3
)

// String returns the codec name as used in the paper.
func (c Codec) String() string {
	switch c {
	case CodecMPEG2:
		return "MPEG-2"
	case CodecMPEG4:
		return "MPEG-4"
	case CodecH264:
		return "H.264"
	}
	return fmt.Sprintf("Codec(%d)", uint8(c))
}

// FrameType is the picture coding type.
type FrameType uint8

const (
	FrameI FrameType = 'I'
	FrameP FrameType = 'P'
	FrameB FrameType = 'B'
)

// Header describes a stream.
type Header struct {
	Codec          Codec
	Flags          uint16
	Width, Height  int
	FPSNum, FPSDen int
	Frames         int
}

// FlagSliceQ (bit 15 of Header.Flags) marks streams whose slices each
// carry their own quantizer: the first byte of every slice body is that
// slice's q, overriding the frame quantizer in the packet's first
// payload byte for that slice's coefficients. Rate-targeted encodes with
// more than one slice set it (per-slice budget rebalancing); all other
// streams leave it clear, so their bytes are unchanged. The low flag
// bits stay codec-private (H.264 uses bits 0-4 for entropy mode and
// reference count).
const FlagSliceQ = 1 << 15

// Packet is one coded frame.
type Packet struct {
	Type         FrameType
	DisplayIndex int
	Payload      []byte
}

const magic = "HDVB"

var (
	// ErrBadMagic indicates the input is not an HDVB stream.
	ErrBadMagic = errors.New("container: bad magic")
	// ErrBadVersion indicates an unsupported container version.
	ErrBadVersion = errors.New("container: unsupported version")
)

// version 2 marked the closed-GOP reference semantics: decoders reset
// their reference state at every I frame, so version-1 streams coded
// with open GOPs (mid-stream I frames whose trailing B packets reference
// across them) would fail mid-decode. version 3 adds the slice layer:
// every frame payload now opens with a one-byte quantizer field followed
// by a slice table (count + per-slice row range and byte length) ahead
// of the per-slice bitstreams, so version-2 payloads no longer parse.
// Rejecting old streams at the header with ErrBadVersion names the
// incompatibility instead.
const version = 3

// headerSize is the fixed byte length of the stream header.
const headerSize = 20

// Writer writes an HDVB stream.
type Writer struct {
	w     io.Writer
	count int
}

// NewWriter writes the stream header and returns a Writer. hdr.Frames may
// be zero if unknown (readers then consume until EOF).
func NewWriter(w io.Writer, hdr Header) (*Writer, error) {
	buf := make([]byte, 0, headerSize)
	buf = append(buf, magic...)
	buf = append(buf, version, uint8(hdr.Codec))
	buf = binary.LittleEndian.AppendUint16(buf, hdr.Flags)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(hdr.Width))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(hdr.Height))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(hdr.FPSNum))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(hdr.FPSDen))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(hdr.Frames))
	if _, err := w.Write(buf); err != nil {
		return nil, err
	}
	return &Writer{w: w}, nil
}

// WritePacket appends one coded frame.
func (w *Writer) WritePacket(p Packet) error {
	var hdr [9]byte
	hdr[0] = byte(p.Type)
	binary.LittleEndian.PutUint32(hdr[1:], uint32(p.DisplayIndex))
	binary.LittleEndian.PutUint32(hdr[5:], uint32(len(p.Payload)))
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(p.Payload); err != nil {
		return err
	}
	w.count++
	return nil
}

// Count returns the number of packets written.
func (w *Writer) Count() int { return w.count }

// readChunk bounds per-step payload allocation; zeroChunk is the shared
// append source so growing the buffer costs no throwaway allocations.
const readChunk = 1 << 16

var zeroChunk [readChunk]byte

// Reader reads an HDVB stream.
type Reader struct {
	r   io.Reader
	hdr Header
}

// NewReader parses the stream header.
func NewReader(r io.Reader) (*Reader, error) {
	buf := make([]byte, headerSize)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("container: reading header: %w", err)
	}
	if string(buf[:4]) != magic {
		return nil, ErrBadMagic
	}
	if buf[4] != version {
		return nil, ErrBadVersion
	}
	hdr := Header{
		Codec:  Codec(buf[5]),
		Flags:  binary.LittleEndian.Uint16(buf[6:]),
		Width:  int(binary.LittleEndian.Uint16(buf[8:])),
		Height: int(binary.LittleEndian.Uint16(buf[10:])),
		FPSNum: int(binary.LittleEndian.Uint16(buf[12:])),
		FPSDen: int(binary.LittleEndian.Uint16(buf[14:])),
		Frames: int(binary.LittleEndian.Uint32(buf[16:])),
	}
	return &Reader{r: r, hdr: hdr}, nil
}

// Header returns the parsed stream header.
func (r *Reader) Header() Header { return r.hdr }

// ReadPacket reads the next coded frame; io.EOF signals the clean end of
// the stream.
func (r *Reader) ReadPacket() (Packet, error) {
	var hdr [9]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Packet{}, io.EOF
		}
		return Packet{}, fmt.Errorf("container: reading packet header: %w", err)
	}
	switch FrameType(hdr[0]) {
	case FrameI, FrameP, FrameB:
	default:
		return Packet{}, fmt.Errorf("container: invalid frame type 0x%02x", hdr[0])
	}
	size := binary.LittleEndian.Uint32(hdr[5:])
	if size > 1<<30 {
		return Packet{}, fmt.Errorf("container: implausible packet size %d", size)
	}
	// Read in bounded chunks rather than trusting the size field with one
	// huge allocation: a corrupt or truncated stream then fails with a
	// read error after at most one chunk, not an out-of-memory.
	payload := make([]byte, 0, min(int(size), readChunk))
	for remaining := int(size); remaining > 0; {
		n := min(remaining, readChunk)
		off := len(payload)
		payload = append(payload, zeroChunk[:n]...)
		if _, err := io.ReadFull(r.r, payload[off:]); err != nil {
			return Packet{}, fmt.Errorf("container: reading payload: %w", err)
		}
		remaining -= n
	}
	return Packet{
		Type:         FrameType(hdr[0]),
		DisplayIndex: int(binary.LittleEndian.Uint32(hdr[1:])),
		Payload:      payload,
	}, nil
}
