package container

import (
	"fmt"
	"io"
)

// StreamWriter is the incremental container writer for live transport:
// one packet at a time, nothing buffered beyond the packet being
// written, byte and packet accounting for stats, and write-through
// flushing when the destination supports it — an http.ResponseWriter's
// Flush pushes each packet onto the wire (chunked transfer), so a client
// can start decoding before the encoder has finished the sequence.
//
// Flush-through triggers only for error-less Flush() implementations
// (the net/http flavor). An *bufio.Writer's Flush() error is left alone
// on purpose: batch file output should keep its batching, and callers
// that want eager flushing there can call Flush themselves.
type StreamWriter struct {
	cw countingWriter
	w  *Writer

	flush    func() error
	flushErr func() error // explicit Flush() for error-returning flushers
}

// NewStreamWriter writes the stream header to w and returns the
// incremental writer. As with NewWriter, hdr.Frames may be zero when the
// length is unknown upfront (readers then consume until EOF).
func NewStreamWriter(w io.Writer, hdr Header) (*StreamWriter, error) {
	sw := &StreamWriter{cw: countingWriter{w: w}}
	switch f := w.(type) {
	case interface{ Flush() }:
		fl := f
		sw.flush = func() error { fl.Flush(); return nil }
	case interface{ Flush() error }:
		sw.flushErr = f.Flush
	}
	cw, err := NewWriter(&sw.cw, hdr)
	if err != nil {
		return nil, err
	}
	sw.w = cw
	return sw, nil
}

// WritePacket appends one coded frame and, when the destination is an
// error-less flusher (http.ResponseWriter), flushes it onto the wire.
func (sw *StreamWriter) WritePacket(p Packet) error {
	if err := sw.w.WritePacket(p); err != nil {
		return err
	}
	if sw.flush != nil {
		return sw.flush()
	}
	return nil
}

// Flush forces any transport-level buffer out, whichever Flush flavor
// the destination implements. It is a no-op for plain writers.
func (sw *StreamWriter) Flush() error {
	switch {
	case sw.flush != nil:
		return sw.flush()
	case sw.flushErr != nil:
		return sw.flushErr()
	}
	return nil
}

// Count returns the number of packets written.
func (sw *StreamWriter) Count() int { return sw.w.Count() }

// BytesWritten returns the total container bytes produced, header
// included.
func (sw *StreamWriter) BytesWritten() int64 { return sw.cw.n }

// StreamReader is the incremental container reader: it hands packets out
// one at a time — never slurping the stream — and uses the header's
// frame count when present to distinguish a clean end from a truncated
// transfer, and to stop without over-reading a stream that has trailing
// data behind it.
type StreamReader struct {
	cr   countingReader
	r    *Reader
	read int
	err  error
}

// NewStreamReader parses the stream header from r.
func NewStreamReader(r io.Reader) (*StreamReader, error) {
	sr := &StreamReader{cr: countingReader{r: r}}
	cr, err := NewReader(&sr.cr)
	if err != nil {
		return nil, err
	}
	sr.r = cr
	return sr, nil
}

// Header returns the parsed stream header.
func (sr *StreamReader) Header() Header { return sr.r.Header() }

// Next returns the next coded frame. io.EOF signals the clean end of the
// stream: after Header().Frames packets when the count is declared
// (without touching any bytes beyond them), or at the underlying EOF
// otherwise. A declared-length stream that ends early fails with
// io.ErrUnexpectedEOF instead of masquerading as complete. Errors are
// sticky.
func (sr *StreamReader) Next() (Packet, error) {
	if sr.err != nil {
		return Packet{}, sr.err
	}
	if n := sr.Header().Frames; n > 0 && sr.read >= n {
		sr.err = io.EOF
		return Packet{}, sr.err
	}
	p, err := sr.r.ReadPacket()
	if err != nil {
		if err == io.EOF && sr.Header().Frames > 0 {
			err = fmt.Errorf("container: stream truncated after %d of %d packets: %w",
				sr.read, sr.Header().Frames, io.ErrUnexpectedEOF)
		}
		sr.err = err
		return Packet{}, err
	}
	sr.read++
	return p, nil
}

// Count returns the number of packets delivered so far.
func (sr *StreamReader) Count() int { return sr.read }

// BytesRead returns the total container bytes consumed, header included.
func (sr *StreamReader) BytesRead() int64 { return sr.cr.n }

// countingWriter / countingReader thread byte totals through the fixed
// Writer/Reader so streaming stats come for free.
type countingWriter struct {
	w io.Writer
	n int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

type countingReader struct {
	r io.Reader
	n int64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n += int64(n)
	return n, err
}
