package container

import (
	"bytes"
	"io"
	"testing"
)

// validStream builds a well-formed HDVB stream for the seed corpus.
func validStream(t testing.TB, hdr Header, pkts []Packet) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, hdr)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkts {
		if err := w.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// FuzzReadStream feeds arbitrary bytes through the header and packet
// readers. Truncated or corrupt input must surface as an error — never a
// panic, and never an allocation proportional to a lying size field.
func FuzzReadStream(f *testing.F) {
	hdr := Header{Codec: CodecH264, Width: 64, Height: 32, FPSNum: 25, FPSDen: 1, Frames: 3}
	full := validStream(f, hdr, []Packet{
		{Type: FrameI, DisplayIndex: 0, Payload: []byte{0x1a, 0x2b, 0x3c}},
		{Type: FrameP, DisplayIndex: 2, Payload: []byte{0xff}},
		{Type: FrameB, DisplayIndex: 1, Payload: nil},
	})
	f.Add(full)
	f.Add(full[:len(full)-2]) // truncated payload
	f.Add(full[:headerSize])  // header only
	f.Add(full[:3])           // truncated magic
	f.Add([]byte("HDVB"))
	f.Add(validStream(f, Header{Codec: CodecMPEG2, Width: 720, Height: 576, FPSNum: 25, FPSDen: 1}, nil))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		got := r.Header()
		if got.Width < 0 || got.Height < 0 || got.Frames < 0 {
			t.Fatalf("negative header fields: %+v", got)
		}
		for i := 0; i < 1<<16; i++ {
			p, err := r.ReadPacket()
			if err == io.EOF {
				return
			}
			if err != nil {
				return // corrupt input must error, not panic
			}
			if int64(len(p.Payload)) > int64(len(data)) {
				t.Fatalf("packet %d: %d payload bytes from %d input bytes", i, len(p.Payload), len(data))
			}
		}
	})
}

// FuzzRoundTrip writes a packet built from fuzz data and reads it back,
// checking the container is lossless for everything it accepts.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint8('I'), 0, []byte{1, 2, 3})
	f.Add(uint8('P'), 41, []byte{})
	f.Add(uint8('B'), 7, []byte{0})
	f.Fuzz(func(t *testing.T, ft uint8, display int, payload []byte) {
		switch FrameType(ft) {
		case FrameI, FrameP, FrameB:
		default:
			return
		}
		if display < 0 || display > 1<<31-1 {
			return
		}
		hdr := Header{Codec: CodecMPEG4, Width: 16, Height: 16, FPSNum: 25, FPSDen: 1}
		stream := validStream(t, hdr, []Packet{{Type: FrameType(ft), DisplayIndex: display, Payload: payload}})
		r, err := NewReader(bytes.NewReader(stream))
		if err != nil {
			t.Fatal(err)
		}
		p, err := r.ReadPacket()
		if err != nil {
			t.Fatal(err)
		}
		if p.Type != FrameType(ft) || p.DisplayIndex != display || !bytes.Equal(p.Payload, payload) {
			t.Fatalf("round trip mismatch: %+v", p)
		}
	})
}
