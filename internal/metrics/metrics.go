// Package metrics implements the measurements HD-VideoBench reports:
// PSNR (Table V quality), bitrate in kbit/s (Table V compression), and
// frames-per-second aggregation (Figure 1).
package metrics

import (
	"fmt"
	"math"

	"hdvideobench/internal/frame"
)

// MSEPlanes returns the mean squared error of the luma and chroma planes
// between a reference and a distorted frame.
func MSEPlanes(ref, dist *frame.Frame) (y, cb, cr float64) {
	if ref.Width != dist.Width || ref.Height != dist.Height {
		panic(fmt.Sprintf("metrics: size mismatch %dx%d vs %dx%d",
			ref.Width, ref.Height, dist.Width, dist.Height))
	}
	y = msePlane(ref.Y[ref.YOrigin:], ref.YStride, dist.Y[dist.YOrigin:], dist.YStride, ref.Width, ref.Height)
	cb = msePlane(ref.Cb[ref.COrigin:], ref.CStride, dist.Cb[dist.COrigin:], dist.CStride, ref.ChromaWidth(), ref.ChromaHeight())
	cr = msePlane(ref.Cr[ref.COrigin:], ref.CStride, dist.Cr[dist.COrigin:], dist.CStride, ref.ChromaWidth(), ref.ChromaHeight())
	return
}

func msePlane(a []byte, aStride int, b []byte, bStride, w, h int) float64 {
	var sum uint64
	for r := 0; r < h; r++ {
		ar := a[r*aStride : r*aStride+w]
		br := b[r*bStride : r*bStride+w]
		for i := 0; i < w; i++ {
			d := int(ar[i]) - int(br[i])
			sum += uint64(d * d)
		}
	}
	return float64(sum) / float64(w*h)
}

// PSNR converts an MSE to decibels (infinite for identical content is
// clamped to 100 dB, the convention of video quality tools).
func PSNR(mse float64) float64 {
	if mse <= 0 {
		return 100
	}
	return 10 * math.Log10(255*255/mse)
}

// PSNRFrames returns the luma PSNR between two frames — the metric of the
// paper's Table V.
func PSNRFrames(ref, dist *frame.Frame) float64 {
	y, _, _ := MSEPlanes(ref, dist)
	return PSNR(y)
}

// Accumulator aggregates quality and rate over a sequence.
type Accumulator struct {
	frames  int
	mseYSum float64
	bits    int64
}

// AddFrame accumulates one frame's distortion and coded size.
func (a *Accumulator) AddFrame(ref, dist *frame.Frame, codedBits int) {
	y, _, _ := MSEPlanes(ref, dist)
	a.mseYSum += y
	a.bits += int64(codedBits)
	a.frames++
}

// Frames returns the number of accumulated frames.
func (a *Accumulator) Frames() int { return a.frames }

// PSNR returns the average-MSE luma PSNR over all accumulated frames.
func (a *Accumulator) PSNR() float64 {
	if a.frames == 0 {
		return 0
	}
	return PSNR(a.mseYSum / float64(a.frames))
}

// BitrateKbps returns the stream bitrate in kbit/s at the given frame rate,
// the unit of Table V.
func (a *Accumulator) BitrateKbps(fps float64) float64 {
	if a.frames == 0 {
		return 0
	}
	return float64(a.bits) * fps / float64(a.frames) / 1000
}

// TotalBits returns the accumulated coded size in bits.
func (a *Accumulator) TotalBits() int64 { return a.bits }
