package metrics

import (
	"math"
	"testing"

	"hdvideobench/internal/frame"
)

func TestPSNRIdentical(t *testing.T) {
	a := frame.New(64, 64)
	a.Fill(100, 110, 120)
	b := a.Clone()
	if got := PSNRFrames(a, b); got != 100 {
		t.Fatalf("identical frames PSNR = %f", got)
	}
}

func TestPSNRKnownValue(t *testing.T) {
	// Uniform error of 5 → MSE 25 → PSNR = 10*log10(65025/25) ≈ 34.15 dB.
	a := frame.New(64, 64)
	a.Fill(100, 128, 128)
	b := frame.New(64, 64)
	b.Fill(105, 128, 128)
	want := 10 * math.Log10(255*255/25.0)
	if got := PSNRFrames(a, b); math.Abs(got-want) > 1e-9 {
		t.Fatalf("PSNR = %f, want %f", got, want)
	}
}

func TestMSEPlanesSeparate(t *testing.T) {
	a := frame.New(32, 32)
	a.Fill(100, 100, 100)
	b := frame.New(32, 32)
	b.Fill(100, 110, 100) // only Cb differs
	y, cb, cr := MSEPlanes(a, b)
	if y != 0 || cr != 0 {
		t.Fatalf("y=%f cr=%f, want 0", y, cr)
	}
	if cb != 100 {
		t.Fatalf("cb=%f, want 100", cb)
	}
}

func TestMSEMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MSEPlanes(frame.New(16, 16), frame.New(32, 32))
}

func TestAccumulator(t *testing.T) {
	var acc Accumulator
	ref := frame.New(32, 32)
	ref.Fill(100, 128, 128)
	dist := frame.New(32, 32)
	dist.Fill(105, 128, 128)
	acc.AddFrame(ref, dist, 8000)
	acc.AddFrame(ref, dist, 12000)
	if acc.Frames() != 2 {
		t.Fatalf("frames = %d", acc.Frames())
	}
	// 20000 bits over 2 frames at 25 fps = 250000 bit/s = 250 kbps.
	if got := acc.BitrateKbps(25); math.Abs(got-250) > 1e-9 {
		t.Fatalf("bitrate = %f", got)
	}
	want := 10 * math.Log10(255*255/25.0)
	if got := acc.PSNR(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("PSNR = %f want %f", got, want)
	}
	if acc.TotalBits() != 20000 {
		t.Fatalf("bits = %d", acc.TotalBits())
	}
}

func TestEmptyAccumulator(t *testing.T) {
	var acc Accumulator
	if acc.PSNR() != 0 || acc.BitrateKbps(25) != 0 {
		t.Fatal("empty accumulator must report zeros")
	}
}
