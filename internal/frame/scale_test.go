package frame

import (
	"testing"
)

// ramp fills f with a deterministic gradient-plus-texture pattern.
func ramp(f *Frame) {
	for r := 0; r < f.Height; r++ {
		for c := 0; c < f.Width; c++ {
			f.Y[f.YOrigin+r*f.YStride+c] = byte((r*3 + c*5) % 256)
		}
	}
	for r := 0; r < f.ChromaHeight(); r++ {
		for c := 0; c < f.ChromaWidth(); c++ {
			f.Cb[f.COrigin+r*f.CStride+c] = byte((r*7 + c) % 256)
			f.Cr[f.COrigin+r*f.CStride+c] = byte((r + c*11) % 256)
		}
	}
}

func TestDownscaleConstantStaysConstant(t *testing.T) {
	src := New(64, 48)
	src.Fill(120, 90, 200)
	for _, d := range []struct{ w, h int }{{32, 24}, {48, 32}, {16, 16}} {
		dst := DownscaleNew(src, d.w, d.h)
		for r := 0; r < d.h; r++ {
			for c := 0; c < d.w; c++ {
				if got := dst.Y[dst.YOrigin+r*dst.YStride+c]; got != 120 {
					t.Fatalf("%dx%d luma (%d,%d) = %d, want 120", d.w, d.h, r, c, got)
				}
			}
		}
		if dst.Cb[dst.COrigin] != 90 || dst.Cr[dst.COrigin] != 200 {
			t.Fatalf("%dx%d chroma = %d/%d, want 90/200", d.w, d.h, dst.Cb[dst.COrigin], dst.Cr[dst.COrigin])
		}
	}
}

func TestDownscaleBoxAverages(t *testing.T) {
	// 2:1 both axes: each output pixel must be the rounded mean of its
	// 2×2 source block.
	src := New(8, 8)
	ramp(src)
	dst := DownscaleNew(src, 4, 4)
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			sum := 0
			for y := 0; y < 2; y++ {
				for x := 0; x < 2; x++ {
					sum += int(src.Y[src.YOrigin+(2*r+y)*src.YStride+2*c+x])
				}
			}
			want := byte((sum + 2) / 4)
			if got := dst.Y[dst.YOrigin+r*dst.YStride+c]; got != want {
				t.Fatalf("luma (%d,%d) = %d, want %d", r, c, got, want)
			}
		}
	}
}

func TestDownscaleBilinearGradientMonotone(t *testing.T) {
	// Fractional ratio (1280→720-ish shrunk down): a horizontal luma ramp
	// must stay monotone non-decreasing after bilinear resampling — any
	// phase error or wraparound shows up as an inversion.
	src := New(40, 30)
	for r := 0; r < src.Height; r++ {
		for c := 0; c < src.Width; c++ {
			src.Y[src.YOrigin+r*src.YStride+c] = byte(c * 6)
		}
	}
	dst := DownscaleNew(src, 24, 18)
	for r := 0; r < dst.Height; r++ {
		prev := -1
		for c := 0; c < dst.Width; c++ {
			v := int(dst.Y[dst.YOrigin+r*dst.YStride+c])
			if v < prev {
				t.Fatalf("row %d not monotone at col %d: %d after %d", r, c, v, prev)
			}
			prev = v
		}
	}
}

func TestDownscaleSameSizeCopies(t *testing.T) {
	src := New(32, 16)
	ramp(src)
	src.PTS = 7
	dst := New(32, 16)
	Downscale(dst, src)
	if dst.PTS != 7 {
		t.Fatalf("PTS not carried: %d", dst.PTS)
	}
	for r := 0; r < 16; r++ {
		for c := 0; c < 32; c++ {
			if dst.Y[dst.YOrigin+r*dst.YStride+c] != src.Y[src.YOrigin+r*src.YStride+c] {
				t.Fatalf("pixel (%d,%d) differs", r, c)
			}
		}
	}
}

func TestDownscaleUpscalePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("upscale did not panic")
		}
	}()
	Downscale(New(64, 64), New(32, 32))
}

// BenchmarkDownscale records the box-vs-bilinear cost gap (the measured
// rationale for preferring integer-ratio ladder rungs): at the same
// output size the box path is the one to beat.
func BenchmarkDownscale(b *testing.B) {
	src := New(1280, 720)
	ramp(src)
	b.Run("box2x", func(b *testing.B) {
		dst := New(640, 360) // exact 2:1 → box
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Downscale(dst, src)
		}
	})
	b.Run("bilinear", func(b *testing.B) {
		dst := New(720, 576) // fractional → bilinear
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Downscale(dst, src)
		}
	})
}
