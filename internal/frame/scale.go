package frame

import "fmt"

// Downscale renders the visible area of src into dst, which must be the
// same size or smaller in both dimensions. Two filters, chosen per plane
// pair automatically:
//
//   - integer ratios (src dimension an exact multiple of dst's, both
//     axes) use a box average — every source pixel contributes exactly
//     once, which is the correct anti-aliasing filter for 2:1/3:1-style
//     ladder rungs and is the fastest path (pure integer adds);
//   - fractional ratios use center-aligned bilinear sampling in 16.16
//     fixed point — slightly softer, but free of the phase drift a
//     nearest-neighbour pick would introduce.
//
// Both paths are pure integer arithmetic, so output is bit-deterministic
// across platforms. BenchmarkDownscale in scale_test.go records the
// measured rationale: box is ~2× cheaper than bilinear at 2:1, which is
// why the ladder prefers rung sizes that divide the mezzanine.
func Downscale(dst, src *Frame) {
	if dst.Width > src.Width || dst.Height > src.Height {
		panic(fmt.Sprintf("frame: Downscale target %dx%d exceeds source %dx%d",
			dst.Width, dst.Height, src.Width, src.Height))
	}
	if dst.Width == src.Width && dst.Height == src.Height {
		dst.CopyFrom(src)
		return
	}
	scalePlane(dst.Y[dst.YOrigin:], dst.YStride, dst.Width, dst.Height,
		src.Y[src.YOrigin:], src.YStride, src.Width, src.Height)
	scalePlane(dst.Cb[dst.COrigin:], dst.CStride, dst.ChromaWidth(), dst.ChromaHeight(),
		src.Cb[src.COrigin:], src.CStride, src.ChromaWidth(), src.ChromaHeight())
	scalePlane(dst.Cr[dst.COrigin:], dst.CStride, dst.ChromaWidth(), dst.ChromaHeight(),
		src.Cr[src.COrigin:], src.CStride, src.ChromaWidth(), src.ChromaHeight())
	dst.PTS = src.PTS
}

// DownscaleNew allocates an unpadded w×h frame and downscales src into it.
func DownscaleNew(src *Frame, w, h int) *Frame {
	dst := New(w, h)
	Downscale(dst, src)
	return dst
}

func scalePlane(dst []byte, dstStride, dw, dh int, src []byte, srcStride, sw, sh int) {
	if sw%dw == 0 && sh%dh == 0 {
		boxPlane(dst, dstStride, dw, dh, src, srcStride, sw/dw, sh/dh)
		return
	}
	bilinPlane(dst, dstStride, dw, dh, src, srcStride, sw, sh)
}

// boxPlane averages disjoint fx×fy source blocks (rounding to nearest).
func boxPlane(dst []byte, dstStride, dw, dh int, src []byte, srcStride, fx, fy int) {
	if fx == 2 && fy == 2 {
		// The 2:1 ratio dominates ladder use (720p→360p, 1088p→544p);
		// unrolling the 2×2 sum removes the inner-loop bookkeeping that
		// otherwise makes the generic path slower than bilinear.
		for r := 0; r < dh; r++ {
			drow := r * dstStride
			row0 := 2 * r * srcStride
			row1 := row0 + srcStride
			for c := 0; c < dw; c++ {
				so := 2 * c
				sum := int(src[row0+so]) + int(src[row0+so+1]) +
					int(src[row1+so]) + int(src[row1+so+1])
				dst[drow+c] = byte((sum + 2) / 4)
			}
		}
		return
	}
	area := fx * fy
	half := area / 2
	for r := 0; r < dh; r++ {
		drow := r * dstStride
		srow := r * fy * srcStride
		for c := 0; c < dw; c++ {
			sum := 0
			so := srow + c*fx
			for y := 0; y < fy; y++ {
				row := src[so+y*srcStride : so+y*srcStride+fx]
				for _, v := range row {
					sum += int(v)
				}
			}
			dst[drow+c] = byte((sum + half) / area)
		}
	}
}

// bilinPlane samples src at the center of each dst pixel in 16.16 fixed
// point, clamping the sample window to the plane (no padding is assumed).
func bilinPlane(dst []byte, dstStride, dw, dh int, src []byte, srcStride, sw, sh int) {
	// Center-aligned mapping: srcX = (dstX + 0.5)*sw/dw - 0.5, in 16.16.
	xStep := (int64(sw) << 16) / int64(dw)
	yStep := (int64(sh) << 16) / int64(dh)
	xOff := xStep/2 - (1 << 15)
	yOff := yStep/2 - (1 << 15)
	for r := 0; r < dh; r++ {
		sy := yOff + int64(r)*yStep
		if sy < 0 {
			sy = 0
		}
		yi := int(sy >> 16)
		fy := int(sy & 0xFFFF)
		if yi >= sh-1 {
			yi, fy = sh-2, 1<<16
			if sh == 1 {
				yi, fy = 0, 0
			}
		}
		row0 := yi * srcStride
		row1 := row0
		if sh > 1 {
			row1 = row0 + srcStride
		}
		drow := r * dstStride
		for c := 0; c < dw; c++ {
			sx := xOff + int64(c)*xStep
			if sx < 0 {
				sx = 0
			}
			xi := int(sx >> 16)
			fx := int(sx & 0xFFFF)
			if xi >= sw-1 {
				xi, fx = sw-2, 1<<16
				if sw == 1 {
					xi, fx = 0, 0
				}
			}
			x1 := xi
			if sw > 1 {
				x1 = xi + 1
			}
			n00 := int64(src[row0+xi])
			n10 := int64(src[row0+x1])
			n01 := int64(src[row1+xi])
			n11 := int64(src[row1+x1])
			top := n00<<16 + (n10-n00)*int64(fx)
			bot := n01<<16 + (n11-n01)*int64(fx)
			v := (top<<16 + (bot-top)*int64(fy) + 1<<31) >> 32
			dst[drow+c] = byte(v)
		}
	}
}
