package frame

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestNewDimensions(t *testing.T) {
	f := New(720, 576)
	if f.Width != 720 || f.Height != 576 {
		t.Fatalf("got %dx%d", f.Width, f.Height)
	}
	if f.ChromaWidth() != 360 || f.ChromaHeight() != 288 {
		t.Fatalf("chroma %dx%d", f.ChromaWidth(), f.ChromaHeight())
	}
	if len(f.Y) != 720*576 {
		t.Fatalf("luma plane size: %d", len(f.Y))
	}
}

func TestNewPanicsOnOddDimensions(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for odd width")
		}
	}()
	New(721, 576)
}

func TestNewPanicsOnOddPad(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for odd pad")
		}
	}()
	NewPadded(16, 16, 3)
}

func TestPaddedAddressing(t *testing.T) {
	f := NewPadded(16, 16, 8)
	// Writing to the full padded region must be legal.
	for r := -8; r < 16+8; r++ {
		for c := -8; c < 16+8; c++ {
			f.Y[f.YOrigin+r*f.YStride+c] = byte(r + c)
		}
	}
	for r := -4; r < 8+4; r++ {
		for c := -4; c < 8+4; c++ {
			f.Cb[f.COrigin+r*f.CStride+c] = 1
			f.Cr[f.COrigin+r*f.CStride+c] = 2
		}
	}
}

func TestLumaAccessors(t *testing.T) {
	f := NewPadded(16, 16, 4)
	f.SetLuma(3, 5, 99)
	if f.LumaAt(3, 5) != 99 {
		t.Fatal("LumaAt/SetLuma mismatch")
	}
}

func TestExtendBorders(t *testing.T) {
	f := NewPadded(8, 8, 4)
	for r := 0; r < 8; r++ {
		for c := 0; c < 8; c++ {
			f.SetLuma(r, c, byte(10*r+c))
		}
	}
	f.ExtendBorders()
	at := func(r, c int) byte { return f.Y[f.YOrigin+r*f.YStride+c] }
	if got := at(0, -1); got != at(0, 0) {
		t.Errorf("left border = %d, want %d", got, at(0, 0))
	}
	if got := at(-1, 0); got != at(0, 0) {
		t.Errorf("top border = %d, want %d", got, at(0, 0))
	}
	if got := at(-1, -1); got != at(0, 0) {
		t.Errorf("corner = %d, want %d", got, at(0, 0))
	}
	if got := at(8, 7); got != at(7, 7) {
		t.Errorf("bottom border = %d, want %d", got, at(7, 7))
	}
	if got := at(11, 11); got != at(7, 7) {
		t.Errorf("bottom-right far corner = %d, want %d", got, at(7, 7))
	}
}

func TestCloneIsDeep(t *testing.T) {
	f := NewPadded(16, 16, 2)
	f.Fill(100, 110, 120)
	g := f.Clone()
	g.Y[g.YOrigin] = 7
	if f.Y[f.YOrigin] == 7 {
		t.Fatal("clone shares storage with original")
	}
	if g.Cb[g.COrigin] != 110 || g.Cr[g.COrigin] != 120 {
		t.Fatal("clone did not copy chroma")
	}
}

func TestCopyFromDifferentPadding(t *testing.T) {
	src := NewPadded(16, 16, 8)
	src.Fill(50, 60, 70)
	src.PTS = 42
	dst := New(16, 16)
	dst.CopyFrom(src)
	if dst.LumaAt(5, 5) != 50 || dst.Cb[dst.COrigin] != 60 || dst.Cr[dst.COrigin] != 70 {
		t.Fatal("copy content mismatch")
	}
	if dst.PTS != 42 {
		t.Fatalf("PTS not copied: %d", dst.PTS)
	}
}

func TestRawRoundTrip(t *testing.T) {
	f := NewPadded(32, 16, 4)
	n := 0
	for r := 0; r < 16; r++ {
		for c := 0; c < 32; c++ {
			f.SetLuma(r, c, byte(n))
			n++
		}
	}
	for r := 0; r < 8; r++ {
		for c := 0; c < 16; c++ {
			f.Cb[f.COrigin+r*f.CStride+c] = byte(200 + r)
			f.Cr[f.COrigin+r*f.CStride+c] = byte(100 + c)
		}
	}
	var buf bytes.Buffer
	if err := f.WriteRaw(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != RawSize(32, 16) {
		t.Fatalf("raw size = %d, want %d", buf.Len(), RawSize(32, 16))
	}
	g := New(32, 16)
	if err := g.ReadRaw(&buf); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 16; r++ {
		for c := 0; c < 32; c++ {
			if g.LumaAt(r, c) != f.LumaAt(r, c) {
				t.Fatalf("luma mismatch at %d,%d", r, c)
			}
		}
	}
	if g.Cb[g.COrigin+3*g.CStride+4] != 203 || g.Cr[g.COrigin+3*g.CStride+4] != 104 {
		t.Fatal("chroma mismatch after round trip")
	}
}

func TestRawSize(t *testing.T) {
	if got := RawSize(720, 576); got != 720*576*3/2 {
		t.Fatalf("RawSize = %d", got)
	}
}

func TestExtendBordersProperty(t *testing.T) {
	// Property: after ExtendBorders, every padding pixel equals the nearest
	// visible pixel (clamped coordinates).
	check := func(seed uint8) bool {
		f := NewPadded(16, 8, 6)
		v := seed
		for r := 0; r < 8; r++ {
			for c := 0; c < 16; c++ {
				v = v*31 + 7
				f.SetLuma(r, c, v)
			}
		}
		f.ExtendBorders()
		for r := -6; r < 8+6; r++ {
			for c := -6; c < 16+6; c++ {
				cr, cc := clamp(r, 0, 7), clamp(c, 0, 15)
				if f.Y[f.YOrigin+r*f.YStride+c] != f.LumaAt(cr, cc) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
