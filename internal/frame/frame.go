// Package frame provides the planar YUV 4:2:0 picture type shared by every
// codec in HD-VideoBench, together with padding, copying and raw-file I/O.
//
// All codecs operate on 8-bit 4:2:0 content, the format of the paper's input
// sequences (Sony HDW-F900 captures, progressive, 4:2:0 chroma subsampling).
package frame

import (
	"fmt"
	"io"
)

// Frame is a planar YUV 4:2:0 picture. The luma plane is Width×Height and
// each chroma plane is (Width/2)×(Height/2).
//
// Planes are stored as full padded buffers: the visible pixel (row r, col c)
// of luma lives at Y[YOrigin + r*YStride + c], and the Pad-pixel border
// around the visible area is legal to read once ExtendBorders has run.
// Motion compensation relies on that border.
type Frame struct {
	Width, Height int

	// Y, Cb and Cr are the full padded planes.
	Y, Cb, Cr []byte

	YStride, CStride int

	// YOrigin and COrigin are the indices of the visible top-left pixel
	// within the luma and chroma planes respectively.
	YOrigin, COrigin int

	// Pad is the number of padding pixels around the luma plane (Pad/2
	// around chroma).
	Pad int

	// PTS is the display index of the frame within its sequence.
	PTS int

	// HpelBilin and Hpel6 cache the bilinear (MPEG-2-style) and 6-tap
	// (H.264/MPEG-4-style) half-sample luma planes of a reference frame.
	// Derived data, nil until built: encoders fill them via
	// interp.BuildHalfPelBilin / interp.BuildHalfPel6 once a
	// reconstruction becomes a reference, so motion search scores
	// sub-pel candidates straight from plane memory instead of
	// re-interpolating per candidate. Clone and CopyFrom do not carry
	// them (they are recomputed where needed).
	HpelBilin, Hpel6 *HalfPlanes
}

// HalfPlanes holds half-sample interpolated copies of a padded luma plane,
// geometry-identical to it (same stride, origin and padding): H[p] is the
// half sample between p and p+1, V[p] between p and p+stride, and HV[p]
// the centre sample between all four. Only the region reachable by a
// clamped motion vector (everything but the outermost pad ring, see
// motion.Estimator.Window) is guaranteed to be filled.
type HalfPlanes struct {
	H, V, HV []byte
}

// ChromaWidth returns the width of the Cb/Cr planes.
func (f *Frame) ChromaWidth() int { return f.Width / 2 }

// ChromaHeight returns the height of the Cb/Cr planes.
func (f *Frame) ChromaHeight() int { return f.Height / 2 }

// LumaAt returns the luma sample at row r, column c of the visible area.
func (f *Frame) LumaAt(r, c int) byte { return f.Y[f.YOrigin+r*f.YStride+c] }

// SetLuma sets the luma sample at row r, column c of the visible area.
func (f *Frame) SetLuma(r, c int, v byte) { f.Y[f.YOrigin+r*f.YStride+c] = v }

// New allocates a frame with no padding. Width and Height must be positive
// and even (4:2:0 requires even dimensions).
func New(width, height int) *Frame {
	return NewPadded(width, height, 0)
}

// NewPadded allocates a frame with pad pixels of border around the luma
// plane and pad/2 around each chroma plane. pad must be even.
func NewPadded(width, height, pad int) *Frame {
	if width <= 0 || height <= 0 {
		panic(fmt.Sprintf("frame: invalid dimensions %dx%d", width, height))
	}
	if width%2 != 0 || height%2 != 0 {
		panic(fmt.Sprintf("frame: dimensions must be even, got %dx%d", width, height))
	}
	if pad%2 != 0 || pad < 0 {
		panic(fmt.Sprintf("frame: pad must be even and non-negative, got %d", pad))
	}
	yStride := width + 2*pad
	cPad := pad / 2
	cStride := width/2 + 2*cPad

	f := &Frame{
		Width:   width,
		Height:  height,
		YStride: yStride,
		CStride: cStride,
		YOrigin: pad*yStride + pad,
		COrigin: cPad*cStride + cPad,
		Pad:     pad,
		Y:       make([]byte, yStride*(height+2*pad)),
		Cb:      make([]byte, cStride*(height/2+2*cPad)),
		Cr:      make([]byte, cStride*(height/2+2*cPad)),
	}
	return f
}

// Clone returns a deep copy of f, including padding contents.
func (f *Frame) Clone() *Frame {
	g := NewPadded(f.Width, f.Height, f.Pad)
	copy(g.Y, f.Y)
	copy(g.Cb, f.Cb)
	copy(g.Cr, f.Cr)
	g.PTS = f.PTS
	return g
}

// CopyFrom copies the visible area of src into f. Dimensions must match;
// padding layouts may differ.
func (f *Frame) CopyFrom(src *Frame) {
	if f.Width != src.Width || f.Height != src.Height {
		panic(fmt.Sprintf("frame: copy size mismatch %dx%d vs %dx%d",
			f.Width, f.Height, src.Width, src.Height))
	}
	copyPlane(f.Y[f.YOrigin:], f.YStride, src.Y[src.YOrigin:], src.YStride, f.Width, f.Height)
	copyPlane(f.Cb[f.COrigin:], f.CStride, src.Cb[src.COrigin:], src.CStride, f.ChromaWidth(), f.ChromaHeight())
	copyPlane(f.Cr[f.COrigin:], f.CStride, src.Cr[src.COrigin:], src.CStride, f.ChromaWidth(), f.ChromaHeight())
	f.PTS = src.PTS
}

func copyPlane(dst []byte, dstStride int, src []byte, srcStride, w, h int) {
	for r := 0; r < h; r++ {
		copy(dst[r*dstStride:r*dstStride+w], src[r*srcStride:r*srcStride+w])
	}
}

// ExtendBorders replicates the edge pixels of the visible area into the
// padding region of every plane. Motion compensation reads up to Pad pixels
// outside the picture; reference frames must have extended borders.
func (f *Frame) ExtendBorders() {
	if f.Pad == 0 {
		return
	}
	extendPlane(f.Y, f.YStride, f.YOrigin, f.Width, f.Height, f.Pad)
	cPad := f.Pad / 2
	extendPlane(f.Cb, f.CStride, f.COrigin, f.ChromaWidth(), f.ChromaHeight(), cPad)
	extendPlane(f.Cr, f.CStride, f.COrigin, f.ChromaWidth(), f.ChromaHeight(), cPad)
}

func extendPlane(p []byte, stride, origin, w, h, pad int) {
	// Left and right borders of every visible row.
	for r := 0; r < h; r++ {
		row := origin + r*stride
		left := p[row]
		right := p[row+w-1]
		for c := 1; c <= pad; c++ {
			p[row-c] = left
			p[row+w-1+c] = right
		}
	}
	// Top and bottom borders, including corners, by replicating whole rows.
	top := origin - pad
	for r := 1; r <= pad; r++ {
		copy(p[top-r*stride:top-r*stride+w+2*pad], p[top:top+w+2*pad])
	}
	bot := origin + (h-1)*stride - pad
	for r := 1; r <= pad; r++ {
		copy(p[bot+r*stride:bot+r*stride+w+2*pad], p[bot:bot+w+2*pad])
	}
}

// Fill sets the visible area of all planes to the given constant values.
func (f *Frame) Fill(y, cb, cr byte) {
	fillPlane(f.Y[f.YOrigin:], f.YStride, f.Width, f.Height, y)
	fillPlane(f.Cb[f.COrigin:], f.CStride, f.ChromaWidth(), f.ChromaHeight(), cb)
	fillPlane(f.Cr[f.COrigin:], f.CStride, f.ChromaWidth(), f.ChromaHeight(), cr)
}

func fillPlane(p []byte, stride, w, h int, v byte) {
	for r := 0; r < h; r++ {
		row := p[r*stride : r*stride+w]
		for i := range row {
			row[i] = v
		}
	}
}

// WriteRaw writes the visible area as planar I420 (Y then Cb then Cr) to w.
// This is the raw-video format MEncoder's -demuxer rawvideo consumed in the
// paper's Table IV commands.
func (f *Frame) WriteRaw(w io.Writer) error {
	if err := writePlane(w, f.Y[f.YOrigin:], f.YStride, f.Width, f.Height); err != nil {
		return err
	}
	if err := writePlane(w, f.Cb[f.COrigin:], f.CStride, f.ChromaWidth(), f.ChromaHeight()); err != nil {
		return err
	}
	return writePlane(w, f.Cr[f.COrigin:], f.CStride, f.ChromaWidth(), f.ChromaHeight())
}

func writePlane(w io.Writer, p []byte, stride, width, height int) error {
	for r := 0; r < height; r++ {
		if _, err := w.Write(p[r*stride : r*stride+width]); err != nil {
			return err
		}
	}
	return nil
}

// ReadRaw fills the visible area from planar I420 data read from r.
func (f *Frame) ReadRaw(r io.Reader) error {
	if err := readPlane(r, f.Y[f.YOrigin:], f.YStride, f.Width, f.Height); err != nil {
		return err
	}
	if err := readPlane(r, f.Cb[f.COrigin:], f.CStride, f.ChromaWidth(), f.ChromaHeight()); err != nil {
		return err
	}
	return readPlane(r, f.Cr[f.COrigin:], f.CStride, f.ChromaWidth(), f.ChromaHeight())
}

func readPlane(r io.Reader, p []byte, stride, width, height int) error {
	for row := 0; row < height; row++ {
		if _, err := io.ReadFull(r, p[row*stride:row*stride+width]); err != nil {
			return err
		}
	}
	return nil
}

// RawSize returns the number of bytes of one I420 frame at the given size.
func RawSize(width, height int) int {
	return width*height + 2*(width/2)*(height/2)
}

// RawReader iterates the frames of a raw planar I420 stream one at a
// time, so arbitrarily long files flow through at single-frame memory —
// the input side of the streaming paths in cmd/vcodec and cmd/psnr.
type RawReader struct {
	r             io.Reader
	width, height int
	count         int
}

// NewRawReader returns a frame-by-frame reader over raw I420 data of the
// given dimensions.
func NewRawReader(r io.Reader, width, height int) *RawReader {
	return &RawReader{r: r, width: width, height: height}
}

// Next reads and returns the next frame, allocating it (use ReadInto to
// reuse a buffer when the caller does not keep frames). io.EOF signals a
// clean end on a frame boundary; a stream that ends mid-frame fails with
// io.ErrUnexpectedEOF.
func (rr *RawReader) Next() (*Frame, error) {
	f := New(rr.width, rr.height)
	if err := rr.ReadInto(f); err != nil {
		return nil, err
	}
	return f, nil
}

// ReadInto fills f (whose dimensions must match the reader's) from the
// stream, stamping its PTS with the frame's position.
func (rr *RawReader) ReadInto(f *Frame) error {
	if f.Width != rr.width || f.Height != rr.height {
		return fmt.Errorf("frame: reader is %dx%d, frame is %dx%d",
			rr.width, rr.height, f.Width, f.Height)
	}
	if err := f.ReadRaw(rr.r); err != nil {
		return err
	}
	f.PTS = rr.count
	rr.count++
	return nil
}

// Count returns the number of frames read so far.
func (rr *RawReader) Count() int { return rr.count }
