package pipeline

import (
	"sync"
	"sync/atomic"
	"time"

	"hdvideobench/internal/obs"
)

// Wavefront schedules one slice's macroblock grid in 2D dependency order
// (codec.WavefrontRunner): macroblock (x, y) runs once (x-1, y) and
// (x+1, y-1) are done. It is the third level of the pipeline's
// parallelism — GOP chunks spread across the worker pool, slices across
// the gate, and the rows *inside* one slice across the front — and the
// only level that parallelizes a frame without touching the bitstream:
// slices pay a prediction reset at every boundary, the wavefront computes
// exactly the serial values in a compatible order.
//
// Scheduling is row-ownership based: each participating goroutine claims
// the lowest unclaimed row and walks it left-to-right, publishing its
// progress after every macroblock and waiting (spin, then park on a
// shared Cond) until the row above is two macroblocks ahead. Rows are
// claimed in increasing order, so the goroutine owning the lowest
// incomplete row never waits — the front cannot deadlock — and cells of
// one row always run on one goroutine, so row-local codec state needs no
// synchronization.
//
// A Wavefront built from a SliceGate shares the gate's token bank:
// helper goroutines for extra rows are funded by the same tokens that
// fund concurrent slices, so chunk workers + slice goroutines + row
// helpers never exceed the requested worker budget. Tokens are taken
// non-blocking — with none available the caller simply walks the rows
// serially (raster order satisfies the dependency rule trivially).
type Wavefront struct {
	tokens chan struct{}
	col    *obs.Collector
}

// NewWavefront returns a standalone Wavefront with a budget of workers
// goroutines (the caller counts as one, so workers-1 helper tokens are
// banked). Use SliceGate.Wavefront to share a gate's budget instead.
func NewWavefront(workers int) *Wavefront {
	extra := workers - 1
	if extra < 0 {
		extra = 0
	}
	w := &Wavefront{tokens: make(chan struct{}, extra)}
	for i := 0; i < extra; i++ {
		w.tokens <- struct{}{}
	}
	return w
}

// Observe points the wavefront's measurements at a collector (nil
// disables them) and returns the receiver for chaining.
func (w *Wavefront) Observe(col *obs.Collector) *Wavefront {
	w.col = col
	return w
}

// Wavefront returns a runner sharing the gate's token bank (and its
// collector), so slice-level and row-level goroutines draw from one
// budget.
func (g *SliceGate) Wavefront() *Wavefront {
	return &Wavefront{tokens: g.tokens, col: g.col}
}

// wfState is the shared state of one running front.
type wfState struct {
	cols     int
	rows     int
	nextRow  atomic.Int32   // next unclaimed row
	progress []atomic.Int32 // macroblocks completed per row
	aborted  atomic.Bool

	mu      sync.Mutex
	cond    sync.Cond
	waiters atomic.Int32
}

// wfSpin is how many progress polls a dependency wait burns before
// parking on the Cond. Macroblocks take microseconds, so a short spin
// almost always observes the row above advancing without a syscall.
const wfSpin = 256

// Run implements codec.WavefrontRunner. See the type comment for the
// schedule; Run returns only after every spawned helper has exited, so an
// abort (mb returning false) cannot leak goroutines.
func (w *Wavefront) Run(rows, cols int, mb func(x, y int) bool) bool {
	if rows <= 0 || cols <= 0 {
		return true
	}
	if rows == 1 {
		for x := 0; x < cols; x++ {
			if !mb(x, 0) {
				return false
			}
		}
		return true
	}
	st := &wfState{cols: cols, rows: rows, progress: make([]atomic.Int32, rows)}
	st.cond.L = &st.mu

	// Fund helpers with whatever tokens are free right now; the caller is
	// always a participant, so zero tokens degrades to serial raster order.
	var wg sync.WaitGroup
	helpers := 0
spawn:
	for helpers < rows-1 {
		select {
		case <-w.tokens:
			helpers++
			wg.Add(1)
			go func() {
				defer func() {
					w.tokens <- struct{}{}
					wg.Done()
				}()
				st.work(mb, w.col)
			}()
		default:
			break spawn // no token free
		}
	}
	if w.col != nil {
		w.col.ObserveFrontDepth(helpers + 1)
	}
	st.work(mb, w.col)
	wg.Wait()
	return !st.aborted.Load()
}

// work claims rows in increasing order and walks each left-to-right.
func (st *wfState) work(mb func(x, y int) bool, col *obs.Collector) {
	for {
		r := int(st.nextRow.Add(1)) - 1
		if r >= st.rows || st.aborted.Load() {
			return
		}
		for x := 0; x < st.cols; x++ {
			if r > 0 {
				// Top-right dependency: (x+1, r-1) done, i.e. the row above
				// has completed at least x+2 macroblocks (clamped at the
				// right edge, where the dependency falls off the grid).
				need := x + 2
				if need > st.cols {
					need = st.cols
				}
				if !st.waitAbove(r, need, col) {
					return
				}
			}
			if !mb(x, r) {
				st.abort()
				return
			}
			st.progress[r].Store(int32(x + 1))
			if st.waiters.Load() > 0 {
				st.wake()
			}
		}
	}
}

// waitAbove blocks until progress[r-1] >= need or the front aborts,
// returning false on abort. It spins briefly (the common case — rows stay
// staggered by a couple of macroblocks) and then parks on the Cond.
func (st *wfState) waitAbove(r, need int, col *obs.Collector) bool {
	p := &st.progress[r-1]
	if int(p.Load()) >= need {
		return true
	}
	for i := 0; i < wfSpin; i++ {
		if int(p.Load()) >= need {
			return true
		}
		if st.aborted.Load() {
			return false
		}
	}
	var t0 time.Time
	if col != nil {
		//hdvlint:allow determinism -- collector timing only; the duration feeds metrics, never the bitstream
		t0 = time.Now()
	}
	st.mu.Lock()
	st.waiters.Add(1)
	for int(p.Load()) < need && !st.aborted.Load() {
		st.cond.Wait()
	}
	st.waiters.Add(-1)
	st.mu.Unlock()
	if col != nil {
		//hdvlint:allow determinism -- collector timing only; the duration feeds metrics, never the bitstream
		col.ObserveWavefrontWait(time.Since(t0))
	}
	return !st.aborted.Load()
}

// wake broadcasts to parked waiters. The empty critical section orders
// the broadcast after any waiter that registered itself but has not yet
// released the lock in Wait, closing the lost-wakeup window.
func (st *wfState) wake() {
	st.mu.Lock()
	st.mu.Unlock() //nolint:staticcheck // empty section is the handoff barrier
	st.cond.Broadcast()
}

func (st *wfState) abort() {
	st.aborted.Store(true)
	st.wake()
}
