// Package pipeline provides GOP-parallel encoding and decoding for the
// three HD-VideoBench codecs — the paper's future-work direction
// ("parallel versions of the video Codecs ... for emerging chip
// multiprocessing architectures") promoted into the library.
//
// The scheduler exploits the closed-GOP invariant of the codec layer:
// when Config.IntraPeriod > 0 every intra period is an independent
// chunk — it starts with an I frame, none of its pictures reference
// across the boundary, and the encoders reset their reference state at
// every I frame. Each chunk is therefore encoded (or decoded) by a
// private codec instance on its own worker, and an ordered merge stage
// reassembles the results, so the output is byte-identical to the
// serial path for every worker count. A benchmark whose bitstream
// changed with GOMAXPROCS would be worthless; determinism here is load
// bearing and is enforced by pipeline_test.go.
//
// With IntraPeriod == 0 (the paper's first-frame-only-intra setting)
// there are no chunk boundaries and both entry points fall back to a
// single codec instance — but when Config.Slices > 1 that instance still
// parallelizes inside each frame: its macroblock-row slices are fanned
// out across the worker budget through a SliceGate, composing with the
// chunk pool when both levels exist.
package pipeline

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"hdvideobench/internal/codec"
	"hdvideobench/internal/container"
	"hdvideobench/internal/frame"
)

// EncoderFactory constructs a fresh encoder; each worker chunk gets its
// own instance, so factories must not share mutable state between the
// encoders they return.
type EncoderFactory func() (codec.Encoder, error)

// DecoderFactory constructs a fresh decoder for the stream being decoded.
type DecoderFactory func() (codec.Decoder, error)

// Workers normalizes a worker-count option: values below 1 select
// runtime.NumCPU() (the -workers flag default), 1 is the legacy serial
// path, anything else is used as given.
func Workers(n int) int {
	if n < 1 {
		return runtime.NumCPU()
	}
	return n
}

// span is a half-open chunk of the input, [lo, hi).
type span struct{ lo, hi int }

// chunkSpans splits n display-order frames into closed-GOP chunks of gop
// frames each (the last chunk may be ragged). gop <= 0 means no interior
// I frames exist, so the whole input is one chunk.
func chunkSpans(n, gop int) []span {
	if gop <= 0 || n == 0 {
		return []span{{0, n}}
	}
	spans := make([]span, 0, (n+gop-1)/gop)
	for lo := 0; lo < n; lo += gop {
		hi := lo + gop
		if hi > n {
			hi = n
		}
		spans = append(spans, span{lo, hi})
	}
	return spans
}

// runOrdered executes jobs 0..n-1 on at most workers goroutines and
// returns the results in job order. Errors are reported for the lowest
// failing job index, so the failure surface is deterministic too.
func runOrdered[T any](n, workers int, job func(i int) (T, error)) ([]T, error) {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	results := make([]T, n)
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				r, err := job(i)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
				results[i] = r
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// EncodeFrames encodes display-order frames with workers parallel codec
// instances, splitting the input into closed-GOP chunks of gop frames
// (normally Config.IntraPeriod). The returned packets — coding order,
// display indices, payload bytes — are byte-identical to driving a
// single encoder over the whole sequence. workers <= 1, gop <= 0, or a
// single-chunk input all take the serial path.
func EncodeFrames(newEnc EncoderFactory, gop, workers int, frames []*frame.Frame) ([]container.Packet, container.Header, error) {
	spans := chunkSpans(len(frames), gop)
	if workers > 1 {
		// Slice-level parallelism inside each frame shares the worker
		// budget with the chunk pool: the gate gets exactly the workers
		// the chunk level leaves idle, so chunk goroutines plus slice
		// goroutines never exceed the budget. With no chunk boundaries
		// (the paper's first-frame-only-intra setting) the whole budget
		// goes to slices — the only parallelism that encode has.
		newEnc = NewSliceGate(SpareWorkers(workers, len(spans))).Encoders(newEnc)
	}
	enc, err := newEnc()
	if err != nil {
		return nil, container.Header{}, err
	}
	hdr := enc.Header()
	if workers <= 1 || len(spans) <= 1 {
		pkts, err := encodeAll(enc, frames)
		return pkts, hdr, err
	}

	chunks, err := runOrdered(len(spans), workers, func(i int) ([]container.Packet, error) {
		ce := enc
		if i > 0 {
			var err error
			if ce, err = newEnc(); err != nil {
				return nil, err
			}
		}
		pkts, err := EncodeChunk(ce, frames[spans[i].lo:spans[i].hi], spans[i].lo)
		if err != nil {
			return nil, fmt.Errorf("pipeline: chunk %d (frames %d-%d): %w", i, spans[i].lo, spans[i].hi-1, err)
		}
		return pkts, nil
	})
	if err != nil {
		return nil, container.Header{}, err
	}

	// Ordered merge: chunk streams concatenate in input order. Restore the
	// global display stamps on the input frames to match the serial path's
	// side effect (encoders overwrite Frame.PTS with the arrival index).
	total := 0
	for _, ps := range chunks {
		total += len(ps)
	}
	merged := make([]container.Packet, 0, total)
	for _, ps := range chunks {
		merged = append(merged, ps...)
	}
	for i, f := range frames {
		f.PTS = i
	}
	return merged, hdr, nil
}

func encodeAll(enc codec.Encoder, frames []*frame.Frame) ([]container.Packet, error) {
	var pkts []container.Packet
	for _, f := range frames {
		ps, err := enc.Encode(f)
		if err != nil {
			return nil, err
		}
		pkts = append(pkts, ps...)
	}
	ps, err := enc.Flush()
	if err != nil {
		return nil, err
	}
	return append(pkts, ps...), nil
}

// EncodeChunk drives enc over one closed-GOP chunk of display-order
// frames and flushes it, shifting the chunk-local display indices the
// encoder stamps by base — the chunk's offset in the global timeline.
// It is the unit of work of both the batch scheduler above and the
// bounded-window streaming scheduler in internal/stream.
func EncodeChunk(enc codec.Encoder, frames []*frame.Frame, base int) ([]container.Packet, error) {
	// The encoder stamps chunk-local display indices; its motion
	// tap/hint callbacks need the global timeline to key their fields.
	if r, ok := enc.(codec.PTSRebaser); ok {
		r.SetPTSBase(base)
	}
	pkts, err := encodeAll(enc, frames)
	if err != nil {
		return nil, err
	}
	if base != 0 {
		for j := range pkts {
			pkts[j].DisplayIndex += base
		}
	}
	return pkts, nil
}

// segments splits a coding-order packet stream at closed-GOP boundaries:
// an I packet opens a new segment only when every earlier packet displays
// strictly before it and it displays first among the packets from it
// onward. The second condition is what rejects open GOPs — their
// mid-stream I frames are followed in coding order by leading B pictures
// that display earlier and reference across the boundary. Streams from
// this repository's encoders pass at every I frame; boundaries that fail
// stay merged with the preceding segment, which keeps the fallback
// correct, just less parallel.
func segments(pkts []container.Packet) []span {
	n := len(pkts)
	if n == 0 {
		return nil
	}
	suffixMin := make([]int, n+1)
	suffixMin[n] = int(^uint(0) >> 1)
	for i := n - 1; i >= 0; i-- {
		suffixMin[i] = pkts[i].DisplayIndex
		if suffixMin[i+1] < suffixMin[i] {
			suffixMin[i] = suffixMin[i+1]
		}
	}
	var spans []span
	lo, prefixMax := 0, -1
	for i, p := range pkts {
		if i > 0 && p.Type == container.FrameI &&
			prefixMax < p.DisplayIndex && p.DisplayIndex == suffixMin[i] {
			spans = append(spans, span{lo, i})
			lo = i
		}
		if p.DisplayIndex > prefixMax {
			prefixMax = p.DisplayIndex
		}
	}
	return append(spans, span{lo, n})
}

// DecodePackets decodes a coding-order packet stream with workers
// parallel decoder instances, one per closed GOP, returning frames in
// display order. Output frames and their PTS stamps are identical to the
// serial path for every worker count.
func DecodePackets(newDec DecoderFactory, workers int, pkts []container.Packet) ([]*frame.Frame, error) {
	spans := segments(pkts)
	if workers > 1 {
		// As in EncodeFrames: intra-frame slice parallelism under the
		// shared budget, covering the single-segment case too.
		newDec = NewSliceGate(SpareWorkers(workers, len(spans))).Decoders(newDec)
	}
	if workers <= 1 || len(spans) <= 1 {
		dec, err := newDec()
		if err != nil {
			return nil, err
		}
		return decodeAll(dec, pkts, 0)
	}

	chunks, err := runOrdered(len(spans), workers, func(i int) ([]*frame.Frame, error) {
		dec, err := newDec()
		if err != nil {
			return nil, err
		}
		out, err := DecodeSegment(dec, pkts[spans[i].lo:spans[i].hi])
		if err != nil {
			return nil, fmt.Errorf("pipeline: segment %d (packets %d-%d): %w", i, spans[i].lo, spans[i].hi-1, err)
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}

	total := 0
	for _, fs := range chunks {
		total += len(fs)
	}
	merged := make([]*frame.Frame, 0, total)
	for _, fs := range chunks {
		merged = append(merged, fs...)
	}
	return merged, nil
}

// DecodeSegment decodes one closed-GOP segment of coding-order packets
// with a fresh decoder, returning its frames in display order with
// global PTS stamps. Each segment's display indices start at its I
// frame; the decoder's reorder buffer counts from zero, so the segment
// is decoded with segment-local stamps (rebased by the first packet's
// display index) and shifted back afterwards. Like EncodeChunk, it is
// shared by the batch scheduler and internal/stream.
func DecodeSegment(dec codec.Decoder, pkts []container.Packet) ([]*frame.Frame, error) {
	base := 0
	if len(pkts) > 0 {
		base = pkts[0].DisplayIndex
	}
	return decodeAll(dec, pkts, base)
}

// decodeAll drives dec over pkts with display indices rebased by -base,
// restoring the global stamps on the way out.
func decodeAll(dec codec.Decoder, pkts []container.Packet, base int) ([]*frame.Frame, error) {
	var out []*frame.Frame
	for _, p := range pkts {
		p.DisplayIndex -= base
		fs, err := dec.Decode(p)
		if err != nil {
			return nil, err
		}
		out = append(out, fs...)
	}
	out = append(out, dec.Flush()...)
	if base != 0 {
		for _, f := range out {
			f.PTS += base
		}
	}
	return out, nil
}
