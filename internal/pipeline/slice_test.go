// Slice-parallelism determinism suite: the intra-frame (macroblock-row
// slice) axis must behave exactly like the GOP axis — for a fixed slice
// count the bitstream and the decode are byte-identical at every worker
// count — and the prediction clamping at slice boundaries must cost only
// a small, bounded amount of quality. The matrix runs at the paper's
// IntraPeriod == 0 default, the setting where GOP chunking degenerates
// to one segment and slices are the only parallelism.
package pipeline_test

import (
	"fmt"
	"testing"

	"hdvideobench/internal/codec"
	"hdvideobench/internal/core"
	"hdvideobench/internal/metrics"
	"hdvideobench/internal/seqgen"
)

const sliceFrames = 6 // I P B B P P at the paper's BFrames=2

// slicePSNRBound is the documented quality cost ceiling of slicing:
// splitting a frame into up to 4 slices clamps intra prediction and MV
// predictors at 3 extra row boundaries, which on the benchmark content
// must not cost more than half a dB of luma PSNR versus one slice.
const slicePSNRBound = 0.5

var sliceCounts = []int{1, 2, 4}

func sliceConfig(w, h, slices int) codec.Config {
	cfg := codec.Default(w, h)
	cfg.IntraPeriod = 0 // the paper's first-frame-only-intra setting
	cfg.SearchRange = 8
	cfg.Refs = 2
	cfg.Slices = slices
	return cfg
}

// TestSliceParallelMatchesSerial is the slice equivalence matrix:
// 3 codecs × {576p, 720p} × slices {1, 2, 4} × workers {1, 4}. For every
// fixed slice count the 4-worker encode must reproduce the 1-worker
// bitstream byte for byte and the 4-worker decode must reproduce the
// 1-worker decode plane for plane, even though IntraPeriod == 0 gives
// the GOP scheduler nothing to chunk.
func TestSliceParallelMatchesSerial(t *testing.T) {
	for _, res := range detResolutions {
		if testing.Short() && res.name == "720p" {
			continue
		}
		t.Run(res.name, func(t *testing.T) {
			inputs := seqgen.New(seqgen.PedestrianArea, res.w, res.h).Generate(sliceFrames)
			for _, id := range core.AllCodecs {
				t.Run(id.String(), func(t *testing.T) {
					for _, slices := range sliceCounts {
						t.Run(fmt.Sprintf("slices=%d", slices), func(t *testing.T) {
							cfg := sliceConfig(res.w, res.h, slices)
							refPkts, hdr, err := core.EncodeSequenceParallel(id, cfg, inputs, 1)
							if err != nil {
								t.Fatalf("serial encode: %v", err)
							}
							refFrames, err := core.DecodePacketsParallel(hdr, cfg.Kernels, refPkts, 1)
							if err != nil {
								t.Fatalf("serial decode: %v", err)
							}
							if len(refFrames) != len(inputs) {
								t.Fatalf("serial decode returned %d of %d frames", len(refFrames), len(inputs))
							}

							pkts, _, err := core.EncodeSequenceParallel(id, cfg, inputs, 4)
							if err != nil {
								t.Fatalf("parallel encode: %v", err)
							}
							packetsEqual(t, refPkts, pkts)
							decoded, err := core.DecodePacketsParallel(hdr, cfg.Kernels, pkts, 4)
							if err != nil {
								t.Fatalf("parallel decode: %v", err)
							}
							framesEqual(t, refFrames, decoded)
						})
					}
				})
			}
		})
	}
}

// TestSlicePSNRWithinBound pins the quality price of slicing: the
// 4-slice stream must stay within slicePSNRBound dB of the 1-slice
// stream on every codec (576p, the paper's DVD size).
func TestSlicePSNRWithinBound(t *testing.T) {
	const w, h = 720, 576
	inputs := seqgen.New(seqgen.PedestrianArea, w, h).Generate(sliceFrames)
	psnr := func(id core.CodecID, slices int) float64 {
		cfg := sliceConfig(w, h, slices)
		pkts, hdr, err := core.EncodeSequenceParallel(id, cfg, inputs, 1)
		if err != nil {
			t.Fatalf("%v slices=%d: encode: %v", id, slices, err)
		}
		decoded, err := core.DecodePacketsParallel(hdr, cfg.Kernels, pkts, 1)
		if err != nil {
			t.Fatalf("%v slices=%d: decode: %v", id, slices, err)
		}
		var acc metrics.Accumulator
		for i := range inputs {
			acc.AddFrame(inputs[i], decoded[i], 0)
		}
		return acc.PSNR()
	}
	for _, id := range core.AllCodecs {
		one := psnr(id, 1)
		four := psnr(id, 4)
		t.Logf("%v: slices=1 %.3f dB, slices=4 %.3f dB (Δ %.3f)", id, one, four, one-four)
		if four < one-slicePSNRBound {
			t.Errorf("%v: 4-slice PSNR %.3f dB is more than %.1f dB below 1-slice %.3f dB",
				id, four, slicePSNRBound, one)
		}
	}
}

// TestSliceCountSurvivesTranscode checks the decoder picks the slice
// count up from the packet, not the config: a 3-slice stream decodes on
// a decoder that knows nothing about slicing, and frames match the
// encoder's reconstruction path end to end.
func TestSliceCountSurvivesTranscode(t *testing.T) {
	const w, h = 96, 80
	inputs := seqgen.New(seqgen.BlueSky, w, h).Generate(4)
	cfg := sliceConfig(w, h, 3)
	pkts, hdr, err := core.EncodeSequenceParallel(core.MPEG2, cfg, inputs, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Every frame payload must carry the 3-slice table.
	for i, p := range pkts {
		spans, _, err := codec.ParseSliceTable(p.Payload[1:], h/16)
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if len(spans) != 3 {
			t.Fatalf("packet %d: %d slices in table, want 3", i, len(spans))
		}
	}
	decoded, err := core.DecodePackets(hdr, cfg.Kernels, pkts)
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(inputs) {
		t.Fatalf("decoded %d of %d frames", len(decoded), len(inputs))
	}
	for i := range decoded {
		if psnr := metrics.PSNRFrames(inputs[i], decoded[i]); psnr < 20 {
			t.Fatalf("frame %d: PSNR %.1f dB — sliced decode is broken", i, psnr)
		}
	}
}
