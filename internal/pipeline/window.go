package pipeline

import (
	"errors"
	"io"
	"sync"
)

// ErrAborted is returned by OrderedPool operations after Abort: the
// caller tore the pipeline down early (a client disconnected, a
// downstream stage failed) and in-flight work was discarded.
var ErrAborted = errors.New("pipeline: aborted")

// OrderedPool is the streaming counterpart of runOrdered: items are
// submitted one at a time, processed by a fixed set of workers, and
// results come back in submission order through Next. At most window
// items are admitted and not yet consumed, so Submit applies
// backpressure — a producer that outruns the consumer blocks instead of
// buffering without bound. That window is what turns the batch GOP
// pipeline into a constant-memory streaming scheduler (internal/stream
// builds its encoder and decoder on it).
//
// Concurrency contract: one goroutine calls Submit and then Close
// exactly once (even after Abort); one goroutine calls Next until it
// returns io.EOF or an error. Abort is safe from any goroutine and
// idempotent. fn runs on the worker goroutines and must not share
// mutable state across calls.
type OrderedPool[I, O any] struct {
	fn   func(I) (O, error)
	drop func(I) // resource accounting for items discarded by Abort

	slots   chan struct{}
	work    chan *poolJob[I, O]
	order   chan *poolJob[I, O]
	aborted chan struct{}
	once    sync.Once

	holding bool // Next holds a slot for the result it returned last
}

type poolJob[I, O any] struct {
	in   I
	done chan poolResult[O] // buffered(1): workers never block on it
}

type poolResult[O any] struct {
	out O
	err error
}

// NewOrderedPool starts workers goroutines running fn with at most
// window items in flight. drop, if non-nil, is called for items that
// Abort discards before fn ran (so callers can release per-item
// resources they account for at Submit time).
func NewOrderedPool[I, O any](workers, window int, fn func(I) (O, error), drop func(I)) *OrderedPool[I, O] {
	if workers < 1 {
		workers = 1
	}
	if window < workers {
		window = workers
	}
	p := &OrderedPool[I, O]{
		fn:      fn,
		drop:    drop,
		slots:   make(chan struct{}, window),
		work:    make(chan *poolJob[I, O], window),
		order:   make(chan *poolJob[I, O], window),
		aborted: make(chan struct{}),
	}
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *OrderedPool[I, O]) worker() {
	for job := range p.work {
		select {
		case <-p.aborted:
			if p.drop != nil {
				p.drop(job.in)
			}
			job.done <- poolResult[O]{err: ErrAborted}
			continue
		default:
		}
		out, err := p.fn(job.in)
		job.done <- poolResult[O]{out: out, err: err}
	}
}

// Submit admits one item, blocking while the window is full. It returns
// ErrAborted (after dropping the item) once Abort has been called.
func (p *OrderedPool[I, O]) Submit(in I) error {
	job := &poolJob[I, O]{in: in, done: make(chan poolResult[O], 1)}
	select {
	case p.slots <- struct{}{}:
	case <-p.aborted:
		if p.drop != nil {
			p.drop(in)
		}
		return ErrAborted
	}
	// Both channels have window capacity and a slot was acquired, so
	// neither send can block.
	p.work <- job
	p.order <- job
	return nil
}

// Close marks the end of input. It must be called exactly once after the
// final Submit (including after an aborted Submit); Next then drains the
// remaining results and reports io.EOF.
func (p *OrderedPool[I, O]) Close() {
	close(p.work)
	close(p.order)
}

// Next returns the result of the oldest unconsumed item, blocking until
// its worker finishes. The window slot of each result is released on the
// following Next call, so "in flight" covers submitted, processing and
// returned-but-not-yet-replaced items. After Close and a full drain it
// returns io.EOF; after Abort, ErrAborted.
func (p *OrderedPool[I, O]) Next() (O, error) {
	var zero O
	if p.holding {
		p.holding = false
		<-p.slots
	}
	var job *poolJob[I, O]
	var ok bool
	select {
	case job, ok = <-p.order:
	case <-p.aborted:
		return zero, ErrAborted
	}
	if !ok {
		return zero, io.EOF
	}
	var res poolResult[O]
	select {
	case res = <-job.done:
	case <-p.aborted:
		return zero, ErrAborted
	}
	if res.err != nil {
		return zero, res.err
	}
	p.holding = true
	return res.out, nil
}

// Abort tears the pool down early: blocked Submit and Next calls return
// ErrAborted and workers drop queued items instead of processing them.
// The producer must still call Close so the workers exit.
func (p *OrderedPool[I, O]) Abort() {
	p.once.Do(func() { close(p.aborted) })
}
