// Determinism suite for the GOP-parallel pipeline: for every codec,
// resolution and worker count, the parallel bitstream must be
// byte-identical to the serial one and the decoded frames must match
// exactly — a benchmark whose output changes with the worker count
// measures nothing. Run it under -race for the full story (the CI
// workflow does): identical bytes prove scheduling determinism, the race
// detector proves the workers shared nothing they shouldn't have.
package pipeline_test

import (
	"bytes"
	"fmt"
	"testing"

	"hdvideobench/internal/codec"
	"hdvideobench/internal/container"
	"hdvideobench/internal/core"
	"hdvideobench/internal/frame"
	"hdvideobench/internal/metrics"
	"hdvideobench/internal/seqgen"
)

const (
	detFrames = 10 // with detGOP=3: chunks of 3,3,3,1 — ragged tail
	detGOP    = 3
)

// workerCounts exercises the serial path, even splits, more workers than
// chunks, and (7 > 4 chunks) the ragged-last-chunk schedule.
var workerCounts = []int{1, 2, 4, 7}

var detResolutions = []struct {
	name string
	w, h int
}{
	{"576p", 720, 576},
	{"720p", 1280, 720},
}

// detConfig is the determinism-suite configuration: the paper's GOP
// structure (two B frames) with a short intra period so chunks exist,
// and a trimmed search so the full matrix stays fast under -race.
func detConfig(w, h int) codec.Config {
	cfg := codec.Default(w, h)
	cfg.IntraPeriod = detGOP
	cfg.SearchRange = 8
	cfg.Refs = 2
	return cfg
}

func packetsEqual(t *testing.T, serial, parallel []container.Packet) {
	t.Helper()
	if len(serial) != len(parallel) {
		t.Fatalf("packet count: parallel %d, serial %d", len(parallel), len(serial))
	}
	for i := range serial {
		s, p := serial[i], parallel[i]
		if s.Type != p.Type {
			t.Fatalf("packet %d: type %c, serial has %c", i, p.Type, s.Type)
		}
		if s.DisplayIndex != p.DisplayIndex {
			t.Fatalf("packet %d: display %d, serial has %d", i, p.DisplayIndex, s.DisplayIndex)
		}
		if !bytes.Equal(s.Payload, p.Payload) {
			t.Fatalf("packet %d (%c, display %d): payload differs (%d vs %d bytes)",
				i, s.Type, s.DisplayIndex, len(p.Payload), len(s.Payload))
		}
	}
}

func framesEqual(t *testing.T, serial, parallel []*frame.Frame) {
	t.Helper()
	if len(serial) != len(parallel) {
		t.Fatalf("frame count: parallel %d, serial %d", len(parallel), len(serial))
	}
	for i := range serial {
		s, p := serial[i], parallel[i]
		if s.PTS != p.PTS {
			t.Fatalf("frame %d: PTS %d, serial has %d", i, p.PTS, s.PTS)
		}
		if !bytes.Equal(s.Y, p.Y) || !bytes.Equal(s.Cb, p.Cb) || !bytes.Equal(s.Cr, p.Cr) {
			t.Fatalf("frame %d: decoded planes differ", i)
		}
	}
}

// TestParallelMatchesSerial is the determinism matrix: codec ×
// {576p, 720p} × {1, 2, 4, 7} workers. Parallel encode must reproduce the
// serial bitstream byte for byte, and parallel decode must reproduce the
// serial decode (checked plane-for-plane, plus exact PSNR agreement).
func TestParallelMatchesSerial(t *testing.T) {
	for _, res := range detResolutions {
		if testing.Short() && res.name == "720p" {
			continue
		}
		for _, id := range core.AllCodecs {
			t.Run(fmt.Sprintf("%s/%v", res.name, id), func(t *testing.T) {
				cfg := detConfig(res.w, res.h)
				inputs := seqgen.New(seqgen.PedestrianArea, res.w, res.h).Generate(detFrames)

				serialPkts, hdr, err := core.EncodeSequence(id, cfg, inputs)
				if err != nil {
					t.Fatal(err)
				}
				serialFrames, err := core.DecodePackets(hdr, cfg.Kernels, serialPkts)
				if err != nil {
					t.Fatal(err)
				}
				if len(serialFrames) != len(inputs) {
					t.Fatalf("serial decode returned %d of %d frames", len(serialFrames), len(inputs))
				}
				serialPSNR := make([]float64, len(inputs))
				for i := range inputs {
					serialPSNR[i] = metrics.PSNRFrames(inputs[i], serialFrames[i])
				}

				for _, workers := range workerCounts {
					t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
						pkts, phdr, err := core.EncodeSequenceParallel(id, cfg, inputs, workers)
						if err != nil {
							t.Fatal(err)
						}
						if phdr != hdr {
							t.Fatalf("header %+v, serial has %+v", phdr, hdr)
						}
						packetsEqual(t, serialPkts, pkts)

						decoded, err := core.DecodePacketsParallel(hdr, cfg.Kernels, pkts, workers)
						if err != nil {
							t.Fatal(err)
						}
						framesEqual(t, serialFrames, decoded)
						for i := range inputs {
							if psnr := metrics.PSNRFrames(inputs[i], decoded[i]); psnr != serialPSNR[i] {
								t.Fatalf("frame %d: PSNR %.6f, serial has %.6f", i, psnr, serialPSNR[i])
							}
						}
					})
				}
			})
		}
	}
}

// TestParallelInputPTSRestored checks the parallel encoder leaves the
// same side effect on the input frames as the serial path (display
// stamps equal to arrival order), so downstream metrics code sees no
// difference.
func TestParallelInputPTSRestored(t *testing.T) {
	cfg := detConfig(96, 80)
	inputs := seqgen.New(seqgen.RushHour, 96, 80).Generate(detFrames)
	if _, _, err := core.EncodeSequenceParallel(core.MPEG2, cfg, inputs, 4); err != nil {
		t.Fatal(err)
	}
	for i, f := range inputs {
		if f.PTS != i {
			t.Fatalf("input %d: PTS %d after parallel encode, want %d", i, f.PTS, i)
		}
	}
}

// TestParallelNoIntraPeriodFallsBack checks the paper's default coding
// options (first frame only intra) still work at any worker count: there
// are no chunk boundaries, so the pipeline must quietly run serially and
// still produce the serial stream.
func TestParallelNoIntraPeriodFallsBack(t *testing.T) {
	cfg := codec.Default(96, 80)
	cfg.SearchRange = 8
	inputs := seqgen.New(seqgen.BlueSky, 96, 80).Generate(7)
	serial, hdr, err := core.EncodeSequence(core.H264, cfg, inputs)
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := core.EncodeSequenceParallel(core.H264, cfg, inputs, 4)
	if err != nil {
		t.Fatal(err)
	}
	packetsEqual(t, serial, par)
	decoded, err := core.DecodePacketsParallel(hdr, cfg.Kernels, par, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != len(inputs) {
		t.Fatalf("decoded %d of %d frames", len(decoded), len(inputs))
	}
}
