package pipeline

import (
	"sync"
	"sync/atomic"
	"testing"

	"hdvideobench/internal/obs"
)

// wfCheck runs a front over rows×cols with the given worker budget and
// verifies the dependency contract: every cell runs exactly once, never
// before its left and top-right neighbours, and cells of a row run in
// left-to-right order.
func wfCheck(t *testing.T, workers, rows, cols int) {
	t.Helper()
	w := NewWavefront(workers)
	var mu sync.Mutex
	done := make([][]bool, rows)
	rowX := make([]int, rows)
	for i := range done {
		done[i] = make([]bool, cols)
		rowX[i] = -1
	}
	ok := w.Run(rows, cols, func(x, y int) bool {
		mu.Lock()
		defer mu.Unlock()
		if done[y][x] {
			t.Errorf("cell (%d,%d) ran twice", x, y)
		}
		if x > 0 && !done[y][x-1] {
			t.Errorf("cell (%d,%d) ran before left neighbour", x, y)
		}
		if y > 0 {
			dep := x + 1
			if dep > cols-1 {
				dep = cols - 1
			}
			if !done[y-1][dep] {
				t.Errorf("cell (%d,%d) ran before top-right neighbour (%d,%d)", x, y, dep, y-1)
			}
		}
		if rowX[y] != x-1 {
			t.Errorf("row %d: cell x=%d after x=%d (not left-to-right)", y, x, rowX[y])
		}
		rowX[y] = x
		done[y][x] = true
		return true
	})
	if !ok {
		t.Fatal("Run returned false without an abort")
	}
	for y := range done {
		for x := range done[y] {
			if !done[y][x] {
				t.Fatalf("cell (%d,%d) never ran", x, y)
			}
		}
	}
}

func TestWavefrontShapes(t *testing.T) {
	shapes := []struct{ workers, rows, cols int }{
		{1, 4, 8},   // serial
		{4, 4, 8},   // square-ish front
		{4, 1, 16},  // single row
		{4, 16, 1},  // 1-MB-wide frame: the front degenerates to a chain
		{16, 3, 5},  // workers exceed row count
		{3, 12, 2},  // frame narrower than the front is deep
		{2, 2, 2},   // minimal 2D
		{8, 40, 45}, // 720p-slice-like shape
		{4, 0, 8},   // empty grids are no-ops
		{4, 8, 0},
	}
	for _, s := range shapes {
		wfCheck(t, s.workers, s.rows, s.cols)
	}
}

// TestWavefrontAbort aborts mid-front and verifies Run returns false with
// every helper joined (the -race run catches unsynchronized stragglers),
// and that the scheduler is reusable afterwards.
func TestWavefrontAbort(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		w := NewWavefront(workers)
		var calls atomic.Int32
		ok := w.Run(16, 16, func(x, y int) bool {
			calls.Add(1)
			return !(x == 7 && y == 3)
		})
		if ok {
			t.Fatalf("workers=%d: Run returned true despite abort", workers)
		}
		if n := calls.Load(); n < 1 || n > 16*16 {
			t.Fatalf("workers=%d: %d calls", workers, n)
		}
		if !w.Run(4, 4, func(x, y int) bool { return true }) {
			t.Fatalf("workers=%d: front not reusable after abort", workers)
		}
	}
}

// TestWavefrontTokensReturned proves helper tokens go back to the bank:
// after any Run (completed or aborted), the full budget is available.
func TestWavefrontTokensReturned(t *testing.T) {
	w := NewWavefront(5)
	w.Run(8, 8, func(x, y int) bool { return true })
	w.Run(8, 8, func(x, y int) bool { return x+y < 4 })
	if got := len(w.tokens); got != 4 {
		t.Fatalf("tokens after runs: %d, want 4", got)
	}
}

// TestWavefrontSharesGateTokens verifies a gate-derived wavefront draws
// from (and returns to) the gate's bank.
func TestWavefrontSharesGateTokens(t *testing.T) {
	g := NewSliceGate(4)
	wf := g.Wavefront()
	wf.Run(8, 8, func(x, y int) bool { return true })
	if got := len(g.tokens); got != 3 {
		t.Fatalf("gate tokens after wavefront run: %d, want 3", got)
	}
}

// TestWavefrontObserve drives the collector's front-depth histogram.
func TestWavefrontObserve(t *testing.T) {
	reg := obs.NewRegistry()
	col := &obs.Collector{
		WavefrontWait: reg.Histogram("wf_wait_seconds", "test", nil).With(),
		FrontDepth:    reg.Histogram("wf_front_depth", "test", nil).With(),
	}
	w := NewWavefront(4).Observe(col)
	w.Run(64, 4, func(x, y int) bool { return true })
	if col.FrontDepth.Count() != 1 {
		t.Fatalf("FrontDepth count = %d", col.FrontDepth.Count())
	}
}

func BenchmarkWavefront(b *testing.B) {
	// 720p-frame shape: 45 rows × 80 cols, simulated macroblock work.
	for _, workers := range []int{1, 4} {
		name := map[int]string{1: "workers=1", 4: "workers=4"}[workers]
		b.Run(name, func(b *testing.B) {
			w := NewWavefront(workers)
			var sink atomic.Int64
			for i := 0; i < b.N; i++ {
				w.Run(45, 80, func(x, y int) bool {
					acc := int64(0)
					for k := 0; k < 200; k++ {
						acc += int64(k * (x + y))
					}
					sink.Add(acc & 1)
					return true
				})
			}
		})
	}
}
