package pipeline

import (
	"sync"
	"time"

	"hdvideobench/internal/codec"
	"hdvideobench/internal/obs"
)

// SliceGate schedules the codecs' per-frame slice jobs onto a bounded
// goroutine budget. It is the second level of the pipeline's parallelism:
// GOP chunks spread across the worker pool, and the slices inside each
// frame spread across the gate — which is what finally makes the paper's
// default first-frame-only-intra setting scale, since that setting has
// exactly one GOP chunk.
//
// The gate banks workers-1 tokens shared by every codec instance it is
// installed on; a slice job runs on a spawned goroutine only while a
// token is available and inline on the calling worker otherwise, so the
// gate itself never adds more than workers-1 goroutines. Callers keep
// the OVERALL budget honest by sizing the gate to the workers the chunk
// pool leaves idle (see SpareWorkers): chunk workers plus gate tokens
// then sum to the requested budget exactly. Slices merge by index, so
// the coded output is identical for every token schedule — only
// wall-clock changes.
type SliceGate struct {
	tokens chan struct{}
	col    *obs.Collector
}

// NewSliceGate returns a gate with a total budget of workers goroutines
// (the calling worker counts as one, so workers-1 tokens are banked).
// workers <= 1 yields a gate that always runs slices inline.
func NewSliceGate(workers int) *SliceGate {
	extra := workers - 1
	if extra < 0 {
		extra = 0
	}
	g := &SliceGate{tokens: make(chan struct{}, extra)}
	for i := 0; i < extra; i++ {
		g.tokens <- struct{}{}
	}
	return g
}

// Observe points the gate's measurements at a collector (nil disables
// them, the default) and returns the gate for chaining at construction:
// spawned-vs-inline slice counts and the dispatcher's straggler wait.
// The gate hands out tokens with a non-blocking select — a slice never
// waits for one, it runs inline instead — so "time lost to the token
// budget" surfaces as the post-dispatch wait for spawned slices plus
// the inline share, not as an acquire latency.
func (g *SliceGate) Observe(col *obs.Collector) *SliceGate {
	g.col = col
	return g
}

// SpareWorkers returns the slice-gate budget that keeps a combined
// chunk-plus-slice schedule inside `workers` goroutines when the chunk
// level runs min(workers, chunks) of them: one calling worker plus the
// leftover. With a single chunk (the first-frame-only-intra shape) the
// whole budget goes to slices; with chunks >= workers the gate runs
// every slice inline and the chunk pool alone saturates the budget.
func SpareWorkers(workers, chunks int) int {
	if chunks < 1 {
		chunks = 1
	}
	if chunks > workers {
		chunks = workers
	}
	return workers - chunks + 1
}

// Run implements codec.SliceRunner: jobs 1..n-1 are spawned while tokens
// last (released as each finishes) and run inline otherwise; job 0 always
// runs on the caller. Run returns only after every job has completed.
func (g *SliceGate) Run(n int, job func(i int)) {
	if n <= 1 {
		if n == 1 {
			job(0)
		}
		return
	}
	var wg sync.WaitGroup
	for i := 1; i < n; i++ {
		select {
		case <-g.tokens:
			g.col.SliceSpawned()
			wg.Add(1)
			go func(i int) {
				defer func() {
					g.tokens <- struct{}{}
					wg.Done()
				}()
				job(i)
			}(i)
		default:
			g.col.SliceInline()
			job(i)
		}
	}
	job(0)
	if g.col == nil {
		wg.Wait()
		return
	}
	//hdvlint:allow determinism -- collector timing only; the duration feeds metrics, never the bitstream
	t0 := time.Now()
	wg.Wait()
	//hdvlint:allow determinism -- collector timing only; the duration feeds metrics, never the bitstream
	g.col.ObserveGateWait(time.Since(t0))
}

// install points a codec instance's slice scheduling — and, for encoders
// that support it, its wavefront scheduling — at the gate. Both runners
// draw from the same token bank, so slice goroutines and wavefront row
// helpers share one budget. Installing the wavefront runner is
// unconditional; codecs use it only when Config.Wavefront is set.
func (g *SliceGate) install(v any) {
	if s, ok := v.(codec.SliceScheduler); ok {
		s.SetSliceRunner(g.Run)
	}
	if s, ok := v.(codec.WavefrontScheduler); ok {
		s.SetWavefrontRunner(g.Wavefront().Run)
	}
}

// Encoders wraps an encoder factory so every instance it creates runs
// its slice jobs on the gate.
func (g *SliceGate) Encoders(f EncoderFactory) EncoderFactory {
	return func() (codec.Encoder, error) {
		e, err := f()
		if err == nil {
			g.install(e)
		}
		return e, err
	}
}

// Decoders wraps a decoder factory the same way.
func (g *SliceGate) Decoders(f DecoderFactory) DecoderFactory {
	return func() (codec.Decoder, error) {
		d, err := f()
		if err == nil {
			g.install(d)
		}
		return d, err
	}
}
