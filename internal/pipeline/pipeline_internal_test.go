package pipeline

import (
	"errors"
	"testing"

	"hdvideobench/internal/container"
)

func TestChunkSpans(t *testing.T) {
	cases := []struct {
		n, gop int
		want   []span
	}{
		{0, 4, []span{{0, 0}}},
		{10, 0, []span{{0, 10}}},  // no intra period: one chunk
		{10, 12, []span{{0, 10}}}, // gop longer than input
		{12, 4, []span{{0, 4}, {4, 8}, {8, 12}}},
		{10, 4, []span{{0, 4}, {4, 8}, {8, 10}}}, // ragged tail
		{10, 3, []span{{0, 3}, {3, 6}, {6, 9}, {9, 10}}},
	}
	for _, c := range cases {
		got := chunkSpans(c.n, c.gop)
		if len(got) != len(c.want) {
			t.Errorf("chunkSpans(%d,%d) = %v, want %v", c.n, c.gop, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("chunkSpans(%d,%d)[%d] = %v, want %v", c.n, c.gop, i, got[i], c.want[i])
			}
		}
	}
}

// pkt builds a minimal packet for segmentation tests.
func pkt(t container.FrameType, display int) container.Packet {
	return container.Packet{Type: t, DisplayIndex: display}
}

func TestSegmentsClosedGOP(t *testing.T) {
	// The scheduler's shape for IntraPeriod=3, BFrames=2: every frame
	// between refreshes becomes a trailing P, giving I0 P1 P2 | I3 P4 P5.
	pkts := []container.Packet{
		pkt(container.FrameI, 0), pkt(container.FrameP, 1), pkt(container.FrameP, 2),
		pkt(container.FrameI, 3), pkt(container.FrameP, 4), pkt(container.FrameP, 5),
	}
	got := segments(pkts)
	want := []span{{0, 3}, {3, 6}}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("segments = %v, want %v", got, want)
	}
}

func TestSegmentsWithBFrames(t *testing.T) {
	// IntraPeriod=6, BFrames=2 closed-GOP coding order:
	// I0 P3 B1 B2 P4 P5 | I6 P9 B7 B8.
	pkts := []container.Packet{
		pkt(container.FrameI, 0), pkt(container.FrameP, 3), pkt(container.FrameB, 1),
		pkt(container.FrameB, 2), pkt(container.FrameP, 4), pkt(container.FrameP, 5),
		pkt(container.FrameI, 6), pkt(container.FrameP, 9), pkt(container.FrameB, 7),
		pkt(container.FrameB, 8),
	}
	got := segments(pkts)
	want := []span{{0, 6}, {6, 10}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("segments = %v, want %v", got, want)
	}
}

func TestSegmentsRejectsOpenGOP(t *testing.T) {
	// Open-GOP shape (the seed's old scheduler): B frames coded after the
	// mid-stream I display *before* it, so the I is not a safe split point.
	// Coding order I0 P3 B1 B2 I6 B4 B5 ...
	pkts := []container.Packet{
		pkt(container.FrameI, 0), pkt(container.FrameP, 3), pkt(container.FrameB, 1),
		pkt(container.FrameB, 2), pkt(container.FrameI, 6), pkt(container.FrameB, 4),
		pkt(container.FrameB, 5), pkt(container.FrameP, 7),
	}
	got := segments(pkts)
	if len(got) != 1 || got[0] != (span{0, 8}) {
		t.Fatalf("segments = %v, want one merged span (open GOP must not split)", got)
	}
}

func TestRunOrderedPreservesOrderAndErrors(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		got, err := runOrdered(20, workers, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}

	boom := errors.New("boom")
	_, err := runOrdered(20, 4, func(i int) (int, error) {
		if i >= 7 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}
