package pipeline

import (
	"errors"
	"io"
	"sync/atomic"
	"testing"
	"time"

	"hdvideobench/internal/container"
)

func TestChunkSpans(t *testing.T) {
	cases := []struct {
		n, gop int
		want   []span
	}{
		{0, 4, []span{{0, 0}}},
		{10, 0, []span{{0, 10}}},  // no intra period: one chunk
		{10, 12, []span{{0, 10}}}, // gop longer than input
		{12, 4, []span{{0, 4}, {4, 8}, {8, 12}}},
		{10, 4, []span{{0, 4}, {4, 8}, {8, 10}}}, // ragged tail
		{10, 3, []span{{0, 3}, {3, 6}, {6, 9}, {9, 10}}},
	}
	for _, c := range cases {
		got := chunkSpans(c.n, c.gop)
		if len(got) != len(c.want) {
			t.Errorf("chunkSpans(%d,%d) = %v, want %v", c.n, c.gop, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("chunkSpans(%d,%d)[%d] = %v, want %v", c.n, c.gop, i, got[i], c.want[i])
			}
		}
	}
}

// pkt builds a minimal packet for segmentation tests.
func pkt(t container.FrameType, display int) container.Packet {
	return container.Packet{Type: t, DisplayIndex: display}
}

func TestSegmentsClosedGOP(t *testing.T) {
	// The scheduler's shape for IntraPeriod=3, BFrames=2: every frame
	// between refreshes becomes a trailing P, giving I0 P1 P2 | I3 P4 P5.
	pkts := []container.Packet{
		pkt(container.FrameI, 0), pkt(container.FrameP, 1), pkt(container.FrameP, 2),
		pkt(container.FrameI, 3), pkt(container.FrameP, 4), pkt(container.FrameP, 5),
	}
	got := segments(pkts)
	want := []span{{0, 3}, {3, 6}}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("segments = %v, want %v", got, want)
	}
}

func TestSegmentsWithBFrames(t *testing.T) {
	// IntraPeriod=6, BFrames=2 closed-GOP coding order:
	// I0 P3 B1 B2 P4 P5 | I6 P9 B7 B8.
	pkts := []container.Packet{
		pkt(container.FrameI, 0), pkt(container.FrameP, 3), pkt(container.FrameB, 1),
		pkt(container.FrameB, 2), pkt(container.FrameP, 4), pkt(container.FrameP, 5),
		pkt(container.FrameI, 6), pkt(container.FrameP, 9), pkt(container.FrameB, 7),
		pkt(container.FrameB, 8),
	}
	got := segments(pkts)
	want := []span{{0, 6}, {6, 10}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("segments = %v, want %v", got, want)
	}
}

func TestSegmentsRejectsOpenGOP(t *testing.T) {
	// Open-GOP shape (the seed's old scheduler): B frames coded after the
	// mid-stream I display *before* it, so the I is not a safe split point.
	// Coding order I0 P3 B1 B2 I6 B4 B5 ...
	pkts := []container.Packet{
		pkt(container.FrameI, 0), pkt(container.FrameP, 3), pkt(container.FrameB, 1),
		pkt(container.FrameB, 2), pkt(container.FrameI, 6), pkt(container.FrameB, 4),
		pkt(container.FrameB, 5), pkt(container.FrameP, 7),
	}
	got := segments(pkts)
	if len(got) != 1 || got[0] != (span{0, 8}) {
		t.Fatalf("segments = %v, want one merged span (open GOP must not split)", got)
	}
}

func TestRunOrderedPreservesOrderAndErrors(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		got, err := runOrdered(20, workers, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}

	boom := errors.New("boom")
	_, err := runOrdered(20, 4, func(i int) (int, error) {
		if i >= 7 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

// TestOrderedPoolOrderAndWindow drives the windowed pool with out-of-order
// completion pressure (tiny window, many items) and checks results come
// back in submission order while admitted-but-unconsumed items never
// exceed the window. The workers are gated shut while the producer
// sprints, so only Submit's backpressure — not worker scarcity — can
// hold the admission count down; a pool without the slots channel fails
// the window assertion immediately.
func TestOrderedPoolOrderAndWindow(t *testing.T) {
	const (
		items   = 64
		window  = 3
		workers = 2
	)
	gate := make(chan struct{})
	p := NewOrderedPool(workers, window, func(i int) (int, error) {
		<-gate
		return i * i, nil
	}, nil)

	var admitted atomic.Int64
	done := make(chan error, 1)
	go func() {
		for i := 0; i < items; i++ {
			if err := p.Submit(i); err != nil {
				done <- err
				return
			}
			admitted.Add(1)
		}
		p.Close()
		done <- nil
	}()

	// With the workers gated and nothing consumed, the producer must
	// stall at the window. Poll until it stops making progress.
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := admitted.Load()
		time.Sleep(20 * time.Millisecond)
		if admitted.Load() == n && n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("producer never settled")
		}
	}
	if got := admitted.Load(); got != window {
		t.Fatalf("admitted %d items with workers gated and nothing consumed, want window %d", got, window)
	}
	close(gate)

	for i := 0; i < items; i++ {
		got, err := p.Next()
		if err != nil {
			t.Fatalf("Next(%d): %v", i, err)
		}
		if got != i*i {
			t.Fatalf("Next(%d) = %d, want %d (out of order)", i, got, i*i)
		}
		// The producer can never run more than the window ahead of
		// consumption, even while results are flowing.
		if a := admitted.Load(); a > int64(i+1+window) {
			t.Fatalf("after consuming %d results, %d items admitted (> window %d ahead)", i+1, a, window)
		}
	}
	if _, err := p.Next(); err != io.EOF {
		t.Fatalf("Next after drain: %v, want io.EOF", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Submit: %v", err)
	}
}

// TestOrderedPoolError checks a failing item surfaces its error from Next
// at the item's ordinal position.
func TestOrderedPoolError(t *testing.T) {
	boom := errors.New("boom")
	p := NewOrderedPool(2, 4, func(i int) (int, error) {
		if i == 2 {
			return 0, boom
		}
		return i, nil
	}, nil)
	go func() {
		defer p.Close()
		for i := 0; i < 5; i++ {
			if err := p.Submit(i); err != nil {
				return
			}
		}
	}()
	for i := 0; i < 2; i++ {
		if _, err := p.Next(); err != nil {
			t.Fatalf("Next(%d): %v", i, err)
		}
	}
	if _, err := p.Next(); !errors.Is(err, boom) {
		t.Fatalf("Next(2): %v, want boom", err)
	}
	p.Abort() // producer goroutine owns Close and runs it on its way out
}

// TestOrderedPoolAbortUnblocksSubmit checks Abort releases a producer
// blocked on a full window and accounts dropped items via the drop hook.
func TestOrderedPoolAbortUnblocksSubmit(t *testing.T) {
	var dropped atomic.Int64
	block := make(chan struct{})
	p := NewOrderedPool(1, 1, func(i int) (int, error) {
		<-block
		return i, nil
	}, func(int) { dropped.Add(1) })

	submitErr := make(chan error, 1)
	go func() {
		var err error
		for i := 0; i < 10 && err == nil; i++ {
			err = p.Submit(i)
		}
		p.Close()
		submitErr <- err
	}()

	// Give the producer time to fill the window and block, then abort.
	time.Sleep(10 * time.Millisecond)
	p.Abort()
	if err := <-submitErr; err != ErrAborted {
		t.Fatalf("Submit after abort: %v, want ErrAborted", err)
	}
	close(block)
	if _, err := p.Next(); err != ErrAborted {
		t.Fatalf("Next after abort: %v, want ErrAborted", err)
	}
	if dropped.Load() == 0 {
		t.Fatal("drop hook never ran for discarded items")
	}
}
