package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// TextSample is one parsed exposition sample.
type TextSample struct {
	Name   string
	Labels []TextLabel // declaration order
	Value  float64
}

// TextLabel is one name="value" pair of a sample.
type TextLabel struct {
	Name, Value string
}

// Get returns the value of the named label and whether it was present.
func (s TextSample) Get(name string) (string, bool) {
	for _, l := range s.Labels {
		if l.Name == name {
			return l.Value, true
		}
	}
	return "", false
}

// TextFamily is one parsed metric family: its HELP/TYPE metadata and
// samples. Samples of a histogram family include the _bucket/_sum/
// _count expansions.
type TextFamily struct {
	Name, Help, Type string
	Samples          []TextSample
}

// ParseText parses a Prometheus text-format (0.0.4) exposition. It is
// strict about line grammar — any malformed line is an error — but does
// not judge semantics; LintText layers those checks on top.
func ParseText(b []byte) ([]TextFamily, error) {
	var (
		fams  []TextFamily
		index = map[string]int{} // family name -> fams index
		cur   = -1               // index of the family open for sample attachment
	)
	family := func(name string) int {
		i, ok := index[name]
		if !ok {
			i = len(fams)
			index[name] = i
			fams = append(fams, TextFamily{Name: name})
		}
		return i
	}
	for ln, line := range strings.Split(string(b), "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			rest, kind := "", ""
			switch {
			case strings.HasPrefix(line, "# HELP "):
				rest, kind = line[len("# HELP "):], "HELP"
			case strings.HasPrefix(line, "# TYPE "):
				rest, kind = line[len("# TYPE "):], "TYPE"
			default:
				continue // plain comment
			}
			name, tail, ok := strings.Cut(rest, " ")
			if kind == "TYPE" && !ok {
				return nil, fmt.Errorf("line %d: TYPE without a type", lineNo)
			}
			if !nameRE.MatchString(name) {
				return nil, fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
			}
			i := family(name)
			if kind == "HELP" {
				fams[i].Help = unescapeHelp(tail)
			} else {
				switch tail {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, tail)
				}
				if fams[i].Type != "" {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
				}
				fams[i].Type = tail
			}
			cur = i
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		i := -1
		if cur >= 0 && sampleBelongs(fams[cur], s.Name) {
			i = cur
		} else {
			i = family(s.Name)
			cur = i
		}
		fams[i].Samples = append(fams[i].Samples, s)
	}
	return fams, nil
}

// sampleBelongs reports whether a sample named n attaches to family f —
// either the exact name or, for histograms/summaries, the expanded
// _bucket/_sum/_count (_quantile rides on the base name) series.
func sampleBelongs(f TextFamily, n string) bool {
	if n == f.Name {
		return true
	}
	switch f.Type {
	case "histogram":
		return n == f.Name+"_bucket" || n == f.Name+"_sum" || n == f.Name+"_count"
	case "summary":
		return n == f.Name+"_sum" || n == f.Name+"_count"
	}
	return false
}

// parseSample parses `name[{labels}] value [timestamp]`.
func parseSample(line string) (TextSample, error) {
	var s TextSample
	rest := line
	end := strings.IndexAny(rest, "{ ")
	if end < 0 {
		return s, fmt.Errorf("sample %q: no value", line)
	}
	s.Name = rest[:end]
	if !nameRE.MatchString(s.Name) {
		return s, fmt.Errorf("sample %q: invalid metric name %q", line, s.Name)
	}
	rest = rest[end:]
	if rest[0] == '{' {
		labels, tail, err := parseLabels(rest)
		if err != nil {
			return s, fmt.Errorf("sample %q: %w", line, err)
		}
		s.Labels, rest = labels, tail
	}
	rest = strings.TrimLeft(rest, " ")
	valStr, ts, _ := strings.Cut(rest, " ")
	if valStr == "" {
		return s, fmt.Errorf("sample %q: no value", line)
	}
	v, err := strconv.ParseFloat(valStr, 64)
	if err != nil {
		return s, fmt.Errorf("sample %q: bad value %q", line, valStr)
	}
	s.Value = v
	if ts != "" {
		if _, err := strconv.ParseInt(strings.TrimSpace(ts), 10, 64); err != nil {
			return s, fmt.Errorf("sample %q: bad timestamp %q", line, ts)
		}
	}
	return s, nil
}

// parseLabels parses `{k="v",...}` (trailing comma allowed, escapes
// \\ \" \n in values) and returns the remainder of the line.
func parseLabels(rest string) ([]TextLabel, string, error) {
	var labels []TextLabel
	i := 1 // past '{'
	for {
		if i >= len(rest) {
			return nil, "", fmt.Errorf("unterminated label set")
		}
		if rest[i] == '}' {
			return labels, rest[i+1:], nil
		}
		eq := strings.IndexByte(rest[i:], '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("label without '='")
		}
		name := rest[i : i+eq]
		if !labelRE.MatchString(name) {
			return nil, "", fmt.Errorf("invalid label name %q", name)
		}
		i += eq + 1
		if i >= len(rest) || rest[i] != '"' {
			return nil, "", fmt.Errorf("label %q: unquoted value", name)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(rest) {
				return nil, "", fmt.Errorf("label %q: unterminated value", name)
			}
			c := rest[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(rest) {
					return nil, "", fmt.Errorf("label %q: dangling escape", name)
				}
				switch rest[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, "", fmt.Errorf("label %q: bad escape \\%c", name, rest[i+1])
				}
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		labels = append(labels, TextLabel{Name: name, Value: val.String()})
		if i < len(rest) && rest[i] == ',' {
			i++
		} else if i >= len(rest) || rest[i] != '}' {
			return nil, "", fmt.Errorf("label %q: expected ',' or '}'", name)
		}
	}
}

func unescapeHelp(v string) string {
	var out strings.Builder
	for i := 0; i < len(v); i++ {
		if v[i] == '\\' && i+1 < len(v) {
			switch v[i+1] {
			case '\\':
				out.WriteByte('\\')
				i++
				continue
			case 'n':
				out.WriteByte('\n')
				i++
				continue
			}
		}
		out.WriteByte(v[i])
	}
	return out.String()
}

// LintText parses an exposition and checks the semantics our registry
// promises: every family typed (counter/gauge/histogram) with HELP, no
// duplicate series, non-negative counters, and internally consistent
// histograms — le labels parse and strictly ascend, bucket counts are
// cumulative, the +Inf bucket exists and equals _count, and _sum/_count
// are present exactly once per label set.
func LintText(b []byte) error {
	fams, err := ParseText(b)
	if err != nil {
		return err
	}
	for _, f := range fams {
		if f.Type == "" || f.Type == "untyped" {
			return fmt.Errorf("%s: missing TYPE", f.Name)
		}
		if f.Help == "" {
			return fmt.Errorf("%s: missing HELP", f.Name)
		}
		seen := map[string]bool{}
		for _, s := range f.Samples {
			key := s.Name + seriesKey(s.Labels)
			if seen[key] {
				return fmt.Errorf("%s: duplicate series %s", f.Name, key)
			}
			seen[key] = true
			if f.Type == "counter" && s.Value < 0 {
				return fmt.Errorf("%s: negative counter %s = %v", f.Name, key, s.Value)
			}
		}
		if f.Type == "histogram" {
			if err := lintHistogram(f); err != nil {
				return err
			}
		}
	}
	return nil
}

// lintHistogram checks one histogram family, grouping its samples by
// label set minus le.
func lintHistogram(f TextFamily) error {
	type group struct {
		les     []float64
		counts  []float64
		sum     *float64
		count   *float64
		infSeen bool
	}
	groups := map[string]*group{}
	get := func(labels []TextLabel) *group {
		var rest []TextLabel
		for _, l := range labels {
			if l.Name != "le" {
				rest = append(rest, l)
			}
		}
		k := seriesKey(rest)
		g, ok := groups[k]
		if !ok {
			g = &group{}
			groups[k] = g
		}
		return g
	}
	for _, s := range f.Samples {
		switch s.Name {
		case f.Name + "_bucket":
			g := get(s.Labels)
			leStr, ok := s.Get("le")
			if !ok {
				return fmt.Errorf("%s: bucket without le label", f.Name)
			}
			le, err := strconv.ParseFloat(leStr, 64)
			if err != nil {
				return fmt.Errorf("%s: bad le %q", f.Name, leStr)
			}
			if math.IsInf(le, 1) {
				g.infSeen = true
			}
			g.les = append(g.les, le)
			g.counts = append(g.counts, s.Value)
		case f.Name + "_sum":
			v := s.Value
			get(s.Labels).sum = &v
		case f.Name + "_count":
			v := s.Value
			get(s.Labels).count = &v
		default:
			return fmt.Errorf("%s: stray sample %s in histogram family", f.Name, s.Name)
		}
	}
	for k, g := range groups {
		if len(g.les) == 0 {
			return fmt.Errorf("%s%s: no buckets", f.Name, k)
		}
		for i := 1; i < len(g.les); i++ {
			if g.les[i] <= g.les[i-1] {
				return fmt.Errorf("%s%s: le not ascending (%v after %v)", f.Name, k, g.les[i], g.les[i-1])
			}
			if g.counts[i] < g.counts[i-1] {
				return fmt.Errorf("%s%s: bucket counts not cumulative at le=%v", f.Name, k, g.les[i])
			}
		}
		if !g.infSeen {
			return fmt.Errorf("%s%s: missing +Inf bucket", f.Name, k)
		}
		if g.sum == nil || g.count == nil {
			return fmt.Errorf("%s%s: missing _sum or _count", f.Name, k)
		}
		if *g.count != g.counts[len(g.counts)-1] {
			return fmt.Errorf("%s%s: _count %v != +Inf bucket %v", f.Name, k, *g.count, g.counts[len(g.counts)-1])
		}
	}
	return nil
}

// seriesKey renders a label set sorted by name: `{a="1",b="2"}`, "" for
// no labels.
func seriesKey(labels []TextLabel) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]TextLabel(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	out := "{"
	for i, l := range ls {
		if i > 0 {
			out += ","
		}
		out += l.Name + `="` + escapeLabel(l.Value) + `"`
	}
	return out + "}"
}

// Values flattens parsed families into a series-key → value map. Keys
// are the bare metric name for unlabeled series and name{labels sorted
// by name} otherwise — histogram expansions appear under their
// _bucket/_sum/_count names. The shape hdvslo diffs scrapes with.
func Values(fams []TextFamily) map[string]float64 {
	out := make(map[string]float64)
	for _, f := range fams {
		for _, s := range f.Samples {
			out[s.Name+seriesKey(s.Labels)] = s.Value
		}
	}
	return out
}
