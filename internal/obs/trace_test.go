package obs

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"
)

// fakeClock advances a fixed step per reading, so phase durations are
// exact and no test sleeps.
type fakeClock struct {
	t    time.Time
	step time.Duration
}

func (c *fakeClock) now() time.Time {
	c.t = c.t.Add(c.step)
	return c.t
}

func TestTracePhasesAndServerTiming(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0), step: 10 * time.Millisecond}
	tr := NewTraceClock(clk.now)
	tr.Start("cache").End() // start+end = one step = 10ms
	sp := tr.Start("enc")
	inner := tr.Start("sub") // interleaved span
	inner.End()
	sp.End() // 3 steps = 30ms
	got := tr.ServerTiming()
	want := "cache;dur=10.000, sub;dur=10.000, enc;dur=30.000"
	if got != want {
		t.Errorf("ServerTiming = %q, want %q", got, want)
	}
	ph := tr.Phases()
	if len(ph) != 3 || ph[2].Name != "enc" || ph[2].MS != 30 {
		t.Errorf("Phases = %+v", ph)
	}
}

func TestSpanEndIdempotentAndNilSafe(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0), step: time.Millisecond}
	tr := NewTraceClock(clk.now)
	sp := tr.Start("x")
	if d := sp.End(); d != time.Millisecond {
		t.Errorf("first End = %v", d)
	}
	if d := sp.End(); d != 0 {
		t.Errorf("second End = %v, want 0", d)
	}
	var nilSpan *Span
	nilSpan.End()
	var nilTrace *Trace
	if nilTrace.Start("x") != nil || nilTrace.ServerTiming() != "" || nilTrace.Phases() != nil {
		t.Error("nil trace not inert")
	}
	if tr2 := NewTrace(); tr2.ServerTiming() != "" {
		t.Error("empty trace should render empty")
	}
}

func TestNewRequestID(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if len(a) != 16 || a == b {
		t.Fatalf("ids: %q %q", a, b)
	}
}

func TestRequestLogRingAndJSON(t *testing.T) {
	l := NewRequestLog(3)
	for i := 1; i <= 5; i++ {
		l.Add(RequestRecord{ID: fmt.Sprintf("r%d", i), Status: 200})
	}
	recs := l.Snapshot()
	if len(recs) != 3 || recs[0].ID != "r5" || recs[2].ID != "r3" {
		t.Fatalf("Snapshot = %+v", recs)
	}
	rec := httptest.NewRecorder()
	l.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/requests", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var body struct {
		Requests []RequestRecord `json:"requests"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if len(body.Requests) != 3 || body.Requests[0].ID != "r5" {
		t.Fatalf("JSON requests = %+v", body.Requests)
	}
	// Empty ring must serve [] rather than null.
	rec2 := httptest.NewRecorder()
	NewRequestLog(2).ServeHTTP(rec2, httptest.NewRequest("GET", "/debug/requests", nil))
	if got := rec2.Body.String(); got != "{\"requests\":[]}\n" {
		t.Errorf("empty ring body = %q", got)
	}
}
