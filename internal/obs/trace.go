package obs

import (
	"crypto/rand"
	"encoding/hex"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Trace accumulates named, timed phases of one request. Handlers open a
// Span per stage (cache lookup, encode, cache commit, body write) and
// the finished trace renders as a Server-Timing header value or as the
// phase list in a /debug/requests record. Safe for concurrent use,
// though a request's phases normally come from one goroutine.
type Trace struct {
	now func() time.Time

	mu     sync.Mutex
	phases []Phase // guarded by mu
}

// Phase is one completed span, duration in milliseconds — the JSON shape
// /debug/requests exposes.
type Phase struct {
	Name string  `json:"name"`
	MS   float64 `json:"ms"`
}

// NewTrace returns a trace on the real clock.
func NewTrace() *Trace { return &Trace{now: time.Now} }

// NewTraceClock returns a trace on an injected clock, for deterministic
// tests.
func NewTraceClock(now func() time.Time) *Trace { return &Trace{now: now} }

// Start opens a named span. End it to record the phase; an unended span
// records nothing.
func (t *Trace) Start(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, name: name, t0: t.now()}
}

// Span is one in-flight phase of a Trace.
type Span struct {
	t     *Trace
	name  string
	t0    time.Time
	ended bool
}

// End closes the span, records it on the trace, and returns its
// duration. Ending twice (or ending a nil span) is a no-op.
func (s *Span) End() time.Duration {
	if s == nil || s.ended {
		return 0
	}
	s.ended = true
	d := s.t.now().Sub(s.t0)
	s.t.mu.Lock()
	s.t.phases = append(s.t.phases, Phase{Name: s.name, MS: float64(d) / float64(time.Millisecond)})
	s.t.mu.Unlock()
	return d
}

// Phases returns the completed phases in completion order.
func (t *Trace) Phases() []Phase {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Phase(nil), t.phases...)
}

// ServerTiming renders the completed phases as a Server-Timing header
// value: `cache;dur=0.412, enc;dur=183.220, write;dur=5.001`. Empty
// traces render as "".
func (t *Trace) ServerTiming() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := ""
	for i, p := range t.phases {
		if i > 0 {
			out += ", "
		}
		out += p.Name + ";dur=" + strconv.FormatFloat(p.MS, 'f', 3, 64)
	}
	return out
}

var reqSeq atomic.Uint64

// NewRequestID returns a fresh 16-hex-char request identifier, falling
// back to a process-local sequence if the system randomness source
// fails (IDs must never be empty once a handler has promised one).
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "req-" + strconv.FormatUint(reqSeq.Add(1), 10)
	}
	return hex.EncodeToString(b[:])
}
