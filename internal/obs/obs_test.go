package obs

import (
	"math"
	"strings"
	"testing"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	reqs := r.Counter("reqs_total", "Requests by method.", "method")
	reqs.With("GET").Add(3)
	reqs.With("POST") // touched but never incremented: must expose as 0
	r.Gauge("active", "In-flight requests.").With().Set(2)
	r.Counter("plain_total", "Unlabeled counter.") // auto-exposes 0

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP reqs_total Requests by method.
# TYPE reqs_total counter
reqs_total{method="GET"} 3
reqs_total{method="POST"} 0
# HELP active In-flight requests.
# TYPE active gauge
active 2
# HELP plain_total Unlabeled counter.
# TYPE plain_total counter
plain_total 0
`
	if sb.String() != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestHistogramExposition(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.1, 1, 10}, "path")
	s := h.With("/x")
	s.Observe(0.05) // le 0.1
	s.Observe(0.5)  // le 1
	s.Observe(0.1)  // boundary: le is inclusive, belongs to 0.1
	s.Observe(99)   // +Inf only

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP lat_seconds Latency.
# TYPE lat_seconds histogram
lat_seconds_bucket{path="/x",le="0.1"} 2
lat_seconds_bucket{path="/x",le="1"} 3
lat_seconds_bucket{path="/x",le="10"} 3
lat_seconds_bucket{path="/x",le="+Inf"} 4
lat_seconds_sum{path="/x"} 99.65
lat_seconds_count{path="/x"} 4
`
	if sb.String() != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}
	if got := s.Count(); got != 4 {
		t.Errorf("Count() = %d, want 4", got)
	}
	if got := s.Sum(); math.Abs(got-99.65) > 1e-9 {
		t.Errorf("Sum() = %v, want 99.65", got)
	}
}

func TestLabelAndHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "Help with \\ backslash\nand newline.", "p").
		With("a\"b\\c\nd").Inc()
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP esc_total Help with \\ backslash\nand newline.
# TYPE esc_total counter
esc_total{p="a\"b\\c\nd"} 1
`
	if sb.String() != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}
	// And it must round-trip through our own parser.
	fams, err := ParseText([]byte(sb.String()))
	if err != nil {
		t.Fatalf("ParseText: %v", err)
	}
	if fams[0].Help != "Help with \\ backslash\nand newline." {
		t.Errorf("help round-trip: %q", fams[0].Help)
	}
	if v, _ := fams[0].Samples[0].Get("p"); v != "a\"b\\c\nd" {
		t.Errorf("label round-trip: %q", v)
	}
}

func TestFuncMetricsReadAtScrape(t *testing.T) {
	r := NewRegistry()
	v := 7.0
	r.CounterFunc("fn_total", "Scrape-time counter.", func() float64 { return v })
	r.GaugeFunc("fn_gauge", "Scrape-time gauge.", func() float64 { return -v })
	var sb strings.Builder
	r.WriteText(&sb)
	if !strings.Contains(sb.String(), "fn_total 7\n") || !strings.Contains(sb.String(), "fn_gauge -7\n") {
		t.Fatalf("scrape 1: %s", sb.String())
	}
	v = 9
	sb.Reset()
	r.WriteText(&sb)
	if !strings.Contains(sb.String(), "fn_total 9\n") {
		t.Fatalf("scrape 2 did not re-evaluate: %s", sb.String())
	}
}

func TestRegistryPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("dup_total", "x.")
	expectPanic("duplicate name", func() { r.Counter("dup_total", "y.") })
	expectPanic("bad metric name", func() { r.Counter("0bad", "x.") })
	expectPanic("bad label name", func() { r.Counter("ok_total", "x.", "0bad") })
	expectPanic("reserved le", func() { r.Histogram("h_ok", "x.", nil, "le") })
	expectPanic("unsorted buckets", func() { r.Histogram("h_bad", "x.", []float64{1, 1}) })
	v := r.Counter("lbl_total", "x.", "a", "b")
	expectPanic("label arity", func() { v.With("only-one") })
}

func TestNilSafety(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var col *Collector
	c.Inc()
	c.Add(1)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	col.ChunkQueued()
	col.ChunkDone()
	col.ObserveChunkEncode(0)
	col.ObserveDrainStall(0)
	col.ObserveGateWait(0)
	col.SliceSpawned()
	col.SliceInline()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil cells reported nonzero")
	}
	// Partially populated collector: nil fields must also be safe.
	part := &Collector{}
	part.ChunkQueued()
	part.ObserveChunkEncode(0)
	part.SliceSpawned()
}

func TestCounterIgnoresNegative(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("neg_total", "x.").With()
	c.Add(5)
	c.Add(-3)
	if c.Value() != 5 {
		t.Fatalf("counter after negative add = %v, want 5", c.Value())
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(0.001, 2, 4)
	want := []float64{0.001, 0.002, 0.004, 0.008}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-12 {
			t.Fatalf("ExpBuckets = %v, want %v", b, want)
		}
	}
}
