package obs

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

// RequestRecord is one completed request as exposed by /debug/requests.
type RequestRecord struct {
	ID         string  `json:"id"`
	Time       string  `json:"time"` // RFC 3339, start of request
	Method     string  `json:"method"`
	Path       string  `json:"path"` // request URI including query (the stream parameters)
	Status     int     `json:"status"`
	Bytes      int64   `json:"bytes"`
	Cache      string  `json:"cache"` // hit, miss, or none
	DurationMS float64 `json:"duration_ms"`
	Phases     []Phase `json:"phases,omitempty"`
}

// RequestLog is a fixed-size ring of the last N completed requests. Add
// and Snapshot are safe for concurrent use; it also serves itself as
// JSON (`{"requests":[...]}`, newest first) for the debug mux.
type RequestLog struct {
	mu   sync.Mutex
	ring []RequestRecord // guarded by mu
	next int             // guarded by mu
	full bool            // guarded by mu
}

// NewRequestLog returns a ring holding the last n requests (minimum 1).
func NewRequestLog(n int) *RequestLog {
	if n < 1 {
		n = 1
	}
	return &RequestLog{ring: make([]RequestRecord, n)}
}

// Add records one completed request, evicting the oldest when full.
func (l *RequestLog) Add(rec RequestRecord) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.ring[l.next] = rec
	l.next++
	if l.next == len(l.ring) {
		l.next, l.full = 0, true
	}
	l.mu.Unlock()
}

// Snapshot returns the recorded requests, newest first.
func (l *RequestLog) Snapshot() []RequestRecord {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.next
	if l.full {
		n = len(l.ring)
	}
	out := make([]RequestRecord, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, l.ring[(l.next-i+len(l.ring))%len(l.ring)])
	}
	return out
}

// ServeHTTP renders the ring as JSON for the debug mux.
func (l *RequestLog) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	recs := l.Snapshot()
	if recs == nil {
		recs = []RequestRecord{}
	}
	json.NewEncoder(w).Encode(struct {
		Requests []RequestRecord `json:"requests"`
	}{recs})
}

// StartTime formats a request start for RequestRecord.Time.
func StartTime(t time.Time) string { return t.UTC().Format(time.RFC3339Nano) }
