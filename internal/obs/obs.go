// Package obs is the observability layer of the serving tier: a
// race-safe metrics registry (labeled counters, gauges and log-bucketed
// histograms with exact Prometheus text exposition), a lightweight span
// API for per-request phase timing (Server-Timing and the /debug/requests
// ring feed off it), and the Collector hook the encode pipeline reports
// chunk/queue/gate measurements through.
//
// The registry deliberately reimplements the small slice of the
// Prometheus client this repository needs instead of importing it: the
// container bakes in no dependencies beyond the standard library, and
// the exposition format is simple enough that owning it buys an exact,
// lint-tested text writer (see ParseText/LintText) at a few hundred
// lines. Counters and gauges are float64s updated by atomic
// compare-and-swap; histograms are fixed-boundary buckets of atomic
// int64s cumulated at scrape time, so Observe is lock-free. Families
// expose in registration order, series within a family in sorted label
// order, which keeps scrapes deterministic and diffable.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// --- value cells -------------------------------------------------------------

// Counter is a monotonically increasing float64 series. The zero value
// is unregistered; obtain counters from a Registry. All methods are safe
// on a nil receiver (they no-op), so optional instrumentation needs no
// call-site guards.
type Counter struct {
	bits atomic.Uint64 // float64 bits
}

// Add increases the counter by v. Negative v is ignored — counters only
// go up; use a Gauge for values that move both ways.
func (c *Counter) Add(v float64) {
	if c == nil || v < 0 {
		return
	}
	addFloat(&c.bits, v)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value reports the current total.
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a float64 series that can move in both directions. Like
// Counter, all methods no-op on a nil receiver.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add moves the gauge by v (negative moves it down).
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	addFloat(&g.bits, v)
}

// Value reports the current level.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Histogram counts observations into fixed, ascending upper-bound
// buckets (an implicit +Inf bucket catches the overflow) and tracks the
// observation sum — the Prometheus histogram model, cumulated at scrape
// time so Observe itself is a single atomic add. Methods no-op on nil.
type Histogram struct {
	bounds []float64      // ascending upper bounds, +Inf excluded
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf overflow
	sum    atomic.Uint64  // float64 bits
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.counts[sort.SearchFloat64s(h.bounds, v)].Add(1)
	addFloat(&h.sum, v)
}

// ObserveSince records the seconds elapsed since t0 — the common shape
// for latency series.
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(t0).Seconds())
}

// Count reports the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum reports the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// ExpBuckets returns n exponential bucket bounds: start, start×factor,
// start×factor², ... — the log-bucketed shape latency series want.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// DefTimeBuckets is the default latency bucket layout: 1ms to ~16s,
// doubling — wide enough to straddle both a cache hit served off disk
// and a 4K cold encode on a loaded box.
var DefTimeBuckets = ExpBuckets(0.001, 2, 15)

// --- registry ----------------------------------------------------------------

var (
	nameRE  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRE = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// Registry holds metric families and writes them in the Prometheus text
// exposition format. All methods are safe for concurrent use; scrapes
// run concurrently with updates.
type Registry struct {
	mu    sync.Mutex
	fams  []*family       // guarded by mu
	names map[string]bool // guarded by mu
}

type family struct {
	name, help, kind string
	labels           []string
	bounds           []float64      // histogram only
	fn               func() float64 // Func variants: evaluated at scrape

	mu     sync.Mutex
	series map[string]*series // guarded by mu
}

type series struct {
	values []string // label values, in declaration order
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

func (r *Registry) add(f *family) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !nameRE.MatchString(f.name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", f.name))
	}
	if r.names[f.name] {
		panic(fmt.Sprintf("obs: metric %q registered twice", f.name))
	}
	for _, l := range f.labels {
		if !labelRE.MatchString(l) || l == "le" {
			panic(fmt.Sprintf("obs: invalid label name %q on %q", l, f.name))
		}
	}
	r.names[f.name] = true
	//hdvlint:allow lockcheck -- f is not yet published; add is the registration point, no series reader exists
	f.series = make(map[string]*series)
	r.fams = append(r.fams, f)
}

// Counter registers a counter family with the given label names (none
// for a single unlabeled series). Duplicate names panic — metric
// registration is program structure, not input.
func (r *Registry) Counter(name, help string, labels ...string) *CounterVec {
	f := &family{name: name, help: help, kind: "counter", labels: labels}
	r.add(f)
	v := &CounterVec{f: f}
	if len(labels) == 0 {
		v.With() // unlabeled families expose a zero-valued sample immediately
	}
	return v
}

// Gauge registers a gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) *GaugeVec {
	f := &family{name: name, help: help, kind: "gauge", labels: labels}
	r.add(f)
	v := &GaugeVec{f: f}
	if len(labels) == 0 {
		v.With()
	}
	return v
}

// Histogram registers a histogram family with the given ascending
// bucket upper bounds (+Inf is implicit; nil selects DefTimeBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if bounds == nil {
		bounds = DefTimeBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not ascending", name))
		}
	}
	f := &family{name: name, help: help, kind: "histogram", labels: labels,
		bounds: append([]float64(nil), bounds...)}
	r.add(f)
	v := &HistogramVec{f: f}
	if len(labels) == 0 {
		v.With()
	}
	return v
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the shape for totals owned elsewhere (the GOP cache's hit
// counts live in gopcache; mirroring them through a writable counter
// would just skew).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.add(&family{name: name, help: help, kind: "counter", fn: fn})
}

// GaugeFunc registers a scrape-time gauge.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.add(&family{name: name, help: help, kind: "gauge", fn: fn})
}

// CounterVec is a counter family; With resolves one labeled series.
type CounterVec struct{ f *family }

// With returns the series for the given label values (created on first
// use), panicking on a label-count mismatch.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.with(values).c
}

// GaugeVec is a gauge family.
type GaugeVec struct{ f *family }

// With returns the series for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.with(values).g
}

// HistogramVec is a histogram family.
type HistogramVec struct{ f *family }

// With returns the series for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.with(values).h
}

func (f *family) with(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: %s: %d label values for %d labels", f.name, len(values), len(f.labels)))
	}
	key := labelKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.series[key]
	if !ok {
		s = &series{values: append([]string(nil), values...)}
		switch f.kind {
		case "counter":
			s.c = &Counter{}
		case "gauge":
			s.g = &Gauge{}
		case "histogram":
			s.h = &Histogram{bounds: f.bounds, counts: make([]atomic.Int64, len(f.bounds)+1)}
		}
		f.series[key] = s
	}
	return s
}

// labelKey joins label values with a separator that cannot appear in
// them unescaped (0xff is invalid UTF-8, and label values are opaque
// bytes here anyway).
func labelKey(values []string) string {
	out := ""
	for _, v := range values {
		out += v + "\xff"
	}
	return out
}

// --- exposition --------------------------------------------------------------

// WriteText writes every family in the Prometheus text exposition
// format (version 0.0.4): HELP and TYPE lines, then samples; histograms
// expand to cumulative _bucket series plus _sum and _count. The output
// passes LintText by construction.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	r.mu.Unlock()
	bw := bufio.NewWriter(w)
	for _, f := range fams {
		f.write(bw)
	}
	return bw.Flush()
}

func (f *family) write(w *bufio.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
	if f.fn != nil {
		fmt.Fprintf(w, "%s %s\n", f.name, formatValue(f.fn()))
		return
	}
	f.mu.Lock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ordered := make([]*series, len(keys))
	for i, k := range keys {
		ordered[i] = f.series[k]
	}
	f.mu.Unlock()
	for _, s := range ordered {
		switch f.kind {
		case "counter":
			fmt.Fprintf(w, "%s%s %s\n", f.name, renderLabels(f.labels, s.values, "", ""), formatValue(s.c.Value()))
		case "gauge":
			fmt.Fprintf(w, "%s%s %s\n", f.name, renderLabels(f.labels, s.values, "", ""), formatValue(s.g.Value()))
		case "histogram":
			var cum int64
			for i, ub := range f.bounds {
				cum += s.h.counts[i].Load()
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
					renderLabels(f.labels, s.values, "le", formatValue(ub)), cum)
			}
			cum += s.h.counts[len(f.bounds)].Load()
			fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
				renderLabels(f.labels, s.values, "le", "+Inf"), cum)
			fmt.Fprintf(w, "%s_sum%s %s\n", f.name, renderLabels(f.labels, s.values, "", ""), formatValue(s.h.Sum()))
			fmt.Fprintf(w, "%s_count%s %d\n", f.name, renderLabels(f.labels, s.values, "", ""), cum)
		}
	}
}

// renderLabels renders {k1="v1",...}, appending the extra pair (the
// histogram le) when extraKey is non-empty; no labels renders as "".
func renderLabels(names, values []string, extraKey, extraVal string) string {
	if len(names) == 0 && extraKey == "" {
		return ""
	}
	out := "{"
	for i, n := range names {
		if i > 0 {
			out += ","
		}
		out += n + `="` + escapeLabel(values[i]) + `"`
	}
	if extraKey != "" {
		if len(names) > 0 {
			out += ","
		}
		out += extraKey + `="` + escapeLabel(extraVal) + `"`
	}
	return out + "}"
}

func formatValue(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the text format: backslash,
// double quote, and newline.
func escapeLabel(v string) string {
	out := make([]byte, 0, len(v))
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '"':
			out = append(out, '\\', '"')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, v[i])
		}
	}
	return string(out)
}

// escapeHelp escapes a HELP string: backslash and newline only.
func escapeHelp(v string) string {
	out := make([]byte, 0, len(v))
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, v[i])
		}
	}
	return string(out)
}
