package obs

import (
	"strings"
	"testing"
)

// TestLintOwnOutput is the closing of the loop: everything the registry
// can emit must pass the linter.
func TestLintOwnOutput(t *testing.T) {
	r := NewRegistry()
	reqs := r.Counter("t_reqs_total", "Requests.", "method", "path")
	reqs.With("GET", "/a\"b").Add(2)
	reqs.With("POST", "line\nbreak").Inc()
	r.Gauge("t_depth", "Depth.").With().Set(-3)
	h := r.Histogram("t_lat_seconds", "Latency.", nil, "codec")
	h.With("h264").Observe(0.01)
	h.With("mpeg2").Observe(4)
	r.CounterFunc("t_fn_total", "Fn.", func() float64 { return 1 })
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if err := LintText([]byte(sb.String())); err != nil {
		t.Fatalf("own output failed lint: %v\n%s", err, sb.String())
	}
}

func TestParseTextSamples(t *testing.T) {
	in := `# HELP x_total Things.
# TYPE x_total counter
x_total{a="1",b="two"} 5 1700000000000
x_total{a="2"} 0.5
# TYPE y gauge
# HELP y A gauge.
y -2.5
`
	fams, err := ParseText([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 2 {
		t.Fatalf("families = %d, want 2", len(fams))
	}
	x := fams[0]
	if x.Name != "x_total" || x.Type != "counter" || x.Help != "Things." || len(x.Samples) != 2 {
		t.Fatalf("x family: %+v", x)
	}
	if v, _ := x.Samples[0].Get("b"); v != "two" || x.Samples[0].Value != 5 {
		t.Fatalf("x sample 0: %+v", x.Samples[0])
	}
	if fams[1].Samples[0].Value != -2.5 {
		t.Fatalf("y sample: %+v", fams[1].Samples[0])
	}
	vals := Values(fams)
	if vals[`x_total{a="2"}`] != 0.5 || vals["y"] != -2.5 {
		t.Fatalf("Values: %v", vals)
	}
}

func TestParseTextRejectsMalformed(t *testing.T) {
	bad := []string{
		"x_total{a=1} 5\n",          // unquoted label value
		"x_total{a=\"1\" 5\n",       // unterminated label set
		"x_total{a=\"\\x\"} 5\n",    // bad escape
		"x_total\n",                 // no value
		"x_total notanumber\n",      // bad value
		"# TYPE x_total notatype\n", // unknown type
		"# TYPE x_total counter\n# TYPE x_total counter\n", // duplicate TYPE
		"0bad 5\n", // invalid metric name
	}
	for _, in := range bad {
		if _, err := ParseText([]byte(in)); err == nil {
			t.Errorf("ParseText accepted %q", in)
		}
	}
}

func TestLintCatchesBrokenHistograms(t *testing.T) {
	cases := map[string]string{
		"non-monotone le": `# HELP h Latency.
# TYPE h histogram
h_bucket{le="1"} 1
h_bucket{le="0.5"} 1
h_bucket{le="+Inf"} 1
h_sum 1
h_count 1
`,
		"non-cumulative counts": `# HELP h Latency.
# TYPE h histogram
h_bucket{le="1"} 3
h_bucket{le="2"} 2
h_bucket{le="+Inf"} 3
h_sum 1
h_count 3
`,
		"missing +Inf": `# HELP h Latency.
# TYPE h histogram
h_bucket{le="1"} 1
h_sum 1
h_count 1
`,
		"count mismatch": `# HELP h Latency.
# TYPE h histogram
h_bucket{le="1"} 1
h_bucket{le="+Inf"} 2
h_sum 1
h_count 3
`,
		"missing sum": `# HELP h Latency.
# TYPE h histogram
h_bucket{le="+Inf"} 1
h_count 1
`,
		"duplicate series": `# HELP c Total.
# TYPE c counter
c{a="1"} 1
c{a="1"} 2
`,
		"negative counter": `# HELP c Total.
# TYPE c counter
c -1
`,
		"missing help": `# TYPE c counter
c 1
`,
	}
	for name, in := range cases {
		if err := LintText([]byte(in)); err == nil {
			t.Errorf("%s: lint passed", name)
		}
	}
}

func TestLintAcceptsLabeledHistogramGroups(t *testing.T) {
	in := `# HELP h Latency.
# TYPE h histogram
h_bucket{c="a",le="1"} 1
h_bucket{c="a",le="+Inf"} 2
h_sum{c="a"} 3
h_count{c="a"} 2
h_bucket{c="b",le="1"} 0
h_bucket{c="b",le="+Inf"} 1
h_sum{c="b"} 9
h_count{c="b"} 1
`
	if err := LintText([]byte(in)); err != nil {
		t.Fatalf("lint: %v", err)
	}
}
