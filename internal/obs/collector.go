package obs

import "time"

// Collector is the hook the encode pipeline reports through. The serving
// tier builds one against its registry and threads it down via
// EncoderOptions; a nil *Collector (the default everywhere outside the
// server) disables collection with no call-site guards — every method
// no-ops on nil, and the underlying metric cells are themselves
// nil-safe, so a partially populated Collector also works.
type Collector struct {
	// ChunkEncode observes the wall seconds a worker spent coding one
	// closed-GOP chunk (codec construction + EncodeChunk).
	ChunkEncode *Histogram
	// DrainStall observes the seconds the reader waited on the ordered
	// drain for the oldest in-flight chunk — near-zero when the pool
	// keeps ahead of the consumer, the head-of-line stall otherwise.
	DrainStall *Histogram
	// QueueDepth gauges chunks submitted to the encode pool and not yet
	// coded or dropped.
	QueueDepth *Gauge
	// GateWait observes the seconds a SliceGate dispatcher waited for
	// its spawned slice stragglers after finishing its own share.
	GateWait *Histogram
	// GateSpawned / GateInline count slice jobs that won a gate token
	// (ran on their own goroutine) vs ran inline on the dispatcher.
	GateSpawned *Counter
	GateInline  *Counter
	// WavefrontWait observes the seconds a wavefront row worker spent
	// parked waiting for its top-right dependency (the row above) — the
	// scheduler's stall signal: near-zero when rows stay staggered, the
	// dependency-chain cost otherwise.
	WavefrontWait *Histogram
	// FrontDepth observes the goroutines participating in one wavefront
	// front (caller plus token-funded helpers) — how wide the diagonal
	// actually ran, bounded by rows and by the tokens the slice/chunk
	// levels left available.
	FrontDepth *Histogram
}

// ChunkQueued notes one chunk entering the encode pool.
func (c *Collector) ChunkQueued() {
	if c != nil {
		c.QueueDepth.Add(1)
	}
}

// ChunkDone notes one chunk leaving the pool (coded, failed, or dropped
// on abort) — the balancing decrement for ChunkQueued.
func (c *Collector) ChunkDone() {
	if c != nil {
		c.QueueDepth.Add(-1)
	}
}

// ObserveChunkEncode records one chunk's encode wall time.
func (c *Collector) ObserveChunkEncode(d time.Duration) {
	if c != nil {
		c.ChunkEncode.Observe(d.Seconds())
	}
}

// ObserveDrainStall records one reader wait on the ordered drain.
func (c *Collector) ObserveDrainStall(d time.Duration) {
	if c != nil {
		c.DrainStall.Observe(d.Seconds())
	}
}

// ObserveGateWait records one dispatcher's straggler wait.
func (c *Collector) ObserveGateWait(d time.Duration) {
	if c != nil {
		c.GateWait.Observe(d.Seconds())
	}
}

// SliceSpawned counts a slice job dispatched to its own goroutine.
func (c *Collector) SliceSpawned() {
	if c != nil {
		c.GateSpawned.Inc()
	}
}

// SliceInline counts a slice job run inline for want of a gate token.
func (c *Collector) SliceInline() {
	if c != nil {
		c.GateInline.Inc()
	}
}

// ObserveWavefrontWait records one parked dependency wait of a wavefront
// row worker.
func (c *Collector) ObserveWavefrontWait(d time.Duration) {
	if c != nil {
		c.WavefrontWait.Observe(d.Seconds())
	}
}

// ObserveFrontDepth records the goroutine count of one wavefront front.
func (c *Collector) ObserveFrontDepth(n int) {
	if c != nil {
		c.FrontDepth.Observe(float64(n))
	}
}
