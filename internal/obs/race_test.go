package obs

import (
	"io"
	"strings"
	"sync"
	"testing"
)

// TestRegistryHammer drives every registry surface from many goroutines
// at once — updates, series creation, and scrapes — so `go test -race`
// proves the locking. Values are also checked: the counter total must
// equal exactly what was added.
func TestRegistryHammer(t *testing.T) {
	const (
		workers = 8
		iters   = 2000
	)
	r := NewRegistry()
	c := r.Counter("hammer_total", "Hammered counter.", "worker")
	g := r.Gauge("hammer_gauge", "Hammered gauge.")
	h := r.Histogram("hammer_seconds", "Hammered histogram.", nil, "worker")
	r.GaugeFunc("hammer_fn", "Scrape-time.", func() float64 { return 1 })

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lbl := string(rune('a' + w))
			for i := 0; i < iters; i++ {
				c.With(lbl).Inc()
				g.With().Add(1)
				g.With().Add(-1)
				h.With(lbl).Observe(float64(i%10) / 1000)
			}
		}(w)
	}
	// Concurrent scrapers: output is discarded here; a final scrape is
	// linted after the writers join.
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				r.WriteText(io.Discard)
			}
		}()
	}
	wg.Wait()

	var total float64
	for w := 0; w < workers; w++ {
		lbl := string(rune('a' + w))
		v := c.With(lbl).Value()
		if v != iters {
			t.Errorf("worker %s counter = %v, want %d", lbl, v, iters)
		}
		total += v
		if n := h.With(lbl).Count(); n != iters {
			t.Errorf("worker %s histogram count = %d, want %d", lbl, n, iters)
		}
	}
	if total != workers*iters {
		t.Errorf("counter total = %v, want %d", total, workers*iters)
	}
	if v := g.With().Value(); v != 0 {
		t.Errorf("gauge = %v, want 0", v)
	}
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if err := LintText([]byte(sb.String())); err != nil {
		t.Fatalf("post-hammer scrape failed lint: %v", err)
	}
}

// TestRequestLogHammer races Add against Snapshot/ServeHTTP.
func TestRequestLogHammer(t *testing.T) {
	l := NewRequestLog(16)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				l.Add(RequestRecord{ID: "x", Status: 200, Bytes: int64(i)})
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			if got := len(l.Snapshot()); got > 16 {
				t.Errorf("snapshot len %d > ring size", got)
				return
			}
		}
	}()
	wg.Wait()
	if got := len(l.Snapshot()); got != 16 {
		t.Errorf("final snapshot len = %d, want 16", got)
	}
}
