package core

import (
	"fmt"
	"io"

	"hdvideobench/internal/codec"
	"hdvideobench/internal/container"
	"hdvideobench/internal/frame"
	"hdvideobench/internal/kernel"
	"hdvideobench/internal/obs"
	"hdvideobench/internal/pipeline"
	"hdvideobench/internal/stream"
)

// NewStreamEncoder builds the bounded-memory streaming encoder for a
// codec: frames go in through Write, coded packets come out of
// ReadPacket, and at most window closed-GOP chunks (cfg.IntraPeriod
// frames each) are in flight at once. workers <= 1 or
// cfg.IntraPeriod <= 0 runs the serial single-instance mode; negative
// workers selects runtime.NumCPU(). Output is byte-identical to the
// batch path for every worker count and window. col, when non-nil,
// receives the pipeline's self-measurements (chunk encode time, queue
// depth, drain stalls, slice-gate waits); nil disables collection.
func NewStreamEncoder(id CodecID, cfg codec.Config, workers, window int, col *obs.Collector) (*stream.Encoder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if workers < 0 {
		workers = pipeline.Workers(0)
	}
	return stream.NewEncoder(func() (codec.Encoder, error) {
		return NewEncoder(id, cfg)
	}, cfg.IntraPeriod, workers, window, col)
}

// NewStreamDecoder builds the streaming decoder for a coded stream
// header: packets go in through Write, display-order frames come out of
// ReadFrame, with at most window closed-GOP segments in flight.
// workers <= 1 selects the serial mode; negative workers selects
// runtime.NumCPU().
func NewStreamDecoder(hdr container.Header, kern kernel.Set, workers, window int) (*stream.Decoder, error) {
	if workers < 0 {
		workers = pipeline.Workers(0)
	}
	return stream.NewDecoder(func() (codec.Decoder, error) {
		return NewDecoder(hdr, kern)
	}, workers, window)
}

// StreamStats summarizes one streaming pass.
type StreamStats struct {
	Frames int   // frames through the codec
	Bytes  int64 // container bytes on the coded side
}

// feed drives a source into a windowed stage from its writer goroutine,
// implementing the writer half of the teardown contract once for every
// pipeline: io.EOF from the source closes the stage cleanly, a source
// error aborts and closes it, and a write error (the stage is already
// dead or rejected the item) closes it — after notifying further
// upstream stages via onWriteFail, when there are any.
func feed[T any](next func() (T, error), write func(T) error, closeStage func() error, abort func(), onWriteFail func()) error {
	for {
		v, err := next()
		if err == io.EOF {
			return closeStage()
		}
		if err != nil {
			abort()
			closeStage()
			return err
		}
		if err := write(v); err != nil {
			if onWriteFail != nil {
				onWriteFail()
			}
			closeStage()
			return err
		}
	}
}

// drain is the reader half: it moves a stage's output into a sink until
// io.EOF, aborting the listed stages when the sink fails so blocked
// writers unblock.
func drain[T any](next func() (T, error), sink func(T) error, onSinkFail ...func()) error {
	for {
		v, err := next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := sink(v); err != nil {
			for _, abort := range onSinkFail {
				abort()
			}
			return err
		}
	}
}

// EncodeStream pulls display-order frames from next until it returns
// io.EOF, encodes them with the streaming engine, and writes the HDVB
// container to w incrementally — peak memory stays O(window × GOP)
// regardless of sequence length. Any error from next, the codec, or w
// tears the whole pipeline down and is returned.
//
// frames is the declared sequence length for the container header: when
// the caller knows it upfront (a server encoding an N-frame request),
// declaring it lets readers distinguish a truncated transfer from a
// complete stream — per-packet flushing means a dropped stream ends at
// a packet boundary, where an undeclared-length container looks
// perfectly complete. Pass 0 when the length is unknown (reading a file
// of frames until EOF); readers then consume until EOF, matching the
// batch path's header byte for byte.
//
// onGOP, when non-nil, is called once per closed-GOP chunk with the byte
// offset its first packet begins at in the container stream and the
// display index of its first (I) frame — the record the disk-backed GOP
// cache appends to entries so ranged/seeking clients get GOP-aligned
// spans. The output bytes are identical with and without the tap; only
// the drain granularity changes (whole chunks instead of single packets,
// so each chunk's coded packets are buffered before writing — use a
// bounded IntraPeriod when tapping, or a boundary-less stream degrades
// to one stream-sized chunk of coded bytes).
func EncodeStream(w io.Writer, id CodecID, cfg codec.Config, workers, window, frames int, next func() (*frame.Frame, error), onGOP func(offset int64, frame int), col *obs.Collector) (StreamStats, error) {
	enc, err := NewStreamEncoder(id, cfg, workers, window, col)
	if err != nil {
		return StreamStats{}, err
	}
	hdr := enc.Header()
	if frames > 0 {
		hdr.Frames = frames
	}
	sw, err := container.NewStreamWriter(w, hdr)
	if err != nil {
		enc.Abort()
		enc.Close()
		return StreamStats{}, err
	}

	feedErr := make(chan error, 1)
	go func() { feedErr <- feed(next, enc.Write, enc.Close, enc.Abort, nil) }()
	var werr error
	if onGOP == nil {
		werr = drain(enc.ReadPacket, func(p container.Packet) error {
			if err := sw.WritePacket(p); err != nil {
				return fmt.Errorf("core: writing stream: %w", err)
			}
			return nil
		}, enc.Abort)
	} else {
		// Chunk-granular drain: record where each GOP starts before its
		// first packet lands, still writing (and flushing) per packet.
		werr = drain(enc.ReadChunk, func(pkts []container.Packet) error {
			onGOP(sw.BytesWritten(), pkts[0].DisplayIndex)
			for _, p := range pkts {
				if err := sw.WritePacket(p); err != nil {
					return fmt.Errorf("core: writing stream: %w", err)
				}
			}
			return nil
		}, enc.Abort)
	}
	ferr := <-feedErr
	stats := StreamStats{Frames: sw.Count(), Bytes: sw.BytesWritten()}
	return stats, firstError(werr, ferr)
}

// DecodeStream reads an HDVB container from r incrementally, decodes it
// with the streaming engine, and hands each display-order frame to
// yield. An error from yield aborts the pipeline and is returned.
func DecodeStream(r io.Reader, kern kernel.Set, workers, window int, yield func(*frame.Frame) error) (container.Header, StreamStats, error) {
	sr, err := container.NewStreamReader(r)
	if err != nil {
		return container.Header{}, StreamStats{}, err
	}
	hdr := sr.Header()
	dec, err := NewStreamDecoder(hdr, kern, workers, window)
	if err != nil {
		return hdr, StreamStats{}, err
	}

	feedErr := make(chan error, 1)
	go func() { feedErr <- feed(sr.Next, dec.Write, dec.Close, dec.Abort, nil) }()
	frames := 0
	werr := drain(dec.ReadFrame, func(f *frame.Frame) error {
		if err := yield(f); err != nil {
			return err
		}
		frames++
		return nil
	}, dec.Abort)
	ferr := <-feedErr
	stats := StreamStats{Frames: frames, Bytes: sr.BytesRead()}
	return hdr, stats, firstError(werr, ferr)
}

// TranscodeStats summarizes one streaming transcode.
type TranscodeStats struct {
	In, Out  container.Codec
	Frames   int
	BytesIn  int64
	BytesOut int64
}

// Transcode decodes the HDVB stream on r and re-encodes it as target,
// writing the resulting container to w — all four stages (container
// read, decode, encode, container write) run concurrently with bounded
// windows, so sequences of any length transcode at constant memory.
// cfgFor maps the parsed input header to the target coding options
// (dimensions normally copy the input's). workers/window as in
// NewStreamEncoder; the same budget is applied to both codec stages.
func Transcode(r io.Reader, w io.Writer, target CodecID, kern kernel.Set, workers, window int, cfgFor func(container.Header) (codec.Config, error), col *obs.Collector) (TranscodeStats, error) {
	sr, err := container.NewStreamReader(r)
	if err != nil {
		return TranscodeStats{}, err
	}
	hdr := sr.Header()
	cfg, err := cfgFor(hdr)
	if err != nil {
		return TranscodeStats{}, err
	}
	dec, err := NewStreamDecoder(hdr, kern, workers, window)
	if err != nil {
		return TranscodeStats{}, err
	}
	enc, err := NewStreamEncoder(target, cfg, workers, window, col)
	if err != nil {
		dec.Abort()
		dec.Close()
		return TranscodeStats{}, err
	}
	ohdr := enc.Header()
	ohdr.Frames = hdr.Frames // the input declares the length; pass it on
	sw, err := container.NewStreamWriter(w, ohdr)
	if err != nil {
		dec.Abort()
		dec.Close()
		enc.Abort()
		enc.Close()
		return TranscodeStats{}, err
	}

	// Stage 1: container packets into the decoder.
	readErr := make(chan error, 1)
	go func() { readErr <- feed(sr.Next, dec.Write, dec.Close, dec.Abort, nil) }()

	// Stage 2: decoded frames into the encoder; a dead encoder stops
	// the upstream decoder too.
	pumpErr := make(chan error, 1)
	go func() { pumpErr <- feed(dec.ReadFrame, enc.Write, enc.Close, enc.Abort, dec.Abort) }()

	// Stage 3: coded packets onto the output container.
	werr := drain(enc.ReadPacket, func(p container.Packet) error {
		if err := sw.WritePacket(p); err != nil {
			return fmt.Errorf("core: writing stream: %w", err)
		}
		return nil
	}, enc.Abort, dec.Abort)
	perr := <-pumpErr
	rerr := <-readErr
	stats := TranscodeStats{
		In:       hdr.Codec,
		Out:      ohdr.Codec,
		Frames:   sw.Count(),
		BytesIn:  sr.BytesRead(),
		BytesOut: sw.BytesWritten(),
	}
	return stats, firstError(werr, perr, rerr)
}

// TranscodeReader is the pull-flavored Transcode: it returns a reader
// producing the transcoded HDVB container, running the four-stage
// pipeline concurrently behind an io.Pipe. Reads see the first
// mid-pipeline failure as their error (io.EOF on success); Close tears
// the pipeline down early — the next pipe write fails, which aborts
// every stage, so an abandoned reader never leaks the goroutine. The
// shape HTTP handlers and io.Copy plumbing want.
func TranscodeReader(r io.Reader, target CodecID, kern kernel.Set, workers, window int, cfgFor func(container.Header) (codec.Config, error), col *obs.Collector) io.ReadCloser {
	pr, pw := io.Pipe()
	go func() {
		_, err := Transcode(r, pw, target, kern, workers, window, cfgFor, col)
		pw.CloseWithError(err) // nil = clean EOF for the reader
	}()
	return pr
}

// firstError picks the most informative error of a torn-down pipeline:
// the first real failure wins over the ErrAborted echoes the teardown
// leaves on the other stages.
func firstError(errs ...error) error {
	var aborted error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if err == stream.ErrAborted {
			if aborted == nil {
				aborted = err
			}
			continue
		}
		return err
	}
	return aborted
}
