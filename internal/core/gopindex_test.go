// The GOP tap on EncodeStream and the pull-flavored TranscodeReader:
// the tap's offsets must point exactly at the I packets that open each
// closed GOP (verified by re-walking the container), the tapped bytes
// must match the untapped ones, and TranscodeReader must reproduce
// Transcode while supporting early Close without leaking the pipeline.
package core_test

import (
	"bytes"
	"io"
	"testing"
	"time"

	"hdvideobench/internal/codec"
	"hdvideobench/internal/container"
	"hdvideobench/internal/core"
	"hdvideobench/internal/kernel"
	"hdvideobench/internal/seqgen"
)

// TestEncodeStreamGOPTap encodes with the tap at several worker counts
// and cross-checks every recorded (offset, frame) pair against a fresh
// walk of the produced container.
func TestEncodeStreamGOPTap(t *testing.T) {
	const w, h, n, gop = 96, 80, 10, 3 // GOPs at frames 0,3,6,9
	cfg := streamCfg(w, h, gop)

	var plain bytes.Buffer
	if _, err := core.EncodeStream(&plain, core.MPEG2, cfg, 1, 0, n,
		frameFeeder(seqgen.BlueSky, w, h, n), nil, nil); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 4} {
		var buf bytes.Buffer
		type gopStart struct {
			offset int64
			frame  int
		}
		var taps []gopStart
		stats, err := core.EncodeStream(&buf, core.MPEG2, cfg, workers, 0, n,
			frameFeeder(seqgen.BlueSky, w, h, n),
			func(offset int64, frame int) { taps = append(taps, gopStart{offset, frame}) }, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), plain.Bytes()) {
			t.Fatalf("workers=%d: tapped container differs from untapped", workers)
		}

		// Re-derive the truth: walk the container, noting the byte offset
		// of every I packet header.
		sr, err := container.NewStreamReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		var want []gopStart
		for {
			at := sr.BytesRead()
			p, err := sr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			if p.Type == container.FrameI {
				want = append(want, gopStart{at, p.DisplayIndex})
			}
		}
		if len(want) != (n+gop-1)/gop {
			t.Fatalf("stream has %d I packets, want %d", len(want), (n+gop-1)/gop)
		}
		if len(taps) != len(want) {
			t.Fatalf("workers=%d: tap fired %d times, want %d", workers, len(taps), len(want))
		}
		for i := range want {
			if taps[i] != want[i] {
				t.Fatalf("workers=%d: tap %d = %+v, want %+v", workers, i, taps[i], want[i])
			}
		}
		if stats.Bytes != int64(buf.Len()) {
			t.Fatalf("stats.Bytes=%d, buffer holds %d", stats.Bytes, buf.Len())
		}
	}
}

// TestTranscodeReaderMatchesTranscode: the pull flavor must produce the
// push flavor's bytes exactly.
func TestTranscodeReaderMatchesTranscode(t *testing.T) {
	const w, h, n, gop = 96, 80, 8, 4
	cfg := streamCfg(w, h, gop)
	var src bytes.Buffer
	if _, err := core.EncodeStream(&src, core.MPEG2, cfg, 1, 0, n,
		frameFeeder(seqgen.BlueSky, w, h, n), nil, nil); err != nil {
		t.Fatal(err)
	}
	cfgFor := func(hdr container.Header) (codec.Config, error) {
		return streamCfg(hdr.Width, hdr.Height, gop), nil
	}
	var push bytes.Buffer
	if _, err := core.Transcode(bytes.NewReader(src.Bytes()), &push, core.H264,
		kernel.Scalar, 2, 0, cfgFor, nil); err != nil {
		t.Fatal(err)
	}
	rc := core.TranscodeReader(bytes.NewReader(src.Bytes()), core.H264, kernel.Scalar, 2, 0, cfgFor, nil)
	pull, err := io.ReadAll(rc)
	if err != nil {
		t.Fatalf("reading TranscodeReader: %v", err)
	}
	if err := rc.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pull, push.Bytes()) {
		t.Fatalf("TranscodeReader produced %d bytes differing from Transcode's %d", len(pull), push.Len())
	}
}

// TestTranscodeReaderEarlyClose: closing the reader mid-stream must tear
// the pipeline down promptly instead of deadlocking its stages.
func TestTranscodeReaderEarlyClose(t *testing.T) {
	const w, h, n, gop = 96, 80, 40, 2
	cfg := streamCfg(w, h, gop)
	var src bytes.Buffer
	if _, err := core.EncodeStream(&src, core.MPEG2, cfg, 1, 0, n,
		frameFeeder(seqgen.RushHour, w, h, n), nil, nil); err != nil {
		t.Fatal(err)
	}
	rc := core.TranscodeReader(bytes.NewReader(src.Bytes()), core.MPEG4, kernel.Scalar, 2, 0,
		func(hdr container.Header) (codec.Config, error) { return streamCfg(hdr.Width, hdr.Height, gop), nil }, nil)
	if _, err := io.ReadFull(rc, make([]byte, 64)); err != nil {
		t.Fatalf("reading stream head: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- rc.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Close hung: pipeline not torn down")
	}
}
