package core

import (
	"strings"
	"testing"

	"hdvideobench/internal/kernel"
	"hdvideobench/internal/seqgen"
)

// tiny matrix for CI-speed suite runs.
func tinyOptions() Options {
	return Options{
		Frames:      5,
		Resolutions: []Resolution{{"tiny", 96, 80}},
		Sequences:   []seqgen.Sequence{seqgen.RushHour, seqgen.PedestrianArea},
	}
}

func TestParseCodec(t *testing.T) {
	cases := map[string]CodecID{
		"mpeg2": MPEG2, "MPEG-2": MPEG2,
		"mpeg4": MPEG4, "xvid": MPEG4,
		"h264": H264, "x264": H264, "H.264": H264,
	}
	for name, want := range cases {
		got, err := ParseCodec(name)
		if err != nil || got != want {
			t.Errorf("ParseCodec(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseCodec("vp9"); err == nil {
		t.Error("unknown codec must error")
	}
}

func TestResolutionsMatchPaper(t *testing.T) {
	if len(Resolutions) != 3 {
		t.Fatalf("%d resolutions", len(Resolutions))
	}
	want := map[string][2]int{
		"576p25":  {720, 576},
		"720p25":  {1280, 720},
		"1088p25": {1920, 1088},
	}
	for _, r := range Resolutions {
		w, ok := want[r.Name]
		if !ok || r.Width != w[0] || r.Height != w[1] {
			t.Errorf("resolution %+v not in paper set", r)
		}
	}
}

func TestRunRDShape(t *testing.T) {
	results, err := RunRD(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2*3 { // 2 sequences × 3 codecs
		t.Fatalf("got %d results", len(results))
	}
	byKey := map[string]RDResult{}
	for _, r := range results {
		byKey[r.Sequence.String()+"/"+r.Codec.String()] = r
		if r.PSNR < 25 || r.PSNR > 100 {
			t.Errorf("%v/%v: implausible PSNR %.2f", r.Sequence, r.Codec, r.PSNR)
		}
		if r.Kbps <= 0 {
			t.Errorf("%v/%v: no bitrate", r.Sequence, r.Codec)
		}
	}
	// The paper's headline ordering at equal quantizer:
	// bitrate(H.264) < bitrate(MPEG-4) < bitrate(MPEG-2).
	for _, seq := range []string{"rush_hour", "pedestrian_area"} {
		m2 := byKey[seq+"/MPEG-2"].Kbps
		m4 := byKey[seq+"/MPEG-4"].Kbps
		h := byKey[seq+"/H.264"].Kbps
		if !(h < m4 && m4 < m2) {
			t.Errorf("%s: bitrate ordering violated: H.264 %.0f, MPEG-4 %.0f, MPEG-2 %.0f",
				seq, h, m4, m2)
		}
	}
}

func TestCompressionGainsPositive(t *testing.T) {
	results, err := RunRD(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	gains := CompressionGains(results)
	if len(gains) != 0 { // tiny resolution is not in the paper's list
		t.Logf("gains computed for custom resolutions: %v", gains)
	}
	// Recompute manually per sequence.
	for _, r := range results {
		if r.Codec != MPEG2 {
			continue
		}
		for _, r2 := range results {
			if r2.Sequence == r.Sequence && r2.Codec == H264 {
				if r2.Kbps >= r.Kbps {
					t.Errorf("%v: H.264 (%.0f kbps) not smaller than MPEG-2 (%.0f)",
						r.Sequence, r2.Kbps, r.Kbps)
				}
			}
		}
	}
}

func TestFormatTableV(t *testing.T) {
	results, err := RunRD(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	out := FormatTableV(results)
	for _, want := range []string{"MPEG-2", "MPEG-4", "H.264", "rush_hour", "PSNR"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table V output missing %q:\n%s", want, out)
		}
	}
}

func TestRunSpeedDecode(t *testing.T) {
	// Ordering assertions need the full sequence mix (the skip-heavy
	// sequences alone make every decoder a memcpy) and a non-trivial size.
	o := Options{
		Frames:      8,
		Resolutions: []Resolution{{"test", 160, 128}},
		Sequences:   seqgen.All,
	}
	// Wall-clock ordering is noisy when other test packages run in
	// parallel, so accept the Figure 1 ordering (MPEG-2 fastest, H.264
	// slowest) if any of three trials shows it.
	ok2, ok4 := false, false
	var last map[CodecID]float64
	for trial := 0; trial < 3 && !(ok2 && ok4); trial++ {
		results, err := RunSpeed(o, Decode)
		if err != nil {
			t.Fatal(err)
		}
		fps := map[CodecID]float64{}
		for _, r := range results {
			if r.FPS <= 0 {
				t.Fatalf("%v: fps %.2f", r.Codec, r.FPS)
			}
			fps[r.Codec] = r.FPS
		}
		last = fps
		if fps[MPEG2] >= fps[H264] {
			ok2 = true
		}
		if fps[MPEG4] >= fps[H264] {
			ok4 = true
		}
	}
	if !ok2 {
		t.Errorf("decode fps ordering violated in all trials: MPEG-2 %.1f < H.264 %.1f",
			last[MPEG2], last[H264])
	}
	if !ok4 {
		t.Errorf("decode fps ordering violated in all trials: MPEG-4 %.1f < H.264 %.1f",
			last[MPEG4], last[H264])
	}
}

func TestRunSpeedEncodeSlowerThanDecode(t *testing.T) {
	o := tinyOptions()
	o.Sequences = []seqgen.Sequence{seqgen.RushHour}
	enc, err := RunSpeed(o, Encode)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := RunSpeed(o, Decode)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range enc {
		for _, d := range dec {
			if e.Codec == d.Codec && e.Resolution.Name == d.Resolution.Name {
				if e.FPS > d.FPS {
					t.Errorf("%v: encode (%.1f fps) faster than decode (%.1f fps)",
						e.Codec, e.FPS, d.FPS)
				}
			}
		}
	}
}

func TestSpeedupsJoin(t *testing.T) {
	scalar := []SpeedResult{{Resolution: Resolutions[0], Codec: MPEG2, Direction: Decode, FPS: 10}}
	simd := []SpeedResult{{Resolution: Resolutions[0], Codec: MPEG2, Direction: Decode, Kernels: kernel.SWAR, FPS: 15}}
	sp := Speedups(scalar, simd)
	if len(sp) != 1 || sp[0].Speedup() != 1.5 {
		t.Fatalf("speedups = %+v", sp)
	}
	out := FormatSpeedups(sp)
	if !strings.Contains(out, "1.50x") {
		t.Errorf("missing speedup in output:\n%s", out)
	}
}

func TestDescribe(t *testing.T) {
	out := Describe()
	for _, want := range []string{"blue_sky", "riverbed", "1920x1088", "I-P-B-B", "EPZS", "hexagon"} {
		if !strings.Contains(out, want) {
			t.Errorf("Describe missing %q", want)
		}
	}
}

func TestFormatFigure1(t *testing.T) {
	results := []SpeedResult{
		{Resolution: Resolutions[0], Codec: MPEG2, Direction: Decode, FPS: 88},
		{Resolution: Resolutions[0], Codec: H264, Direction: Decode, FPS: 19},
	}
	out := FormatFigure1(results, "Decoding Performance Scalar Version")
	if !strings.Contains(out, "88.00*") { // meets real time
		t.Errorf("missing real-time marker:\n%s", out)
	}
	if !strings.Contains(out, "19.00 ") {
		t.Errorf("missing below-real-time value:\n%s", out)
	}
}
