// Package core implements the HD-VideoBench suite itself — the paper's
// primary contribution: the codec/sequence/resolution benchmark matrix, the
// §IV coding-option presets, the rate-distortion runner behind Table V, the
// fps runners behind Figure 1(a-d), and the report formatting that
// regenerates the paper's tables.
package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"hdvideobench/internal/codec"
	"hdvideobench/internal/container"
	"hdvideobench/internal/frame"
	"hdvideobench/internal/h264"
	"hdvideobench/internal/kernel"
	"hdvideobench/internal/metrics"
	"hdvideobench/internal/mpeg2"
	"hdvideobench/internal/mpeg4"
	"hdvideobench/internal/pipeline"
	"hdvideobench/internal/seqgen"
)

// CodecID identifies one of the three benchmark codecs.
type CodecID int

const (
	MPEG2 CodecID = iota
	MPEG4
	H264
)

// AllCodecs lists the codecs in the paper's table order.
var AllCodecs = []CodecID{MPEG2, MPEG4, H264}

// String returns the codec name as printed in the paper's tables.
func (c CodecID) String() string {
	switch c {
	case MPEG2:
		return "MPEG-2"
	case MPEG4:
		return "MPEG-4"
	case H264:
		return "H.264"
	}
	return fmt.Sprintf("CodecID(%d)", int(c))
}

// ParseCodec maps a codec name to its ID.
func ParseCodec(name string) (CodecID, error) {
	switch strings.ToLower(strings.ReplaceAll(name, "-", "")) {
	case "mpeg2":
		return MPEG2, nil
	case "mpeg4", "xvid":
		return MPEG4, nil
	case "h264", "h.264", "x264", "avc":
		return H264, nil
	}
	return 0, fmt.Errorf("core: unknown codec %q", name)
}

// Resolution is one of the benchmark picture sizes.
type Resolution struct {
	Name          string
	Width, Height int
}

// Resolutions are the paper's three sizes: DVD, HD-720 and HD-1088
// (1088 rather than 1080 so the height is a multiple of 16 — §IV).
var Resolutions = []Resolution{
	{"576p25", 720, 576},
	{"720p25", 1280, 720},
	{"1088p25", 1920, 1088},
}

// UHD2160 extends the paper's set one HD generation up: 4K UHD, the
// "as HD as it gets now" scenario point. 2160 is already a multiple of
// 16, so no 1088-style rounding is needed.
var UHD2160 = Resolution{"2160p25", 3840, 2160}

// LD240 extends the set one generation down: the low-bandwidth ladder
// rung (416×240 — both multiples of 16, 240p's usual 426 width rounded
// to the macroblock grid).
var LD240 = Resolution{"240p25", 416, 240}

// AllResolutions is every named resolution a front end accepts: the
// paper's three plus UHD2160 and LD240. Benchmark defaults stay on
// Resolutions — the Table V / Figure 1 matrix is the paper's.
var AllResolutions = append(append([]Resolution{}, Resolutions...), UHD2160, LD240)

// resolutionAliases maps common spellings onto canonical names. 1080p
// resolves to the 1088-row size for the same §IV multiple-of-16 reason
// the paper's tables do.
var resolutionAliases = map[string]string{
	"240p": "240p25", "ld": "240p25",
	"576p": "576p25", "sd": "576p25", "dvd": "576p25",
	"720p": "720p25", "hd": "720p25",
	"1080p": "1088p25", "1080p25": "1088p25", "1088p": "1088p25", "fullhd": "1088p25",
	"2160p": "2160p25", "4k": "2160p25", "uhd": "2160p25",
}

// ResolutionByName finds a named resolution, accepting the canonical
// names ("576p25" ... "2160p25") and common aliases ("1080p", "4k").
func ResolutionByName(name string) (Resolution, error) {
	canon := name
	if alias, ok := resolutionAliases[strings.ToLower(name)]; ok {
		canon = alias
	}
	for _, r := range AllResolutions {
		if strings.EqualFold(r.Name, canon) {
			return r, nil
		}
	}
	return Resolution{}, fmt.Errorf("core: unknown resolution %q", name)
}

// NewEncoder constructs the encoder for a codec ID.
func NewEncoder(id CodecID, cfg codec.Config) (codec.Encoder, error) {
	switch id {
	case MPEG2:
		return mpeg2.NewEncoder(cfg)
	case MPEG4:
		return mpeg4.NewEncoder(cfg)
	case H264:
		return h264.NewEncoder(cfg)
	}
	return nil, fmt.Errorf("core: unknown codec %d", id)
}

// NewDecoder constructs the decoder for a coded stream header.
func NewDecoder(hdr container.Header, kern kernel.Set) (codec.Decoder, error) {
	switch hdr.Codec {
	case container.CodecMPEG2:
		return mpeg2.NewDecoder(hdr, kern)
	case container.CodecMPEG4:
		return mpeg4.NewDecoder(hdr, kern)
	case container.CodecH264:
		return h264.NewDecoder(hdr, kern)
	}
	return nil, fmt.Errorf("core: unknown stream codec %v", hdr.Codec)
}

// Options configures a suite run. The zero value is completed by
// (*Options).defaults: the full paper matrix at the paper's settings with a
// reduced frame count.
type Options struct {
	Frames      int
	Q           int
	Kernels     kernel.Set
	Resolutions []Resolution
	Sequences   []seqgen.Sequence
	Codecs      []CodecID
	BFrames     int
	Refs        int
	Entropy     codec.EntropyMode

	// IntraPeriod inserts an I frame every N frames (0 = first frame
	// only, the paper's setting). A nonzero period produces closed GOPs,
	// the unit of the pipeline's parallelism: with IntraPeriod == 0 a
	// Workers > 1 run degenerates to the serial path.
	IntraPeriod int

	// Workers is the codec-level parallelism: closed-GOP chunks are
	// encoded/decoded concurrently on this many goroutines. 0 or 1 is
	// the legacy serial path. Output is byte-identical for every value.
	Workers int

	// Slices splits every frame into this many independently coded
	// macroblock-row slices (0/1 = one slice). Unlike Workers it
	// affects the bitstream — prediction clamps at slice boundaries —
	// but for a fixed slice count output stays byte-identical at every
	// worker count, and slices are the parallelism that works at the
	// paper's IntraPeriod == 0 setting where GOP chunking cannot.
	Slices int

	// Wavefront enables wavefront (2D) macroblock scheduling inside each
	// slice: rows run concurrently in dependency order, funded by the
	// same Workers budget as chunks and slices. It never changes the
	// bitstream — the scheduling axis with zero compression cost.
	Wavefront bool

	// Repeats is the number of timing repetitions per speed measurement;
	// the fastest run is reported (filters scheduler/steal noise on shared
	// machines). Zero means one run.
	Repeats int
}

func (o Options) defaults() Options {
	if o.Frames == 0 {
		o.Frames = 25
	}
	if o.Q == 0 {
		o.Q = 5
	}
	if o.Resolutions == nil {
		o.Resolutions = Resolutions
	}
	if o.Sequences == nil {
		o.Sequences = seqgen.All
	}
	if o.Codecs == nil {
		o.Codecs = AllCodecs
	}
	if o.BFrames == 0 {
		o.BFrames = 2
	}
	if o.Refs == 0 {
		o.Refs = 4
	}
	return o
}

// Config builds the codec configuration for one resolution under o.
func (o Options) Config(res Resolution) codec.Config {
	o = o.defaults()
	cfg := codec.Default(res.Width, res.Height)
	cfg.Q = o.Q
	cfg.Kernels = o.Kernels
	cfg.BFrames = o.BFrames
	cfg.Refs = o.Refs
	cfg.Entropy = o.Entropy
	cfg.IntraPeriod = o.IntraPeriod
	cfg.Slices = o.Slices
	cfg.Wavefront = o.Wavefront
	return cfg
}

// EncodeSequence encodes frames with the given codec and returns the
// packets in coding order.
func EncodeSequence(id CodecID, cfg codec.Config, frames []*frame.Frame) ([]container.Packet, container.Header, error) {
	enc, err := NewEncoder(id, cfg)
	if err != nil {
		return nil, container.Header{}, err
	}
	var pkts []container.Packet
	for _, f := range frames {
		ps, err := enc.Encode(f)
		if err != nil {
			return nil, container.Header{}, err
		}
		pkts = append(pkts, ps...)
	}
	ps, err := enc.Flush()
	if err != nil {
		return nil, container.Header{}, err
	}
	pkts = append(pkts, ps...)
	return pkts, enc.Header(), nil
}

// EncodeSequenceParallel is EncodeSequence spread over workers goroutines
// via the GOP-chunk pipeline. The packet stream is byte-identical to the
// serial one for every worker count; parallelism requires
// cfg.IntraPeriod > 0 (closed GOPs are the unit of work). workers <= 1
// selects the serial path, workers < 0 selects runtime.NumCPU().
func EncodeSequenceParallel(id CodecID, cfg codec.Config, frames []*frame.Frame, workers int) ([]container.Packet, container.Header, error) {
	if workers < 0 {
		workers = pipeline.Workers(0)
	}
	if workers <= 1 {
		return EncodeSequence(id, cfg, frames)
	}
	return pipeline.EncodeFrames(func() (codec.Encoder, error) {
		return NewEncoder(id, cfg)
	}, cfg.IntraPeriod, workers, frames)
}

// DecodePacketsParallel is DecodePackets spread over workers goroutines,
// one closed GOP per task. Decoded frames are identical to the serial
// path for every worker count.
func DecodePacketsParallel(hdr container.Header, kern kernel.Set, pkts []container.Packet, workers int) ([]*frame.Frame, error) {
	if workers < 0 {
		workers = pipeline.Workers(0)
	}
	if workers <= 1 {
		return DecodePackets(hdr, kern, pkts)
	}
	return pipeline.DecodePackets(func() (codec.Decoder, error) {
		return NewDecoder(hdr, kern)
	}, workers, pkts)
}

// DecodePackets decodes a packet stream back to display-order frames.
func DecodePackets(hdr container.Header, kern kernel.Set, pkts []container.Packet) ([]*frame.Frame, error) {
	dec, err := NewDecoder(hdr, kern)
	if err != nil {
		return nil, err
	}
	var out []*frame.Frame
	for _, p := range pkts {
		fs, err := dec.Decode(p)
		if err != nil {
			return nil, err
		}
		out = append(out, fs...)
	}
	out = append(out, dec.Flush()...)
	return out, nil
}

// RDResult is one Table V cell group: quality and rate for a codec on a
// sequence at a resolution.
type RDResult struct {
	Resolution Resolution
	Sequence   seqgen.Sequence
	Codec      CodecID
	PSNR       float64
	Kbps       float64
	Frames     int
	Bits       int64
}

// RunRD measures rate-distortion for the full matrix in o (Table V).
func RunRD(o Options) ([]RDResult, error) {
	o = o.defaults()
	var results []RDResult
	for _, res := range o.Resolutions {
		cfg := o.Config(res)
		for _, seq := range o.Sequences {
			inputs := seqgen.New(seq, res.Width, res.Height).Generate(o.Frames)
			for _, id := range o.Codecs {
				pkts, hdr, err := EncodeSequenceParallel(id, cfg, inputs, o.Workers)
				if err != nil {
					return nil, fmt.Errorf("encoding %v/%v/%v: %w", res.Name, seq, id, err)
				}
				decoded, err := DecodePacketsParallel(hdr, o.Kernels, pkts, o.Workers)
				if err != nil {
					return nil, fmt.Errorf("decoding %v/%v/%v: %w", res.Name, seq, id, err)
				}
				if len(decoded) != len(inputs) {
					return nil, fmt.Errorf("%v/%v/%v: decoded %d of %d frames",
						res.Name, seq, id, len(decoded), len(inputs))
				}
				var acc metrics.Accumulator
				for i := range inputs {
					bits := 0
					if i < len(pkts) {
						bits = 8 * len(pkts[i].Payload)
					}
					acc.AddFrame(inputs[i], decoded[i], bits)
				}
				results = append(results, RDResult{
					Resolution: res,
					Sequence:   seq,
					Codec:      id,
					PSNR:       acc.PSNR(),
					Kbps:       acc.BitrateKbps(cfg.FPS()),
					Frames:     len(inputs),
					Bits:       acc.TotalBits(),
				})
			}
		}
	}
	return results, nil
}

// Direction selects encode or decode for speed runs.
type Direction int

const (
	Decode Direction = iota
	Encode
)

func (d Direction) String() string {
	if d == Encode {
		return "Encoding"
	}
	return "Decoding"
}

// SpeedResult is one Figure 1 bar: frames per second for a codec at a
// resolution (averaged over the benchmark sequences).
type SpeedResult struct {
	Resolution Resolution
	Codec      CodecID
	Direction  Direction
	Kernels    kernel.Set
	Workers    int  // goroutines used (0/1 = serial path)
	Slices     int  // macroblock-row slices per frame (0/1 = one slice)
	Wavefront  bool // wavefront (2D) macroblock scheduling inside slices
	GOP        int  // effective intra period (0 = first frame only)
	FPS        float64
	Frames     int
}

// RunSpeed measures encode or decode throughput for the matrix in o
// (Figure 1: a = decode scalar, b = decode SIMD, c = encode scalar,
// d = encode SIMD, depending on o.Kernels and dir).
func RunSpeed(o Options, dir Direction) ([]SpeedResult, error) {
	o = o.defaults()
	var results []SpeedResult
	repeats := o.Repeats
	if repeats < 1 {
		repeats = 1
	}
	for _, res := range o.Resolutions {
		cfg := o.Config(res)
		for _, id := range o.Codecs {
			totalFrames := 0
			var bestTime time.Duration
			for rep := 0; rep < repeats; rep++ {
				frames := 0
				var totalTime time.Duration
				for _, seq := range o.Sequences {
					inputs := seqgen.New(seq, res.Width, res.Height).Generate(o.Frames)
					if dir == Encode {
						start := time.Now()
						_, _, err := EncodeSequenceParallel(id, cfg, inputs, o.Workers)
						totalTime += time.Since(start)
						if err != nil {
							return nil, err
						}
						frames += len(inputs)
						continue
					}
					pkts, hdr, err := EncodeSequenceParallel(id, cfg, inputs, o.Workers)
					if err != nil {
						return nil, err
					}
					start := time.Now()
					decoded, err := DecodePacketsParallel(hdr, o.Kernels, pkts, o.Workers)
					totalTime += time.Since(start)
					if err != nil {
						return nil, err
					}
					frames += len(decoded)
				}
				totalFrames = frames
				if rep == 0 || totalTime < bestTime {
					bestTime = totalTime
				}
			}
			fps := float64(totalFrames) / bestTime.Seconds()
			results = append(results, SpeedResult{
				Resolution: res,
				Codec:      id,
				Direction:  dir,
				Kernels:    o.Kernels,
				Workers:    o.Workers,
				Slices:     max(o.Slices, 1),
				Wavefront:  o.Wavefront,
				GOP:        o.IntraPeriod,
				FPS:        fps,
				Frames:     totalFrames,
			})
		}
	}
	return results, nil
}

// ScalingGOP is the intra period RunScaling pins when the caller has not
// chosen one: parallel throughput needs closed GOPs to chunk on, and
// every worker count must code the same stream for the comparison to
// mean anything. Six frames is two full I-P-B-B groups' worth of work
// per chunk at the paper's BFrames=2.
const ScalingGOP = 6

// RunScaling measures encode or decode throughput at each worker count —
// Figure 1's new scaling dimension (frames/s at 1, 2, 4, N workers).
// All counts run with identical coding options (same IntraPeriod and
// Slices, so identical bitstreams); only the goroutine count varies.
// workerCounts nil defaults to {1, 2, 4, runtime.NumCPU()}; duplicates
// are measured once. When neither IntraPeriod nor Slices provides a
// parallel axis, IntraPeriod is pinned to ScalingGOP so chunks exist.
func RunScaling(o Options, dir Direction, workerCounts []int) ([]SpeedResult, error) {
	if o.IntraPeriod == 0 && o.Slices <= 1 {
		o.IntraPeriod = ScalingGOP
	}
	return RunScalingMatrix(o, dir, workerCounts, nil)
}

// RunScalingMatrix sweeps the full slices × workers grid: for every
// slice count the same bitstream is coded at every worker count, so the
// matrix shows both the intra-frame scaling (slices at the paper's
// IntraPeriod == 0 default) and the prediction-efficiency price of
// slicing. sliceCounts nil measures only o.Slices; workerCounts nil
// defaults to {1, 2, 4, runtime.NumCPU()}. Duplicates are measured once.
func RunScalingMatrix(o Options, dir Direction, workerCounts, sliceCounts []int) ([]SpeedResult, error) {
	o = o.defaults()
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 2, 4, pipeline.Workers(0)}
	}
	if len(sliceCounts) == 0 {
		sliceCounts = []int{max(o.Slices, 1)}
	}
	dedup := func(in []int) []int {
		out := make([]int, 0, len(in))
		seen := map[int]bool{}
		for _, v := range in {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
		sort.Ints(out)
		return out
	}
	var results []SpeedResult
	for _, sc := range dedup(sliceCounts) {
		for _, wc := range dedup(workerCounts) {
			ow := o
			ow.Slices = sc
			ow.Workers = wc
			rs, err := RunSpeed(ow, dir)
			if err != nil {
				return nil, fmt.Errorf("scaling at %d slices, %d workers: %w", sc, wc, err)
			}
			results = append(results, rs...)
		}
	}
	return results, nil
}
