package core_test

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"hdvideobench/internal/codec"
	"hdvideobench/internal/container"
	"hdvideobench/internal/core"
	"hdvideobench/internal/frame"
	"hdvideobench/internal/kernel"
	"hdvideobench/internal/metrics"
	"hdvideobench/internal/seqgen"
)

func streamCfg(w, h, gop int) codec.Config {
	cfg := codec.Default(w, h)
	cfg.IntraPeriod = gop
	cfg.SearchRange = 8
	cfg.Refs = 2
	return cfg
}

// frameFeeder yields n generated frames then io.EOF.
func frameFeeder(seq seqgen.Sequence, w, h, n int) func() (*frame.Frame, error) {
	gen := seqgen.New(seq, w, h)
	i := 0
	return func() (*frame.Frame, error) {
		if i >= n {
			return nil, io.EOF
		}
		f := gen.Frame(i)
		i++
		return f, nil
	}
}

// TestEncodeStreamMatchesBatchContainer checks the one-call streaming
// encode produces the exact container bytes of the batch encode+write
// path.
func TestEncodeStreamMatchesBatchContainer(t *testing.T) {
	const w, h, n, gop = 96, 80, 10, 3
	cfg := streamCfg(w, h, gop)
	inputs := seqgen.New(seqgen.BlueSky, w, h).Generate(n)
	pkts, hdr, err := core.EncodeSequence(core.H264, cfg, inputs)
	if err != nil {
		t.Fatal(err)
	}
	var batch bytes.Buffer
	cw, err := container.NewWriter(&batch, hdr)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkts {
		if err := cw.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}

	var streamed bytes.Buffer
	stats, err := core.EncodeStream(&streamed, core.H264, cfg, 4, 0, 0, frameFeeder(seqgen.BlueSky, w, h, n), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(streamed.Bytes(), batch.Bytes()) {
		t.Fatalf("streamed container differs from batch (%d vs %d bytes)", streamed.Len(), batch.Len())
	}
	if stats.Frames != n {
		t.Fatalf("stats.Frames = %d, want %d", stats.Frames, n)
	}
	if stats.Bytes != int64(streamed.Len()) {
		t.Fatalf("stats.Bytes = %d, want %d", stats.Bytes, streamed.Len())
	}
}

// TestDecodeStreamRoundTrip checks DecodeStream yields the same frames
// as the batch decode, in order, with quality agreeing exactly.
func TestDecodeStreamRoundTrip(t *testing.T) {
	const w, h, n, gop = 96, 80, 10, 3
	cfg := streamCfg(w, h, gop)
	var buf bytes.Buffer
	if _, err := core.EncodeStream(&buf, core.MPEG4, cfg, 2, 0, 0, frameFeeder(seqgen.RushHour, w, h, n), nil, nil); err != nil {
		t.Fatal(err)
	}
	coded := buf.Bytes()

	hdr, pkts, err := readAll(bytes.NewReader(coded))
	if err != nil {
		t.Fatal(err)
	}
	batchFrames, err := core.DecodePackets(hdr, kernel.Scalar, pkts)
	if err != nil {
		t.Fatal(err)
	}

	var got []*frame.Frame
	ghdr, stats, err := core.DecodeStream(bytes.NewReader(coded), kernel.Scalar, 2, 0, func(f *frame.Frame) error {
		got = append(got, f)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if ghdr != hdr {
		t.Fatalf("header %+v, want %+v", ghdr, hdr)
	}
	if stats.Frames != n || len(got) != len(batchFrames) {
		t.Fatalf("decoded %d frames (stats %d), want %d", len(got), stats.Frames, n)
	}
	for i := range got {
		if got[i].PTS != batchFrames[i].PTS {
			t.Fatalf("frame %d: PTS %d, batch has %d", i, got[i].PTS, batchFrames[i].PTS)
		}
		if p := metrics.PSNRFrames(batchFrames[i], got[i]); !(p > 99) { // identical planes → +Inf
			t.Fatalf("frame %d differs from batch decode (PSNR %.2f)", i, p)
		}
	}
}

func readAll(r io.Reader) (container.Header, []container.Packet, error) {
	sr, err := container.NewStreamReader(r)
	if err != nil {
		return container.Header{}, nil, err
	}
	var pkts []container.Packet
	for {
		p, err := sr.Next()
		if err == io.EOF {
			return sr.Header(), pkts, nil
		}
		if err != nil {
			return container.Header{}, nil, err
		}
		pkts = append(pkts, p)
	}
}

// TestTranscodeStreaming transcodes an MPEG-2 stream to H.264 and
// checks the output decodes to the full sequence with sane quality and
// a declared frame count carried over from the input.
func TestTranscodeStreaming(t *testing.T) {
	const w, h, n, gop = 96, 80, 12, 4
	cfg := streamCfg(w, h, gop)

	var src bytes.Buffer
	// Declare the length on the source container so Transcode can pass
	// it through.
	enc, err := core.NewStreamEncoder(core.MPEG2, cfg, 2, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	hdr := enc.Header()
	hdr.Frames = n
	sw, err := container.NewStreamWriter(&src, hdr)
	if err != nil {
		t.Fatal(err)
	}
	feed := frameFeeder(seqgen.PedestrianArea, w, h, n)
	done := make(chan error, 1)
	go func() {
		for {
			f, err := feed()
			if err == io.EOF {
				done <- enc.Close()
				return
			}
			if err = enc.Write(f); err != nil {
				enc.Close()
				done <- err
				return
			}
		}
	}()
	for {
		p, err := enc.ReadPacket()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := sw.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	var dst bytes.Buffer
	stats, err := core.Transcode(bytes.NewReader(src.Bytes()), &dst, core.H264, kernel.Scalar, 2, 0,
		func(in container.Header) (codec.Config, error) {
			out := streamCfg(in.Width, in.Height, gop)
			return out, nil
		}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.In != container.CodecMPEG2 || stats.Out != container.CodecH264 {
		t.Fatalf("stats codecs %v -> %v", stats.In, stats.Out)
	}
	if stats.Frames != n {
		t.Fatalf("stats.Frames = %d, want %d", stats.Frames, n)
	}
	if stats.BytesIn != int64(src.Len()) || stats.BytesOut != int64(dst.Len()) {
		t.Fatalf("byte stats %d/%d, want %d/%d", stats.BytesIn, stats.BytesOut, src.Len(), dst.Len())
	}

	ohdr, opkts, err := readAll(bytes.NewReader(dst.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if ohdr.Codec != container.CodecH264 || ohdr.Frames != n {
		t.Fatalf("output header %+v", ohdr)
	}
	decoded, err := core.DecodePackets(ohdr, kernel.Scalar, opkts)
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != n {
		t.Fatalf("decoded %d frames, want %d", len(decoded), n)
	}
	inputs := seqgen.New(seqgen.PedestrianArea, w, h).Generate(n)
	for i := range decoded {
		if p := metrics.PSNRFrames(inputs[i], decoded[i]); p < 20 {
			t.Fatalf("frame %d: transcoded PSNR %.2f dB, want >= 20", i, p)
		}
	}
}

// TestTranscodeBadInput checks a non-HDVB input fails cleanly.
func TestTranscodeBadInput(t *testing.T) {
	var dst bytes.Buffer
	_, err := core.Transcode(strings.NewReader("not a container, just twenty-plus bytes"), &dst, core.H264, kernel.Scalar, 2, 0,
		func(in container.Header) (codec.Config, error) {
			return streamCfg(in.Width, in.Height, 4), nil
		}, nil)
	if !errors.Is(err, container.ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
	if dst.Len() != 0 {
		t.Fatalf("wrote %d bytes on bad input", dst.Len())
	}
}

// TestTranscodeTruncatedInput checks a truncated declared-length input
// surfaces io.ErrUnexpectedEOF through the whole pipeline.
func TestTranscodeTruncatedInput(t *testing.T) {
	const w, h, n, gop = 96, 80, 8, 4
	cfg := streamCfg(w, h, gop)
	var src bytes.Buffer
	if _, err := core.EncodeStream(&src, core.MPEG2, cfg, 1, 0, 0, frameFeeder(seqgen.BlueSky, w, h, n), nil, nil); err != nil {
		t.Fatal(err)
	}
	// Rewrite the header to declare more frames than the stream holds,
	// then hand the whole thing to Transcode.
	full := src.Bytes()
	full[16] = byte(n + 3) // little-endian u32 frame count at offset 16
	var dst bytes.Buffer
	_, err := core.Transcode(bytes.NewReader(full), &dst, core.MPEG4, kernel.Scalar, 2, 0,
		func(in container.Header) (codec.Config, error) {
			return streamCfg(in.Width, in.Height, gop), nil
		}, nil)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("err = %v, want io.ErrUnexpectedEOF", err)
	}
}

// TestFormatScalingJSON checks the machine-readable scaling report is
// valid JSON with the configuration echoed.
func TestFormatScalingJSON(t *testing.T) {
	o := core.Options{Frames: 4, Q: 5, IntraPeriod: 2, Repeats: 1}
	results := []core.SpeedResult{
		{Resolution: core.Resolutions[0], Codec: core.MPEG2, Direction: core.Encode, Workers: 1, GOP: 2, FPS: 10, Frames: 4},
		{Resolution: core.Resolutions[0], Codec: core.MPEG2, Direction: core.Encode, Workers: 2, GOP: 2, FPS: 19, Frames: 4},
	}
	out, err := core.FormatScalingJSON(o, results)
	if err != nil {
		t.Fatal(err)
	}
	s := string(out)
	for _, want := range []string{`"benchmark": "hdvbench-scaling"`, `"workers": 2`, `"direction": "encoding"`, `"gop": 2`, `"num_cpu"`} {
		if !strings.Contains(s, want) {
			t.Fatalf("JSON missing %s:\n%s", want, s)
		}
	}
}
