package core

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"hdvideobench/internal/codec"
	"hdvideobench/internal/container"
	"hdvideobench/internal/frame"
	"hdvideobench/internal/motion"
)

// LadderRung is one output rendition of a ladder encode: a target
// geometry plus an optional bitrate. Kbps > 0 selects rate-targeted
// coding for that rung (codec.Config.TargetKbps); 0 keeps constant-Q.
type LadderRung struct {
	Name          string
	Width, Height int
	Kbps          int
}

// LadderRendition is one finished rung: its coded packets and the
// stream header that decodes them.
type LadderRendition struct {
	Rung    LadderRung
	Header  container.Header
	Packets []container.Packet
}

// ParseLadder parses a rung list like "240p,576p@1200,720p" — comma-
// separated resolution names (canonical or alias, see ResolutionByName),
// each optionally suffixed with "@kbps" for a rate-targeted rung — and
// validates it against the mezzanine geometry.
func ParseLadder(spec string, mezzW, mezzH int) ([]LadderRung, error) {
	parts := strings.Split(spec, ",")
	rungs := make([]LadderRung, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, fmt.Errorf("core: empty rung in ladder %q", spec)
		}
		name := p
		kbps := 0
		if i := strings.IndexByte(p, '@'); i >= 0 {
			name = p[:i]
			v, err := strconv.Atoi(p[i+1:])
			if err != nil || v <= 0 {
				return nil, fmt.Errorf("core: invalid rung bitrate %q (want e.g. 576p@1200)", p)
			}
			kbps = v
		}
		r, err := ResolutionByName(name)
		if err != nil {
			return nil, err
		}
		rungs = append(rungs, LadderRung{Name: r.Name, Width: r.Width, Height: r.Height, Kbps: kbps})
	}
	if err := ValidateLadder(rungs, mezzW, mezzH); err != nil {
		return nil, err
	}
	return rungs, nil
}

// ValidateLadder checks a rung list against the mezzanine geometry:
// at least one rung, multiple-of-16 dimensions, no rung exceeding the
// mezzanine in either dimension (hints flow down the ladder only, and
// there is no upscaler), and no duplicate geometries.
func ValidateLadder(rungs []LadderRung, mezzW, mezzH int) error {
	if len(rungs) == 0 {
		return fmt.Errorf("core: ladder needs at least one rung")
	}
	seen := make(map[[2]int]bool, len(rungs))
	for _, r := range rungs {
		if r.Width <= 0 || r.Height <= 0 || r.Width%16 != 0 || r.Height%16 != 0 {
			return fmt.Errorf("core: ladder rung %s: dimensions %dx%d must be positive multiples of 16",
				r.Name, r.Width, r.Height)
		}
		if r.Width > mezzW || r.Height > mezzH {
			return fmt.Errorf("core: ladder rung %s (%dx%d) exceeds mezzanine %dx%d",
				r.Name, r.Width, r.Height, mezzW, mezzH)
		}
		if r.Kbps < 0 {
			return fmt.Errorf("core: ladder rung %s: bitrate %d kbps must be >= 0", r.Name, r.Kbps)
		}
		key := [2]int{r.Width, r.Height}
		if seen[key] {
			return fmt.Errorf("core: duplicate ladder rung %s (%dx%d)", r.Name, r.Width, r.Height)
		}
		seen[key] = true
	}
	return nil
}

// EncodeLadder encodes one mezzanine sequence into every rung of a
// rendition ladder, sharing the motion analysis of the largest rung:
//
//   - the largest rung encodes first, capturing its per-frame full-pel
//     forward motion fields (codec.Config.MotionTap);
//   - every smaller rung downscales the mezzanine frames once
//     (frame.Downscale — box for integer ratios, bilinear otherwise)
//     and encodes with the captured fields injected, geometry-scaled,
//     as extra motion-search seed predictors (MotionHints), so its
//     searches start near the answer and early-terminate cheaply;
//   - a rung with Kbps > 0 is rate-targeted (codec.RateController).
//
// cfg describes the mezzanine: its Width/Height bound the rungs, and
// its coding options (Q, GOP shape, kernels, slices, wavefront) apply
// to every rung. Each rung's stream is byte-identical at every worker
// count and wavefront setting — the analysis rung is deterministic, so
// the hint fields, and therefore the seeded searches, are too.
func EncodeLadder(id CodecID, cfg codec.Config, frames []*frame.Frame, rungs []LadderRung, workers int) ([]LadderRendition, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := ValidateLadder(rungs, cfg.Width, cfg.Height); err != nil {
		return nil, err
	}
	top := 0
	for i, r := range rungs {
		if r.Width*r.Height > rungs[top].Width*rungs[top].Height {
			top = i
		}
	}

	// Motion fields of the analysis rung, keyed by display PTS. Written
	// under the mutex (GOP-parallel chunk encoders tap concurrently),
	// read lock-free afterwards — the pipeline join orders the accesses.
	var mu sync.Mutex
	fields := make(map[int]*motion.Field, len(frames))

	out := make([]LadderRendition, len(rungs))
	encodeRung := func(i int) error {
		r := rungs[i]
		rcfg := cfg
		rcfg.Width, rcfg.Height = r.Width, r.Height
		rcfg.TargetKbps = r.Kbps
		rcfg.MotionTap, rcfg.MotionHints = nil, nil
		if i == top {
			rcfg.MotionTap = func(pts int, f *motion.Field) {
				mu.Lock()
				fields[pts] = f
				mu.Unlock()
			}
		} else {
			rcfg.MotionHints = func(pts int) *motion.Field { return fields[pts] }
		}
		in := frames
		if r.Width != cfg.Width || r.Height != cfg.Height {
			in = make([]*frame.Frame, len(frames))
			for j, f := range frames {
				in[j] = frame.DownscaleNew(f, r.Width, r.Height)
			}
		}
		pkts, hdr, err := EncodeSequenceParallel(id, rcfg, in, workers)
		if err != nil {
			return fmt.Errorf("core: ladder rung %s: %w", r.Name, err)
		}
		out[i] = LadderRendition{Rung: r, Header: hdr, Packets: pkts}
		return nil
	}

	// The analysis rung must finish before any seeded rung starts: the
	// seeded searches read its complete motion-field map.
	if err := encodeRung(top); err != nil {
		return nil, err
	}
	for i := range rungs {
		if i == top {
			continue
		}
		if err := encodeRung(i); err != nil {
			return nil, err
		}
	}
	return out, nil
}
