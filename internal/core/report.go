package core

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"strings"

	"hdvideobench/internal/seqgen"
)

// FormatTableV renders RD results in the layout of the paper's Table V:
// one row per (resolution, sequence), PSNR and bitrate columns per codec.
func FormatTableV(results []RDResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "HD-VideoBench rate-distortion performance comparison (Table V)\n")
	fmt.Fprintf(&b, "%-10s %-16s", "Resolution", "Input")
	for _, c := range AllCodecs {
		fmt.Fprintf(&b, " | %8s PSNR  kbit/s", c)
	}
	b.WriteString("\n")

	type key struct {
		res string
		seq seqgen.Sequence
	}
	cells := map[key]map[CodecID]RDResult{}
	var keys []key
	for _, r := range results {
		k := key{r.Resolution.Name, r.Sequence}
		if cells[k] == nil {
			cells[k] = map[CodecID]RDResult{}
			keys = append(keys, k)
		}
		cells[k][r.Codec] = r
	}
	sort.SliceStable(keys, func(i, j int) bool {
		if keys[i].res != keys[j].res {
			return resOrder(keys[i].res) < resOrder(keys[j].res)
		}
		return keys[i].seq < keys[j].seq
	})
	for _, k := range keys {
		fmt.Fprintf(&b, "%-10s %-16s", k.res, k.seq)
		for _, c := range AllCodecs {
			if r, ok := cells[k][c]; ok {
				fmt.Fprintf(&b, " | %8.2f dB %7.0f", r.PSNR, r.Kbps)
			} else {
				fmt.Fprintf(&b, " | %20s", "-")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

func resOrder(name string) int {
	for i, r := range Resolutions {
		if r.Name == name {
			return i
		}
	}
	return len(Resolutions)
}

// FormatFigure1 renders speed results as the fps series of one Figure 1
// panel, with the 25 fps real-time line marked.
func FormatFigure1(results []SpeedResult, title string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (frames per second; real time = 25 fps)\n", title)
	fmt.Fprintf(&b, "%-10s", "")
	for _, c := range AllCodecs {
		fmt.Fprintf(&b, " %12s", c)
	}
	b.WriteString("\n")
	for _, res := range Resolutions {
		row := map[CodecID]float64{}
		found := false
		for _, r := range results {
			if r.Resolution.Name == res.Name {
				row[r.Codec] = r.FPS
				found = true
			}
		}
		if !found {
			continue
		}
		fmt.Fprintf(&b, "%-10s", res.Name)
		for _, c := range AllCodecs {
			if fps, ok := row[c]; ok {
				mark := " "
				if fps >= 25 {
					mark = "*" // meets real time
				}
				fmt.Fprintf(&b, " %10.2f%s ", fps, mark)
			} else {
				fmt.Fprintf(&b, " %12s", "-")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// FormatScaling renders RunScaling results as one worker-count column per
// measured count: the Figure 1 scaling dimension. Each cell shows frames
// per second and, beyond one worker, the speed-up over the one-worker run.
func FormatScaling(results []SpeedResult, title string) string {
	var b strings.Builder
	note := ""
	if len(results) > 0 && results[0].Wavefront {
		note = "; wavefront MB scheduling on"
	}
	fmt.Fprintf(&b, "%s (frames per second by worker count; identical bitstreams per slice count%s)\n", title, note)

	var counts []int
	seen := map[int]bool{}
	for _, r := range results {
		if !seen[r.Workers] {
			seen[r.Workers] = true
			counts = append(counts, r.Workers)
		}
	}
	sort.Ints(counts)

	multiSlice := false
	{
		seen := map[int]bool{}
		for _, r := range results {
			seen[max(r.Slices, 1)] = true
		}
		multiSlice = len(seen) > 1
	}

	type key struct {
		res    string
		codec  CodecID
		slices int
	}
	cells := map[key]map[int]float64{}
	var keys []key
	for _, r := range results {
		k := key{r.Resolution.Name, r.Codec, max(r.Slices, 1)}
		if cells[k] == nil {
			cells[k] = map[int]float64{}
			keys = append(keys, k)
		}
		cells[k][r.Workers] = r.FPS
	}
	sort.SliceStable(keys, func(i, j int) bool {
		if keys[i].res != keys[j].res {
			return resOrder(keys[i].res) < resOrder(keys[j].res)
		}
		if keys[i].codec != keys[j].codec {
			return keys[i].codec < keys[j].codec
		}
		return keys[i].slices < keys[j].slices
	})

	label := func(k key) string {
		if multiSlice {
			return fmt.Sprintf("%-8s s=%d", k.codec, k.slices)
		}
		return fmt.Sprintf("%-8s", k.codec)
	}
	lw := 8
	if multiSlice {
		lw = 13
	}
	fmt.Fprintf(&b, "%-10s %-*s", "", lw, "")
	for _, wc := range counts {
		fmt.Fprintf(&b, " %14s", fmt.Sprintf("%d worker(s)", wc))
	}
	b.WriteString("\n")
	for _, k := range keys {
		fmt.Fprintf(&b, "%-10s %-*s", k.res, lw, label(k))
		base := cells[k][counts[0]]
		for i, wc := range counts {
			fps, ok := cells[k][wc]
			if !ok {
				fmt.Fprintf(&b, " %14s", "-")
				continue
			}
			if i == 0 || base == 0 {
				fmt.Fprintf(&b, " %10.2f    ", fps)
			} else {
				fmt.Fprintf(&b, " %8.2f %4.1fx", fps, fps/base)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// ScalingRecord is one machine-readable scaling measurement — the JSON
// shape of a SpeedResult, stable for trend tracking.
type ScalingRecord struct {
	Direction  string  `json:"direction"`
	Resolution string  `json:"resolution"`
	Codec      string  `json:"codec"`
	Kernels    string  `json:"kernels"`
	Workers    int     `json:"workers"`
	Slices     int     `json:"slices"`
	Wavefront  bool    `json:"wavefront"`
	GOP        int     `json:"gop"` // effective intra period of this run
	FPS        float64 `json:"fps"`
	Frames     int     `json:"frames"`
}

// ScalingReport is the machine-readable envelope for RunScaling results:
// enough host and configuration metadata to compare runs across machines
// and commits (the BENCH_*.json trajectory). The coding configuration
// that can vary per measurement — workers, slices, and the effective
// intra period — lives on each record, so a report assembled from a
// sweep (RunScalingMatrix) or from RunScaling's legacy ScalingGOP pin
// always describes exactly what ran.
type ScalingReport struct {
	Benchmark string          `json:"benchmark"`
	GoOS      string          `json:"goos"`
	GoArch    string          `json:"goarch"`
	NumCPU    int             `json:"num_cpu"`
	Frames    int             `json:"frames_per_sequence"`
	Q         int             `json:"q"`
	Repeats   int             `json:"repeats"`
	Results   []ScalingRecord `json:"results"`
}

// FormatScalingJSON renders scaling results as indented JSON, carrying
// the run configuration from o so a captured file is self-describing.
func FormatScalingJSON(o Options, results []SpeedResult) ([]byte, error) {
	o = o.defaults()
	rep := ScalingReport{
		Benchmark: "hdvbench-scaling",
		GoOS:      runtime.GOOS,
		GoArch:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Frames:    o.Frames,
		Q:         o.Q,
		Repeats:   max(o.Repeats, 1),
		Results:   make([]ScalingRecord, 0, len(results)),
	}
	for _, r := range results {
		rep.Results = append(rep.Results, ScalingRecord{
			Direction:  strings.ToLower(r.Direction.String()),
			Resolution: r.Resolution.Name,
			Codec:      r.Codec.String(),
			Kernels:    r.Kernels.String(),
			Workers:    r.Workers,
			Slices:     max(r.Slices, 1),
			Wavefront:  r.Wavefront,
			GOP:        r.GOP,
			FPS:        r.FPS,
			Frames:     r.Frames,
		})
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// GainResult summarizes compression gains at one resolution (the §VI
// narrative numbers: "MPEG-4 achieves 39.4%, 36.7% and 34.1% ...").
type GainResult struct {
	Resolution     string
	Mpeg4VsMpeg2   float64 // bitrate saving fraction
	H264VsMpeg2    float64
	H264VsMpeg4    float64
	PSNRDiffMpeg4  float64 // quality difference vs MPEG-2 (dB)
	PSNRDiffH264   float64
	SequencesCount int
}

// CompressionGains averages per-sequence bitrate savings per resolution.
func CompressionGains(results []RDResult) []GainResult {
	type key struct {
		res string
		seq seqgen.Sequence
	}
	cells := map[key]map[CodecID]RDResult{}
	for _, r := range results {
		k := key{r.Resolution.Name, r.Sequence}
		if cells[k] == nil {
			cells[k] = map[CodecID]RDResult{}
		}
		cells[k][r.Codec] = r
	}
	agg := map[string]*GainResult{}
	for k, m := range cells {
		m2, ok2 := m[MPEG2]
		m4, ok4 := m[MPEG4]
		h, okh := m[H264]
		if !ok2 || !ok4 || !okh {
			continue
		}
		g := agg[k.res]
		if g == nil {
			g = &GainResult{Resolution: k.res}
			agg[k.res] = g
		}
		g.Mpeg4VsMpeg2 += 1 - m4.Kbps/m2.Kbps
		g.H264VsMpeg2 += 1 - h.Kbps/m2.Kbps
		g.H264VsMpeg4 += 1 - h.Kbps/m4.Kbps
		g.PSNRDiffMpeg4 += m4.PSNR - m2.PSNR
		g.PSNRDiffH264 += h.PSNR - m2.PSNR
		g.SequencesCount++
	}
	var names []string
	for name := range agg {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		if a, b := resOrder(names[i]), resOrder(names[j]); a != b {
			return a < b
		}
		return names[i] < names[j]
	})
	var out []GainResult
	for _, name := range names {
		g := agg[name]
		n := float64(g.SequencesCount)
		out = append(out, GainResult{
			Resolution:     g.Resolution,
			Mpeg4VsMpeg2:   g.Mpeg4VsMpeg2 / n,
			H264VsMpeg2:    g.H264VsMpeg2 / n,
			H264VsMpeg4:    g.H264VsMpeg4 / n,
			PSNRDiffMpeg4:  g.PSNRDiffMpeg4 / n,
			PSNRDiffH264:   g.PSNRDiffH264 / n,
			SequencesCount: g.SequencesCount,
		})
	}
	return out
}

// FormatGains renders the §VI compression-gain narrative.
func FormatGains(gains []GainResult) string {
	var b strings.Builder
	b.WriteString("Compression gains at equal quantizer (paper §VI)\n")
	for _, g := range gains {
		fmt.Fprintf(&b, "%-10s MPEG-4 vs MPEG-2: %5.1f%%   H.264 vs MPEG-2: %5.1f%%   H.264 vs MPEG-4: %5.1f%%\n",
			g.Resolution, 100*g.Mpeg4VsMpeg2, 100*g.H264VsMpeg2, 100*g.H264VsMpeg4)
	}
	return b.String()
}

// SpeedupResult pairs scalar and SIMD fps for the §VI speed-up numbers.
type SpeedupResult struct {
	Resolution string
	Codec      CodecID
	Direction  Direction
	Scalar     float64
	SIMD       float64
}

// Speedup returns SIMD/scalar.
func (s SpeedupResult) Speedup() float64 {
	if s.Scalar == 0 {
		return 0
	}
	return s.SIMD / s.Scalar
}

// Speedups joins scalar and SIMD speed runs.
func Speedups(scalar, simd []SpeedResult) []SpeedupResult {
	var out []SpeedupResult
	for _, s := range scalar {
		for _, w := range simd {
			if s.Resolution.Name == w.Resolution.Name && s.Codec == w.Codec && s.Direction == w.Direction {
				out = append(out, SpeedupResult{
					Resolution: s.Resolution.Name,
					Codec:      s.Codec,
					Direction:  s.Direction,
					Scalar:     s.FPS,
					SIMD:       w.FPS,
				})
			}
		}
	}
	return out
}

// FormatSpeedups renders the SIMD speed-up summary.
func FormatSpeedups(sp []SpeedupResult) string {
	var b strings.Builder
	b.WriteString("SIMD speed-ups (paper §VI: dec 2.13/1.88/1.55×, enc 2.46/2.42/2.31×)\n")
	for _, s := range sp {
		fmt.Fprintf(&b, "%-9s %-8s %-7s scalar %7.2f fps   SIMD %7.2f fps   speed-up %4.2fx\n",
			s.Direction, s.Codec, s.Resolution, s.Scalar, s.SIMD, s.Speedup())
	}
	return b.String()
}

// Describe summarizes the benchmark composition (Tables I-IV in prose).
func Describe() string {
	var b strings.Builder
	b.WriteString("HD-VideoBench composition\n")
	b.WriteString("  Applications (Table II):\n")
	b.WriteString("    MPEG-2 decode/encode  (libmpeg2 / FFmpeg-mpeg2 class)\n")
	b.WriteString("    MPEG-4 decode/encode  (Xvid ASP class)\n")
	b.WriteString("    H.264  decode/encode  (FFmpeg-h264 / x264 class)\n")
	b.WriteString("  Input sequences (Table III), 25 fps, 4:2:0, procedural equivalents:\n")
	for _, s := range seqgen.All {
		b.WriteString("    " + s.String() + "\n")
	}
	b.WriteString("  Resolutions: 720x576 (576p25), 1280x720 (720p25), 1920x1088 (1088p25)\n")
	b.WriteString("  Coding options (§IV / Table IV): constant QP=5 (H.264 QP=26 via Eq. 1),\n")
	b.WriteString("    GOP I-P-B-B (BFrames=2, adaptive placement disabled, first frame only intra),\n")
	b.WriteString("    EPZS motion estimation (MPEG-2/4), hexagon (H.264), search range 24,\n")
	b.WriteString("    multi-reference H.264 (4 refs), CABAC entropy\n")
	return b.String()
}
