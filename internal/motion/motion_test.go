package motion

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hdvideobench/internal/kernel"
)

// makeShifted builds a textured reference plane and a current frame that is
// the reference translated by (dx, dy).
func makeShifted(rng *rand.Rand, w, h, pad, dx, dy int) (ref []byte, refOrigin, refStride int, cur []byte, curStride int) {
	refStride = w + 2*pad
	ref = make([]byte, refStride*(h+2*pad))
	rng.Read(ref)
	// Smooth the noise so matching is unambiguous at block level but has
	// gradients (pure noise makes every SAD similar).
	for i := 1; i < len(ref); i++ {
		ref[i] = byte((3*int(ref[i-1]) + int(ref[i])) >> 2)
	}
	refOrigin = pad*refStride + pad
	curStride = w
	cur = make([]byte, w*h)
	for r := 0; r < h; r++ {
		for c := 0; c < w; c++ {
			cur[r*w+c] = ref[refOrigin+(r+dy)*refStride+(c+dx)]
		}
	}
	return
}

func newEstimator(ref []byte, refOrigin, refStride int, cur []byte, curStride int, bx, by int, k kernel.Set) *Estimator {
	e := &Estimator{
		Kern: k,
		Cur:  cur, CurOff: by*curStride + bx, CurStride: curStride,
		Ref: ref, RefOrigin: refOrigin, RefStride: refStride,
		PosX: bx, PosY: by, W: 16, H: 16,
		Lambda: 0,
	}
	e.Window(16, 64, 64, 24)
	return e
}

func TestFullSearchFindsExactShift(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, shift := range [][2]int{{0, 0}, {3, 2}, {-5, 7}, {8, -8}, {-12, -3}} {
		ref, ro, rs, cur, cs := makeShifted(rng, 64, 64, 24, shift[0], shift[1])
		e := newEstimator(ref, ro, rs, cur, cs, 24, 24, kernel.Scalar)
		res := e.FullSearch()
		if int(res.MV.X) != shift[0] || int(res.MV.Y) != shift[1] {
			t.Errorf("shift %v: full search found (%d,%d) cost %d",
				shift, res.MV.X, res.MV.Y, res.Cost)
		}
		if res.Cost != 0 {
			t.Errorf("shift %v: exact match must cost 0, got %d", shift, res.Cost)
		}
	}
}

func TestSearchersAgreeOnKernelSets(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ref, ro, rs, cur, cs := makeShifted(rng, 64, 64, 24, 4, -6)
	for _, k := range []kernel.Set{kernel.Scalar, kernel.SWAR} {
		e := newEstimator(ref, ro, rs, cur, cs, 24, 24, k)
		if res := e.FullSearch(); int(res.MV.X) != 4 || int(res.MV.Y) != -6 {
			t.Errorf("kernel %v: found (%d,%d)", k, res.MV.X, res.MV.Y)
		}
	}
}

func TestSADKernelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ref, ro, rs, cur, cs := makeShifted(rng, 64, 64, 24, 0, 0)
	es := newEstimator(ref, ro, rs, cur, cs, 16, 16, kernel.Scalar)
	ew := newEstimator(ref, ro, rs, cur, cs, 16, 16, kernel.SWAR)
	for y := -8; y <= 8; y++ {
		for x := -8; x <= 8; x++ {
			if es.SAD(x, y) != ew.SAD(x, y) {
				t.Fatalf("SAD differs at (%d,%d): %d vs %d", x, y, es.SAD(x, y), ew.SAD(x, y))
			}
		}
	}
}

// makeGradientShifted builds a smooth low-frequency texture (heavily
// blurred noise: a wide descent basin with a unique optimum) shifted by
// (dx, dy).
func makeGradientShifted(w, h, pad, dx, dy int) (ref []byte, refOrigin, refStride int, cur []byte, curStride int) {
	rng := rand.New(rand.NewSource(42))
	refStride = w + 2*pad
	rows := h + 2*pad
	ref = make([]byte, refStride*rows)
	rng.Read(ref)
	// Two passes of a separable radius-7 box blur → features ~15 px wide.
	tmp := make([]byte, len(ref))
	for pass := 0; pass < 2; pass++ {
		boxBlurH(tmp, ref, refStride, rows, 7)
		boxBlurV(ref, tmp, refStride, rows, 7)
	}
	refOrigin = pad*refStride + pad
	curStride = w
	cur = make([]byte, w*h)
	for r := 0; r < h; r++ {
		for c := 0; c < w; c++ {
			cur[r*w+c] = ref[refOrigin+(r+dy)*refStride+(c+dx)]
		}
	}
	return
}

func boxBlurH(dst, src []byte, stride, rows, rad int) {
	for r := 0; r < rows; r++ {
		for c := 0; c < stride; c++ {
			sum, n := 0, 0
			for k := -rad; k <= rad; k++ {
				if c+k >= 0 && c+k < stride {
					sum += int(src[r*stride+c+k])
					n++
				}
			}
			dst[r*stride+c] = byte(sum / n)
		}
	}
}

func boxBlurV(dst, src []byte, stride, rows, rad int) {
	for r := 0; r < rows; r++ {
		for c := 0; c < stride; c++ {
			sum, n := 0, 0
			for k := -rad; k <= rad; k++ {
				if r+k >= 0 && r+k < rows {
					sum += int(src[(r+k)*stride+c])
					n++
				}
			}
			dst[r*stride+c] = byte(sum / n)
		}
	}
}

func TestHexagonFindsLargeShiftOnSmoothTexture(t *testing.T) {
	for _, shift := range [][2]int{{10, 4}, {-9, -11}, {14, 0}} {
		ref, ro, rs, cur, cs := makeGradientShifted(64, 64, 24, shift[0], shift[1])
		e := newEstimator(ref, ro, rs, cur, cs, 24, 24, kernel.Scalar)
		res := e.HexagonSearch(MV{0, 0})
		if int(res.MV.X) != shift[0] || int(res.MV.Y) != shift[1] {
			t.Errorf("shift %v: hexagon found (%d,%d) cost %d",
				shift, res.MV.X, res.MV.Y, res.Cost)
		}
	}
}

func TestHexagonStaysAtOptimum(t *testing.T) {
	// Seeded with the true vector (the predictor case), hexagon must keep it.
	rng := rand.New(rand.NewSource(4))
	for _, shift := range [][2]int{{10, 4}, {-9, -11}} {
		ref, ro, rs, cur, cs := makeShifted(rng, 64, 64, 24, shift[0], shift[1])
		e := newEstimator(ref, ro, rs, cur, cs, 24, 24, kernel.Scalar)
		res := e.HexagonSearch(MV{int16(shift[0]), int16(shift[1])})
		if res.Cost != 0 {
			t.Errorf("shift %v: hexagon left the optimum, cost %d mv %+v",
				shift, res.Cost, res.MV)
		}
	}
}

func TestEPZSUsesPredictors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	shift := [2]int{13, -9}
	ref, ro, rs, cur, cs := makeShifted(rng, 64, 64, 24, shift[0], shift[1])
	e := newEstimator(ref, ro, rs, cur, cs, 24, 24, kernel.Scalar)
	// With the true vector among the predictors, EPZS must land on it.
	res := e.EPZS([]MV{{2, 2}, {int16(shift[0]), int16(shift[1])}}, 0)
	if int(res.MV.X) != shift[0] || int(res.MV.Y) != shift[1] || res.Cost != 0 {
		t.Errorf("EPZS found (%d,%d) cost %d, want exact %v",
			res.MV.X, res.MV.Y, res.Cost, shift)
	}
}

func TestEPZSEarlyExit(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ref, ro, rs, cur, cs := makeShifted(rng, 64, 64, 24, 0, 0)
	e := newEstimator(ref, ro, rs, cur, cs, 24, 24, kernel.Scalar)
	// Zero MV is exact; with a generous threshold EPZS must return at once.
	res := e.EPZS(nil, 1<<20)
	if res.MV != (MV{0, 0}) || res.Cost != 0 {
		t.Errorf("early exit failed: %+v", res)
	}
}

func TestSearchRespectsWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ref, ro, rs, cur, cs := makeShifted(rng, 64, 64, 24, 0, 0)
	e := newEstimator(ref, ro, rs, cur, cs, 0, 0, kernel.Scalar) // corner block
	if e.MinX > 0 || e.MinY > 0 {
		t.Fatalf("window: MinX=%d MinY=%d", e.MinX, e.MinY)
	}
	res := e.FullSearch()
	if int(res.MV.X) < e.MinX || int(res.MV.X) > e.MaxX ||
		int(res.MV.Y) < e.MinY || int(res.MV.Y) > e.MaxY {
		t.Errorf("result %+v outside window [%d,%d]x[%d,%d]",
			res.MV, e.MinX, e.MaxX, e.MinY, e.MaxY)
	}
	// Hexagon from an out-of-window start must clamp.
	res = e.HexagonSearch(MV{-100, -100})
	if int(res.MV.X) < e.MinX || int(res.MV.Y) < e.MinY {
		t.Errorf("hexagon escaped window: %+v", res.MV)
	}
}

func TestLambdaBiasesTowardPredictor(t *testing.T) {
	// On a flat (ambiguous) region, a non-zero lambda must pull the result
	// to the predictor.
	ref := make([]byte, 128*128)
	for i := range ref {
		ref[i] = 128
	}
	cur := make([]byte, 64*64)
	for i := range cur {
		cur[i] = 128
	}
	e := &Estimator{
		Kern: kernel.Scalar,
		Cur:  cur, CurOff: 24*64 + 24, CurStride: 64,
		Ref: ref, RefOrigin: 32*128 + 32, RefStride: 128,
		PosX: 24, PosY: 24, W: 16, H: 16,
		Lambda: 4, Pred: MV{5, -3},
	}
	e.Window(16, 64, 64, 24)
	res := e.FullSearch()
	if res.MV != e.Pred {
		t.Errorf("flat region with lambda: got %+v, want predictor %+v", res.MV, e.Pred)
	}
}

func TestMedianMV(t *testing.T) {
	cases := []struct{ a, b, c, want MV }{
		{MV{1, 1}, MV{2, 2}, MV{3, 3}, MV{2, 2}},
		{MV{5, 0}, MV{-5, 0}, MV{0, 7}, MV{0, 0}},
		{MV{1, 9}, MV{1, 9}, MV{100, -100}, MV{1, 9}},
	}
	for _, cse := range cases {
		if got := MedianMV(cse.a, cse.b, cse.c); got != cse.want {
			t.Errorf("median(%v,%v,%v) = %v, want %v", cse.a, cse.b, cse.c, got, cse.want)
		}
	}
}

func TestMedianMVProperty(t *testing.T) {
	// The median is always one of the inputs per component and lies between
	// the other two.
	check := func(ax, ay, bx, by, cx, cy int16) bool {
		m := MedianMV(MV{ax, ay}, MV{bx, by}, MV{cx, cy})
		okX := (m.X >= min16(ax, bx, cx)) && (m.X <= max16(ax, bx, cx))
		okY := (m.Y >= min16(ay, by, cy)) && (m.Y <= max16(ay, by, cy))
		return okX && okY
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSEBits(t *testing.T) {
	// seBits(0)=1 ("1"), seBits(±1)=3, seBits(±2)=5.
	if seBits(0) != 1 || seBits(1) != 3 || seBits(-1) != 3 || seBits(2) != 5 {
		t.Fatalf("seBits: %d %d %d %d", seBits(0), seBits(1), seBits(-1), seBits(2))
	}
}

func min16(vs ...int16) int16 {
	m := vs[0]
	for _, v := range vs[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

func max16(vs ...int16) int16 {
	m := vs[0]
	for _, v := range vs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

func BenchmarkFullSearch16(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	ref, ro, rs, cur, cs := makeShifted(rng, 64, 64, 24, 3, -2)
	e := newEstimator(ref, ro, rs, cur, cs, 24, 24, kernel.SWAR)
	for i := 0; i < b.N; i++ {
		e.FullSearch()
	}
}

func BenchmarkHexagonSearch(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	ref, ro, rs, cur, cs := makeShifted(rng, 64, 64, 24, 3, -2)
	e := newEstimator(ref, ro, rs, cur, cs, 24, 24, kernel.SWAR)
	for i := 0; i < b.N; i++ {
		e.HexagonSearch(MV{0, 0})
	}
}

func BenchmarkEPZS(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	ref, ro, rs, cur, cs := makeShifted(rng, 64, 64, 24, 3, -2)
	e := newEstimator(ref, ro, rs, cur, cs, 24, 24, kernel.SWAR)
	preds := []MV{{3, -2}, {1, 0}}
	for i := 0; i < b.N; i++ {
		e.EPZS(preds, 256)
	}
}
