package motion

// PR 4 hot-path coverage: early-termination SAD exactness on the scalar
// twin, the FullSearch predictor seed, the zero-allocation guarantee of
// the searches (asserted here so CI fails on accidental hot-path
// allocations, not just reports them), and the BenchmarkMotionSearch
// micro-benchmarks comparing thresholded vs full SAD and plane-based vs
// per-candidate interpolation.

import (
	"math/rand"
	"testing"

	"hdvideobench/internal/frame"
	"hdvideobench/internal/interp"
	"hdvideobench/internal/kernel"
)

// TestSADMaxExactness pins the SADMax contract on both kernel sets:
// exact below the threshold, >= threshold on bail, never above the
// true SAD.
func TestSADMaxExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	w, h, pad := 64, 64, 32
	stride := w + 2*pad
	ref := make([]byte, stride*(h+2*pad))
	cur := make([]byte, w*h)
	for i := range ref {
		ref[i] = byte(rng.Intn(256))
	}
	for i := range cur {
		cur[i] = byte(rng.Intn(256))
	}
	for _, k := range []kernel.Set{kernel.Scalar, kernel.SWAR} {
		e := &Estimator{
			Kern: k,
			Cur:  cur, CurOff: 16*w + 16, CurStride: w,
			Ref: ref, RefOrigin: pad*stride + pad, RefStride: stride,
			PosX: 16, PosY: 16, W: 16, H: 16,
		}
		e.Window(8, w, h, pad)
		for trial := 0; trial < 200; trial++ {
			x := rng.Intn(e.MaxX-e.MinX+1) + e.MinX
			y := rng.Intn(e.MaxY-e.MinY+1) + e.MinY
			exact := e.SAD(x, y)
			for _, max := range []int{1, exact / 2, exact, exact + 1, 1 << 30} {
				got := e.SADMax(x, y, max)
				if exact < max && got != exact {
					t.Fatalf("k=%v (%d,%d) max=%d: got %d, want %d", k, x, y, max, got, exact)
				}
				if exact >= max && got < max {
					t.Fatalf("k=%v (%d,%d) max=%d: got %d < max, exact %d", k, x, y, max, got, exact)
				}
				if got > exact {
					t.Fatalf("k=%v (%d,%d) max=%d: got %d > exact %d", k, x, y, max, got, exact)
				}
			}
		}
	}
}

// TestFullSearchDegenerateWindow pins the predictor-seed fix: with an
// inverted (empty) window, FullSearch must return a vector it actually
// evaluated — the clamped predictor with its true cost — never an
// untested zero MV behind a 1<<30 sentinel.
func TestFullSearchDegenerateWindow(t *testing.T) {
	w, h, pad := 64, 64, 32
	stride := w + 2*pad
	ref := make([]byte, stride*(h+2*pad))
	cur := make([]byte, w*h)
	for i := range ref {
		ref[i] = byte(i % 251)
	}
	for i := range cur {
		cur[i] = byte((i * 3) % 239)
	}
	e := &Estimator{
		Cur: cur, CurOff: 16*w + 16, CurStride: w,
		Ref: ref, RefOrigin: pad*stride + pad, RefStride: stride,
		PosX: 16, PosY: 16, W: 16, H: 16,
		Lambda: 4, Pred: MV{7, -3},
	}
	// Inverted x-range: the scan body never runs.
	e.MinX, e.MaxX, e.MinY, e.MaxY = 2, 1, -1, 1
	res := e.FullSearch()
	want := e.clampMV(e.Pred)
	if res.MV != want {
		t.Fatalf("MV = %+v, want clamped predictor %+v", res.MV, want)
	}
	if res.Cost >= 1<<30 {
		t.Fatalf("cost is the untested sentinel: %d", res.Cost)
	}
	if got := e.Cost(int(want.X), int(want.Y)); res.Cost != got {
		t.Fatalf("cost = %d, want evaluated cost %d", res.Cost, got)
	}
}

// TestSearchAllocs asserts the motion-search hot path performs zero
// allocations — the regular-test twin of the benchmark-smoke CI step.
func TestSearchAllocs(t *testing.T) {
	e, _ := benchWorkload()
	preds := []MV{{-7, 5}, {3, 1}}
	for name, fn := range map[string]func(){
		"EPZS":       func() { e.EPZS(preds, 0) },
		"Hexagon":    func() { e.HexagonSearch(MV{}) },
		"Diamond":    func() { e.DiamondSearch(MV{}) },
		"FullSearch": func() { e.FullSearch() },
	} {
		if allocs := testing.AllocsPerRun(20, fn); allocs != 0 {
			t.Errorf("%s allocates %.1f times per run; the search hot path must be allocation-free", name, allocs)
		}
	}
}

// benchWorkload builds a realistic block-matching workload: smooth
// texture, moderate motion, 16×16 block, ±24 window.
func benchWorkload() (*Estimator, *frame.Frame) {
	rng := rand.New(rand.NewSource(5))
	w, h := 192, 192
	f := frame.NewPadded(w, h, 32)
	for r := 0; r < h; r++ {
		for c := 0; c < w; c++ {
			f.SetLuma(r, c, byte((r*7+c*13)%251)^byte(rng.Intn(8)))
		}
	}
	f.ExtendBorders()
	cur := make([]byte, w*h)
	for r := 0; r < h; r++ {
		for c := 0; c < w; c++ {
			src := f.Y[f.YOrigin+(r+5)*f.YStride+(c-7)]
			cur[r*w+c] = src + byte(rng.Intn(5))
		}
	}
	e := &Estimator{
		Kern: kernel.SWAR,
		Cur:  cur, CurOff: 64*w + 64, CurStride: w,
		Ref: f.Y, RefOrigin: f.YOrigin, RefStride: f.YStride,
		PosX: 64, PosY: 64, W: 16, H: 16,
		Lambda: 4, Pred: MV{-7, 5},
	}
	e.Window(24, w, h, 32)
	return e, f
}

// BenchmarkMotionSearch measures the hot-path pieces this PR optimized:
// the exhaustive window scan with and without best-so-far threading, and
// quarter-pel candidate scoring via per-candidate 6-tap interpolation vs
// the precomputed half-pel planes.
func BenchmarkMotionSearch(b *testing.B) {
	e, f := benchWorkload()

	b.Run("FullSearchExhaustive", func(b *testing.B) {
		// The seed behaviour: every window position fully evaluated.
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			best := Result{Cost: 1 << 30}
			for y := e.MinY; y <= e.MaxY; y++ {
				for x := e.MinX; x <= e.MaxX; x++ {
					if c := e.Cost(x, y); c < best.Cost {
						best = Result{MV{int16(x), int16(y)}, c}
					}
				}
			}
		}
	})
	b.Run("FullSearchThresholded", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e.FullSearch()
		}
	})
	preds := []MV{{-7, 5}, {3, 1}}
	b.Run("EPZS", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e.EPZS(preds, 0)
		}
	})
	b.Run("Hexagon", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e.HexagonSearch(MV{})
		}
	})

	// Quarter-pel candidate scoring: the 16 sub-pel candidates of the
	// two-stage refinement, per-candidate interpolation vs planes.
	interp.BuildHalfPel6(f, kernel.SWAR)
	cand := make([]byte, 256)
	so := f.YOrigin + 64*f.YStride + 64
	cur := e.Cur[e.CurOff:]
	b.Run("QPelPerCandidate", func(b *testing.B) {
		var q interp.QPel
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for fy := 0; fy < 4; fy++ {
				for fx := 0; fx < 4; fx++ {
					q.Luma(cand, 16, f.Y, so, f.YStride, 16, 16, fx, fy, kernel.SWAR)
					SADBlockMax(kernel.SWAR, cur, e.CurStride, cand, 16, 16, 16, 1<<30)
				}
			}
		}
	})
	b.Run("QPelPlanes", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for fy := 0; fy < 4; fy++ {
				for fx := 0; fx < 4; fx++ {
					a, ao, b2, bo := interp.QPelSources(f.Y, f.Hpel6, so, f.YStride, fx, fy)
					if b2 == nil {
						SADBlockMax(kernel.SWAR, cur, e.CurStride, a[ao:], f.YStride, 16, 16, 1<<30)
						continue
					}
					interp.Avg2(cand, 16, a[ao:], f.YStride, b2[bo:], f.YStride, 16, 16, kernel.SWAR)
					SADBlockMax(kernel.SWAR, cur, e.CurStride, cand, 16, 16, 16, 1<<30)
				}
			}
		}
	})
	b.Run("PlaneBuild6Tap", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f.Hpel6 = nil
			interp.BuildHalfPel6(f, kernel.SWAR)
		}
	})
}
