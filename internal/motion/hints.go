package motion

import "fmt"

// Field is a per-macroblock full-pel forward motion field: the winning
// 16×16 luma vector of every macroblock of one coded frame, in the
// reference-frame pixel units of the frame it was measured at. Ladder
// encoding captures a Field per inter frame of the full-resolution rung
// (codec.Config.MotionTap) and replays it, geometry-scaled, as an extra
// EPZS predictor for each smaller rung (codec.Config.MotionHints): a
// near-optimal seed makes the early-termination machinery (CostMax /
// thresholded SAD) cut most of the search work.
//
// Writes go to disjoint macroblock cells, so slice- and wavefront-
// parallel encoders can fill one Field without synchronization.
type Field struct {
	Width, Height int // frame geometry the field was measured at
	MBW, MBH      int // macroblock grid: MBW*MBH cells
	MVs           []MV
}

// NewField allocates a zeroed field for a width×height frame.
func NewField(width, height int) *Field {
	mbw, mbh := width/16, height/16
	return &Field{Width: width, Height: height, MBW: mbw, MBH: mbh, MVs: make([]MV, mbw*mbh)}
}

// Set records the full-pel vector of macroblock (mbx, mby).
func (f *Field) Set(mbx, mby int, mv MV) { f.MVs[mby*f.MBW+mbx] = mv }

// Sample returns the field's vector for the macroblock at (mbx, mby) of
// a w×h frame, rescaled from the field's native geometry: the target
// macroblock's center pixel maps into the source frame to pick the
// source macroblock, and the source vector scales by the dimension
// ratio. w and h must not exceed the field's geometry (hints flow from
// the large rung down the ladder, never up).
func (f *Field) Sample(mbx, mby, w, h int) MV {
	if w > f.Width || h > f.Height {
		panic(fmt.Sprintf("motion: hint field is %dx%d, cannot seed %dx%d", f.Width, f.Height, w, h))
	}
	// Target MB center → source pixel → source MB, clamped to the grid.
	sx := (mbx*16 + 8) * f.Width / w / 16
	sy := (mby*16 + 8) * f.Height / h / 16
	if sx >= f.MBW {
		sx = f.MBW - 1
	}
	if sy >= f.MBH {
		sy = f.MBH - 1
	}
	mv := f.MVs[sy*f.MBW+sx]
	return MV{
		X: int16(int(mv.X) * w / f.Width),
		Y: int16(int(mv.Y) * h / f.Height),
	}
}
