package motion

// Differential harness: verbatim copies of the pre-overhaul (PR 3)
// searchers versus the optimized ones. The early-termination + dedupe
// rewrite claims bit-identical search results (see the package comment);
// this test checks that claim directly on randomized workloads, so a
// future edit that breaks the strict-comparison invariants fails here
// with the exact diverging search, not just as a digest mismatch in the
// root equivalence matrix.

import (
	"math/rand"
	"testing"
)

func seedDiamond(e *Estimator, start MV) Result {
	cur := e.clampMV(start)
	best := Result{cur, e.Cost(int(cur.X), int(cur.Y))}
	for {
		improved := false
		for _, d := range smallDiamond {
			x := int(best.MV.X) + int(d.X)
			y := int(best.MV.Y) + int(d.Y)
			if !e.inWindow(x, y) {
				continue
			}
			if c := e.Cost(x, y); c < best.Cost {
				best = Result{MV{int16(x), int16(y)}, c}
				improved = true
			}
		}
		if !improved {
			return best
		}
	}
}

func seedHexagon(e *Estimator, start MV) Result {
	cur := e.clampMV(start)
	best := Result{cur, e.Cost(int(cur.X), int(cur.Y))}
	for steps := 0; steps < 64; steps++ {
		improved := false
		center := best.MV
		for _, d := range hexPattern {
			x := int(center.X) + int(d.X)
			y := int(center.Y) + int(d.Y)
			if !e.inWindow(x, y) {
				continue
			}
			if c := e.Cost(x, y); c < best.Cost {
				best = Result{MV{int16(x), int16(y)}, c}
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return seedDiamond(e, best.MV)
}

func seedEPZS(e *Estimator, preds []MV, earlyExit int) Result {
	best := Result{Cost: 1 << 30}
	var seen [12]MV
	n := 0
	try := func(v MV) {
		v = e.clampMV(v)
		for i := 0; i < n; i++ {
			if seen[i] == v {
				return
			}
		}
		if n < len(seen) {
			seen[n] = v
			n++
		}
		if c := e.Cost(int(v.X), int(v.Y)); c < best.Cost {
			best = Result{v, c}
		}
	}
	try(MV{0, 0})
	try(e.Pred)
	for _, p := range preds {
		try(p)
	}
	if best.Cost <= earlyExit {
		return best
	}
	return seedDiamond(e, best.MV)
}

func TestDifferentialSearches(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	w, h, pad := 128, 128, 32
	stride := w + 2*pad
	ref := make([]byte, stride*(h+2*pad))
	for i := range ref {
		ref[i] = byte(rng.Intn(256))
	}
	origin := pad*stride + pad
	cur := make([]byte, w*h)
	for trial := 0; trial < 300; trial++ {
		dx, dy := rng.Intn(17)-8, rng.Intn(17)-8
		for r := 0; r < h; r++ {
			for c := 0; c < w; c++ {
				v := int(ref[origin+(r+dy)*stride+c+dx]) + rng.Intn(7) - 3
				if v < 0 {
					v = 0
				} else if v > 255 {
					v = 255
				}
				cur[r*w+c] = byte(v)
			}
		}
		e := &Estimator{
			Cur: cur, CurOff: 48*w + 48, CurStride: w,
			Ref: ref, RefOrigin: origin, RefStride: stride,
			PosX: 48, PosY: 48, W: 16, H: 16,
			Lambda: 1 + rng.Intn(8),
			Pred:   MV{int16(rng.Intn(9) - 4), int16(rng.Intn(9) - 4)},
		}
		e.Window(24, w, h, pad)
		preds := []MV{
			{int16(rng.Intn(9) - 4), int16(rng.Intn(9) - 4)},
			{int16(rng.Intn(33) - 16), int16(rng.Intn(33) - 16)},
		}
		start := MV{int16(rng.Intn(9) - 4), int16(rng.Intn(9) - 4)}

		if a, b := seedDiamond(e, start), e.DiamondSearch(start); a != b {
			t.Fatalf("trial %d diamond: seed %+v new %+v", trial, a, b)
		}
		if a, b := seedHexagon(e, start), e.HexagonSearch(start); a != b {
			t.Fatalf("trial %d hexagon: seed %+v new %+v", trial, a, b)
		}
		ee := rng.Intn(2000)
		if a, b := seedEPZS(e, preds, ee), e.EPZS(preds, ee); a != b {
			t.Fatalf("trial %d epzs(exit=%d): seed %+v new %+v", trial, ee, a, b)
		}
	}
}
