// Package motion implements full-pel motion estimation for the
// HD-VideoBench encoders: exhaustive full search (reference), small-diamond
// refinement, EPZS (Enhanced Predictive Zonal Search — the paper's choice
// for the MPEG-2 and MPEG-4 encoders) and hexagon search (the paper's
// choice for H.264, x264's `--me hex`).
//
// The SAD cost kernel follows the session-wide scalar/SWAR selection, which
// is the single largest SIMD lever in the encoders.
//
// # Early termination is invisible in the bitstream
//
// Every searcher threads its best-so-far cost into the candidate
// evaluation (CostMax): the λ·mvbits term is computed first and the SAD is
// skipped entirely when that term alone already reaches the budget;
// otherwise the SAD kernel bails as soon as its partial row-group sum
// reaches budget−mvbits. This cannot change any decision, because
//
//   - a candidate is accepted only under the strict test cost < best, and
//   - the partial SAD sum is monotone, so a bail at partial ≥ threshold
//     proves the true cost is ≥ best — exactly the candidates the full
//     evaluation would have rejected, and
//   - a candidate that is accepted never bailed, so its recorded cost (the
//     next budget) is exact.
//
// The same argument covers the duplicate-probe skipping in the diamond and
// hexagon descents: a vector probed earlier has cost ≥ the current best
// (best is the running minimum of everything probed), so re-evaluating it
// can never pass the strict test. Encoded streams are therefore
// byte-identical with and without these optimizations — pinned by the
// equivalence matrix in the repository root.
package motion

import (
	"hdvideobench/internal/frame"
	"hdvideobench/internal/interp"
	"hdvideobench/internal/kernel"
	"hdvideobench/internal/swar"
)

// MV is a full-pel motion vector.
type MV struct {
	X, Y int16
}

// Estimator evaluates block-matching costs for one current block against
// one reference plane. Fields are plain data so codecs can reuse a single
// value per macroblock loop without allocation.
type Estimator struct {
	Kern kernel.Set

	// Cur addresses the current block: Cur[CurOff + r*CurStride + c].
	Cur       []byte
	CurOff    int
	CurStride int

	// Ref addresses the reference plane: sample (y,x) of the picture is
	// Ref[RefOrigin + y*RefStride + x]. The plane must be padded. Codecs
	// may repoint Ref at a precomputed half-pel plane of the same
	// geometry to score sub-pel candidates without interpolating.
	Ref       []byte
	RefOrigin int
	RefStride int

	// Block geometry: position of the block in the picture and its size.
	PosX, PosY int
	W, H       int

	// Search window clamp in MV units (inclusive); must keep PosX+mv within
	// the padded reference area.
	MinX, MinY, MaxX, MaxY int

	// Lambda scales the motion-vector cost added to SAD; Pred is the
	// predicted MV against which vector bits are estimated.
	Lambda int
	Pred   MV
}

// Window sets the clamp window from a search range and the picture/padding
// geometry: vectors stay within ±searchRange and within pad-safe bounds.
func (e *Estimator) Window(searchRange, width, height, pad int) {
	margin := pad - 8 // keep 6-tap + qpel margin legal after refinement
	if margin < 0 {
		margin = 0
	}
	e.MinX = max(-searchRange, -e.PosX-margin)
	e.MaxX = min(searchRange, width-e.PosX-e.W+margin)
	e.MinY = max(-searchRange, -e.PosY-margin)
	e.MaxY = min(searchRange, height-e.PosY-e.H+margin)
	if e.MaxX < e.MinX {
		e.MinX, e.MaxX = 0, 0
	}
	if e.MaxY < e.MinY {
		e.MinY, e.MaxY = 0, 0
	}
}

// SAD returns the sum of absolute differences at motion vector (x, y).
//
//hdvlint:noalloc
func (e *Estimator) SAD(x, y int) int {
	so := e.RefOrigin + (e.PosY+y)*e.RefStride + (e.PosX + x)
	if e.Kern == kernel.SWAR {
		return swar.SADBlock(e.Cur[e.CurOff:], e.CurStride, e.Ref[so:], e.RefStride, e.W, e.H)
	}
	return sadScalar(e.Cur[e.CurOff:], e.CurStride, e.Ref[so:], e.RefStride, e.W, e.H)
}

// SADMax returns the SAD at (x, y) with early termination: the result is
// exact when it is < max, and some partial sum >= max otherwise, so
// `sad < max` tests decide exactly as a full SAD would.
//
//hdvlint:noalloc
func (e *Estimator) SADMax(x, y, max int) int {
	so := e.RefOrigin + (e.PosY+y)*e.RefStride + (e.PosX + x)
	if e.Kern == kernel.SWAR {
		return swar.SADBlockMax(e.Cur[e.CurOff:], e.CurStride, e.Ref[so:], e.RefStride, e.W, e.H, max)
	}
	return sadScalarMax(e.Cur[e.CurOff:], e.CurStride, e.Ref[so:], e.RefStride, e.W, e.H, max)
}

// SADBlockMax dispatches the early-termination SAD kernel on the kernel
// set, for codecs scoring candidates in scratch buffers (sub-pel
// refinement) outside an Estimator.
//
//hdvlint:noalloc
func SADBlockMax(k kernel.Set, a []byte, aStride int, b []byte, bStride, w, h, max int) int {
	if k == kernel.SWAR {
		return swar.SADBlockMax(a, aStride, b, bStride, w, h, max)
	}
	return sadScalarMax(a, aStride, b, bStride, w, h, max)
}

// SADQPel scores one quarter-pel candidate against a reference's
// precomputed 6-tap half planes (the shared core of the MPEG-4 and H.264
// sub-pel refinements): half positions SAD directly against a plane,
// quarter positions score through the fused SAD-of-average kernel — the
// |cur − avg(a,b)| sum is formed inline from the two source planes, so
// the averaged candidate block is never materialized and the early
// termination at max reaches through the averaging too. Same exactness
// contract as SADBlockMax: exact when the result is < max, some partial
// sum >= max otherwise. cur addresses the current block at curStride; so
// is the integer-pel top-left offset into the reference's
// (plane-geometry) luma, fx/fy the quarter-pel fractions.
//
//hdvlint:noalloc
func SADQPel(k kernel.Set, cur []byte, curStride int, ref *frame.Frame, so, w, h, fx, fy, max int) int {
	a, ao, b, bo := interp.QPelSources(ref.Y, ref.Hpel6, so, ref.YStride, fx, fy)
	if b == nil {
		return SADBlockMax(k, cur, curStride, a[ao:], ref.YStride, w, h, max)
	}
	if k == kernel.SWAR {
		return swar.SADAvg2Max(cur, curStride, a[ao:], ref.YStride, b[bo:], ref.YStride, w, h, max)
	}
	return sadAvg2ScalarMax(cur, curStride, a[ao:], ref.YStride, b[bo:], ref.YStride, w, h, max)
}

//hdvlint:noalloc
func sadScalar(a []byte, aStride int, b []byte, bStride, w, h int) int {
	sad := 0
	for r := 0; r < h; r++ {
		ar := a[r*aStride : r*aStride+w]
		br := b[r*bStride : r*bStride+w]
		for i := 0; i < w; i++ {
			d := int(ar[i]) - int(br[i])
			if d < 0 {
				d = -d
			}
			sad += d
		}
	}
	return sad
}

// sadScalarMax is the scalar twin of swar.SADBlockMax: exact below max,
// bails on complete row groups once the partial sum reaches max.
//
//hdvlint:noalloc
func sadScalarMax(a []byte, aStride int, b []byte, bStride, w, h, max int) int {
	sad := 0
	for r := 0; r < h; {
		lim := min(r+4, h)
		for ; r < lim; r++ {
			ar := a[r*aStride : r*aStride+w]
			br := b[r*bStride : r*bStride+w]
			for i := 0; i < w; i++ {
				d := int(ar[i]) - int(br[i])
				if d < 0 {
					d = -d
				}
				sad += d
			}
		}
		if sad >= max {
			return sad
		}
	}
	return sad
}

// sadAvg2ScalarMax is the scalar twin of swar.SADAvg2Max: the SAD of cur
// against the rounded average of a and b, exact below max, bailing on
// complete row groups once the partial sum reaches max.
//
//hdvlint:noalloc
func sadAvg2ScalarMax(cur []byte, curStride int, a []byte, aStride int, b []byte, bStride, w, h, max int) int {
	sad := 0
	for r := 0; r < h; {
		lim := min(r+4, h)
		for ; r < lim; r++ {
			cr := cur[r*curStride : r*curStride+w]
			ar := a[r*aStride : r*aStride+w]
			br := b[r*bStride : r*bStride+w]
			for i := 0; i < w; i++ {
				d := int(cr[i]) - (int(ar[i])+int(br[i])+1)>>1
				if d < 0 {
					d = -d
				}
				sad += d
			}
		}
		if sad >= max {
			return sad
		}
	}
	return sad
}

// Cost returns SAD plus the λ-weighted estimated bit cost of coding
// (x,y) − Pred.
//
//hdvlint:noalloc
func (e *Estimator) Cost(x, y int) int {
	return e.SAD(x, y) + e.Lambda*mvBits(x-int(e.Pred.X), y-int(e.Pred.Y))
}

// CostMax returns Cost(x, y) with the best-so-far cost as a budget: the
// result is exact whenever it is < budget. When the true cost is >= budget
// it may return early — skipping the SAD entirely if λ·mvbits alone
// already loses — with some value >= budget, so the strict acceptance test
// `cost < budget` decides exactly as the full evaluation would.
//
//hdvlint:noalloc
func (e *Estimator) CostMax(x, y, budget int) int {
	mvCost := e.Lambda * mvBits(x-int(e.Pred.X), y-int(e.Pred.Y))
	if mvCost >= budget {
		return mvCost
	}
	return e.SADMax(x, y, budget-mvCost) + mvCost
}

// MVCost returns the λ-weighted vector-bit cost of (x, y) — the non-SAD
// term of Cost. A search winner's cost is always exact (an accepted
// candidate never bailed), so callers recover its exact SAD as
// Result.Cost − MVCost(Result.MV) without re-reading a single pixel.
//
//hdvlint:noalloc
func (e *Estimator) MVCost(x, y int) int {
	return e.Lambda * mvBits(x-int(e.Pred.X), y-int(e.Pred.Y))
}

// mvBits estimates the Exp-Golomb bit cost of a motion vector difference.
func mvBits(dx, dy int) int {
	return seBits(dx) + seBits(dy)
}

func seBits(v int) int {
	if v < 0 {
		v = -v
	}
	u := 2 * v // signed Exp-Golomb index magnitude
	n := 1
	for u > 0 {
		u = (u - 1) >> 1
		n += 2
	}
	return n
}

func (e *Estimator) inWindow(x, y int) bool {
	return x >= e.MinX && x <= e.MaxX && y >= e.MinY && y <= e.MaxY
}

// clampMV clamps v into the estimator window.
func (e *Estimator) clampMV(v MV) MV {
	x := min(max(int(v.X), e.MinX), e.MaxX)
	y := min(max(int(v.Y), e.MinY), e.MaxY)
	return MV{int16(x), int16(y)}
}

// Result is the outcome of a search: the best vector and its cost
// (SAD + λ·bits).
type Result struct {
	MV   MV
	Cost int
}

// probeRing remembers recently probed vectors so the refinement descents
// skip re-evaluating them. The dedupe is best-effort (a bounded ring):
// missing a duplicate merely costs a redundant evaluation whose strict
// `cost < best` test cannot change the outcome, so search results are
// identical with or without it (see the package comment).
type probeRing struct {
	mvs  [16]MV
	n    int
	head int
}

func (p *probeRing) seen(v MV) bool {
	for i := 0; i < p.n; i++ {
		if p.mvs[i] == v {
			return true
		}
	}
	return false
}

func (p *probeRing) add(v MV) {
	p.mvs[p.head] = v
	p.head++
	if p.head == len(p.mvs) {
		p.head = 0
	}
	if p.n < len(p.mvs) {
		p.n++
	}
}

// FullSearch exhaustively scans the window. It is the reference searcher
// (and the ablation baseline — the paper's codecs use fast searches
// precisely because full search is unusably slow at HD). The scan is
// seeded from the clamped predictor, so a degenerate (empty or
// single-point) window can never report an untested vector with a
// sentinel cost.
//
//hdvlint:noalloc
func (e *Estimator) FullSearch() Result {
	start := e.clampMV(e.Pred)
	best := Result{start, e.Cost(int(start.X), int(start.Y))}
	for y := e.MinY; y <= e.MaxY; y++ {
		for x := e.MinX; x <= e.MaxX; x++ {
			if x == int(start.X) && y == int(start.Y) {
				continue // seeded
			}
			if c := e.CostMax(x, y, best.Cost); c < best.Cost {
				best = Result{MV{int16(x), int16(y)}, c}
			}
		}
	}
	return best
}

var smallDiamond = [4]MV{{0, -1}, {-1, 0}, {1, 0}, {0, 1}}

// DiamondSearch refines start with a small-diamond pattern until no move
// improves the cost.
//
//hdvlint:noalloc
func (e *Estimator) DiamondSearch(start MV) Result {
	cur := e.clampMV(start)
	var ring probeRing
	return e.diamondFrom(Result{cur, e.Cost(int(cur.X), int(cur.Y))}, &ring)
}

// diamondFrom runs the small-diamond descent from an already-evaluated
// result (MV inside the window, Cost exact). ring carries the vectors
// probed so far by the caller.
//
//hdvlint:noalloc
func (e *Estimator) diamondFrom(best Result, ring *probeRing) Result {
	if !ring.seen(best.MV) {
		ring.add(best.MV)
	}
	for {
		improved := false
		// Candidates are relative to best.MV, which moves mid-iteration:
		// the descent greedily re-centers as soon as a probe improves.
		for _, d := range smallDiamond {
			x := int(best.MV.X) + int(d.X)
			y := int(best.MV.Y) + int(d.Y)
			if !e.inWindow(x, y) {
				continue
			}
			v := MV{int16(x), int16(y)}
			if ring.seen(v) {
				continue
			}
			ring.add(v)
			if c := e.CostMax(x, y, best.Cost); c < best.Cost {
				best = Result{v, c}
				improved = true
			}
		}
		if !improved {
			return best
		}
	}
}

// hexPattern is the large hexagon (x264's hex search step).
var hexPattern = [6]MV{{-2, 0}, {-1, -2}, {1, -2}, {2, 0}, {1, 2}, {-1, 2}}

// HexagonSearch runs a large-hexagon descent from start followed by
// small-diamond refinement — the `--me hex` algorithm of the paper's x264
// configuration (Zhu/Lin/Chau hexagon-based search).
//
//hdvlint:noalloc
func (e *Estimator) HexagonSearch(start MV) Result {
	cur := e.clampMV(start)
	return e.HexagonFrom(Result{cur, e.Cost(int(cur.X), int(cur.Y))})
}

// HexagonFrom is HexagonSearch continuing from an already-evaluated result
// (MV inside the window, Cost exact): callers chaining searches (EPZS →
// hexagon) avoid re-evaluating the start vector.
//
//hdvlint:noalloc
func (e *Estimator) HexagonFrom(best Result) Result {
	var ring probeRing
	ring.add(best.MV)
	for steps := 0; steps < 64; steps++ {
		improved := false
		center := best.MV
		for _, d := range hexPattern {
			x := int(center.X) + int(d.X)
			y := int(center.Y) + int(d.Y)
			if !e.inWindow(x, y) {
				continue
			}
			v := MV{int16(x), int16(y)}
			if ring.seen(v) {
				continue // three of six points repeat after each move
			}
			ring.add(v)
			if c := e.CostMax(x, y, best.Cost); c < best.Cost {
				best = Result{v, c}
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	// Final small-diamond refinement (its ±1 candidates are disjoint from
	// the hexagon's ±2 probes, so a fresh ring is enough).
	var dring probeRing
	return e.diamondFrom(best, &dring)
}

// EPZS implements Enhanced Predictive Zonal Search: evaluate a predictor
// set (median/spatial neighbours, collocated, accelerated, zero), early-out
// if the best predictor is already below the adaptive threshold, otherwise
// refine with a small diamond. preds may contain duplicates; they are
// deduplicated cheaply, and the diamond refinement inherits the probed set
// so it never re-scores a predictor.
//
//hdvlint:noalloc
func (e *Estimator) EPZS(preds []MV, earlyExit int) Result {
	best := Result{Cost: 1 << 30}
	var seen [12]MV
	n := 0
	//hdvlint:allow noalloc -- try never escapes, so it stays on the stack; TestSearchAllocs pins EPZS at 0 allocs/op
	try := func(v MV) {
		v = e.clampMV(v)
		for i := 0; i < n; i++ {
			if seen[i] == v {
				return
			}
		}
		if n < len(seen) {
			seen[n] = v
			n++
		}
		if c := e.CostMax(int(v.X), int(v.Y), best.Cost); c < best.Cost {
			best = Result{v, c}
		}
	}
	try(MV{0, 0})
	try(e.Pred)
	for _, p := range preds {
		try(p)
	}
	if best.Cost <= earlyExit {
		return best
	}
	var ring probeRing
	for i := 0; i < n; i++ {
		ring.add(seen[i])
	}
	return e.diamondFrom(best, &ring)
}

// MedianMV returns the component-wise median of three predictors, the
// standard spatial MV predictor of MPEG-4 and H.264.
func MedianMV(a, b, c MV) MV {
	return MV{median3(a.X, b.X, c.X), median3(a.Y, b.Y, c.Y)}
}

func median3(a, b, c int16) int16 {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
