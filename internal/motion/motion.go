// Package motion implements full-pel motion estimation for the
// HD-VideoBench encoders: exhaustive full search (reference), small-diamond
// refinement, EPZS (Enhanced Predictive Zonal Search — the paper's choice
// for the MPEG-2 and MPEG-4 encoders) and hexagon search (the paper's
// choice for H.264, x264's `--me hex`).
//
// The SAD cost kernel follows the session-wide scalar/SWAR selection, which
// is the single largest SIMD lever in the encoders.
package motion

import (
	"hdvideobench/internal/kernel"
	"hdvideobench/internal/swar"
)

// MV is a full-pel motion vector.
type MV struct {
	X, Y int16
}

// Estimator evaluates block-matching costs for one current block against
// one reference plane. Fields are plain data so codecs can reuse a single
// value per macroblock loop without allocation.
type Estimator struct {
	Kern kernel.Set

	// Cur addresses the current block: Cur[CurOff + r*CurStride + c].
	Cur       []byte
	CurOff    int
	CurStride int

	// Ref addresses the reference plane: sample (y,x) of the picture is
	// Ref[RefOrigin + y*RefStride + x]. The plane must be padded.
	Ref       []byte
	RefOrigin int
	RefStride int

	// Block geometry: position of the block in the picture and its size.
	PosX, PosY int
	W, H       int

	// Search window clamp in MV units (inclusive); must keep PosX+mv within
	// the padded reference area.
	MinX, MinY, MaxX, MaxY int

	// Lambda scales the motion-vector cost added to SAD; Pred is the
	// predicted MV against which vector bits are estimated.
	Lambda int
	Pred   MV
}

// Window sets the clamp window from a search range and the picture/padding
// geometry: vectors stay within ±searchRange and within pad-safe bounds.
func (e *Estimator) Window(searchRange, width, height, pad int) {
	margin := pad - 8 // keep 6-tap + qpel margin legal after refinement
	if margin < 0 {
		margin = 0
	}
	e.MinX = max(-searchRange, -e.PosX-margin)
	e.MaxX = min(searchRange, width-e.PosX-e.W+margin)
	e.MinY = max(-searchRange, -e.PosY-margin)
	e.MaxY = min(searchRange, height-e.PosY-e.H+margin)
	if e.MaxX < e.MinX {
		e.MinX, e.MaxX = 0, 0
	}
	if e.MaxY < e.MinY {
		e.MinY, e.MaxY = 0, 0
	}
}

// SAD returns the sum of absolute differences at motion vector (x, y).
func (e *Estimator) SAD(x, y int) int {
	so := e.RefOrigin + (e.PosY+y)*e.RefStride + (e.PosX + x)
	if e.Kern == kernel.SWAR {
		return swar.SADBlock(e.Cur[e.CurOff:], e.CurStride, e.Ref[so:], e.RefStride, e.W, e.H)
	}
	return sadScalar(e.Cur[e.CurOff:], e.CurStride, e.Ref[so:], e.RefStride, e.W, e.H)
}

func sadScalar(a []byte, aStride int, b []byte, bStride, w, h int) int {
	sad := 0
	for r := 0; r < h; r++ {
		ar := a[r*aStride : r*aStride+w]
		br := b[r*bStride : r*bStride+w]
		for i := 0; i < w; i++ {
			d := int(ar[i]) - int(br[i])
			if d < 0 {
				d = -d
			}
			sad += d
		}
	}
	return sad
}

// Cost returns SAD plus the λ-weighted estimated bit cost of coding
// (x,y) − Pred.
func (e *Estimator) Cost(x, y int) int {
	return e.SAD(x, y) + e.Lambda*mvBits(x-int(e.Pred.X), y-int(e.Pred.Y))
}

// mvBits estimates the Exp-Golomb bit cost of a motion vector difference.
func mvBits(dx, dy int) int {
	return seBits(dx) + seBits(dy)
}

func seBits(v int) int {
	if v < 0 {
		v = -v
	}
	u := 2 * v // signed Exp-Golomb index magnitude
	n := 1
	for u > 0 {
		u = (u - 1) >> 1
		n += 2
	}
	return n
}

func (e *Estimator) inWindow(x, y int) bool {
	return x >= e.MinX && x <= e.MaxX && y >= e.MinY && y <= e.MaxY
}

// clampMV clamps v into the estimator window.
func (e *Estimator) clampMV(v MV) MV {
	x := min(max(int(v.X), e.MinX), e.MaxX)
	y := min(max(int(v.Y), e.MinY), e.MaxY)
	return MV{int16(x), int16(y)}
}

// Result is the outcome of a search: the best vector and its cost
// (SAD + λ·bits).
type Result struct {
	MV   MV
	Cost int
}

// FullSearch exhaustively scans the window. It is the reference searcher
// (and the ablation baseline — the paper's codecs use fast searches
// precisely because full search is unusably slow at HD).
func (e *Estimator) FullSearch() Result {
	best := Result{Cost: 1 << 30}
	for y := e.MinY; y <= e.MaxY; y++ {
		for x := e.MinX; x <= e.MaxX; x++ {
			if c := e.Cost(x, y); c < best.Cost {
				best = Result{MV{int16(x), int16(y)}, c}
			}
		}
	}
	return best
}

var smallDiamond = [4]MV{{0, -1}, {-1, 0}, {1, 0}, {0, 1}}

// DiamondSearch refines start with a small-diamond pattern until no move
// improves the cost.
func (e *Estimator) DiamondSearch(start MV) Result {
	cur := e.clampMV(start)
	best := Result{cur, e.Cost(int(cur.X), int(cur.Y))}
	for {
		improved := false
		for _, d := range smallDiamond {
			x := int(best.MV.X) + int(d.X)
			y := int(best.MV.Y) + int(d.Y)
			if !e.inWindow(x, y) {
				continue
			}
			if c := e.Cost(x, y); c < best.Cost {
				best = Result{MV{int16(x), int16(y)}, c}
				improved = true
			}
		}
		if !improved {
			return best
		}
	}
}

// hexPattern is the large hexagon (x264's hex search step).
var hexPattern = [6]MV{{-2, 0}, {-1, -2}, {1, -2}, {2, 0}, {1, 2}, {-1, 2}}

// HexagonSearch runs a large-hexagon descent from start followed by
// small-diamond refinement — the `--me hex` algorithm of the paper's x264
// configuration (Zhu/Lin/Chau hexagon-based search).
func (e *Estimator) HexagonSearch(start MV) Result {
	cur := e.clampMV(start)
	best := Result{cur, e.Cost(int(cur.X), int(cur.Y))}
	for steps := 0; steps < 64; steps++ {
		improved := false
		center := best.MV
		for _, d := range hexPattern {
			x := int(center.X) + int(d.X)
			y := int(center.Y) + int(d.Y)
			if !e.inWindow(x, y) {
				continue
			}
			if c := e.Cost(x, y); c < best.Cost {
				best = Result{MV{int16(x), int16(y)}, c}
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	// Final small-diamond refinement.
	return e.DiamondSearch(best.MV)
}

// EPZS implements Enhanced Predictive Zonal Search: evaluate a predictor
// set (median/spatial neighbours, collocated, accelerated, zero), early-out
// if the best predictor is already below the adaptive threshold, otherwise
// refine with a small diamond. preds may contain duplicates; they are
// deduplicated cheaply.
func (e *Estimator) EPZS(preds []MV, earlyExit int) Result {
	best := Result{Cost: 1 << 30}
	var seen [12]MV
	n := 0
	try := func(v MV) {
		v = e.clampMV(v)
		for i := 0; i < n; i++ {
			if seen[i] == v {
				return
			}
		}
		if n < len(seen) {
			seen[n] = v
			n++
		}
		if c := e.Cost(int(v.X), int(v.Y)); c < best.Cost {
			best = Result{v, c}
		}
	}
	try(MV{0, 0})
	try(e.Pred)
	for _, p := range preds {
		try(p)
	}
	if best.Cost <= earlyExit {
		return best
	}
	return e.DiamondSearch(best.MV)
}

// MedianMV returns the component-wise median of three predictors, the
// standard spatial MV predictor of MPEG-4 and H.264.
func MedianMV(a, b, c MV) MV {
	return MV{median3(a.X, b.X, c.X), median3(a.Y, b.Y, c.Y)}
}

func median3(a, b, c int16) int16 {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
