package codec

import (
	"sort"

	"hdvideobench/internal/container"
	"hdvideobench/internal/frame"
)

// GOPEntry is one scheduling decision: code Frame as Type now.
type GOPEntry struct {
	Frame *frame.Frame
	Type  container.FrameType
}

// GOPScheduler turns display-order input into coding-order entries for the
// paper's GOP: first frame I, then repeating B…B P groups ("I-P-B-B" with
// adaptive placement disabled), optional periodic intra refresh.
//
// Intra refresh produces *closed* GOPs: at a refresh boundary any buffered
// B candidates are coded as trailing P pictures (exactly as at end of
// stream) before the I frame opens the next GOP, so no picture references
// across an I frame. Every intra period is therefore independently
// codable and decodable — the invariant the internal/pipeline GOP-chunk
// parallelism relies on to keep parallel output byte-identical to serial.
type GOPScheduler struct {
	BFrames     int
	IntraPeriod int

	// SceneCut enables adaptive I-frame placement (Config.SceneCutIntra):
	// a frame whose subsampled-luma SAD against the previous input spikes
	// far above the running intra-shot average is promoted to a closed-GOP
	// I frame, exactly as if an IntraPeriod boundary fell there. Detection
	// state is local to this scheduler, so with GOP-chunk parallelism each
	// chunk detects cuts against its own history.
	SceneCut bool

	pending  []*frame.Frame // buffered B candidates
	count    int            // display frames consumed
	gopStart int            // display index of the current GOP's I frame

	prevGrid []byte // 1/8-subsampled luma of the previous pushed frame
	sadSum   int    // running sum of intra-shot grid SADs
	sadN     int
}

// The spike rule for SceneCut: a cut needs a mean absolute grid
// difference above sceneCutFloor AND sceneCutRatio times the running
// intra-shot average — the floor rejects global flicker on near-static
// shots, the ratio tracks each shot's own motion level.
const (
	sceneCutFloor = 12
	sceneCutRatio = 3
)

// observeCut folds one input frame into the detector and reports
// whether it starts a new shot.
func (g *GOPScheduler) observeCut(f *frame.Frame) bool {
	gw := (f.Width + 7) / 8
	gh := (f.Height + 7) / 8
	grid := make([]byte, gw*gh)
	for y := 0; y < gh; y++ {
		row := f.YOrigin + y*8*f.YStride
		for x := 0; x < gw; x++ {
			grid[y*gw+x] = f.Y[row+x*8]
		}
	}
	cut := false
	if len(g.prevGrid) == len(grid) {
		sad := 0
		for i, v := range grid {
			d := int(v) - int(g.prevGrid[i])
			if d < 0 {
				d = -d
			}
			sad += d
		}
		if g.sadN > 0 && sad > sceneCutFloor*len(grid) && sad > sceneCutRatio*(g.sadSum/g.sadN) {
			cut = true
		} else {
			// Only intra-shot SADs feed the running average, so one cut
			// does not desensitize the detector to the next.
			g.sadSum += sad
			g.sadN++
		}
	}
	g.prevGrid = grid
	return cut
}

// Push accepts the next display-order frame and returns the entries that
// can be coded now (a reference frame followed by its leading B pictures).
func (g *GOPScheduler) Push(f *frame.Frame) []GOPEntry {
	idx := g.count
	g.count++
	cut := false
	if g.SceneCut {
		cut = g.observeCut(f)
	}
	if idx == 0 || (g.IntraPeriod > 0 && idx%g.IntraPeriod == 0) || cut {
		// Closed-GOP boundary: drain B candidates as trailing P pictures,
		// then open the new GOP with an I frame.
		entries := make([]GOPEntry, 0, len(g.pending)+1)
		for _, b := range g.pending {
			entries = append(entries, GOPEntry{b, container.FrameP})
		}
		g.pending = g.pending[:0]
		g.gopStart = idx
		return append(entries, GOPEntry{f, container.FrameI})
	}
	// Position within the current GOP's B…B P group.
	pos := (idx - g.gopStart - 1) % (g.BFrames + 1)
	if pos < g.BFrames {
		g.pending = append(g.pending, f)
		return nil
	}
	// Reference frame, coded before the buffered B frames that precede it
	// in display order.
	entries := make([]GOPEntry, 0, 1+len(g.pending))
	entries = append(entries, GOPEntry{f, container.FrameP})
	for _, b := range g.pending {
		entries = append(entries, GOPEntry{b, container.FrameB})
	}
	g.pending = g.pending[:0]
	return entries
}

// Flush codes any trailing buffered frames. Without a backward reference
// they are coded as P pictures (standard end-of-stream encoder behaviour).
func (g *GOPScheduler) Flush() []GOPEntry {
	entries := make([]GOPEntry, 0, len(g.pending))
	for _, b := range g.pending {
		entries = append(entries, GOPEntry{b, container.FrameP})
	}
	g.pending = g.pending[:0]
	return entries
}

// DisplayReorderer restores display order from coding order on the decoder
// side using the packets' display indices.
type DisplayReorderer struct {
	next    int
	pending map[int]*frame.Frame
}

// Add registers a decoded frame (PTS = display index) and returns all
// frames that are now contiguously displayable.
func (d *DisplayReorderer) Add(f *frame.Frame) []*frame.Frame {
	if d.pending == nil {
		d.pending = make(map[int]*frame.Frame)
	}
	d.pending[f.PTS] = f
	var out []*frame.Frame
	for {
		nf, ok := d.pending[d.next]
		if !ok {
			return out
		}
		delete(d.pending, d.next)
		d.next++
		out = append(out, nf)
	}
}

// Flush returns any frames still buffered, in display order (gaps are
// skipped — they indicate a truncated stream).
func (d *DisplayReorderer) Flush() []*frame.Frame {
	keys := make([]int, 0, len(d.pending))
	//hdvlint:allow determinism -- key order is fixed by the sort below
	for idx := range d.pending {
		keys = append(keys, idx)
	}
	sort.Ints(keys)
	out := make([]*frame.Frame, 0, len(keys))
	for _, idx := range keys {
		out = append(out, d.pending[idx])
		delete(d.pending, idx)
		d.next = idx + 1
	}
	return out
}

// RefList is a most-recent-first list of reconstructed reference frames
// with a fixed capacity (H.264 multi-reference prediction).
type RefList struct {
	Max    int
	frames []*frame.Frame
}

// Add pushes a new reference, evicting the oldest beyond Max.
func (l *RefList) Add(f *frame.Frame) {
	l.frames = append([]*frame.Frame{f}, l.frames...)
	if len(l.frames) > l.Max {
		l.frames = l.frames[:l.Max]
	}
}

// Len returns the number of available references.
func (l *RefList) Len() int { return len(l.frames) }

// Get returns reference i (0 = most recent).
func (l *RefList) Get(i int) *frame.Frame { return l.frames[i] }

// Reset clears the list (intra refresh).
func (l *RefList) Reset() { l.frames = l.frames[:0] }
