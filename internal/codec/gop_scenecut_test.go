package codec

import (
	"testing"

	"hdvideobench/internal/container"
	"hdvideobench/internal/seqgen"
)

// scheduleTypes pushes frames [0, n) of seq through g and returns the
// coded frame type per display index.
func scheduleTypes(t *testing.T, g *GOPScheduler, seq seqgen.Sequence, n int) map[int]container.FrameType {
	t.Helper()
	gen := seqgen.New(seq, 176, 144)
	types := map[int]container.FrameType{}
	collect := func(entries []GOPEntry) {
		for _, e := range entries {
			if old, dup := types[e.Frame.PTS]; dup {
				t.Fatalf("frame %d scheduled twice (%v then %v)", e.Frame.PTS, old, e.Type)
			}
			types[e.Frame.PTS] = e.Type
		}
	}
	for i := 0; i < n; i++ {
		collect(g.Push(gen.Frame(i)))
	}
	collect(g.Flush())
	if len(types) != n {
		t.Fatalf("scheduled %d frames, want %d", len(types), n)
	}
	return types
}

// TestSceneCutIntraPlacement feeds the scene_cut sequence (hard shot
// alternation every seqgen.SceneCutPeriod frames) to the scheduler with
// adaptive placement on: every shot boundary must open a closed GOP
// with an I frame, and the moderate in-shot motion must not trigger
// spurious I frames anywhere else.
func TestSceneCutIntraPlacement(t *testing.T) {
	const n = 3*seqgen.SceneCutPeriod + 4
	g := &GOPScheduler{BFrames: 2, SceneCut: true}
	types := scheduleTypes(t, g, seqgen.SceneCut, n)
	for i := 0; i < n; i++ {
		boundary := i%seqgen.SceneCutPeriod == 0
		if boundary && types[i] != container.FrameI {
			t.Errorf("frame %d: shot boundary coded as %v, want I", i, types[i])
		}
		if !boundary && types[i] == container.FrameI {
			t.Errorf("frame %d: spurious I frame inside a shot", i)
		}
	}
}

// TestSceneCutOffKeepsStructure pins the default: with SceneCut off the
// same input keeps the paper's first-frame-only-intra GOP structure.
func TestSceneCutOffKeepsStructure(t *testing.T) {
	const n = 2*seqgen.SceneCutPeriod + 1
	g := &GOPScheduler{BFrames: 2}
	types := scheduleTypes(t, g, seqgen.SceneCut, n)
	for i := 0; i < n; i++ {
		if (types[i] == container.FrameI) != (i == 0) {
			t.Errorf("frame %d coded as %v with adaptive placement off", i, types[i])
		}
	}
}

// TestSceneCutSteadySequence checks the detector's false-positive side:
// a continuously panning shot with no cuts must never promote a frame.
func TestSceneCutSteadySequence(t *testing.T) {
	const n = 2 * seqgen.SceneCutPeriod
	g := &GOPScheduler{BFrames: 2, SceneCut: true}
	types := scheduleTypes(t, g, seqgen.SportPan, n)
	for i := 1; i < n; i++ {
		if types[i] == container.FrameI {
			t.Errorf("frame %d: pan motion misdetected as a scene cut", i)
		}
	}
}
