package codec

import (
	"bytes"
	"math/rand"
	"testing"

	"hdvideobench/internal/container"
	"hdvideobench/internal/frame"
	"hdvideobench/internal/kernel"
)

func TestDefaultConfigMatchesPaper(t *testing.T) {
	c := Default(1280, 720)
	if c.Q != 5 {
		t.Errorf("Q = %d, want 5 (vqscale=5)", c.Q)
	}
	if c.BFrames != 2 {
		t.Errorf("BFrames = %d, want 2 (I-P-B-B)", c.BFrames)
	}
	if c.IntraPeriod != 0 {
		t.Errorf("IntraPeriod = %d, want 0 (only first frame intra)", c.IntraPeriod)
	}
	if c.SearchRange != 24 {
		t.Errorf("SearchRange = %d, want 24 (x264 --merange 24)", c.SearchRange)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Config{
		{Width: 0, Height: 16, Q: 5, BFrames: 2, SearchRange: 16, Refs: 1, FPSNum: 25, FPSDen: 1},
		{Width: 100, Height: 100, Q: 5, BFrames: 2, SearchRange: 16, Refs: 1, FPSNum: 25, FPSDen: 1},
		{Width: 64, Height: 64, Q: 0, BFrames: 2, SearchRange: 16, Refs: 1, FPSNum: 25, FPSDen: 1},
		{Width: 64, Height: 64, Q: 5, BFrames: 9, SearchRange: 16, Refs: 1, FPSNum: 25, FPSDen: 1},
		{Width: 64, Height: 64, Q: 5, BFrames: 2, SearchRange: 99, Refs: 1, FPSNum: 25, FPSDen: 1},
		{Width: 64, Height: 64, Q: 5, BFrames: 2, SearchRange: 16, Refs: 0, FPSNum: 25, FPSDen: 1},
		{Width: 64, Height: 64, Q: 5, BFrames: 2, SearchRange: 16, Refs: 1, FPSNum: 0, FPSDen: 1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func mkFrame(pts int) *frame.Frame {
	f := frame.New(16, 16)
	f.PTS = pts
	return f
}

func TestGOPSchedulerIPBB(t *testing.T) {
	g := &GOPScheduler{BFrames: 2}
	var order []GOPEntry
	for i := 0; i < 7; i++ {
		order = append(order, g.Push(mkFrame(i))...)
	}
	order = append(order, g.Flush()...)

	wantTypes := []container.FrameType{'I', 'P', 'B', 'B', 'P', 'B', 'B'}
	wantPTS := []int{0, 3, 1, 2, 6, 4, 5}
	if len(order) != len(wantTypes) {
		t.Fatalf("got %d entries, want %d", len(order), len(wantTypes))
	}
	for i, e := range order {
		if e.Type != wantTypes[i] || e.Frame.PTS != wantPTS[i] {
			t.Errorf("entry %d: type %c pts %d, want %c pts %d",
				i, e.Type, e.Frame.PTS, wantTypes[i], wantPTS[i])
		}
	}
}

func TestGOPSchedulerTrailingBs(t *testing.T) {
	g := &GOPScheduler{BFrames: 2}
	var order []GOPEntry
	for i := 0; i < 5; i++ { // I P B B + one trailing candidate
		order = append(order, g.Push(mkFrame(i))...)
	}
	order = append(order, g.Flush()...)
	// Display 4 has no backward reference → coded as P at flush.
	last := order[len(order)-1]
	if last.Type != container.FrameP || last.Frame.PTS != 4 {
		t.Errorf("trailing frame: type %c pts %d", last.Type, last.Frame.PTS)
	}
}

func TestGOPSchedulerNoBFrames(t *testing.T) {
	g := &GOPScheduler{BFrames: 0}
	var order []GOPEntry
	for i := 0; i < 4; i++ {
		order = append(order, g.Push(mkFrame(i))...)
	}
	for i, e := range order {
		if e.Frame.PTS != i {
			t.Errorf("entry %d: pts %d", i, e.Frame.PTS)
		}
		wantT := container.FrameP
		if i == 0 {
			wantT = container.FrameI
		}
		if e.Type != wantT {
			t.Errorf("entry %d: type %c", i, e.Type)
		}
	}
}

func TestGOPSchedulerIntraPeriod(t *testing.T) {
	g := &GOPScheduler{BFrames: 0, IntraPeriod: 3}
	var types []container.FrameType
	for i := 0; i < 7; i++ {
		for _, e := range g.Push(mkFrame(i)) {
			types = append(types, e.Type)
		}
	}
	want := []container.FrameType{'I', 'P', 'P', 'I', 'P', 'P', 'I'}
	for i := range want {
		if types[i] != want[i] {
			t.Errorf("frame %d: %c, want %c", i, types[i], want[i])
		}
	}
}

func TestGOPSchedulerClosedGOP(t *testing.T) {
	// IntraPeriod with B frames must produce *closed* GOPs: the B
	// candidates buffered when a refresh arrives are coded as trailing P
	// pictures before the I, so nothing references across the boundary
	// and each intra period is an independently codable chunk.
	g := &GOPScheduler{BFrames: 2, IntraPeriod: 6}
	var order []GOPEntry
	for i := 0; i < 12; i++ {
		order = append(order, g.Push(mkFrame(i))...)
	}
	order = append(order, g.Flush()...)
	wantTypes := []container.FrameType{'I', 'P', 'B', 'B', 'P', 'P', 'I', 'P', 'B', 'B', 'P', 'P'}
	wantPTS := []int{0, 3, 1, 2, 4, 5, 6, 9, 7, 8, 10, 11}
	if len(order) != len(wantTypes) {
		t.Fatalf("got %d entries, want %d", len(order), len(wantTypes))
	}
	for i, e := range order {
		if e.Type != wantTypes[i] || e.Frame.PTS != wantPTS[i] {
			t.Errorf("entry %d: type %c pts %d, want %c pts %d",
				i, e.Type, e.Frame.PTS, wantTypes[i], wantPTS[i])
		}
	}
}

func TestDisplayReorderer(t *testing.T) {
	var d DisplayReorderer
	// Coding order 0,3,1,2 (IPBB) must come out 0,1,2,3.
	var got []int
	for _, pts := range []int{0, 3, 1, 2} {
		for _, f := range d.Add(mkFrame(pts)) {
			got = append(got, f.PTS)
		}
	}
	want := []int{0, 1, 2, 3}
	if len(got) != 4 {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestDisplayReordererFlushWithGap(t *testing.T) {
	var d DisplayReorderer
	d.Add(mkFrame(0))
	d.Add(mkFrame(2)) // 1 missing (truncated stream)
	out := d.Flush()
	if len(out) != 1 || out[0].PTS != 2 {
		t.Fatalf("flush = %v", out)
	}
}

func TestRefList(t *testing.T) {
	l := RefList{Max: 2}
	a, b, c := mkFrame(0), mkFrame(1), mkFrame(2)
	l.Add(a)
	l.Add(b)
	l.Add(c)
	if l.Len() != 2 {
		t.Fatalf("len = %d", l.Len())
	}
	if l.Get(0) != c || l.Get(1) != b {
		t.Fatal("wrong eviction order")
	}
	l.Reset()
	if l.Len() != 0 {
		t.Fatal("reset failed")
	}
}

func TestBlockHelpers(t *testing.T) {
	plane := make([]byte, 32*32)
	for i := range plane {
		plane[i] = byte(i)
	}
	var blk [64]int32
	LoadBlock8(&blk, plane, 5*32+3, 32)
	if blk[0] != int32(plane[5*32+3]) || blk[63] != int32(plane[12*32+10]) {
		t.Fatal("LoadBlock8 wrong samples")
	}

	pred := make([]byte, 8*8)
	for i := range pred {
		pred[i] = 100
	}
	for _, k := range []kernel.Set{kernel.Scalar, kernel.SWAR} {
		var res [64]int32
		Residual8(&res, plane, 0, 32, pred, 0, 8, k)
		if res[0] != int32(plane[0])-100 {
			t.Fatalf("%v Residual8: %d", k, res[0])
		}

		out := make([]byte, 8*8)
		for i := range res {
			res[i] = 300 // force clipping
		}
		Add8Clip(out, 0, 8, pred, 0, 8, &res, k)
		if out[0] != 255 {
			t.Fatalf("%v Add8Clip must clip to 255, got %d", k, out[0])
		}
		for i := range res {
			res[i] = -300
		}
		Add8Clip(out, 0, 8, pred, 0, 8, &res, k)
		if out[0] != 0 {
			t.Fatalf("%v Add8Clip must clip to 0, got %d", k, out[0])
		}

		var blk4 [16]int32
		Residual4(&blk4, plane, 0, 32, pred, 0, 8, k)
		if blk4[15] != int32(plane[3*32+3])-100 {
			t.Fatalf("%v Residual4 wrong", k)
		}
	}
}

// TestBlockHelpersKernelEquivalence pins scalar/SWAR bit-exactness of the
// residual and reconstruction helpers on random content.
func TestBlockHelpersKernelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cur := make([]byte, 32*32)
	pred := make([]byte, 16*16)
	for trial := 0; trial < 50; trial++ {
		for i := range cur {
			cur[i] = byte(rng.Intn(256))
		}
		for i := range pred {
			pred[i] = byte(rng.Intn(256))
		}
		var r8s, r8w [64]int32
		Residual8(&r8s, cur, 7, 32, pred, 3, 16, kernel.Scalar)
		Residual8(&r8w, cur, 7, 32, pred, 3, 16, kernel.SWAR)
		if r8s != r8w {
			t.Fatal("Residual8 scalar/SWAR diverge")
		}
		var r4s, r4w [16]int32
		Residual4(&r4s, cur, 5, 32, pred, 1, 16, kernel.Scalar)
		Residual4(&r4w, cur, 5, 32, pred, 1, 16, kernel.SWAR)
		if r4s != r4w {
			t.Fatal("Residual4 scalar/SWAR diverge")
		}
		var res8 [64]int32
		for i := range res8 {
			res8[i] = int32(rng.Intn(1400) - 700)
		}
		outS := make([]byte, 32*32)
		outW := make([]byte, 32*32)
		Add8Clip(outS, 9, 32, pred, 2, 16, &res8, kernel.Scalar)
		Add8Clip(outW, 9, 32, pred, 2, 16, &res8, kernel.SWAR)
		if !bytes.Equal(outS, outW) {
			t.Fatal("Add8Clip scalar/SWAR diverge")
		}
		var res4 [16]int32
		for i := range res4 {
			res4[i] = int32(rng.Intn(1400) - 700)
		}
		Add4Clip(outS, 11, 32, pred, 6, 16, &res4, kernel.Scalar)
		Add4Clip(outW, 11, 32, pred, 6, 16, &res4, kernel.SWAR)
		if !bytes.Equal(outS, outW) {
			t.Fatal("Add4Clip scalar/SWAR diverge")
		}
	}
}

func TestSADBlockBytes(t *testing.T) {
	a := []byte{10, 20, 30, 40}
	b := []byte{12, 18, 33, 40}
	if got := SADBlockBytes(a, 0, 2, b, 0, 2, 2, 2); got != 2+2+3+0 {
		t.Fatalf("SAD = %d", got)
	}
}
