package codec

import (
	"bytes"
	"testing"
)

// FuzzParseSliceTable hammers the slice-header parse path with arbitrary
// bytes: it must never panic or over-read, and anything it accepts must
// re-serialize to exactly the bytes it consumed (so a decoder can trust
// the spans it hands to the per-slice workers).
func FuzzParseSliceTable(f *testing.F) {
	good := SliceRows(45, 4)
	good[0].Size, good[1].Size, good[2].Size, good[3].Size = 3, 0, 9, 1
	seed := AppendSliceTable(nil, good)
	seed = append(seed, make([]byte, 13)...)
	f.Add(seed, uint16(45))
	f.Add([]byte{1, 0, 0, 1, 0, 0, 0, 0, 0}, uint16(1))
	f.Add([]byte{}, uint16(8))
	f.Add([]byte{255, 255, 255}, uint16(68))

	f.Fuzz(func(t *testing.T, data []byte, rows uint16) {
		mbRows := int(rows)
		spans, off, err := ParseSliceTable(data, mbRows)
		if err != nil {
			return
		}
		// Accepted tables must be internally consistent...
		if off != SliceTableSize(len(spans)) {
			t.Fatalf("offset %d for %d slices", off, len(spans))
		}
		row, total := 0, 0
		for _, s := range spans {
			if s.Row != row || s.Rows < 1 {
				t.Fatalf("non-contiguous spans: %+v", spans)
			}
			row += s.Rows
			total += s.Size
		}
		if row != mbRows || total != len(data)-off {
			t.Fatalf("coverage %d/%d rows, %d/%d body bytes", row, mbRows, total, len(data)-off)
		}
		// ...and round-trip byte-exactly.
		if back := AppendSliceTable(nil, spans); !bytes.Equal(back, data[:off]) {
			t.Fatalf("re-serialized table differs:\n  in  %x\n  out %x", data[:off], back)
		}
	})
}
