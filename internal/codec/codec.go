// Package codec provides the scaffolding shared by the three
// HD-VideoBench codecs: configuration (the paper's §IV coding options),
// IPBB group-of-pictures scheduling with frame reordering, decoder-side
// display reordering, reference-frame lists, and the Encoder/Decoder
// interfaces the benchmark harness drives.
package codec

import (
	"fmt"

	"hdvideobench/internal/container"
	"hdvideobench/internal/frame"
	"hdvideobench/internal/kernel"
	"hdvideobench/internal/motion"
)

// EntropyMode selects the H.264 entropy coder (the MPEG-2/-4 codecs always
// use their VLC layers).
type EntropyMode int

const (
	// EntropyCABAC is the adaptive binary arithmetic coder (default).
	EntropyCABAC EntropyMode = iota
	// EntropyVLC is the Exp-Golomb fallback, the CAVLC-class ablation.
	EntropyVLC
)

// RefPad is the padding applied to reference frames. It must cover the
// motion search range plus the 6-tap/quarter-pel filter margin.
const RefPad = 32

// Config carries the coding options of §IV and Table IV of the paper.
type Config struct {
	Width, Height  int
	FPSNum, FPSDen int

	// Q is the quantizer in MPEG scale (1..31). The paper's benchmark point
	// is 5 (vqscale=5 / fixed_quant=5); H.264 maps it through Eq. 1.
	Q int

	// BFrames is the number of consecutive B pictures between references
	// (paper: 2, "I-P-B-B", adaptive placement disabled).
	BFrames int

	// IntraPeriod is the distance between intra frames; 0 means only the
	// first frame is intra (the paper's setting).
	IntraPeriod int

	// SearchRange is the full-pel motion search range (x264 line: 24).
	SearchRange int

	// Refs is the number of reference frames for H.264 P pictures.
	Refs int

	// Kernels selects scalar or SWAR implementations (Figure 1's axis).
	Kernels kernel.Set

	// Entropy selects the H.264 entropy coder.
	Entropy EntropyMode

	// Slices splits every frame into this many independently coded
	// macroblock-row bands (x264's sliced-threads shape). 0 or 1 keeps
	// one slice per frame. Unlike Workers, this affects the bitstream:
	// prediction state resets at every slice boundary, so different
	// slice counts produce different (all valid) streams, while a fixed
	// slice count is byte-identical at every worker count. More slices
	// buy intra-frame parallelism at a small prediction-efficiency cost.
	Slices int

	// Wavefront enables wavefront (2D) macroblock scheduling inside each
	// slice: macroblock compute runs as soon as its left and top-right
	// neighbours are done, spreading the rows of one slice across the
	// installed WavefrontRunner's workers. Unlike Slices it never touches
	// the bitstream — dependency-order execution reproduces exactly the
	// raster-order values, and emission stays in raster order — so output
	// is byte-identical with the flag on or off at every worker count.
	Wavefront bool

	// SceneCutIntra enables adaptive I-frame placement: a luma-SAD spike
	// between consecutive input frames (a scene cut) restarts the GOP with
	// an I frame at the cut instead of waiting for the next IntraPeriod
	// boundary. Opt-in because it changes the bitstream (frame types move);
	// off, streams are untouched.
	SceneCutIntra bool

	// TargetKbps, when positive, replaces constant-Q coding with a
	// rate-targeted mode: a per-frame quantizer controller (see
	// RateController) steers the stream toward TargetKbps kilobits per
	// second at the configured frame rate, and Q becomes the controller's
	// starting point instead of a constant. The per-frame quantizer
	// travels in the packet payload's existing leading q byte, so rate-
	// targeted streams decode with unchanged decoders; with Slices > 1
	// the controller also rebalances budget between slices, which adds a
	// per-slice q byte gated by container.FlagSliceQ. 0 keeps constant-Q
	// coding byte-identical to previous trees.
	TargetKbps int

	// MotionTap, when non-nil, receives each inter frame's full-pel
	// forward motion field right after the frame is coded, keyed by
	// display PTS. The field is freshly allocated per frame and never
	// written again after the call. Ladder encoding uses it to capture
	// the full-resolution rung's motion analysis.
	MotionTap func(pts int, field *motion.Field)

	// MotionHints, when non-nil, supplies a previously captured motion
	// field for the frame at the given display PTS (nil = no hint). The
	// encoder scales the field to its own geometry and injects the
	// per-macroblock vector as one extra EPZS/seed predictor in every
	// forward motion search — a near-optimal seed that lets the
	// early-termination machinery skip most of the search. Hints steer
	// where the search looks, so they can change the bitstream; ladder
	// determinism holds because the hint source itself is deterministic.
	MotionHints func(pts int) *motion.Field
}

// PTSRebaser is implemented by encoders whose MotionTap/MotionHints
// callbacks must see global display stamps. The GOP-parallel pipeline
// restamps Frame.PTS chunk-locally (arrival order within the chunk), so
// it announces each chunk's offset in the global timeline here; the
// encoder adds it when keying the callbacks. Serial encoding leaves the
// base at zero.
type PTSRebaser interface {
	SetPTSBase(base int)
}

// Default returns the paper's coding options for a given resolution.
func Default(width, height int) Config {
	return Config{
		Width: width, Height: height,
		FPSNum: 25, FPSDen: 1,
		Q:           5,
		BFrames:     2,
		IntraPeriod: 0,
		SearchRange: 24,
		Refs:        4,
		Kernels:     kernel.Scalar,
		Entropy:     EntropyCABAC,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Width <= 0 || c.Height <= 0 {
		return fmt.Errorf("codec: invalid dimensions %dx%d", c.Width, c.Height)
	}
	if c.Width%16 != 0 || c.Height%16 != 0 {
		return fmt.Errorf("codec: dimensions must be multiples of 16, got %dx%d (the paper uses 1088, not 1080, for the same reason)", c.Width, c.Height)
	}
	if c.Q < 1 || c.Q > 31 {
		return fmt.Errorf("codec: quantizer %d out of range [1,31]", c.Q)
	}
	if c.BFrames < 0 || c.BFrames > 4 {
		return fmt.Errorf("codec: BFrames %d out of range [0,4]", c.BFrames)
	}
	if c.IntraPeriod < 0 {
		return fmt.Errorf("codec: IntraPeriod %d must be >= 0 (0 = first frame only)", c.IntraPeriod)
	}
	if c.SearchRange < 1 || c.SearchRange > RefPad-8 {
		return fmt.Errorf("codec: search range %d out of range [1,%d]", c.SearchRange, RefPad-8)
	}
	if c.Refs < 1 || c.Refs > 8 {
		return fmt.Errorf("codec: refs %d out of range [1,8]", c.Refs)
	}
	if c.FPSNum <= 0 || c.FPSDen <= 0 {
		return fmt.Errorf("codec: invalid frame rate %d/%d", c.FPSNum, c.FPSDen)
	}
	if c.Slices < 0 || c.Slices > MaxSlices {
		return fmt.Errorf("codec: slices %d out of range [0,%d]", c.Slices, MaxSlices)
	}
	if c.TargetKbps < 0 {
		return fmt.Errorf("codec: target bitrate %d kbps must be >= 0 (0 = constant Q)", c.TargetKbps)
	}
	return nil
}

// SliceQ reports whether streams under this configuration carry a
// per-slice quantizer byte (container.FlagSliceQ): rate-targeted coding
// with more than one slice per frame.
func (c Config) SliceQ() bool { return c.TargetKbps > 0 && c.Slices > 1 }

// MBCols returns the number of macroblock columns.
func (c Config) MBCols() int { return c.Width / 16 }

// MBRows returns the number of macroblock rows.
func (c Config) MBRows() int { return c.Height / 16 }

// FPS returns the frame rate as a float (for bitrate reporting).
func (c Config) FPS() float64 { return float64(c.FPSNum) / float64(c.FPSDen) }

// Encoder is the interface all three encoders implement.
type Encoder interface {
	// Encode accepts the next frame in display order and returns zero or
	// more coded packets (the IPBB reordering delays B frames until their
	// backward reference is coded).
	Encode(f *frame.Frame) ([]container.Packet, error)
	// Flush drains buffered frames at end of stream.
	Flush() ([]container.Packet, error)
	// Header describes the stream for the container.
	Header() container.Header
}

// Decoder is the interface all three decoders implement.
type Decoder interface {
	// Decode consumes one coded packet and returns zero or more frames in
	// display order.
	Decode(p container.Packet) ([]*frame.Frame, error)
	// Flush drains the display reorder buffer at end of stream.
	Flush() []*frame.Frame
}
