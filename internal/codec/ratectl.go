package codec

import "hdvideobench/internal/container"

// RateController steers a stream toward Config.TargetKbps with a
// per-frame quantizer, plus per-slice quantizer rebalancing when the
// frame is sliced. The model is TM5-flavored:
//
//   - each frame type (I/P/B) keeps a complexity estimate X = bits·q
//     (for a DCT codec, produced bits scale roughly with 1/q, so X is
//     approximately rate-invariant);
//   - the next frame's quantizer is X divided by its bit target, where
//     the target is the per-frame budget corrected by a fraction of the
//     accumulated over/under-spend (the integrator that pins the long-
//     run average to the declared rate);
//   - slices are rebalanced between frames: a slice that spent well
//     under the frame's per-slice average gets a lower quantizer next
//     frame, an over-spender a higher one, so flat bottom slices stop
//     systematically under-spending their share of the budget.
//
// Determinism: every I frame resets the controller completely (Reset),
// mirroring the codecs' closed-GOP reference resets — a GOP-parallel
// encoder that starts a fresh instance per chunk makes exactly the
// decisions the serial encoder makes, so rate-targeted streams stay
// byte-identical at every worker count. All state advances in coding
// order only, which both paths share.
type RateController struct {
	baseQ        int
	bitsPerFrame float64

	x   [3]float64 // complexity per frame type: bits·q, EWMA
	err float64    // cumulative bits spent minus budget since last I

	lastQ     int
	sliceBits []int // previous frame's per-slice bits
	sliceQs   []int // scratch for SliceQs
}

// NewRateController returns a controller for cfg, or nil when cfg is
// constant-Q (TargetKbps == 0) — callers treat a nil controller as
// "rate control off".
func NewRateController(cfg Config) *RateController {
	if cfg.TargetKbps <= 0 {
		return nil
	}
	return &RateController{
		baseQ:        cfg.Q,
		bitsPerFrame: float64(cfg.TargetKbps) * 1000 / cfg.FPS(),
	}
}

func ftIndex(t container.FrameType) int {
	switch t {
	case container.FrameI:
		return 0
	case container.FrameP:
		return 1
	}
	return 2
}

// Reset clears all adaptive state. Encoders call it when an I frame
// starts a new closed GOP, which is what keeps GOP-parallel rate-
// targeted output byte-identical to the serial path.
func (rc *RateController) Reset() {
	rc.x = [3]float64{}
	rc.err = 0
	rc.sliceBits = rc.sliceBits[:0]
}

// FrameQ returns the quantizer for the next frame in coding order.
func (rc *RateController) FrameQ(t container.FrameType) int {
	if t == container.FrameI {
		rc.Reset()
	}
	x := rc.x[ftIndex(t)]
	if x == 0 {
		// No complexity sample for this type yet: B frames borrow the P
		// estimate (they are cheaper, so this errs mildly high — safe);
		// otherwise start from the configured quantizer.
		if t == container.FrameB && rc.x[1] > 0 {
			x = rc.x[1]
		} else {
			rc.lastQ = clampQ(rc.baseQ)
			return rc.lastQ
		}
	}
	// Spend the per-frame budget minus a quarter of the accumulated
	// overshoot: the 1/4 gain drains a one-frame error over four frames,
	// fast enough to pin the average yet smooth enough not to oscillate.
	target := rc.bitsPerFrame - rc.err/4
	if target < rc.bitsPerFrame/8 {
		target = rc.bitsPerFrame / 8
	}
	rc.lastQ = clampQ(int(x/target + 0.5))
	return rc.lastQ
}

// AddFrame observes the coded size of the frame FrameQ last quantized.
func (rc *RateController) AddFrame(t container.FrameType, bits int) {
	i := ftIndex(t)
	sample := float64(bits) * float64(rc.lastQ)
	if rc.x[i] == 0 {
		rc.x[i] = sample
	} else {
		rc.x[i] = (rc.x[i] + sample) / 2
	}
	rc.err += float64(bits) - rc.bitsPerFrame
}

// SliceQs maps a frame quantizer onto per-slice quantizers using the
// previous frame's per-slice spending: under-spenders step down (finer
// quantization, picking up the budget the frame is not using), over-
// spenders step up. With no history — the frame after a Reset, or a
// slice-count change — every slice gets the frame quantizer. The
// returned slice is scratch, valid until the next call.
func (rc *RateController) SliceQs(frameQ, n int) []int {
	if cap(rc.sliceQs) < n {
		rc.sliceQs = make([]int, n)
	}
	qs := rc.sliceQs[:n]
	total := 0
	for _, b := range rc.sliceBits {
		total += b
	}
	if len(rc.sliceBits) != n || total == 0 {
		for i := range qs {
			qs[i] = frameQ
		}
		return qs
	}
	avg := float64(total) / float64(n)
	for i := range qs {
		share := float64(rc.sliceBits[i]) / avg
		d := 0
		switch {
		case share < 0.5:
			d = -2
		case share < 0.8:
			d = -1
		case share > 2.0:
			d = 2
		case share > 1.3:
			d = 1
		}
		qs[i] = clampQ(frameQ + d)
	}
	return qs
}

// AddSlices observes the per-slice coded sizes (bits) of the frame just
// coded, feeding the next frame's rebalance.
func (rc *RateController) AddSlices(bits []int) {
	rc.sliceBits = append(rc.sliceBits[:0], bits...)
}

func clampQ(q int) int {
	if q < 1 {
		return 1
	}
	if q > 31 {
		return 31
	}
	return q
}
