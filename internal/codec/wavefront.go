package codec

// Wavefront (2D) macroblock scheduling support. Within one slice, a
// macroblock (x, y) depends on its left neighbour (x-1, y) for row-local
// prediction state and on its top-right neighbour (x+1, y-1) for
// everything the row above contributes (reconstructed pixels up to one
// macroblock to the right, MV/intra predictor grids). Running macroblocks
// as soon as exactly those two dependencies are satisfied — the classic
// wavefront front — computes every value in an order consistent with the
// serial raster scan, so all computed samples, coefficients and decisions
// are identical to the serial pass; only wall-clock changes. Codecs keep
// bitstream emission in raster order (per-row writers concatenated in
// order, or a serial replay phase), which is what keeps the coded bytes
// identical too.

// WavefrontRunner executes the rows×cols macroblock grid of one slice in
// wavefront dependency order: mb(x, y) is invoked exactly once per cell,
// never before mb(x-1, y) and mb(x+1, y-1) have returned (cells outside
// the grid count as done). Cells of one row are always invoked
// left-to-right on a single goroutine, so row-local state needs no
// synchronization. mb returning false aborts the front: the runner
// returns false as soon as practical without invoking the remaining
// cells' work (some in-flight cells may still complete). A true return
// means every cell ran and returned true.
type WavefrontRunner func(rows, cols int, mb func(x, y int) bool) bool

// SerialWavefront is the default WavefrontRunner: plain raster order on
// the calling goroutine. Raster order satisfies the wavefront dependency
// rule trivially, so codecs use one code path for both.
func SerialWavefront(rows, cols int, mb func(x, y int) bool) bool {
	for y := 0; y < rows; y++ {
		for x := 0; x < cols; x++ {
			if !mb(x, y) {
				return false
			}
		}
	}
	return true
}

// RunWavefront invokes r, or SerialWavefront when r is nil.
func RunWavefront(r WavefrontRunner, rows, cols int, mb func(x, y int) bool) bool {
	if r == nil {
		return SerialWavefront(rows, cols, mb)
	}
	return r(rows, cols, mb)
}

// WavefrontScheduler is implemented by encoders whose per-slice macroblock
// grids can run on a caller-provided wavefront runner (internal/pipeline
// installs its scheduler through it). A nil runner restores the serial
// default. Like SliceScheduler, the coded output never depends on the
// runner; codecs additionally gate use of the runner on Config.Wavefront,
// so installing one is always safe.
type WavefrontScheduler interface {
	SetWavefrontRunner(WavefrontRunner)
}
