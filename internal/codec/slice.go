package codec

import (
	"encoding/binary"
	"fmt"
)

// Slice-level (macroblock-row) parallelism support. A frame is split into
// contiguous bands of macroblock rows; each band is coded with fully
// independent prediction state (DC predictors, MV predictors and entropy
// coder state reset at the band's top row, intra prediction and MV
// candidates clamped so they never read above it), so the bands can be
// encoded and decoded concurrently — the route x264's sliced-threads mode
// takes, and the only parallelism that works at the paper's
// first-frame-only-intra setting where GOP chunking degenerates to a
// single segment.
//
// Each frame packet's payload carries a slice table: a slice count
// followed by one (row, rows, size) record per slice, then the
// concatenated slice bitstreams. The table is what lets a decoder hand
// every slice to its own worker before parsing a single macroblock.

// MaxSlices is the largest slice count the table format can carry (and
// far more than any frame height provides rows for).
const MaxSlices = 255

// SliceSpan describes one slice: a contiguous band of macroblock rows
// and, once coded or parsed, the byte length of its bitstream.
type SliceSpan struct {
	Row  int // first macroblock row
	Rows int // number of macroblock rows
	Size int // coded byte length (0 until coded/parsed)
}

// EffectiveSlices clamps a configured slice count to what a frame of
// mbRows macroblock rows supports: at least 1, at most min(mbRows,
// MaxSlices).
func EffectiveSlices(n, mbRows int) int {
	if n < 1 {
		n = 1
	}
	if n > mbRows {
		n = mbRows
	}
	if n > MaxSlices {
		n = MaxSlices
	}
	return n
}

// SliceRows splits mbRows macroblock rows into EffectiveSlices(n, mbRows)
// contiguous near-equal bands (the first mbRows%n bands get the extra
// row), matching x264's sliced-threads row partitioning.
func SliceRows(mbRows, n int) []SliceSpan {
	n = EffectiveSlices(n, mbRows)
	spans := make([]SliceSpan, n)
	base, extra := mbRows/n, mbRows%n
	row := 0
	for i := range spans {
		rows := base
		if i < extra {
			rows++
		}
		spans[i] = SliceSpan{Row: row, Rows: rows}
		row += rows
	}
	return spans
}

// sliceRecSize is the per-slice byte length of a table record:
// u16 row | u16 rows | u32 size, little-endian.
const sliceRecSize = 8

// SliceTableSize returns the encoded byte length of a table for n slices.
func SliceTableSize(n int) int { return 1 + n*sliceRecSize }

// AppendSliceTable appends the slice table (u8 count, then per-slice
// records) to dst. Every span's Size must already be filled in.
func AppendSliceTable(dst []byte, spans []SliceSpan) []byte {
	dst = append(dst, byte(len(spans)))
	for _, s := range spans {
		dst = binary.LittleEndian.AppendUint16(dst, uint16(s.Row))
		dst = binary.LittleEndian.AppendUint16(dst, uint16(s.Rows))
		dst = binary.LittleEndian.AppendUint32(dst, uint32(s.Size))
	}
	return dst
}

// ParseSliceTable reads and validates the slice table at the start of
// buf for a frame of mbRows macroblock rows. The spans must tile
// [0, mbRows) contiguously and their sizes must sum to exactly the bytes
// that follow the table, so a malformed count, row range or length fails
// here with a clean error instead of a panic or an unbounded read inside
// a slice decoder. It returns the spans and the offset of the first
// slice body; slice i's bitstream is buf[off : off+spans[i].Size] with
// off advanced by each earlier slice's size.
func ParseSliceTable(buf []byte, mbRows int) ([]SliceSpan, int, error) {
	if mbRows < 1 {
		return nil, 0, fmt.Errorf("codec: slice table: invalid frame height (%d macroblock rows)", mbRows)
	}
	if len(buf) < 1 {
		return nil, 0, fmt.Errorf("codec: slice table: missing slice count")
	}
	n := int(buf[0])
	if n < 1 || n > mbRows {
		return nil, 0, fmt.Errorf("codec: slice table: %d slices for %d macroblock rows", n, mbRows)
	}
	off := SliceTableSize(n)
	if len(buf) < off {
		return nil, 0, fmt.Errorf("codec: slice table: truncated (%d bytes, need %d)", len(buf), off)
	}
	body := len(buf) - off
	spans := make([]SliceSpan, n)
	row, total := 0, 0
	for i := range spans {
		rec := buf[1+i*sliceRecSize:]
		s := SliceSpan{
			Row:  int(binary.LittleEndian.Uint16(rec)),
			Rows: int(binary.LittleEndian.Uint16(rec[2:])),
			Size: int(binary.LittleEndian.Uint32(rec[4:])),
		}
		if s.Row != row || s.Rows < 1 || s.Row+s.Rows > mbRows {
			return nil, 0, fmt.Errorf("codec: slice table: slice %d covers rows [%d,%d) of %d (expected to start at %d)",
				i, s.Row, s.Row+s.Rows, mbRows, row)
		}
		if s.Size > body-total {
			return nil, 0, fmt.Errorf("codec: slice table: slice %d claims %d bytes, only %d remain",
				i, s.Size, body-total)
		}
		row += s.Rows
		total += s.Size
		spans[i] = s
	}
	if row != mbRows {
		return nil, 0, fmt.Errorf("codec: slice table: slices cover %d of %d macroblock rows", row, mbRows)
	}
	if total != body {
		return nil, 0, fmt.Errorf("codec: slice table: slice sizes sum to %d, payload has %d", total, body)
	}
	return spans, off, nil
}

// SliceRunner executes n independent slice jobs, possibly concurrently.
// Implementations must invoke job(i) exactly once for every i in [0, n)
// and must not return before all jobs have completed. Jobs touch
// disjoint state (separate bitstreams, disjoint frame rows), so any
// interleaving is safe and the merged output is identical for every
// schedule.
type SliceRunner func(n int, job func(i int))

// SerialRun is the default SliceRunner: jobs run in order on the calling
// goroutine.
func SerialRun(n int, job func(i int)) {
	for i := 0; i < n; i++ {
		job(i)
	}
}

// RunSlices invokes r, or SerialRun when r is nil.
func RunSlices(r SliceRunner, n int, job func(i int)) {
	if r == nil {
		SerialRun(n, job)
		return
	}
	r(n, job)
}

// SliceScheduler is implemented by encoders and decoders whose per-frame
// slice jobs can run on a caller-provided scheduler (internal/pipeline
// installs a worker-budget gate through it). A nil runner restores the
// serial default. The coded output never depends on the runner — only
// wall-clock does.
type SliceScheduler interface {
	SetSliceRunner(SliceRunner)
}
