package codec

import (
	"testing"
)

func TestSliceRowsSplitsEvenly(t *testing.T) {
	cases := []struct {
		mbRows, n int
		wantRows  []int
	}{
		{36, 1, []int{36}},
		{36, 4, []int{9, 9, 9, 9}},
		{45, 4, []int{12, 11, 11, 11}},
		{5, 8, []int{1, 1, 1, 1, 1}}, // clamped to mbRows
		{36, 0, []int{36}},           // 0 means one slice
		{36, -3, []int{36}},
	}
	for _, tc := range cases {
		spans := SliceRows(tc.mbRows, tc.n)
		if len(spans) != len(tc.wantRows) {
			t.Fatalf("SliceRows(%d, %d): %d spans, want %d", tc.mbRows, tc.n, len(spans), len(tc.wantRows))
		}
		row := 0
		for i, s := range spans {
			if s.Row != row || s.Rows != tc.wantRows[i] {
				t.Fatalf("SliceRows(%d, %d)[%d] = {Row:%d Rows:%d}, want {Row:%d Rows:%d}",
					tc.mbRows, tc.n, i, s.Row, s.Rows, row, tc.wantRows[i])
			}
			row += s.Rows
		}
		if row != tc.mbRows {
			t.Fatalf("SliceRows(%d, %d) covers %d rows", tc.mbRows, tc.n, row)
		}
	}
}

func TestSliceTableRoundTrip(t *testing.T) {
	spans := SliceRows(45, 4)
	sizes := []int{100, 0, 7, 99999}
	body := 0
	for i := range spans {
		spans[i].Size = sizes[i]
		body += sizes[i]
	}
	buf := AppendSliceTable([]byte{0xAB}, spans) // prefix survives
	if buf[0] != 0xAB {
		t.Fatal("prefix clobbered")
	}
	buf = append(buf, make([]byte, body)...)

	got, off, err := ParseSliceTable(buf[1:], 45)
	if err != nil {
		t.Fatalf("ParseSliceTable: %v", err)
	}
	if off != SliceTableSize(4) {
		t.Fatalf("offset %d, want %d", off, SliceTableSize(4))
	}
	for i := range spans {
		if got[i] != spans[i] {
			t.Fatalf("span %d = %+v, want %+v", i, got[i], spans[i])
		}
	}
}

func TestParseSliceTableRejectsMalformed(t *testing.T) {
	valid := func() []byte {
		spans := SliceRows(8, 2)
		spans[0].Size, spans[1].Size = 3, 4
		buf := AppendSliceTable(nil, spans)
		return append(buf, make([]byte, 7)...)
	}

	cases := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"zero slices", func(b []byte) []byte { b[0] = 0; return b }},
		{"too many slices", func(b []byte) []byte { b[0] = 200; return b }},
		{"truncated table", func(b []byte) []byte { return b[:5] }},
		{"gap in rows", func(b []byte) []byte { b[1+sliceRecSize] = 5; return b }},
		{"zero rows", func(b []byte) []byte { b[3] = 0; return b }},
		{"rows past frame", func(b []byte) []byte { b[3] = 20; return b }},
		{"size past payload", func(b []byte) []byte { b[5] = 0xFF; return b }},
		{"sizes under payload", func(b []byte) []byte { b[5] = 2; return b }},
		{"trailing garbage", func(b []byte) []byte { return append(b, 1, 2, 3) }},
	}
	for _, tc := range cases {
		buf := tc.mut(valid())
		if _, _, err := ParseSliceTable(buf, 8); err == nil {
			t.Errorf("%s: ParseSliceTable accepted malformed input", tc.name)
		}
	}
	// The unmutated table parses.
	if _, _, err := ParseSliceTable(valid(), 8); err != nil {
		t.Fatalf("valid table rejected: %v", err)
	}
}

func TestEffectiveSlices(t *testing.T) {
	for _, tc := range []struct{ n, mbRows, want int }{
		{0, 36, 1}, {1, 36, 1}, {4, 36, 4}, {99, 36, 36}, {-1, 36, 1}, {1000, 5000, MaxSlices},
	} {
		if got := EffectiveSlices(tc.n, tc.mbRows); got != tc.want {
			t.Errorf("EffectiveSlices(%d, %d) = %d, want %d", tc.n, tc.mbRows, got, tc.want)
		}
	}
}

func TestSerialRunOrder(t *testing.T) {
	var order []int
	SerialRun(4, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("SerialRun order %v", order)
		}
	}
	ran := false
	RunSlices(nil, 1, func(int) { ran = true })
	if !ran {
		t.Fatal("RunSlices(nil) did not run the job")
	}
}
