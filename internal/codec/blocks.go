package codec

// Pixel-block helpers shared by the macroblock loops of all three codecs.
// Offsets follow the plane+offset convention of the frame package: sample
// (r,c) of a block based at off is plane[off + r*stride + c].
//
// The residual (cur − pred) and reconstruction (clamp(pred + residual))
// helpers dispatch on the kernel set: the SWAR rows (swar.DiffRow /
// swar.AddClampRow) are bit-exact with the scalar loops, so the selection
// follows the session-wide scalar-vs-SIMD axis without touching output.

import (
	"hdvideobench/internal/kernel"
	"hdvideobench/internal/swar"
)

// LoadBlock8 copies an 8×8 pixel block into an int32 coefficient block.
func LoadBlock8(dst *[64]int32, plane []byte, off, stride int) {
	for r := 0; r < 8; r++ {
		base := off + r*stride
		for c := 0; c < 8; c++ {
			dst[r*8+c] = int32(plane[base+c])
		}
	}
}

// Residual8 computes cur − pred into an 8×8 coefficient block.
func Residual8(dst *[64]int32, cur []byte, co, cStride int, pred []byte, po, pStride int, k kernel.Set) {
	if k == kernel.SWAR {
		for r := 0; r < 8; r++ {
			swar.DiffRow(dst[r*8:r*8+8], cur[co+r*cStride:], pred[po+r*pStride:], 8)
		}
		return
	}
	for r := 0; r < 8; r++ {
		cb := co + r*cStride
		pb := po + r*pStride
		for c := 0; c < 8; c++ {
			dst[r*8+c] = int32(cur[cb+c]) - int32(pred[pb+c])
		}
	}
}

// Store8Clip writes an 8×8 coefficient block into a plane with clamping to
// [0, 255] (intra reconstruction).
func Store8Clip(plane []byte, off, stride int, blk *[64]int32) {
	for r := 0; r < 8; r++ {
		base := off + r*stride
		for c := 0; c < 8; c++ {
			plane[base+c] = clip255(blk[r*8+c])
		}
	}
}

// Add8Clip writes pred + residual into a plane with clamping (inter
// reconstruction).
func Add8Clip(plane []byte, off, stride int, pred []byte, po, pStride int, res *[64]int32, k kernel.Set) {
	if k == kernel.SWAR {
		for r := 0; r < 8; r++ {
			swar.AddClampRow(plane[off+r*stride:], pred[po+r*pStride:], res[r*8:r*8+8], 8)
		}
		return
	}
	for r := 0; r < 8; r++ {
		base := off + r*stride
		pb := po + r*pStride
		for c := 0; c < 8; c++ {
			plane[base+c] = clip255(int32(pred[pb+c]) + res[r*8+c])
		}
	}
}

// Copy8 copies an 8×8 block between planes.
func Copy8(dst []byte, do, dStride int, src []byte, so, sStride int) {
	for r := 0; r < 8; r++ {
		copy(dst[do+r*dStride:do+r*dStride+8], src[so+r*sStride:so+r*sStride+8])
	}
}

// Residual4 computes cur − pred into a 4×4 coefficient block.
func Residual4(dst *[16]int32, cur []byte, co, cStride int, pred []byte, po, pStride int, k kernel.Set) {
	if k == kernel.SWAR {
		for r := 0; r < 4; r++ {
			swar.DiffRow(dst[r*4:r*4+4], cur[co+r*cStride:], pred[po+r*pStride:], 4)
		}
		return
	}
	for r := 0; r < 4; r++ {
		cb := co + r*cStride
		pb := po + r*pStride
		for c := 0; c < 4; c++ {
			dst[r*4+c] = int32(cur[cb+c]) - int32(pred[pb+c])
		}
	}
}

// Add4Clip writes pred + residual into a plane with clamping.
func Add4Clip(plane []byte, off, stride int, pred []byte, po, pStride int, res *[16]int32, k kernel.Set) {
	if k == kernel.SWAR {
		for r := 0; r < 4; r++ {
			swar.AddClampRow(plane[off+r*stride:], pred[po+r*pStride:], res[r*4:r*4+4], 4)
		}
		return
	}
	for r := 0; r < 4; r++ {
		base := off + r*stride
		pb := po + r*pStride
		for c := 0; c < 4; c++ {
			plane[base+c] = clip255(int32(pred[pb+c]) + res[r*4+c])
		}
	}
}

// SADBlockBytes is a small scalar SAD for mode decisions on prediction
// buffers (the motion package owns the search-loop SAD kernels).
func SADBlockBytes(a []byte, ao, aStride int, b []byte, bo, bStride, w, h int) int {
	sad := 0
	for r := 0; r < h; r++ {
		ab := ao + r*aStride
		bb := bo + r*bStride
		for c := 0; c < w; c++ {
			d := int(a[ab+c]) - int(b[bb+c])
			if d < 0 {
				d = -d
			}
			sad += d
		}
	}
	return sad
}

func clip255(v int32) byte {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return byte(v)
}
