package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hdvideobench/internal/obs"
)

// scrape fetches and parses /metrics from a test server, returning the
// raw bytes too for LintText.
func scrape(t *testing.T, base string) ([]obs.TextFamily, []byte) {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	fams, err := obs.ParseText(body)
	if err != nil {
		t.Fatalf("metrics do not parse: %v\n%s", err, body)
	}
	return fams, body
}

// TestMetricsExpositionLints warms a cached server with a cold and a
// warm request plus a POST failure, then runs the full exposition lint
// (types, histogram bucket consistency, duplicate detection) over a
// live scrape.
func TestMetricsExpositionLints(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 2, MaxConcurrent: 2, MaxFrames: 100, CacheDir: t.TempDir()})
	url := ts.URL + "/transcode?codec=mpeg2&width=96&height=80&frames=6&gop=2"
	for range 2 { // miss then hit
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	resp, err := http.Post(ts.URL+"/transcode", StreamContentType, strings.NewReader("junk"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	fams, raw := scrape(t, ts.URL)
	if err := obs.LintText(raw); err != nil {
		t.Fatalf("exposition lint: %v", err)
	}
	vals := obs.Values(fams)

	// Every pre-registry series name must survive the registry port.
	for _, name := range []string{
		`hdvserve_requests_total{endpoint="transcode",method="GET"}`,
		`hdvserve_requests_total{endpoint="transcode",method="POST"}`,
		"hdvserve_active_requests",
		"hdvserve_streams_served_total",
		"hdvserve_uploads_transcoded_total",
		"hdvserve_encodes_total",
		"hdvserve_encode_seconds_total",
		"hdvserve_bytes_served_total",
		"hdvserve_rate_limited_total",
		"hdvserve_capacity_rejections_total",
		"hdvserve_cache_hits_total",
		"hdvserve_cache_misses_total",
		"hdvserve_cache_evictions_total",
		"hdvserve_cache_entries",
		"hdvserve_cache_bytes",
		"hdvserve_cache_budget_bytes",
	} {
		if _, ok := vals[name]; !ok {
			t.Errorf("series %s missing from exposition", name)
		}
	}

	// The new histogram families must be present as histograms.
	hists := map[string]bool{}
	for _, f := range fams {
		if f.Type == "histogram" {
			hists[f.Name] = true
		}
	}
	for _, name := range []string{
		"hdvserve_request_seconds", "hdvserve_ttfb_seconds",
		"hdvserve_cold_encode_seconds", "hdvserve_cache_fill_seconds",
		"hdvserve_chunk_encode_seconds", "hdvserve_drain_stall_seconds",
		"hdvserve_gate_wait_seconds",
	} {
		if !hists[name] {
			t.Errorf("histogram family %s missing", name)
		}
	}

	// The warm/cold pair lands in the right labeled counts.
	if got := vals[`hdvserve_request_seconds_count{cache="hit",codec="MPEG-2",endpoint="transcode",res="96x80"}`]; got != 1 {
		t.Errorf("hit request count = %v, want 1", got)
	}
	if got := vals[`hdvserve_request_seconds_count{cache="miss",codec="MPEG-2",endpoint="transcode",res="96x80"}`]; got != 1 {
		t.Errorf("miss request count = %v, want 1", got)
	}
	if got := vals[`hdvserve_cold_encode_seconds_count{cache="miss",codec="MPEG-2",endpoint="transcode",res="96x80"}`]; got != 1 {
		t.Errorf("cold encode count = %v, want 1", got)
	}
	if got := vals[`hdvserve_cache_fill_seconds_count{cache="miss",codec="MPEG-2",endpoint="transcode",res="96x80"}`]; got != 1 {
		t.Errorf("cache fill count = %v, want 1", got)
	}
}

// TestServerTimingAndRequestLog drives a cold, then a warm, GET for the
// same key and checks the two are distinguishable: the cold response
// announces "miss" in its Server-Timing header and delivers the encode
// phase in the trailer; the warm one carries "hit" plus its phases in
// the header. Both must land in /debug/requests with IDs and phases.
func TestServerTimingAndRequestLog(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 2, MaxConcurrent: 2, MaxFrames: 100, CacheDir: t.TempDir()})
	url := ts.URL + "/transcode?codec=mpeg2&width=96&height=80&frames=6&gop=2"

	// Cold: miss marker in the header, encode phase in the trailer.
	req, _ := http.NewRequest("GET", url, nil)
	req.Header.Set("X-Request-ID", "test-cold-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "test-cold-1" {
		t.Errorf("request ID not propagated: %q", got)
	}
	st := resp.Header.Get("Server-Timing")
	if !strings.Contains(st, "miss") {
		t.Errorf("cold Server-Timing header %q lacks miss marker", st)
	}
	if strings.Contains(st, "enc;") {
		t.Errorf("cold Server-Timing header %q has enc phase before it could finish", st)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close() // trailers are only valid after the body is drained
	if tst := resp.Trailer.Get("Server-Timing"); !strings.Contains(tst, "enc;dur=") {
		t.Errorf("cold Server-Timing trailer %q lacks enc phase", tst)
	}

	// Warm: hit marker and phases directly in the header, no trailer.
	resp, err = http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	if id := resp.Header.Get("X-Request-ID"); id == "" {
		t.Error("no generated X-Request-ID on warm response")
	}
	st = resp.Header.Get("Server-Timing")
	if !strings.Contains(st, "hit") || !strings.Contains(st, "cache;dur=") {
		t.Errorf("warm Server-Timing header %q lacks hit marker or cache phase", st)
	}
	if strings.Contains(st, "enc;") {
		t.Errorf("warm Server-Timing header %q has an enc phase", st)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	// Both requests are in the debug ring, newest first, with phases.
	rr := httptest.NewRecorder()
	s.DebugRoutes().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/requests", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("/debug/requests status %d", rr.Code)
	}
	var out struct {
		Requests []obs.RequestRecord `json:"requests"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &out); err != nil {
		t.Fatalf("/debug/requests not JSON: %v\n%s", err, rr.Body.String())
	}
	if len(out.Requests) != 2 {
		t.Fatalf("ring has %d records, want 2", len(out.Requests))
	}
	warm, cold := out.Requests[0], out.Requests[1]
	if cold.ID != "test-cold-1" {
		t.Errorf("cold record ID = %q", cold.ID)
	}
	if cold.Cache != "miss" || warm.Cache != "hit" {
		t.Errorf("cache dispositions = %q/%q, want miss/hit", cold.Cache, warm.Cache)
	}
	phases := func(rec obs.RequestRecord) map[string]bool {
		m := map[string]bool{}
		for _, p := range rec.Phases {
			m[p.Name] = true
		}
		return m
	}
	if p := phases(cold); !p["cache"] || !p["enc"] {
		t.Errorf("cold phases %v lack cache+enc", cold.Phases)
	}
	if p := phases(warm); !p["cache"] || !p["write"] || p["enc"] {
		t.Errorf("warm phases %v should be cache+write without enc", warm.Phases)
	}
	for _, rec := range out.Requests {
		if rec.Status != http.StatusOK || rec.Bytes == 0 || rec.DurationMS <= 0 {
			t.Errorf("incomplete record: %+v", rec)
		}
	}
}

// TestPipelineSeriesMoveUnderLoad runs a deterministic multi-GOP encode
// through the HTTP path and asserts the threaded Collector's series
// moved: exact chunk count in the encode histogram, drain stalls
// observed, and the queue gauge balanced back to zero. No sleeps — all
// counts are structural properties of frames/gop.
func TestPipelineSeriesMoveUnderLoad(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 2, MaxConcurrent: 2, MaxFrames: 100})
	resp, err := http.Get(ts.URL + "/transcode?codec=mpeg2&width=96&height=80&frames=12&gop=2&workers=2")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	fams, _ := scrape(t, ts.URL)
	vals := obs.Values(fams)
	if got := vals["hdvserve_chunk_encode_seconds_count"]; got != 6 {
		t.Errorf("chunk encode count = %v, want 6 (12 frames / gop 2)", got)
	}
	if got := vals["hdvserve_drain_stall_seconds_count"]; got < 6 {
		t.Errorf("drain stall count = %v, want >= 6", got)
	}
	if got := vals["hdvserve_chunk_queue_depth"]; got != 0 {
		t.Errorf("queue depth at rest = %v, want 0", got)
	}
}

// TestHealthzJSON decodes /healthz strictly: it must be a well-formed
// JSON object with the documented fields, not a printf lookalike.
func TestHealthzJSON(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1, MaxConcurrent: 3})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	dec := json.NewDecoder(resp.Body)
	dec.DisallowUnknownFields()
	var out struct {
		Status   string `json:"status"`
		Active   int64  `json:"active"`
		Capacity int    `json:"capacity"`
		Served   int64  `json:"served"`
	}
	if err := dec.Decode(&out); err != nil {
		t.Fatalf("healthz not strict JSON: %v", err)
	}
	if out.Status != "ok" || out.Capacity != 3 || out.Active != 0 {
		t.Errorf("healthz = %+v", out)
	}
}

// TestDebugMuxIsolation: the public handler must not expose the debug
// surface, and the debug handler must serve pprof and the request ring.
func TestDebugMuxIsolation(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1, MaxConcurrent: 1})
	for _, path := range []string{"/debug/pprof/", "/debug/requests"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("public %s status = %d, want 404", path, resp.StatusCode)
		}
	}
	dts := httptest.NewServer(s.DebugRoutes())
	defer dts.Close()
	for _, path := range []string{"/debug/pprof/", "/debug/requests"} {
		resp, err := http.Get(dts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("debug %s status = %d, want 200", path, resp.StatusCode)
		}
	}
}
