// Tests for the ladder serving path (manifest, rung selection, per-rung
// cache entries, malformed-ladder 400s) and the singleflight coalescing
// of concurrent cold cache fills.
package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hdvideobench"
)

// countLadders wraps the server's ladder hook with an invocation
// counter, the ladder counterpart of countEncodes.
func countLadders(s *Server) *atomic.Int64 {
	var n atomic.Int64
	inner := s.ladder
	s.ladder = func(c hdvideobench.Codec, opts hdvideobench.EncoderOptions,
		frames []*hdvideobench.Frame, rungs []hdvideobench.LadderRung) ([]hdvideobench.LadderRendition, error) {
		n.Add(1)
		return inner(c, opts, frames, rungs)
	}
	return &n
}

// TestLadderBadRequests pins the strict-400 behavior of the ladder
// parameters: unknown rungs, duplicates, rungs exceeding the mezzanine,
// malformed bitrates, rung selections outside the ladder, and the
// parameter combinations the ladder path refuses.
func TestLadderBadRequests(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1, MaxConcurrent: 1, MaxFrames: 300})
	cases := []struct {
		name, query, wantSub string
	}{
		{"unknown rung", "ladder=999p&res=576p25", "unknown resolution"},
		{"duplicate rung", "ladder=240p,240p25&res=576p25", "duplicate ladder rung"},
		{"rung exceeds mezzanine", "ladder=720p&res=576p25", "exceeds mezzanine"},
		{"bad bitrate", "ladder=240p@abc&res=576p25", "invalid rung bitrate"},
		{"zero bitrate", "ladder=240p@0&res=576p25", "invalid rung bitrate"},
		{"empty rung", "ladder=240p,,576p&res=576p25", "empty rung"},
		{"rung not in ladder", "ladder=240p&res=576p25&rung=576p", "is not in ladder"},
		{"unknown rung selection", "ladder=240p&res=576p25&rung=999p", "unknown resolution"},
		{"rung without ladder", "rung=240p&res=576p25", "rung requires ladder"},
		{"index with ladder", "ladder=240p&res=576p25&index=1", "index is not supported with ladder"},
		{"too many frames", "ladder=240p&res=576p25&frames=251", "ladder is limited to"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := get(t, ts.URL+"/transcode?codec=mpeg2&"+tc.query)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400 (body %q)", resp.StatusCode, body)
			}
			if !strings.Contains(string(body), tc.wantSub) {
				t.Fatalf("body %q does not mention %q", body, tc.wantSub)
			}
		})
	}
}

// TestLadderManifestAndRungs drives the uncached ladder path end to
// end: the bare ladder= request returns a JSON manifest whose per-rung
// URLs each serve a decodable stream at the rung's geometry.
func TestLadderManifestAndRungs(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 2, MaxConcurrent: 2, MaxFrames: 100})
	resp, body := get(t, ts.URL+"/transcode?codec=mpeg2&res=576p25&frames=3&ladder=240p,576p")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("manifest status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("manifest Content-Type = %q", ct)
	}
	var man ladderManifestJSON
	if err := json.Unmarshal(body, &man); err != nil {
		t.Fatalf("manifest: %v (%s)", err, body)
	}
	if man.Mezzanine != "720x576" || len(man.Rungs) != 2 {
		t.Fatalf("manifest %+v, want 720x576 mezzanine and 2 rungs", man)
	}
	for _, rung := range man.Rungs {
		resp, body := get(t, ts.URL+rung.URL)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("rung %s status %d: %s", rung.Name, resp.StatusCode, body)
		}
		if got := resp.Header.Get("X-HDVB-Rung"); got != rung.Name {
			t.Fatalf("rung %s X-HDVB-Rung = %q", rung.Name, got)
		}
		hdr, pkts, err := hdvideobench.ReadStream(bytes.NewReader(body))
		if err != nil {
			t.Fatalf("rung %s stream: %v", rung.Name, err)
		}
		if hdr.Width != rung.Width || hdr.Height != rung.Height {
			t.Fatalf("rung %s decodes as %dx%d, want %dx%d",
				rung.Name, hdr.Width, hdr.Height, rung.Width, rung.Height)
		}
		dec, err := hdvideobench.NewDecoder(hdr, false)
		if err != nil {
			t.Fatal(err)
		}
		frames, err := hdvideobench.DecodePackets(dec, pkts)
		if err != nil {
			t.Fatalf("rung %s decode: %v", rung.Name, err)
		}
		if len(frames) != 3 {
			t.Fatalf("rung %s decoded %d frames, want 3", rung.Name, len(frames))
		}
	}
}

// TestLadderRungCacheSharing pins the per-rung cache economics: the
// first rung request runs EncodeLadder once and commits every rung, so
// the sibling rung and the repeat request are hits with zero further
// ladder encodes, byte-identical to the cold responses.
func TestLadderRungCacheSharing(t *testing.T) {
	s, ts := testServer(t, cachedServerConfig(t))
	ladders := countLadders(s)
	base := ts.URL + "/transcode?codec=mpeg2&res=576p25&frames=3&ladder=240p,576p@800"

	cold, coldBody := get(t, base+"&rung=240p")
	if cold.StatusCode != http.StatusOK {
		t.Fatalf("cold status %d: %s", cold.StatusCode, coldBody)
	}
	if got := cold.Header.Get("X-HDVB-Cache"); got != "miss" {
		t.Fatalf("cold X-HDVB-Cache = %q, want miss", got)
	}
	if n := ladders.Load(); n != 1 {
		t.Fatalf("cold rung ran %d ladder encodes, want 1", n)
	}

	sib, sibBody := get(t, base+"&rung=576p")
	if sib.StatusCode != http.StatusOK {
		t.Fatalf("sibling status %d: %s", sib.StatusCode, sibBody)
	}
	if got := sib.Header.Get("X-HDVB-Cache"); got != "hit" {
		t.Fatalf("sibling X-HDVB-Cache = %q, want hit (committed by the first rung's fill)", got)
	}
	hdr, _, err := hdvideobench.ReadStream(bytes.NewReader(sibBody))
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Width != 720 || hdr.Height != 576 {
		t.Fatalf("sibling rung geometry %dx%d, want 720x576", hdr.Width, hdr.Height)
	}

	warm, warmBody := get(t, base+"&rung=240p")
	if got := warm.Header.Get("X-HDVB-Cache"); got != "hit" {
		t.Fatalf("warm X-HDVB-Cache = %q, want hit", got)
	}
	if !bytes.Equal(coldBody, warmBody) {
		t.Fatal("cached rung bytes differ from the cold response")
	}
	if n := ladders.Load(); n != 1 {
		t.Fatalf("three rung requests ran %d ladder encodes, want 1", n)
	}
}

// TestSingleflightColdFill proves the coalescing of concurrent cold
// fills: two simultaneous identical requests run exactly one encode —
// the leader streams its encode, the follower blocks on the flight and
// serves the committed entry — and the shared serve is byte-identical
// and counted on hdvserve_singleflight_shared_total.
func TestSingleflightColdFill(t *testing.T) {
	s, ts := testServer(t, cachedServerConfig(t))
	encodes := countEncodes(s)
	started := make(chan struct{})
	proceed := make(chan struct{})
	inner := s.encode
	s.encode = func(w io.Writer, c hdvideobench.Codec, opts hdvideobench.EncoderOptions,
		frames int, next func() (*hdvideobench.Frame, error), indexed bool) (hdvideobench.StreamStats, hdvideobench.GOPIndex, error) {
		close(started)
		<-proceed
		return inner(w, c, opts, frames, next, indexed)
	}
	url := ts.URL + "/transcode?codec=mpeg2&width=96&height=80&frames=6&gop=3"

	type result struct {
		cache string
		body  []byte
	}
	results := make([]result, 2)
	var wg sync.WaitGroup
	launch := func(i int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, body := get(t, url)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d: %s", i, resp.StatusCode, body)
			}
			results[i] = result{cache: resp.Header.Get("X-HDVB-Cache"), body: body}
		}()
	}
	launch(0)
	<-started // the leader is inside its (gated) encode
	launch(1)
	// Wait until the follower's request has entered the handler, then
	// give it a beat to reach the flight wait before ungating the leader.
	deadline := time.Now().Add(5 * time.Second)
	for metricValue(t, metricsText(t, ts), `hdvserve_requests_total{endpoint="transcode",method="GET"}`) < 2 {
		if time.Now().After(deadline) {
			t.Fatal("second request never arrived")
		}
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(200 * time.Millisecond)
	close(proceed)
	wg.Wait()

	if n := encodes.Load(); n != 1 {
		t.Fatalf("two concurrent requests ran %d encodes, want 1", n)
	}
	if !bytes.Equal(results[0].body, results[1].body) {
		t.Fatal("leader and follower bodies differ")
	}
	states := []string{results[0].cache, results[1].cache}
	if !((states[0] == "miss" && states[1] == "shared") || (states[0] == "shared" && states[1] == "miss")) {
		t.Fatalf("cache states %v, want one miss and one shared", states)
	}
	if got := metricValue(t, metricsText(t, ts), "hdvserve_singleflight_shared_total"); got != 1 {
		t.Fatalf("hdvserve_singleflight_shared_total = %d, want 1", got)
	}
}

// metricsText fetches the /metrics exposition.
func metricsText(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	_, body := get(t, ts.URL+"/metrics")
	return string(body)
}
