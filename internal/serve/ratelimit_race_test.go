package serve

import (
	"io"
	"net/http"
	"regexp"
	"strconv"
	"sync"
	"testing"
)

// TestRateLimitConcurrentAccounting hammers one peer IP with 50
// concurrent requests against a burst-3, near-zero-refill bucket and
// checks the books balance exactly: 3 streams succeed, 47 are turned
// away with 429 + Retry-After, and /metrics agrees to the request —
// rate-limited rejections never reach the handler, so requests_total
// counts only the admitted three. The refill rate (0.001/s) cannot
// accrue a fourth token within any plausible test runtime, which is
// what makes the split deterministic. Run under -race this also
// exercises the limiter's mutex and the metrics counters concurrently.
func TestRateLimitConcurrentAccounting(t *testing.T) {
	const (
		total = 50
		burst = 3
	)
	_, ts := testServer(t, Config{
		Workers:       1,
		MaxConcurrent: burst, // all admitted requests may encode at once
		MaxFrames:     100,
		RateLimit:     0.001,
		RateBurst:     burst,
	})
	url := ts.URL + "/transcode?codec=mpeg2&seq=blue_sky&width=96&height=80&frames=4&gop=2"

	client := ts.Client()
	client.Transport.(*http.Transport).MaxConnsPerHost = 0
	client.Transport.(*http.Transport).MaxIdleConnsPerHost = total

	type outcome struct {
		status     int
		retryAfter string
		body       []byte
		err        error
	}
	outcomes := make([]outcome, total)
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := client.Get(url)
			if err != nil {
				outcomes[i] = outcome{err: err}
				return
			}
			defer resp.Body.Close()
			body, err := io.ReadAll(resp.Body)
			outcomes[i] = outcome{
				status:     resp.StatusCode,
				retryAfter: resp.Header.Get("Retry-After"),
				body:       body,
				err:        err,
			}
		}(i)
	}
	wg.Wait()

	ok, limited := 0, 0
	for i, o := range outcomes {
		switch {
		case o.err != nil:
			t.Fatalf("request %d: %v", i, o.err)
		case o.status == http.StatusOK:
			ok++
			if len(o.body) == 0 {
				t.Errorf("request %d: 200 with empty body", i)
			}
		case o.status == http.StatusTooManyRequests:
			limited++
			// Retry-After must be the one-token accrual time: 1/0.001s.
			if o.retryAfter != "1000" {
				t.Errorf("request %d: Retry-After = %q, want %q", i, o.retryAfter, "1000")
			}
		default:
			t.Fatalf("request %d: unexpected status %d: %s", i, o.status, o.body)
		}
	}
	if ok != burst || limited != total-burst {
		t.Fatalf("ok/limited = %d/%d, want %d/%d", ok, limited, burst, total-burst)
	}

	// The metrics endpoint (not rate limited) must agree exactly.
	m := fetchMetrics(t, ts.URL)
	checks := map[string]int{
		`hdvserve_rate_limited_total`:                                total - burst,
		`hdvserve_requests_total{endpoint="transcode",method="GET"}`: burst,
		`hdvserve_streams_served_total`:                              burst,
	}
	for metric, want := range checks {
		if got := metricValue(t, m, metric); got != want {
			t.Errorf("%s = %d, want %d\nmetrics:\n%s", metric, got, want, m)
		}
	}
}

func fetchMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// metricValue extracts an integer metric sample by its exact exposition
// name (labels included).
func metricValue(t *testing.T, metrics, name string) int {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\d+)$`)
	match := re.FindStringSubmatch(metrics)
	if match == nil {
		t.Fatalf("metric %q not found", name)
	}
	v, err := strconv.Atoi(match[1])
	if err != nil {
		t.Fatalf("metric %q: %v", name, err)
	}
	return v
}
