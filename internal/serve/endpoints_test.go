package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"hdvideobench"
	"hdvideobench/internal/codec"
	"hdvideobench/internal/container"
)

func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Routes())
	t.Cleanup(ts.Close)
	return s, ts
}

// TestTranscodeEndToEnd requests a stream for every codec and decodes
// the body with the streaming decoder: the served container must be
// complete, well formed, and match the sequence it claims to carry.
func TestTranscodeEndToEnd(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 2, MaxConcurrent: 2, MaxFrames: 100})
	const w, h, frames, gop = 96, 80, 8, 4

	for _, codec := range []string{"mpeg2", "mpeg4", "h264"} {
		t.Run(codec, func(t *testing.T) {
			url := fmt.Sprintf("%s/transcode?codec=%s&seq=rush_hour&width=%d&height=%d&frames=%d&gop=%d",
				ts.URL, codec, w, h, frames, gop)
			resp, err := http.Get(url)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				body, _ := io.ReadAll(resp.Body)
				t.Fatalf("status %d: %s", resp.StatusCode, body)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/x-hdvideobench" {
				t.Fatalf("Content-Type = %q", ct)
			}

			want, err := hdvideobench.ParseCodec(codec)
			if err != nil {
				t.Fatal(err)
			}
			inputs := hdvideobench.NewSequence(hdvideobench.RushHour, w, h).Generate(frames)
			count := 0
			hdr, _, err := hdvideobench.DecodeStream(resp.Body, false, 2, 0, func(f *hdvideobench.Frame) error {
				if f.PTS != count {
					return fmt.Errorf("frame %d: PTS %d", count, f.PTS)
				}
				if p := hdvideobench.PSNR(inputs[count], f); p < 20 {
					return fmt.Errorf("frame %d: PSNR %.2f dB", count, p)
				}
				count++
				return nil
			})
			if err != nil {
				t.Fatalf("decoding served stream: %v", err)
			}
			if hdr.Width != w || hdr.Height != h {
				t.Fatalf("served %dx%d, want %dx%d", hdr.Width, hdr.Height, w, h)
			}
			if hdr.Frames != frames {
				t.Fatalf("served header declares %d frames, want %d (truncation detection)", hdr.Frames, frames)
			}
			if got, _ := hdvideobench.ParseCodec(hdr.Codec.String()); got != want {
				t.Fatalf("served codec %v, want %v", hdr.Codec, want)
			}
			if count != frames {
				t.Fatalf("decoded %d frames, want %d", count, frames)
			}
		})
	}
}

// TestTranscodeBadParams checks every malformed query is rejected with
// 400 before any bytes hit the wire.
func TestTranscodeBadParams(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 2, MaxConcurrent: 2, MaxFrames: 100})
	cases := []struct{ name, query string }{
		{"unknown codec", "codec=vp9&width=96&height=80&frames=2"},
		{"unknown sequence", "seq=big_buck_bunny&width=96&height=80&frames=2"},
		{"width not multiple of 16", "width=100&height=80&frames=2"},
		{"height not a number", "width=96&height=eighty&frames=2"},
		{"zero frames", "width=96&height=80&frames=0"},
		{"frames over cap", "width=96&height=80&frames=101"},
		{"quantizer out of range", "width=96&height=80&frames=2&q=32"},
		{"zero gop", "width=96&height=80&frames=2&gop=0"},
		{"gop over fallback threshold", "width=96&height=80&frames=2&gop=256"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, err := http.Get(ts.URL + "/transcode?" + c.query)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
		})
	}
}

// TestTranscodeCapacity503 checks admission control: with the semaphore
// full the handler answers 503 + Retry-After immediately, and serves
// again once capacity frees up.
func TestTranscodeCapacity503(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 1, MaxConcurrent: 1, MaxFrames: 100})
	s.sem <- struct{}{} // occupy the only slot

	resp, err := http.Get(ts.URL + "/transcode?width=96&height=80&frames=2")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}

	<-s.sem // free the slot
	resp, err = http.Get(ts.URL + "/transcode?width=96&height=80&frames=2&gop=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status after capacity freed %d, want 200", resp.StatusCode)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		t.Fatal(err)
	}
}

// TestClientDisconnectMidStream starts a long stream, drops the
// connection after the first bytes, and checks the handler aborts the
// encode and releases its capacity slot so the next request succeeds.
func TestClientDisconnectMidStream(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 2, MaxConcurrent: 1, MaxFrames: 5000})

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "GET",
		ts.URL+"/transcode?width=96&height=80&frames=5000&gop=2", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read a little of the stream to make sure the encode is underway,
	// then drop the client.
	if _, err := io.ReadFull(resp.Body, make([]byte, 64)); err != nil {
		t.Fatalf("reading stream head: %v", err)
	}
	cancel()
	resp.Body.Close()

	// The only capacity slot must come back once the handler notices;
	// poll with a fresh short request until it does.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/transcode?width=96&height=80&frames=2&gop=2")
		if err != nil {
			t.Fatal(err)
		}
		var body bytes.Buffer
		_, cerr := io.Copy(&body, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK && cerr == nil {
			if body.Len() == 0 {
				t.Fatal("recovered request served an empty stream")
			}
			return // slot released, service healthy again
		}
		if time.Now().After(deadline) {
			t.Fatalf("capacity slot never released after disconnect (last status %d)", resp.StatusCode)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestHealthz checks the readiness endpoint shape.
func TestHealthz(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1, MaxConcurrent: 3, MaxFrames: 10})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte(`"status":"ok"`)) {
		t.Fatalf("healthz %d: %s", resp.StatusCode, body)
	}
}

// TestServedStreamTruncationDetectable checks the declared frame count
// does its job: a served container cut at a packet boundary must fail
// the client's decode with io.ErrUnexpectedEOF instead of passing as a
// complete (shorter) stream.
func TestServedStreamTruncationDetectable(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1, MaxConcurrent: 1, MaxFrames: 100})
	resp, err := http.Get(ts.URL + "/transcode?codec=mpeg2&width=96&height=80&frames=6&gop=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	// Cut the body right before the last packet's header: the remaining
	// bytes are a structurally clean prefix ending on a packet boundary.
	sr, err := container.NewStreamReader(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := sr.Next(); err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
	}
	cut := body[:sr.BytesRead()]

	_, _, err = hdvideobench.DecodeStream(bytes.NewReader(cut), false, 1, 0, func(*hdvideobench.Frame) error {
		return nil
	})
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("decoding truncated served stream: %v, want io.ErrUnexpectedEOF", err)
	}
}

// TestWorkersParamClamped checks an over-budget workers value is served
// with the budget rather than rejected, so clients need not know the
// replica's CPU count.
func TestWorkersParamClamped(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 2, MaxConcurrent: 1, MaxFrames: 100})
	resp, err := http.Get(ts.URL + "/transcode?width=96&height=80&frames=2&gop=2&workers=64")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 (clamped)", resp.StatusCode)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		t.Fatal(err)
	}
}

// TestSlicesParamServedAndClamped requests sliced streams: a slices=
// value within the worker budget must be honored in every frame's slice
// table, a value above the budget must be clamped to it (not rejected),
// out-of-range values are 400s, and the sliced stream stays decodable
// end to end.
func TestSlicesParamServedAndClamped(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 2, MaxConcurrent: 1, MaxFrames: 100})
	const w, h, frames = 96, 80, 3

	fetch := func(query string) (hdvideobench.StreamHeader, []hdvideobench.Packet) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/transcode?" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			body, _ := io.ReadAll(resp.Body)
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		hdr, pkts, err := hdvideobench.ReadStream(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return hdr, pkts
	}
	sliceCount := func(p hdvideobench.Packet) int {
		t.Helper()
		spans, _, err := codec.ParseSliceTable(p.Payload[1:], h/16)
		if err != nil {
			t.Fatal(err)
		}
		return len(spans)
	}

	base := fmt.Sprintf("width=%d&height=%d&frames=%d&gop=2", w, h, frames)
	hdr, pkts := fetch(base + "&slices=2")
	for i, p := range pkts {
		if got := sliceCount(p); got != 2 {
			t.Fatalf("packet %d: %d slices, want 2", i, got)
		}
	}
	dec, err := hdvideobench.NewDecoder(hdr, false)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := hdvideobench.DecodePackets(dec, pkts)
	if err != nil {
		t.Fatalf("decoding sliced stream: %v", err)
	}
	if len(decoded) != frames {
		t.Fatalf("decoded %d frames, want %d", len(decoded), frames)
	}

	// Over-budget slices clamp to the worker budget (2), like workers=.
	_, pkts = fetch(base + "&slices=64&workers=64")
	for i, p := range pkts {
		if got := sliceCount(p); got != 2 {
			t.Fatalf("clamped packet %d: %d slices, want 2", i, got)
		}
	}

	for _, bad := range []string{"&slices=0", "&slices=256", "&slices=four"} {
		resp, err := http.Get(ts.URL + "/transcode?" + base + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", bad, resp.StatusCode)
		}
	}
}
