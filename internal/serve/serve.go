// Package serve implements the hdvserve HTTP transcoding service: the
// GET/POST /transcode handlers, the disk-backed GOP cache integration,
// per-client rate limiting, admission control and /metrics. It lives
// outside cmd/hdvserve so the real-time SLO harness (internal/slo,
// cmd/hdvslo) and the httptest suites can run the exact production
// handler in-process; cmd/hdvserve is a thin flag-parsing front end.
// See cmd/hdvserve's command documentation for the HTTP API.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"sync/atomic"
	"time"

	"hdvideobench"
	"hdvideobench/internal/gopcache"
)

// StreamContentType is the media type of a served HDVB container.
const StreamContentType = "application/x-hdvideobench"

// Config carries the per-process limits.
type Config struct {
	Workers       int     // per-request worker budget
	Window        int     // per-request chunk window (0 = default)
	MaxConcurrent int     // concurrent encoding requests before 503
	MaxFrames     int     // cap on the frames= parameter
	MaxUpload     int64   // POST body cap in bytes
	CacheDir      string  // GOP cache directory ("" = caching off)
	CacheBytes    int64   // cache byte budget (<=0 = unlimited)
	RateLimit     float64 // per-client requests/second (0 = off)
	RateBurst     int     // per-client burst
}

// encodeFunc is the sequence-encoding entry point, a Server field so the
// httptest suite can count or fail encoder constructions (a cache hit
// must never invoke it). indexed selects the GOP-index-building flavor;
// without a cache fill to feed there is no reason to pay its
// chunk-granular drain (serial mode would then hold a GOP of coded
// packets before the first response byte).
type encodeFunc func(w io.Writer, c hdvideobench.Codec, opts hdvideobench.EncoderOptions,
	frames int, next func() (*hdvideobench.Frame, error), indexed bool) (hdvideobench.StreamStats, hdvideobench.GOPIndex, error)

// defaultEncode backs encodeFunc with the library's streaming encoders.
func defaultEncode(w io.Writer, c hdvideobench.Codec, opts hdvideobench.EncoderOptions,
	frames int, next func() (*hdvideobench.Frame, error), indexed bool) (hdvideobench.StreamStats, hdvideobench.GOPIndex, error) {
	if !indexed {
		stats, err := hdvideobench.EncodeStream(w, c, opts, frames, next)
		return stats, hdvideobench.GOPIndex{}, err
	}
	return hdvideobench.EncodeStreamIndexed(w, c, opts, frames, next)
}

// Server is the HTTP transcoding service; New constructs it, Routes
// hands back its handler, and the httptest suites (and cmd/hdvslo) can
// drive the exact production handler in-process.
type Server struct {
	cfg     Config
	sem     chan struct{}
	cache   *gopcache.Cache // nil = caching off
	limiter *rateLimiter    // nil = rate limiting off
	encode  encodeFunc

	// metrics
	active      atomic.Int64
	served      atomic.Int64 // completed GET streams (cold or cached)
	transcoded  atomic.Int64 // completed POST transcodes
	getReqs     atomic.Int64
	postReqs    atomic.Int64
	rateLimited atomic.Int64
	capacity503 atomic.Int64
	bytesServed atomic.Int64
	encodeNanos atomic.Int64
	encodes     atomic.Int64
}

func New(cfg Config) (*Server, error) {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.MaxConcurrent < 1 {
		cfg.MaxConcurrent = 1
	}
	if cfg.MaxFrames < 1 {
		cfg.MaxFrames = 5000
	}
	if cfg.MaxUpload < 1 {
		cfg.MaxUpload = 1 << 30
	}
	s := &Server{
		cfg:     cfg,
		sem:     make(chan struct{}, cfg.MaxConcurrent),
		limiter: newRateLimiter(cfg.RateLimit, cfg.RateBurst),
		encode:  defaultEncode,
	}
	if cfg.CacheDir != "" {
		cache, err := gopcache.Open(cfg.CacheDir, cfg.CacheBytes)
		if err != nil {
			return nil, err
		}
		s.cache = cache
	}
	return s, nil
}

func (s *Server) Routes() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /transcode", s.instrument(s.limit(s.handleTranscode)))
	mux.Handle("POST /transcode", s.instrument(s.limit(s.handleTranscodePost)))
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// instrument counts response bytes into the bytes-served total.
func (s *Server) instrument(next http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		next(&countingResponseWriter{rw: w, n: &s.bytesServed}, r)
	})
}

// limit applies the per-client token bucket, keyed by peer IP.
func (s *Server) limit(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.limiter != nil {
			host, _, err := net.SplitHostPort(r.RemoteAddr)
			if err != nil {
				host = r.RemoteAddr
			}
			if !s.limiter.allow(host, time.Now()) {
				s.rateLimited.Add(1)
				w.Header().Set("Retry-After", strconv.Itoa(s.limiter.retryAfterSeconds()))
				http.Error(w, "rate limit exceeded", http.StatusTooManyRequests)
				return
			}
		}
		next(w, r)
	}
}

// intParam parses an integer query parameter with a default and bounds.
func intParam(q url.Values, name string, def, lo, hi int) (int, error) {
	vs, ok := q[name]
	if !ok || len(vs) == 0 || vs[0] == "" {
		return def, nil
	}
	v, err := strconv.Atoi(vs[0])
	if err != nil {
		return 0, fmt.Errorf("%s: not an integer: %q", name, vs[0])
	}
	if v < lo || v > hi {
		return 0, fmt.Errorf("%s: %d out of range [%d,%d]", name, v, lo, hi)
	}
	return v, nil
}

// boolParam parses a boolean query parameter with strconv.ParseBool's
// strictness: absent/empty is false, garbage is an error — matching
// intParam, where a malformed value is a 400 rather than a silent
// default.
func boolParam(q url.Values, name string) (bool, error) {
	v := q.Get(name)
	if v == "" {
		return false, nil
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		return false, fmt.Errorf("%s: not a boolean: %q", name, v)
	}
	return b, nil
}

// transcodeRequest is a validated /transcode query.
type transcodeRequest struct {
	codec  hdvideobench.Codec
	seq    hdvideobench.Sequence
	frames int
	index  bool // GET: serve the GOP index instead of the stream
	opts   hdvideobench.EncoderOptions
}

// cacheKey maps the request onto the GOP cache's key space: every field
// that shapes the coded bytes, and nothing else (workers and window are
// byte-identical by the pipeline's determinism guarantee).
func (req transcodeRequest) cacheKey() gopcache.Key {
	// Only H.264 has a selectable entropy coder; keying it for the other
	// codecs would give byte-identical streams two cache entries.
	entropy := ""
	if req.codec == hdvideobench.H264 {
		entropy = "cabac"
		if req.opts.Entropy == hdvideobench.EntropyVLC {
			entropy = "vlc"
		}
	}
	return gopcache.Key{
		Codec:   req.codec.String(),
		Seq:     req.seq.String(),
		Width:   req.opts.Width,
		Height:  req.opts.Height,
		Frames:  req.frames,
		Q:       req.opts.Q,
		GOP:     req.opts.IntraPeriod,
		Slices:  req.opts.Slices,
		Entropy: entropy,
		SIMD:    req.opts.SIMD,
	}
}

// parseCoding parses the coding options shared by GET and POST. width
// and height of 0 mean "copy the input" (POST); GET overrides the
// defaults before calling.
func (s *Server) parseCoding(q url.Values, defWidth, defHeight int) (hdvideobench.Codec, hdvideobench.EncoderOptions, error) {
	var opts hdvideobench.EncoderOptions
	codecName := q.Get("codec")
	if codecName == "" {
		codecName = "h264"
	}
	c, err := hdvideobench.ParseCodec(codecName)
	if err != nil {
		return c, opts, err
	}

	width, err := intParam(q, "width", defWidth, 16, 4096)
	if err != nil {
		return c, opts, err
	}
	height, err := intParam(q, "height", defHeight, 16, 4096)
	if err != nil {
		return c, opts, err
	}
	if width != 0 && height != 0 {
		if err := hdvideobench.ValidateResolution(width, height); err != nil {
			return c, opts, err
		}
	} else if width%16 != 0 || height%16 != 0 {
		// POST may override just one dimension (the other copies the
		// input's), so each is validated on its own here.
		return c, opts, fmt.Errorf("width/height must be multiples of 16, got %dx%d", width, height)
	}
	qp, err := intParam(q, "q", 5, 1, 31)
	if err != nil {
		return c, opts, err
	}
	// The gop ceiling matches the streaming decoder's fallback
	// threshold, so every stream this server emits stays fully
	// GOP-parallel on the client's decode side.
	gop, err := intParam(q, "gop", 8, 1, 255)
	if err != nil {
		return c, opts, err
	}
	// workers clamps to the server's budget rather than rejecting, so
	// one client request works against any replica's CPU budget.
	workers, err := intParam(q, "workers", s.cfg.Workers, 1, 4096)
	if err != nil {
		return c, opts, err
	}
	workers = min(workers, s.cfg.Workers)
	// slices clamps to the request's worker budget: more slices than
	// workers would pay the compression cost without buying speedup.
	slices, err := intParam(q, "slices", 1, 1, 255)
	if err != nil {
		return c, opts, err
	}
	slices = min(slices, workers)
	simd, err := boolParam(q, "simd")
	if err != nil {
		return c, opts, err
	}
	vlc, err := boolParam(q, "vlc")
	if err != nil {
		return c, opts, err
	}

	opts = hdvideobench.EncoderOptions{
		Width: width, Height: height, Q: qp,
		IntraPeriod: gop,
		Slices:      slices,
		Workers:     workers,
		Window:      s.cfg.Window,
		SIMD:        simd,
	}
	if vlc {
		opts.Entropy = hdvideobench.EntropyVLC
	}
	return c, opts, nil
}

func (s *Server) parseTranscode(r *http.Request) (transcodeRequest, error) {
	q := r.URL.Query()
	var req transcodeRequest
	var err error

	// res= names a benchmark resolution (576p25 ... 2160p25, plus
	// aliases like 1080p/4k); it sets the width/height defaults, which
	// explicit width=/height= parameters still override.
	defWidth, defHeight := 1280, 720
	if name := q.Get("res"); name != "" {
		res, err := hdvideobench.ResolutionByName(name)
		if err != nil {
			return req, err
		}
		defWidth, defHeight = res.Width, res.Height
	}
	if req.codec, req.opts, err = s.parseCoding(q, defWidth, defHeight); err != nil {
		return req, err
	}
	seqName := q.Get("seq")
	if seqName == "" {
		seqName = "blue_sky"
	}
	if req.seq, err = hdvideobench.ParseSequence(seqName); err != nil {
		return req, err
	}
	if req.frames, err = intParam(q, "frames", min(250, s.cfg.MaxFrames), 1, s.cfg.MaxFrames); err != nil {
		return req, err
	}
	if req.index, err = boolParam(q, "index"); err != nil {
		return req, err
	}
	return req, nil
}

// acquire takes an encoding slot or answers 503: hand back pressure
// instead of queueing unbounded work — the client can retry against
// another replica.
func (s *Server) acquire(w http.ResponseWriter) bool {
	select {
	case s.sem <- struct{}{}:
		s.active.Add(1)
		return true
	default:
		s.capacity503.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, "transcoder at capacity", http.StatusServiceUnavailable)
		return false
	}
}

func (s *Server) release() {
	s.active.Add(-1)
	<-s.sem
}

// frameFeed yields the request's generated frames, honoring the request
// context so a dropped client aborts the encode from the input side.
func frameFeed(ctx context.Context, req transcodeRequest) func() (*hdvideobench.Frame, error) {
	gen := hdvideobench.NewSequence(req.seq, req.opts.Width, req.opts.Height)
	i := 0
	return func() (*hdvideobench.Frame, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if i >= req.frames {
			return nil, io.EOF
		}
		f := gen.Frame(i)
		i++
		return f, nil
	}
}

func (s *Server) handleTranscode(w http.ResponseWriter, r *http.Request) {
	s.getReqs.Add(1)
	req, err := s.parseTranscode(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if req.index && s.cache == nil {
		http.Error(w, "index requires caching (-cache-dir)", http.StatusBadRequest)
		return
	}

	var key gopcache.Key
	if s.cache != nil {
		key = req.cacheKey()
		if ent, ok := s.cache.Get(key); ok {
			s.serveCached(w, r, req, ent, "hit")
			return
		}
	}

	if !s.acquire(w) {
		return
	}
	defer s.release()

	// Seek and index need the complete entry: encode it into the cache
	// first, then serve the requested span off disk.
	if s.cache != nil && (req.index || r.Header.Get("Range") != "") {
		ent, ok := s.fillCache(w, r, req, key)
		if !ok {
			return
		}
		s.serveCached(w, r, req, ent, "miss")
		return
	}
	s.streamCold(w, r, req, key)
}

// serveCached serves a request straight from an opened cache entry:
// the index as JSON, or the container bytes with standard Range
// support. state names how the entry got here ("hit" or "miss").
func (s *Server) serveCached(w http.ResponseWriter, r *http.Request, req transcodeRequest, ent *gopcache.Entry, state string) {
	defer ent.Close()
	if req.index {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-HDVB-Cache", state)
		writeIndexJSON(w, ent.Index)
		return
	}
	h := w.Header()
	h.Set("Content-Type", StreamContentType)
	h.Set("X-HDVB-Codec", req.codec.String())
	h.Set("X-HDVB-Frames", strconv.Itoa(req.frames))
	h.Set("X-HDVB-Cache", state)
	// ServeContent handles Range/If-Range/HEAD and sets Content-Length
	// and Accept-Ranges; the body is the exact byte stream a cold
	// encode produces, so hits are byte-identical to misses.
	http.ServeContent(w, r, "", ent.ModTime, ent.Body())
	s.served.Add(1)
}

type indexJSON struct {
	Size int64          `json:"size"`
	GOPs []indexGOPJSON `json:"gops"`
}

type indexGOPJSON struct {
	Offset int64 `json:"offset"`
	Frame  int   `json:"frame"`
}

func writeIndexJSON(w io.Writer, idx hdvideobench.GOPIndex) {
	out := indexJSON{Size: idx.Size, GOPs: make([]indexGOPJSON, len(idx.Entries))}
	for i, e := range idx.Entries {
		out.GOPs[i] = indexGOPJSON{Offset: e.Offset, Frame: e.Frame}
	}
	json.NewEncoder(w).Encode(out)
}

// fillCache encodes the request into the cache without streaming to the
// client (the ranged/indexed miss path). On failure it writes the error
// response and reports !ok.
func (s *Server) fillCache(w http.ResponseWriter, r *http.Request, req transcodeRequest, key gopcache.Key) (*gopcache.Entry, bool) {
	fill, err := s.cache.NewFill(key)
	if err != nil {
		http.Error(w, "cache unavailable", http.StatusInternalServerError)
		return nil, false
	}
	ctx := r.Context()
	start := time.Now()
	fw := &errTrackWriter{w: fill}
	stats, idx, err := s.encode(fw, req.codec, req.opts, req.frames, frameFeed(ctx, req), true)
	if err != nil {
		fill.Abort()
		if ctx.Err() != nil {
			return nil, false // client gone; nobody is listening
		}
		switch {
		case fw.err != nil:
			// The request was fine; the cache disk was not. A zero-byte
			// fill failure must not masquerade as a client error.
			http.Error(w, "cache write failed", http.StatusInternalServerError)
		case stats.Bytes == 0:
			http.Error(w, err.Error(), http.StatusBadRequest)
		default:
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return nil, false
	}
	s.encodes.Add(1)
	s.encodeNanos.Add(int64(time.Since(start)))
	ent, err := fill.Commit(idx)
	if err != nil {
		http.Error(w, "cache commit failed", http.StatusInternalServerError)
		return nil, false
	}
	return ent, true
}

// streamCold encodes and streams the request with chunked transfer,
// teeing the byte stream into a cache fill when caching is on. Stream
// headers are deferred to the first body byte so pre-stream failures
// (nothing on the wire yet) produce clean, headerless error statuses.
func (s *Server) streamCold(w http.ResponseWriter, r *http.Request, req transcodeRequest, key gopcache.Key) {
	hw := &deferredHeaderWriter{rw: w, set: func(h http.Header) {
		h.Set("Content-Type", StreamContentType)
		h.Set("X-HDVB-Codec", req.codec.String())
		h.Set("X-HDVB-Frames", strconv.Itoa(req.frames))
		if s.cache != nil {
			h.Set("X-HDVB-Cache", "miss")
		}
	}}
	var sink flushWriter = hw
	var tee *cacheTeeWriter
	if s.cache != nil {
		// Cache trouble must never fail serving: no fill, no tee.
		if fill, err := s.cache.NewFill(key); err == nil {
			tee = &cacheTeeWriter{dst: hw, fill: fill}
			sink = tee
		}
	}

	ctx := r.Context()
	start := time.Now()
	// The GOP index only exists to be committed with the fill; without a
	// tee the plain per-packet drain keeps first-byte latency at one
	// packet, not one GOP.
	stats, idx, err := s.encode(sink, req.codec, req.opts, req.frames, frameFeed(ctx, req), tee != nil)
	abortTee := func() {
		if tee != nil {
			tee.fill.Abort()
		}
	}
	switch {
	case err == nil:
		s.served.Add(1)
		s.encodes.Add(1)
		s.encodeNanos.Add(int64(time.Since(start)))
		if tee != nil {
			if tee.teeErr != nil {
				tee.fill.Abort()
			} else if ent, err := tee.fill.Commit(idx); err != nil {
				log.Printf("hdvserve: cache commit: %v", err)
			} else {
				ent.Close() // already streamed; only fillCache serves off the commit
			}
		}
		log.Printf("hdvserve: %s %s %dx%d frames=%d workers=%d: %d bytes in %v",
			req.codec, req.seq, req.opts.Width, req.opts.Height,
			req.frames, req.opts.Workers, stats.Bytes, time.Since(start).Round(time.Millisecond))
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) || ctx.Err() != nil:
		abortTee()
		log.Printf("hdvserve: client gone after %d frames (%d bytes)", stats.Frames, stats.Bytes)
	case !hw.wrote:
		// Nothing on the wire yet: the error can still become a status,
		// and since the stream headers are deferred, the 400 carries
		// none of them.
		abortTee()
		http.Error(w, err.Error(), http.StatusBadRequest)
	default:
		// Mid-stream failure; the truncated body is the only signal.
		abortTee()
		log.Printf("hdvserve: stream failed after %d frames: %v", stats.Frames, err)
	}
}

func (s *Server) handleTranscodePost(w http.ResponseWriter, r *http.Request) {
	s.postReqs.Add(1)
	q := r.URL.Query()
	codec, opts, err := s.parseCoding(q, 0, 0) // width/height 0: copy the input's
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if !s.acquire(w) {
		return
	}
	defer s.release()

	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxUpload)
	hw := &deferredHeaderWriter{rw: w, set: func(h http.Header) {
		h.Set("Content-Type", StreamContentType)
		h.Set("X-HDVB-Codec", codec.String())
	}}
	ctx := r.Context()
	start := time.Now()
	stats, err := hdvideobench.Transcode(body, hw, codec, opts)
	switch {
	case err == nil:
		s.transcoded.Add(1)
		s.encodes.Add(1)
		s.encodeNanos.Add(int64(time.Since(start)))
		log.Printf("hdvserve: transcode %s -> %s: %d frames, %d -> %d bytes in %v",
			stats.In, stats.Out, stats.Frames, stats.BytesIn, stats.BytesOut,
			time.Since(start).Round(time.Millisecond))
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) || ctx.Err() != nil:
		log.Printf("hdvserve: transcode client gone after %d frames", stats.Frames)
	case !hw.wrote:
		// A bad upload (wrong magic, unsupported version, bad config)
		// fails before the output container opens.
		http.Error(w, err.Error(), http.StatusBadRequest)
	default:
		log.Printf("hdvserve: transcode failed after %d frames: %v", stats.Frames, err)
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	fmt.Fprintf(w, "# HELP hdvserve_requests_total Requests by endpoint and method.\n# TYPE hdvserve_requests_total counter\n")
	fmt.Fprintf(w, "hdvserve_requests_total{endpoint=\"transcode\",method=\"GET\"} %d\n", s.getReqs.Load())
	fmt.Fprintf(w, "hdvserve_requests_total{endpoint=\"transcode\",method=\"POST\"} %d\n", s.postReqs.Load())
	gauge("hdvserve_active_requests", "Encoding requests in flight.", s.active.Load())
	counter("hdvserve_streams_served_total", "Completed GET /transcode streams (cold or cached).", s.served.Load())
	counter("hdvserve_uploads_transcoded_total", "Completed POST /transcode transcodes.", s.transcoded.Load())
	counter("hdvserve_encodes_total", "Encoder pipeline runs (cache hits never add here).", s.encodes.Load())
	fmt.Fprintf(w, "# HELP hdvserve_encode_seconds_total Cumulative wall-clock seconds spent encoding.\n# TYPE hdvserve_encode_seconds_total counter\nhdvserve_encode_seconds_total %f\n",
		time.Duration(s.encodeNanos.Load()).Seconds())
	counter("hdvserve_bytes_served_total", "Response bytes written on /transcode.", s.bytesServed.Load())
	counter("hdvserve_rate_limited_total", "Requests rejected by the per-client rate limit.", s.rateLimited.Load())
	counter("hdvserve_capacity_rejections_total", "Requests rejected with 503 at the encode semaphore.", s.capacity503.Load())
	if s.cache != nil {
		cs := s.cache.Stats()
		counter("hdvserve_cache_hits_total", "GOP cache hits.", cs.Hits)
		counter("hdvserve_cache_misses_total", "GOP cache misses.", cs.Misses)
		counter("hdvserve_cache_evictions_total", "GOP cache entries evicted for budget.", cs.Evictions)
		gauge("hdvserve_cache_entries", "GOP cache entries on disk.", int64(cs.Entries))
		gauge("hdvserve_cache_bytes", "GOP cache bytes on disk.", cs.Bytes)
		gauge("hdvserve_cache_budget_bytes", "GOP cache byte budget (0 = unlimited).", cs.Budget)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"status":"ok","active":%d,"capacity":%d,"served":%d}`+"\n",
		s.active.Load(), s.cfg.MaxConcurrent, s.served.Load())
}

// flushWriter is what the streaming paths need from their sink: the
// container's StreamWriter flush-through triggers on the error-less
// Flush flavor.
type flushWriter interface {
	io.Writer
	Flush()
}

// deferredHeaderWriter postpones the stream headers to the first body
// byte: a request that fails before producing any output (bad encoder
// config, cache fill refusal) can then answer with a clean error status
// instead of a 400 that carries X-HDVB-* stream headers.
type deferredHeaderWriter struct {
	rw    http.ResponseWriter
	set   func(http.Header)
	wrote bool
}

func (d *deferredHeaderWriter) Write(p []byte) (int, error) {
	if !d.wrote {
		d.wrote = true
		if d.set != nil {
			d.set(d.rw.Header())
		}
	}
	return d.rw.Write(p)
}

func (d *deferredHeaderWriter) Flush() {
	if f, ok := d.rw.(http.Flusher); ok {
		f.Flush()
	}
}

// errTrackWriter remembers the first write failure, letting fillCache
// tell a cache-disk fault (500) apart from a request the encoder
// rejected before producing bytes (400).
type errTrackWriter struct {
	w   io.Writer
	err error
}

func (e *errTrackWriter) Write(p []byte) (int, error) {
	n, err := e.w.Write(p)
	if err != nil && e.err == nil {
		e.err = err
	}
	return n, err
}

// cacheTeeWriter mirrors the response byte stream into a cache fill. A
// fill failure (disk full) quietly stops the tee — caching is an
// optimization, never a reason to fail the client's stream — and the
// fill is aborted instead of committed.
type cacheTeeWriter struct {
	dst    *deferredHeaderWriter
	fill   *gopcache.Fill
	teeErr error
}

func (t *cacheTeeWriter) Write(p []byte) (int, error) {
	n, err := t.dst.Write(p)
	if n > 0 && t.teeErr == nil {
		if _, werr := t.fill.Write(p[:n]); werr != nil {
			t.teeErr = werr
		}
	}
	return n, err
}

func (t *cacheTeeWriter) Flush() { t.dst.Flush() }

// countingResponseWriter feeds the bytes-served metric, passing flushes
// through so chunked streaming keeps its per-packet latency.
type countingResponseWriter struct {
	rw http.ResponseWriter
	n  *atomic.Int64
}

func (c *countingResponseWriter) Header() http.Header { return c.rw.Header() }

func (c *countingResponseWriter) WriteHeader(code int) { c.rw.WriteHeader(code) }

func (c *countingResponseWriter) Write(p []byte) (int, error) {
	n, err := c.rw.Write(p)
	c.n.Add(int64(n))
	return n, err
}

func (c *countingResponseWriter) Flush() {
	if f, ok := c.rw.(http.Flusher); ok {
		f.Flush()
	}
}
