// Package serve implements the hdvserve HTTP transcoding service: the
// GET/POST /transcode handlers, the disk-backed GOP cache integration,
// per-client rate limiting, admission control and /metrics. It lives
// outside cmd/hdvserve so the real-time SLO harness (internal/slo,
// cmd/hdvslo) and the httptest suites can run the exact production
// handler in-process; cmd/hdvserve is a thin flag-parsing front end.
// See cmd/hdvserve's command documentation for the HTTP API.
//
// Observability (PR 7): every series lives on an internal/obs registry —
// the original flat counters keep their exact names, joined by labeled
// latency histograms ({endpoint, codec, res, cache}) and the pipeline's
// chunk/queue/gate series fed through an obs.Collector threaded into
// EncoderOptions. Each /transcode request carries an X-Request-ID
// (propagated from the client or generated), emits a Server-Timing
// header (and, on cold chunked streams, a Server-Timing trailer with
// the encode phases that only finish after the first byte), and lands
// in a last-N ring served at /debug/requests on the DebugRoutes mux —
// which, with /debug/pprof/*, binds only to the separate -debug-addr
// listener, never the public one.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"hdvideobench"
	"hdvideobench/internal/gopcache"
	"hdvideobench/internal/obs"
)

// StreamContentType is the media type of a served HDVB container.
const StreamContentType = "application/x-hdvideobench"

// requestRingSize is how many completed requests /debug/requests holds.
const requestRingSize = 64

// maxLadderFrames caps frames= on ladder requests: the ladder encoder
// is a batch path (every rung's packets are held in memory before the
// first response byte), unlike the constant-memory streaming paths.
const maxLadderFrames = 250

// Config carries the per-process limits.
type Config struct {
	Workers       int     // per-request worker budget
	Window        int     // per-request chunk window (0 = default)
	MaxConcurrent int     // concurrent encoding requests before 503
	MaxFrames     int     // cap on the frames= parameter
	MaxUpload     int64   // POST body cap in bytes
	CacheDir      string  // GOP cache directory ("" = caching off)
	CacheBytes    int64   // cache byte budget (<=0 = unlimited)
	RateLimit     float64 // per-client requests/second (0 = off)
	RateBurst     int     // per-client burst
	// Logger receives the server's leveled logs (request summaries at
	// debug, stream completions at info, failures at warn). nil discards
	// everything — the default keeps in-process harnesses and tests
	// quiet; cmd/hdvserve wires a real handler.
	Logger *slog.Logger
}

// encodeFunc is the sequence-encoding entry point, a Server field so the
// httptest suite can count or fail encoder constructions (a cache hit
// must never invoke it). indexed selects the GOP-index-building flavor;
// without a cache fill to feed there is no reason to pay its
// chunk-granular drain (serial mode would then hold a GOP of coded
// packets before the first response byte).
type encodeFunc func(w io.Writer, c hdvideobench.Codec, opts hdvideobench.EncoderOptions,
	frames int, next func() (*hdvideobench.Frame, error), indexed bool) (hdvideobench.StreamStats, hdvideobench.GOPIndex, error)

// defaultEncode backs encodeFunc with the library's streaming encoders.
func defaultEncode(w io.Writer, c hdvideobench.Codec, opts hdvideobench.EncoderOptions,
	frames int, next func() (*hdvideobench.Frame, error), indexed bool) (hdvideobench.StreamStats, hdvideobench.GOPIndex, error) {
	if !indexed {
		stats, err := hdvideobench.EncodeStream(w, c, opts, frames, next)
		return stats, hdvideobench.GOPIndex{}, err
	}
	return hdvideobench.EncodeStreamIndexed(w, c, opts, frames, next)
}

// ladderFunc is the rendition-ladder encoding entry point, a Server
// field for the same reason as encodeFunc: the httptest suite counts
// invocations to prove singleflight coalescing and cache hits.
type ladderFunc func(c hdvideobench.Codec, opts hdvideobench.EncoderOptions,
	frames []*hdvideobench.Frame, rungs []hdvideobench.LadderRung) ([]hdvideobench.LadderRendition, error)

// Server is the HTTP transcoding service; New constructs it, Routes
// hands back its handler, and the httptest suites (and cmd/hdvslo) can
// drive the exact production handler in-process.
type Server struct {
	cfg     Config
	sem     chan struct{}
	cache   *gopcache.Cache // nil = caching off
	limiter *rateLimiter    // nil = rate limiting off
	encode  encodeFunc
	ladder  ladderFunc
	flights flightGroup
	log     *slog.Logger

	reg    *obs.Registry
	reqLog *obs.RequestLog
	col    *obs.Collector // threaded into every encode via EncoderOptions
	m      serverMetrics
}

// serverMetrics holds the registry handles the handlers update. The
// names (and zero-label shapes) of the first block predate the registry
// and are pinned by the endpoint tests and any deployed scrape config —
// do not rename them.
type serverMetrics struct {
	getReqs     *obs.Counter // hdvserve_requests_total{endpoint="transcode",method="GET"}
	postReqs    *obs.Counter // hdvserve_requests_total{endpoint="transcode",method="POST"}
	active      *obs.Gauge
	served      *obs.Counter
	transcoded  *obs.Counter
	encodes     *obs.Counter
	encSeconds  *obs.Counter
	bytesServed *obs.Counter
	rateLimited *obs.Counter
	capacity503 *obs.Counter
	sfShared    *obs.Counter

	reqSeconds *obs.HistogramVec // {endpoint, codec, res, cache}
	ttfb       *obs.HistogramVec
	coldEnc    *obs.HistogramVec
	cacheFill  *obs.HistogramVec
}

func New(cfg Config) (*Server, error) {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.MaxConcurrent < 1 {
		cfg.MaxConcurrent = 1
	}
	if cfg.MaxFrames < 1 {
		cfg.MaxFrames = 5000
	}
	if cfg.MaxUpload < 1 {
		cfg.MaxUpload = 1 << 30
	}
	s := &Server{
		cfg:     cfg,
		sem:     make(chan struct{}, cfg.MaxConcurrent),
		limiter: newRateLimiter(cfg.RateLimit, cfg.RateBurst),
		encode:  defaultEncode,
		ladder:  hdvideobench.EncodeLadder,
		log:     cfg.Logger,
		reg:     obs.NewRegistry(),
		reqLog:  obs.NewRequestLog(requestRingSize),
	}
	if s.log == nil {
		s.log = slog.New(slog.DiscardHandler)
	}
	if cfg.CacheDir != "" {
		cache, err := gopcache.Open(cfg.CacheDir, cfg.CacheBytes)
		if err != nil {
			return nil, err
		}
		s.cache = cache
	}
	s.registerMetrics()
	return s, nil
}

// registerMetrics builds every family. Registration order is exposition
// order; the pre-registry names come first, in their historical order.
func (s *Server) registerMetrics() {
	m := &s.m
	reqs := s.reg.Counter("hdvserve_requests_total", "Requests by endpoint and method.", "endpoint", "method")
	// Touch both series now so a fresh server exposes them at zero.
	m.getReqs = reqs.With("transcode", "GET")
	m.postReqs = reqs.With("transcode", "POST")
	m.active = s.reg.Gauge("hdvserve_active_requests", "Encoding requests in flight.").With()
	m.served = s.reg.Counter("hdvserve_streams_served_total", "Completed GET /transcode streams (cold or cached).").With()
	m.transcoded = s.reg.Counter("hdvserve_uploads_transcoded_total", "Completed POST /transcode transcodes.").With()
	m.encodes = s.reg.Counter("hdvserve_encodes_total", "Encoder pipeline runs (cache hits never add here).").With()
	m.encSeconds = s.reg.Counter("hdvserve_encode_seconds_total", "Cumulative wall-clock seconds spent encoding.").With()
	m.bytesServed = s.reg.Counter("hdvserve_bytes_served_total", "Response bytes written on /transcode.").With()
	m.rateLimited = s.reg.Counter("hdvserve_rate_limited_total", "Requests rejected by the per-client rate limit.").With()
	m.capacity503 = s.reg.Counter("hdvserve_capacity_rejections_total", "Requests rejected with 503 at the encode semaphore.").With()
	m.sfShared = s.reg.Counter("hdvserve_singleflight_shared_total", "Requests served from another request's concurrent cache fill instead of encoding.").With()
	if s.cache != nil {
		// The cache owns its counters; scrape-time funcs read them
		// instead of mirroring through writable cells that could skew.
		s.reg.CounterFunc("hdvserve_cache_hits_total", "GOP cache hits.",
			func() float64 { return float64(s.cache.Stats().Hits) })
		s.reg.CounterFunc("hdvserve_cache_misses_total", "GOP cache misses.",
			func() float64 { return float64(s.cache.Stats().Misses) })
		s.reg.CounterFunc("hdvserve_cache_evictions_total", "GOP cache entries evicted for budget.",
			func() float64 { return float64(s.cache.Stats().Evictions) })
		s.reg.GaugeFunc("hdvserve_cache_entries", "GOP cache entries on disk.",
			func() float64 { return float64(s.cache.Stats().Entries) })
		s.reg.GaugeFunc("hdvserve_cache_bytes", "GOP cache bytes on disk.",
			func() float64 { return float64(s.cache.Stats().Bytes) })
		s.reg.GaugeFunc("hdvserve_cache_budget_bytes", "GOP cache byte budget (0 = unlimited).",
			func() float64 { return float64(s.cache.Stats().Budget) })
	}

	// Request-shape latency histograms. res is "WxH" ("input" when a
	// POST copies the upload's dimensions); cache is hit/miss/none.
	// Labels are spelled out per site: metriclint checks each name
	// against the Prometheus grammar at the registration call.
	m.reqSeconds = s.reg.Histogram("hdvserve_request_seconds", "Request wall time by endpoint, codec, resolution and cache disposition.", nil, "endpoint", "codec", "res", "cache")
	m.ttfb = s.reg.Histogram("hdvserve_ttfb_seconds", "Time to first response body byte.", nil, "endpoint", "codec", "res", "cache")
	m.coldEnc = s.reg.Histogram("hdvserve_cold_encode_seconds", "Encode wall time of cache-miss and uncached requests.", nil, "endpoint", "codec", "res", "cache")
	m.cacheFill = s.reg.Histogram("hdvserve_cache_fill_seconds", "Wall time from encode start to cache commit for completed fills.", nil, "endpoint", "codec", "res", "cache")

	// Pipeline self-measurements, reported by every encode this server
	// runs through the Collector in EncoderOptions.
	gate := s.reg.Counter("hdvserve_gate_slices_total", "Slice jobs by dispatch mode (spawned onto a gate token vs inline).", "mode")
	s.col = &obs.Collector{
		ChunkEncode: s.reg.Histogram("hdvserve_chunk_encode_seconds", "Per closed-GOP chunk encode wall time inside the worker pool.", nil).With(),
		DrainStall:  s.reg.Histogram("hdvserve_drain_stall_seconds", "Reader wait on the ordered drain for the oldest in-flight chunk.", nil).With(),
		QueueDepth:  s.reg.Gauge("hdvserve_chunk_queue_depth", "Chunks submitted to the encode pool and not yet coded.").With(),
		GateWait:    s.reg.Histogram("hdvserve_gate_wait_seconds", "Slice-gate dispatcher wait for spawned slice stragglers.", nil).With(),
		GateSpawned: gate.With("spawned"),
		GateInline:  gate.With("inline"),
		WavefrontWait: s.reg.Histogram("hdvserve_wavefront_wait_seconds",
			"Parked waits of wavefront row coders on their top-right dependency.", nil).With(),
		FrontDepth: s.reg.Histogram("hdvserve_wavefront_front_depth",
			"Concurrent row coders per wavefront launch (1 = degenerate serial front).", nil).With(),
	}
}

func (s *Server) Routes() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("GET /transcode", s.instrument("transcode", s.limit(s.handleTranscode)))
	mux.Handle("POST /transcode", s.instrument("transcode", s.limit(s.handleTranscodePost)))
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// reqTrack is the per-request instrumentation carrier: a ResponseWriter
// wrapper recording status, bytes, and first-byte time, plus the trace
// and label fields the middleware turns into histograms and a ring
// record when the handler returns. Handlers reach it via track(w).
type reqTrack struct {
	rw    http.ResponseWriter
	bytes *obs.Counter // global bytes-served total

	id        string
	start     time.Time
	trace     *obs.Trace
	status    int
	written   int64
	firstByte time.Time
	codec     string // "" until the request parses
	res       string
	cache     string // hit, miss, or none
}

func (t *reqTrack) Header() http.Header { return t.rw.Header() }

func (t *reqTrack) WriteHeader(code int) {
	if t.status == 0 {
		t.status = code
	}
	t.rw.WriteHeader(code)
}

func (t *reqTrack) Write(p []byte) (int, error) {
	if t.status == 0 {
		t.status = http.StatusOK
	}
	if t.firstByte.IsZero() {
		t.firstByte = time.Now()
	}
	n, err := t.rw.Write(p)
	t.written += int64(n)
	t.bytes.Add(float64(n))
	return n, err
}

func (t *reqTrack) Flush() {
	if f, ok := t.rw.(http.Flusher); ok {
		f.Flush()
	}
}

// setStream records the parsed stream shape on the track's labels.
func (t *reqTrack) setStream(c hdvideobench.Codec, opts hdvideobench.EncoderOptions) {
	t.codec = c.String()
	if opts.Width > 0 && opts.Height > 0 {
		t.res = strconv.Itoa(opts.Width) + "x" + strconv.Itoa(opts.Height)
	} else {
		t.res = "input" // POST copying the upload's dimensions
	}
}

// serverTiming renders the completed phases plus the cache disposition
// as a Server-Timing value — the disposition marker is what makes a
// warm hit and a cold miss distinguishable at header time, before the
// cold path's encode phases have finished.
func (t *reqTrack) serverTiming() string {
	st := t.trace.ServerTiming()
	if t.cache == "none" {
		return st
	}
	if st != "" {
		st += ", "
	}
	return st + t.cache
}

// track returns the request's instrumentation carrier. Handlers only
// run wrapped by instrument, so the assertion holds; the fallback keeps
// a directly-invoked handler (subtests poking internals) functional.
func track(w http.ResponseWriter) *reqTrack {
	if t, ok := w.(*reqTrack); ok {
		return t
	}
	return &reqTrack{rw: w, bytes: nil, start: time.Now(), trace: obs.NewTrace(), cache: "none"}
}

// instrument wraps a /transcode handler with the per-request
// observability: request-ID generation/propagation/echo, byte and
// latency accounting, the /debug/requests ring, and the debug log line.
func (s *Server) instrument(endpoint string, next http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-ID")
		if id == "" {
			id = obs.NewRequestID()
		}
		w.Header().Set("X-Request-ID", id)
		t := &reqTrack{
			rw: w, bytes: s.m.bytesServed,
			id: id, start: time.Now(), trace: obs.NewTrace(), cache: "none",
		}
		next(t, r)
		if t.status == 0 {
			t.status = http.StatusOK // handler wrote nothing at all
		}
		dur := time.Since(t.start)
		s.m.reqSeconds.With(endpoint, t.codec, t.res, t.cache).Observe(dur.Seconds())
		if !t.firstByte.IsZero() {
			s.m.ttfb.With(endpoint, t.codec, t.res, t.cache).Observe(t.firstByte.Sub(t.start).Seconds())
		}
		s.reqLog.Add(obs.RequestRecord{
			ID: id, Time: obs.StartTime(t.start), Method: r.Method, Path: r.URL.RequestURI(),
			Status: t.status, Bytes: t.written, Cache: t.cache,
			DurationMS: float64(dur) / float64(time.Millisecond), Phases: t.trace.Phases(),
		})
		s.log.Debug("request done", "id", id, "method", r.Method, "uri", r.URL.RequestURI(),
			"status", t.status, "bytes", t.written, "cache", t.cache, "dur", dur.Round(time.Microsecond))
	})
}

// limit applies the per-client token bucket, keyed by peer IP.
func (s *Server) limit(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.limiter != nil {
			host, _, err := net.SplitHostPort(r.RemoteAddr)
			if err != nil {
				host = r.RemoteAddr
			}
			if !s.limiter.allow(host, time.Now()) {
				s.m.rateLimited.Inc()
				w.Header().Set("Retry-After", strconv.Itoa(s.limiter.retryAfterSeconds()))
				http.Error(w, "rate limit exceeded", http.StatusTooManyRequests)
				return
			}
		}
		next(w, r)
	}
}

// intParam parses an integer query parameter with a default and bounds.
func intParam(q url.Values, name string, def, lo, hi int) (int, error) {
	vs, ok := q[name]
	if !ok || len(vs) == 0 || vs[0] == "" {
		return def, nil
	}
	v, err := strconv.Atoi(vs[0])
	if err != nil {
		return 0, fmt.Errorf("%s: not an integer: %q", name, vs[0])
	}
	if v < lo || v > hi {
		return 0, fmt.Errorf("%s: %d out of range [%d,%d]", name, v, lo, hi)
	}
	return v, nil
}

// boolParam parses a boolean query parameter with strconv.ParseBool's
// strictness: absent/empty is false, garbage is an error — matching
// intParam, where a malformed value is a 400 rather than a silent
// default.
func boolParam(q url.Values, name string) (bool, error) {
	v := q.Get(name)
	if v == "" {
		return false, nil
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		return false, fmt.Errorf("%s: not a boolean: %q", name, v)
	}
	return b, nil
}

// flightGroup deduplicates concurrent cold fills of one cache key: the
// first request for a key becomes the leader and encodes; followers
// wait on the leader's done channel and then serve the entry its fill
// committed. A leader that aborts without committing closes the channel
// anyway, and followers race to become the next leader.
type flightGroup struct {
	mu sync.Mutex
	m  map[gopcache.Key]chan struct{} // guarded by mu
}

// begin registers the caller as leader for key (second return true) or
// hands back the in-flight leader's done channel.
func (g *flightGroup) begin(key gopcache.Key) (chan struct{}, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if ch, ok := g.m[key]; ok {
		return ch, false
	}
	if g.m == nil {
		g.m = make(map[gopcache.Key]chan struct{})
	}
	ch := make(chan struct{})
	g.m[key] = ch
	return ch, true
}

// finish releases the leadership for key and wakes every follower.
func (g *flightGroup) finish(key gopcache.Key) {
	g.mu.Lock()
	ch := g.m[key]
	delete(g.m, key)
	g.mu.Unlock()
	close(ch)
}

// transcodeRequest is a validated /transcode query.
type transcodeRequest struct {
	codec  hdvideobench.Codec
	seq    hdvideobench.Sequence
	frames int
	index  bool // GET: serve the GOP index instead of the stream
	opts   hdvideobench.EncoderOptions

	// Ladder mode (GET only): ladder holds the validated rung list when
	// the ladder= parameter is present, rung the index of the rendition
	// selected with rung= (-1 = none: serve the JSON manifest), and
	// ladderSpec the canonical "name@kbps,..." form shared by the flight
	// key, so concurrent requests for different rungs of the same ladder
	// coalesce onto one EncodeLadder run.
	ladder     []hdvideobench.LadderRung
	rung       int
	ladderSpec string
}

// cacheKey maps the request onto the GOP cache's key space: every field
// that shapes the coded bytes, and nothing else (workers and window are
// byte-identical by the pipeline's determinism guarantee).
func (req transcodeRequest) cacheKey() gopcache.Key {
	// Only H.264 has a selectable entropy coder; keying it for the other
	// codecs would give byte-identical streams two cache entries.
	entropy := ""
	if req.codec == hdvideobench.H264 {
		entropy = "cabac"
		if req.opts.Entropy == hdvideobench.EntropyVLC {
			entropy = "vlc"
		}
	}
	return gopcache.Key{
		Codec:   req.codec.String(),
		Seq:     req.seq.String(),
		Width:   req.opts.Width,
		Height:  req.opts.Height,
		Frames:  req.frames,
		Q:       req.opts.Q,
		GOP:     req.opts.IntraPeriod,
		Slices:  req.opts.Slices,
		Entropy: entropy,
		SIMD:    req.opts.SIMD,
		Kbps:    req.opts.Kbps,
	}
}

// rungKey maps one ladder rendition onto the cache key space: the base
// key's Width/Height stay the mezzanine's (the rung's bytes depend on
// the analysis rung encoded at that geometry), and the rung's own name
// and bitrate distinguish it. Sibling rungs deliberately do not appear:
// a rung's bytes depend only on the top rung's motion field, which the
// ladder composition cannot change.
func (req transcodeRequest) rungKey(i int) gopcache.Key {
	k := req.cacheKey()
	k.Rung = req.ladder[i].Name
	k.Kbps = req.ladder[i].Kbps
	return k
}

// ladderFlightKey is the singleflight key of the whole ladder run: one
// EncodeLadder call fills every rung's entry, so concurrent requests
// for any rung of the same ladder coalesce onto it.
func (req transcodeRequest) ladderFlightKey() gopcache.Key {
	k := req.cacheKey()
	k.Rung = "ladder:" + req.ladderSpec
	return k
}

// parseCoding parses the coding options shared by GET and POST. width
// and height of 0 mean "copy the input" (POST); GET overrides the
// defaults before calling.
func (s *Server) parseCoding(q url.Values, defWidth, defHeight int) (hdvideobench.Codec, hdvideobench.EncoderOptions, error) {
	var opts hdvideobench.EncoderOptions
	codecName := q.Get("codec")
	if codecName == "" {
		codecName = "h264"
	}
	c, err := hdvideobench.ParseCodec(codecName)
	if err != nil {
		return c, opts, err
	}

	width, err := intParam(q, "width", defWidth, 16, 4096)
	if err != nil {
		return c, opts, err
	}
	height, err := intParam(q, "height", defHeight, 16, 4096)
	if err != nil {
		return c, opts, err
	}
	if width != 0 && height != 0 {
		if err := hdvideobench.ValidateResolution(width, height); err != nil {
			return c, opts, err
		}
	} else if width%16 != 0 || height%16 != 0 {
		// POST may override just one dimension (the other copies the
		// input's), so each is validated on its own here.
		return c, opts, fmt.Errorf("width/height must be multiples of 16, got %dx%d", width, height)
	}
	qp, err := intParam(q, "q", 5, 1, 31)
	if err != nil {
		return c, opts, err
	}
	// kbps switches the stream to rate-targeted coding; q then only
	// seeds the controller (kbps takes precedence, q keeps its default
	// so the two parameters compose instead of conflicting).
	kbps, err := intParam(q, "kbps", 0, 0, 1_000_000)
	if err != nil {
		return c, opts, err
	}
	// The gop ceiling matches the streaming decoder's fallback
	// threshold, so every stream this server emits stays fully
	// GOP-parallel on the client's decode side.
	gop, err := intParam(q, "gop", 8, 1, 255)
	if err != nil {
		return c, opts, err
	}
	// workers clamps to the server's budget rather than rejecting, so
	// one client request works against any replica's CPU budget.
	workers, err := intParam(q, "workers", s.cfg.Workers, 1, 4096)
	if err != nil {
		return c, opts, err
	}
	workers = min(workers, s.cfg.Workers)
	// slices clamps to the request's worker budget: more slices than
	// workers would pay the compression cost without buying speedup.
	slices, err := intParam(q, "slices", 1, 1, 255)
	if err != nil {
		return c, opts, err
	}
	slices = min(slices, workers)
	simd, err := boolParam(q, "simd")
	if err != nil {
		return c, opts, err
	}
	vlc, err := boolParam(q, "vlc")
	if err != nil {
		return c, opts, err
	}
	// wavefront stays out of the cache key: like workers, it is a pure
	// scheduling knob — the coded bytes are identical on or off.
	wavefront, err := boolParam(q, "wavefront")
	if err != nil {
		return c, opts, err
	}

	opts = hdvideobench.EncoderOptions{
		Width: width, Height: height, Q: qp, Kbps: kbps,
		IntraPeriod: gop,
		Slices:      slices,
		Wavefront:   wavefront,
		Workers:     workers,
		Window:      s.cfg.Window,
		SIMD:        simd,
		Collector:   s.col, // pipeline series land on this server's registry
	}
	if vlc {
		opts.Entropy = hdvideobench.EntropyVLC
	}
	return c, opts, nil
}

func (s *Server) parseTranscode(r *http.Request) (transcodeRequest, error) {
	q := r.URL.Query()
	var req transcodeRequest
	var err error

	// res= names a benchmark resolution (576p25 ... 2160p25, plus
	// aliases like 1080p/4k); it sets the width/height defaults, which
	// explicit width=/height= parameters still override.
	defWidth, defHeight := 1280, 720
	if name := q.Get("res"); name != "" {
		res, err := hdvideobench.ResolutionByName(name)
		if err != nil {
			return req, err
		}
		defWidth, defHeight = res.Width, res.Height
	}
	if req.codec, req.opts, err = s.parseCoding(q, defWidth, defHeight); err != nil {
		return req, err
	}
	seqName := q.Get("seq")
	if seqName == "" {
		seqName = "blue_sky"
	}
	if req.seq, err = hdvideobench.ParseSequence(seqName); err != nil {
		return req, err
	}
	if req.frames, err = intParam(q, "frames", min(250, s.cfg.MaxFrames), 1, s.cfg.MaxFrames); err != nil {
		return req, err
	}
	if req.index, err = boolParam(q, "index"); err != nil {
		return req, err
	}
	req.rung = -1
	if spec := q.Get("ladder"); spec != "" {
		// The rung list validates against the request's mezzanine: unknown
		// names, duplicates, and rungs exceeding the mezzanine are 400s.
		req.ladder, err = hdvideobench.ParseLadder(spec, req.opts.Width, req.opts.Height)
		if err != nil {
			return req, err
		}
		// A bare kbps= is the default budget for rungs without their own
		// @kbps, mirroring hdvbench -ladder -kbps.
		if req.opts.Kbps > 0 {
			for i := range req.ladder {
				if req.ladder[i].Kbps == 0 {
					req.ladder[i].Kbps = req.opts.Kbps
				}
			}
		}
		var parts []string
		for _, lr := range req.ladder {
			p := lr.Name
			if lr.Kbps > 0 {
				p += "@" + strconv.Itoa(lr.Kbps)
			}
			parts = append(parts, p)
		}
		req.ladderSpec = strings.Join(parts, ",")
		if req.index {
			return req, fmt.Errorf("index is not supported with ladder")
		}
		// Every rung is held in memory as packets before serving starts,
		// so the ladder path caps frames below the streaming paths' limit.
		if req.frames > maxLadderFrames {
			return req, fmt.Errorf("ladder is limited to %d frames, got %d", maxLadderFrames, req.frames)
		}
		if name := q.Get("rung"); name != "" {
			res, err := hdvideobench.ResolutionByName(name)
			if err != nil {
				return req, err
			}
			for i, lr := range req.ladder {
				if lr.Name == res.Name {
					req.rung = i
				}
			}
			if req.rung < 0 {
				return req, fmt.Errorf("rung %q is not in ladder %q", name, spec)
			}
		}
	} else if q.Get("rung") != "" {
		return req, fmt.Errorf("rung requires ladder")
	}
	return req, nil
}

// acquire takes an encoding slot or answers 503: hand back pressure
// instead of queueing unbounded work — the client can retry against
// another replica.
func (s *Server) acquire(w http.ResponseWriter) bool {
	select {
	case s.sem <- struct{}{}:
		s.m.active.Add(1)
		return true
	default:
		s.m.capacity503.Inc()
		w.Header().Set("Retry-After", "1")
		http.Error(w, "transcoder at capacity", http.StatusServiceUnavailable)
		return false
	}
}

func (s *Server) release() {
	s.m.active.Add(-1)
	<-s.sem
}

// frameFeed yields the request's generated frames, honoring the request
// context so a dropped client aborts the encode from the input side.
func frameFeed(ctx context.Context, req transcodeRequest) func() (*hdvideobench.Frame, error) {
	gen := hdvideobench.NewSequence(req.seq, req.opts.Width, req.opts.Height)
	i := 0
	return func() (*hdvideobench.Frame, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if i >= req.frames {
			return nil, io.EOF
		}
		f := gen.Frame(i)
		i++
		return f, nil
	}
}

func (s *Server) handleTranscode(w http.ResponseWriter, r *http.Request) {
	s.m.getReqs.Inc()
	t := track(w)
	req, err := s.parseTranscode(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	t.setStream(req.codec, req.opts)
	if req.index && s.cache == nil {
		http.Error(w, "index requires caching (-cache-dir)", http.StatusBadRequest)
		return
	}
	if len(req.ladder) > 0 {
		if req.rung < 0 {
			s.writeLadderManifest(w, r, req)
			return
		}
		s.handleLadderRung(w, r, req)
		return
	}

	var key gopcache.Key
	if s.cache != nil {
		key = req.cacheKey()
		sp := t.trace.Start("cache")
		ent, ok := s.cache.Get(key)
		sp.End()
		if ok {
			t.cache = "hit"
			s.serveCached(w, r, req, ent, "hit")
			return
		}
		t.cache = "miss"
		if ent, ok := s.waitFlight(w, r, key, key); ok {
			if ent != nil {
				s.serveCached(w, r, req, ent, "shared")
			}
			return
		}
		defer s.flights.finish(key)
	}

	if !s.acquire(w) {
		return
	}
	defer s.release()

	// Seek and index need the complete entry: encode it into the cache
	// first, then serve the requested span off disk.
	if s.cache != nil && (req.index || r.Header.Get("Range") != "") {
		ent, ok := s.fillCache(w, r, req, key)
		if !ok {
			return
		}
		s.serveCached(w, r, req, ent, "miss")
		return
	}
	s.streamCold(w, r, req, key)
}

// serveCached serves a request straight from an opened cache entry:
// the index as JSON, or the container bytes with standard Range
// support. state names how the entry got here ("hit" or "miss").
func (s *Server) serveCached(w http.ResponseWriter, r *http.Request, req transcodeRequest, ent *gopcache.Entry, state string) {
	defer ent.Close()
	t := track(w)
	if req.index {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-HDVB-Cache", state)
		w.Header().Set("Server-Timing", t.serverTiming())
		writeIndexJSON(w, ent.Index)
		return
	}
	h := w.Header()
	h.Set("Content-Type", StreamContentType)
	h.Set("X-HDVB-Codec", req.codec.String())
	h.Set("X-HDVB-Frames", strconv.Itoa(req.frames))
	h.Set("X-HDVB-Cache", state)
	// The phases completed so far: the cache lookup on a hit, plus the
	// full encode/fill on a ranged or indexed miss.
	h.Set("Server-Timing", t.serverTiming())
	// ServeContent handles Range/If-Range/HEAD and sets Content-Length
	// and Accept-Ranges; the body is the exact byte stream a cold
	// encode produces, so hits are byte-identical to misses.
	sp := t.trace.Start("write")
	http.ServeContent(w, r, "", ent.ModTime, ent.Body())
	sp.End()
	s.m.served.Inc()
}

type indexJSON struct {
	Size int64          `json:"size"`
	GOPs []indexGOPJSON `json:"gops"`
}

type indexGOPJSON struct {
	Offset int64 `json:"offset"`
	Frame  int   `json:"frame"`
}

func writeIndexJSON(w io.Writer, idx hdvideobench.GOPIndex) {
	out := indexJSON{Size: idx.Size, GOPs: make([]indexGOPJSON, len(idx.Entries))}
	for i, e := range idx.Entries {
		out.GOPs[i] = indexGOPJSON{Offset: e.Offset, Frame: e.Frame}
	}
	json.NewEncoder(w).Encode(out)
}

// fillCache encodes the request into the cache without streaming to the
// client (the ranged/indexed miss path). On failure it writes the error
// response and reports !ok.
func (s *Server) fillCache(w http.ResponseWriter, r *http.Request, req transcodeRequest, key gopcache.Key) (*gopcache.Entry, bool) {
	t := track(w)
	fill, err := s.cache.NewFill(key)
	if err != nil {
		http.Error(w, "cache unavailable", http.StatusInternalServerError)
		return nil, false
	}
	ctx := r.Context()
	start := time.Now()
	fw := &errTrackWriter{w: fill}
	sp := t.trace.Start("enc")
	stats, idx, err := s.encode(fw, req.codec, req.opts, req.frames, frameFeed(ctx, req), true)
	encDur := sp.End()
	if err != nil {
		fill.Abort()
		if ctx.Err() != nil {
			return nil, false // client gone; nobody is listening
		}
		switch {
		case fw.err != nil:
			// The request was fine; the cache disk was not. A zero-byte
			// fill failure must not masquerade as a client error.
			http.Error(w, "cache write failed", http.StatusInternalServerError)
		case stats.Bytes == 0:
			http.Error(w, err.Error(), http.StatusBadRequest)
		default:
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return nil, false
	}
	s.m.encodes.Inc()
	s.m.encSeconds.Add(encDur.Seconds())
	s.m.coldEnc.With("transcode", t.codec, t.res, t.cache).Observe(encDur.Seconds())
	csp := t.trace.Start("commit")
	ent, err := fill.Commit(idx)
	csp.End()
	if err != nil {
		http.Error(w, "cache commit failed", http.StatusInternalServerError)
		return nil, false
	}
	// Fill time spans encode start through commit: the window during
	// which a second request for the same key would find no entry.
	s.m.cacheFill.With("transcode", t.codec, t.res, t.cache).Observe(time.Since(start).Seconds())
	return ent, true
}

// streamCold encodes and streams the request with chunked transfer,
// teeing the byte stream into a cache fill when caching is on. Stream
// headers are deferred to the first body byte so pre-stream failures
// (nothing on the wire yet) produce clean, headerless error statuses.
func (s *Server) streamCold(w http.ResponseWriter, r *http.Request, req transcodeRequest, key gopcache.Key) {
	t := track(w)
	hw := &deferredHeaderWriter{rw: w, set: func(h http.Header) {
		h.Set("Content-Type", StreamContentType)
		h.Set("X-HDVB-Codec", req.codec.String())
		h.Set("X-HDVB-Frames", strconv.Itoa(req.frames))
		if s.cache != nil {
			h.Set("X-HDVB-Cache", "miss")
		}
		// Only the phases finished before the first byte (the cache
		// lookup) can go in the header; the encode phases arrive in the
		// Server-Timing trailer once the chunked stream completes.
		h.Set("Server-Timing", t.serverTiming())
	}}
	var sink flushWriter = hw
	var tee *cacheTeeWriter
	if s.cache != nil {
		// Cache trouble must never fail serving: no fill, no tee.
		if fill, err := s.cache.NewFill(key); err == nil {
			tee = &cacheTeeWriter{dst: hw, fill: fill}
			sink = tee
		}
	}

	ctx := r.Context()
	start := time.Now()
	// The GOP index only exists to be committed with the fill; without a
	// tee the plain per-packet drain keeps first-byte latency at one
	// packet, not one GOP.
	sp := t.trace.Start("enc")
	stats, idx, err := s.encode(sink, req.codec, req.opts, req.frames, frameFeed(ctx, req), tee != nil)
	encDur := sp.End()
	abortTee := func() {
		if tee != nil {
			tee.fill.Abort()
		}
	}
	switch {
	case err == nil:
		s.m.served.Inc()
		s.m.encodes.Inc()
		s.m.encSeconds.Add(encDur.Seconds())
		s.m.coldEnc.With("transcode", t.codec, t.res, t.cache).Observe(encDur.Seconds())
		if tee != nil {
			if tee.teeErr != nil {
				tee.fill.Abort()
			} else {
				csp := t.trace.Start("commit")
				ent, err := tee.fill.Commit(idx)
				csp.End()
				if err != nil {
					s.log.Warn("cache commit failed", "id", t.id, "err", err)
				} else {
					ent.Close() // already streamed; only fillCache serves off the commit
					s.m.cacheFill.With("transcode", t.codec, t.res, t.cache).Observe(time.Since(start).Seconds())
				}
			}
		}
		if hw.wrote {
			// The response is chunked (no Content-Length), so the encode
			// phases can still reach the client as a trailer.
			w.Header().Set(http.TrailerPrefix+"Server-Timing", t.serverTiming())
		}
		s.log.Info("stream served",
			"id", t.id, "codec", req.codec.String(), "seq", req.seq.String(),
			"res", t.res, "frames", req.frames, "workers", req.opts.Workers,
			"bytes", stats.Bytes, "dur", time.Since(start).Round(time.Millisecond))
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) || ctx.Err() != nil:
		abortTee()
		s.log.Debug("client gone", "id", t.id, "frames", stats.Frames, "bytes", stats.Bytes)
	case !hw.wrote:
		// Nothing on the wire yet: the error can still become a status,
		// and since the stream headers are deferred, the 400 carries
		// none of them.
		abortTee()
		http.Error(w, err.Error(), http.StatusBadRequest)
	default:
		// Mid-stream failure; the truncated body is the only signal.
		abortTee()
		s.log.Warn("stream failed mid-flight", "id", t.id, "frames", stats.Frames, "err", err)
	}
}

// waitFlight applies singleflight to a cold fill. If another request is
// already encoding flightKey, it blocks until that fill commits and
// hands back the freshly cached entry for cacheKey; (nil, true) means
// the client vanished while waiting. (nil, false) means the caller is
// now the leader and must s.flights.finish(flightKey) when done.
func (s *Server) waitFlight(w http.ResponseWriter, r *http.Request, flightKey, cacheKey gopcache.Key) (*gopcache.Entry, bool) {
	t := track(w)
	for {
		ch, leader := s.flights.begin(flightKey)
		if leader {
			return nil, false
		}
		sp := t.trace.Start("flight")
		select {
		case <-ch:
			sp.End()
		case <-r.Context().Done():
			sp.End()
			return nil, true
		}
		if ent, ok := s.cache.Get(cacheKey); ok {
			s.m.sfShared.Inc()
			t.cache = "shared"
			return ent, true
		}
		// The leader aborted without committing; race for leadership.
	}
}

// ladderManifestJSON is the GET /transcode?ladder= response when no
// rung is selected: the validated rendition list, each with the URL
// that serves it.
type ladderManifestJSON struct {
	Codec     string           `json:"codec"`
	Seq       string           `json:"seq"`
	Frames    int              `json:"frames"`
	Mezzanine string           `json:"mezzanine"`
	Rungs     []ladderRungJSON `json:"rungs"`
}

type ladderRungJSON struct {
	Name   string `json:"name"`
	Width  int    `json:"width"`
	Height int    `json:"height"`
	Kbps   int    `json:"kbps,omitempty"`
	URL    string `json:"url"`
}

func (s *Server) writeLadderManifest(w http.ResponseWriter, r *http.Request, req transcodeRequest) {
	out := ladderManifestJSON{
		Codec:     req.codec.String(),
		Seq:       req.seq.String(),
		Frames:    req.frames,
		Mezzanine: strconv.Itoa(req.opts.Width) + "x" + strconv.Itoa(req.opts.Height),
	}
	u := *r.URL
	for _, lr := range req.ladder {
		q := u.Query()
		q.Set("rung", lr.Name)
		u.RawQuery = q.Encode()
		out.Rungs = append(out.Rungs, ladderRungJSON{
			Name: lr.Name, Width: lr.Width, Height: lr.Height, Kbps: lr.Kbps,
			URL: u.RequestURI(),
		})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// handleLadderRung serves one rendition of a ladder request. Cache hits
// serve the rung's entry directly; a miss runs one EncodeLadder pass —
// coalesced across concurrent requests for any rung of the same ladder
// by the flight group — and commits every rung it produced, so the
// sibling rungs of the first request are hits for the rest of the
// playlist.
func (s *Server) handleLadderRung(w http.ResponseWriter, r *http.Request, req transcodeRequest) {
	t := track(w)
	rung := req.ladder[req.rung]
	t.res = strconv.Itoa(rung.Width) + "x" + strconv.Itoa(rung.Height)
	w.Header().Set("X-HDVB-Rung", rung.Name)

	var key gopcache.Key
	if s.cache != nil {
		key = req.rungKey(req.rung)
		sp := t.trace.Start("cache")
		ent, ok := s.cache.Get(key)
		sp.End()
		if ok {
			t.cache = "hit"
			s.serveCached(w, r, req, ent, "hit")
			return
		}
		t.cache = "miss"
		flightKey := req.ladderFlightKey()
		if ent, ok := s.waitFlight(w, r, flightKey, key); ok {
			if ent != nil {
				s.serveCached(w, r, req, ent, "shared")
			}
			return
		}
		defer s.flights.finish(flightKey)
	}

	if !s.acquire(w) {
		return
	}
	defer s.release()

	ctx := r.Context()
	start := time.Now()
	gsp := t.trace.Start("gen")
	frames := make([]*hdvideobench.Frame, req.frames)
	gen := hdvideobench.NewSequence(req.seq, req.opts.Width, req.opts.Height)
	for i := range frames {
		frames[i] = gen.Frame(i)
	}
	gsp.End()
	sp := t.trace.Start("enc")
	rends, err := s.ladder(req.codec, req.opts, frames, req.ladder)
	encDur := sp.End()
	if err != nil {
		if ctx.Err() != nil {
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.m.encodes.Inc()
	s.m.encSeconds.Add(encDur.Seconds())
	s.m.coldEnc.With("transcode", t.codec, t.res, t.cache).Observe(encDur.Seconds())

	// Commit every rung; cache trouble downgrades to serving the
	// requested rung from memory, never to failing the request.
	var serveEnt *gopcache.Entry
	if s.cache != nil {
		csp := t.trace.Start("commit")
		for i, rend := range rends {
			fill, err := s.cache.NewFill(req.rungKey(i))
			if err != nil {
				continue
			}
			cw := &countWriter{w: fill}
			if err := hdvideobench.WriteStream(cw, rend.Header, rend.Packets); err != nil {
				fill.Abort()
				continue
			}
			ent, err := fill.Commit(hdvideobench.GOPIndex{Size: cw.n})
			if err != nil {
				continue
			}
			if i == req.rung {
				serveEnt = ent
			} else {
				ent.Close()
			}
		}
		csp.End()
		s.m.cacheFill.With("transcode", t.codec, t.res, t.cache).Observe(time.Since(start).Seconds())
	}
	if serveEnt != nil {
		s.serveCached(w, r, req, serveEnt, "miss")
	} else {
		h := w.Header()
		h.Set("Content-Type", StreamContentType)
		h.Set("X-HDVB-Codec", req.codec.String())
		h.Set("X-HDVB-Frames", strconv.Itoa(req.frames))
		h.Set("Server-Timing", t.serverTiming())
		wsp := t.trace.Start("write")
		werr := hdvideobench.WriteStream(w, rends[req.rung].Header, rends[req.rung].Packets)
		wsp.End()
		if werr != nil {
			s.log.Warn("ladder stream failed mid-flight", "id", t.id, "rung", rung.Name, "err", werr)
			return
		}
		s.m.served.Inc()
	}
	s.log.Info("ladder rung served",
		"id", t.id, "codec", req.codec.String(), "seq", req.seq.String(),
		"ladder", req.ladderSpec, "rung", rung.Name, "frames", req.frames,
		"dur", time.Since(start).Round(time.Millisecond))
}

// countWriter counts bytes through to w (the cache fill needs the body
// size for the index trailer's Size field).
type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func (s *Server) handleTranscodePost(w http.ResponseWriter, r *http.Request) {
	s.m.postReqs.Inc()
	t := track(w)
	q := r.URL.Query()
	codec, opts, err := s.parseCoding(q, 0, 0) // width/height 0: copy the input's
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	t.setStream(codec, opts)
	if !s.acquire(w) {
		return
	}
	defer s.release()

	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxUpload)
	hw := &deferredHeaderWriter{rw: w, set: func(h http.Header) {
		h.Set("Content-Type", StreamContentType)
		h.Set("X-HDVB-Codec", codec.String())
		h.Set("Server-Timing", t.serverTiming())
	}}
	ctx := r.Context()
	start := time.Now()
	sp := t.trace.Start("enc")
	stats, err := hdvideobench.Transcode(body, hw, codec, opts)
	encDur := sp.End()
	switch {
	case err == nil:
		s.m.transcoded.Inc()
		s.m.encodes.Inc()
		s.m.encSeconds.Add(encDur.Seconds())
		s.m.coldEnc.With("transcode", t.codec, t.res, t.cache).Observe(encDur.Seconds())
		if hw.wrote {
			w.Header().Set(http.TrailerPrefix+"Server-Timing", t.serverTiming())
		}
		s.log.Info("upload transcoded",
			"id", t.id, "in", stats.In.String(), "out", stats.Out.String(),
			"frames", stats.Frames, "bytes_in", stats.BytesIn, "bytes_out", stats.BytesOut,
			"dur", time.Since(start).Round(time.Millisecond))
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) || ctx.Err() != nil:
		s.log.Debug("transcode client gone", "id", t.id, "frames", stats.Frames)
	case !hw.wrote:
		// A bad upload (wrong magic, unsupported version, bad config)
		// fails before the output container opens.
		http.Error(w, err.Error(), http.StatusBadRequest)
	default:
		s.log.Warn("transcode failed mid-flight", "id", t.id, "frames", stats.Frames, "err", err)
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WriteText(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Status   string `json:"status"`
		Active   int64  `json:"active"`
		Capacity int    `json:"capacity"`
		Served   int64  `json:"served"`
	}{
		Status:   "ok",
		Active:   int64(s.m.active.Value()),
		Capacity: s.cfg.MaxConcurrent,
		Served:   int64(s.m.served.Value()),
	})
}

// flushWriter is what the streaming paths need from their sink: the
// container's StreamWriter flush-through triggers on the error-less
// Flush flavor.
type flushWriter interface {
	io.Writer
	Flush()
}

// deferredHeaderWriter postpones the stream headers to the first body
// byte: a request that fails before producing any output (bad encoder
// config, cache fill refusal) can then answer with a clean error status
// instead of a 400 that carries X-HDVB-* stream headers.
type deferredHeaderWriter struct {
	rw    http.ResponseWriter
	set   func(http.Header)
	wrote bool
}

func (d *deferredHeaderWriter) Write(p []byte) (int, error) {
	if !d.wrote {
		d.wrote = true
		if d.set != nil {
			d.set(d.rw.Header())
		}
	}
	return d.rw.Write(p)
}

func (d *deferredHeaderWriter) Flush() {
	if f, ok := d.rw.(http.Flusher); ok {
		f.Flush()
	}
}

// errTrackWriter remembers the first write failure, letting fillCache
// tell a cache-disk fault (500) apart from a request the encoder
// rejected before producing bytes (400).
type errTrackWriter struct {
	w   io.Writer
	err error
}

func (e *errTrackWriter) Write(p []byte) (int, error) {
	n, err := e.w.Write(p)
	if err != nil && e.err == nil {
		e.err = err
	}
	return n, err
}

// cacheTeeWriter mirrors the response byte stream into a cache fill. A
// fill failure (disk full) quietly stops the tee — caching is an
// optimization, never a reason to fail the client's stream — and the
// fill is aborted instead of committed.
type cacheTeeWriter struct {
	dst    *deferredHeaderWriter
	fill   *gopcache.Fill
	teeErr error
}

func (t *cacheTeeWriter) Write(p []byte) (int, error) {
	n, err := t.dst.Write(p)
	if n > 0 && t.teeErr == nil {
		if _, werr := t.fill.Write(p[:n]); werr != nil {
			t.teeErr = werr
		}
	}
	return n, err
}

func (t *cacheTeeWriter) Flush() { t.dst.Flush() }
