package serve

import (
	"sync"
	"time"
)

// rateLimiter is a per-client token-bucket limiter: each client key
// (the peer IP) owns a bucket holding up to burst tokens that refills
// at rate tokens per second; a request spends one token or is turned
// away. Buckets are created on first sight. Memory stays bounded in two
// tiers: past pruneAbove clients, idle (fully refilled) buckets are
// swept — lossless, since a full bucket is indistinguishable from a
// fresh one — at most once per pruneEvery, so a storm of new IPs cannot
// turn every allow into an O(n) scan under the mutex; and at hardCap
// the map sheds arbitrary buckets, trading a reset burst for a few
// clients against unbounded growth.
type rateLimiter struct {
	rate  float64 // tokens per second
	burst float64

	mu        sync.Mutex
	buckets   map[string]*bucket // guarded by mu
	lastPrune time.Time          // guarded by mu
}

type bucket struct {
	tokens float64
	last   time.Time
}

const (
	// pruneAbove is the client count past which idle buckets are swept.
	pruneAbove = 16384
	// pruneEvery throttles full-map sweeps so new-client arrivals
	// amortize the scan instead of each paying it.
	pruneEvery = time.Second
	// hardCap is the absolute bucket ceiling: beyond it, arbitrary
	// buckets are dropped to admit new clients.
	hardCap = 4 * pruneAbove
)

// newRateLimiter builds a limiter; rate <= 0 disables limiting (callers
// hold a nil limiter instead, but the guard keeps misuse safe).
func newRateLimiter(rate float64, burst int) *rateLimiter {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	return &rateLimiter{rate: rate, burst: float64(burst), buckets: make(map[string]*bucket)}
}

// allow reports whether the client identified by key may proceed at
// time now, spending a token if so.
func (l *rateLimiter) allow(key string, now time.Time) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.buckets[key]
	if !ok {
		if len(l.buckets) >= pruneAbove && now.Sub(l.lastPrune) >= pruneEvery {
			l.lastPrune = now
			l.pruneLocked(now)
		}
		for k := range l.buckets { // hard ceiling: shed an arbitrary bucket
			if len(l.buckets) < hardCap {
				break
			}
			delete(l.buckets, k)
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	} else {
		b.tokens = min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate)
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// retryAfterSeconds suggests a Retry-After for a rejected client: the
// time one token takes to accrue, at least a second.
func (l *rateLimiter) retryAfterSeconds() int {
	s := int(1 / l.rate)
	if s < 1 {
		s = 1
	}
	return s
}

// pruneLocked drops buckets that have been idle long enough to refill
// completely — indistinguishable from fresh ones.
//
//hdvlint:locked mu
func (l *rateLimiter) pruneLocked(now time.Time) {
	idle := time.Duration(l.burst / l.rate * float64(time.Second))
	for k, b := range l.buckets {
		if now.Sub(b.last) >= idle {
			delete(l.buckets, k)
		}
	}
}
