package serve

import (
	"net/http"
	"net/http/pprof"
)

// DebugRoutes hands back the private diagnostics mux: the Go pprof
// endpoints and the /debug/requests ring of recently completed
// requests. It is deliberately a separate handler from Routes — the
// profiling surface exposes heap contents and CPU samples, so
// cmd/hdvserve binds it only to the operator-chosen -debug-addr
// listener (usually loopback) and never to the public one.
func (s *Server) DebugRoutes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("GET /debug/requests", s.reqLog)
	return mux
}
