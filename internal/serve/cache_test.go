// Tests for the serving-tier hardening layer: the disk-backed GOP
// cache (hit/miss equivalence, no-encoder-on-hit, Range/seek over the
// GOP index), POST /transcode, /metrics, per-client rate limiting, and
// the error-path header fixes.
package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"hdvideobench"
	"hdvideobench/internal/container"
)

func cachedServerConfig(t *testing.T) Config {
	t.Helper()
	return Config{
		Workers:       2,
		MaxConcurrent: 2,
		MaxFrames:     100,
		CacheDir:      t.TempDir(),
		CacheBytes:    1 << 30,
	}
}

// countEncodes wraps the server's encode hook with an invocation
// counter — the "factory call counter" that pins cache hits to zero
// encoder constructions.
func countEncodes(s *Server) *atomic.Int64 {
	var n atomic.Int64
	inner := s.encode
	s.encode = func(w io.Writer, c hdvideobench.Codec, opts hdvideobench.EncoderOptions,
		frames int, next func() (*hdvideobench.Frame, error), indexed bool) (hdvideobench.StreamStats, hdvideobench.GOPIndex, error) {
		n.Add(1)
		return inner(w, c, opts, frames, next, indexed)
	}
	return &n
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestCacheHitByteIdenticalWithoutEncoder is the acceptance pin: a
// repeated identical request is served from the disk cache
// byte-identical to the cold encode, without constructing an encoder,
// and /metrics reports the hit.
func TestCacheHitByteIdenticalWithoutEncoder(t *testing.T) {
	s, ts := testServer(t, cachedServerConfig(t))
	encodes := countEncodes(s)
	url := ts.URL + "/transcode?codec=mpeg2&width=96&height=80&frames=6&gop=3"

	cold, coldBody := get(t, url)
	if cold.StatusCode != http.StatusOK {
		t.Fatalf("cold status %d: %s", cold.StatusCode, coldBody)
	}
	if got := cold.Header.Get("X-HDVB-Cache"); got != "miss" {
		t.Fatalf("cold X-HDVB-Cache = %q, want miss", got)
	}
	if n := encodes.Load(); n != 1 {
		t.Fatalf("cold encode ran the encoder %d times, want 1", n)
	}

	hit, hitBody := get(t, url)
	if hit.StatusCode != http.StatusOK {
		t.Fatalf("hit status %d: %s", hit.StatusCode, hitBody)
	}
	if got := hit.Header.Get("X-HDVB-Cache"); got != "hit" {
		t.Fatalf("hit X-HDVB-Cache = %q, want hit", got)
	}
	if !bytes.Equal(hitBody, coldBody) {
		t.Fatalf("cache hit served %d bytes differing from the cold encode's %d", len(hitBody), len(coldBody))
	}
	if n := encodes.Load(); n != 1 {
		t.Fatalf("cache hit invoked the encoder (total runs %d, want 1)", n)
	}
	if got, want := hit.Header.Get("X-HDVB-Codec"), "MPEG-2"; got != want {
		t.Fatalf("hit X-HDVB-Codec = %q, want %q", got, want)
	}
	if hit.Header.Get("Accept-Ranges") != "bytes" {
		t.Fatal("cached response does not advertise Accept-Ranges: bytes")
	}

	// The hit must decode like the cold response.
	count := 0
	if _, _, err := hdvideobench.DecodeStream(bytes.NewReader(hitBody), false, 1, 0,
		func(*hdvideobench.Frame) error { count++; return nil }); err != nil {
		t.Fatalf("decoding cached response: %v", err)
	}
	if count != 6 {
		t.Fatalf("cached response decoded %d frames, want 6", count)
	}

	_, metrics := get(t, ts.URL+"/metrics")
	for _, want := range []string{
		"hdvserve_cache_hits_total 1",
		"hdvserve_cache_misses_total 1",
		"hdvserve_cache_entries 1",
		"hdvserve_encodes_total 1",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, metrics)
		}
	}
}

// TestServedStreamDigestMatchesLibrary extends the golden-digest
// equivalence harness (root equivalence_test.go) to the serving tier:
// the cold response, the cache-hit response, and the library's own
// EncodeStream output for the same options must all hash identically —
// the cache can never serve bytes the codec would not produce.
func TestServedStreamDigestMatchesLibrary(t *testing.T) {
	_, ts := testServer(t, cachedServerConfig(t))
	const w, h, frames, gop = 96, 80, 6, 3
	url := fmt.Sprintf("%s/transcode?codec=h264&seq=pedestrian_area&width=%d&height=%d&frames=%d&gop=%d",
		ts.URL, w, h, frames, gop)

	cold, coldBody := get(t, url)
	hit, hitBody := get(t, url)
	if cold.StatusCode != http.StatusOK || hit.StatusCode != http.StatusOK {
		t.Fatalf("statuses %d/%d", cold.StatusCode, hit.StatusCode)
	}

	var lib bytes.Buffer
	gen := hdvideobench.NewSequence(hdvideobench.PedestrianArea, w, h)
	i := 0
	if _, err := hdvideobench.EncodeStream(&lib, hdvideobench.H264,
		hdvideobench.EncoderOptions{Width: w, Height: h, IntraPeriod: gop, Workers: 2}, frames,
		func() (*hdvideobench.Frame, error) {
			if i >= frames {
				return nil, io.EOF
			}
			f := gen.Frame(i)
			i++
			return f, nil
		}); err != nil {
		t.Fatal(err)
	}

	dCold := sha256.Sum256(coldBody)
	dHit := sha256.Sum256(hitBody)
	dLib := sha256.Sum256(lib.Bytes())
	if dCold != dLib {
		t.Fatalf("cold response digest %x differs from library digest %x", dCold, dLib)
	}
	if dHit != dLib {
		t.Fatalf("cache-hit response digest %x differs from library digest %x", dHit, dLib)
	}
}

// TestRangeOverGOPIndex is the seek acceptance pin: a Range request for
// the byte span the entry's GOP index declares returns exactly that
// GOP-aligned span.
func TestRangeOverGOPIndex(t *testing.T) {
	_, ts := testServer(t, cachedServerConfig(t))
	url := ts.URL + "/transcode?codec=mpeg2&width=96&height=80&frames=9&gop=3"

	cold, full := get(t, url)
	if cold.StatusCode != http.StatusOK {
		t.Fatalf("cold status %d", cold.StatusCode)
	}

	idxResp, idxBody := get(t, url+"&index=1")
	if idxResp.StatusCode != http.StatusOK {
		t.Fatalf("index status %d: %s", idxResp.StatusCode, idxBody)
	}
	var idx struct {
		Size int64 `json:"size"`
		GOPs []struct {
			Offset int64 `json:"offset"`
			Frame  int   `json:"frame"`
		} `json:"gops"`
	}
	if err := json.Unmarshal(idxBody, &idx); err != nil {
		t.Fatalf("parsing index JSON: %v\n%s", err, idxBody)
	}
	if idx.Size != int64(len(full)) {
		t.Fatalf("index size %d, body is %d bytes", idx.Size, len(full))
	}
	if len(idx.GOPs) != 3 {
		t.Fatalf("index has %d GOPs, want 3 (9 frames / gop 3)", len(idx.GOPs))
	}
	for i, g := range idx.GOPs {
		if g.Frame != i*3 {
			t.Fatalf("GOP %d starts at frame %d, want %d", i, g.Frame, i*3)
		}
	}

	// Fetch the middle GOP's exact byte span.
	start, end := idx.GOPs[1].Offset, idx.GOPs[2].Offset-1
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Range", fmt.Sprintf("bytes=%d-%d", start, end))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	span, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("ranged status %d, want 206", resp.StatusCode)
	}
	wantCR := fmt.Sprintf("bytes %d-%d/%d", start, end, len(full))
	if got := resp.Header.Get("Content-Range"); got != wantCR {
		t.Fatalf("Content-Range = %q, want %q", got, wantCR)
	}
	if !bytes.Equal(span, full[start:end+1]) {
		t.Fatal("ranged body differs from the full body's GOP span")
	}
	// The span is GOP-aligned: it must open with an I packet header.
	if container.FrameType(span[0]) != container.FrameI {
		t.Fatalf("GOP span opens with frame type %q, want I", span[0])
	}
}

// TestRangeOnColdCache: a Range request that misses the cache encodes
// the entry first and then serves the requested span — one request,
// no priming needed.
func TestRangeOnColdCache(t *testing.T) {
	s, ts := testServer(t, cachedServerConfig(t))
	encodes := countEncodes(s)
	url := ts.URL + "/transcode?codec=mpeg2&width=96&height=80&frames=4&gop=2"

	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Range", "bytes=0-19") // the 20-byte container header
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	head, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("status %d, want 206", resp.StatusCode)
	}
	if len(head) != 20 || string(head[:4]) != "HDVB" {
		t.Fatalf("ranged head = %d bytes %q, want the 20-byte HDVB header", len(head), head[:min(len(head), 4)])
	}
	if n := encodes.Load(); n != 1 {
		t.Fatalf("cold ranged request ran the encoder %d times, want 1", n)
	}
	// And the fill is now a regular entry: a full GET is a hit.
	full, _ := get(t, url)
	if got := full.Header.Get("X-HDVB-Cache"); got != "hit" {
		t.Fatalf("follow-up X-HDVB-Cache = %q, want hit", got)
	}
}

// TestErrorResponsesCarryNoStreamHeaders pins the header-ordering fix:
// pre-stream failures (bad params, and an encode failing before any
// output) must answer without Content-Type: application/x-hdvideobench
// or any X-HDVB-* header.
func TestErrorResponsesCarryNoStreamHeaders(t *testing.T) {
	s, ts := testServer(t, Config{Workers: 2, MaxConcurrent: 2, MaxFrames: 100})
	assertClean := func(resp *http.Response, wantStatus int) {
		t.Helper()
		if resp.StatusCode != wantStatus {
			t.Fatalf("status %d, want %d", resp.StatusCode, wantStatus)
		}
		for name := range resp.Header {
			if strings.HasPrefix(name, "X-Hdvb-") {
				t.Fatalf("error response carries stream header %s", name)
			}
		}
		if ct := resp.Header.Get("Content-Type"); ct == StreamContentType {
			t.Fatalf("error response carries stream Content-Type %q", ct)
		}
	}

	resp, _ := get(t, ts.URL+"/transcode?codec=vp9&width=96&height=80&frames=2")
	assertClean(resp, http.StatusBadRequest)

	// A pre-stream encode failure: the hook dies before the first byte.
	s.encode = func(io.Writer, hdvideobench.Codec, hdvideobench.EncoderOptions,
		int, func() (*hdvideobench.Frame, error), bool) (hdvideobench.StreamStats, hdvideobench.GOPIndex, error) {
		return hdvideobench.StreamStats{}, hdvideobench.GOPIndex{}, errors.New("encoder construction failed")
	}
	resp, body := get(t, ts.URL+"/transcode?width=96&height=80&frames=2&gop=2")
	assertClean(resp, http.StatusBadRequest)
	if !strings.Contains(string(body), "encoder construction failed") {
		t.Fatalf("400 body %q does not surface the failure", body)
	}
}

// TestBoolParamsStrict pins the ParseBool fix: malformed booleans are
// 400s, not silently false, and every ParseBool spelling is accepted.
func TestBoolParamsStrict(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 2, MaxConcurrent: 2, MaxFrames: 100})
	base := ts.URL + "/transcode?width=96&height=80&frames=2&gop=2"

	for _, bad := range []string{"simd=yes", "vlc=off", "simd=2", "vlc=maybe", "index=si"} {
		resp, body := get(t, base+"&"+bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400 (%s)", bad, resp.StatusCode, body)
		}
		if !strings.Contains(string(body), "not a boolean") {
			t.Fatalf("%s: 400 body %q does not name the boolean", bad, body)
		}
	}
	for _, ok := range []string{"simd=true", "simd=T", "vlc=1", "vlc=FALSE", "simd=0&vlc=t"} {
		resp, body := get(t, base+"&"+ok)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d, want 200 (%s)", ok, resp.StatusCode, body)
		}
	}
}

// TestPostTranscode uploads an HDVB stream and checks the response is
// its decodable transcode into the requested codec.
func TestPostTranscode(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 2, MaxConcurrent: 2, MaxFrames: 100})
	const w, h, frames, gop = 96, 80, 6, 3

	var upload bytes.Buffer
	gen := hdvideobench.NewSequence(hdvideobench.RushHour, w, h)
	i := 0
	_, err := hdvideobench.EncodeStream(&upload, hdvideobench.MPEG2,
		hdvideobench.EncoderOptions{Width: w, Height: h, IntraPeriod: gop}, frames,
		func() (*hdvideobench.Frame, error) {
			if i >= frames {
				return nil, io.EOF
			}
			f := gen.Frame(i)
			i++
			return f, nil
		})
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post(ts.URL+"/transcode?codec=h264&gop=3", StreamContentType,
		bytes.NewReader(upload.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-HDVB-Codec"); got != "H.264" {
		t.Fatalf("X-HDVB-Codec = %q, want H.264", got)
	}
	count := 0
	hdr, _, err := hdvideobench.DecodeStream(resp.Body, false, 2, 0, func(f *hdvideobench.Frame) error {
		if f.PTS != count {
			return fmt.Errorf("frame %d: PTS %d", count, f.PTS)
		}
		count++
		return nil
	})
	if err != nil {
		t.Fatalf("decoding transcoded stream: %v", err)
	}
	if hdr.Width != w || hdr.Height != h {
		t.Fatalf("transcode served %dx%d, want input dimensions %dx%d", hdr.Width, hdr.Height, w, h)
	}
	if count != frames {
		t.Fatalf("transcode decoded %d frames, want %d", count, frames)
	}
}

// TestPostTranscodeSingleDimensionOverride: POST may override just one
// of width/height (the other copies the input's), and a non-multiple
// dimension is still a 400.
func TestPostTranscodeSingleDimensionOverride(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1, MaxConcurrent: 1, MaxFrames: 100})
	const w, h, frames = 96, 80, 2
	var upload bytes.Buffer
	gen := hdvideobench.NewSequence(hdvideobench.BlueSky, w, h)
	i := 0
	if _, err := hdvideobench.EncodeStream(&upload, hdvideobench.MPEG2,
		hdvideobench.EncoderOptions{Width: w, Height: h, IntraPeriod: 2}, frames,
		func() (*hdvideobench.Frame, error) {
			if i >= frames {
				return nil, io.EOF
			}
			f := gen.Frame(i)
			i++
			return f, nil
		}); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post(ts.URL+"/transcode?codec=mpeg4&width=96", StreamContentType,
		bytes.NewReader(upload.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("width-only override: status %d, want 200 (%s)", resp.StatusCode, body)
	}
	hdr, _, err := hdvideobench.DecodeStream(resp.Body, false, 1, 0,
		func(*hdvideobench.Frame) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Width != w || hdr.Height != h {
		t.Fatalf("served %dx%d, want %dx%d (height from the input)", hdr.Width, hdr.Height, w, h)
	}

	resp2, err := http.Post(ts.URL+"/transcode?codec=mpeg4&height=100", StreamContentType,
		bytes.NewReader(upload.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("height=100: status %d, want 400", resp2.StatusCode)
	}
}

// TestPostTranscodeBadUpload: garbage uploads fail with a clean
// headerless 400 before any stream bytes.
func TestPostTranscodeBadUpload(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1, MaxConcurrent: 1, MaxFrames: 100})
	resp, err := http.Post(ts.URL+"/transcode?codec=mpeg4", StreamContentType,
		strings.NewReader("this is not an HDVB container"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	for name := range resp.Header {
		if strings.HasPrefix(name, "X-Hdvb-") {
			t.Fatalf("bad-upload 400 carries stream header %s", name)
		}
	}
}

// TestRateLimit429: with a tiny per-client budget the second immediate
// request is rejected with 429 + Retry-After, and /metrics counts it.
func TestRateLimit429(t *testing.T) {
	_, ts := testServer(t, Config{
		Workers: 1, MaxConcurrent: 2, MaxFrames: 100,
		RateLimit: 0.01, RateBurst: 1, // one request, then a 100s refill
	})
	url := ts.URL + "/transcode?width=96&height=80&frames=2&gop=2"
	resp, body := get(t, url)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first request status %d: %s", resp.StatusCode, body)
	}
	resp, _ = get(t, url)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	_, metrics := get(t, ts.URL+"/metrics")
	if !strings.Contains(string(metrics), "hdvserve_rate_limited_total 1") {
		t.Fatalf("/metrics does not count the rejection:\n%s", metrics)
	}
}

// TestEntropyKeyOnlyForH264: vlc= is meaningless outside H.264, so a
// non-H.264 request with it set must share the plain request's cache
// entry instead of re-encoding identical bytes into a second one.
func TestEntropyKeyOnlyForH264(t *testing.T) {
	s, ts := testServer(t, cachedServerConfig(t))
	encodes := countEncodes(s)
	base := ts.URL + "/transcode?codec=mpeg2&width=96&height=80&frames=2&gop=2"
	if resp, _ := get(t, base); resp.StatusCode != http.StatusOK {
		t.Fatal("cold request failed")
	}
	resp, _ := get(t, base+"&vlc=true")
	if resp.StatusCode != http.StatusOK {
		t.Fatal("vlc=true request failed")
	}
	if got := resp.Header.Get("X-HDVB-Cache"); got != "hit" {
		t.Fatalf("mpeg2 vlc=true was a %q, want hit (entropy must not key non-H.264)", got)
	}
	if n := encodes.Load(); n != 1 {
		t.Fatalf("%d encodes for byte-identical mpeg2 requests, want 1", n)
	}
	// For H.264 the entropy coder does change the bytes: distinct entries.
	h264 := ts.URL + "/transcode?codec=h264&width=96&height=80&frames=2&gop=2"
	if resp, _ := get(t, h264); resp.StatusCode != http.StatusOK {
		t.Fatal("h264 cold failed")
	}
	resp, _ = get(t, h264+"&vlc=true")
	if got := resp.Header.Get("X-HDVB-Cache"); got != "miss" {
		t.Fatalf("h264 vlc=true was a %q, want miss (VLC changes the stream)", got)
	}
}

// TestRateLimiterHardCap: the bucket map cannot grow past hardCap no
// matter how many distinct clients arrive inside the prune window.
func TestRateLimiterHardCap(t *testing.T) {
	l := newRateLimiter(1, 2)
	now := time.Unix(1000, 0)
	for i := 0; i < hardCap+500; i++ {
		l.allow(fmt.Sprintf("10.0.%d.%d", i/256, i%256), now) // all active: prune finds nothing idle
	}
	l.mu.Lock()
	n := len(l.buckets)
	l.mu.Unlock()
	if n > hardCap {
		t.Fatalf("bucket map grew to %d, hard cap is %d", n, hardCap)
	}
}

// TestRateLimiterRefill drives the bucket directly with synthetic time:
// burst spends down, refill restores at the configured rate, and
// distinct clients do not share a bucket.
func TestRateLimiterRefill(t *testing.T) {
	l := newRateLimiter(1, 2) // 1 token/s, burst 2
	t0 := time.Unix(1000, 0)
	if !l.allow("a", t0) || !l.allow("a", t0) {
		t.Fatal("burst of 2 not granted")
	}
	if l.allow("a", t0) {
		t.Fatal("third immediate request allowed past the burst")
	}
	if !l.allow("b", t0) {
		t.Fatal("client b throttled by client a's bucket")
	}
	if l.allow("a", t0.Add(500*time.Millisecond)) {
		t.Fatal("half a token spent as a whole one")
	}
	if !l.allow("a", t0.Add(2*time.Second)) {
		t.Fatal("refilled token not granted")
	}
}

// TestMetricsEndpoint checks the exposition shape: every series the
// dashboards would scrape is present, typed, and parseable.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := testServer(t, cachedServerConfig(t))
	if resp, _ := get(t, ts.URL+"/transcode?width=96&height=80&frames=2&gop=2&codec=mpeg2"); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm-up request failed: %d", resp.StatusCode)
	}
	resp, body := get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	for _, series := range []string{
		`hdvserve_requests_total{endpoint="transcode",method="GET"} 1`,
		`hdvserve_requests_total{endpoint="transcode",method="POST"} 0`,
		"hdvserve_active_requests 0",
		"hdvserve_streams_served_total 1",
		"hdvserve_uploads_transcoded_total 0",
		"hdvserve_encodes_total 1",
		"hdvserve_encode_seconds_total ",
		"hdvserve_bytes_served_total ",
		"hdvserve_rate_limited_total 0",
		"hdvserve_capacity_rejections_total 0",
		"hdvserve_cache_hits_total 0",
		"hdvserve_cache_misses_total 1",
		"hdvserve_cache_evictions_total 0",
		"hdvserve_cache_entries 1",
		"hdvserve_cache_bytes ",
		"# TYPE hdvserve_cache_bytes gauge",
		"# TYPE hdvserve_requests_total counter",
	} {
		if !strings.Contains(string(body), series) {
			t.Fatalf("/metrics missing %q:\n%s", series, body)
		}
	}
}

// TestIndexRequiresCache: index=1 without -cache-dir is a clean 400.
func TestIndexRequiresCache(t *testing.T) {
	_, ts := testServer(t, Config{Workers: 1, MaxConcurrent: 1, MaxFrames: 100})
	resp, body := get(t, ts.URL+"/transcode?width=96&height=80&frames=2&gop=2&index=1")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 (%s)", resp.StatusCode, body)
	}
}

// TestCacheSurvivesRestart: a new server over the same cache directory
// serves the old entries without re-encoding.
func TestCacheSurvivesRestart(t *testing.T) {
	cfg := cachedServerConfig(t)
	s1, ts1 := testServer(t, cfg)
	countEncodes(s1)
	url1 := "/transcode?codec=mpeg4&width=96&height=80&frames=4&gop=2"
	cold, coldBody := get(t, ts1.URL+url1)
	if cold.StatusCode != http.StatusOK {
		t.Fatalf("cold status %d", cold.StatusCode)
	}
	ts1.Close()

	s2, ts2 := testServer(t, cfg) // same CacheDir
	encodes := countEncodes(s2)
	hit, hitBody := get(t, ts2.URL+url1)
	if hit.StatusCode != http.StatusOK {
		t.Fatalf("restart hit status %d", hit.StatusCode)
	}
	if got := hit.Header.Get("X-HDVB-Cache"); got != "hit" {
		t.Fatalf("restart X-HDVB-Cache = %q, want hit", got)
	}
	if !bytes.Equal(hitBody, coldBody) {
		t.Fatal("restarted server serves different bytes")
	}
	if encodes.Load() != 0 {
		t.Fatal("restarted server re-encoded a cached entry")
	}
}
