package h264

// Intra prediction builders, shared bit-exactly by encoder and decoder.
// Predictions are formed from *unfiltered* reconstructed neighbours (the
// deblocking filter runs after the macroblock loop, as in the standard).

// i4Avail carries neighbour availability for one 4×4 block.
type i4Avail struct {
	left, top, topRight bool
}

// availI4 computes availability for the 4×4 block at grid position
// (bx4, by4) under raster MB / raster in-MB coding order. top4 is the
// slice's first 4×4 row: blocks above it belong to another slice and are
// unavailable (slices predict independently).
func availI4(bx4, by4, w4, top4 int) i4Avail {
	av := i4Avail{
		left: bx4 > 0,
		top:  by4 > top4,
	}
	if by4 > top4 && bx4+1 < w4 {
		// Above-right block must already be coded: it is unless it belongs
		// to the macroblock to our right within the same MB row band.
		sameMBRowBand := (by4-1)/4 == by4/4
		crossesMB := (bx4+1)/4 != bx4/4
		av.topRight = !(sameMBRowBand && crossesMB)
	}
	return av
}

// i4Candidates fills dst with the modes usable under the given
// availability, best candidates first, and returns the filled prefix.
// The caller-provided array keeps the per-4×4-block mode loop
// allocation-free.
func i4Candidates(av i4Avail, dst *[numI4Modes]int) []int {
	n := 0
	dst[n] = i4DC
	n++
	if av.top {
		dst[n] = i4Vertical
		n++
	}
	if av.left {
		dst[n] = i4Horizontal
		n++
	}
	if av.top { // DDL pads the top-right half when unavailable
		dst[n] = i4DiagDownLeft
		n++
	}
	if av.top && av.left {
		dst[n] = i4DiagDownRight
		n++
	}
	return dst[:n]
}

// predI4 writes the 4×4 intra prediction for mode into dst (stride
// dStride). (x, y) are the pixel coordinates of the block inside the plane,
// addressed as plane[origin + y*stride + x].
func predI4(dst []byte, dStride int, plane []byte, origin, stride, x, y, mode int, av i4Avail) {
	base := origin + y*stride + x
	var top [8]int32
	var left [4]int32
	var corner int32 = 128
	if av.top {
		for i := 0; i < 4; i++ {
			top[i] = int32(plane[base-stride+i])
		}
		if av.topRight {
			for i := 4; i < 8; i++ {
				top[i] = int32(plane[base-stride+i])
			}
		} else {
			for i := 4; i < 8; i++ {
				top[i] = top[3]
			}
		}
	}
	if av.left {
		for i := 0; i < 4; i++ {
			left[i] = int32(plane[base+i*stride-1])
		}
	}
	if av.top && av.left {
		corner = int32(plane[base-stride-1])
	}

	switch mode {
	case i4Vertical:
		for r := 0; r < 4; r++ {
			for c := 0; c < 4; c++ {
				dst[r*dStride+c] = byte(top[c])
			}
		}
	case i4Horizontal:
		for r := 0; r < 4; r++ {
			for c := 0; c < 4; c++ {
				dst[r*dStride+c] = byte(left[r])
			}
		}
	case i4DC:
		var sum, n int32
		if av.top {
			sum += top[0] + top[1] + top[2] + top[3]
			n += 4
		}
		if av.left {
			sum += left[0] + left[1] + left[2] + left[3]
			n += 4
		}
		dc := int32(128)
		if n > 0 {
			dc = (sum + n/2) / n
		}
		for r := 0; r < 4; r++ {
			for c := 0; c < 4; c++ {
				dst[r*dStride+c] = byte(dc)
			}
		}
	case i4DiagDownLeft:
		for r := 0; r < 4; r++ {
			for c := 0; c < 4; c++ {
				i := r + c
				var v int32
				if i == 6 {
					v = (top[6] + 3*top[7] + 2) >> 2
				} else {
					v = (top[i] + 2*top[i+1] + top[i+2] + 2) >> 2
				}
				dst[r*dStride+c] = byte(v)
			}
		}
	case i4DiagDownRight:
		// Diagonal array: [l3 l2 l1 l0 corner t0 t1 t2 t3] indices -4..4.
		get := func(i int) int32 {
			switch {
			case i < 0:
				return left[-i-1]
			case i == 0:
				return corner
			default:
				return top[i-1]
			}
		}
		for r := 0; r < 4; r++ {
			for c := 0; c < 4; c++ {
				i := c - r
				v := (get(i-1) + 2*get(i) + get(i+1) + 2) >> 2
				dst[r*dStride+c] = byte(v)
			}
		}
	}
}

// predI16 writes the 16×16 intra luma prediction for mode into dst (stride
// 16). (px, py) are the macroblock pixel coordinates.
func predI16(dst []byte, plane []byte, origin, stride, px, py, mode int, availLeft, availTop bool) {
	base := origin + py*stride + px
	switch mode {
	case i16Vertical:
		for r := 0; r < 16; r++ {
			copy(dst[r*16:r*16+16], plane[base-stride:base-stride+16])
		}
	case i16Horizontal:
		for r := 0; r < 16; r++ {
			v := plane[base+r*stride-1]
			for c := 0; c < 16; c++ {
				dst[r*16+c] = v
			}
		}
	case i16DC:
		var sum, n int32
		if availTop {
			for c := 0; c < 16; c++ {
				sum += int32(plane[base-stride+c])
			}
			n += 16
		}
		if availLeft {
			for r := 0; r < 16; r++ {
				sum += int32(plane[base+r*stride-1])
			}
			n += 16
		}
		dc := byte(128)
		if n > 0 {
			dc = byte((sum + n/2) / n)
		}
		for i := 0; i < 256; i++ {
			dst[i] = dc
		}
	case i16Plane:
		var hGrad, vGrad int32
		for i := 1; i <= 8; i++ {
			hGrad += int32(i) * (int32(plane[base-stride+7+i]) - int32(plane[base-stride+7-i]))
			vGrad += int32(i) * (int32(plane[base+(7+i)*stride-1]) - int32(plane[base+(7-i)*stride-1]))
		}
		a := 16 * (int32(plane[base+15*stride-1]) + int32(plane[base-stride+15]))
		b := (5*hGrad + 32) >> 6
		c := (5*vGrad + 32) >> 6
		for r := 0; r < 16; r++ {
			for cc := 0; cc < 16; cc++ {
				v := (a + b*int32(cc-7) + c*int32(r-7) + 16) >> 5
				if v < 0 {
					v = 0
				}
				if v > 255 {
					v = 255
				}
				dst[r*16+cc] = byte(v)
			}
		}
	}
}

// i16Candidates fills dst with the usable I16 modes under the given
// availability and returns the filled prefix (allocation-free, as with
// i4Candidates).
func i16Candidates(availLeft, availTop bool, dst *[numI16Modes]int) []int {
	n := 0
	dst[n] = i16DC
	n++
	if availTop {
		dst[n] = i16Vertical
		n++
	}
	if availLeft {
		dst[n] = i16Horizontal
		n++
	}
	if availLeft && availTop {
		dst[n] = i16Plane
		n++
	}
	return dst[:n]
}

// predChromaDC writes the 8×8 DC intra prediction for one chroma plane.
func predChromaDC(dst []byte, plane []byte, origin, stride, cx, cy int, availLeft, availTop bool) {
	base := origin + cy*stride + cx
	var sum, n int32
	if availTop {
		for c := 0; c < 8; c++ {
			sum += int32(plane[base-stride+c])
		}
		n += 8
	}
	if availLeft {
		for r := 0; r < 8; r++ {
			sum += int32(plane[base+r*stride-1])
		}
		n += 8
	}
	dc := byte(128)
	if n > 0 {
		dc = byte((sum + n/2) / n)
	}
	for i := 0; i < 64; i++ {
		dst[i] = dc
	}
}
