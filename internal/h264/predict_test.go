package h264

import (
	"testing"
)

// plane builds a test plane with origin inset so negative-neighbour reads
// are legal, returning (plane, origin, stride).
func testPlane(w, h int) ([]byte, int, int) {
	stride := w + 16
	p := make([]byte, stride*(h+16))
	origin := 8*stride + 8
	return p, origin, stride
}

func TestPredI4Vertical(t *testing.T) {
	p, origin, stride := testPlane(32, 32)
	// Top neighbours of block at (4,4): row above holds 10,20,30,40.
	for i, v := range []byte{10, 20, 30, 40} {
		p[origin+3*stride+4+i] = v
	}
	var dst [16]byte
	predI4(dst[:], 4, p, origin, stride, 4, 4, i4Vertical, i4Avail{top: true})
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			want := byte(10 * (c + 1))
			if dst[r*4+c] != want {
				t.Fatalf("V pred (%d,%d) = %d, want %d", r, c, dst[r*4+c], want)
			}
		}
	}
}

func TestPredI4Horizontal(t *testing.T) {
	p, origin, stride := testPlane(32, 32)
	for i, v := range []byte{50, 60, 70, 80} {
		p[origin+(4+i)*stride+3] = v
	}
	var dst [16]byte
	predI4(dst[:], 4, p, origin, stride, 4, 4, i4Horizontal, i4Avail{left: true})
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			want := byte(50 + 10*r)
			if dst[r*4+c] != want {
				t.Fatalf("H pred (%d,%d) = %d, want %d", r, c, dst[r*4+c], want)
			}
		}
	}
}

func TestPredI4DCFallback(t *testing.T) {
	p, origin, stride := testPlane(32, 32)
	var dst [16]byte
	// No neighbours at all: DC must be 128.
	predI4(dst[:], 4, p, origin, stride, 4, 4, i4DC, i4Avail{})
	for i, v := range dst {
		if v != 128 {
			t.Fatalf("DC fallback sample %d = %d, want 128", i, v)
		}
	}
	// Top-only: mean of the four top samples.
	for i, v := range []byte{100, 104, 108, 112} {
		p[origin+3*stride+4+i] = v
	}
	predI4(dst[:], 4, p, origin, stride, 4, 4, i4DC, i4Avail{top: true})
	if dst[0] != 106 {
		t.Fatalf("DC top-only = %d, want 106", dst[0])
	}
}

func TestPredI4DiagDownLeftFlat(t *testing.T) {
	p, origin, stride := testPlane(32, 32)
	for i := 0; i < 8; i++ {
		p[origin+3*stride+4+i] = 77
	}
	var dst [16]byte
	predI4(dst[:], 4, p, origin, stride, 4, 4, i4DiagDownLeft,
		i4Avail{top: true, topRight: true})
	for i, v := range dst {
		if v != 77 {
			t.Fatalf("DDL flat sample %d = %d, want 77", i, v)
		}
	}
}

func TestPredI4DiagDownRightFlat(t *testing.T) {
	p, origin, stride := testPlane(32, 32)
	for i := 0; i < 4; i++ {
		p[origin+3*stride+4+i] = 90   // top
		p[origin+(4+i)*stride+3] = 90 // left
	}
	p[origin+3*stride+3] = 90 // corner
	var dst [16]byte
	predI4(dst[:], 4, p, origin, stride, 4, 4, i4DiagDownRight,
		i4Avail{top: true, left: true})
	for i, v := range dst {
		if v != 90 {
			t.Fatalf("DDR flat sample %d = %d, want 90", i, v)
		}
	}
}

func TestPredI16DCAndPlane(t *testing.T) {
	p, origin, stride := testPlane(64, 64)
	// Borders of MB at (16,16): top row = 40, left col = 80 → DC = 60.
	for i := 0; i < 16; i++ {
		p[origin+15*stride+16+i] = 40
		p[origin+(16+i)*stride+15] = 80
	}
	var dst [256]byte
	predI16(dst[:], p, origin, stride, 16, 16, i16DC, true, true)
	if dst[0] != 60 {
		t.Fatalf("I16 DC = %d, want 60", dst[0])
	}
	// Plane prediction of flat borders is flat.
	for i := -1; i < 16; i++ {
		p[origin+15*stride+16+i] = 120
		if i >= 0 {
			p[origin+(16+i)*stride+15] = 120
		}
	}
	predI16(dst[:], p, origin, stride, 16, 16, i16Plane, true, true)
	for i, v := range dst {
		if v < 119 || v > 121 {
			t.Fatalf("I16 plane flat sample %d = %d", i, v)
		}
	}
}

func TestI4CandidatesRespectAvailability(t *testing.T) {
	var buf [numI4Modes]int
	mods := i4Candidates(i4Avail{}, &buf)
	if len(mods) != 1 || mods[0] != i4DC {
		t.Fatalf("no-neighbour candidates = %v", mods)
	}
	mods = i4Candidates(i4Avail{left: true, top: true, topRight: true}, &buf)
	if len(mods) != numI4Modes {
		t.Fatalf("full availability should offer all %d modes, got %v", numI4Modes, mods)
	}
}

func TestI16CandidatesRespectAvailability(t *testing.T) {
	var buf [numI16Modes]int
	if got := i16Candidates(false, false, &buf); len(got) != 1 || got[0] != i16DC {
		t.Fatalf("corner MB candidates = %v", got)
	}
	if got := i16Candidates(true, true, &buf); len(got) != numI16Modes {
		t.Fatalf("full availability = %v", got)
	}
}

func TestPredChromaDC(t *testing.T) {
	p, origin, stride := testPlane(32, 32)
	for i := 0; i < 8; i++ {
		p[origin+7*stride+8+i] = 100   // top
		p[origin+(8+i)*stride+7] = 200 // left
	}
	var dst [64]byte
	predChromaDC(dst[:], p, origin, stride, 8, 8, true, true)
	if dst[0] != 150 {
		t.Fatalf("chroma DC = %d, want 150", dst[0])
	}
	predChromaDC(dst[:], p, origin, stride, 8, 8, false, false)
	if dst[0] != 128 {
		t.Fatalf("chroma DC fallback = %d, want 128", dst[0])
	}
}
