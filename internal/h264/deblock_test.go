package h264

import (
	"testing"

	"hdvideobench/internal/frame"
	"hdvideobench/internal/motion"
)

func TestFilterEdgeSmoothsSmallStep(t *testing.T) {
	// p1 p0 | q0 q1 = 100 100 | 108 108 — a quantization blocking step,
	// below alpha(26) so the filter engages (like the real filter, steps
	// above alpha are treated as natural edges).
	plane := []byte{100, 100, 108, 108}
	alpha, beta := alphaBeta(26)
	filterEdge(plane, 2, 1, alpha, beta, 2)
	if plane[1] <= 100 || plane[2] >= 108 {
		t.Fatalf("edge not smoothed: %v", plane)
	}
	// Samples move toward each other symmetrically.
	if int(plane[1])-100 != 108-int(plane[2]) {
		t.Fatalf("asymmetric filter: %v", plane)
	}
}

func TestFilterEdgePreservesRealEdge(t *testing.T) {
	// A strong natural edge (|p0-q0| >= alpha) must not be filtered.
	plane := []byte{10, 10, 240, 240}
	alpha, beta := alphaBeta(26)
	filterEdge(plane, 2, 1, alpha, beta, 2)
	if plane[1] != 10 || plane[2] != 240 {
		t.Fatalf("real edge was smoothed: %v", plane)
	}
}

func TestFilterEdgeDeltaClamp(t *testing.T) {
	// Moderate step with tiny tc: movement limited to ±tc.
	plane := []byte{100, 100, 110, 110}
	alpha, beta := alphaBeta(40) // generous thresholds
	filterEdge(plane, 2, 1, alpha, beta, 1)
	if int(plane[1]) > 101 || int(plane[2]) < 109 {
		t.Fatalf("delta exceeded tc: %v", plane)
	}
}

func TestBoundaryStrengthRules(t *testing.T) {
	m := newFrameMeta(32, 32)
	m.reset()
	// Both intra → 3.
	if bs := boundaryStrength(m, 0, 0, 1, 0); bs != 3 {
		t.Fatalf("intra bs = %d", bs)
	}
	// Inter both sides, coefficients on one side → 2.
	m.setBlock(0, 0, 2, 1, motion.MV{}, 0)
	m.nz[1] = true
	if bs := boundaryStrength(m, 0, 0, 1, 0); bs != 2 {
		t.Fatalf("coded bs = %d", bs)
	}
	// Inter, no coefficients, large MV difference → 1.
	m.nz[1] = false
	m.mv[0] = motion.MV{X: 0, Y: 0}
	m.mv[1] = motion.MV{X: 8, Y: 0} // 2 full pixels
	if bs := boundaryStrength(m, 0, 0, 1, 0); bs != 1 {
		t.Fatalf("mv-diff bs = %d", bs)
	}
	// Same MV, same ref, no coefficients → 0.
	m.mv[1] = motion.MV{}
	if bs := boundaryStrength(m, 0, 0, 1, 0); bs != 0 {
		t.Fatalf("continuous bs = %d", bs)
	}
	// Different reference index → 1.
	m.ref[1] = 1
	if bs := boundaryStrength(m, 0, 0, 1, 0); bs != 1 {
		t.Fatalf("ref-diff bs = %d", bs)
	}
}

func TestDeblockFrameLeavesCleanContentAlone(t *testing.T) {
	// A flat inter frame with continuous motion has bs=0 everywhere: the
	// filter must not change a single sample.
	f := frame.NewPadded(32, 32, codecRefPadForTest)
	f.Fill(123, 128, 128)
	m := newFrameMeta(32, 32)
	m.reset()
	for i := range m.ref {
		m.ref[i] = 0
	}
	before := append([]byte(nil), f.Y...)
	deblockFrame(f, m, 26)
	for i := range f.Y {
		if f.Y[i] != before[i] {
			t.Fatalf("sample %d changed on clean content", i)
		}
	}
}

const codecRefPadForTest = 32
