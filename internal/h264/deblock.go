package h264

import (
	"hdvideobench/internal/frame"
)

// In-loop deblocking filter. A simplified but faithful H.264-style filter:
// boundary strength derived from intra/coded/motion discontinuities, α and β
// thresholds derived from QP with the standard's documented approximations
// (α ≈ 0.8·(2^(QP/6) − 1), β ≈ QP/2 − 7), and the standard normal-filter
// delta clip. Encoder and decoder run the identical code on the identical
// reconstruction, so the loop stays closed.

// alphaBeta returns the edge thresholds for a QP.
func alphaBeta(qp int) (alpha, beta int32) {
	a := int32(1)
	for i := 0; i < qp/6; i++ {
		a *= 2
	}
	alpha = 4 * (a - 1) / 5
	beta = int32(qp/2 - 7)
	if beta < 0 {
		beta = 0
	}
	return alpha, beta
}

// boundaryStrength classifies the edge between two 4×4 blocks.
func boundaryStrength(m *frameMeta, ax4, ay4, bx4, by4 int) int32 {
	ra := m.ref[ay4*m.w4+ax4]
	rb := m.ref[by4*m.w4+bx4]
	if ra < 0 || rb < 0 {
		return 3 // intra on either side
	}
	if m.nz[ay4*m.w4+ax4] || m.nz[by4*m.w4+bx4] {
		return 2
	}
	mva := m.mv[ay4*m.w4+ax4]
	mvb := m.mv[by4*m.w4+bx4]
	dx := int32(mva.X) - int32(mvb.X)
	if dx < 0 {
		dx = -dx
	}
	dy := int32(mva.Y) - int32(mvb.Y)
	if dy < 0 {
		dy = -dy
	}
	if ra != rb || dx >= 4 || dy >= 4 {
		return 1
	}
	return 0
}

// deblockFrame filters all internal 4×4 luma edges of f in place.
func deblockFrame(f *frame.Frame, m *frameMeta, qp int) {
	alpha, beta := alphaBeta(qp)
	if alpha == 0 {
		return
	}
	// Vertical edges (filter across columns), left neighbour | current.
	for by := 0; by < m.h4; by++ {
		for bx := 1; bx < m.w4; bx++ {
			bs := boundaryStrength(m, bx-1, by, bx, by)
			if bs == 0 {
				continue
			}
			tc := bs + int32(qp/16)
			base := f.YOrigin + (by*4)*f.YStride + bx*4
			for r := 0; r < 4; r++ {
				filterEdge(f.Y, base+r*f.YStride, 1, alpha, beta, tc)
			}
		}
	}
	// Horizontal edges (filter across rows), top neighbour | current.
	for by := 1; by < m.h4; by++ {
		for bx := 0; bx < m.w4; bx++ {
			bs := boundaryStrength(m, bx, by-1, bx, by)
			if bs == 0 {
				continue
			}
			tc := bs + int32(qp/16)
			base := f.YOrigin + (by*4)*f.YStride + bx*4
			for c := 0; c < 4; c++ {
				filterEdge(f.Y, base+c, f.YStride, alpha, beta, tc)
			}
		}
	}
}

// filterEdge applies the normal filter to one sample quadruple
// (p1 p0 | q0 q1) where q0 is at pos and the pitch points across the edge.
func filterEdge(plane []byte, pos, pitch int, alpha, beta, tc int32) {
	p1 := int32(plane[pos-2*pitch])
	p0 := int32(plane[pos-pitch])
	q0 := int32(plane[pos])
	q1 := int32(plane[pos+pitch])

	if absd(p0-q0) >= alpha || absd(p1-p0) >= beta || absd(q1-q0) >= beta {
		return
	}
	delta := ((q0-p0)*4 + (p1 - q1) + 4) >> 3
	if delta > tc {
		delta = tc
	}
	if delta < -tc {
		delta = -tc
	}
	plane[pos-pitch] = clip255(p0 + delta)
	plane[pos] = clip255(q0 - delta)
}

func absd(v int32) int32 {
	if v < 0 {
		return -v
	}
	return v
}

func clip255(v int32) byte {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return byte(v)
}
