package h264

import (
	"testing"

	"hdvideobench/internal/codec"
	"hdvideobench/internal/container"
	"hdvideobench/internal/frame"
	"hdvideobench/internal/kernel"
	"hdvideobench/internal/metrics"
	"hdvideobench/internal/seqgen"
)

func encodeDecode(t *testing.T, cfg codec.Config, seq seqgen.Sequence, n int, encK, decK kernel.Set) ([]*frame.Frame, []*frame.Frame, int) {
	t.Helper()
	cfg.Kernels = encK
	enc, err := NewEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(enc.Header(), decK)
	if err != nil {
		t.Fatal(err)
	}
	gen := seqgen.New(seq, cfg.Width, cfg.Height)
	inputs := gen.Generate(n)

	var decoded []*frame.Frame
	bits := 0
	feed := func(pkts []container.Packet, err error) {
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pkts {
			bits += 8 * len(p.Payload)
			fs, err := dec.Decode(p)
			if err != nil {
				t.Fatal(err)
			}
			decoded = append(decoded, fs...)
		}
	}
	for _, f := range inputs {
		feed(enc.Encode(f))
	}
	feed(enc.Flush())
	decoded = append(decoded, dec.Flush()...)
	return inputs, decoded, bits
}

func TestQPMapping(t *testing.T) {
	cfg := codec.Default(96, 80)
	enc, err := NewEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if enc.QP() != 26 {
		t.Fatalf("QP = %d, want 26 for MPEG Q=5 (Table IV: --qp=26)", enc.QP())
	}
}

func TestRoundTripQuality(t *testing.T) {
	cfg := codec.Default(96, 80)
	inputs, decoded, bits := encodeDecode(t, cfg, seqgen.RushHour, 7, kernel.Scalar, kernel.Scalar)
	if len(decoded) != len(inputs) {
		t.Fatalf("decoded %d frames, want %d", len(decoded), len(inputs))
	}
	for i, f := range decoded {
		if f.PTS != i {
			t.Fatalf("frame %d has PTS %d", i, f.PTS)
		}
		psnr := metrics.PSNRFrames(inputs[i], f)
		if psnr < 28 {
			t.Errorf("frame %d PSNR %.2f dB too low", i, psnr)
		}
	}
	raw := 8 * frame.RawSize(cfg.Width, cfg.Height) * len(inputs)
	if bits >= raw/4 {
		t.Errorf("poor compression: %d bits vs %d raw", bits, raw)
	}
}

func TestRoundTripAllSequences(t *testing.T) {
	for _, seq := range seqgen.All {
		cfg := codec.Default(96, 80)
		inputs, decoded, _ := encodeDecode(t, cfg, seq, 4, kernel.Scalar, kernel.Scalar)
		if len(decoded) != len(inputs) {
			t.Fatalf("%v: decoded %d frames", seq, len(decoded))
		}
		for i := range decoded {
			if psnr := metrics.PSNRFrames(inputs[i], decoded[i]); psnr < 22 {
				t.Errorf("%v frame %d: PSNR %.2f", seq, i, psnr)
			}
		}
	}
}

func TestScalarSWARBitExact(t *testing.T) {
	cfg := codec.Default(96, 80)
	cfgS := cfg
	cfgS.Kernels = kernel.Scalar
	cfgW := cfg
	cfgW.Kernels = kernel.SWAR
	encS, _ := NewEncoder(cfgS)
	encW, _ := NewEncoder(cfgW)
	gen := seqgen.New(seqgen.PedestrianArea, cfg.Width, cfg.Height)

	var pktsS, pktsW []container.Packet
	for i := 0; i < 7; i++ {
		ps, err := encS.Encode(gen.Frame(i))
		if err != nil {
			t.Fatal(err)
		}
		pw, err := encW.Encode(gen.Frame(i))
		if err != nil {
			t.Fatal(err)
		}
		pktsS = append(pktsS, ps...)
		pktsW = append(pktsW, pw...)
	}
	ps, _ := encS.Flush()
	pw, _ := encW.Flush()
	pktsS = append(pktsS, ps...)
	pktsW = append(pktsW, pw...)

	for i := range pktsS {
		if len(pktsS[i].Payload) != len(pktsW[i].Payload) {
			t.Fatalf("packet %d size differs: %d vs %d", i, len(pktsS[i].Payload), len(pktsW[i].Payload))
		}
		for j := range pktsS[i].Payload {
			if pktsS[i].Payload[j] != pktsW[i].Payload[j] {
				t.Fatalf("packet %d byte %d differs", i, j)
			}
		}
	}
}

func TestDecoderKernelEquivalence(t *testing.T) {
	cfg := codec.Default(96, 80)
	cfg.Kernels = kernel.Scalar
	enc, _ := NewEncoder(cfg)
	gen := seqgen.New(seqgen.BlueSky, cfg.Width, cfg.Height)
	var pkts []container.Packet
	for i := 0; i < 7; i++ {
		ps, err := enc.Encode(gen.Frame(i))
		if err != nil {
			t.Fatal(err)
		}
		pkts = append(pkts, ps...)
	}
	ps, _ := enc.Flush()
	pkts = append(pkts, ps...)

	decS, _ := NewDecoder(enc.Header(), kernel.Scalar)
	decW, _ := NewDecoder(enc.Header(), kernel.SWAR)
	for _, p := range pkts {
		fs, err := decS.Decode(p)
		if err != nil {
			t.Fatal(err)
		}
		fw, err := decW.Decode(p)
		if err != nil {
			t.Fatal(err)
		}
		for k := range fs {
			if metrics.PSNRFrames(fs[k], fw[k]) != 100 {
				t.Fatalf("decoded frame %d differs between kernel sets", fs[k].PTS)
			}
		}
	}
}

func TestVLCEntropyMode(t *testing.T) {
	cfg := codec.Default(96, 80)
	cfg.Entropy = codec.EntropyVLC
	inputs, decoded, vlcBits := encodeDecode(t, cfg, seqgen.PedestrianArea, 5, kernel.Scalar, kernel.Scalar)
	for i := range decoded {
		if psnr := metrics.PSNRFrames(inputs[i], decoded[i]); psnr < 25 {
			t.Errorf("VLC frame %d PSNR %.2f", i, psnr)
		}
	}
	// CABAC must compress better than VLC on identical decisions... the
	// decisions differ slightly (none depend on entropy), so compare sizes
	// loosely: CABAC should not be larger.
	cfg2 := codec.Default(96, 80)
	cfg2.Entropy = codec.EntropyCABAC
	_, _, cabacBits := encodeDecode(t, cfg2, seqgen.PedestrianArea, 5, kernel.Scalar, kernel.Scalar)
	if cabacBits >= vlcBits {
		t.Errorf("CABAC (%d bits) must beat VLC (%d bits)", cabacBits, vlcBits)
	}
}

func TestGOPStructure(t *testing.T) {
	cfg := codec.Default(96, 80)
	cfg.Kernels = kernel.Scalar
	enc, _ := NewEncoder(cfg)
	gen := seqgen.New(seqgen.RushHour, cfg.Width, cfg.Height)
	var types []container.FrameType
	for i := 0; i < 7; i++ {
		pkts, err := enc.Encode(gen.Frame(i))
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pkts {
			types = append(types, p.Type)
		}
	}
	pkts, _ := enc.Flush()
	for _, p := range pkts {
		types = append(types, p.Type)
	}
	want := []container.FrameType{'I', 'P', 'B', 'B', 'P', 'B', 'B'}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("coding order %c, want %c", types, want)
		}
	}
}

func TestMultiRefConfigurations(t *testing.T) {
	for _, refs := range []int{1, 2, 4} {
		cfg := codec.Default(96, 80)
		cfg.Refs = refs
		cfg.BFrames = 0
		inputs, decoded, _ := encodeDecode(t, cfg, seqgen.PedestrianArea, 6, kernel.Scalar, kernel.Scalar)
		if len(decoded) != len(inputs) {
			t.Fatalf("refs=%d: decoded %d frames", refs, len(decoded))
		}
		for i := range decoded {
			if psnr := metrics.PSNRFrames(inputs[i], decoded[i]); psnr < 25 {
				t.Errorf("refs=%d frame %d: PSNR %.2f", refs, i, psnr)
			}
		}
	}
}

func TestQualityBitrateTradeoff(t *testing.T) {
	run := func(q int) (float64, int) {
		cfg := codec.Default(96, 80)
		cfg.Q = q
		inputs, decoded, bits := encodeDecode(t, cfg, seqgen.PedestrianArea, 4, kernel.Scalar, kernel.Scalar)
		sum := 0.0
		for i := range decoded {
			sum += metrics.PSNRFrames(inputs[i], decoded[i])
		}
		return sum / float64(len(decoded)), bits
	}
	psnrLo, bitsLo := run(2)
	psnrHi, bitsHi := run(20)
	if psnrLo <= psnrHi {
		t.Errorf("PSNR at Q=2 (%.2f) must exceed Q=20 (%.2f)", psnrLo, psnrHi)
	}
	if bitsLo <= bitsHi {
		t.Errorf("bits at Q=2 (%d) must exceed Q=20 (%d)", bitsLo, bitsHi)
	}
}

func TestDecoderErrors(t *testing.T) {
	hdr := container.Header{Codec: container.CodecH264, Width: 96, Height: 80, FPSNum: 25, FPSDen: 1}
	dec, err := NewDecoder(hdr, kernel.Scalar)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Decode(container.Packet{Type: container.FrameP, Payload: []byte{26, 0}}); err == nil {
		t.Error("P without reference must fail")
	}
	if _, err := dec.Decode(container.Packet{Type: container.FrameI, Payload: nil}); err == nil {
		t.Error("empty packet must fail")
	}
	if _, err := dec.Decode(container.Packet{Type: container.FrameI, Payload: []byte{99, 0, 0, 0, 0, 0}}); err == nil {
		t.Error("invalid QP must fail")
	}
	if _, err := NewDecoder(container.Header{Codec: container.CodecMPEG2, Width: 96, Height: 80}, kernel.Scalar); err == nil {
		t.Error("wrong codec must be rejected")
	}
}

func TestDeblockingSmoothsBlockEdges(t *testing.T) {
	// Deblocking must reduce the mean step across 4×4 boundaries relative
	// to the unfiltered reconstruction on a blocky low-rate encode.
	cfg := codec.Default(96, 80)
	cfg.Q = 25 // very coarse → visible blocking
	inputs, decoded, _ := encodeDecode(t, cfg, seqgen.BlueSky, 2, kernel.Scalar, kernel.Scalar)
	_ = inputs
	f := decoded[1]
	edgeStep, innerStep := 0, 0
	edgeN, innerN := 0, 0
	for r := 0; r < f.Height; r++ {
		for c := 1; c < f.Width; c++ {
			d := int(f.LumaAt(r, c)) - int(f.LumaAt(r, c-1))
			if d < 0 {
				d = -d
			}
			if c%4 == 0 {
				edgeStep += d
				edgeN++
			} else {
				innerStep += d
				innerN++
			}
		}
	}
	edgeAvg := float64(edgeStep) / float64(edgeN)
	innerAvg := float64(innerStep) / float64(innerN)
	// Without deblocking, block-edge steps are typically ≥2× inner steps at
	// this rate; with the filter they should be comparable.
	if edgeAvg > 3*innerAvg {
		t.Errorf("block edges remain sharp: edge %.2f vs inner %.2f", edgeAvg, innerAvg)
	}
}

func TestAlphaBetaMonotone(t *testing.T) {
	prevA, prevB := int32(-1), int32(-1)
	for qp := 0; qp <= 51; qp++ {
		a, b := alphaBeta(qp)
		if a < prevA || b < prevB {
			t.Fatalf("thresholds not monotone at qp=%d", qp)
		}
		prevA, prevB = a, b
	}
}

func TestAvailI4(t *testing.T) {
	w4 := 24 // 96 px wide
	// Top-left block of the picture: nothing available.
	av := availI4(0, 0, w4, 0)
	if av.left || av.top || av.topRight {
		t.Fatalf("corner availability wrong: %+v", av)
	}
	// Block at (1,1) inside MB 0: everything available (top-right is (2,0),
	// inside the same MB).
	av = availI4(1, 1, w4, 0)
	if !av.left || !av.top || !av.topRight {
		t.Fatalf("(1,1) availability wrong: %+v", av)
	}
	// Block at (3,1): top-right (4,1-1=0)... (4,0) is in the next MB but the
	// row above is in the same MB row band → unavailable.
	av = availI4(3, 1, w4, 0)
	if av.topRight {
		t.Fatalf("(3,1) top-right must be unavailable: %+v", av)
	}
	// Block at (3,4): top-right (4,3) is in the MB row above → available.
	av = availI4(3, 4, w4, 0)
	if !av.topRight {
		t.Fatalf("(3,4) top-right must be available: %+v", av)
	}
}
