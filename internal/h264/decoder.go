package h264

import (
	"fmt"

	"hdvideobench/internal/bitstream"
	"hdvideobench/internal/codec"
	"hdvideobench/internal/container"
	"hdvideobench/internal/dct"
	"hdvideobench/internal/entropy"
	"hdvideobench/internal/frame"
	"hdvideobench/internal/interp"
	"hdvideobench/internal/kernel"
	"hdvideobench/internal/motion"
	"hdvideobench/internal/quant"
)

// Decoder is the H.264-class decoder (the paper's FFmpeg-H.264 role).
type Decoder struct {
	hdr  container.Header
	kern kernel.Set
	qp   int
	qpc  int

	refs    codec.RefList
	reorder codec.DisplayReorderer
	meta    *frameMeta
	ctx     *contexts

	qpel  interp.QPel
	predY [256]byte
	predC [2][64]byte

	bwdPredRow motion.MV
}

// NewDecoder returns a decoder for the stream described by hdr.
func NewDecoder(hdr container.Header, kern kernel.Set) (*Decoder, error) {
	if hdr.Codec != container.CodecH264 {
		return nil, fmt.Errorf("h264: stream codec is %v", hdr.Codec)
	}
	if err := validateSize(hdr); err != nil {
		return nil, err
	}
	refs := int(hdr.Flags>>flagRefsShift) & flagRefsMask
	if refs < 1 {
		refs = 1
	}
	return &Decoder{
		hdr:  hdr,
		kern: kern,
		refs: codec.RefList{Max: refs},
		meta: newFrameMeta(hdr.Width, hdr.Height),
	}, nil
}

// Decode implements codec.Decoder.
func (d *Decoder) Decode(p container.Packet) ([]*frame.Frame, error) {
	recon, err := d.decodeFrame(p)
	if err != nil {
		return nil, err
	}
	return d.reorder.Add(recon), nil
}

// Flush implements codec.Decoder.
func (d *Decoder) Flush() []*frame.Frame { return d.reorder.Flush() }

func (d *Decoder) decodeFrame(p container.Packet) (*frame.Frame, error) {
	if p.Type == container.FrameI {
		// IDR semantics: mirror the encoder's reference-list reset.
		d.refs.Reset()
	}
	if p.Type == container.FrameP && d.refs.Len() < 1 {
		return nil, fmt.Errorf("h264: P frame before any reference")
	}
	if p.Type == container.FrameB && d.refs.Len() < 2 {
		return nil, fmt.Errorf("h264: B frame without two references")
	}
	if len(p.Payload) < 1 {
		return nil, fmt.Errorf("h264: empty packet")
	}
	// Payload layout: one QP byte, then the entropy-coded macroblock data.
	d.qp = int(p.Payload[0])
	if d.qp > 51 {
		return nil, fmt.Errorf("h264: invalid QP %d", d.qp)
	}
	d.qpc = quant.H264ChromaQP(d.qp)

	var r symReader
	if d.hdr.Flags&flagVLC != 0 {
		r = vlcReader{bitstream.NewReader(p.Payload[1:])}
	} else {
		r = cabacReader{entropy.NewDecoder(p.Payload[1:])}
	}
	d.ctx = newContexts()
	d.meta.reset()

	recon := frame.NewPadded(d.hdr.Width, d.hdr.Height, codec.RefPad)
	recon.PTS = p.DisplayIndex

	mbCols := d.hdr.Width / 16
	mbRows := d.hdr.Height / 16
	for mby := 0; mby < mbRows; mby++ {
		d.bwdPredRow = motion.MV{}
		for mbx := 0; mbx < mbCols; mbx++ {
			var err error
			switch p.Type {
			case container.FrameI:
				err = d.decodeIMB(r, recon, mbx, mby)
			case container.FrameP:
				err = d.decodePMB(r, recon, mbx, mby)
			case container.FrameB:
				err = d.decodeBMB(r, recon, mbx, mby)
			default:
				err = fmt.Errorf("h264: unknown frame type %c", p.Type)
			}
			if err != nil {
				return nil, err
			}
		}
	}
	if err := r.err(); err != nil {
		return nil, fmt.Errorf("h264: bitstream overrun: %w", err)
	}

	deblockFrame(recon, d.meta, d.qp)
	recon.ExtendBorders()
	if p.Type != container.FrameB {
		d.refs.Add(recon)
	}
	return recon, nil
}

// --- residual ----------------------------------------------------------------

// readResidual parses CBP and coefficients into md.
func (d *Decoder) readResidual(r symReader, md *mbData, i16 bool) error {
	md.cbpLuma = 0
	for g := 0; g < 4; g++ {
		md.cbpLuma |= r.bit(&d.ctx.cbpLuma[g]) << g
	}
	md.cbpChroma = int(r.ue(d.ctx.chromaCBP[:], 2))
	if md.cbpChroma > 2 {
		return fmt.Errorf("h264: invalid chroma CBP %d", md.cbpChroma)
	}

	var scan [16]int32
	if i16 {
		md.lumaDCNZ = readCoeffs(r, &d.ctx.cbf[catLumaDC], d.ctx.sigDC[:], d.ctx.lastDC[:], d.ctx.levelDC[:], scan[:16])
		unscanBlock4(scan[:16], 0, &md.lumaDC)
	}
	start := 0
	if i16 {
		start = 1
	}
	for bi := 0; bi < 16; bi++ {
		md.luma[bi] = [16]int32{}
		md.lumaNZ[bi] = false
	}
	for g := 0; g < 4; g++ {
		if md.cbpLuma&(1<<g) == 0 {
			continue
		}
		for _, bi := range lumaGroupBlocks[g] {
			nz := readCoeffs(r, &d.ctx.cbf[catLuma], d.ctx.sig[:], d.ctx.last[:], d.ctx.level[:], scan[:16-start])
			unscanBlock4(scan[:16-start], start, &md.luma[bi])
			md.lumaNZ[bi] = nz
		}
	}
	for pl := 0; pl < 2; pl++ {
		md.chromaDC[pl] = [4]int32{}
		for ci := 0; ci < 4; ci++ {
			md.chroma[pl][ci] = [16]int32{}
		}
	}
	if md.cbpChroma >= 1 {
		for pl := 0; pl < 2; pl++ {
			var dcs [4]int32
			readCoeffs(r, &d.ctx.cbf[catChromaDC], d.ctx.sigDC[:], d.ctx.lastDC[:], d.ctx.levelDC[:], dcs[:])
			md.chromaDC[pl] = dcs
		}
	}
	if md.cbpChroma == 2 {
		for pl := 0; pl < 2; pl++ {
			for ci := 0; ci < 4; ci++ {
				readCoeffs(r, &d.ctx.cbf[catChromaAC], d.ctx.sig[:], d.ctx.last[:], d.ctx.level[:], scan[:15])
				unscanBlock4(scan[:15], 1, &md.chroma[pl][ci])
			}
		}
	}
	return r.err()
}

// reconLumaInter mirrors the encoder's inter luma reconstruction.
func (d *Decoder) reconLumaInter(recon *frame.Frame, px, py int, md *mbData) {
	for bi := 0; bi < 16; bi++ {
		bx, by := 4*(bi%4), 4*(bi/4)
		ro := recon.YOrigin + (py+by)*recon.YStride + px + bx
		po := by*16 + bx
		if md.lumaNZ[bi] {
			blk := md.luma[bi]
			quant.H264Dequant(&blk, d.qp)
			dct.Inverse4(&blk)
			codec.Add4Clip(recon.Y, ro, recon.YStride, d.predY[:], po, 16, &blk)
		} else {
			for r := 0; r < 4; r++ {
				copy(recon.Y[ro+r*recon.YStride:ro+r*recon.YStride+4],
					d.predY[po+r*16:po+r*16+4])
			}
		}
	}
}

func (d *Decoder) reconChroma(recon *frame.Frame, px, py int, md *mbData) {
	cx, cy := px/2, py/2
	for pl := 0; pl < 2; pl++ {
		plane := recon.Cb
		if pl == 1 {
			plane = recon.Cr
		}
		dc := md.chromaDC[pl]
		if md.cbpChroma >= 1 {
			dct.Hadamard2(&dc)
			quant.H264DequantChromaDC(&dc, d.qpc)
		} else {
			dc = [4]int32{}
		}
		for ci := 0; ci < 4; ci++ {
			ox, oy := 4*(ci%2), 4*(ci/2)
			ro := recon.COrigin + (cy+oy)*recon.CStride + cx + ox
			po := oy*8 + ox
			blk := md.chroma[pl][ci]
			if md.cbpChroma == 2 {
				quant.H264Dequant(&blk, d.qpc)
			} else {
				blk = [16]int32{}
			}
			blk[0] = dc[ci]
			if md.cbpChroma >= 1 {
				dct.Inverse4(&blk)
				codec.Add4Clip(plane, ro, recon.CStride, d.predC[pl][:], po, 8, &blk)
			} else {
				for r := 0; r < 4; r++ {
					copy(plane[ro+r*recon.CStride:ro+r*recon.CStride+4],
						d.predC[pl][po+r*8:po+r*8+4])
				}
			}
		}
	}
}

func (d *Decoder) updateMetaNZ(px, py int, md *mbData, i16 bool) {
	bx4, by4 := px/4, py/4
	for bi := 0; bi < 16; bi++ {
		nz := md.lumaNZ[bi]
		if i16 && md.lumaDCNZ {
			nz = true
		}
		d.meta.nz[(by4+bi/4)*d.meta.w4+bx4+bi%4] = nz
	}
}

// --- intra -------------------------------------------------------------------

// reconI16 mirrors encodeI16Into's reconstruction.
func (d *Decoder) reconI16(recon *frame.Frame, px, py int, md *mbData) {
	availLeft := px > 0
	availTop := py > 0
	predI16(d.predY[:], recon.Y, recon.YOrigin, recon.YStride, px, py, md.i16Mode, availLeft, availTop)
	dcRec := md.lumaDC
	dct.Hadamard4(&dcRec, false)
	quant.H264DequantDC(&dcRec, d.qp)
	for bi := 0; bi < 16; bi++ {
		bx, by := 4*(bi%4), 4*(bi/4)
		ro := recon.YOrigin + (py+by)*recon.YStride + px + bx
		po := by*16 + bx
		blk := md.luma[bi]
		quant.H264Dequant(&blk, d.qp)
		blk[0] = dcRec[bi]
		dct.Inverse4(&blk)
		codec.Add4Clip(recon.Y, ro, recon.YStride, d.predY[:], po, 16, &blk)
	}
}

// reconI4 mirrors encodeI4Into's sequential reconstruction.
func (d *Decoder) reconI4(recon *frame.Frame, px, py int, md *mbData) {
	var pred [16]byte
	for bi := 0; bi < 16; bi++ {
		bx, by := 4*(bi%4), 4*(bi/4)
		gx4, gy4 := (px+bx)/4, (py+by)/4
		av := availI4(gx4, gy4, d.meta.w4)
		predI4(pred[:], 4, recon.Y, recon.YOrigin, recon.YStride, px+bx, py+by, md.i4Modes[bi], av)
		ro := recon.YOrigin + (py+by)*recon.YStride + px + bx
		blk := md.luma[bi]
		quant.H264Dequant(&blk, d.qp)
		dct.Inverse4(&blk)
		codec.Add4Clip(recon.Y, ro, recon.YStride, pred[:], 0, 4, &blk)
	}
}

func (d *Decoder) intraChromaPred(recon *frame.Frame, px, py int) {
	cx, cy := px/2, py/2
	predChromaDC(d.predC[0][:], recon.Cb, recon.COrigin, recon.CStride, cx, cy, px > 0, py > 0)
	predChromaDC(d.predC[1][:], recon.Cr, recon.COrigin, recon.CStride, cx, cy, px > 0, py > 0)
}

func (d *Decoder) decodeIMB(r symReader, recon *frame.Frame, mbx, mby int) error {
	px, py := mbx*16, mby*16
	var md mbData
	isI4 := r.bit(&d.ctx.mbType[0]) == 1
	if isI4 {
		md.mode = mI4x4
		for bi := 0; bi < 16; bi++ {
			md.i4Modes[bi] = int(r.ue(d.ctx.i4Mode[:], 3))
			if md.i4Modes[bi] >= numI4Modes {
				return fmt.Errorf("h264: invalid I4 mode %d", md.i4Modes[bi])
			}
		}
	} else {
		md.mode = mI16x16
		md.i16Mode = int(r.ue(d.ctx.i16Mode[:], 2))
		if md.i16Mode >= numI16Modes {
			return fmt.Errorf("h264: invalid I16 mode %d", md.i16Mode)
		}
	}
	if err := d.readResidual(r, &md, md.mode == mI16x16); err != nil {
		return err
	}
	if md.mode == mI4x4 {
		d.reconI4(recon, px, py, &md)
	} else {
		d.reconI16(recon, px, py, &md)
	}
	d.intraChromaPred(recon, px, py)
	d.reconChroma(recon, px, py, &md)
	d.meta.setBlock(px/4, py/4, 4, 4, motion.MV{}, -1)
	d.updateMetaNZ(px, py, &md, md.mode == mI16x16)
	return nil
}

// --- inter -------------------------------------------------------------------

// mcLumaPart motion-compensates one luma partition into predY.
func (d *Decoder) mcLumaPart(ref *frame.Frame, px, py, ox, oy, w, h int, mv motion.MV) {
	ix, fx := splitQuarter(int(mv.X))
	iy, fy := splitQuarter(int(mv.Y))
	ix = clampMVToWindow(ix, px+ox, d.hdr.Width, w)
	iy = clampMVToWindow(iy, py+oy, d.hdr.Height, h)
	so := ref.YOrigin + (py+oy+iy)*ref.YStride + px + ox + ix
	d.qpel.Luma(d.predY[oy*16+ox:], 16, ref.Y, so, ref.YStride, w, h, fx, fy, d.kern)
}

func (d *Decoder) mcChromaPart(ref *frame.Frame, px, py, ox, oy, w, h int, mv motion.MV) {
	cx := (px + ox) / 2
	cy := (py + oy) / 2
	ix := int(mv.X) >> 3
	iy := int(mv.Y) >> 3
	dx := int(mv.X) & 7
	dy := int(mv.Y) & 7
	ix = clampMVToWindow(ix, cx, d.hdr.Width/2, w/2)
	iy = clampMVToWindow(iy, cy, d.hdr.Height/2, h/2)
	so := ref.COrigin + (cy+iy)*ref.CStride + cx + ix
	do := (oy/2)*8 + ox/2
	interp.ChromaBilin(d.predC[0][do:], 8, ref.Cb[so:], ref.CStride, w/2, h/2, dx, dy, d.kern)
	interp.ChromaBilin(d.predC[1][do:], 8, ref.Cr[so:], ref.CStride, w/2, h/2, dx, dy, d.kern)
}

func (d *Decoder) decodePMB(r symReader, recon *frame.Frame, mbx, mby int) error {
	px, py := mbx*16, mby*16
	bx4, by4 := px/4, py/4

	if r.bit(&d.ctx.skip[0]) == 1 {
		mvp := d.meta.predictMV(bx4, by4, 4)
		ref := d.refs.Get(0)
		d.mcLumaPart(ref, px, py, 0, 0, 16, 16, mvp)
		d.mcChromaPart(ref, px, py, 0, 0, 16, 16, mvp)
		var md mbData
		d.reconLumaInter(recon, px, py, &md)
		d.reconChroma(recon, px, py, &md)
		d.meta.setBlock(bx4, by4, 4, 4, mvp, 0)
		d.updateMetaNZ(px, py, &md, false)
		return nil
	}

	mode := int(r.ue(d.ctx.mbType[:], 3))
	switch mode {
	case mI16x16:
		var md mbData
		md.mode = mI16x16
		md.i16Mode = int(r.ue(d.ctx.i16Mode[:], 2))
		if md.i16Mode >= numI16Modes {
			return fmt.Errorf("h264: invalid I16 mode %d", md.i16Mode)
		}
		if err := d.readResidual(r, &md, true); err != nil {
			return err
		}
		d.reconI16(recon, px, py, &md)
		d.intraChromaPred(recon, px, py)
		d.reconChroma(recon, px, py, &md)
		d.meta.setBlock(bx4, by4, 4, 4, motion.MV{}, -1)
		d.updateMetaNZ(px, py, &md, true)
		return nil
	case mP16x16, mP16x8, mP8x16, mP8x8:
		refIdx := 0
		if d.refs.Len() > 1 {
			refIdx = int(r.ue(d.ctx.refIdx[:], 2))
		}
		if refIdx >= d.refs.Len() {
			return fmt.Errorf("h264: reference %d out of range", refIdx)
		}
		ref := d.refs.Get(refIdx)
		parts := partGeom[mode]
		var md mbData
		md.mode = mode
		md.ref = int8(refIdx)
		for pi, g := range parts {
			pmvp := d.meta.predictMV(bx4+g[0]/4, by4+g[1]/4, g[2]/4)
			mv := motion.MV{
				X: int16(int32(pmvp.X) + r.se(d.ctx.mvd[:], 8)),
				Y: int16(int32(pmvp.Y) + r.se(d.ctx.mvd[:], 8)),
			}
			md.mvs[pi] = mv
			d.meta.setBlock(bx4+g[0]/4, by4+g[1]/4, g[2]/4, g[3]/4, mv, int8(refIdx))
			d.mcLumaPart(ref, px, py, g[0], g[1], g[2], g[3], mv)
			d.mcChromaPart(ref, px, py, g[0], g[1], g[2], g[3], mv)
		}
		if err := d.readResidual(r, &md, false); err != nil {
			return err
		}
		d.reconLumaInter(recon, px, py, &md)
		d.reconChroma(recon, px, py, &md)
		d.updateMetaNZ(px, py, &md, false)
		return nil
	}
	return fmt.Errorf("h264: invalid P macroblock mode %d", mode)
}

func (d *Decoder) decodeBMB(r symReader, recon *frame.Frame, mbx, mby int) error {
	px, py := mbx*16, mby*16
	bx4, by4 := px/4, py/4
	fwdRef := d.refs.Get(1)
	bwdRef := d.refs.Get(0)

	if r.bit(&d.ctx.skip[0]) == 1 {
		mvp := d.meta.predictMV(bx4, by4, 4)
		d.mcLumaPart(fwdRef, px, py, 0, 0, 16, 16, mvp)
		d.mcChromaPart(fwdRef, px, py, 0, 0, 16, 16, mvp)
		var md mbData
		d.reconLumaInter(recon, px, py, &md)
		d.reconChroma(recon, px, py, &md)
		d.meta.setBlock(bx4, by4, 4, 4, mvp, 0)
		d.updateMetaNZ(px, py, &md, false)
		return nil
	}

	mode := int(r.ue(d.ctx.mbType[:], 3))
	if mode == mBI16x16 {
		var md mbData
		md.mode = mI16x16
		md.i16Mode = int(r.ue(d.ctx.i16Mode[:], 2))
		if md.i16Mode >= numI16Modes {
			return fmt.Errorf("h264: invalid I16 mode %d", md.i16Mode)
		}
		if err := d.readResidual(r, &md, true); err != nil {
			return err
		}
		d.reconI16(recon, px, py, &md)
		d.intraChromaPred(recon, px, py)
		d.reconChroma(recon, px, py, &md)
		d.meta.setBlock(bx4, by4, 4, 4, motion.MV{}, -1)
		d.updateMetaNZ(px, py, &md, true)
		return nil
	}
	if mode > mBBi {
		return fmt.Errorf("h264: invalid B macroblock mode %d", mode)
	}

	mvpF := d.meta.predictMV(bx4, by4, 4)
	var fwdMV, bwdMV motion.MV
	if mode == mBFwd || mode == mBBi {
		fwdMV = motion.MV{
			X: int16(int32(mvpF.X) + r.se(d.ctx.mvd[:], 8)),
			Y: int16(int32(mvpF.Y) + r.se(d.ctx.mvd[:], 8)),
		}
	}
	if mode == mBBwd || mode == mBBi {
		bwdMV = motion.MV{
			X: int16(int32(d.bwdPredRow.X) + r.se(d.ctx.mvd[:], 8)),
			Y: int16(int32(d.bwdPredRow.Y) + r.se(d.ctx.mvd[:], 8)),
		}
		d.bwdPredRow = bwdMV
	}

	switch mode {
	case mBFwd:
		d.mcLumaPart(fwdRef, px, py, 0, 0, 16, 16, fwdMV)
		d.mcChromaPart(fwdRef, px, py, 0, 0, 16, 16, fwdMV)
		d.meta.setBlock(bx4, by4, 4, 4, fwdMV, 0)
	case mBBwd:
		d.mcLumaPart(bwdRef, px, py, 0, 0, 16, 16, bwdMV)
		d.mcChromaPart(bwdRef, px, py, 0, 0, 16, 16, bwdMV)
		d.meta.setBlock(bx4, by4, 4, 4, bwdMV, 0)
	case mBBi:
		var alt [256]byte
		d.mcLumaPart(fwdRef, px, py, 0, 0, 16, 16, fwdMV)
		copy(alt[:], d.predY[:])
		d.mcLumaPart(bwdRef, px, py, 0, 0, 16, 16, bwdMV)
		interp.Avg(d.predY[:], 16, alt[:], 16, 16, 16, d.kern)

		var cbF, crF [64]byte
		d.mcChromaPart(fwdRef, px, py, 0, 0, 16, 16, fwdMV)
		copy(cbF[:], d.predC[0][:])
		copy(crF[:], d.predC[1][:])
		d.mcChromaPart(bwdRef, px, py, 0, 0, 16, 16, bwdMV)
		interp.Avg(d.predC[0][:], 8, cbF[:], 8, 8, 8, d.kern)
		interp.Avg(d.predC[1][:], 8, crF[:], 8, 8, 8, d.kern)
		d.meta.setBlock(bx4, by4, 4, 4, fwdMV, 0)
	}

	var md mbData
	md.mode = mode
	if err := d.readResidual(r, &md, false); err != nil {
		return err
	}
	d.reconLumaInter(recon, px, py, &md)
	d.reconChroma(recon, px, py, &md)
	d.updateMetaNZ(px, py, &md, false)
	return nil
}
