package h264

import (
	"fmt"

	"hdvideobench/internal/bitstream"
	"hdvideobench/internal/codec"
	"hdvideobench/internal/container"
	"hdvideobench/internal/dct"
	"hdvideobench/internal/entropy"
	"hdvideobench/internal/frame"
	"hdvideobench/internal/interp"
	"hdvideobench/internal/kernel"
	"hdvideobench/internal/motion"
	"hdvideobench/internal/quant"
)

// Decoder is the H.264-class decoder (the paper's FFmpeg-H.264 role).
//
// Each frame payload carries a slice table (see internal/codec); every
// slice has its own entropy reader and context models and decodes its
// macroblock rows independently, so the slices of one frame run
// concurrently on the SliceRunner. Deblocking is a frame-level pass
// after all slices have reconstructed, mirroring the encoder.
type Decoder struct {
	hdr    container.Header
	kern   kernel.Set
	runner codec.SliceRunner
	qp     int
	qpc    int

	refs    codec.RefList
	reorder codec.DisplayReorderer
	meta    *frameMeta

	slices []*sliceDec
	errs   []error
}

// sliceDec carries the per-slice decoder state.
type sliceDec struct {
	d   *Decoder
	r   symReader
	br  *bitstream.Reader // VLC backend, reused across frames
	ed  *entropy.Decoder  // CABAC backend, reused across frames
	ctx *contexts

	qpel  interp.QPel
	predY [256]byte
	predC [2][64]byte

	bwdPredRow motion.MV

	top4  int
	topPx int

	qp, qpc int // this slice's quantizers (frame QP, or FlagSliceQ override)
}

// NewDecoder returns a decoder for the stream described by hdr.
func NewDecoder(hdr container.Header, kern kernel.Set) (*Decoder, error) {
	if hdr.Codec != container.CodecH264 {
		return nil, fmt.Errorf("h264: stream codec is %v", hdr.Codec)
	}
	if err := validateSize(hdr); err != nil {
		return nil, err
	}
	refs := int(hdr.Flags>>flagRefsShift) & flagRefsMask
	if refs < 1 {
		refs = 1
	}
	return &Decoder{
		hdr:  hdr,
		kern: kern,
		refs: codec.RefList{Max: refs},
		meta: newFrameMeta(hdr.Width, hdr.Height),
	}, nil
}

// SetSliceRunner implements codec.SliceScheduler: per-frame slice jobs
// run on r (nil restores the serial default). Decoded pixels do not
// depend on the runner.
func (d *Decoder) SetSliceRunner(r codec.SliceRunner) { d.runner = r }

// Decode implements codec.Decoder.
func (d *Decoder) Decode(p container.Packet) ([]*frame.Frame, error) {
	recon, err := d.decodeFrame(p)
	if err != nil {
		return nil, err
	}
	return d.reorder.Add(recon), nil
}

// Flush implements codec.Decoder.
func (d *Decoder) Flush() []*frame.Frame { return d.reorder.Flush() }

func (d *Decoder) grow(n int) {
	for len(d.slices) < n {
		d.slices = append(d.slices, &sliceDec{d: d, ctx: newContexts()})
	}
	if cap(d.errs) < n {
		d.errs = make([]error, n)
	}
	d.errs = d.errs[:n]
}

func (d *Decoder) decodeFrame(p container.Packet) (*frame.Frame, error) {
	if p.Type == container.FrameI {
		// IDR semantics: mirror the encoder's reference-list reset.
		d.refs.Reset()
	}
	if p.Type == container.FrameP && d.refs.Len() < 1 {
		return nil, fmt.Errorf("h264: P frame before any reference")
	}
	if p.Type == container.FrameB && d.refs.Len() < 2 {
		return nil, fmt.Errorf("h264: B frame without two references")
	}
	switch p.Type {
	case container.FrameI, container.FrameP, container.FrameB:
	default:
		return nil, fmt.Errorf("h264: unknown frame type %c", p.Type)
	}
	if len(p.Payload) < 1 {
		return nil, fmt.Errorf("h264: empty packet")
	}
	// Payload layout: one QP byte, the slice table, then the per-slice
	// entropy-coded macroblock data.
	d.qp = int(p.Payload[0])
	if d.qp > 51 {
		return nil, fmt.Errorf("h264: invalid QP %d", d.qp)
	}
	d.qpc = quant.H264ChromaQP(d.qp)

	spans, off, err := codec.ParseSliceTable(p.Payload[1:], d.hdr.Height/16)
	if err != nil {
		return nil, fmt.Errorf("h264: %w", err)
	}
	body := p.Payload[1+off:]
	d.grow(len(spans))
	d.meta.reset()

	recon := frame.NewPadded(d.hdr.Width, d.hdr.Height, codec.RefPad)
	recon.PTS = p.DisplayIndex

	sliceQ := d.hdr.Flags&container.FlagSliceQ != 0
	codec.RunSlices(d.runner, len(spans), func(i int) {
		lo := 0
		for _, s := range spans[:i] {
			lo += s.Size
		}
		bits := body[lo : lo+spans[i].Size]
		s := d.slices[i]
		s.qp, s.qpc = d.qp, d.qpc
		if sliceQ {
			// FlagSliceQ streams open every slice body with its own QP
			// byte, overriding the frame QP for this slice.
			if len(bits) < 1 {
				d.errs[i] = fmt.Errorf("empty slice body")
				return
			}
			s.qp = int(bits[0])
			if s.qp > 51 {
				d.errs[i] = fmt.Errorf("invalid slice QP %d", s.qp)
				return
			}
			s.qpc = quant.H264ChromaQP(s.qp)
			bits = bits[1:]
		}
		d.errs[i] = s.decode(bits, recon, p.Type, spans[i])
	})
	for i, err := range d.errs {
		if err != nil {
			return nil, fmt.Errorf("h264: slice %d (rows %d-%d): %w",
				i, spans[i].Row, spans[i].Row+spans[i].Rows-1, err)
		}
	}

	deblockFrame(recon, d.meta, d.qp)
	recon.ExtendBorders()
	if p.Type != container.FrameB {
		d.refs.Add(recon)
	}
	return recon, nil
}

// decode parses one slice's entropy stream into its macroblock rows.
func (s *sliceDec) decode(buf []byte, recon *frame.Frame, ftype container.FrameType, span codec.SliceSpan) error {
	s.top4 = span.Row * 4
	s.topPx = span.Row * 16
	if s.d.hdr.Flags&flagVLC != 0 {
		if s.br == nil {
			s.br = bitstream.NewReader(buf)
		} else {
			s.br.Reset(buf)
		}
		s.r = vlcReader{s.br}
	} else {
		if s.ed == nil {
			s.ed = entropy.NewDecoder(buf)
		} else {
			s.ed.Reset(buf)
		}
		s.r = cabacReader{s.ed}
	}
	s.ctx.reset()

	mbCols := s.d.hdr.Width / 16
	for mby := span.Row; mby < span.Row+span.Rows; mby++ {
		s.bwdPredRow = motion.MV{}
		for mbx := 0; mbx < mbCols; mbx++ {
			var err error
			switch ftype {
			case container.FrameI:
				err = s.decodeIMB(recon, mbx, mby)
			case container.FrameP:
				err = s.decodePMB(recon, mbx, mby)
			default:
				err = s.decodeBMB(recon, mbx, mby)
			}
			if err != nil {
				return err
			}
		}
	}
	if err := s.r.err(); err != nil {
		return fmt.Errorf("bitstream overrun: %w", err)
	}
	return nil
}

// --- residual ----------------------------------------------------------------

// readResidual parses CBP and coefficients into md.
func (s *sliceDec) readResidual(md *mbData, i16 bool) error {
	r := s.r
	md.cbpLuma = 0
	for g := 0; g < 4; g++ {
		md.cbpLuma |= r.bit(&s.ctx.cbpLuma[g]) << g
	}
	md.cbpChroma = int(r.ue(s.ctx.chromaCBP[:], 2))
	if md.cbpChroma > 2 {
		return fmt.Errorf("invalid chroma CBP %d", md.cbpChroma)
	}

	var scan [16]int32
	if i16 {
		md.lumaDCNZ = readCoeffs(r, &s.ctx.cbf[catLumaDC], s.ctx.sigDC[:], s.ctx.lastDC[:], s.ctx.levelDC[:], scan[:16])
		unscanBlock4(scan[:16], 0, &md.lumaDC)
	}
	start := 0
	if i16 {
		start = 1
	}
	for bi := 0; bi < 16; bi++ {
		md.luma[bi] = [16]int32{}
		md.lumaNZ[bi] = false
	}
	for g := 0; g < 4; g++ {
		if md.cbpLuma&(1<<g) == 0 {
			continue
		}
		for _, bi := range lumaGroupBlocks[g] {
			nz := readCoeffs(r, &s.ctx.cbf[catLuma], s.ctx.sig[:], s.ctx.last[:], s.ctx.level[:], scan[:16-start])
			unscanBlock4(scan[:16-start], start, &md.luma[bi])
			md.lumaNZ[bi] = nz
		}
	}
	for pl := 0; pl < 2; pl++ {
		md.chromaDC[pl] = [4]int32{}
		for ci := 0; ci < 4; ci++ {
			md.chroma[pl][ci] = [16]int32{}
		}
	}
	if md.cbpChroma >= 1 {
		for pl := 0; pl < 2; pl++ {
			var dcs [4]int32
			readCoeffs(r, &s.ctx.cbf[catChromaDC], s.ctx.sigDC[:], s.ctx.lastDC[:], s.ctx.levelDC[:], dcs[:])
			md.chromaDC[pl] = dcs
		}
	}
	if md.cbpChroma == 2 {
		for pl := 0; pl < 2; pl++ {
			for ci := 0; ci < 4; ci++ {
				readCoeffs(r, &s.ctx.cbf[catChromaAC], s.ctx.sig[:], s.ctx.last[:], s.ctx.level[:], scan[:15])
				unscanBlock4(scan[:15], 1, &md.chroma[pl][ci])
			}
		}
	}
	return r.err()
}

// reconLumaInter mirrors the encoder's inter luma reconstruction.
func (s *sliceDec) reconLumaInter(recon *frame.Frame, px, py int, md *mbData) {
	for bi := 0; bi < 16; bi++ {
		bx, by := 4*(bi%4), 4*(bi/4)
		ro := recon.YOrigin + (py+by)*recon.YStride + px + bx
		po := by*16 + bx
		if md.lumaNZ[bi] {
			blk := md.luma[bi]
			quant.H264Dequant(&blk, s.qp)
			dct.Inverse4(&blk)
			codec.Add4Clip(recon.Y, ro, recon.YStride, s.predY[:], po, 16, &blk, s.d.kern)
		} else {
			for r := 0; r < 4; r++ {
				copy(recon.Y[ro+r*recon.YStride:ro+r*recon.YStride+4],
					s.predY[po+r*16:po+r*16+4])
			}
		}
	}
}

func (s *sliceDec) reconChroma(recon *frame.Frame, px, py int, md *mbData) {
	cx, cy := px/2, py/2
	for pl := 0; pl < 2; pl++ {
		plane := recon.Cb
		if pl == 1 {
			plane = recon.Cr
		}
		dc := md.chromaDC[pl]
		if md.cbpChroma >= 1 {
			dct.Hadamard2(&dc)
			quant.H264DequantChromaDC(&dc, s.qpc)
		} else {
			dc = [4]int32{}
		}
		for ci := 0; ci < 4; ci++ {
			ox, oy := 4*(ci%2), 4*(ci/2)
			ro := recon.COrigin + (cy+oy)*recon.CStride + cx + ox
			po := oy*8 + ox
			blk := md.chroma[pl][ci]
			if md.cbpChroma == 2 {
				quant.H264Dequant(&blk, s.qpc)
			} else {
				blk = [16]int32{}
			}
			blk[0] = dc[ci]
			if md.cbpChroma >= 1 {
				dct.Inverse4(&blk)
				codec.Add4Clip(plane, ro, recon.CStride, s.predC[pl][:], po, 8, &blk, s.d.kern)
			} else {
				for r := 0; r < 4; r++ {
					copy(plane[ro+r*recon.CStride:ro+r*recon.CStride+4],
						s.predC[pl][po+r*8:po+r*8+4])
				}
			}
		}
	}
}

func (s *sliceDec) updateMetaNZ(px, py int, md *mbData, i16 bool) {
	m := s.d.meta
	bx4, by4 := px/4, py/4
	for bi := 0; bi < 16; bi++ {
		nz := md.lumaNZ[bi]
		if i16 && md.lumaDCNZ {
			nz = true
		}
		m.nz[(by4+bi/4)*m.w4+bx4+bi%4] = nz
	}
}

// --- intra -------------------------------------------------------------------

// reconI16 mirrors encodeI16Into's reconstruction.
func (s *sliceDec) reconI16(recon *frame.Frame, px, py int, md *mbData) {
	availLeft := px > 0
	availTop := py > s.topPx
	predI16(s.predY[:], recon.Y, recon.YOrigin, recon.YStride, px, py, md.i16Mode, availLeft, availTop)
	dcRec := md.lumaDC
	dct.Hadamard4(&dcRec, false)
	quant.H264DequantDC(&dcRec, s.qp)
	for bi := 0; bi < 16; bi++ {
		bx, by := 4*(bi%4), 4*(bi/4)
		ro := recon.YOrigin + (py+by)*recon.YStride + px + bx
		po := by*16 + bx
		blk := md.luma[bi]
		quant.H264Dequant(&blk, s.qp)
		blk[0] = dcRec[bi]
		dct.Inverse4(&blk)
		codec.Add4Clip(recon.Y, ro, recon.YStride, s.predY[:], po, 16, &blk, s.d.kern)
	}
}

// reconI4 mirrors encodeI4Into's sequential reconstruction.
func (s *sliceDec) reconI4(recon *frame.Frame, px, py int, md *mbData) {
	var pred [16]byte
	for bi := 0; bi < 16; bi++ {
		bx, by := 4*(bi%4), 4*(bi/4)
		gx4, gy4 := (px+bx)/4, (py+by)/4
		av := availI4(gx4, gy4, s.d.meta.w4, s.top4)
		predI4(pred[:], 4, recon.Y, recon.YOrigin, recon.YStride, px+bx, py+by, md.i4Modes[bi], av)
		ro := recon.YOrigin + (py+by)*recon.YStride + px + bx
		blk := md.luma[bi]
		quant.H264Dequant(&blk, s.qp)
		dct.Inverse4(&blk)
		codec.Add4Clip(recon.Y, ro, recon.YStride, pred[:], 0, 4, &blk, s.d.kern)
	}
}

func (s *sliceDec) intraChromaPred(recon *frame.Frame, px, py int) {
	cx, cy := px/2, py/2
	availTop := py > s.topPx
	predChromaDC(s.predC[0][:], recon.Cb, recon.COrigin, recon.CStride, cx, cy, px > 0, availTop)
	predChromaDC(s.predC[1][:], recon.Cr, recon.COrigin, recon.CStride, cx, cy, px > 0, availTop)
}

func (s *sliceDec) decodeIMB(recon *frame.Frame, mbx, mby int) error {
	px, py := mbx*16, mby*16
	var md mbData
	isI4 := s.r.bit(&s.ctx.mbType[0]) == 1
	if isI4 {
		md.mode = mI4x4
		for bi := 0; bi < 16; bi++ {
			md.i4Modes[bi] = int(s.r.ue(s.ctx.i4Mode[:], 3))
			if md.i4Modes[bi] >= numI4Modes {
				return fmt.Errorf("invalid I4 mode %d", md.i4Modes[bi])
			}
		}
	} else {
		md.mode = mI16x16
		md.i16Mode = int(s.r.ue(s.ctx.i16Mode[:], 2))
		if md.i16Mode >= numI16Modes {
			return fmt.Errorf("invalid I16 mode %d", md.i16Mode)
		}
	}
	if err := s.readResidual(&md, md.mode == mI16x16); err != nil {
		return err
	}
	if md.mode == mI4x4 {
		s.reconI4(recon, px, py, &md)
	} else {
		s.reconI16(recon, px, py, &md)
	}
	s.intraChromaPred(recon, px, py)
	s.reconChroma(recon, px, py, &md)
	s.d.meta.setBlock(px/4, py/4, 4, 4, motion.MV{}, -1)
	s.updateMetaNZ(px, py, &md, md.mode == mI16x16)
	return nil
}

// --- inter -------------------------------------------------------------------

// mcLumaPart motion-compensates one luma partition into predY.
func (s *sliceDec) mcLumaPart(ref *frame.Frame, px, py, ox, oy, w, h int, mv motion.MV) {
	ix, fx := splitQuarter(int(mv.X))
	iy, fy := splitQuarter(int(mv.Y))
	ix = clampMVToWindow(ix, px+ox, s.d.hdr.Width, w)
	iy = clampMVToWindow(iy, py+oy, s.d.hdr.Height, h)
	so := ref.YOrigin + (py+oy+iy)*ref.YStride + px + ox + ix
	s.qpel.Luma(s.predY[oy*16+ox:], 16, ref.Y, so, ref.YStride, w, h, fx, fy, s.d.kern)
}

func (s *sliceDec) mcChromaPart(ref *frame.Frame, px, py, ox, oy, w, h int, mv motion.MV) {
	cx := (px + ox) / 2
	cy := (py + oy) / 2
	ix := int(mv.X) >> 3
	iy := int(mv.Y) >> 3
	dx := int(mv.X) & 7
	dy := int(mv.Y) & 7
	ix = clampMVToWindow(ix, cx, s.d.hdr.Width/2, w/2)
	iy = clampMVToWindow(iy, cy, s.d.hdr.Height/2, h/2)
	so := ref.COrigin + (cy+iy)*ref.CStride + cx + ix
	do := (oy/2)*8 + ox/2
	interp.ChromaBilin(s.predC[0][do:], 8, ref.Cb[so:], ref.CStride, w/2, h/2, dx, dy, s.d.kern)
	interp.ChromaBilin(s.predC[1][do:], 8, ref.Cr[so:], ref.CStride, w/2, h/2, dx, dy, s.d.kern)
}

func (s *sliceDec) decodePMB(recon *frame.Frame, mbx, mby int) error {
	px, py := mbx*16, mby*16
	bx4, by4 := px/4, py/4

	if s.r.bit(&s.ctx.skip[0]) == 1 {
		mvp := s.d.meta.predictMV(bx4, by4, 4, s.top4)
		ref := s.d.refs.Get(0)
		s.mcLumaPart(ref, px, py, 0, 0, 16, 16, mvp)
		s.mcChromaPart(ref, px, py, 0, 0, 16, 16, mvp)
		var md mbData
		s.reconLumaInter(recon, px, py, &md)
		s.reconChroma(recon, px, py, &md)
		s.d.meta.setBlock(bx4, by4, 4, 4, mvp, 0)
		s.updateMetaNZ(px, py, &md, false)
		return nil
	}

	mode := int(s.r.ue(s.ctx.mbType[:], 3))
	switch mode {
	case mI16x16:
		var md mbData
		md.mode = mI16x16
		md.i16Mode = int(s.r.ue(s.ctx.i16Mode[:], 2))
		if md.i16Mode >= numI16Modes {
			return fmt.Errorf("invalid I16 mode %d", md.i16Mode)
		}
		if err := s.readResidual(&md, true); err != nil {
			return err
		}
		s.reconI16(recon, px, py, &md)
		s.intraChromaPred(recon, px, py)
		s.reconChroma(recon, px, py, &md)
		s.d.meta.setBlock(bx4, by4, 4, 4, motion.MV{}, -1)
		s.updateMetaNZ(px, py, &md, true)
		return nil
	case mP16x16, mP16x8, mP8x16, mP8x8:
		refIdx := 0
		if s.d.refs.Len() > 1 {
			refIdx = int(s.r.ue(s.ctx.refIdx[:], 2))
		}
		if refIdx >= s.d.refs.Len() {
			return fmt.Errorf("reference %d out of range", refIdx)
		}
		ref := s.d.refs.Get(refIdx)
		parts := partGeom[mode]
		var md mbData
		md.mode = mode
		md.ref = int8(refIdx)
		for pi, g := range parts {
			pmvp := s.d.meta.predictMV(bx4+g[0]/4, by4+g[1]/4, g[2]/4, s.top4)
			mv := motion.MV{
				X: int16(int32(pmvp.X) + s.r.se(s.ctx.mvd[:], 8)),
				Y: int16(int32(pmvp.Y) + s.r.se(s.ctx.mvd[:], 8)),
			}
			md.mvs[pi] = mv
			s.d.meta.setBlock(bx4+g[0]/4, by4+g[1]/4, g[2]/4, g[3]/4, mv, int8(refIdx))
			s.mcLumaPart(ref, px, py, g[0], g[1], g[2], g[3], mv)
			s.mcChromaPart(ref, px, py, g[0], g[1], g[2], g[3], mv)
		}
		if err := s.readResidual(&md, false); err != nil {
			return err
		}
		s.reconLumaInter(recon, px, py, &md)
		s.reconChroma(recon, px, py, &md)
		s.updateMetaNZ(px, py, &md, false)
		return nil
	}
	return fmt.Errorf("invalid P macroblock mode %d", mode)
}

func (s *sliceDec) decodeBMB(recon *frame.Frame, mbx, mby int) error {
	px, py := mbx*16, mby*16
	bx4, by4 := px/4, py/4
	fwdRef := s.d.refs.Get(1)
	bwdRef := s.d.refs.Get(0)

	if s.r.bit(&s.ctx.skip[0]) == 1 {
		mvp := s.d.meta.predictMV(bx4, by4, 4, s.top4)
		s.mcLumaPart(fwdRef, px, py, 0, 0, 16, 16, mvp)
		s.mcChromaPart(fwdRef, px, py, 0, 0, 16, 16, mvp)
		var md mbData
		s.reconLumaInter(recon, px, py, &md)
		s.reconChroma(recon, px, py, &md)
		s.d.meta.setBlock(bx4, by4, 4, 4, mvp, 0)
		s.updateMetaNZ(px, py, &md, false)
		return nil
	}

	mode := int(s.r.ue(s.ctx.mbType[:], 3))
	if mode == mBI16x16 {
		var md mbData
		md.mode = mI16x16
		md.i16Mode = int(s.r.ue(s.ctx.i16Mode[:], 2))
		if md.i16Mode >= numI16Modes {
			return fmt.Errorf("invalid I16 mode %d", md.i16Mode)
		}
		if err := s.readResidual(&md, true); err != nil {
			return err
		}
		s.reconI16(recon, px, py, &md)
		s.intraChromaPred(recon, px, py)
		s.reconChroma(recon, px, py, &md)
		s.d.meta.setBlock(bx4, by4, 4, 4, motion.MV{}, -1)
		s.updateMetaNZ(px, py, &md, true)
		return nil
	}
	if mode > mBBi {
		return fmt.Errorf("invalid B macroblock mode %d", mode)
	}

	mvpF := s.d.meta.predictMV(bx4, by4, 4, s.top4)
	var fwdMV, bwdMV motion.MV
	if mode == mBFwd || mode == mBBi {
		fwdMV = motion.MV{
			X: int16(int32(mvpF.X) + s.r.se(s.ctx.mvd[:], 8)),
			Y: int16(int32(mvpF.Y) + s.r.se(s.ctx.mvd[:], 8)),
		}
	}
	if mode == mBBwd || mode == mBBi {
		bwdMV = motion.MV{
			X: int16(int32(s.bwdPredRow.X) + s.r.se(s.ctx.mvd[:], 8)),
			Y: int16(int32(s.bwdPredRow.Y) + s.r.se(s.ctx.mvd[:], 8)),
		}
		s.bwdPredRow = bwdMV
	}

	switch mode {
	case mBFwd:
		s.mcLumaPart(fwdRef, px, py, 0, 0, 16, 16, fwdMV)
		s.mcChromaPart(fwdRef, px, py, 0, 0, 16, 16, fwdMV)
		s.d.meta.setBlock(bx4, by4, 4, 4, fwdMV, 0)
	case mBBwd:
		s.mcLumaPart(bwdRef, px, py, 0, 0, 16, 16, bwdMV)
		s.mcChromaPart(bwdRef, px, py, 0, 0, 16, 16, bwdMV)
		s.d.meta.setBlock(bx4, by4, 4, 4, bwdMV, 0)
	case mBBi:
		var alt [256]byte
		s.mcLumaPart(fwdRef, px, py, 0, 0, 16, 16, fwdMV)
		copy(alt[:], s.predY[:])
		s.mcLumaPart(bwdRef, px, py, 0, 0, 16, 16, bwdMV)
		interp.Avg(s.predY[:], 16, alt[:], 16, 16, 16, s.d.kern)

		var cbF, crF [64]byte
		s.mcChromaPart(fwdRef, px, py, 0, 0, 16, 16, fwdMV)
		copy(cbF[:], s.predC[0][:])
		copy(crF[:], s.predC[1][:])
		s.mcChromaPart(bwdRef, px, py, 0, 0, 16, 16, bwdMV)
		interp.Avg(s.predC[0][:], 8, cbF[:], 8, 8, 8, s.d.kern)
		interp.Avg(s.predC[1][:], 8, crF[:], 8, 8, 8, s.d.kern)
		s.d.meta.setBlock(bx4, by4, 4, 4, fwdMV, 0)
	}

	var md mbData
	md.mode = mode
	if err := s.readResidual(&md, false); err != nil {
		return err
	}
	s.reconLumaInter(recon, px, py, &md)
	s.reconChroma(recon, px, py, &md)
	s.updateMetaNZ(px, py, &md, false)
	return nil
}
