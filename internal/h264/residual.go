package h264

import (
	"hdvideobench/internal/entropy"
)

// Coefficient-block coding: CABAC-style significance map + last flag +
// reverse-order level coding (sign in bypass). The same syntax is routed
// through the VLC backend in the EntropyVLC ablation.

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// writeCoeffs codes one scanned coefficient vector. Returns true if the
// block has any non-zero coefficient (the coded-block flag).
func writeCoeffs(w symWriter, cbf *entropy.Prob, sig, last, lvl []entropy.Prob, coefs []int32) bool {
	n := len(coefs)
	lastIdx := -1
	for i := n - 1; i >= 0; i-- {
		if coefs[i] != 0 {
			lastIdx = i
			break
		}
	}
	if lastIdx < 0 {
		w.bit(cbf, 0)
		return false
	}
	w.bit(cbf, 1)
	for i := 0; i < n-1 && i <= lastIdx; i++ {
		if coefs[i] != 0 {
			w.bit(&sig[minInt(i, len(sig)-1)], 1)
			if i == lastIdx {
				w.bit(&last[minInt(i, len(last)-1)], 1)
				break
			}
			w.bit(&last[minInt(i, len(last)-1)], 0)
		} else {
			w.bit(&sig[minInt(i, len(sig)-1)], 0)
		}
	}
	for i := lastIdx; i >= 0; i-- {
		v := coefs[i]
		if v == 0 {
			continue
		}
		mag := v
		if mag < 0 {
			mag = -mag
		}
		w.ue(lvl, 4, uint32(mag-1))
		if v < 0 {
			w.bypass(1)
		} else {
			w.bypass(0)
		}
	}
	return true
}

// readCoeffs mirrors writeCoeffs; coefs is zeroed and filled in scan order.
func readCoeffs(r symReader, cbf *entropy.Prob, sig, last, lvl []entropy.Prob, coefs []int32) bool {
	n := len(coefs)
	for i := range coefs {
		coefs[i] = 0
	}
	if r.bit(cbf) == 0 {
		return false
	}
	var positions [16]int
	np := 0
	terminated := false
	for i := 0; i < n-1; i++ {
		if r.bit(&sig[minInt(i, len(sig)-1)]) == 1 {
			positions[np] = i
			np++
			if r.bit(&last[minInt(i, len(last)-1)]) == 1 {
				terminated = true
				break
			}
		}
	}
	if !terminated {
		positions[np] = n - 1
		np++
	}
	for j := np - 1; j >= 0; j-- {
		mag := int32(r.ue(lvl, 4)) + 1
		if r.bypass() == 1 {
			mag = -mag
		}
		coefs[positions[j]] = mag
	}
	return true
}

// Block categories index the cbf contexts.
const (
	catLuma     = 0
	catLumaDC   = 1
	catChromaDC = 2
	catChromaAC = 3
)

// scanBlock4 maps a raster 4×4 coefficient block to zigzag scan order,
// starting at scan position start (1 for AC-only blocks).
func scanBlock4(blk *[16]int32, start int, out []int32) {
	for i := start; i < 16; i++ {
		out[i-start] = blk[zigzag4[i]]
	}
}

// unscanBlock4 is the inverse of scanBlock4.
func unscanBlock4(in []int32, start int, blk *[16]int32) {
	for i := range blk {
		blk[i] = 0
	}
	for i := start; i < 16; i++ {
		blk[zigzag4[i]] = in[i-start]
	}
}

// zigzag4 is dct.Zigzag4 (local alias to keep hot loops tight).
var zigzag4 = [16]int{0, 1, 4, 8, 5, 2, 3, 6, 9, 12, 13, 10, 7, 11, 14, 15}
