package h264

import (
	"fmt"

	"hdvideobench/internal/bitstream"
	"hdvideobench/internal/codec"
	"hdvideobench/internal/container"
	"hdvideobench/internal/dct"
	"hdvideobench/internal/entropy"
	"hdvideobench/internal/frame"
	"hdvideobench/internal/interp"
	"hdvideobench/internal/kernel"
	"hdvideobench/internal/motion"
	"hdvideobench/internal/quant"
	"hdvideobench/internal/swar"
)

// mbData carries one macroblock's decisions and quantized coefficients
// between the decision phase and the syntax/reconstruction phase.
type mbData struct {
	mode int
	ref  int8
	mvs  [4]motion.MV // per-partition quarter-pel vectors

	i16Mode int
	i4Modes [16]int

	luma     [16][16]int32
	lumaDC   [16]int32
	lumaDCNZ bool
	chroma   [2][4][16]int32
	chromaDC [2][4]int32

	cbpLuma   int
	cbpChroma int
	lumaNZ    [16]bool
}

// mbRec is one macroblock's complete syntax record, produced by the
// decision phase (which may run on the wavefront) and replayed serially
// through the entropy coder. kind selects the emission sequence; pmvp
// holds the MV predictors exactly as the serial code observed them when
// it wrote the mvd fields (for B MBs, pmvp[0] is the forward predictor
// and pmvp[1] the row-local backward predictor at decision time).
type mbRec struct {
	md   mbData
	kind int8
	pmvp [4]motion.MV
}

// mbRec kinds — one per distinct syntax shape.
const (
	recI4     = int8(iota) // I-frame I4×4: mbType bit + 16 modes + residual
	recI16                 // I-frame I16×16: mbType bit + mode + residual
	recSkip                // P/B skip: a single skip bit
	recPIntra              // intra in P: skip0 + mbType + i16 mode + residual
	recBIntra              // intra in B: skip0 + mbType + i16 mode + residual
	recPInter              // inter P: skip0 + mbType + ref + mvds + residual
	recBInter              // inter B: skip0 + mbType + mvds + residual
)

// Encoder is the H.264-class encoder (the paper's x264 role).
//
// Frames are coded as cfg.Slices independent macroblock-row slices (see
// internal/codec's slice layer): each slice has its own CABAC/VLC
// entropy state and context models, intra prediction and MV prediction
// clamp at the slice's top row, and the in-loop deblocking filter runs
// over the whole frame after all slices have reconstructed — exactly the
// same frame on encoder and decoder, so the loop stays closed. Slices of
// one frame run concurrently on the SliceRunner; the merged payload is
// byte-identical for every schedule.
type Encoder struct {
	cfg    codec.Config
	qp     int // current frame's luma QP (constant via Eq. 1, or rate-controlled)
	qpc    int // chroma QP
	lambda int
	runner codec.SliceRunner
	wfRun  codec.WavefrontRunner

	gop  codec.GOPScheduler
	refs codec.RefList

	meta *frameMeta

	spans  []codec.SliceSpan
	slices []*sliceEnc

	inCount int
	ptsBase int // chunk offset in the global timeline (codec.PTSRebaser)

	// Rate control (nil/zero when cfg.TargetKbps == 0). The controller
	// works in the MPEG 1..31 quantizer scale shared with the other
	// codecs; its output maps through Eq. 1 to the frame QP above and,
	// when cfg.SliceQ(), to the per-slice QPs here.
	rc       *codec.RateController
	sliceQPs []int
	sliceBuf []int

	// Ladder motion plumbing (see codec.Config.MotionTap/MotionHints).
	tap  *motion.Field
	hint *motion.Field
}

// sliceEnc carries the per-slice encoder state. Entropy coding is the
// one part of H.264 that cannot ride the wavefront — CABAC context
// adaptation (and the VLC writer's bit position) chains across every
// macroblock of the slice — so the slice runs in two phases: rowEnc
// coders make all decisions and reconstruct on the (possibly
// wavefront-scheduled) front, recording per-MB syntax in mbRec, and the
// sliceEnc then replays the records through w/ctx in raster order.
// Both phases execute the same value sequence the serial encoder did,
// so the slice bytes are identical for every schedule.
type sliceEnc struct {
	e   *Encoder
	w   symWriter
	ctx *contexts

	rows []*rowEnc // one decision coder per MB row of the span

	body []byte // finished slice bytes for the frame being assembled
}

// rowEnc is the decision-phase coder for one macroblock row: prediction
// scratch, the row-local backward MV predictor and the row's syntax
// records. Rows of a slice may run concurrently under the wavefront, so
// nothing here is shared across rows.
type rowEnc struct {
	e *Encoder

	predY [256]byte
	predC [2][64]byte
	tmpY  [256]byte

	bwdPredRow motion.MV // backward MV predictor within a B row

	top4  int // slice top row in 4×4-block units
	topPx int // slice top row in pixels

	// Per-slice coding parameters, set by sliceEnc.run before any
	// macroblock runs: with rate control off they mirror the encoder's
	// constructor values.
	qp, qpc, lambda int

	recs []mbRec // per-MB records for this row, one per MB column
}

// lambdaForQP maps an H.264 QP to the motion/mode λ (SAD units per bit).
func lambdaForQP(qp int) int {
	l := (1 << uint(qp/6)) >> 2
	if l < 1 {
		l = 1
	}
	return l
}

// NewEncoder returns an H.264 encoder for cfg. The MPEG-scale quantizer
// cfg.Q is mapped to the H.264 QP with the paper's Eq. 1.
func NewEncoder(cfg codec.Config) (*Encoder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("h264: %w", err)
	}
	qp := quant.H264QPFromMPEG(cfg.Q)
	e := &Encoder{
		cfg:    cfg,
		qp:     qp,
		qpc:    quant.H264ChromaQP(qp),
		lambda: lambdaForQP(qp),
		gop:    codec.GOPScheduler{BFrames: cfg.BFrames, IntraPeriod: cfg.IntraPeriod, SceneCut: cfg.SceneCutIntra},
		refs:   codec.RefList{Max: cfg.Refs},
		meta:   newFrameMeta(cfg.Width, cfg.Height),
		rc:     codec.NewRateController(cfg),
	}
	e.spans = codec.SliceRows(cfg.MBRows(), cfg.Slices)
	e.slices = make([]*sliceEnc, len(e.spans))
	hint := cfg.Width*cfg.Height/8/len(e.spans) + 64
	for i := range e.slices {
		s := &sliceEnc{e: e, ctx: newContexts()}
		if cfg.Entropy == codec.EntropyVLC {
			s.w = vlcWriter{bitstream.NewWriter(hint)}
		} else {
			s.w = cabacWriter{entropy.NewEncoder(hint)}
		}
		s.rows = make([]*rowEnc, e.spans[i].Rows)
		for y := range s.rows {
			s.rows[y] = &rowEnc{
				e:     e,
				top4:  e.spans[i].Row * 4,
				topPx: e.spans[i].Row * 16,
				recs:  make([]mbRec, cfg.MBCols()),
			}
		}
		e.slices[i] = s
	}
	return e, nil
}

// SetSliceRunner implements codec.SliceScheduler: per-frame slice jobs
// run on r (nil restores the serial default). Output bytes do not depend
// on the runner.
func (e *Encoder) SetSliceRunner(r codec.SliceRunner) { e.runner = r }

// SetWavefrontRunner implements codec.WavefrontScheduler: when
// cfg.Wavefront is set, the decision phase of each slice runs its MB
// rows on r's 2D wavefront. Output bytes do not depend on the runner.
func (e *Encoder) SetWavefrontRunner(r codec.WavefrontRunner) { e.wfRun = r }

// SetPTSBase implements codec.PTSRebaser: the GOP-parallel pipeline
// announces the chunk's offset in the global display timeline so the
// motion tap/hint callbacks key on global stamps.
func (e *Encoder) SetPTSBase(base int) { e.ptsBase = base }

// QP returns the mapped H.264 quantizer (exported for the harness report).
func (e *Encoder) QP() int { return e.qp }

// Header implements codec.Encoder.
func (e *Encoder) Header() container.Header { return header(e.cfg, 0) }

// Encode implements codec.Encoder.
func (e *Encoder) Encode(f *frame.Frame) ([]container.Packet, error) {
	if f.Width != e.cfg.Width || f.Height != e.cfg.Height {
		return nil, fmt.Errorf("h264: frame is %dx%d, config is %dx%d",
			f.Width, f.Height, e.cfg.Width, e.cfg.Height)
	}
	f.PTS = e.inCount
	e.inCount++
	var pkts []container.Packet
	for _, entry := range e.gop.Push(f) {
		pkts = append(pkts, e.encodeFrame(entry.Frame, entry.Type))
	}
	return pkts, nil
}

// Flush implements codec.Encoder.
func (e *Encoder) Flush() ([]container.Packet, error) {
	var pkts []container.Packet
	for _, entry := range e.gop.Flush() {
		pkts = append(pkts, e.encodeFrame(entry.Frame, entry.Type))
	}
	return pkts, nil
}

func (e *Encoder) encodeFrame(src *frame.Frame, ftype container.FrameType) container.Packet {
	recon := frame.NewPadded(e.cfg.Width, e.cfg.Height, codec.RefPad)
	recon.PTS = src.PTS
	e.meta.reset()

	if e.rc != nil {
		q := e.rc.FrameQ(ftype)
		e.qp = quant.H264QPFromMPEG(q)
		e.qpc = quant.H264ChromaQP(e.qp)
		e.lambda = lambdaForQP(e.qp)
		if e.cfg.SliceQ() {
			e.sliceQPs = e.sliceQPs[:0]
			for _, sq := range e.rc.SliceQs(q, len(e.spans)) {
				e.sliceQPs = append(e.sliceQPs, quant.H264QPFromMPEG(sq))
			}
		} else {
			e.sliceQPs = nil
		}
	}
	if ftype != container.FrameI {
		if e.cfg.MotionTap != nil {
			e.tap = motion.NewField(e.cfg.Width, e.cfg.Height)
		}
		if e.cfg.MotionHints != nil {
			e.hint = e.cfg.MotionHints(src.PTS + e.ptsBase)
		}
	} else {
		e.tap, e.hint = nil, nil
	}

	codec.RunSlices(e.runner, len(e.spans), func(i int) {
		e.slices[i].run(src, recon, ftype, e.spans[i], i)
	})

	// Deblocking is a frame-level pass over the merged reconstruction and
	// meta grids — slice-boundary edges are filtered like any other, on
	// both sides of the codec, so slices cost prediction efficiency but
	// not loop-filter coverage.
	deblockFrame(recon, e.meta, e.qp)
	recon.ExtendBorders()
	if ftype == container.FrameI {
		// IDR semantics: an I frame empties the reference list, closing the
		// GOP so chunk encoders reproduce the serial stream exactly (a P
		// frame after a mid-stream I must not reach references behind it).
		e.refs.Reset()
	}
	if ftype != container.FrameB {
		// Interpolate the new reference once; every future search against
		// it scores candidates straight from these planes.
		interp.BuildHalfPel6(recon, e.cfg.Kernels)
		e.refs.Add(recon)
	}

	// Payload layout: one QP byte, the slice table, then the per-slice
	// entropy-coded macroblock data in row order. FlagSliceQ streams
	// prepend each slice body with its own QP byte (counted in Size).
	extra := 0
	if e.sliceQPs != nil {
		extra = 1
	}
	total := 1 + codec.SliceTableSize(len(e.spans))
	for i, s := range e.slices {
		e.spans[i].Size = len(s.body) + extra
		total += e.spans[i].Size
	}
	payload := make([]byte, 0, total)
	payload = append(payload, byte(e.qp))
	payload = codec.AppendSliceTable(payload, e.spans)
	for i, s := range e.slices {
		if e.sliceQPs != nil {
			payload = append(payload, byte(e.sliceQPs[i]))
		}
		payload = append(payload, s.body...)
	}
	if e.rc != nil {
		e.rc.AddFrame(ftype, 8*len(payload))
		if e.sliceQPs != nil {
			e.sliceBuf = e.sliceBuf[:0]
			for i := range e.spans {
				e.sliceBuf = append(e.sliceBuf, 8*e.spans[i].Size)
			}
			e.rc.AddSlices(e.sliceBuf)
		}
	}
	if e.tap != nil {
		e.cfg.MotionTap(src.PTS+e.ptsBase, e.tap)
		e.tap = nil
	}
	return container.Packet{Type: ftype, DisplayIndex: src.PTS, Payload: payload}
}

// run codes one slice's macroblock rows with slice-local entropy state.
//
// Phase 1 — decisions, reconstruction and meta-grid updates run on the
// wavefront: MB (x,y) starts once its left neighbour (x−1,y) and the
// top-right MB (x+1,y−1) are done, which covers every cross-MB read
// below (intra prediction pixels, MV predictors, search seeds, NZ
// flags). Each row coder records its per-MB syntax instead of writing
// bits. With the flag off or no runner installed the front degenerates
// to the same raster loop the serial encoder ran.
//
// Phase 2 — entropy coding replays the records in raster order on the
// slice's single writer: CABAC/VLC state chains across the whole slice,
// so this part is inherently serial and the emitted bytes match the
// serial schedule exactly.
func (s *sliceEnc) run(src, recon *frame.Frame, ftype container.FrameType, span codec.SliceSpan, idx int) {
	cols := s.e.cfg.MBCols()
	qp, qpc, lambda := s.e.qp, s.e.qpc, s.e.lambda
	if s.e.sliceQPs != nil {
		qp = s.e.sliceQPs[idx]
		qpc = quant.H264ChromaQP(qp)
		lambda = lambdaForQP(qp)
	}
	for _, r := range s.rows[:span.Rows] {
		r.qp, r.qpc, r.lambda = qp, qpc, lambda
	}
	tap := s.e.tap
	var wf codec.WavefrontRunner
	if s.e.cfg.Wavefront {
		wf = s.e.wfRun
	}
	codec.RunWavefront(wf, span.Rows, cols, func(x, y int) bool {
		r := s.rows[y]
		if x == 0 {
			r.bwdPredRow = motion.MV{}
		}
		rec := &r.recs[x]
		*rec = mbRec{}
		mby := span.Row + y
		switch ftype {
		case container.FrameI:
			r.decideIMB(src, recon, x, mby, rec)
		case container.FrameP:
			r.decidePMB(src, recon, x, mby, rec)
		default:
			r.decideBMB(src, recon, x, mby, rec)
		}
		if tap != nil {
			// Capture the winning forward vector (quarter-pel → full-pel);
			// intra and skip macroblocks record zero, a harmless hint.
			var mv motion.MV
			if rec.kind == recPInter || rec.kind == recBInter {
				mv = motion.MV{X: rec.md.mvs[0].X >> 2, Y: rec.md.mvs[0].Y >> 2}
			}
			tap.Set(x, mby, mv)
		}
		return true
	})

	s.ctx.reset()
	s.w.reset()
	for y := 0; y < span.Rows; y++ {
		for x := 0; x < cols; x++ {
			s.emitMB(&s.rows[y].recs[x])
		}
	}
	s.body = s.w.finish()
}

// emitMB replays one macroblock record through the entropy coder,
// reproducing the exact symbol sequence of the serial encoder.
func (s *sliceEnc) emitMB(rec *mbRec) {
	md := &rec.md
	switch rec.kind {
	case recI4:
		s.w.bit(&s.ctx.mbType[0], 1) // 1 = I4x4
		for bi := 0; bi < 16; bi++ {
			s.w.ue(s.ctx.i4Mode[:], 3, uint32(md.i4Modes[bi]))
		}
		s.writeResidual(md, false)
	case recI16:
		s.w.bit(&s.ctx.mbType[0], 0) // 0 = I16x16
		s.w.ue(s.ctx.i16Mode[:], 2, uint32(md.i16Mode))
		s.writeResidual(md, true)
	case recSkip:
		s.w.bit(&s.ctx.skip[0], 1)
	case recPIntra, recBIntra:
		s.w.bit(&s.ctx.skip[0], 0)
		mt := mI16x16
		if rec.kind == recBIntra {
			mt = mBI16x16
		}
		s.w.ue(s.ctx.mbType[:], 3, uint32(mt))
		s.w.ue(s.ctx.i16Mode[:], 2, uint32(md.i16Mode))
		s.writeResidual(md, true)
	case recPInter:
		s.w.bit(&s.ctx.skip[0], 0)
		s.w.ue(s.ctx.mbType[:], 3, uint32(md.mode))
		if s.e.refs.Len() > 1 {
			s.w.ue(s.ctx.refIdx[:], 2, uint32(md.ref))
		}
		for pi := range partGeom[md.mode] {
			s.w.se(s.ctx.mvd[:], 8, int32(md.mvs[pi].X)-int32(rec.pmvp[pi].X))
			s.w.se(s.ctx.mvd[:], 8, int32(md.mvs[pi].Y)-int32(rec.pmvp[pi].Y))
		}
		s.writeResidual(md, false)
	case recBInter:
		s.w.bit(&s.ctx.skip[0], 0)
		s.w.ue(s.ctx.mbType[:], 3, uint32(md.mode))
		if md.mode == mBFwd || md.mode == mBBi {
			s.w.se(s.ctx.mvd[:], 8, int32(md.mvs[0].X)-int32(rec.pmvp[0].X))
			s.w.se(s.ctx.mvd[:], 8, int32(md.mvs[0].Y)-int32(rec.pmvp[0].Y))
		}
		if md.mode == mBBwd || md.mode == mBBi {
			s.w.se(s.ctx.mvd[:], 8, int32(md.mvs[1].X)-int32(rec.pmvp[1].X))
			s.w.se(s.ctx.mvd[:], 8, int32(md.mvs[1].Y)-int32(rec.pmvp[1].Y))
		}
		s.writeResidual(md, false)
	}
}

// --- cost helpers -------------------------------------------------------------

//hdvlint:noalloc
func (s *rowEnc) sadBlock(src *frame.Frame, px, py, w, h int, pred []byte, pstride int) int {
	off := src.YOrigin + py*src.YStride + px
	if s.e.cfg.Kernels == kernel.SWAR {
		return swar.SADBlock(src.Y[off:], src.YStride, pred, pstride, w, h)
	}
	return codec.SADBlockBytes(src.Y, off, src.YStride, pred, 0, pstride, w, h)
}

func seBits(v int) int {
	if v < 0 {
		v = -v
	}
	u := 2 * v
	n := 1
	for u > 0 {
		u = (u - 1) >> 1
		n += 2
	}
	return n
}

func mvdBits(mv, pred motion.MV) int {
	return seBits(int(mv.X)-int(pred.X)) + seBits(int(mv.Y)-int(pred.Y))
}

// --- motion search ------------------------------------------------------------

// mcLumaInto fills dst (stride 16) with the quarter-pel prediction from
// the reference's half-pel planes (every encoder reference has them —
// BuildHalfPel6 runs before refs.Add; the decoder keeps the per-block
// QPel path, which is bit-exact with this one).
//
//hdvlint:noalloc
func (s *rowEnc) mcLumaInto(ref *frame.Frame, px, py, w, h int, mv motion.MV, dst []byte) {
	ix, fx := splitQuarter(int(mv.X))
	iy, fy := splitQuarter(int(mv.Y))
	so := ref.YOrigin + (py+iy)*ref.YStride + px + ix
	interp.LumaPlanes(dst, 16, ref.Y, ref.Hpel6, so, ref.YStride, w, h, fx, fy, s.e.cfg.Kernels)
}

// sadQPel scores one quarter-pel candidate against the precomputed half
// planes, early-terminating once the partial SAD reaches max.
//
//hdvlint:noalloc
func (s *rowEnc) sadQPel(src, ref *frame.Frame, px, py, w, h int, mv motion.MV, max int) int {
	ix, fx := splitQuarter(int(mv.X))
	iy, fy := splitQuarter(int(mv.Y))
	so := ref.YOrigin + (py+iy)*ref.YStride + px + ix
	co := src.YOrigin + py*src.YStride + px
	return motion.SADQPel(s.e.cfg.Kernels, src.Y[co:], src.YStride, ref, so, w, h, fx, fy, max)
}

// searchRef runs seed selection + hexagon + two-stage quarter-pel
// refinement against one reference, filling pred with the winner.
//
//hdvlint:noalloc
func (s *rowEnc) searchRef(src, ref *frame.Frame, px, py, w, h int, mvpQ motion.MV, pred []byte) (motion.MV, int) {
	var est motion.Estimator
	est.Kern = s.e.cfg.Kernels
	est.Cur = src.Y
	est.CurOff = src.YOrigin + py*src.YStride + px
	est.CurStride = src.YStride
	est.Ref = ref.Y
	est.RefOrigin = ref.YOrigin
	est.RefStride = ref.YStride
	est.PosX, est.PosY = px, py
	est.W, est.H = w, h
	est.Lambda = s.lambda
	est.Pred = motion.MV{X: mvpQ.X >> 2, Y: mvpQ.Y >> 2}
	est.Window(s.e.cfg.SearchRange, s.e.cfg.Width, s.e.cfg.Height, codec.RefPad)

	// Seed from spatial neighbours in the meta grid (quarter-pel → full),
	// never reaching above the slice's top row.
	m := s.e.meta
	bx4, by4 := px/4, py/4
	var seeds [4]motion.MV
	ns := 0
	seeds[ns] = est.Pred
	ns++
	if bx4 > 0 && m.ref[by4*m.w4+bx4-1] >= 0 {
		v := m.mv[by4*m.w4+bx4-1]
		seeds[ns] = motion.MV{X: v.X >> 2, Y: v.Y >> 2}
		ns++
	}
	if by4 > s.top4 && m.ref[(by4-1)*m.w4+bx4] >= 0 {
		v := m.mv[(by4-1)*m.w4+bx4]
		seeds[ns] = motion.MV{X: v.X >> 2, Y: v.Y >> 2}
		ns++
	}
	if h264hint := s.e.hint; h264hint != nil {
		// Cross-rung seed from the full-resolution rung, scaled to this
		// geometry (see motion.Field.Sample).
		seeds[ns] = h264hint.Sample(px/16, py/16, s.e.cfg.Width, s.e.cfg.Height)
		ns++
	}
	exitT := 0
	if s.e.hint != nil {
		// With a trusted cross-rung seed among the candidates the search
		// earns a real early-exit threshold (cold keeps 0: always refine),
		// and a seed below it skips the hexagon walk entirely; the ladder
		// PSNR guard bounds the quality cost.
		exitT = 2 * s.qp * w * h / 16
	}
	res := est.EPZS(seeds[:ns], exitT)
	if exitT == 0 || res.Cost > exitT {
		res = est.HexagonFrom(res)
	}

	// Quarter-pel refinement (step 2 then 1) on plain SAD, scored
	// against the reference's precomputed 6-tap half planes with early
	// termination; only the winner is materialized. Same candidate order
	// and strict comparisons as the per-block path — bytes unchanged.
	bestMV := motion.MV{X: res.MV.X * 4, Y: res.MV.Y * 4}
	bestSAD := res.Cost - est.MVCost(int(res.MV.X), int(res.MV.Y))
	for _, step := range [2]int{2, 1} {
		center := bestMV
		for dy := -step; dy <= step; dy += step {
			for dx := -step; dx <= step; dx += step {
				if dx == 0 && dy == 0 {
					continue
				}
				mv := motion.MV{X: center.X + int16(dx), Y: center.Y + int16(dy)}
				if sad := s.sadQPel(src, ref, px, py, w, h, mv, bestSAD); sad < bestSAD {
					bestSAD = sad
					bestMV = mv
				}
			}
		}
	}
	s.mcLumaInto(ref, px, py, w, h, bestMV, pred)
	return bestMV, bestSAD
}

// mcChromaPart motion-compensates one chroma partition region for both
// planes into predC with stride 8. (ox, oy, w, h) are luma-partition pixel
// geometry relative to the MB origin.
//
//hdvlint:noalloc
func (s *rowEnc) mcChromaPart(ref *frame.Frame, px, py, ox, oy, w, h int, mv motion.MV) {
	cx := (px + ox) / 2
	cy := (py + oy) / 2
	ix := int(mv.X) >> 3
	iy := int(mv.Y) >> 3
	dx := int(mv.X) & 7
	dy := int(mv.Y) & 7
	so := ref.COrigin + (cy+iy)*ref.CStride + cx + ix
	do := (oy/2)*8 + ox/2
	interp.ChromaBilin(s.predC[0][do:], 8, ref.Cb[so:], ref.CStride, w/2, h/2, dx, dy, s.e.cfg.Kernels)
	interp.ChromaBilin(s.predC[1][do:], 8, ref.Cr[so:], ref.CStride, w/2, h/2, dx, dy, s.e.cfg.Kernels)
}

// --- residual pipeline ----------------------------------------------------------

// lumaGroupBlocks lists the 4×4 block indices of each 8×8 CBP group.
var lumaGroupBlocks = [4][4]int{
	{0, 1, 4, 5}, {2, 3, 6, 7}, {8, 9, 12, 13}, {10, 11, 14, 15},
}

// transformLumaInter quantizes the luma residual of an inter (or I4-less)
// MB against predY and fills md.luma/cbpLuma/lumaNZ.
//
//hdvlint:noalloc
func (s *rowEnc) transformLumaInter(src *frame.Frame, px, py int, md *mbData) {
	md.cbpLuma = 0
	for bi := 0; bi < 16; bi++ {
		bx, by := 4*(bi%4), 4*(bi/4)
		var blk [16]int32
		codec.Residual4(&blk, src.Y, src.YOrigin+(py+by)*src.YStride+px+bx, src.YStride,
			s.predY[:], by*16+bx, 16, s.e.cfg.Kernels)
		dct.Forward4(&blk)
		nz := quant.H264Quant(&blk, s.qp, false)
		md.luma[bi] = blk
		md.lumaNZ[bi] = nz > 0
	}
	for g := 0; g < 4; g++ {
		for _, bi := range lumaGroupBlocks[g] {
			if md.lumaNZ[bi] {
				md.cbpLuma |= 1 << g
				break
			}
		}
	}
}

// reconLumaInter reconstructs the luma of an inter MB from md into recon.
//
//hdvlint:noalloc
func (s *rowEnc) reconLumaInter(recon *frame.Frame, px, py int, md *mbData) {
	for bi := 0; bi < 16; bi++ {
		bx, by := 4*(bi%4), 4*(bi/4)
		ro := recon.YOrigin + (py+by)*recon.YStride + px + bx
		po := by*16 + bx
		if md.lumaNZ[bi] {
			blk := md.luma[bi]
			quant.H264Dequant(&blk, s.qp)
			dct.Inverse4(&blk)
			codec.Add4Clip(recon.Y, ro, recon.YStride, s.predY[:], po, 16, &blk, s.e.cfg.Kernels)
		} else {
			for r := 0; r < 4; r++ {
				copy(recon.Y[ro+r*recon.YStride:ro+r*recon.YStride+4],
					s.predY[po+r*16:po+r*16+4])
			}
		}
	}
}

// transformChroma quantizes both chroma planes against predC and fills
// md.chroma/chromaDC/cbpChroma.
//
//hdvlint:noalloc
func (s *rowEnc) transformChroma(src *frame.Frame, px, py int, intra bool, md *mbData) {
	cx, cy := px/2, py/2
	anyAC, anyDC := false, false
	for pl := 0; pl < 2; pl++ {
		plane := src.Cb
		if pl == 1 {
			plane = src.Cr
		}
		var dc [4]int32
		for ci := 0; ci < 4; ci++ {
			ox, oy := 4*(ci%2), 4*(ci/2)
			var blk [16]int32
			codec.Residual4(&blk, plane, src.COrigin+(cy+oy)*src.CStride+cx+ox, src.CStride,
				s.predC[pl][:], oy*8+ox, 8, s.e.cfg.Kernels)
			dct.Forward4(&blk)
			dc[ci] = blk[0]
			blk[0] = 0
			if quant.H264Quant(&blk, s.qpc, intra) > 0 {
				anyAC = true
			}
			md.chroma[pl][ci] = blk
		}
		dct.Hadamard2(&dc)
		if quant.H264QuantChromaDC(&dc, s.qpc, intra) > 0 {
			anyDC = true
		}
		md.chromaDC[pl] = dc
	}
	switch {
	case anyAC:
		md.cbpChroma = 2
	case anyDC:
		md.cbpChroma = 1
	default:
		md.cbpChroma = 0
	}
}

// reconChroma reconstructs both chroma planes from md into recon.
//
//hdvlint:noalloc
func (s *rowEnc) reconChroma(recon *frame.Frame, px, py int, md *mbData) {
	cx, cy := px/2, py/2
	for pl := 0; pl < 2; pl++ {
		plane := recon.Cb
		if pl == 1 {
			plane = recon.Cr
		}
		dc := md.chromaDC[pl]
		if md.cbpChroma >= 1 {
			dct.Hadamard2(&dc)
			quant.H264DequantChromaDC(&dc, s.qpc)
		} else {
			dc = [4]int32{}
		}
		for ci := 0; ci < 4; ci++ {
			ox, oy := 4*(ci%2), 4*(ci/2)
			ro := recon.COrigin + (cy+oy)*recon.CStride + cx + ox
			po := oy*8 + ox
			blk := md.chroma[pl][ci]
			if md.cbpChroma == 2 {
				quant.H264Dequant(&blk, s.qpc)
			} else {
				blk = [16]int32{}
			}
			blk[0] = dc[ci]
			if md.cbpChroma >= 1 {
				dct.Inverse4(&blk)
				codec.Add4Clip(plane, ro, recon.CStride, s.predC[pl][:], po, 8, &blk, s.e.cfg.Kernels)
			} else {
				for r := 0; r < 4; r++ {
					copy(plane[ro+r*recon.CStride:ro+r*recon.CStride+4],
						s.predC[pl][po+r*8:po+r*8+4])
				}
			}
		}
	}
}

// writeResidual emits CBP and coefficient blocks for the MB.
func (s *sliceEnc) writeResidual(md *mbData, i16 bool) {
	w := s.w
	for g := 0; g < 4; g++ {
		w.bit(&s.ctx.cbpLuma[g], (md.cbpLuma>>g)&1)
	}
	w.ue(s.ctx.chromaCBP[:], 2, uint32(md.cbpChroma))

	var scan [16]int32
	if i16 {
		scanBlock4(&md.lumaDC, 0, scan[:])
		writeCoeffs(w, &s.ctx.cbf[catLumaDC], s.ctx.sigDC[:], s.ctx.lastDC[:], s.ctx.levelDC[:], scan[:16])
	}
	start := 0
	if i16 {
		start = 1
	}
	for g := 0; g < 4; g++ {
		if md.cbpLuma&(1<<g) == 0 {
			continue
		}
		for _, bi := range lumaGroupBlocks[g] {
			scanBlock4(&md.luma[bi], start, scan[:])
			writeCoeffs(w, &s.ctx.cbf[catLuma], s.ctx.sig[:], s.ctx.last[:], s.ctx.level[:], scan[:16-start])
		}
	}
	if md.cbpChroma >= 1 {
		for pl := 0; pl < 2; pl++ {
			dcs := md.chromaDC[pl]
			writeCoeffs(w, &s.ctx.cbf[catChromaDC], s.ctx.sigDC[:], s.ctx.lastDC[:], s.ctx.levelDC[:], dcs[:])
		}
	}
	if md.cbpChroma == 2 {
		for pl := 0; pl < 2; pl++ {
			for ci := 0; ci < 4; ci++ {
				scanBlock4(&md.chroma[pl][ci], 1, scan[:])
				writeCoeffs(w, &s.ctx.cbf[catChromaAC], s.ctx.sig[:], s.ctx.last[:], s.ctx.level[:], scan[:15])
			}
		}
	}
}

// updateMetaNZ records per-4×4 non-zero flags for deblocking.
//
//hdvlint:noalloc
func (s *rowEnc) updateMetaNZ(px, py int, md *mbData, i16 bool) {
	m := s.e.meta
	bx4, by4 := px/4, py/4
	for bi := 0; bi < 16; bi++ {
		nz := md.lumaNZ[bi]
		if i16 && md.lumaDCNZ {
			nz = true
		}
		m.nz[(by4+bi/4)*m.w4+bx4+bi%4] = nz
	}
}

// --- intra coding ----------------------------------------------------------------

// bestI16 selects the best I16×16 mode by SAD and returns (mode, cost).
//
//hdvlint:noalloc
func (s *rowEnc) bestI16(src, recon *frame.Frame, px, py int) (int, int) {
	availLeft := px > 0
	availTop := py > s.topPx
	bestMode, bestCost := -1, 1<<30
	var cands [numI16Modes]int
	for _, mode := range i16Candidates(availLeft, availTop, &cands) {
		predI16(s.tmpY[:], recon.Y, recon.YOrigin, recon.YStride, px, py, mode, availLeft, availTop)
		if sad := s.sadBlock(src, px, py, 16, 16, s.tmpY[:], 16); sad < bestCost {
			bestCost = sad
			bestMode = mode
		}
	}
	return bestMode, bestCost
}

// encodeI16Into performs the full I16 pipeline: prediction, transform with
// DC Hadamard, quantization, reconstruction, and meta update. The caller
// writes the syntax.
//
//hdvlint:noalloc
func (s *rowEnc) encodeI16Into(src, recon *frame.Frame, px, py, mode int, md *mbData) {
	availLeft := px > 0
	availTop := py > s.topPx
	predI16(s.predY[:], recon.Y, recon.YOrigin, recon.YStride, px, py, mode, availLeft, availTop)
	md.i16Mode = mode

	var dcs [16]int32
	md.cbpLuma = 0
	for bi := 0; bi < 16; bi++ {
		bx, by := 4*(bi%4), 4*(bi/4)
		var blk [16]int32
		codec.Residual4(&blk, src.Y, src.YOrigin+(py+by)*src.YStride+px+bx, src.YStride,
			s.predY[:], by*16+bx, 16, s.e.cfg.Kernels)
		dct.Forward4(&blk)
		dcs[bi] = blk[0]
		blk[0] = 0
		nz := quant.H264Quant(&blk, s.qp, true)
		md.luma[bi] = blk
		md.lumaNZ[bi] = nz > 0
	}
	// Reorder DCs to raster 4×4 of the DC block: dcs are already in raster
	// block order, matching the Hadamard layout.
	dct.Hadamard4(&dcs, true)
	md.lumaDCNZ = quant.H264QuantDC(&dcs, s.qp) > 0
	md.lumaDC = dcs
	for g := 0; g < 4; g++ {
		for _, bi := range lumaGroupBlocks[g] {
			if md.lumaNZ[bi] {
				md.cbpLuma |= 1 << g
				break
			}
		}
	}

	// Reconstruction.
	dcRec := md.lumaDC
	dct.Hadamard4(&dcRec, false)
	quant.H264DequantDC(&dcRec, s.qp)
	for bi := 0; bi < 16; bi++ {
		bx, by := 4*(bi%4), 4*(bi/4)
		ro := recon.YOrigin + (py+by)*recon.YStride + px + bx
		po := by*16 + bx
		blk := md.luma[bi]
		quant.H264Dequant(&blk, s.qp)
		blk[0] = dcRec[bi]
		dct.Inverse4(&blk)
		codec.Add4Clip(recon.Y, ro, recon.YStride, s.predY[:], po, 16, &blk, s.e.cfg.Kernels)
	}
}

// encodeI4Into performs the sequential I4×4 pipeline, choosing a mode per
// block and reconstructing as it goes.
//
//hdvlint:noalloc
func (s *rowEnc) encodeI4Into(src, recon *frame.Frame, px, py int, md *mbData) {
	md.cbpLuma = 0
	for bi := 0; bi < 16; bi++ {
		bx, by := 4*(bi%4), 4*(bi/4)
		gx4, gy4 := (px+bx)/4, (py+by)/4
		av := availI4(gx4, gy4, s.e.meta.w4, s.top4)
		var best [16]byte
		bestMode, bestCost := -1, 1<<30
		var cand [16]byte
		var cands [numI4Modes]int
		for _, mode := range i4Candidates(av, &cands) {
			predI4(cand[:], 4, recon.Y, recon.YOrigin, recon.YStride, px+bx, py+by, mode, av)
			cost := s.sadBlock(src, px+bx, py+by, 4, 4, cand[:], 4) + s.lambda*2
			if mode == i4DC {
				cost -= s.lambda * 2 // cheap-mode bias
			}
			if cost < bestCost {
				bestCost = cost
				bestMode = mode
				best = cand
			}
		}
		md.i4Modes[bi] = bestMode

		var blk [16]int32
		codec.Residual4(&blk, src.Y, src.YOrigin+(py+by)*src.YStride+px+bx, src.YStride, best[:], 0, 4, s.e.cfg.Kernels)
		dct.Forward4(&blk)
		nz := quant.H264Quant(&blk, s.qp, true)
		md.luma[bi] = blk
		md.lumaNZ[bi] = nz > 0

		// Immediate reconstruction: later blocks predict from it.
		ro := recon.YOrigin + (py+by)*recon.YStride + px + bx
		rblk := blk
		quant.H264Dequant(&rblk, s.qp)
		dct.Inverse4(&rblk)
		codec.Add4Clip(recon.Y, ro, recon.YStride, best[:], 0, 4, &rblk, s.e.cfg.Kernels)
	}
	for g := 0; g < 4; g++ {
		for _, bi := range lumaGroupBlocks[g] {
			if md.lumaNZ[bi] {
				md.cbpLuma |= 1 << g
				break
			}
		}
	}
}

// intraChroma predicts chroma with the DC mode and runs the chroma
// residual pipeline.
//
//hdvlint:noalloc
func (s *rowEnc) intraChroma(src, recon *frame.Frame, px, py int, md *mbData) {
	cx, cy := px/2, py/2
	availTop := py > s.topPx
	predChromaDC(s.predC[0][:], recon.Cb, recon.COrigin, recon.CStride, cx, cy, px > 0, availTop)
	predChromaDC(s.predC[1][:], recon.Cr, recon.COrigin, recon.CStride, cx, cy, px > 0, availTop)
	s.transformChroma(src, px, py, true, md)
}

// i4CostEstimate returns the summed best-mode SAD over the 16 blocks,
// predicting from the source (cheap approximation used only for the
// I4-vs-I16 decision).
//
//hdvlint:noalloc
func (s *rowEnc) i4CostEstimate(src, recon *frame.Frame, px, py int) int {
	total := 0
	var cand [16]byte
	for bi := 0; bi < 16; bi++ {
		bx, by := 4*(bi%4), 4*(bi/4)
		gx4, gy4 := (px+bx)/4, (py+by)/4
		av := availI4(gx4, gy4, s.e.meta.w4, s.top4)
		best := 1 << 30
		var cands [numI4Modes]int
		for _, mode := range i4Candidates(av, &cands) {
			predI4(cand[:], 4, recon.Y, recon.YOrigin, recon.YStride, px+bx, py+by, mode, av)
			if sad := s.sadBlock(src, px+bx, py+by, 4, 4, cand[:], 4); sad < best {
				best = sad
			}
		}
		total += best + s.lambda*3
	}
	return total
}

// --- I macroblocks ---------------------------------------------------------------

//hdvlint:noalloc
func (s *rowEnc) decideIMB(src, recon *frame.Frame, mbx, mby int, rec *mbRec) {
	px, py := mbx*16, mby*16
	md := &rec.md

	i16Mode, i16Cost := s.bestI16(src, recon, px, py)
	// The I4 estimate predicts from already-reconstructed pixels only
	// approximately (blocks inside the MB are not yet coded), so bias I16.
	i4Cost := s.i4CostEstimate(src, recon, px, py) + s.lambda*24

	if i4Cost < i16Cost {
		rec.kind = recI4
		s.encodeI4Into(src, recon, px, py, md)
		md.mode = mI4x4
	} else {
		rec.kind = recI16
		s.encodeI16Into(src, recon, px, py, i16Mode, md)
		md.mode = mI16x16
	}
	s.intraChroma(src, recon, px, py, md)
	s.reconChroma(recon, px, py, md)

	s.e.meta.setBlock(px/4, py/4, 4, 4, motion.MV{}, -1)
	s.updateMetaNZ(px, py, md, md.mode == mI16x16)
}

// --- P macroblocks ---------------------------------------------------------------

// partGeom lists partition geometry per mode: offsets and sizes in pixels.
var partGeom = map[int][][4]int{
	mP16x16: {{0, 0, 16, 16}},
	mP16x8:  {{0, 0, 16, 8}, {0, 8, 16, 8}},
	mP8x16:  {{0, 0, 8, 16}, {8, 0, 8, 16}},
	mP8x8:   {{0, 0, 8, 8}, {8, 0, 8, 8}, {0, 8, 8, 8}, {8, 8, 8, 8}},
}

// partModes lists the sub-partition hypotheses tried when 16×16 leaves
// residual energy, in decision order.
var partModes = [3]int{mP16x8, mP8x16, mP8x8}

//hdvlint:noalloc
func (s *rowEnc) decidePMB(src, recon *frame.Frame, mbx, mby int, rec *mbRec) {
	px, py := mbx*16, mby*16
	bx4, by4 := px/4, py/4
	nRefs := s.e.refs.Len()
	mvp := s.e.meta.predictMV(bx4, by4, 4, s.top4)

	// 16×16 search across references.
	bestRef := int8(0)
	var bestMV motion.MV
	bestCost := 1 << 30
	bestSAD := 0
	for ri := 0; ri < nRefs; ri++ {
		mv, sad := s.searchRef(src, s.e.refs.Get(ri), px, py, 16, 16, mvp, s.tmpY[:])
		cost := sad + s.lambda*(mvdBits(mv, mvp)+2*ri)
		if cost < bestCost {
			bestCost = cost
			bestSAD = sad
			bestRef = int8(ri)
			bestMV = mv
		}
	}
	ref := s.e.refs.Get(int(bestRef))
	mode := mP16x16
	mvs := [4]motion.MV{bestMV}

	// Partition hypotheses only when 16×16 leaves real residual energy.
	if bestSAD > 16*16*3 {
		for _, m := range partModes {
			parts := partGeom[m]
			total := s.lambda * 4 // mode overhead
			var pmvs [4]motion.MV
			for pi, g := range parts {
				mv, sad := s.searchRef(src, ref, px+g[0], py+g[1], g[2], g[3], bestMV, s.tmpY[:])
				pmvs[pi] = mv
				total += sad + s.lambda*mvdBits(mv, bestMV)
			}
			if total < bestCost {
				bestCost = total
				mode = m
				mvs = pmvs
			}
		}
	}

	// Intra hypothesis.
	md := &rec.md
	i16Mode, i16Cost := s.bestI16(src, recon, px, py)
	if i16Cost+s.lambda*16 < bestCost {
		rec.kind = recPIntra
		md.mode = mI16x16
		s.encodeI16Into(src, recon, px, py, i16Mode, md)
		s.intraChroma(src, recon, px, py, md)
		s.reconChroma(recon, px, py, md)
		s.e.meta.setBlock(bx4, by4, 4, 4, motion.MV{}, -1)
		s.updateMetaNZ(px, py, md, true)
		return
	}

	// Build the inter prediction for the chosen mode.
	parts := partGeom[mode]
	for pi, g := range parts {
		s.mcLumaPart(ref, px, py, g[0], g[1], g[2], g[3], mvs[pi])
		s.mcChromaPart(ref, px, py, g[0], g[1], g[2], g[3], mvs[pi])
	}

	md.mode = mode
	md.ref = bestRef
	md.mvs = mvs
	s.transformLumaInter(src, px, py, md)
	s.transformChroma(src, px, py, false, md)

	// P-skip: 16×16, ref 0, MV == predictor, no residual.
	if mode == mP16x16 && bestRef == 0 && bestMV == mvp &&
		md.cbpLuma == 0 && md.cbpChroma == 0 {
		rec.kind = recSkip
		s.reconLumaInter(recon, px, py, md)
		s.reconChroma(recon, px, py, md)
		s.e.meta.setBlock(bx4, by4, 4, 4, mvp, 0)
		s.updateMetaNZ(px, py, md, false)
		return
	}

	rec.kind = recPInter
	// The predictor for each partition is sampled between setBlock calls,
	// exactly where the serial code wrote the mvd fields — the recorded
	// pmvp values reproduce that interleaving at emission time.
	for pi, g := range parts {
		rec.pmvp[pi] = s.e.meta.predictMV(bx4+g[0]/4, by4+g[1]/4, g[2]/4, s.top4)
		s.e.meta.setBlock(bx4+g[0]/4, by4+g[1]/4, g[2]/4, g[3]/4, mvs[pi], bestRef)
	}
	s.reconLumaInter(recon, px, py, md)
	s.reconChroma(recon, px, py, md)
	s.updateMetaNZ(px, py, md, false)
}

// mcLumaPart motion-compensates one luma partition into predY (via the
// reference's half-pel planes, like mcLumaInto).
//
//hdvlint:noalloc
func (s *rowEnc) mcLumaPart(ref *frame.Frame, px, py, ox, oy, w, h int, mv motion.MV) {
	ix, fx := splitQuarter(int(mv.X))
	iy, fy := splitQuarter(int(mv.Y))
	so := ref.YOrigin + (py+oy+iy)*ref.YStride + px + ox + ix
	interp.LumaPlanes(s.predY[oy*16+ox:], 16, ref.Y, ref.Hpel6, so, ref.YStride, w, h, fx, fy, s.e.cfg.Kernels)
}

// --- B macroblocks ---------------------------------------------------------------

//hdvlint:noalloc
func (s *rowEnc) decideBMB(src, recon *frame.Frame, mbx, mby int, rec *mbRec) {
	px, py := mbx*16, mby*16
	bx4, by4 := px/4, py/4
	fwdRef := s.e.refs.Get(1)
	bwdRef := s.e.refs.Get(0)
	mvpF := s.e.meta.predictMV(bx4, by4, 4, s.top4)

	var fwdPred, bwdPred [256]byte
	fwdMV, fwdSAD := s.searchRef(src, fwdRef, px, py, 16, 16, mvpF, fwdPred[:])
	bwdMV, bwdSAD := s.searchRef(src, bwdRef, px, py, 16, 16, s.bwdPredRow, bwdPred[:])

	var bi [256]byte
	copy(bi[:], fwdPred[:])
	interp.Avg(bi[:], 16, bwdPred[:], 16, 16, 16, s.e.cfg.Kernels)
	biSAD := s.sadBlock(src, px, py, 16, 16, bi[:], 16)

	fwdCost := fwdSAD + s.lambda*mvdBits(fwdMV, mvpF)
	bwdCost := bwdSAD + s.lambda*mvdBits(bwdMV, s.bwdPredRow)
	biCost := biSAD + s.lambda*(mvdBits(fwdMV, mvpF)+mvdBits(bwdMV, s.bwdPredRow)+4)

	mode := mBFwd
	best := fwdCost
	if bwdCost < best {
		mode, best = mBBwd, bwdCost
	}
	if biCost < best {
		mode, best = mBBi, biCost
	}

	md := &rec.md
	i16Mode, i16Cost := s.bestI16(src, recon, px, py)
	if i16Cost+s.lambda*16 < best {
		rec.kind = recBIntra
		md.mode = mI16x16
		s.encodeI16Into(src, recon, px, py, i16Mode, md)
		s.intraChroma(src, recon, px, py, md)
		s.reconChroma(recon, px, py, md)
		s.e.meta.setBlock(bx4, by4, 4, 4, motion.MV{}, -1)
		s.updateMetaNZ(px, py, md, true)
		return
	}

	// Assemble the final prediction.
	switch mode {
	case mBFwd:
		copy(s.predY[:], fwdPred[:])
		s.mcChromaPart(fwdRef, px, py, 0, 0, 16, 16, fwdMV)
	case mBBwd:
		copy(s.predY[:], bwdPred[:])
		s.mcChromaPart(bwdRef, px, py, 0, 0, 16, 16, bwdMV)
	case mBBi:
		copy(s.predY[:], bi[:])
		s.mcChromaPart(fwdRef, px, py, 0, 0, 16, 16, fwdMV)
		var cbF, crF [64]byte
		copy(cbF[:], s.predC[0][:])
		copy(crF[:], s.predC[1][:])
		s.mcChromaPart(bwdRef, px, py, 0, 0, 16, 16, bwdMV)
		interp.Avg(s.predC[0][:], 8, cbF[:], 8, 8, 8, s.e.cfg.Kernels)
		interp.Avg(s.predC[1][:], 8, crF[:], 8, 8, 8, s.e.cfg.Kernels)
	}

	md.mode = mode
	s.transformLumaInter(src, px, py, md)
	s.transformChroma(src, px, py, false, md)

	// B-skip: forward, MV == predictor, no residual.
	if mode == mBFwd && fwdMV == mvpF && md.cbpLuma == 0 && md.cbpChroma == 0 {
		rec.kind = recSkip
		s.reconLumaInter(recon, px, py, md)
		s.reconChroma(recon, px, py, md)
		s.e.meta.setBlock(bx4, by4, 4, 4, mvpF, 0)
		s.updateMetaNZ(px, py, md, false)
		return
	}

	rec.kind = recBInter
	md.mvs[0] = fwdMV
	md.mvs[1] = bwdMV
	rec.pmvp[0] = mvpF
	rec.pmvp[1] = s.bwdPredRow
	if mode == mBBwd || mode == mBBi {
		s.bwdPredRow = bwdMV
	}
	switch mode {
	case mBFwd, mBBi:
		s.e.meta.setBlock(bx4, by4, 4, 4, fwdMV, 0)
	default:
		s.e.meta.setBlock(bx4, by4, 4, 4, bwdMV, 0)
	}
	s.reconLumaInter(recon, px, py, md)
	s.reconChroma(recon, px, py, md)
	s.updateMetaNZ(px, py, md, false)
}
