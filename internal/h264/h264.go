// Package h264 implements the HD-VideoBench H.264-class video codec: the
// role x264 (encoder) and FFmpeg's H.264 decoder play in the paper. Toolset:
//
//   - 4×4 integer transform with Hadamard DC transforms,
//   - intra prediction (9-mode-family I4×4 subset and I16×16 V/H/DC/Plane),
//   - variable partitions (16×16, 16×8, 8×16, 8×8) with quarter-pel MC,
//   - multiple reference frames for P pictures,
//   - in-loop deblocking filter,
//   - CABAC-class adaptive binary arithmetic coding (with an Exp-Golomb
//     VLC fallback as the CAVLC-class ablation),
//   - hexagon motion search (the paper's x264 --me hex).
//
// The bitstream is the HDVB container format (see DESIGN.md §2); encoder
// and decoder form a complete bit-exact pair. Omissions vs the standard
// (sub-8×8 partitions, interlace tools, the four diagonal-family I4×4 modes
// VR/HD/VL/HU, weighted prediction) are documented in DESIGN.md §6.
package h264

import (
	"fmt"

	"hdvideobench/internal/bitstream"
	"hdvideobench/internal/codec"
	"hdvideobench/internal/container"
	"hdvideobench/internal/entropy"
	"hdvideobench/internal/motion"
)

// Macroblock modes.
const (
	mP16x16 = 0
	mP16x8  = 1
	mP8x16  = 2
	mP8x8   = 3
	mI4x4   = 4
	mI16x16 = 5

	mBFwd = 0
	mBBwd = 1
	mBBi  = 2
	// B intra modes reuse mI4x4/mI16x16 offsets 3 and 4.
	mBI4x4   = 3
	mBI16x16 = 4
)

// Intra 4×4 prediction modes (subset of the standard's nine).
const (
	i4Vertical = iota
	i4Horizontal
	i4DC
	i4DiagDownLeft
	i4DiagDownRight
	numI4Modes
)

// Intra 16×16 prediction modes.
const (
	i16Vertical = iota
	i16Horizontal
	i16DC
	i16Plane
	numI16Modes
)

// Header flag bit 0: entropy mode (0 = CABAC, 1 = VLC). Bits 1-4 carry the
// reference-list size (the encoder's --ref setting), which the decoder
// needs to know whether refIdx syntax is present.
const (
	flagVLC       = 1
	flagRefsShift = 1
	flagRefsMask  = 0xF
)

func header(cfg codec.Config, frames int) container.Header {
	flags := uint16(cfg.Refs&flagRefsMask) << flagRefsShift
	if cfg.Entropy == codec.EntropyVLC {
		flags |= flagVLC
	}
	if cfg.SliceQ() {
		flags |= container.FlagSliceQ
	}
	return container.Header{
		Codec:  container.CodecH264,
		Flags:  flags,
		Width:  cfg.Width,
		Height: cfg.Height,
		FPSNum: cfg.FPSNum,
		FPSDen: cfg.FPSDen,
		Frames: frames,
	}
}

func validateSize(hdr container.Header) error {
	if hdr.Width%16 != 0 || hdr.Height%16 != 0 || hdr.Width <= 0 || hdr.Height <= 0 {
		return fmt.Errorf("h264: invalid dimensions %dx%d", hdr.Width, hdr.Height)
	}
	return nil
}

func splitQuarter(v int) (ipel, frac int) { return v >> 2, v & 3 }

func clampMVToWindow(ival, pos, size, blk int) int {
	lo := -pos - (codec.RefPad - 8)
	hi := size - pos - blk + (codec.RefPad - 8)
	if ival < lo {
		ival = lo
	}
	if ival > hi {
		ival = hi
	}
	return ival
}

// frameMeta carries the per-4×4-block state of the frame being coded:
// motion vectors and reference indices for MV prediction and deblocking
// strength, and non-zero flags for deblocking.
type frameMeta struct {
	w4, h4 int
	mv     []motion.MV
	ref    []int8 // ≥0 reference index, -1 intra
	nz     []bool // any non-zero luma coefficients in the 4×4 block
}

func newFrameMeta(width, height int) *frameMeta {
	w4, h4 := width/4, height/4
	return &frameMeta{
		w4: w4, h4: h4,
		mv:  make([]motion.MV, w4*h4),
		ref: make([]int8, w4*h4),
		nz:  make([]bool, w4*h4),
	}
}

func (m *frameMeta) reset() {
	for i := range m.mv {
		m.mv[i] = motion.MV{}
		m.ref[i] = -1
		m.nz[i] = false
	}
}

// setBlock fills a bw4×bh4 region of the grids (coordinates in 4×4 units).
func (m *frameMeta) setBlock(bx4, by4, bw4, bh4 int, mv motion.MV, ref int8) {
	for y := by4; y < by4+bh4; y++ {
		for x := bx4; x < bx4+bw4; x++ {
			m.mv[y*m.w4+x] = mv
			m.ref[y*m.w4+x] = ref
		}
	}
}

// predictMV returns the median MV predictor for a partition whose top-left
// 4×4 block is (bx4, by4) and whose width is bw4 blocks, considering only
// neighbours with the same reference... the simplified rule used here takes
// the component median of left/top/top-right regardless of their reference,
// matching encoder and decoder exactly. top4 is the slice's first 4×4 row:
// neighbours above it belong to a different slice (possibly still being
// coded) and must not be read, so every "above" test clamps against it.
func (m *frameMeta) predictMV(bx4, by4, bw4, top4 int) motion.MV {
	var a, b, c motion.MV
	aOK := bx4 > 0 && m.ref[by4*m.w4+bx4-1] >= 0
	if aOK {
		a = m.mv[by4*m.w4+bx4-1]
	}
	bOK := by4 > top4 && m.ref[(by4-1)*m.w4+bx4] >= 0
	if bOK {
		b = m.mv[(by4-1)*m.w4+bx4]
	}
	cx := bx4 + bw4
	cOK := by4 > top4 && cx < m.w4 && m.ref[(by4-1)*m.w4+cx] >= 0
	if !cOK && by4 > top4 && bx4 > 0 && m.ref[(by4-1)*m.w4+bx4-1] >= 0 {
		c = m.mv[(by4-1)*m.w4+bx4-1]
		cOK = true
	} else if cOK {
		c = m.mv[(by4-1)*m.w4+cx]
	}
	// Standard-style special case: only the left neighbour exists.
	if aOK && !bOK && !cOK {
		return a
	}
	return motion.MedianMV(a, b, c)
}

// contexts groups every adaptive probability model of the CABAC coder.
// Encoder and decoder construct it identically and it adapts in lockstep.
type contexts struct {
	skip      [1]entropy.Prob
	mbType    [4]entropy.Prob
	refIdx    [3]entropy.Prob
	mvd       [8]entropy.Prob
	i4Mode    [3]entropy.Prob
	i16Mode   [2]entropy.Prob
	chromaCBP [2]entropy.Prob
	cbpLuma   [4]entropy.Prob

	cbf     [4]entropy.Prob // coded block flag per block category
	sig     [16]entropy.Prob
	last    [16]entropy.Prob
	level   [8]entropy.Prob
	sigDC   [8]entropy.Prob
	lastDC  [8]entropy.Prob
	levelDC [6]entropy.Prob
}

func newContexts() *contexts {
	c := &contexts{}
	c.reset()
	return c
}

// reset reinitializes every probability model — a slice boundary in the
// entropy layer. Reusing one contexts value across frames keeps the
// macroblock loop allocation-free.
func (c *contexts) reset() {
	entropy.ResetProbs(c.skip[:])
	entropy.ResetProbs(c.mbType[:])
	entropy.ResetProbs(c.refIdx[:])
	entropy.ResetProbs(c.mvd[:])
	entropy.ResetProbs(c.i4Mode[:])
	entropy.ResetProbs(c.i16Mode[:])
	entropy.ResetProbs(c.chromaCBP[:])
	entropy.ResetProbs(c.cbpLuma[:])
	entropy.ResetProbs(c.cbf[:])
	entropy.ResetProbs(c.sig[:])
	entropy.ResetProbs(c.last[:])
	entropy.ResetProbs(c.level[:])
	entropy.ResetProbs(c.sigDC[:])
	entropy.ResetProbs(c.lastDC[:])
	entropy.ResetProbs(c.levelDC[:])
}

// symWriter abstracts the entropy backend: the CABAC range coder or the
// plain Exp-Golomb bit writer (the EntropyVLC ablation). Context arguments
// are ignored by the VLC backend.
type symWriter interface {
	bit(ctx *entropy.Prob, v int)
	bypass(v int)
	ue(ctx []entropy.Prob, escape int, v uint32)
	se(ctx []entropy.Prob, escape int, v int32)
	finish() []byte
	reset() // prepare for a new slice, reusing the buffer
}

type symReader interface {
	bit(ctx *entropy.Prob) int
	bypass() int
	ue(ctx []entropy.Prob, escape int) uint32
	se(ctx []entropy.Prob, escape int) int32
	err() error
}

type cabacWriter struct{ e *entropy.Encoder }

func (w cabacWriter) bit(ctx *entropy.Prob, v int) { w.e.EncodeBit(ctx, v) }
func (w cabacWriter) bypass(v int)                 { w.e.EncodeBypass(v) }
func (w cabacWriter) ue(ctx []entropy.Prob, escape int, v uint32) {
	w.e.EncodeUE(ctx, escape, v)
}
func (w cabacWriter) se(ctx []entropy.Prob, escape int, v int32) {
	w.e.EncodeSE(ctx, escape, v)
}
func (w cabacWriter) finish() []byte { return w.e.Finish() }
func (w cabacWriter) reset()         { w.e.Reset() }

type cabacReader struct{ d *entropy.Decoder }

func (r cabacReader) bit(ctx *entropy.Prob) int { return r.d.DecodeBit(ctx) }
func (r cabacReader) bypass() int               { return r.d.DecodeBypass() }
func (r cabacReader) ue(ctx []entropy.Prob, escape int) uint32 {
	return r.d.DecodeUE(ctx, escape)
}
func (r cabacReader) se(ctx []entropy.Prob, escape int) int32 {
	return r.d.DecodeSE(ctx, escape)
}
func (r cabacReader) err() error { return nil }

type vlcWriter struct{ w *bitstream.Writer }

func (w vlcWriter) bit(_ *entropy.Prob, v int) { w.w.WriteBit(v) }
func (w vlcWriter) bypass(v int)               { w.w.WriteBit(v) }
func (w vlcWriter) ue(_ []entropy.Prob, _ int, v uint32) {
	entropy.WriteUE(w.w, v)
}
func (w vlcWriter) se(_ []entropy.Prob, _ int, v int32) {
	entropy.WriteSE(w.w, v)
}
func (w vlcWriter) finish() []byte { return w.w.Bytes() }
func (w vlcWriter) reset()         { w.w.Reset() }

type vlcReader struct{ r *bitstream.Reader }

func (r vlcReader) bit(_ *entropy.Prob) int { return r.r.ReadBit() }
func (r vlcReader) bypass() int             { return r.r.ReadBit() }
func (r vlcReader) ue(_ []entropy.Prob, _ int) uint32 {
	return entropy.ReadUE(r.r)
}
func (r vlcReader) se(_ []entropy.Prob, _ int) int32 {
	return entropy.ReadSE(r.r)
}
func (r vlcReader) err() error { return r.r.Err() }
