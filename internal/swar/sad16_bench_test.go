package swar

import (
	"math/rand"
	"testing"
)

func scalarSAD16(a []byte, as int, b []byte, bs, h int) int {
	s := 0
	for r := 0; r < h; r++ {
		ar, br := a[r*as:r*as+16], b[r*bs:r*bs+16]
		for i := 0; i < 16; i++ {
			d := int(ar[i]) - int(br[i])
			if d < 0 {
				d = -d
			}
			s += d
		}
	}
	return s
}

func BenchmarkSAD16SWAR(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := make([]byte, 1920*32)
	y := make([]byte, 1920*32)
	rng.Read(x)
	rng.Read(y)
	for i := 0; i < b.N; i++ {
		sadSink += SAD16(x[i%64:], 1920, y[(i*7)%64:], 1920, 16)
	}
}

func BenchmarkSAD16Scalar(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := make([]byte, 1920*32)
	y := make([]byte, 1920*32)
	rng.Read(x)
	rng.Read(y)
	for i := 0; i < b.N; i++ {
		sadSink += scalarSAD16(x[i%64:], 1920, y[(i*7)%64:], 1920, 16)
	}
}
