package swar

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randBytes(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func scalarSAD(a, b []byte, n int) int {
	s := 0
	for i := 0; i < n; i++ {
		d := int(a[i]) - int(b[i])
		if d < 0 {
			d = -d
		}
		s += d
	}
	return s
}

func TestAbsDiffSum8MatchesScalar(t *testing.T) {
	check := func(a, b [8]byte) bool {
		av := Load64(a[:])
		bv := Load64(b[:])
		return AbsDiffSum8(av, bv) == scalarSAD(a[:], b[:], 8)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestAbsDiffSum8Extremes(t *testing.T) {
	cases := []struct{ a, b [8]byte }{
		{[8]byte{0, 0, 0, 0, 0, 0, 0, 0}, [8]byte{255, 255, 255, 255, 255, 255, 255, 255}},
		{[8]byte{255, 0, 255, 0, 255, 0, 255, 0}, [8]byte{0, 255, 0, 255, 0, 255, 0, 255}},
		{[8]byte{128, 128, 128, 128, 128, 128, 128, 128}, [8]byte{128, 128, 128, 128, 128, 128, 128, 128}},
	}
	for _, c := range cases {
		want := scalarSAD(c.a[:], c.b[:], 8)
		if got := AbsDiffSum8(Load64(c.a[:]), Load64(c.b[:])); got != want {
			t.Errorf("a=%v b=%v: got %d want %d", c.a, c.b, got, want)
		}
	}
}

func TestSADRowOddLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 3, 7, 8, 9, 15, 16, 17, 31, 100} {
		a := randBytes(rng, n)
		b := randBytes(rng, n)
		if got, want := SADRow(a, b, n), scalarSAD(a, b, n); got != want {
			t.Errorf("n=%d: got %d want %d", n, got, want)
		}
	}
}

func TestSADBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randBytes(rng, 64*64)
	b := randBytes(rng, 64*64)
	want := 0
	for r := 0; r < 16; r++ {
		want += scalarSAD(a[r*64:], b[r*48:], 16)
	}
	if got := SADBlock(a, 64, b, 48, 16, 16); got != want {
		t.Errorf("got %d want %d", got, want)
	}
}

func TestSAD16AndSAD8x(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randBytes(rng, 64*64)
	b := randBytes(rng, 64*64)
	for _, h := range []int{4, 8, 16, 48} {
		want := 0
		for r := 0; r < h; r++ {
			want += scalarSAD(a[r*64:], b[r*40:], 16)
		}
		if got := SAD16(a, 64, b, 40, h); got != want {
			t.Errorf("SAD16 h=%d: got %d want %d", h, got, want)
		}
		want8 := 0
		for r := 0; r < h; r++ {
			want8 += scalarSAD(a[r*64:], b[r*40:], 8)
		}
		if got := SAD8x(a, 64, b, 40, h); got != want8 {
			t.Errorf("SAD8x h=%d: got %d want %d", h, got, want8)
		}
	}
	// SADBlock must dispatch consistently for all widths.
	for _, w := range []int{4, 8, 12, 16} {
		want := 0
		for r := 0; r < 8; r++ {
			want += scalarSAD(a[r*64:], b[r*40:], w)
		}
		if got := SADBlock(a, 64, b, 40, w, 8); got != want {
			t.Errorf("SADBlock w=%d: got %d want %d", w, got, want)
		}
	}
}

func TestSADRowWorstCaseAccumulation(t *testing.T) {
	// All-255 vs all-0 over a long row exercises lane saturation margins.
	n := 4096
	a := make([]byte, n)
	b := make([]byte, n)
	for i := range a {
		a[i] = 255
	}
	if got := SADRow(a, b, n); got != 255*n {
		t.Fatalf("got %d want %d", got, 255*n)
	}
}

func TestAvgRound8MatchesScalar(t *testing.T) {
	check := func(a, b [8]byte) bool {
		got := AvgRound8(Load64(a[:]), Load64(b[:]))
		for i := 0; i < 8; i++ {
			want := byte((int(a[i]) + int(b[i]) + 1) >> 1)
			if byte(got>>(8*uint(i))) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestAvgFloor8MatchesScalar(t *testing.T) {
	check := func(a, b [8]byte) bool {
		got := AvgFloor8(Load64(a[:]), Load64(b[:]))
		for i := 0; i < 8; i++ {
			want := byte((int(a[i]) + int(b[i])) >> 1)
			if byte(got>>(8*uint(i))) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestAvg4Round2MatchesScalar(t *testing.T) {
	check := func(a, b, c, d [8]byte) bool {
		got := Avg4Round2(Load64(a[:]), Load64(b[:]), Load64(c[:]), Load64(d[:]))
		for i := 0; i < 8; i++ {
			want := byte((int(a[i]) + int(b[i]) + int(c[i]) + int(d[i]) + 2) >> 2)
			if byte(got>>(8*uint(i))) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestAvgRowRoundTail(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 7, 8, 9, 13, 24, 33} {
		a := randBytes(rng, n)
		b := randBytes(rng, n)
		dst := make([]byte, n)
		AvgRowRound(dst, a, b, n)
		for i := 0; i < n; i++ {
			want := byte((int(a[i]) + int(b[i]) + 1) >> 1)
			if dst[i] != want {
				t.Fatalf("n=%d i=%d: got %d want %d", n, i, dst[i], want)
			}
		}
	}
}

func TestSumRow(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{0, 1, 8, 15, 16, 64, 100} {
		a := randBytes(rng, n)
		want := 0
		for _, v := range a {
			want += int(v)
		}
		if got := SumRow(a, n); got != want {
			t.Errorf("n=%d: got %d want %d", n, got, want)
		}
	}
}

func TestCopyBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	src := randBytes(rng, 32*32)
	dst := make([]byte, 32*32)
	CopyBlock(dst, 32, src, 32, 16, 16)
	for r := 0; r < 16; r++ {
		for c := 0; c < 16; c++ {
			if dst[r*32+c] != src[r*32+c] {
				t.Fatalf("mismatch at %d,%d", r, c)
			}
		}
	}
}

var sadSink int

func BenchmarkSADRowSWAR(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	x := randBytes(rng, 1024)
	y := randBytes(rng, 1024)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		sadSink += SADRow(x, y, 1024)
	}
}

func BenchmarkSADRowScalar(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	x := randBytes(rng, 1024)
	y := randBytes(rng, 1024)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		sadSink += scalarSAD(x, y, 1024)
	}
}

var avgSink = make([]byte, 1024)

func BenchmarkAvgRowSWAR(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	x := randBytes(rng, 1024)
	y := randBytes(rng, 1024)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		AvgRowRound(avgSink, x, y, 1024)
	}
}

func BenchmarkAvgRowScalar(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	x := randBytes(rng, 1024)
	y := randBytes(rng, 1024)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		for j := 0; j < 1024; j++ {
			avgSink[j] = byte((int(x[j]) + int(y[j]) + 1) >> 1)
		}
	}
}
