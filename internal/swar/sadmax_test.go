package swar

import (
	"math/rand"
	"testing"
)

func refSAD(a []byte, aStride int, b []byte, bStride, w, h int) int {
	sad := 0
	for r := 0; r < h; r++ {
		for c := 0; c < w; c++ {
			d := int(a[r*aStride+c]) - int(b[r*bStride+c])
			if d < 0 {
				d = -d
			}
			sad += d
		}
	}
	return sad
}

// TestSADBlockMaxExact pins the early-termination contract: the result is
// the exact SAD whenever that SAD is below the threshold, and some value
// >= the threshold otherwise (so `sad < max` comparisons are exact).
func TestSADBlockMaxExact(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, dims := range [][2]int{{16, 16}, {16, 8}, {8, 8}, {8, 16}, {4, 4}, {12, 7}} {
		w, h := dims[0], dims[1]
		aStride, bStride := w+3, w+9
		a := make([]byte, aStride*h+16)
		b := make([]byte, bStride*h+16)
		for trial := 0; trial < 200; trial++ {
			for i := range a {
				a[i] = byte(rng.Intn(256))
			}
			for i := range b {
				b[i] = byte(rng.Intn(256))
			}
			if trial%4 == 0 { // near-identical blocks: the low-SAD regime
				copy(b, a)
				b[rng.Intn(len(b))] ^= byte(1 << uint(rng.Intn(3)))
			}
			exact := refSAD(a, aStride, b, bStride, w, h)
			for _, max := range []int{0, 1, exact / 2, exact, exact + 1, 1 << 30} {
				got := SADBlockMax(a, aStride, b, bStride, w, h, max)
				if exact < max && got != exact {
					t.Fatalf("%dx%d max=%d: got %d, want exact %d", w, h, max, got, exact)
				}
				if exact >= max && got < max {
					t.Fatalf("%dx%d max=%d: got %d < max but exact is %d", w, h, max, got, exact)
				}
				if got > exact {
					t.Fatalf("%dx%d max=%d: got %d exceeds exact %d", w, h, max, got, exact)
				}
			}
		}
	}
}

// TestSADBlockMaxBails proves the bail actually happens: a block whose
// first row group already exceeds the threshold must not read the rest
// (we place out-of-bounds-poisoned strides... here we simply check the
// partial-sum return is below the full SAD).
func TestSADBlockMaxBails(t *testing.T) {
	w, h := 16, 16
	a := make([]byte, w*h)
	b := make([]byte, w*h)
	for i := range a {
		a[i] = 255 // every row contributes 16*255 = 4080
	}
	got := SADBlockMax(a, w, b, w, w, h, 100)
	if got < 100 {
		t.Fatalf("bail returned %d < max", got)
	}
	if full := refSAD(a, w, b, w, w, h); got >= full {
		t.Fatalf("no early termination: got %d, full SAD %d", got, full)
	}
}

func refSADAvg2(cur []byte, curStride int, a []byte, aStride int, b []byte, bStride, w, h int) int {
	sad := 0
	for r := 0; r < h; r++ {
		for c := 0; c < w; c++ {
			avg := (int(a[r*aStride+c]) + int(b[r*bStride+c]) + 1) >> 1
			d := int(cur[r*curStride+c]) - avg
			if d < 0 {
				d = -d
			}
			sad += d
		}
	}
	return sad
}

// TestSADAvg2MaxExact pins the fused SAD-of-average kernel to the same
// early-termination contract as SADBlockMax: exact below max, some
// partial >= max otherwise, never above the true SAD.
func TestSADAvg2MaxExact(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for _, dims := range [][2]int{{16, 16}, {16, 8}, {8, 8}, {8, 16}, {4, 4}, {12, 7}} {
		w, h := dims[0], dims[1]
		cs, as, bs := w+5, w+3, w+9
		cur := make([]byte, cs*h+16)
		a := make([]byte, as*h+16)
		b := make([]byte, bs*h+16)
		for trial := 0; trial < 200; trial++ {
			for i := range cur {
				cur[i] = byte(rng.Intn(256))
			}
			for i := range a {
				a[i] = byte(rng.Intn(256))
			}
			for i := range b {
				b[i] = byte(rng.Intn(256))
			}
			if trial%4 == 0 { // near-identical: the low-SAD regime
				copy(a, cur)
				copy(b, cur)
			}
			exact := refSADAvg2(cur, cs, a, as, b, bs, w, h)
			for _, max := range []int{0, 1, exact / 2, exact, exact + 1, 1 << 30} {
				got := SADAvg2Max(cur, cs, a, as, b, bs, w, h, max)
				if exact < max && got != exact {
					t.Fatalf("%dx%d max=%d: got %d, want exact %d", w, h, max, got, exact)
				}
				if exact >= max && got < max {
					t.Fatalf("%dx%d max=%d: got %d < max but exact is %d", w, h, max, got, exact)
				}
				if got > exact {
					t.Fatalf("%dx%d max=%d: got %d exceeds exact %d", w, h, max, got, exact)
				}
			}
		}
	}
}

func TestDiffRow(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{0, 1, 3, 4, 5, 7, 8, 9, 12, 15, 16, 31} {
		cur := make([]byte, n)
		pred := make([]byte, n)
		got := make([]int32, n)
		for trial := 0; trial < 100; trial++ {
			for i := 0; i < n; i++ {
				cur[i] = byte(rng.Intn(256))
				pred[i] = byte(rng.Intn(256))
			}
			DiffRow(got, cur, pred, n)
			for i := 0; i < n; i++ {
				if want := int32(cur[i]) - int32(pred[i]); got[i] != want {
					t.Fatalf("n=%d i=%d: got %d, want %d (cur=%d pred=%d)",
						n, i, got[i], want, cur[i], pred[i])
				}
			}
		}
	}
}

func TestAddClampRow(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	residuals := []int32{-1 << 30, -70000, -512, -257, -256, -255, -1, 0, 1,
		255, 256, 257, 511, 512, 70000, 1 << 30}
	for _, n := range []int{0, 1, 3, 4, 5, 7, 8, 12, 16, 31} {
		pred := make([]byte, n)
		res := make([]int32, n)
		got := make([]byte, n)
		for trial := 0; trial < 200; trial++ {
			for i := 0; i < n; i++ {
				pred[i] = byte(rng.Intn(256))
				if trial%2 == 0 {
					res[i] = residuals[rng.Intn(len(residuals))]
				} else {
					res[i] = int32(rng.Intn(1024) - 512)
				}
			}
			AddClampRow(got, pred, res, n)
			for i := 0; i < n; i++ {
				v := int32(pred[i]) + res[i]
				if v < 0 {
					v = 0
				} else if v > 255 {
					v = 255
				}
				if got[i] != byte(v) {
					t.Fatalf("n=%d i=%d: got %d, want %d (pred=%d res=%d)",
						n, i, got[i], v, pred[i], res[i])
				}
			}
		}
	}
}
