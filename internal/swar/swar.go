// Package swar implements SIMD-within-a-register kernels on uint64 values.
//
// The paper's "SIMD" codec versions use x86 SSE/MMX intrinsics; this package
// is the portable Go substitute (see DESIGN.md §2). Each kernel processes 8
// packed bytes (or 4 packed 16-bit lanes) per operation and is bit-exact
// with the scalar reference implementations it replaces, so scalar and SWAR
// codec builds produce identical bitstreams and reconstructions — only the
// speed differs, which is the axis Figure 1 measures.
package swar

import "encoding/binary"

const (
	lo8    = 0x00FF00FF00FF00FF // even-byte mask / 16-bit lane low bytes
	bias16 = 0x0100010001000100 // +256 per 16-bit lane
	lsb16  = 0x0001000100010001
	low7   = 0x7F7F7F7F7F7F7F7F
)

// Load64 loads 8 bytes little-endian from b.
func Load64(b []byte) uint64 { return binary.LittleEndian.Uint64(b) }

// Store64 stores v little-endian into b.
func Store64(b []byte, v uint64) { binary.LittleEndian.PutUint64(b, v) }

// AbsDiffSum8 returns sum(|a_i - b_i|) over the 8 packed bytes of a and b.
func AbsDiffSum8(a, b uint64) int {
	s := absDiff16(a&lo8, b&lo8) + absDiff16((a>>8)&lo8, (b>>8)&lo8)
	return fold16(s)
}

// fold16 sums the four 16-bit lanes of s (total must fit in 16 bits... the
// callers guarantee each lane ≤ 16383 so the staged fold below is exact).
func fold16(s uint64) int {
	s = (s & 0x0000FFFF0000FFFF) + ((s >> 16) & 0x0000FFFF0000FFFF)
	return int((s & 0xFFFFFFFF) + (s >> 32))
}

// absDiff16 computes per-16-bit-lane |x-y| where every lane of x and y holds
// an 8-bit value. Result lanes are in [0, 255].
func absDiff16(x, y uint64) uint64 {
	d := x + bias16 - y    // per lane: 256 + x - y ∈ [1, 511]
	ge := (d >> 8) & lsb16 // 1 iff x >= y
	lt := lsb16 - ge       // 1 iff x < y
	// ge lane: d & 0xFF == x-y.  lt lane: ((d&0xFF) ^ 0xFF) + 1 == 256-d == y-x.
	return ((d & lo8) ^ (lt * 0xFF)) + lt
}

// SADRow returns the sum of absolute differences between a[:n] and b[:n].
// n need not be a multiple of 8.
//
//hdvlint:noalloc
func SADRow(a, b []byte, n int) int {
	sad := 0
	i := 0
	for i+8 <= n {
		// Accumulate packed lanes, folding at most every 24 chunks so the
		// 16-bit lanes (≤ 510 gain per chunk) cannot overflow.
		var acc uint64
		lim := i + 24*8
		for ; i+8 <= n && i < lim; i += 8 {
			av, bv := Load64(a[i:]), Load64(b[i:])
			acc += absDiff16(av&lo8, bv&lo8) + absDiff16((av>>8)&lo8, (bv>>8)&lo8)
		}
		sad += fold16(acc)
	}
	for ; i < n; i++ {
		d := int(a[i]) - int(b[i])
		if d < 0 {
			d = -d
		}
		sad += d
	}
	return sad
}

// SADBlock returns the SAD between a w×h block at a (stride aStride) and the
// corresponding block at b (stride bStride).
//
//hdvlint:noalloc
func SADBlock(a []byte, aStride int, b []byte, bStride, w, h int) int {
	if w == 16 {
		return SAD16(a, aStride, b, bStride, h)
	}
	if w == 8 {
		return SAD8x(a, aStride, b, bStride, h)
	}
	sad := 0
	for r := 0; r < h; r++ {
		sad += SADRow(a[r*aStride:], b[r*bStride:], w)
	}
	return sad
}

// sadGroupRows is the early-termination check granularity of SADBlockMax:
// the partial sum is compared against the bail threshold after every group
// of this many rows. Coarse enough that a winning candidate (which never
// bails) pays almost nothing, fine enough that a clearly losing candidate
// reads only a fraction of its pixels.
const sadGroupRows = 4

// SADBlockMax is SADBlock with early termination. It returns the exact SAD
// whenever that SAD is < max; once the partial sum over complete row groups
// reaches max it returns that partial sum (some value >= max) without
// reading the remaining rows. Callers that only test `sad < max` therefore
// make exactly the decisions the full SAD would — see the package comment
// of internal/motion for why this keeps bitstreams byte-identical.
//
//hdvlint:noalloc
func SADBlockMax(a []byte, aStride int, b []byte, bStride, w, h, max int) int {
	if w == 16 {
		return SAD16Max(a, aStride, b, bStride, h, max)
	}
	if w == 8 {
		return SAD8xMax(a, aStride, b, bStride, h, max)
	}
	sad := 0
	for r := 0; r < h; {
		lim := min(r+sadGroupRows, h)
		for ; r < lim; r++ {
			sad += SADRow(a[r*aStride:], b[r*bStride:], w)
		}
		if sad >= max {
			return sad
		}
	}
	return sad
}

// SAD16 returns the SAD of a 16-wide, h-tall block. h must be ≤ 48 so the
// packed accumulator lanes (≤ 1020 per row) cannot overflow.
//
//hdvlint:noalloc
func SAD16(a []byte, aStride int, b []byte, bStride, h int) int {
	var acc uint64
	for r := 0; r < h; r++ {
		a0 := Load64(a[r*aStride:])
		b0 := Load64(b[r*bStride:])
		a1 := Load64(a[r*aStride+8:])
		b1 := Load64(b[r*bStride+8:])
		acc += absDiff16(a0&lo8, b0&lo8) + absDiff16((a0>>8)&lo8, (b0>>8)&lo8)
		acc += absDiff16(a1&lo8, b1&lo8) + absDiff16((a1>>8)&lo8, (b1>>8)&lo8)
	}
	return fold16(acc)
}

// SAD8x returns the SAD of an 8-wide, h-tall block. h must be ≤ 96.
//
//hdvlint:noalloc
func SAD8x(a []byte, aStride int, b []byte, bStride, h int) int {
	var acc uint64
	for r := 0; r < h; r++ {
		av := Load64(a[r*aStride:])
		bv := Load64(b[r*bStride:])
		acc += absDiff16(av&lo8, bv&lo8) + absDiff16((av>>8)&lo8, (bv>>8)&lo8)
	}
	return fold16(acc)
}

// SAD16Max is SAD16 with early termination at max (see SADBlockMax).
//
//hdvlint:noalloc
func SAD16Max(a []byte, aStride int, b []byte, bStride, h, max int) int {
	sad := 0
	for r := 0; r < h; {
		lim := min(r+sadGroupRows, h)
		var acc uint64
		for ; r < lim; r++ {
			a0 := Load64(a[r*aStride:])
			b0 := Load64(b[r*bStride:])
			a1 := Load64(a[r*aStride+8:])
			b1 := Load64(b[r*bStride+8:])
			acc += absDiff16(a0&lo8, b0&lo8) + absDiff16((a0>>8)&lo8, (b0>>8)&lo8)
			acc += absDiff16(a1&lo8, b1&lo8) + absDiff16((a1>>8)&lo8, (b1>>8)&lo8)
		}
		sad += fold16(acc)
		if sad >= max {
			return sad
		}
	}
	return sad
}

// SAD8xMax is SAD8x with early termination at max (see SADBlockMax).
//
//hdvlint:noalloc
func SAD8xMax(a []byte, aStride int, b []byte, bStride, h, max int) int {
	sad := 0
	for r := 0; r < h; {
		lim := min(r+2*sadGroupRows, h)
		var acc uint64
		for ; r < lim; r++ {
			av := Load64(a[r*aStride:])
			bv := Load64(b[r*bStride:])
			acc += absDiff16(av&lo8, bv&lo8) + absDiff16((av>>8)&lo8, (bv>>8)&lo8)
		}
		sad += fold16(acc)
		if sad >= max {
			return sad
		}
	}
	return sad
}

// SADAvg2Max returns the SAD between a w×h block at cur and the rounded
// per-byte average of the blocks at a and b — sum |cur − (a+b+1)>>1| —
// with early termination at max, same contract as SADBlockMax: exact
// whenever the true SAD is < max, some partial sum >= max otherwise. It
// fuses interp.Avg2 + SADBlockMax for quarter-pel candidate scoring, so
// the 256-byte averaged block is never materialized and a losing
// candidate stops averaging as soon as its partial sum crosses the bail
// threshold.
//
//hdvlint:noalloc
func SADAvg2Max(cur []byte, curStride int, a []byte, aStride int, b []byte, bStride, w, h, max int) int {
	if w == 16 {
		return sadAvg216Max(cur, curStride, a, aStride, b, bStride, h, max)
	}
	if w == 8 {
		return sadAvg28Max(cur, curStride, a, aStride, b, bStride, h, max)
	}
	sad := 0
	for r := 0; r < h; {
		lim := min(r+sadGroupRows, h)
		for ; r < lim; r++ {
			ca, aa, ba := cur[r*curStride:], a[r*aStride:], b[r*bStride:]
			for i := 0; i < w; i++ {
				d := int(ca[i]) - (int(aa[i])+int(ba[i])+1)>>1
				if d < 0 {
					d = -d
				}
				sad += d
			}
		}
		if sad >= max {
			return sad
		}
	}
	return sad
}

func sadAvg216Max(cur []byte, curStride int, a []byte, aStride int, b []byte, bStride, h, max int) int {
	sad := 0
	for r := 0; r < h; {
		lim := min(r+sadGroupRows, h)
		var acc uint64
		for ; r < lim; r++ {
			c0 := Load64(cur[r*curStride:])
			c1 := Load64(cur[r*curStride+8:])
			v0 := AvgRound8(Load64(a[r*aStride:]), Load64(b[r*bStride:]))
			v1 := AvgRound8(Load64(a[r*aStride+8:]), Load64(b[r*bStride+8:]))
			acc += absDiff16(c0&lo8, v0&lo8) + absDiff16((c0>>8)&lo8, (v0>>8)&lo8)
			acc += absDiff16(c1&lo8, v1&lo8) + absDiff16((c1>>8)&lo8, (v1>>8)&lo8)
		}
		sad += fold16(acc)
		if sad >= max {
			return sad
		}
	}
	return sad
}

func sadAvg28Max(cur []byte, curStride int, a []byte, aStride int, b []byte, bStride, h, max int) int {
	sad := 0
	for r := 0; r < h; {
		lim := min(r+2*sadGroupRows, h)
		var acc uint64
		for ; r < lim; r++ {
			cv := Load64(cur[r*curStride:])
			av := AvgRound8(Load64(a[r*aStride:]), Load64(b[r*bStride:]))
			acc += absDiff16(cv&lo8, av&lo8) + absDiff16((cv>>8)&lo8, (av>>8)&lo8)
		}
		sad += fold16(acc)
		if sad >= max {
			return sad
		}
	}
	return sad
}

// AvgRound8 returns per-byte (a+b+1)>>1 of the 8 packed bytes.
func AvgRound8(a, b uint64) uint64 {
	return (a | b) - (((a ^ b) >> 1) & low7)
}

// AvgFloor8 returns per-byte (a+b)>>1 of the 8 packed bytes.
func AvgFloor8(a, b uint64) uint64 {
	return (a & b) + (((a ^ b) >> 1) & low7)
}

// AvgRowRound writes dst[i] = (a[i]+b[i]+1)>>1 for i in [0,n).
//
//hdvlint:noalloc
func AvgRowRound(dst, a, b []byte, n int) {
	i := 0
	for ; i+8 <= n; i += 8 {
		Store64(dst[i:], AvgRound8(Load64(a[i:]), Load64(b[i:])))
	}
	for ; i < n; i++ {
		dst[i] = byte((int(a[i]) + int(b[i]) + 1) >> 1)
	}
}

// AvgBlockRound averages two w×h blocks with rounding into dst.
//
//hdvlint:noalloc
func AvgBlockRound(dst []byte, dStride int, a []byte, aStride int, b []byte, bStride, w, h int) {
	for r := 0; r < h; r++ {
		AvgRowRound(dst[r*dStride:], a[r*aStride:], b[r*bStride:], w)
	}
}

// CopyBlock copies a w×h block from src to dst using 8-byte moves.
//
//hdvlint:noalloc
func CopyBlock(dst []byte, dStride int, src []byte, sStride, w, h int) {
	for r := 0; r < h; r++ {
		d := dst[r*dStride : r*dStride+w]
		s := src[r*sStride : r*sStride+w]
		copy(d, s)
	}
}

// Avg4Round2 computes per-byte (a+b+c+d+2)>>2 of four packed-byte vectors.
// It is exact: the computation widens to 16-bit lanes.
func Avg4Round2(a, b, c, d uint64) uint64 {
	// Even bytes.
	se := (a & lo8) + (b & lo8) + (c & lo8) + (d & lo8) + (lsb16 << 1)
	se = (se >> 2) & lo8
	// Odd bytes.
	so := ((a >> 8) & lo8) + ((b >> 8) & lo8) + ((c >> 8) & lo8) + ((d >> 8) & lo8) + (lsb16 << 1)
	so = (so >> 2) & lo8
	return se | so<<8
}

// Avg4RowRound2 writes dst[i] = (a[i]+b[i]+c[i]+d[i]+2)>>2.
//
//hdvlint:noalloc
func Avg4RowRound2(dst, a, b, c, d []byte, n int) {
	i := 0
	for ; i+8 <= n; i += 8 {
		Store64(dst[i:], Avg4Round2(Load64(a[i:]), Load64(b[i:]), Load64(c[i:]), Load64(d[i:])))
	}
	for ; i < n; i++ {
		dst[i] = byte((int(a[i]) + int(b[i]) + int(c[i]) + int(d[i]) + 2) >> 2)
	}
}

// spread4 distributes the 4 bytes of a 32-bit word into the low bytes of
// the four 16-bit lanes of a uint64.
func spread4(x uint32) uint64 {
	v := uint64(x)
	v = (v | v<<16) & 0x0000FFFF0000FFFF
	return (v | v<<8) & lo8
}

// DiffRow writes dst[i] = int32(cur[i]) - int32(pred[i]) for i in [0, n):
// the residual row of every codec's transform input. Differences are formed
// in biased 16-bit lanes (eight at a time) and unpacked once per lane.
//
//hdvlint:noalloc
func DiffRow(dst []int32, cur, pred []byte, n int) {
	i := 0
	for ; i+8 <= n; i += 8 {
		c := Load64(cur[i:])
		p := Load64(pred[i:])
		de := (c & lo8) + bias16 - (p & lo8)               // even bytes: diff+256
		do := ((c >> 8) & lo8) + bias16 - ((p >> 8) & lo8) // odd bytes
		dst[i+0] = int32(de&0xFFFF) - 256
		dst[i+1] = int32(do&0xFFFF) - 256
		dst[i+2] = int32((de>>16)&0xFFFF) - 256
		dst[i+3] = int32((do>>16)&0xFFFF) - 256
		dst[i+4] = int32((de>>32)&0xFFFF) - 256
		dst[i+5] = int32((do>>32)&0xFFFF) - 256
		dst[i+6] = int32((de>>48)&0xFFFF) - 256
		dst[i+7] = int32(do>>48) - 256
	}
	for ; i+4 <= n; i += 4 {
		c := spread4(binary.LittleEndian.Uint32(cur[i:]))
		p := spread4(binary.LittleEndian.Uint32(pred[i:]))
		d := c + bias16 - p
		dst[i+0] = int32(d&0xFFFF) - 256
		dst[i+1] = int32((d>>16)&0xFFFF) - 256
		dst[i+2] = int32((d>>32)&0xFFFF) - 256
		dst[i+3] = int32(d>>48) - 256
	}
	for ; i < n; i++ {
		dst[i] = int32(cur[i]) - int32(pred[i])
	}
}

// AddClampRow writes dst[i] = clamp(int32(pred[i]) + res[i], 0, 255) for
// i in [0, n): the inter-reconstruction row of every codec. Residuals are
// pre-clamped to [-256, 256] (values outside cannot change the clipped
// result), biased into 16-bit lanes and clamped branch-free four at a time.
//
//hdvlint:noalloc
func AddClampRow(dst, pred []byte, res []int32, n int) {
	i := 0
	for ; i+4 <= n; i += 4 {
		var lanes uint64
		for j := 0; j < 4; j++ {
			v := res[i+j]
			if v > 256 {
				v = 256
			} else if v < -256 {
				v = -256
			}
			lanes |= uint64(v+256) << (16 * j) // biased: [0, 512]
		}
		p := spread4(binary.LittleEndian.Uint32(pred[i:]))
		s := p + lanes // [0, 767], bias +256
		// max(s, 256): lane >= 256 iff bit 9 of s+256 is set.
		mLo := (((s + 256*lsb16) >> 9) & lsb16) * 0xFFFF
		lo := (s & mLo) | ((256 * lsb16) &^ mLo)
		// min(lo, 511): lane > 511 iff bit 10 of lo+512 is set.
		mHi := (((lo + 512*lsb16) >> 10) & lsb16) * 0xFFFF
		hi := (lo &^ mHi) | ((511 * lsb16) & mHi)
		hi -= 256 * lsb16 // un-bias: lanes now in [0, 255]
		dst[i+0] = byte(hi)
		dst[i+1] = byte(hi >> 16)
		dst[i+2] = byte(hi >> 32)
		dst[i+3] = byte(hi >> 48)
	}
	for ; i < n; i++ {
		v := int32(pred[i]) + res[i]
		if v < 0 {
			v = 0
		} else if v > 255 {
			v = 255
		}
		dst[i] = byte(v)
	}
}

// SumRow returns the sum of the first n bytes of a, using 16-bit lane
// accumulation. Used by DC predictors and mean computations.
//
//hdvlint:noalloc
func SumRow(a []byte, n int) int {
	sum := 0
	i := 0
	for ; i+8 <= n; i += 8 {
		v := Load64(a[i:])
		s := (v & lo8) + ((v >> 8) & lo8) // four lanes, each ≤ 510
		sum += int((s & 0xFFFF) + ((s >> 16) & 0xFFFF) + ((s >> 32) & 0xFFFF) + (s >> 48))
	}
	for ; i < n; i++ {
		sum += int(a[i])
	}
	return sum
}
