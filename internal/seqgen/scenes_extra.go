package seqgen

import "hdvideobench/internal/frame"

// The two scenario-stressor sequences, written against the same virtual
// 1920×1088 canvas as the paper's four (scenes.go):
//
//	sport_pan — a fast global camera pan across a detailed sports
//	            pitch: the whole frame translates SportPanSpeed virtual
//	            pixels every frame, so motion search must chase a large
//	            uniform displacement (the televised-sport workload).
//	scene_cut — shots alternate between two completely different scenes
//	            every SceneCutPeriod frames: most of the picture changes
//	            at each cut, the worst case for inter prediction and the
//	            natural trigger for adaptive I-frame placement.

// SportPanSpeed is the sport_pan camera's horizontal displacement in
// virtual (1920-wide canvas) pixels per frame. At a rendered width w
// the per-frame pixel shift is SportPanSpeed*w/1920 — an exact integer
// whenever w is a multiple of 96, which every benchmark resolution is.
const SportPanSpeed = 20

// SceneCutPeriod is the shot length of scene_cut in frames: frame
// k*SceneCutPeriod is the first frame of a new shot.
const SceneCutPeriod = 16

// renderSportPan: the camera pans right at SportPanSpeed virtual
// px/frame over a pitch that is static in world coordinates — striped
// turf with fine grain, white field lines, a crowd band across the top
// — so consecutive frames are exact translations of each other apart
// from the newly revealed strip. High global motion, high spatial
// detail.
func renderSportPan(f *frame.Frame, idx int) {
	w, h := int32(f.Width), int32(f.Height)
	pan := int32(idx) * SportPanSpeed
	for r := int32(0); r < h; r++ {
		vy := r * 1088 / h
		rowY := f.YOrigin + int(r)*f.YStride
		for c := int32(0); c < w; c++ {
			wx := c*1920/w + pan // world coordinate: content pans left
			f.Y[rowY+int(c)] = clampB(pitchY(wx, vy))
		}
	}
	cw, ch := int32(f.ChromaWidth()), int32(f.ChromaHeight())
	for r := int32(0); r < ch; r++ {
		vy := r * 2 * 1088 / h
		rowC := f.COrigin + int(r)*f.CStride
		for c := int32(0); c < cw; c++ {
			wx := c*2*1920/w + pan
			if vy < 300 { // crowd: desaturated
				f.Cb[rowC+int(c)] = clampB(126 + (noiseByte(uint32(wx/4), uint32(vy/4), 61)-128)/16)
				f.Cr[rowC+int(c)] = 130
			} else { // turf: green
				f.Cb[rowC+int(c)] = 108
				f.Cr[rowC+int(c)] = 112
			}
		}
	}
}

// pitchY is the sport_pan world: crowd band, striped turf, field lines.
// Pure function of world coordinates, so the pan is an exact translate.
func pitchY(wx, vy int32) int32 {
	if vy < 300 {
		// Crowd: dense uncorrelated speckle (faces and shirts).
		return 90 + (noiseByte(uint32(wx/6), uint32(vy/6), 57)-128)/2
	}
	// Mowing stripes alternate every 96 virtual px; fine blade grain on top.
	y := int32(95)
	if (wx/96)%2 == 0 {
		y = 115
	}
	y += (fbm2(wx, vy, 7, 58) - 128) / 4
	// Vertical field lines every 480 px and a halfway horizontal at 700.
	lx := wx % 480
	if lx < 0 {
		lx += 480
	}
	if lx < 8 || (vy > 696 && vy < 706) {
		y = 225
	}
	return y
}

// renderSceneCut alternates between two unrelated shots every
// SceneCutPeriod frames. Motion inside each shot is moderate (a prop
// orbits in shot A, light streaks drift in shot B) but the cut replaces
// nearly every pixel: shot A is bright and warm, shot B dark and cool.
func renderSceneCut(f *frame.Frame, idx int) {
	if (idx/SceneCutPeriod)%2 == 0 {
		renderCutShotA(f, idx)
	} else {
		renderCutShotB(f, idx)
	}
}

// renderCutShotA: bright studio — light gradient backdrop with gentle
// texture and a large dark panel orbiting the centre.
func renderCutShotA(f *frame.Frame, idx int) {
	w, h := int32(f.Width), int32(f.Height)
	// Panel centre orbits on a small square path, 4 virtual px/frame.
	t := int32(idx) * 4 % 512
	ox, oy := orbit(t)
	px, py := int32(960)+ox, int32(544)+oy
	for r := int32(0); r < h; r++ {
		vy := r * 1088 / h
		rowY := f.YOrigin + int(r)*f.YStride
		for c := int32(0); c < w; c++ {
			vx := c * 1920 / w
			y := 190 + vy*30/1088 + (fbm2(vx, vy, 60, 71)-128)/8
			if abs32(vx-px) < 260 && abs32(vy-py) < 180 {
				y = 55 + (fbm2(vx, vy, 24, 72)-128)/6
			}
			f.Y[rowY+int(c)] = clampB(y)
		}
	}
	fillChroma(f, 118, 138) // warm
}

// renderCutShotB: night road — near-black backdrop with a dim ground
// texture and three bright light streaks drifting left.
func renderCutShotB(f *frame.Frame, idx int) {
	w, h := int32(f.Width), int32(f.Height)
	drift := int32(idx) * 6
	for r := int32(0); r < h; r++ {
		vy := r * 1088 / h
		rowY := f.YOrigin + int(r)*f.YStride
		for c := int32(0); c < w; c++ {
			vx := c * 1920 / w
			y := 22 + (fbm2(vx, vy, 90, 81)-128)/16
			for lane := int32(0); lane < 3; lane++ {
				ly := 300 + lane*250
				lx := (lane*640 - drift) % 1920
				if lx < 0 {
					lx += 1920
				}
				if abs32(vy-ly) < 30 && abs32(vx-lx) < 110 {
					y = 210 - abs32(vx-lx)/2
				}
			}
			f.Y[rowY+int(c)] = clampB(y)
		}
	}
	fillChroma(f, 140, 118) // cool
}

// orbit maps t in [0,512) onto a square path of half-side 64: four
// 128-step edges, so the prop moves 1 unit per t step.
func orbit(t int32) (int32, int32) {
	switch {
	case t < 128:
		return t - 64, -64
	case t < 256:
		return 64, t - 128 - 64
	case t < 384:
		return 64 - (t - 256), 64
	default:
		return -64, 64 - (t - 384)
	}
}

func fillChroma(f *frame.Frame, cb, cr byte) {
	cw, ch := f.ChromaWidth(), f.ChromaHeight()
	for r := 0; r < ch; r++ {
		rowC := f.COrigin + r*f.CStride
		for c := 0; c < cw; c++ {
			f.Cb[rowC+c] = cb
			f.Cr[rowC+c] = cr
		}
	}
}

func abs32(v int32) int32 {
	if v < 0 {
		return -v
	}
	return v
}

// GrainAmplitude is the peak luma excursion of film_grain's noise layer
// (the grain is roughly uniform in ±GrainAmplitude around the static
// base picture).
const GrainAmplitude = 16

// renderFilmGrain: a completely static interior scene — smooth wall
// gradient, a dark framed rectangle, soft large-scale texture — overlaid
// with dense grain that is re-drawn from an independent seed every frame.
// The base never moves, so the true global motion is zero; the grain
// never correlates between frames, so inter SAD stays high no matter
// what vector motion search tries. This is the rate-control stressor:
// residual cost is irreducible and every frame costs about the same.
func renderFilmGrain(f *frame.Frame, idx int) {
	w, h := int32(f.Width), int32(f.Height)
	seed := 0xF11F ^ uint32(idx)*0x9E3779B9 // per-frame grain seed
	for r := int32(0); r < h; r++ {
		vy := r * 1088 / h
		rowY := f.YOrigin + int(r)*f.YStride
		for c := int32(0); c < w; c++ {
			vx := c * 1920 / w
			// Static base: lit wall with coarse texture and a dark frame.
			y := 150 - vy*40/1088 + (fbm2(vx, vy, 120, 91)-128)/10
			if vx > 600 && vx < 1300 && vy > 250 && vy < 800 {
				y = 70 + (fbm2(vx, vy, 48, 92)-128)/12
			}
			// Decorrelated grain, uniform in ±GrainAmplitude.
			g := (noiseByte(uint32(c), uint32(r), seed) - 128) * GrainAmplitude / 128
			f.Y[rowY+int(c)] = clampB(y + g)
		}
	}
	fillChroma(f, 128, 128) // grain is luma-only, chroma neutral
}
