// Package seqgen generates the HD-VideoBench input sequences.
//
// The paper uses four 1080p25 camera captures from TU München (Table III):
// Blue Sky, Pedestrian Area, Riverbed and Rush Hour. Those captures are not
// redistributable, so this package synthesizes deterministic procedural
// equivalents that reproduce the property each sequence was chosen for:
//
//	Blue Sky        — high-contrast detail (trees against sky), global
//	                  camera rotation.
//	Pedestrian Area — static camera, large fast-moving foreground objects
//	                  close to the camera, detailed static background.
//	Riverbed        — temporally decorrelated water shimmer: motion
//	                  estimation barely helps ("very hard to code").
//	Rush Hour       — many small objects moving slowly, fixed camera.
//
// Generators are pure functions of (sequence, resolution, frame index), so
// every run of the benchmark sees identical input, like the paper's fixed
// input set.
package seqgen

import (
	"fmt"
	"strings"

	"hdvideobench/internal/frame"
)

// Sequence identifies one of the benchmark input sequences.
type Sequence int

const (
	BlueSky Sequence = iota
	PedestrianArea
	Riverbed
	RushHour
	// SportPan, SceneCut and FilmGrain extend the paper's four captures
	// with serving-scenario stressors (see scenes_extra.go): a
	// high-motion global camera pan, a hard-cut shot alternation, and a
	// static scene under temporally-decorrelated grain. They are not
	// part of All — the paper's Table III/V matrix stays canonical.
	SportPan
	SceneCut
	FilmGrain
)

// All lists the four sequences in the paper's Table III/V order.
var All = []Sequence{BlueSky, PedestrianArea, Riverbed, RushHour}

// Extended lists every sequence: the paper's four plus the scenario
// stressors. Front ends that accept a sequence name resolve over this
// set; benchmark defaults stay on All.
var Extended = []Sequence{BlueSky, PedestrianArea, Riverbed, RushHour, SportPan, SceneCut, FilmGrain}

// String returns the sequence name as used in the paper's tables.
func (s Sequence) String() string {
	switch s {
	case BlueSky:
		return "blue_sky"
	case PedestrianArea:
		return "pedestrian_area"
	case Riverbed:
		return "riverbed"
	case RushHour:
		return "rush_hour"
	case SportPan:
		return "sport_pan"
	case SceneCut:
		return "scene_cut"
	case FilmGrain:
		return "film_grain"
	}
	return fmt.Sprintf("Sequence(%d)", int(s))
}

// Parse maps a sequence name (as printed by String) back to its value.
func Parse(name string) (Sequence, error) {
	switch strings.ToLower(name) {
	case "blue_sky", "bluesky", "blue-sky":
		return BlueSky, nil
	case "pedestrian_area", "pedestrian", "pedestrian-area":
		return PedestrianArea, nil
	case "riverbed":
		return Riverbed, nil
	case "rush_hour", "rushhour", "rush-hour":
		return RushHour, nil
	case "sport_pan", "sportpan", "sport-pan":
		return SportPan, nil
	case "scene_cut", "scenecut", "scene-cut":
		return SceneCut, nil
	case "film_grain", "filmgrain", "film-grain":
		return FilmGrain, nil
	}
	return 0, fmt.Errorf("seqgen: unknown sequence %q", name)
}

// FPS is the frame rate of every HD-VideoBench sequence.
const FPS = 25

// Generator produces the frames of one sequence at one resolution.
type Generator struct {
	Seq           Sequence
	Width, Height int
}

// New returns a generator for the given sequence and resolution.
func New(seq Sequence, width, height int) *Generator {
	return &Generator{Seq: seq, Width: width, Height: height}
}

// Frame allocates and renders frame idx.
func (g *Generator) Frame(idx int) *frame.Frame {
	f := frame.New(g.Width, g.Height)
	g.FrameInto(f, idx)
	return f
}

// FrameInto renders frame idx into f (which must match the generator's
// resolution).
func (g *Generator) FrameInto(f *frame.Frame, idx int) {
	if f.Width != g.Width || f.Height != g.Height {
		panic(fmt.Sprintf("seqgen: frame is %dx%d, generator is %dx%d",
			f.Width, f.Height, g.Width, g.Height))
	}
	switch g.Seq {
	case BlueSky:
		renderBlueSky(f, idx)
	case PedestrianArea:
		renderPedestrian(f, idx)
	case Riverbed:
		renderRiverbed(f, idx)
	case RushHour:
		renderRushHour(f, idx)
	case SportPan:
		renderSportPan(f, idx)
	case SceneCut:
		renderSceneCut(f, idx)
	case FilmGrain:
		renderFilmGrain(f, idx)
	default:
		panic(fmt.Sprintf("seqgen: unknown sequence %d", int(g.Seq)))
	}
	f.PTS = idx
}

// Generate renders frames [0, n) of the sequence.
func (g *Generator) Generate(n int) []*frame.Frame {
	out := make([]*frame.Frame, n)
	for i := range out {
		out[i] = g.Frame(i)
	}
	return out
}

// --- deterministic hashing / noise -----------------------------------------

// hash2 is an avalanche integer hash of a 2-D coordinate and seed.
func hash2(x, y, seed uint32) uint32 {
	h := x*0x85EBCA6B ^ y*0xC2B2AE35 ^ seed*0x27D4EB2F
	h ^= h >> 15
	h *= 0x2C1B3C6D
	h ^= h >> 12
	h *= 0x297A2D39
	h ^= h >> 15
	return h
}

// noiseByte returns a uniform byte for a lattice point.
func noiseByte(x, y, seed uint32) int32 {
	return int32(hash2(x, y, seed) & 0xFF)
}

// valueNoise samples smooth value noise at fixed-point coordinates
// (x, y in units of 1/256 of a lattice cell), returning [0, 255].
func valueNoise(x, y int32, seed uint32) int32 {
	xi, yi := uint32(x>>8), uint32(y>>8)
	fx, fy := x&0xFF, y&0xFF
	n00 := noiseByte(xi, yi, seed)
	n10 := noiseByte(xi+1, yi, seed)
	n01 := noiseByte(xi, yi+1, seed)
	n11 := noiseByte(xi+1, yi+1, seed)
	top := n00 + (n10-n00)*fx>>8
	bot := n01 + (n11-n01)*fx>>8
	return top + (bot-top)*fy>>8
}

// fbm2 is two-octave value noise, scale in lattice cells expressed as
// pixels-per-cell (shifted into 8.8 fixed point internally).
func fbm2(px, py int32, cell int32, seed uint32) int32 {
	c1 := valueNoise(px*256/cell, py*256/cell, seed)
	c2 := valueNoise(px*512/cell, py*512/cell, seed^0x9E3779B9)
	return (2*c1 + c2) / 3
}

func clampB(v int32) byte {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return byte(v)
}
