package seqgen

import (
	"testing"

	"hdvideobench/internal/frame"
)

func TestParse(t *testing.T) {
	for _, s := range All {
		got, err := Parse(s.String())
		if err != nil || got != s {
			t.Errorf("Parse(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := Parse("nope"); err == nil {
		t.Error("Parse must reject unknown names")
	}
}

func TestDeterminism(t *testing.T) {
	for _, s := range All {
		g := New(s, 176, 144)
		a := g.Frame(3)
		b := g.Frame(3)
		for i := range a.Y {
			if a.Y[i] != b.Y[i] {
				t.Fatalf("%v: luma differs at %d", s, i)
			}
		}
		for i := range a.Cb {
			if a.Cb[i] != b.Cb[i] || a.Cr[i] != b.Cr[i] {
				t.Fatalf("%v: chroma differs at %d", s, i)
			}
		}
	}
}

func TestFramesEvolve(t *testing.T) {
	for _, s := range All {
		g := New(s, 176, 144)
		a := g.Frame(0)
		b := g.Frame(10)
		if planeSAD(a, b) == 0 {
			t.Errorf("%v: frames 0 and 10 identical — no motion", s)
		}
	}
}

func TestSequencesDiffer(t *testing.T) {
	frames := map[Sequence]*frame.Frame{}
	for _, s := range All {
		frames[s] = New(s, 176, 144).Frame(0)
	}
	for i, a := range All {
		for _, b := range All[i+1:] {
			if planeSAD(frames[a], frames[b]) < 100000 {
				t.Errorf("%v and %v are nearly identical", a, b)
			}
		}
	}
}

// TestTemporalCharacter verifies the property each sequence was selected
// for: riverbed must be the hardest to predict temporally and rush hour
// among the easiest (per-pixel temporal difference).
func TestTemporalCharacter(t *testing.T) {
	diff := map[Sequence]int{}
	for _, s := range All {
		g := New(s, 176, 144)
		a := g.Frame(4)
		b := g.Frame(5)
		diff[s] = planeSAD(a, b) / (176 * 144)
	}
	if diff[Riverbed] <= diff[RushHour] {
		t.Errorf("riverbed temporal diff %d must exceed rush_hour %d",
			diff[Riverbed], diff[RushHour])
	}
	if diff[Riverbed] <= diff[BlueSky] {
		t.Errorf("riverbed temporal diff %d must exceed blue_sky %d",
			diff[Riverbed], diff[BlueSky])
	}
	if diff[RushHour] > 40 {
		t.Errorf("rush_hour temporal diff %d too large for a slow scene", diff[RushHour])
	}
}

// TestSpatialDetail: blue sky must contain strong high-frequency content
// (tree foliage), measured as mean absolute horizontal gradient.
func TestSpatialDetail(t *testing.T) {
	grad := map[Sequence]int{}
	for _, s := range All {
		f := New(s, 176, 144).Frame(0)
		sum := 0
		for r := 0; r < f.Height; r++ {
			for c := 0; c < f.Width-1; c++ {
				d := int(f.LumaAt(r, c)) - int(f.LumaAt(r, c+1))
				if d < 0 {
					d = -d
				}
				sum += d
			}
		}
		grad[s] = sum / (f.Width * f.Height)
	}
	if grad[BlueSky] < 2 {
		t.Errorf("blue_sky gradient %d too low — missing foliage detail", grad[BlueSky])
	}
	if grad[Riverbed] < grad[RushHour] {
		t.Errorf("riverbed gradient %d should exceed rush_hour %d",
			grad[Riverbed], grad[RushHour])
	}
}

func TestResolutions(t *testing.T) {
	// The paper's three resolutions all render without panic and set PTS.
	for _, res := range [][2]int{{720, 576}, {1280, 720}, {1920, 1088}} {
		f := New(BlueSky, res[0], res[1]).Frame(2)
		if f.Width != res[0] || f.Height != res[1] {
			t.Fatalf("bad size %dx%d", f.Width, f.Height)
		}
		if f.PTS != 2 {
			t.Fatalf("PTS = %d", f.PTS)
		}
	}
}

func TestFrameIntoMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on size mismatch")
		}
	}()
	g := New(BlueSky, 176, 144)
	g.FrameInto(frame.New(352, 288), 0)
}

func TestGenerate(t *testing.T) {
	fs := New(RushHour, 176, 144).Generate(5)
	if len(fs) != 5 {
		t.Fatalf("got %d frames", len(fs))
	}
	for i, f := range fs {
		if f.PTS != i {
			t.Fatalf("frame %d has PTS %d", i, f.PTS)
		}
	}
}

// TestChromaVaries ensures generators actually produce colour content
// (PSNR work below depends on non-trivial chroma).
func TestChromaVaries(t *testing.T) {
	for _, s := range []Sequence{BlueSky, PedestrianArea, RushHour} {
		f := New(s, 176, 144).Frame(0)
		minV, maxV := byte(255), byte(0)
		for r := 0; r < f.ChromaHeight(); r++ {
			for c := 0; c < f.ChromaWidth(); c++ {
				v := f.Cb[f.COrigin+r*f.CStride+c]
				if v < minV {
					minV = v
				}
				if v > maxV {
					maxV = v
				}
			}
		}
		if maxV == minV {
			t.Errorf("%v: Cb plane is constant", s)
		}
	}
}

func planeSAD(a, b *frame.Frame) int {
	sum := 0
	for r := 0; r < a.Height; r++ {
		for c := 0; c < a.Width; c++ {
			d := int(a.LumaAt(r, c)) - int(b.LumaAt(r, c))
			if d < 0 {
				d = -d
			}
			sum += d
		}
	}
	return sum
}

func BenchmarkGenerate1088p(b *testing.B) {
	g := New(BlueSky, 1920, 1088)
	f := frame.New(1920, 1088)
	for i := 0; i < b.N; i++ {
		g.FrameInto(f, i)
	}
}
