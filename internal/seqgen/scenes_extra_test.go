package seqgen

import (
	"testing"
)

// TestSceneCutLumaDiscontinuity pins the property scene_cut exists for:
// crossing a cut boundary replaces most of the picture, while adjacent
// frames inside a shot barely change. "Changed" means a luma delta of
// more than 32 levels — far past any dithering noise.
func TestSceneCutLumaDiscontinuity(t *testing.T) {
	const w, h = 384, 320
	g := New(SceneCut, w, h)
	changed := func(i, j int) float64 {
		a, b := g.Frame(i), g.Frame(j)
		n := 0
		for r := 0; r < h; r++ {
			for c := 0; c < w; c++ {
				d := int(a.LumaAt(r, c)) - int(b.LumaAt(r, c))
				if d < -32 || d > 32 {
					n++
				}
			}
		}
		return float64(n) / float64(w*h)
	}
	// Frames 15 and 16 straddle the first cut (SceneCutPeriod = 16).
	if cut := changed(SceneCutPeriod-1, SceneCutPeriod); cut < 0.5 {
		t.Errorf("cut frame changed only %.0f%% of luma, want > 50%%", 100*cut)
	}
	// Frames 14 and 15 sit inside one shot: only the orbiting prop moves.
	if within := changed(SceneCutPeriod-2, SceneCutPeriod-1); within > 0.2 {
		t.Errorf("within-shot frames changed %.0f%% of luma, want < 20%%", 100*within)
	}
	// Shots alternate: two frames a full period apart cut back just as hard.
	if cut2 := changed(SceneCutPeriod, 2*SceneCutPeriod); cut2 < 0.5 {
		t.Errorf("second cut changed only %.0f%% of luma, want > 50%%", 100*cut2)
	}
}

// TestSportPanGlobalMotion pins sport_pan's defining property: the scene
// is a pure horizontal camera pan, so frame t+1 is frame t translated by
// SportPanSpeed*w/1920 pixels. The argmin over candidate shifts of the
// overlap SAD must land exactly there, and the zero-shift SAD (what a
// skip/no-motion predictor sees) must be far worse.
func TestSportPanGlobalMotion(t *testing.T) {
	const w, h = 384, 320 // w*SportPanSpeed/1920 = 4: exact integer shift
	shift := SportPanSpeed * w / 1920
	g := New(SportPan, w, h)
	a, b := g.Frame(5), g.Frame(6)
	// sad(s): compare frame 6 at column c with frame 5 at column c+s
	// over the overlap region.
	sad := func(s int) int {
		sum := 0
		for r := 0; r < h; r++ {
			for c := 0; c < w-8; c++ {
				d := int(b.LumaAt(r, c)) - int(a.LumaAt(r, c+s))
				if d < 0 {
					d = -d
				}
				sum += d
			}
		}
		return sum
	}
	best, bestS := -1, 0
	for s := 0; s <= 8; s++ {
		if v := sad(s); best < 0 || v < best {
			best, bestS = v, s
		}
	}
	if bestS != shift {
		t.Fatalf("best global shift = %d px, want %d (pan speed)", bestS, shift)
	}
	if best != 0 {
		t.Errorf("SAD at the true shift = %d, want 0 (pan is an exact translate)", best)
	}
	if zero := sad(0); zero < 100*(w*h)/10 {
		t.Errorf("zero-shift SAD %d suspiciously low — pan has no global motion", zero)
	}
}

// TestFilmGrainDecorrelated pins film_grain's two defining properties:
// the grain never correlates between frames, so inter SAD stays high at
// every candidate motion vector, while the underlying scene is static,
// so the zero vector is still the best one (global motion is zero).
func TestFilmGrainDecorrelated(t *testing.T) {
	const w, h = 384, 320
	g := New(FilmGrain, w, h)
	a, b := g.Frame(3), g.Frame(4)
	// sad(sx, sy): compare frame 4 at (r, c) with frame 3 at (r+sy, c+sx)
	// over the interior (margin keeps every shift in bounds).
	const m = 4
	sad := func(sx, sy int) int {
		sum := 0
		for r := m; r < h-m; r++ {
			for c := m; c < w-m; c++ {
				d := int(b.LumaAt(r, c)) - int(a.LumaAt(r+sy, c+sx))
				if d < 0 {
					d = -d
				}
				sum += d
			}
		}
		return sum
	}
	zero := sad(0, 0)
	// Two independent uniform ±GrainAmplitude draws differ by ~2/3 of the
	// amplitude on average; require at least a third per pixel so the SAD
	// floor is unmistakably grain, not dithering.
	pixels := (h - 2*m) * (w - 2*m)
	if floor := pixels * GrainAmplitude / 3; zero < floor {
		t.Errorf("zero-shift SAD %d below grain floor %d — grain correlates between frames", zero, floor)
	}
	// The static base makes (0,0) the global argmin: no shift may beat it.
	for sy := -3; sy <= 3; sy++ {
		for sx := -3; sx <= 3; sx++ {
			if sx == 0 && sy == 0 {
				continue
			}
			if v := sad(sx, sy); v < zero {
				t.Errorf("shift (%d,%d) SAD %d beats zero shift %d — global motion not zero", sx, sy, v, zero)
			}
		}
	}
}

// TestExtendedSequencesParseAndRender: the two new scenes are reachable
// through the same Parse/New/FrameInto path as the paper's four, render
// deterministically, and keep the paper's All list untouched.
func TestExtendedSequencesParseAndRender(t *testing.T) {
	if len(All) != 4 {
		t.Fatalf("len(All) = %d: the paper's sequence list must stay at 4", len(All))
	}
	if len(Extended) != 7 {
		t.Fatalf("len(Extended) = %d, want the paper's 4 plus 3 stressors", len(Extended))
	}
	for _, s := range []Sequence{SportPan, SceneCut, FilmGrain} {
		got, err := Parse(s.String())
		if err != nil || got != s {
			t.Errorf("Parse(%q) = %v, %v", s.String(), got, err)
		}
		g := New(s, 176, 144)
		x, y := g.Frame(2), g.Frame(2)
		if planeSAD(x, y) != 0 {
			t.Errorf("%v: rendering is not deterministic", s)
		}
		if planeSAD(g.Frame(0), g.Frame(10)) == 0 {
			t.Errorf("%v: frames 0 and 10 identical — no motion", s)
		}
	}
}
