package seqgen

import "hdvideobench/internal/frame"

// Scene scale: generators are written against a virtual 1920×1088 canvas and
// scale coordinates by the actual resolution, so content (and therefore
// motion in pixels per frame) scales with resolution the way real captures
// downsampled from 1080p do.

// renderBlueSky: gradient sky with fine grain, two high-contrast detailed
// tree crowns, global rotation around a point above the frame (camera
// rotation per Table III).
func renderBlueSky(f *frame.Frame, idx int) {
	w, h := int32(f.Width), int32(f.Height)
	// Rotation angle grows ~0.25 deg/frame; fixed point sin/cos via small
	// angle: sin θ ≈ θ, cos θ ≈ 1 - θ²/2 in 16.16.
	theta := int64(idx) * 286 // ≈0.25° in 16.16 radians (0.00436*65536)
	sinT := theta
	cosT := int64(65536) - theta*theta/(2<<16)
	// Rotation centre: above top edge, at mid width (tree tops sweep).
	cx, cy := int64(w/2), int64(-h/2)

	for r := int32(0); r < h; r++ {
		rowY := f.YOrigin + int(r)*f.YStride
		for c := int32(0); c < w; c++ {
			// Rotate pixel into world coordinates (16.16).
			dx := int64(c) - cx
			dy := int64(r) - cy
			wx := (dx*cosT - dy*sinT) >> 16
			wy := (dx*sinT + dy*cosT) >> 16
			// World coords scaled to the virtual canvas.
			vx := int32(wx) * 1920 / w
			vy := int32(wy) * 1088 / h

			// Sky: vertical gradient with slight grain.
			y := 170 + vy*40/1088 + (noiseByte(uint32(vx), uint32(vy), 7)-128)/32

			// Tree crowns: two blobs of dense high-contrast foliage.
			if inTree(vx, vy) {
				leaf := fbm2(vx, vy, 12, 99)
				y = 30 + leaf*2/3 // dark with bright speckle: high contrast
			}
			f.Y[rowY+int(c)] = clampB(y)
		}
	}
	cw, ch := int32(f.ChromaWidth()), int32(f.ChromaHeight())
	for r := int32(0); r < ch; r++ {
		rowC := f.COrigin + int(r)*f.CStride
		for c := int32(0); c < cw; c++ {
			dx := int64(c)*2 - cx
			dy := int64(r)*2 - cy
			wx := (dx*cosT - dy*sinT) >> 16
			wy := (dx*sinT + dy*cosT) >> 16
			vx := int32(wx) * 1920 / w
			vy := int32(wy) * 1088 / h
			if inTree(vx, vy) {
				f.Cb[rowC+int(c)] = 112 // green foliage
				f.Cr[rowC+int(c)] = 110
			} else {
				// Blue sky with *small colour differences* (Table III).
				f.Cb[rowC+int(c)] = clampB(150 + (noiseByte(uint32(vx/8), uint32(vy/8), 5)-128)/16)
				f.Cr[rowC+int(c)] = 100
			}
		}
	}
}

// inTree reports whether virtual coordinate (x, y) is inside one of the two
// tree crowns (irregular blobs near the lower corners).
func inTree(x, y int32) bool {
	if d := blobDist(x, y, 250, 1000, 450); d < 0 {
		return true
	}
	if d := blobDist(x, y, 1750, 1050, 520); d < 0 {
		return true
	}
	return false
}

// blobDist is a noisy circle SDF: negative inside.
func blobDist(x, y, cx, cy, rad int32) int32 {
	dx, dy := x-cx, y-cy
	d2 := dx*dx + dy*dy
	edge := rad + (fbm2(x, y, 90, 31)-128)*rad/300 // wobbly edge
	return d2 - edge*edge
}

// renderPedestrian: static detailed background (building facade + paving),
// 5 large "pedestrians" crossing close to the camera at different speeds.
func renderPedestrian(f *frame.Frame, idx int) {
	w, h := int32(f.Width), int32(f.Height)
	type walker struct {
		speed  int32 // virtual px/frame (1080p scale)
		width  int32
		height int32
		phase  int32
		tone   int32
		cb, cr byte
	}
	walkers := []walker{
		{22, 260, 900, 0, 60, 118, 142},
		{-16, 220, 820, 700, 95, 135, 120},
		{12, 300, 980, 1300, 140, 120, 135},
		{-26, 240, 860, 300, 75, 112, 150},
		{18, 200, 760, 1700, 115, 140, 116},
	}
	// Luma.
	for r := int32(0); r < h; r++ {
		vy := r * 1088 / h
		rowY := f.YOrigin + int(r)*f.YStride
		for c := int32(0); c < w; c++ {
			vx := c * 1920 / w
			f.Y[rowY+int(c)] = clampB(pedBackgroundY(vx, vy))
		}
	}
	// Walkers (painted over, nearest first ordering is irrelevant for SAD).
	for wi, wk := range walkers {
		// Horizontal position wraps across the extended virtual width.
		span := int32(1920 + 400)
		pos := (wk.phase + wk.speed*int32(idx)) % span
		if pos < 0 {
			pos += span
		}
		pos -= 200 // allow entering/leaving frame
		top := int32(1088) - wk.height
		drawBodyY(f, pos, top, wk.width, wk.height, wk.tone, uint32(wi))
	}
	// Chroma.
	cw, ch := int32(f.ChromaWidth()), int32(f.ChromaHeight())
	for r := int32(0); r < ch; r++ {
		rowC := f.COrigin + int(r)*f.CStride
		for c := int32(0); c < cw; c++ {
			f.Cb[rowC+int(c)] = 126
			f.Cr[rowC+int(c)] = 130
		}
	}
	for _, wk := range walkers {
		span := int32(1920 + 400)
		pos := (wk.phase + wk.speed*int32(idx)) % span
		if pos < 0 {
			pos += span
		}
		pos -= 200
		top := int32(1088) - wk.height
		drawRectC(f, pos, top, wk.width, wk.height, wk.cb, wk.cr)
	}
}

func pedBackgroundY(vx, vy int32) int32 {
	if vy < 620 {
		// Facade: window grid.
		wx, wy := vx%160, vy%140
		if wx > 30 && wx < 130 && wy > 25 && wy < 115 {
			return 70 + (fbm2(vx, vy, 40, 11)-128)/6 // glass
		}
		return 150 + (fbm2(vx, vy, 25, 12)-128)/5 // wall texture
	}
	// Paving: fine regular texture with perspective-ish darkening.
	t := fbm2(vx, vy, 14, 13)
	return 120 + (t-128)/3 + (vy-620)/12
}

// drawBodyY paints a textured rounded figure on the luma plane (virtual
// coords scaled to the frame).
func drawBodyY(f *frame.Frame, vx0, vy0, vw, vh, tone int32, seed uint32) {
	w, h := int32(f.Width), int32(f.Height)
	x0 := vx0 * w / 1920
	y0 := vy0 * h / 1088
	x1 := (vx0 + vw) * w / 1920
	y1 := (vy0 + vh) * h / 1088
	for r := max32(y0, 0); r < min32(y1, h); r++ {
		rowY := f.YOrigin + int(r)*f.YStride
		for c := max32(x0, 0); c < min32(x1, w); c++ {
			// Rounded silhouette: skip corners.
			fx := (c - x0) * 256 / max32(x1-x0, 1)
			fy := (r - y0) * 256 / max32(y1-y0, 1)
			if fy < 40 { // head region: narrower
				if fx < 80 || fx > 176 {
					continue
				}
			}
			vx := c * 1920 / w
			vy := r * 1088 / h
			f.Y[rowY+int(c)] = clampB(tone + (fbm2(vx, vy, 30, seed+50)-128)/4)
		}
	}
}

func drawRectC(f *frame.Frame, vx0, vy0, vw, vh int32, cb, cr byte) {
	cw, ch := int32(f.ChromaWidth()), int32(f.ChromaHeight())
	x0 := vx0 * cw / 1920
	y0 := vy0 * ch / 1088
	x1 := (vx0 + vw) * cw / 1920
	y1 := (vy0 + vh) * ch / 1088
	for r := max32(y0, 0); r < min32(y1, ch); r++ {
		rowC := f.COrigin + int(r)*f.CStride
		for c := max32(x0, 0); c < min32(x1, cw); c++ {
			f.Cb[rowC+int(c)] = cb
			f.Cr[rowC+int(c)] = cr
		}
	}
}

// renderRiverbed: static bed texture seen through temporally decorrelated
// shimmer — most of the signal changes every frame, defeating motion
// estimation exactly like the real sequence ("very hard to code").
func renderRiverbed(f *frame.Frame, idx int) {
	w, h := int32(f.Width), int32(f.Height)
	fi := uint32(idx)
	for r := int32(0); r < h; r++ {
		vy := r * 1088 / h
		rowY := f.YOrigin + int(r)*f.YStride
		for c := int32(0); c < w; c++ {
			vx := c * 1920 / w
			bed := fbm2(vx, vy, 22, 3) // static stones
			// Shimmer: fresh noise every frame, weighted heavily.
			sh := noiseByte(uint32(vx)*3+fi*17, uint32(vy)*5+fi*29, 0xABCD)
			y := 60 + bed/2 + (sh-128)*2/3
			f.Y[rowY+int(c)] = clampB(y)
		}
	}
	cw, ch := int32(f.ChromaWidth()), int32(f.ChromaHeight())
	for r := int32(0); r < ch; r++ {
		rowC := f.COrigin + int(r)*f.CStride
		for c := int32(0); c < cw; c++ {
			vx := c * 2 * 1920 / (2 * w) // chroma sampled at half res
			vy := r * 2 * 1088 / (2 * h)
			sh := noiseByte(uint32(vx)+fi*13, uint32(vy)+fi*7, 0x1234)
			f.Cb[rowC+int(c)] = clampB(134 + (sh-128)/8)
			f.Cr[rowC+int(c)] = clampB(120 + (sh-128)/10)
		}
	}
}

// renderRushHour: fixed camera on a hazy road, ~14 cars in 4 lanes moving
// slowly (|v| ≤ 4 virtual px/frame), size scaled by lane depth.
func renderRushHour(f *frame.Frame, idx int) {
	w, h := int32(f.Width), int32(f.Height)
	for r := int32(0); r < h; r++ {
		vy := r * 1088 / h
		rowY := f.YOrigin + int(r)*f.YStride
		for c := int32(0); c < w; c++ {
			vx := c * 1920 / w
			f.Y[rowY+int(c)] = clampB(rushBackgroundY(vx, vy))
		}
	}
	type lane struct {
		y, carH int32
		speed   int32
	}
	lanes := []lane{
		{480, 70, 2}, {600, 110, -1}, {760, 160, 3}, {950, 220, -2},
	}
	car := 0
	for li, ln := range lanes {
		n := 4 - li%2
		for i := 0; i < n; i++ {
			car++
			carW := ln.carH * 2
			span := int32(1920) + carW*2
			phase := int32(car) * 522
			pos := (phase + ln.speed*int32(idx)) % span
			if pos < 0 {
				pos += span
			}
			pos -= carW
			tone := int32(60 + (car*37)%150)
			drawCar(f, pos, ln.y-ln.carH, carW, ln.carH, tone, uint32(car))
		}
	}
	cw, ch := int32(f.ChromaWidth()), int32(f.ChromaHeight())
	for r := int32(0); r < ch; r++ {
		rowC := f.COrigin + int(r)*f.CStride
		for c := int32(0); c < cw; c++ {
			f.Cb[rowC+int(c)] = 128
			f.Cr[rowC+int(c)] = 128
		}
	}
	for li, ln := range lanes {
		n := 4 - li%2
		for i := 0; i < n; i++ {
			car++
			carW := ln.carH * 2
			span := int32(1920) + carW*2
			phase := int32(car) * 522
			pos := (phase + ln.speed*int32(idx)) % span
			if pos < 0 {
				pos += span
			}
			pos -= carW
			drawRectC(f, pos, ln.y-ln.carH, carW, ln.carH,
				byte(110+(car*23)%40), byte(110+(car*41)%40))
		}
	}
}

func rushBackgroundY(vx, vy int32) int32 {
	if vy < 420 {
		// Hazy skyline: low contrast (high depth of focus haze).
		return 160 + (fbm2(vx, vy, 120, 21)-128)/8
	}
	// Road with lane markings.
	y := int32(95) + (fbm2(vx, vy, 10, 22)-128)/8
	for _, laneY := range []int32{480, 600, 760, 950} {
		if vy > laneY+6 && vy < laneY+14 && (vx/80)%2 == 0 {
			y = 200
		}
	}
	return y
}

func drawCar(f *frame.Frame, vx0, vy0, vw, vh, tone int32, seed uint32) {
	w, h := int32(f.Width), int32(f.Height)
	x0 := vx0 * w / 1920
	y0 := vy0 * h / 1088
	x1 := (vx0 + vw) * w / 1920
	y1 := (vy0 + vh) * h / 1088
	for r := max32(y0, 0); r < min32(y1, h); r++ {
		rowY := f.YOrigin + int(r)*f.YStride
		for c := max32(x0, 0); c < min32(x1, w); c++ {
			fy := (r - y0) * 256 / max32(y1-y0, 1)
			v := tone
			if fy < 100 { // windshield band
				v = tone / 2
			}
			vx := c * 1920 / w
			f.Y[rowY+int(c)] = clampB(v + (noiseByte(uint32(vx), seed, 77)-128)/16)
		}
	}
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

func max32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}
