package quant

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hdvideobench/internal/dct"
)

func TestH264QPFromMPEG(t *testing.T) {
	cases := []struct{ mpeg, h264 int }{
		{1, 12},
		{2, 18},
		{4, 24},
		{5, 26}, // the paper's benchmark point (Table IV: vqscale=5 ↔ --qp=26)
		{8, 30},
		{16, 36},
		{31, 42},
	}
	for _, c := range cases {
		if got := H264QPFromMPEG(c.mpeg); got != c.h264 {
			t.Errorf("H264QPFromMPEG(%d) = %d, want %d", c.mpeg, got, c.h264)
		}
	}
	if got := H264QPFromMPEG(0); got != 12 {
		t.Errorf("QP clamp failed: %d", got)
	}
}

func TestMpeg2IntraRoundTripError(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, q := range []int32{2, 5, 10, 31} {
		for trial := 0; trial < 100; trial++ {
			var blk, orig [64]int32
			for i := range blk {
				blk[i] = int32(rng.Intn(2001) - 1000)
			}
			blk[0] = int32(rng.Intn(2041)) // intra DC is non-negative
			orig = blk
			Mpeg2QuantIntra(&blk, q)
			Mpeg2DequantIntra(&blk, q)
			// DC error bounded by scale/2; AC error bounded by step.
			if d := abs32(blk[0] - orig[0]); d > Mpeg2DCScale/2+1 {
				t.Fatalf("q=%d DC error %d", q, d)
			}
			for i := 1; i < 64; i++ {
				step := Mpeg2IntraMatrix[i] * q / 16
				if d := abs32(blk[i] - orig[i]); d > step+1 {
					t.Fatalf("q=%d coeff %d error %d > step %d", q, i, d, step)
				}
			}
		}
	}
}

func TestMpeg2InterRoundTripError(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, q := range []int32{2, 5, 10, 31} {
		for trial := 0; trial < 100; trial++ {
			var blk, orig [64]int32
			for i := range blk {
				blk[i] = int32(rng.Intn(2001) - 1000)
			}
			orig = blk
			Mpeg2QuantInter(&blk, q)
			Mpeg2DequantInter(&blk, q)
			for i := 0; i < 64; i++ {
				// Dead-zone quantizer: error bounded by the step size 2·16·q/32 = q.
				if d := abs32(blk[i] - orig[i]); d > 2*q {
					t.Fatalf("q=%d coeff %d: %d -> %d", q, i, orig[i], blk[i])
				}
			}
		}
	}
}

func TestMpeg2QuantSignSymmetry(t *testing.T) {
	check := func(v int16, qi uint8) bool {
		q := int32(qi%31) + 1
		var a, b [64]int32
		a[10] = int32(v)
		b[10] = -int32(v)
		Mpeg2QuantInter(&a, q)
		Mpeg2QuantInter(&b, q)
		return a[10] == -b[10]
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMpeg4DCScaler(t *testing.T) {
	cases := []struct{ q, want int32 }{
		{1, 8}, {4, 8}, {5, 10}, {8, 16}, {9, 17}, {24, 32}, {25, 34}, {31, 46},
	}
	for _, c := range cases {
		if got := Mpeg4DCScaler(c.q); got != c.want {
			t.Errorf("Mpeg4DCScaler(%d) = %d, want %d", c.q, got, c.want)
		}
	}
}

func TestMpeg4RoundTripError(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, q := range []int32{1, 2, 5, 10, 31} {
		for trial := 0; trial < 100; trial++ {
			var blk, orig [64]int32
			for i := range blk {
				blk[i] = int32(rng.Intn(2001) - 1000)
			}
			blk[0] = int32(rng.Intn(2041))
			orig = blk
			Mpeg4QuantIntra(&blk, q)
			Mpeg4DequantIntra(&blk, q)
			if d := abs32(blk[0] - orig[0]); d > Mpeg4DCScaler(q)/2+1 {
				t.Fatalf("q=%d DC error %d", q, d)
			}
			for i := 1; i < 64; i++ {
				if d := abs32(blk[i] - orig[i]); d > 2*q {
					t.Fatalf("q=%d intra coeff %d: %d -> %d", q, i, orig[i], blk[i])
				}
			}

			blk = orig
			Mpeg4QuantInter(&blk, q)
			Mpeg4DequantInter(&blk, q)
			for i := 0; i < 64; i++ {
				if d := abs32(blk[i] - orig[i]); d > 3*q {
					t.Fatalf("q=%d inter coeff %d: %d -> %d", q, i, orig[i], blk[i])
				}
			}
		}
	}
}

func TestMpeg4DeadZoneShrinksLevels(t *testing.T) {
	// The inter dead zone must quantize small coefficients to zero more
	// aggressively than the intra quantizer.
	q := int32(5)
	var intra, inter [64]int32
	for i := range intra {
		intra[i] = 7
		inter[i] = 7
	}
	intraNZ := Mpeg4QuantIntra(&intra, q)
	interNZ := Mpeg4QuantInter(&inter, q)
	if interNZ > intraNZ {
		t.Fatalf("dead zone inverted: intra nz %d < inter nz %d", intraNZ, interNZ)
	}
}

// TestH264TransformQuantRoundTrip runs the full H.264 path: forward 4×4
// transform → quant → dequant → inverse transform, which is where the
// transform/quant scale factors must cancel.
func TestH264TransformQuantRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, qp := range []int{0, 10, 20, 26, 35, 51} {
		maxErr := int32(0)
		for trial := 0; trial < 200; trial++ {
			var in [16]int32
			for i := range in {
				in[i] = int32(rng.Intn(511) - 255)
			}
			blk := in
			dct.Forward4(&blk)
			H264Quant(&blk, qp, false)
			H264Dequant(&blk, qp)
			dct.Inverse4(&blk)
			for i := range blk {
				if d := abs32(blk[i] - in[i]); d > maxErr {
					maxErr = d
				}
			}
		}
		// Quantization error grows as ~2^(qp/6); qp=26 step ≈ 26, qp=51 ≈ 466.
		bound := int32(1) << uint(qp/6+2)
		if bound < 4 {
			bound = 4
		}
		if maxErr > bound {
			t.Errorf("qp=%d: max reconstruction error %d > bound %d", qp, maxErr, bound)
		}
		if qp <= 10 && maxErr > 8 {
			t.Errorf("qp=%d: low-QP error too large: %d", qp, maxErr)
		}
	}
}

func TestH264QuantMonotoneInQP(t *testing.T) {
	// Higher QP must never produce more non-zero coefficients.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		var in [16]int32
		for i := range in {
			in[i] = int32(rng.Intn(511) - 255)
		}
		dct.Forward4(&in)
		prev := 17
		for qp := 0; qp <= 51; qp += 3 {
			blk := in
			nz := H264Quant(&blk, qp, true)
			if nz > prev {
				t.Fatalf("trial %d: nz grew from %d to %d at qp=%d", trial, prev, nz, qp)
			}
			prev = nz
		}
	}
}

func TestH264DCRoundTrip(t *testing.T) {
	// Follows the standard decoder order: forward Hadamard (÷2) + QuantDC on
	// the encoder side; inverse Hadamard THEN DequantDC on the decoder side.
	// The result is 4× the original DC (the same 4× the regular AC path
	// carries, cancelled later by Inverse4).
	rng := rand.New(rand.NewSource(6))
	for _, qp := range []int{12, 26, 40} {
		for trial := 0; trial < 100; trial++ {
			var dc [16]int32
			for i := range dc {
				dc[i] = int32(rng.Intn(4001) - 2000)
			}
			orig := dc
			dct.Hadamard4(&dc, true)
			H264QuantDC(&dc, qp)
			dct.Hadamard4(&dc, false)
			H264DequantDC(&dc, qp)
			for i := range dc {
				got := (dc[i] + 2) >> 2 // remove the pipeline 4× gain
				step := int32(1) << uint(qp/6+3)
				if d := abs32(got - orig[i]); d > step {
					t.Fatalf("qp=%d DC[%d]: %d -> %d", qp, i, orig[i], got)
				}
			}
		}
	}
}

func TestH264ChromaQP(t *testing.T) {
	if H264ChromaQP(20) != 20 {
		t.Error("low QPs map to themselves")
	}
	if H264ChromaQP(30) != 29 {
		t.Errorf("H264ChromaQP(30) = %d", H264ChromaQP(30))
	}
	if H264ChromaQP(51) != 39 {
		t.Errorf("H264ChromaQP(51) = %d", H264ChromaQP(51))
	}
	if H264ChromaQP(60) != 39 {
		t.Error("over-range QP must clamp")
	}
}

func TestH264QuantZeroBlock(t *testing.T) {
	var blk [16]int32
	if nz := H264Quant(&blk, 26, true); nz != 0 {
		t.Fatalf("zero block produced %d non-zeros", nz)
	}
}

func abs32(v int32) int32 {
	if v < 0 {
		return -v
	}
	return v
}
