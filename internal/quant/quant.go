// Package quant implements the quantizers of the three HD-VideoBench
// codecs: MPEG-2 matrix quantization, MPEG-4/H.263-style quantization with
// dead zone, and the H.264 QP-table quantizer, together with the paper's
// Eq. 1 mapping between the MPEG quantizer scale and the H.264 QP.
package quant

import "math"

// H264QPFromMPEG implements Eq. 1 of the paper:
//
//	H264_QP = 12 + 6·log2(MPEG_QP)
//
// rounded to the nearest integer. The paper's benchmark point MPEG QP=5 maps
// to H.264 QP=26 (matching the x264 command line in Table IV).
func H264QPFromMPEG(mpegQP int) int {
	if mpegQP < 1 {
		mpegQP = 1
	}
	qp := 12 + 6*math.Log2(float64(mpegQP))
	return int(math.Round(qp))
}

// ---------------------------------------------------------------------------
// MPEG-2
// ---------------------------------------------------------------------------

// Mpeg2IntraMatrix is the default MPEG-2 intra quantizer matrix.
var Mpeg2IntraMatrix = [64]int32{
	8, 16, 19, 22, 26, 27, 29, 34,
	16, 16, 22, 24, 27, 29, 34, 37,
	19, 22, 26, 27, 29, 34, 34, 38,
	22, 22, 26, 27, 29, 34, 37, 40,
	22, 26, 27, 29, 32, 35, 40, 48,
	26, 27, 29, 32, 35, 40, 48, 58,
	26, 27, 29, 34, 38, 46, 56, 69,
	27, 29, 35, 38, 46, 56, 69, 83,
}

// Mpeg2DCScale is the divisor applied to the intra DC coefficient
// (8-bit intra DC precision).
const Mpeg2DCScale = 8

// Mpeg2QuantIntra quantizes an intra DCT block in place with the given
// quantizer scale (1..31) and returns the number of non-zero coefficients.
func Mpeg2QuantIntra(blk *[64]int32, qscale int32) int {
	nz := 0
	blk[0] = divRound(blk[0], Mpeg2DCScale)
	if blk[0] != 0 {
		nz++
	}
	for i := 1; i < 64; i++ {
		d := Mpeg2IntraMatrix[i] * qscale
		blk[i] = divRound(16*blk[i], d)
		if blk[i] != 0 {
			nz++
		}
	}
	return nz
}

// Mpeg2DequantIntra reconstructs an intra block quantized by
// Mpeg2QuantIntra.
func Mpeg2DequantIntra(blk *[64]int32, qscale int32) {
	blk[0] *= Mpeg2DCScale
	for i := 1; i < 64; i++ {
		blk[i] = blk[i] * Mpeg2IntraMatrix[i] * qscale / 16
	}
}

// Mpeg2QuantInter quantizes a non-intra (residual) DCT block in place.
// The non-intra matrix is flat 16, so the divisor is 2·16·qscale/... with
// truncation toward zero providing the MPEG-2 dead zone.
func Mpeg2QuantInter(blk *[64]int32, qscale int32) int {
	nz := 0
	d := 2 * 16 * qscale
	for i := 0; i < 64; i++ {
		v := blk[i]
		neg := v < 0
		if neg {
			v = -v
		}
		q := 32 * v / d // truncation = dead zone
		if neg {
			q = -q
		}
		blk[i] = q
		if q != 0 {
			nz++
		}
	}
	return nz
}

// Mpeg2DequantInter reconstructs a non-intra block: F = (2·L + sign)·16·q/32.
func Mpeg2DequantInter(blk *[64]int32, qscale int32) {
	for i := 0; i < 64; i++ {
		l := blk[i]
		if l == 0 {
			continue
		}
		s := int32(1)
		if l < 0 {
			s = -1
		}
		blk[i] = (2*l + s) * 16 * qscale / 32
	}
}

// ---------------------------------------------------------------------------
// MPEG-4 (H.263-style quantization, the Xvid/"method 2" path)
// ---------------------------------------------------------------------------

// Mpeg4DCScaler returns the intra DC divisor for a given quantizer, per the
// MPEG-4 luminance dc_scaler table.
func Mpeg4DCScaler(q int32) int32 {
	switch {
	case q <= 4:
		return 8
	case q <= 8:
		return 2 * q
	case q <= 24:
		return q + 8
	default:
		return 2*q - 16
	}
}

// Mpeg4QuantIntra quantizes an intra block in place (H.263 quantization:
// DC by dc_scaler, AC by 2q with centered reconstruction).
func Mpeg4QuantIntra(blk *[64]int32, q int32) int {
	nz := 0
	dcs := Mpeg4DCScaler(q)
	blk[0] = divRound(blk[0], dcs)
	if blk[0] != 0 {
		nz++
	}
	for i := 1; i < 64; i++ {
		v := blk[i]
		neg := v < 0
		if neg {
			v = -v
		}
		l := v / (2 * q)
		if neg {
			l = -l
		}
		blk[i] = l
		if l != 0 {
			nz++
		}
	}
	return nz
}

// Mpeg4DequantIntra reconstructs an intra block quantized by
// Mpeg4QuantIntra using the H.263 oddification rule.
func Mpeg4DequantIntra(blk *[64]int32, q int32) {
	blk[0] *= Mpeg4DCScaler(q)
	for i := 1; i < 64; i++ {
		blk[i] = h263Dequant(blk[i], q)
	}
}

// Mpeg4QuantInter quantizes a residual block in place with the H.263 dead
// zone (threshold q/2 below the intra one).
func Mpeg4QuantInter(blk *[64]int32, q int32) int {
	nz := 0
	for i := 0; i < 64; i++ {
		v := blk[i]
		neg := v < 0
		if neg {
			v = -v
		}
		v -= q / 2
		var l int32
		if v > 0 {
			l = v / (2 * q)
		}
		if neg {
			l = -l
		}
		blk[i] = l
		if l != 0 {
			nz++
		}
	}
	return nz
}

// Mpeg4DequantInter reconstructs a residual block quantized by
// Mpeg4QuantInter.
func Mpeg4DequantInter(blk *[64]int32, q int32) {
	for i := 0; i < 64; i++ {
		blk[i] = h263Dequant(blk[i], q)
	}
}

// h263Dequant reconstructs one coefficient: |F| = q·(2|L|+1), minus one if q
// is even, zero for L = 0.
func h263Dequant(l, q int32) int32 {
	if l == 0 {
		return 0
	}
	neg := l < 0
	if neg {
		l = -l
	}
	f := q * (2*l + 1)
	if q%2 == 0 {
		f--
	}
	if neg {
		f = -f
	}
	return f
}

// ---------------------------------------------------------------------------
// H.264
// ---------------------------------------------------------------------------

// h264MF holds the forward-quantizer multipliers per QP%6 for the three
// coefficient position classes (a, b, c).
var h264MF = [6][3]int32{
	{13107, 5243, 8066},
	{11916, 4660, 7490},
	{10082, 4194, 6554},
	{9362, 3647, 5825},
	{8192, 3355, 5243},
	{7282, 2893, 4559},
}

// h264V holds the dequantizer multipliers per QP%6 for the three classes.
var h264V = [6][3]int32{
	{10, 16, 13},
	{11, 18, 14},
	{13, 20, 16},
	{14, 23, 18},
	{16, 25, 20},
	{18, 29, 23},
}

// h264PosClass maps a raster position in a 4×4 block to its class:
// 0 for (even,even), 1 for (odd,odd), 2 otherwise.
var h264PosClass = [16]int{
	0, 2, 0, 2,
	2, 1, 2, 1,
	0, 2, 0, 2,
	2, 1, 2, 1,
}

// H264Quant quantizes a 4×4 transformed block in place. intra selects the
// larger rounding offset (f = 2^qbits/3 vs /6). Returns non-zero count.
func H264Quant(blk *[16]int32, qp int, intra bool) int {
	qbits := uint(15 + qp/6)
	var f int32
	if intra {
		f = int32((1 << qbits) / 3)
	} else {
		f = int32((1 << qbits) / 6)
	}
	mf := &h264MF[qp%6]
	nz := 0
	for i := 0; i < 16; i++ {
		v := blk[i]
		neg := v < 0
		if neg {
			v = -v
		}
		z := int32((int64(v)*int64(mf[h264PosClass[i]]) + int64(f)) >> qbits)
		if neg {
			z = -z
		}
		blk[i] = z
		if z != 0 {
			nz++
		}
	}
	return nz
}

// H264Dequant reconstructs a 4×4 block quantized by H264Quant.
func H264Dequant(blk *[16]int32, qp int) {
	shift := uint(qp / 6)
	v := &h264V[qp%6]
	for i := 0; i < 16; i++ {
		blk[i] = (blk[i] * v[h264PosClass[i]]) << shift
	}
}

// H264QuantDC quantizes the 4×4 Hadamard-transformed luma DC block
// (doubled rounding, one extra shift per the standard).
func H264QuantDC(blk *[16]int32, qp int) int {
	qbits := uint(15 + qp/6)
	f := int32((1 << qbits) / 3)
	mf := h264MF[qp%6][0]
	nz := 0
	for i := 0; i < 16; i++ {
		v := blk[i]
		neg := v < 0
		if neg {
			v = -v
		}
		z := int32((int64(v)*int64(mf) + int64(2*f)) >> (qbits + 1))
		if neg {
			z = -z
		}
		blk[i] = z
		if z != 0 {
			nz++
		}
	}
	return nz
}

// H264DequantDC reconstructs the luma DC block.
func H264DequantDC(blk *[16]int32, qp int) {
	v := h264V[qp%6][0]
	if qp >= 12 {
		shift := uint(qp/6 - 2)
		for i := 0; i < 16; i++ {
			blk[i] = (blk[i] * v) << shift
		}
		return
	}
	shift := uint(2 - qp/6)
	round := int32(1) << (shift - 1)
	for i := 0; i < 16; i++ {
		blk[i] = (blk[i]*v + round) >> shift
	}
}

// H264QuantChromaDC quantizes the 2×2 chroma DC block.
func H264QuantChromaDC(blk *[4]int32, qp int, intra bool) int {
	qbits := uint(15 + qp/6)
	var f int32
	if intra {
		f = int32((1 << qbits) / 3)
	} else {
		f = int32((1 << qbits) / 6)
	}
	mf := h264MF[qp%6][0]
	nz := 0
	for i := 0; i < 4; i++ {
		v := blk[i]
		neg := v < 0
		if neg {
			v = -v
		}
		z := int32((int64(v)*int64(mf) + int64(2*f)) >> (qbits + 1))
		if neg {
			z = -z
		}
		blk[i] = z
		if z != 0 {
			nz++
		}
	}
	return nz
}

// H264DequantChromaDC reconstructs the 2×2 chroma DC block.
func H264DequantChromaDC(blk *[4]int32, qp int) {
	v := h264V[qp%6][0]
	if qp >= 6 {
		shift := uint(qp/6 - 1)
		for i := 0; i < 4; i++ {
			blk[i] = (blk[i] * v) << shift
		}
		return
	}
	for i := 0; i < 4; i++ {
		blk[i] = (blk[i] * v) >> 1
	}
}

// H264ChromaQP maps a luma QP to the chroma QP per the standard table.
var h264ChromaQPTable = [22]int{
	29, 30, 31, 32, 32, 33, 34, 34, 35, 35, 36, 36, 37, 37, 37, 38, 38, 38, 39, 39, 39, 39,
}

// H264ChromaQP returns the chroma quantizer for a luma QP in [0, 51].
func H264ChromaQP(qp int) int {
	if qp < 30 {
		return qp
	}
	if qp > 51 {
		qp = 51
	}
	return h264ChromaQPTable[qp-30]
}

// divRound divides with rounding to nearest (ties away from zero),
// correctly for negative numerators.
func divRound(n, d int32) int32 {
	if n >= 0 {
		return (n + d/2) / d
	}
	return -((-n + d/2) / d)
}
