// Package kernel defines the kernel-set selector that reproduces the
// paper's scalar-vs-SIMD axis (Figure 1). Every hot loop in the codecs is
// implemented twice — a plain scalar version and a SWAR version — selected
// by this type. Both versions are bit-exact, so the selection changes only
// execution speed, never output.
package kernel

// Set selects the implementation family for performance-critical kernels.
type Set int

const (
	// Scalar is the plain-Go reference implementation (the paper's
	// "scalar version, plain C code").
	Scalar Set = iota
	// SWAR is the SIMD-within-a-register implementation (the paper's
	// "version which includes SIMD optimizations").
	SWAR
)

// String returns the label used in benchmark reports.
func (s Set) String() string {
	if s == SWAR {
		return "SIMD"
	}
	return "Scalar"
}
