package kernel

import "testing"

func TestString(t *testing.T) {
	if Scalar.String() != "Scalar" {
		t.Errorf("Scalar.String() = %q", Scalar.String())
	}
	if SWAR.String() != "SIMD" {
		t.Errorf("SWAR.String() = %q (the reports use the paper's label)", SWAR.String())
	}
}
