package dct

// Zigzag8 is the classic 8×8 zigzag scan order (MPEG-2/-4 progressive scan):
// Zigzag8[k] is the raster index of the k-th scanned coefficient.
var Zigzag8 = [64]int{
	0, 1, 8, 16, 9, 2, 3, 10,
	17, 24, 32, 25, 18, 11, 4, 5,
	12, 19, 26, 33, 40, 48, 41, 34,
	27, 20, 13, 6, 7, 14, 21, 28,
	35, 42, 49, 56, 57, 50, 43, 36,
	29, 22, 15, 23, 30, 37, 44, 51,
	58, 59, 52, 45, 38, 31, 39, 46,
	53, 60, 61, 54, 47, 55, 62, 63,
}

// Zigzag4 is the 4×4 zigzag scan order used by H.264.
var Zigzag4 = [16]int{
	0, 1, 4, 8,
	5, 2, 3, 6,
	9, 12, 13, 10,
	7, 11, 14, 15,
}
