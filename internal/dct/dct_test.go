package dct

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// refDCT8 is an O(n⁴) float reference of the orthonormal 2-D DCT-II with the
// MPEG scale convention (DC of a flat block of value v equals 8v).
func refDCT8(in *[64]int32) [64]float64 {
	var out [64]float64
	for v := 0; v < 8; v++ {
		for u := 0; u < 8; u++ {
			sum := 0.0
			for y := 0; y < 8; y++ {
				for x := 0; x < 8; x++ {
					sum += float64(in[y*8+x]) *
						math.Cos(float64(2*x+1)*float64(u)*math.Pi/16) *
						math.Cos(float64(2*y+1)*float64(v)*math.Pi/16)
				}
			}
			cu, cv := 1.0, 1.0
			if u == 0 {
				cu = 1 / math.Sqrt2
			}
			if v == 0 {
				cv = 1 / math.Sqrt2
			}
			out[v*8+u] = sum * cu * cv / 4
		}
	}
	return out
}

func refIDCT8(in *[64]float64) [64]float64 {
	var out [64]float64
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			sum := 0.0
			for v := 0; v < 8; v++ {
				for u := 0; u < 8; u++ {
					cu, cv := 1.0, 1.0
					if u == 0 {
						cu = 1 / math.Sqrt2
					}
					if v == 0 {
						cv = 1 / math.Sqrt2
					}
					sum += cu * cv * in[v*8+u] *
						math.Cos(float64(2*x+1)*float64(u)*math.Pi/16) *
						math.Cos(float64(2*y+1)*float64(v)*math.Pi/16)
				}
			}
			out[y*8+x] = sum / 4
		}
	}
	return out
}

func randomBlock(rng *rand.Rand, lo, hi int) [64]int32 {
	var b [64]int32
	for i := range b {
		b[i] = int32(lo + rng.Intn(hi-lo+1))
	}
	return b
}

func TestForward8MatchesFloatReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		in := randomBlock(rng, -256, 255)
		want := refDCT8(&in)
		got := in
		Forward8(&got)
		for i := range got {
			if diff := math.Abs(float64(got[i]) - want[i]); diff > 2.0 {
				t.Fatalf("trial %d coeff %d: got %d want %.2f (diff %.2f)",
					trial, i, got[i], want[i], diff)
			}
		}
	}
}

func TestForward8DC(t *testing.T) {
	var in [64]int32
	for i := range in {
		in[i] = 100
	}
	Forward8(&in)
	if in[0] < 798 || in[0] > 802 {
		t.Fatalf("DC of flat 100 block = %d, want ~800", in[0])
	}
	for i := 1; i < 64; i++ {
		if in[i] != 0 {
			t.Fatalf("AC coeff %d = %d, want 0", i, in[i])
		}
	}
}

func TestInverse8MatchesFloatReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		// Realistic coefficient magnitudes: large DC, decaying AC.
		var coeffs [64]int32
		var coeffsF [64]float64
		for i := range coeffs {
			mag := 2040 / (1 + i)
			if mag < 4 {
				mag = 4
			}
			v := int32(rng.Intn(2*mag+1) - mag)
			coeffs[i] = v
			coeffsF[i] = float64(v)
		}
		want := refIDCT8(&coeffsF)
		got := coeffs
		Inverse8(&got)
		for i := range got {
			if diff := math.Abs(float64(got[i]) - want[i]); diff > 2.0 {
				t.Fatalf("trial %d sample %d: got %d want %.2f",
					trial, i, got[i], want[i])
			}
		}
	}
}

func TestRoundTrip8(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 500; trial++ {
		in := randomBlock(rng, -255, 255)
		work := in
		Forward8(&work)
		Inverse8(&work)
		for i := range work {
			if d := work[i] - in[i]; d < -2 || d > 2 {
				t.Fatalf("trial %d sample %d: round trip %d -> %d", trial, i, in[i], work[i])
			}
		}
	}
}

func TestForward8Linearity(t *testing.T) {
	// Property: DCT(a) + DCT(b) ≈ DCT(a+b) (within fixed-point rounding).
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomBlock(rng, -100, 100)
		b := randomBlock(rng, -100, 100)
		var sum [64]int32
		for i := range sum {
			sum[i] = a[i] + b[i]
		}
		Forward8(&a)
		Forward8(&b)
		Forward8(&sum)
		for i := range sum {
			if d := sum[i] - a[i] - b[i]; d < -3 || d > 3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// refForward4 is a direct integer matrix evaluation of C·X·Cᵀ.
func refForward4(in *[16]int32) [16]int32 {
	c := [4][4]int32{{1, 1, 1, 1}, {2, 1, -1, -2}, {1, -1, -1, 1}, {1, -2, 2, -1}}
	var tmp, out [16]int32
	for i := 0; i < 4; i++ { // tmp = C·X
		for j := 0; j < 4; j++ {
			var s int32
			for k := 0; k < 4; k++ {
				s += c[i][k] * in[k*4+j]
			}
			tmp[i*4+j] = s
		}
	}
	for i := 0; i < 4; i++ { // out = tmp·Cᵀ
		for j := 0; j < 4; j++ {
			var s int32
			for k := 0; k < 4; k++ {
				s += tmp[i*4+k] * c[j][k]
			}
			out[i*4+j] = s
		}
	}
	return out
}

func TestForward4MatchesMatrixReference(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 1000; trial++ {
		var in [16]int32
		for i := range in {
			in[i] = int32(rng.Intn(511) - 255)
		}
		want := refForward4(&in)
		got := in
		Forward4(&got)
		if got != want {
			t.Fatalf("trial %d: got %v want %v", trial, got, want)
		}
	}
}

// refInverse4 evaluates the H.264 inverse core with exact 0.5 coefficients
// in floating point; the integer implementation truncates its >>1 terms, so
// results may differ by a small bounded amount.
func refInverse4(in *[16]int32) [16]float64 {
	ci := [4][4]float64{{1, 1, 1, 0.5}, {1, 0.5, -1, -1}, {1, -0.5, -1, 1}, {1, -1, 1, -0.5}}
	var tmp [16]float64
	for j := 0; j < 4; j++ { // tmp = Ciᵀ-style column pass on rows first
		for i := 0; i < 4; i++ {
			var s float64
			for k := 0; k < 4; k++ {
				s += ci[i][k] * float64(in[j*4+k])
			}
			tmp[j*4+i] = s
		}
	}
	var out [16]float64
	for j := 0; j < 4; j++ {
		for i := 0; i < 4; i++ {
			var s float64
			for k := 0; k < 4; k++ {
				s += ci[i][k] * tmp[k*4+j]
			}
			out[i*4+j] = (s + 32) / 64
		}
	}
	return out
}

func TestInverse4MatchesFloatReference(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 500; trial++ {
		var in [16]int32
		for i := range in {
			in[i] = int32(rng.Intn(2001) - 1000)
		}
		want := refInverse4(&in)
		got := in
		Inverse4(&got)
		for i := range got {
			if diff := math.Abs(float64(got[i]) - want[i]); diff > 2.5 {
				t.Fatalf("trial %d sample %d: got %d want %.2f", trial, i, got[i], want[i])
			}
		}
	}
}

func TestInverse4DCOnly(t *testing.T) {
	// A DC-only block d reconstructs to (d+32)>>6 everywhere.
	var in [16]int32
	in[0] = 640
	Inverse4(&in)
	for i, v := range in {
		if v != (640+32)>>6 {
			t.Fatalf("sample %d = %d, want %d", i, v, (640+32)>>6)
		}
	}
}

func TestForward4DC(t *testing.T) {
	var in [16]int32
	for i := range in {
		in[i] = 10
	}
	Forward4(&in)
	if in[0] != 160 {
		t.Fatalf("DC = %d, want 160 (16×10)", in[0])
	}
	for i := 1; i < 16; i++ {
		if in[i] != 0 {
			t.Fatalf("AC %d = %d", i, in[i])
		}
	}
}

func TestHadamard4Involution(t *testing.T) {
	// Property: H(H(x)) = 16x for the undivided transform.
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var in [16]int32
		for i := range in {
			in[i] = int32(rng.Intn(2001) - 1000)
		}
		work := in
		Hadamard4(&work, false)
		Hadamard4(&work, false)
		for i := range work {
			if work[i] != 16*in[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHadamard2Involution(t *testing.T) {
	in := [4]int32{3, -7, 11, 100}
	work := in
	Hadamard2(&work)
	Hadamard2(&work)
	for i := range work {
		if work[i] != 4*in[i] {
			t.Fatalf("H2(H2(x)) != 4x at %d: %d vs %d", i, work[i], 4*in[i])
		}
	}
}

func TestSATD4ZeroAndScale(t *testing.T) {
	var zero [16]int32
	if SATD4(&zero) != 0 {
		t.Fatal("SATD of zero block must be 0")
	}
	var dc [16]int32
	for i := range dc {
		dc[i] = 4
	}
	// Hadamard of flat block: only DC = 16*4 = 64 → SATD = 32.
	if got := SATD4(&dc); got != 32 {
		t.Fatalf("SATD flat = %d, want 32", got)
	}
}

func TestZigzagPermutations(t *testing.T) {
	seen8 := map[int]bool{}
	for _, v := range Zigzag8 {
		if v < 0 || v > 63 || seen8[v] {
			t.Fatalf("Zigzag8 invalid entry %d", v)
		}
		seen8[v] = true
	}
	seen4 := map[int]bool{}
	for _, v := range Zigzag4 {
		if v < 0 || v > 15 || seen4[v] {
			t.Fatalf("Zigzag4 invalid entry %d", v)
		}
		seen4[v] = true
	}
	// Low-frequency coefficients must come first.
	if Zigzag8[0] != 0 || Zigzag8[1] != 1 || Zigzag8[2] != 8 {
		t.Fatal("Zigzag8 must start 0,1,8")
	}
	if Zigzag4[0] != 0 || Zigzag4[1] != 1 || Zigzag4[2] != 4 {
		t.Fatal("Zigzag4 must start 0,1,4")
	}
}

func BenchmarkForward8(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	blk := randomBlock(rng, -255, 255)
	for i := 0; i < b.N; i++ {
		work := blk
		Forward8(&work)
	}
}

func BenchmarkInverse8(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	blk := randomBlock(rng, -255, 255)
	Forward8(&blk)
	for i := 0; i < b.N; i++ {
		work := blk
		Inverse8(&work)
	}
}

func BenchmarkForward4(b *testing.B) {
	var blk [16]int32
	for i := range blk {
		blk[i] = int32(i*7 - 50)
	}
	for i := 0; i < b.N; i++ {
		work := blk
		Forward4(&work)
	}
}
