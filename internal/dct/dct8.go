// Package dct implements the block transforms used by the HD-VideoBench
// codecs: a fast fixed-point 8×8 DCT-II / inverse pair (MPEG-2 and MPEG-4)
// and the H.264 4×4 integer core transform with its Hadamard DC transforms.
//
// The 8×8 pair uses the Loeffler/Ligtenberg/Moshovitz factorization with
// 13-bit fixed-point constants (the same structure libjpeg's jfdctint and
// FFmpeg's simple_idct families use). Both directions are pure-integer and
// deterministic, so encoder reconstruction and decoder output are bit-exact
// regardless of kernel selection.
package dct

// Fixed-point constants: round(c * 2^13) for the LLM factorization.
const (
	constBits = 13
	pass1Bits = 2

	fix0_298631336 = 2446
	fix0_390180644 = 3196
	fix0_541196100 = 4433
	fix0_765366865 = 6270
	fix0_899976223 = 7373
	fix1_175875602 = 9633
	fix1_501321110 = 12299
	fix1_847759065 = 15137
	fix1_961570560 = 16069
	fix2_053119869 = 16819
	fix2_562915447 = 20995
	fix3_072711026 = 25172
)

func descale(x int32, n uint) int32 {
	return (x + (1 << (n - 1))) >> n
}

// Forward8 computes the 8×8 forward DCT of blk in place. The output uses the
// MPEG convention: F(0,0) equals the block sum divided by 8 (DC of a flat
// block of value v is 8·v). Input samples should be in [-256, 255]; this
// covers both level-shifted intra blocks and inter residuals.
func Forward8(blk *[64]int32) {
	// Pass 1: process rows, scaling output up by 2^pass1Bits.
	for r := 0; r < 8; r++ {
		p := blk[r*8 : r*8+8 : r*8+8]
		tmp0 := p[0] + p[7]
		tmp7 := p[0] - p[7]
		tmp1 := p[1] + p[6]
		tmp6 := p[1] - p[6]
		tmp2 := p[2] + p[5]
		tmp5 := p[2] - p[5]
		tmp3 := p[3] + p[4]
		tmp4 := p[3] - p[4]

		tmp10 := tmp0 + tmp3
		tmp13 := tmp0 - tmp3
		tmp11 := tmp1 + tmp2
		tmp12 := tmp1 - tmp2

		p[0] = (tmp10 + tmp11) << pass1Bits
		p[4] = (tmp10 - tmp11) << pass1Bits

		z1 := (tmp12 + tmp13) * fix0_541196100
		p[2] = descale(z1+tmp13*fix0_765366865, constBits-pass1Bits)
		p[6] = descale(z1-tmp12*fix1_847759065, constBits-pass1Bits)

		z1 = tmp4 + tmp7
		z2 := tmp5 + tmp6
		z3 := tmp4 + tmp6
		z4 := tmp5 + tmp7
		z5 := (z3 + z4) * fix1_175875602

		t4 := tmp4 * fix0_298631336
		t5 := tmp5 * fix2_053119869
		t6 := tmp6 * fix3_072711026
		t7 := tmp7 * fix1_501321110
		z1 = -z1 * fix0_899976223
		z2 = -z2 * fix2_562915447
		z3 = -z3*fix1_961570560 + z5
		z4 = -z4*fix0_390180644 + z5

		p[7] = descale(t4+z1+z3, constBits-pass1Bits)
		p[5] = descale(t5+z2+z4, constBits-pass1Bits)
		p[3] = descale(t6+z2+z3, constBits-pass1Bits)
		p[1] = descale(t7+z1+z4, constBits-pass1Bits)
	}

	// Pass 2: process columns, removing the pass-1 scale and the ×8 DCT
	// gain (hence the extra +3).
	for c := 0; c < 8; c++ {
		tmp0 := blk[c] + blk[c+56]
		tmp7 := blk[c] - blk[c+56]
		tmp1 := blk[c+8] + blk[c+48]
		tmp6 := blk[c+8] - blk[c+48]
		tmp2 := blk[c+16] + blk[c+40]
		tmp5 := blk[c+16] - blk[c+40]
		tmp3 := blk[c+24] + blk[c+32]
		tmp4 := blk[c+24] - blk[c+32]

		tmp10 := tmp0 + tmp3
		tmp13 := tmp0 - tmp3
		tmp11 := tmp1 + tmp2
		tmp12 := tmp1 - tmp2

		blk[c] = descale(tmp10+tmp11, pass1Bits+3)
		blk[c+32] = descale(tmp10-tmp11, pass1Bits+3)

		z1 := (tmp12 + tmp13) * fix0_541196100
		blk[c+16] = descale(z1+tmp13*fix0_765366865, constBits+pass1Bits+3)
		blk[c+48] = descale(z1-tmp12*fix1_847759065, constBits+pass1Bits+3)

		z1 = tmp4 + tmp7
		z2 := tmp5 + tmp6
		z3 := tmp4 + tmp6
		z4 := tmp5 + tmp7
		z5 := (z3 + z4) * fix1_175875602

		t4 := tmp4 * fix0_298631336
		t5 := tmp5 * fix2_053119869
		t6 := tmp6 * fix3_072711026
		t7 := tmp7 * fix1_501321110
		z1 = -z1 * fix0_899976223
		z2 = -z2 * fix2_562915447
		z3 = -z3*fix1_961570560 + z5
		z4 = -z4*fix0_390180644 + z5

		blk[c+56] = descale(t4+z1+z3, constBits+pass1Bits+3)
		blk[c+40] = descale(t5+z2+z4, constBits+pass1Bits+3)
		blk[c+24] = descale(t6+z2+z3, constBits+pass1Bits+3)
		blk[c+8] = descale(t7+z1+z4, constBits+pass1Bits+3)
	}
}

// Inverse8 computes the 8×8 inverse DCT of blk in place, for coefficients in
// the scale produced by Forward8. Output is in the sample domain.
func Inverse8(blk *[64]int32) {
	// Pass 1: columns, producing intermediates scaled by 2^pass1Bits.
	for c := 0; c < 8; c++ {
		z2 := blk[c+16]
		z3 := blk[c+48]
		z1 := (z2 + z3) * fix0_541196100
		tmp2 := z1 - z3*fix1_847759065
		tmp3 := z1 + z2*fix0_765366865

		tmp0 := (blk[c] + blk[c+32]) << constBits
		tmp1 := (blk[c] - blk[c+32]) << constBits

		tmp10 := tmp0 + tmp3
		tmp13 := tmp0 - tmp3
		tmp11 := tmp1 + tmp2
		tmp12 := tmp1 - tmp2

		t0 := blk[c+56]
		t1 := blk[c+40]
		t2 := blk[c+24]
		t3 := blk[c+8]

		z1 = t0 + t3
		z2 = t1 + t2
		z3 = t0 + t2
		z4 := t1 + t3
		z5 := (z3 + z4) * fix1_175875602

		t0 *= fix0_298631336
		t1 *= fix2_053119869
		t2 *= fix3_072711026
		t3 *= fix1_501321110
		z1 = -z1 * fix0_899976223
		z2 = -z2 * fix2_562915447
		z3 = -z3*fix1_961570560 + z5
		z4 = -z4*fix0_390180644 + z5

		t0 += z1 + z3
		t1 += z2 + z4
		t2 += z2 + z3
		t3 += z1 + z4

		blk[c] = descale(tmp10+t3, constBits-pass1Bits)
		blk[c+56] = descale(tmp10-t3, constBits-pass1Bits)
		blk[c+8] = descale(tmp11+t2, constBits-pass1Bits)
		blk[c+48] = descale(tmp11-t2, constBits-pass1Bits)
		blk[c+16] = descale(tmp12+t1, constBits-pass1Bits)
		blk[c+40] = descale(tmp12-t1, constBits-pass1Bits)
		blk[c+24] = descale(tmp13+t0, constBits-pass1Bits)
		blk[c+32] = descale(tmp13-t0, constBits-pass1Bits)
	}

	// Pass 2: rows. Each 1-D pass of this network carries a gain of 2√2
	// (×8 over both passes), so the final descale removes pass1Bits plus
	// those 3 extra bits.
	for r := 0; r < 8; r++ {
		p := blk[r*8 : r*8+8 : r*8+8]

		z2 := p[2]
		z3 := p[6]
		z1 := (z2 + z3) * fix0_541196100
		tmp2 := z1 - z3*fix1_847759065
		tmp3 := z1 + z2*fix0_765366865

		tmp0 := (p[0] + p[4]) << constBits
		tmp1 := (p[0] - p[4]) << constBits

		tmp10 := tmp0 + tmp3
		tmp13 := tmp0 - tmp3
		tmp11 := tmp1 + tmp2
		tmp12 := tmp1 - tmp2

		t0 := p[7]
		t1 := p[5]
		t2 := p[3]
		t3 := p[1]

		z1 = t0 + t3
		z2 = t1 + t2
		z3 = t0 + t2
		z4 := t1 + t3
		z5 := (z3 + z4) * fix1_175875602

		t0 *= fix0_298631336
		t1 *= fix2_053119869
		t2 *= fix3_072711026
		t3 *= fix1_501321110
		z1 = -z1 * fix0_899976223
		z2 = -z2 * fix2_562915447
		z3 = -z3*fix1_961570560 + z5
		z4 = -z4*fix0_390180644 + z5

		t0 += z1 + z3
		t1 += z2 + z4
		t2 += z2 + z3
		t3 += z1 + z4

		p[0] = descale(tmp10+t3, constBits+pass1Bits+3)
		p[7] = descale(tmp10-t3, constBits+pass1Bits+3)
		p[1] = descale(tmp11+t2, constBits+pass1Bits+3)
		p[6] = descale(tmp11-t2, constBits+pass1Bits+3)
		p[2] = descale(tmp12+t1, constBits+pass1Bits+3)
		p[5] = descale(tmp12-t1, constBits+pass1Bits+3)
		p[3] = descale(tmp13+t0, constBits+pass1Bits+3)
		p[4] = descale(tmp13-t0, constBits+pass1Bits+3)
	}
}
