package dct

// Forward4 applies the H.264 4×4 forward core transform in place
// (Y = C·X·Cᵀ with C = [[1,1,1,1],[2,1,-1,-2],[1,-1,-1,1],[1,-2,2,-1]]).
// The transform gain is absorbed by the H.264 quantizer tables.
func Forward4(blk *[16]int32) {
	// Rows.
	for i := 0; i < 16; i += 4 {
		s03 := blk[i] + blk[i+3]
		d03 := blk[i] - blk[i+3]
		s12 := blk[i+1] + blk[i+2]
		d12 := blk[i+1] - blk[i+2]
		blk[i] = s03 + s12
		blk[i+1] = 2*d03 + d12
		blk[i+2] = s03 - s12
		blk[i+3] = d03 - 2*d12
	}
	// Columns.
	for i := 0; i < 4; i++ {
		s03 := blk[i] + blk[i+12]
		d03 := blk[i] - blk[i+12]
		s12 := blk[i+4] + blk[i+8]
		d12 := blk[i+4] - blk[i+8]
		blk[i] = s03 + s12
		blk[i+4] = 2*d03 + d12
		blk[i+8] = s03 - s12
		blk[i+12] = d03 - 2*d12
	}
}

// Inverse4 applies the H.264 4×4 inverse core transform in place, including
// the final (x+32)>>6 rounding of the standard. Input is dequantized
// coefficients; output is the residual in the sample domain.
func Inverse4(blk *[16]int32) {
	// Rows.
	for i := 0; i < 16; i += 4 {
		s02 := blk[i] + blk[i+2]
		d02 := blk[i] - blk[i+2]
		d13 := (blk[i+1] >> 1) - blk[i+3]
		s13 := blk[i+1] + (blk[i+3] >> 1)
		blk[i] = s02 + s13
		blk[i+1] = d02 + d13
		blk[i+2] = d02 - d13
		blk[i+3] = s02 - s13
	}
	// Columns with final rounding.
	for i := 0; i < 4; i++ {
		s02 := blk[i] + blk[i+8]
		d02 := blk[i] - blk[i+8]
		d13 := (blk[i+4] >> 1) - blk[i+12]
		s13 := blk[i+4] + (blk[i+12] >> 1)
		blk[i] = (s02 + s13 + 32) >> 6
		blk[i+4] = (d02 + d13 + 32) >> 6
		blk[i+8] = (d02 - d13 + 32) >> 6
		blk[i+12] = (s02 - s13 + 32) >> 6
	}
}

// Hadamard4 applies the 4×4 Hadamard transform in place. With div2 true the
// result is divided by 2 with rounding (the forward luma-DC convention in
// H.264); with div2 false the raw ±1 butterfly output is produced.
func Hadamard4(blk *[16]int32, div2 bool) {
	for i := 0; i < 16; i += 4 {
		s03 := blk[i] + blk[i+3]
		d03 := blk[i] - blk[i+3]
		s12 := blk[i+1] + blk[i+2]
		d12 := blk[i+1] - blk[i+2]
		blk[i] = s03 + s12
		blk[i+1] = d03 + d12
		blk[i+2] = s03 - s12
		blk[i+3] = d03 - d12
	}
	for i := 0; i < 4; i++ {
		s03 := blk[i] + blk[i+12]
		d03 := blk[i] - blk[i+12]
		s12 := blk[i+4] + blk[i+8]
		d12 := blk[i+4] - blk[i+8]
		if div2 {
			blk[i] = (s03 + s12 + 1) >> 1
			blk[i+4] = (d03 + d12 + 1) >> 1
			blk[i+8] = (s03 - s12 + 1) >> 1
			blk[i+12] = (d03 - d12 + 1) >> 1
		} else {
			blk[i] = s03 + s12
			blk[i+4] = d03 + d12
			blk[i+8] = s03 - s12
			blk[i+12] = d03 - d12
		}
	}
}

// Hadamard2 applies the 2×2 Hadamard transform (chroma DC) in place.
func Hadamard2(blk *[4]int32) {
	a, b, c, d := blk[0], blk[1], blk[2], blk[3]
	blk[0] = a + b + c + d
	blk[1] = a - b + c - d
	blk[2] = a + b - c - d
	blk[3] = a - b - c + d
}

// SATD4 returns the sum of absolute Hadamard-transformed differences of a
// 4×4 difference block — the cost metric x264-class encoders use for
// sub-pel refinement and mode decision.
func SATD4(diff *[16]int32) int32 {
	var tmp [16]int32
	copy(tmp[:], diff[:])
	Hadamard4(&tmp, false)
	var sum int32
	for _, v := range tmp {
		if v < 0 {
			v = -v
		}
		sum += v
	}
	return (sum + 1) >> 1
}
