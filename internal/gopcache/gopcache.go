// Package gopcache is the disk-backed LRU cache of coded GOP streams
// behind cmd/hdvserve: identical transcode requests used to re-encode
// from scratch every time, which made repeat traffic CPU-bound; caching
// the coded container turns it into I/O-bound serving, the classic
// CDN/origin split. The streaming encoder's closed-GOP chunk boundary is
// the natural cache unit — every entry carries a GOP index trailer
// (container.GOPIndex) recording where each chunk starts in the byte
// stream, so ranged/seeking clients get GOP-aligned spans without the
// server re-parsing anything.
//
// # On-disk layout
//
// Each entry is one file, <sha256(key)>.gop, holding the exact container
// bytes a cold encode streams to the client followed by the GOP index
// record (see container.ReadGOPIndexTrailer). Because the body is the
// verbatim byte stream, a cache hit is byte-identical to the cold
// response by construction. Fills write to fill-* temp files in the same
// directory and rename into place on Commit, so a crashed or aborted
// fill never leaves a half-entry behind; Open sweeps leftover temp files
// and re-adopts every well-formed entry, making the cache durable across
// restarts.
//
// # Concurrency and eviction
//
// All bookkeeping sits behind one mutex; file I/O happens outside it.
// Get returns an opened *os.File, so an entry evicted while being served
// keeps streaming — the unlink only drops the name (POSIX semantics),
// the bytes live until the last descriptor closes. Eviction is LRU by
// access order against a byte budget, and never evicts the entry just
// admitted: the budget is firm for steady state but soft by one entry,
// so a single oversized stream still caches rather than thrashing.
package gopcache

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hdvideobench/internal/container"
)

// Key identifies one cacheable encode: every field that shapes the
// coded bytes. Worker count and window deliberately do not appear —
// the pipeline's determinism guarantee makes the output byte-identical
// across both, so all parallelism settings share one entry.
type Key struct {
	Codec   string // target codec name
	Seq     string // source sequence name
	Width   int
	Height  int
	Frames  int
	Q       int
	GOP     int    // IntraPeriod (the chunk/seek unit)
	Slices  int    // effective slice count (slices change the bitstream)
	Entropy string // H.264 entropy coder ("", "cabac", "vlc")
	SIMD    bool   // kernel set (bit-exact today, keyed defensively)
	Rung    string // ladder rung name ("" = plain single-stream encode)
	Kbps    int    // bitrate target in kbps (0 = constant-Q)
}

// id returns the entry filename stem: a hash of the canonical key
// string, so keys never need escaping and filenames stay fixed-length.
func (k Key) id() string {
	s := fmt.Sprintf("%s|%s|%d|%d|%d|%d|%d|%d|%s|%t|%s|%d",
		k.Codec, k.Seq, k.Width, k.Height, k.Frames, k.Q, k.GOP, k.Slices, k.Entropy, k.SIMD, k.Rung, k.Kbps)
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:16])
}

const entrySuffix = ".gop"

// Stats is a point-in-time cache summary (the /metrics feed).
type Stats struct {
	Entries   int
	Bytes     int64 // total file bytes on disk (index trailers included)
	Budget    int64
	Hits      int64
	Misses    int64
	Evictions int64
}

// Cache is the disk-backed LRU. Safe for concurrent use.
type Cache struct {
	dir    string
	budget int64 // byte budget; <= 0 means unlimited

	mu      sync.Mutex
	entries map[string]*entry // guarded by mu; by Key.id()
	lru     *list.List        // guarded by mu; front = oldest, back = most recent; values are *entry
	bytes   int64             // guarded by mu

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type entry struct {
	id   string
	size int64 // file size, index trailer included
	idx  container.GOPIndex
	elem *list.Element
}

// Open attaches a cache to dir (created if missing), re-adopting every
// well-formed entry already there — oldest-modified first, so restart
// keeps a sensible LRU order — and sweeping temp files and corrupt
// entries. budget <= 0 disables eviction.
func Open(dir string, budget int64) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("gopcache: %w", err)
	}
	c := &Cache{
		dir:     dir,
		budget:  budget,
		entries: make(map[string]*entry),
		lru:     list.New(),
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("gopcache: %w", err)
	}
	type found struct {
		e   *entry
		mod time.Time
	}
	var adopt []found
	for _, de := range names {
		name := de.Name()
		if de.IsDir() {
			continue
		}
		if strings.HasPrefix(name, "fill-") {
			os.Remove(filepath.Join(dir, name)) // crashed fill
			continue
		}
		if !strings.HasSuffix(name, entrySuffix) {
			continue
		}
		path := filepath.Join(dir, name)
		fi, err := de.Info()
		if err != nil {
			continue
		}
		f, err := os.Open(path)
		if err != nil {
			continue
		}
		idx, ierr := container.ReadGOPIndexTrailer(f, fi.Size())
		f.Close()
		if ierr != nil {
			os.Remove(path) // corrupt or foreign: not servable
			continue
		}
		adopt = append(adopt, found{
			e:   &entry{id: strings.TrimSuffix(name, entrySuffix), size: fi.Size(), idx: idx},
			mod: fi.ModTime(),
		})
	}
	sort.Slice(adopt, func(i, j int) bool { return adopt[i].mod.Before(adopt[j].mod) })
	for _, a := range adopt {
		a.e.elem = c.lru.PushBack(a.e)
		c.entries[a.e.id] = a.e
		c.bytes += a.e.size
	}
	c.mu.Lock()
	c.evictLocked(nil)
	c.mu.Unlock()
	return c, nil
}

// Dir returns the cache directory.
func (c *Cache) Dir() string { return c.dir }

func (c *Cache) path(id string) string { return filepath.Join(c.dir, id+entrySuffix) }

// Entry is an opened cache entry: the container bytes plus their GOP
// index. Close it when done serving; eviction cannot invalidate an open
// entry (the file stays readable until closed).
type Entry struct {
	f       *os.File
	Index   container.GOPIndex
	ModTime time.Time
}

// Size returns the container byte length (the served body — the on-disk
// file is larger by the index trailer).
func (e *Entry) Size() int64 { return e.Index.Size }

// Body returns a fresh ReadSeeker over the container bytes, excluding
// the index trailer — the shape http.ServeContent wants.
func (e *Entry) Body() *io.SectionReader { return io.NewSectionReader(e.f, 0, e.Index.Size) }

// Close releases the entry's file.
func (e *Entry) Close() error { return e.f.Close() }

// Get opens the entry for key, bumping it to most-recently-used, and
// counts the hit or miss. An entry whose file has vanished underneath
// the cache (external cleanup) is dropped and reported as a miss.
func (c *Cache) Get(key Key) (*Entry, bool) {
	id := key.id()
	c.mu.Lock()
	e, ok := c.entries[id]
	if ok {
		c.lru.MoveToBack(e.elem)
	}
	c.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	ent, err := c.open(e)
	if err != nil {
		c.mu.Lock()
		c.dropLocked(e)
		c.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return ent, true
}

func (c *Cache) open(e *entry) (*Entry, error) {
	f, err := os.Open(c.path(e.id))
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil || fi.Size() != e.size {
		f.Close()
		if err == nil {
			err = fmt.Errorf("gopcache: entry %s resized under the cache", e.id)
		}
		return nil, err
	}
	return &Entry{f: f, Index: e.idx, ModTime: fi.ModTime()}, nil
}

// dropLocked removes an entry's bookkeeping (and nothing else). It
// checks identity, not just key presence: a Get whose file open failed
// races against a same-key Commit that already replaced the entry, and
// dropping the replacement here would corrupt the byte accounting and
// strand its LRU element.
//
//hdvlint:locked mu
func (c *Cache) dropLocked(e *entry) {
	if c.entries[e.id] != e {
		return
	}
	delete(c.entries, e.id)
	c.lru.Remove(e.elem)
	c.bytes -= e.size
}

// evictLocked removes oldest entries until the byte budget holds,
// sparing keep (the entry just admitted).
//
//hdvlint:locked mu
func (c *Cache) evictLocked(keep *entry) {
	if c.budget <= 0 {
		return
	}
	for c.bytes > c.budget {
		oldest := c.lru.Front()
		if oldest == nil {
			return
		}
		e := oldest.Value.(*entry)
		if e == keep {
			return // budget soft by one entry: never evict the newcomer
		}
		c.dropLocked(e)
		os.Remove(c.path(e.id))
		c.evictions.Add(1)
	}
}

// Fill is an in-progress cache population: an io.Writer onto a temp
// file that becomes the entry atomically on Commit. A Fill that is
// never committed must be Aborted; both are idempotent and safe after
// the other (the later call is a no-op).
type Fill struct {
	c    *Cache
	id   string
	f    *os.File
	n    int64
	done bool
}

// NewFill starts populating the entry for key. The caller streams the
// exact container bytes through Write (typically teed off the response)
// and finishes with Commit or Abort.
func (c *Cache) NewFill(key Key) (*Fill, error) {
	f, err := os.CreateTemp(c.dir, "fill-*")
	if err != nil {
		return nil, fmt.Errorf("gopcache: %w", err)
	}
	return &Fill{c: c, id: key.id(), f: f}, nil
}

// Write appends container bytes to the pending entry.
func (f *Fill) Write(p []byte) (int, error) {
	n, err := f.f.Write(p)
	f.n += int64(n)
	return n, err
}

// Commit seals the fill: the GOP index (whose Size must equal the bytes
// written) is appended as the entry's trailer, the temp file moves into
// place atomically, and the entry becomes servable — returned opened,
// without touching the hit/miss counters, so a miss that just filled
// can serve the result directly. Over-budget older entries are evicted.
func (f *Fill) Commit(idx container.GOPIndex) (*Entry, error) {
	if f.done {
		return nil, fmt.Errorf("gopcache: fill already finished")
	}
	if idx.Size != f.n {
		f.Abort()
		return nil, fmt.Errorf("gopcache: index declares %d container bytes, fill wrote %d", idx.Size, f.n)
	}
	if _, err := container.WriteGOPIndex(f.f, idx); err != nil {
		f.Abort()
		return nil, fmt.Errorf("gopcache: writing index trailer: %w", err)
	}
	size := f.n + int64(container.GOPIndexRecordSize(len(idx.Entries)))
	tmp := f.f.Name()
	if err := f.f.Close(); err != nil {
		f.done = true
		os.Remove(tmp)
		return nil, fmt.Errorf("gopcache: %w", err)
	}
	f.done = true
	c := f.c
	if err := os.Rename(tmp, c.path(f.id)); err != nil {
		os.Remove(tmp)
		return nil, fmt.Errorf("gopcache: %w", err)
	}
	e := &entry{id: f.id, size: size, idx: idx}
	c.mu.Lock()
	if old, ok := c.entries[f.id]; ok {
		c.dropLocked(old) // concurrent fill of the same key: last one wins
	}
	e.elem = c.lru.PushBack(e)
	c.entries[f.id] = e
	c.bytes += e.size
	c.evictLocked(e)
	c.mu.Unlock()
	return c.open(e)
}

// Abort discards the fill.
func (f *Fill) Abort() {
	if f.done {
		return
	}
	f.done = true
	f.f.Close()
	os.Remove(f.f.Name())
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	s := Stats{
		Entries: len(c.entries),
		Bytes:   c.bytes,
		Budget:  c.budget,
	}
	c.mu.Unlock()
	s.Hits = c.hits.Load()
	s.Misses = c.misses.Load()
	s.Evictions = c.evictions.Load()
	return s
}
