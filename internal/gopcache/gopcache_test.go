package gopcache

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"hdvideobench/internal/container"
)

func testKey(i int) Key {
	return Key{Codec: "H.264", Seq: "blue_sky", Width: 96, Height: 80,
		Frames: 8 + i, Q: 5, GOP: 4, Slices: 1}
}

// fillEntry commits an entry of n body bytes with a two-GOP index.
func fillEntry(t *testing.T, c *Cache, key Key, n int) []byte {
	t.Helper()
	body := bytes.Repeat([]byte{byte(n)}, n)
	f, err := c.NewFill(key)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(body); err != nil {
		t.Fatal(err)
	}
	ent, err := f.Commit(container.GOPIndex{
		Size:    int64(n),
		Entries: []container.GOPIndexEntry{{Offset: 20, Frame: 0}, {Offset: int64(n / 2), Frame: 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ent.Close()
	return body
}

// TestFillGetRoundTrip: a committed entry serves back the exact body
// bytes and index, and the hit/miss counters track lookups (not the
// fill's own Commit).
func TestFillGetRoundTrip(t *testing.T) {
	c, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(0)
	if _, ok := c.Get(key); ok {
		t.Fatal("empty cache reported a hit")
	}
	body := fillEntry(t, c, key, 300)

	ent, ok := c.Get(key)
	if !ok {
		t.Fatal("committed entry missed")
	}
	defer ent.Close()
	if ent.Size() != int64(len(body)) {
		t.Fatalf("entry size %d, want %d", ent.Size(), len(body))
	}
	got, err := io.ReadAll(ent.Body())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, body) {
		t.Fatal("served body differs from filled bytes")
	}
	if len(ent.Index.Entries) != 2 || ent.Index.Entries[1].Frame != 4 {
		t.Fatalf("index lost in round trip: %+v", ent.Index)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Entries != 1 {
		t.Fatalf("stats %+v, want 1 hit / 1 miss / 1 entry", s)
	}
}

// TestCommitSizeMismatchRejected: a fill whose index disagrees with the
// bytes written must not become a servable entry.
func TestCommitSizeMismatchRejected(t *testing.T) {
	c, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	f, err := c.NewFill(testKey(0))
	if err != nil {
		t.Fatal(err)
	}
	io.WriteString(f, "short")
	if _, err := f.Commit(container.GOPIndex{Size: 999}); err == nil {
		t.Fatal("mismatched Commit succeeded")
	}
	if _, ok := c.Get(testKey(0)); ok {
		t.Fatal("rejected fill became servable")
	}
}

// TestEvictionRespectsBudget: admitting past the byte budget evicts the
// least-recently-used entries, and total bytes settle under the budget.
func TestEvictionRespectsBudget(t *testing.T) {
	const bodyN = 1000
	fileN := int64(bodyN + container.GOPIndexRecordSize(2))
	c, err := Open(t.TempDir(), 2*fileN) // room for two entries
	if err != nil {
		t.Fatal(err)
	}
	fillEntry(t, c, testKey(0), bodyN)
	fillEntry(t, c, testKey(1), bodyN)
	fillEntry(t, c, testKey(2), bodyN)

	if _, ok := c.Get(testKey(0)); ok {
		t.Fatal("oldest entry survived over-budget admission")
	}
	for i := 1; i <= 2; i++ {
		ent, ok := c.Get(testKey(i))
		if !ok {
			t.Fatalf("entry %d evicted though inside budget", i)
		}
		ent.Close()
	}
	s := c.Stats()
	if s.Bytes > s.Budget {
		t.Fatalf("cache holds %d bytes over budget %d", s.Bytes, s.Budget)
	}
	if s.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", s.Evictions)
	}
}

// TestGetBumpsLRU: touching an entry must protect it from the next
// eviction round.
func TestGetBumpsLRU(t *testing.T) {
	const bodyN = 1000
	fileN := int64(bodyN + container.GOPIndexRecordSize(2))
	c, err := Open(t.TempDir(), 2*fileN)
	if err != nil {
		t.Fatal(err)
	}
	fillEntry(t, c, testKey(0), bodyN)
	fillEntry(t, c, testKey(1), bodyN)
	if ent, ok := c.Get(testKey(0)); ok { // 0 is now the most recent
		ent.Close()
	} else {
		t.Fatal("warming Get missed")
	}
	fillEntry(t, c, testKey(2), bodyN) // must push out 1, not 0

	if _, ok := c.Get(testKey(1)); ok {
		t.Fatal("LRU victim survived")
	}
	ent, ok := c.Get(testKey(0))
	if !ok {
		t.Fatal("recently used entry was evicted")
	}
	ent.Close()
}

// TestOversizedEntryStillCaches: one entry larger than the whole budget
// is admitted (budget soft by one) rather than thrashing.
func TestOversizedEntryStillCaches(t *testing.T) {
	c, err := Open(t.TempDir(), 100)
	if err != nil {
		t.Fatal(err)
	}
	fillEntry(t, c, testKey(0), 5000)
	ent, ok := c.Get(testKey(0))
	if !ok {
		t.Fatal("oversized entry not admitted")
	}
	ent.Close()
}

// TestReopenRecoversEntries: a fresh Open over an existing directory
// re-adopts committed entries (restart durability) and sweeps temp
// files from interrupted fills.
func TestReopenRecoversEntries(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	body := fillEntry(t, c, testKey(0), 400)
	// An interrupted fill leaves a temp file behind.
	if _, err := c.NewFill(testKey(1)); err != nil {
		t.Fatal(err)
	}

	c2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	ent, ok := c2.Get(testKey(0))
	if !ok {
		t.Fatal("entry lost across reopen")
	}
	defer ent.Close()
	got, err := io.ReadAll(ent.Body())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, body) {
		t.Fatal("reopened entry serves different bytes")
	}
	if s := c2.Stats(); s.Entries != 1 {
		t.Fatalf("reopened cache has %d entries, want 1 (temp files must not be adopted)", s.Entries)
	}
}

// TestKeyIdentity: ids are stable for equal keys and distinct across
// every field that shapes the bitstream.
func TestKeyIdentity(t *testing.T) {
	base := testKey(0)
	if base.id() != testKey(0).id() {
		t.Fatal("equal keys hash differently")
	}
	variants := []Key{}
	for i, mutate := range []func(*Key){
		func(k *Key) { k.Codec = "MPEG-2" },
		func(k *Key) { k.Seq = "riverbed" },
		func(k *Key) { k.Width = 112 },
		func(k *Key) { k.Height = 96 },
		func(k *Key) { k.Frames++ },
		func(k *Key) { k.Q++ },
		func(k *Key) { k.GOP++ },
		func(k *Key) { k.Slices++ },
		func(k *Key) { k.Entropy = "vlc" },
		func(k *Key) { k.SIMD = true },
	} {
		k := base
		mutate(&k)
		variants = append(variants, k)
		if k.id() == base.id() {
			t.Fatalf("mutation %d did not change the id", i)
		}
	}
	seen := map[string]int{base.id(): -1}
	for i, k := range variants {
		if j, dup := seen[k.id()]; dup {
			t.Fatalf("variants %d and %d collide", i, j)
		}
		seen[k.id()] = i
	}
}

// TestEvictionDuringServe: an entry opened by Get keeps serving after
// being evicted — the unlink drops the name, not the open bytes.
func TestEvictionDuringServe(t *testing.T) {
	const bodyN = 1000
	fileN := int64(bodyN + container.GOPIndexRecordSize(2))
	c, err := Open(t.TempDir(), fileN) // room for exactly one entry
	if err != nil {
		t.Fatal(err)
	}
	body := fillEntry(t, c, testKey(0), bodyN)
	ent, ok := c.Get(testKey(0))
	if !ok {
		t.Fatal("miss")
	}
	defer ent.Close()
	fillEntry(t, c, testKey(1), bodyN) // evicts 0 while it is open

	got, err := io.ReadAll(ent.Body())
	if err != nil {
		t.Fatalf("reading evicted-but-open entry: %v", err)
	}
	if !bytes.Equal(got, body) {
		t.Fatal("evicted-but-open entry served wrong bytes")
	}
}

// TestStaleDropKeepsReplacement: dropping a superseded entry (the Get
// open-failure path racing a same-key Commit) must not touch the
// replacement's bookkeeping — identity, not key presence, decides.
func TestStaleDropKeepsReplacement(t *testing.T) {
	c, err := Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(0)
	fillEntry(t, c, key, 300)
	c.mu.Lock()
	stale := c.entries[key.id()]
	c.mu.Unlock()
	body := fillEntry(t, c, key, 500) // same key: replaces the entry

	c.mu.Lock()
	c.dropLocked(stale) // the race's losing drop
	bytes_ := c.bytes
	n := len(c.entries)
	c.mu.Unlock()
	if n != 1 {
		t.Fatalf("stale drop removed the replacement (entries=%d)", n)
	}
	if want := int64(500 + container.GOPIndexRecordSize(2)); bytes_ != want {
		t.Fatalf("byte accounting %d after stale drop, want %d", bytes_, want)
	}
	ent, ok := c.Get(key)
	if !ok {
		t.Fatal("replacement entry lost")
	}
	defer ent.Close()
	got, err := io.ReadAll(ent.Body())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, body) {
		t.Fatal("replacement serves wrong bytes after stale drop")
	}
}

func ExampleKey() {
	k := Key{Codec: "H.264", Seq: "blue_sky", Width: 1280, Height: 720,
		Frames: 250, Q: 5, GOP: 8, Slices: 1, Entropy: "cabac"}
	fmt.Println(len(k.id()))
	// Output: 32
}
