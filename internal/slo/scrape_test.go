package slo

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
)

const cannedMetrics = `# HELP hdvserve_encodes_total Encoder pipeline runs (cache hits never add here).
# TYPE hdvserve_encodes_total counter
hdvserve_encodes_total 7
# HELP hdvserve_bytes_served_total Response bytes written on /transcode.
# TYPE hdvserve_bytes_served_total counter
hdvserve_bytes_served_total 123456
# HELP hdvserve_cache_hits_total GOP cache hits.
# TYPE hdvserve_cache_hits_total counter
hdvserve_cache_hits_total 3
# HELP hdvserve_cache_misses_total GOP cache misses.
# TYPE hdvserve_cache_misses_total counter
hdvserve_cache_misses_total 4
`

func TestScrapeServer(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" {
			http.NotFound(w, r)
			return
		}
		w.Write([]byte(cannedMetrics))
	}))
	defer ts.Close()

	got, err := ScrapeServer(context.Background(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	want := ServerStats{Encodes: 7, CacheHits: 3, CacheMisses: 4, BytesServed: 123456}
	if got != want {
		t.Errorf("ScrapeServer = %+v, want %+v", got, want)
	}

	d := ServerStats{Encodes: 9, CacheHits: 15, CacheMisses: 4, BytesServed: 200000}.Delta(got)
	if d.Encodes != 2 || d.CacheHits != 12 || d.CacheMisses != 0 || d.BytesServed != 76544 {
		t.Errorf("Delta = %+v", d)
	}
}

// TestScrapeServerUncached: a server without a cache exposes no cache
// series; they must read zero, not error.
func TestScrapeServerUncached(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("# HELP hdvserve_encodes_total x.\n# TYPE hdvserve_encodes_total counter\nhdvserve_encodes_total 2\n"))
	}))
	defer ts.Close()
	got, err := ScrapeServer(context.Background(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if got.Encodes != 2 || got.CacheHits != 0 || got.CacheMisses != 0 {
		t.Errorf("ScrapeServer = %+v", got)
	}
}

func TestScrapeServerErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusInternalServerError)
	}))
	defer ts.Close()
	if _, err := ScrapeServer(context.Background(), ts.URL); err == nil {
		t.Error("expected error on 500")
	}
	if _, err := ScrapeServer(context.Background(), "http://127.0.0.1:0"); err == nil {
		t.Error("expected error on unreachable server")
	}
}
