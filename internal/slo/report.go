package slo

import (
	"encoding/json"
	"fmt"
)

// Report is the BENCH_SLO.json document: one harness invocation's
// configuration and results, in the machine-readable trajectory style
// of the BENCH_PR*.json files.
type Report struct {
	Benchmark   string `json:"benchmark"` // always "hdvslo"
	Description string `json:"description,omitempty"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	NumCPU      int    `json:"num_cpu"`

	Config ReportConfig `json:"config"`

	// Runs are the fixed-client-count load points, one per
	// {path} × {fps} combination.
	Runs []ReportRun `json:"runs"`
	// Searches are the max-sustainable-streams results, present when
	// the harness ran in -search mode.
	Searches []ReportSearch `json:"searches,omitempty"`
}

// ReportConfig echoes the stream and pacing parameters of the run.
type ReportConfig struct {
	Codec           string  `json:"codec"`
	Seq             string  `json:"seq"`
	Width           int     `json:"width"`
	Height          int     `json:"height"`
	Frames          int     `json:"frames"`
	Q               int     `json:"q"`
	GOP             int     `json:"gop"`
	Clients         int     `json:"clients"`
	ReadAheadFrames int     `json:"readahead_frames"`
	DropAfterMS     float64 `json:"drop_after_ms"` // 0 = one display period
	MissBudget      float64 `json:"miss_budget,omitempty"`
}

// ReportRun is one load point: Path says which serving path it
// exercised — "cold" (every stream encoded) or "warm" (GOP cache
// primed before measuring).
type ReportRun struct {
	Path string `json:"path"`
	RunResult
	// Server is the server-side counter movement over the run (scraped
	// from /metrics before and after); nil when the scrape failed or the
	// server predates the registry.
	Server *ServerDelta `json:"server,omitempty"`
}

// ReportSearch is one search-mode result for a path × fps point.
type ReportSearch struct {
	Path string `json:"path"`
	FPS  int    `json:"fps"`
	SearchResult
}

// Marshal renders the report as indented JSON with a trailing newline,
// the on-disk BENCH_SLO.json encoding.
func (r Report) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// ParseReport decodes and sanity-checks a Marshal-encoded report.
func ParseReport(b []byte) (Report, error) {
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return Report{}, fmt.Errorf("slo report: %w", err)
	}
	if r.Benchmark != "hdvslo" {
		return Report{}, fmt.Errorf("slo report: benchmark %q, want %q", r.Benchmark, "hdvslo")
	}
	if len(r.Runs) == 0 && len(r.Searches) == 0 {
		return Report{}, fmt.Errorf("slo report: no runs or searches")
	}
	return r, nil
}
