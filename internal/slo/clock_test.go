package slo

import (
	"bytes"
	"context"
	"io"
	"sync"
	"testing"
	"time"

	"hdvideobench/internal/container"
)

// fakeClock is a deterministic Clock: time only moves when Sleep is
// called (which completes instantly) or a test reader advances it.
type fakeClock struct {
	mu    sync.Mutex
	now   time.Time
	slept []time.Duration
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_000_000, 0)}
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) Sleep(ctx context.Context, d time.Duration) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = f.now.Add(d)
	f.slept = append(f.slept, d)
	return ctx.Err()
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = f.now.Add(d)
}

// synthStream builds an HDVB container stream of n tiny fake packets
// and returns the raw bytes plus the cumulative byte offset at which
// each packet ends (the moment consume observes its arrival).
func synthStream(t *testing.T, n int) (raw []byte, ends []int) {
	t.Helper()
	var buf bytes.Buffer
	w, err := container.NewStreamWriter(&buf, container.Header{
		Codec: container.CodecMPEG2, Width: 96, Height: 80,
		FPSNum: 25, FPSDen: 1, Frames: n,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := w.WritePacket(container.Packet{
			Type: container.FrameI, DisplayIndex: i,
			Payload: bytes.Repeat([]byte{byte(i)}, 50+i),
		}); err != nil {
			t.Fatal(err)
		}
		ends = append(ends, int(w.BytesWritten()))
	}
	return buf.Bytes(), ends
}

// timedReader serves raw stream bytes but never across a packet
// boundary, advancing the fake clock by step each time a packet
// completes — a deterministic model of a server delivering one frame
// every step.
type timedReader struct {
	data []byte
	pos  int
	ends []int
	next int // index of the next boundary to cross
	clk  *fakeClock
	step time.Duration
}

func newTimedReader(data []byte, ends []int, clk *fakeClock, step time.Duration) *timedReader {
	return &timedReader{data: data, ends: ends, clk: clk, step: step}
}

func (r *timedReader) Read(p []byte) (int, error) {
	if r.pos >= len(r.data) {
		return 0, io.EOF
	}
	limit := len(r.data)
	if r.next < len(r.ends) {
		limit = r.ends[r.next]
	}
	n := len(p)
	if max := limit - r.pos; n > max {
		n = max
	}
	copy(p, r.data[r.pos:r.pos+n])
	r.pos += n
	if r.next < len(r.ends) && r.pos == r.ends[r.next] {
		r.clk.advance(r.step)
		r.next++
	}
	return n, nil
}

func TestConsumeDelayedDelivery(t *testing.T) {
	// 6 frames delivered one every 15ms against a 10ms period: frame i
	// arrives 5i ms late. Greedy reader (no pacing), so delivery time is
	// the only variable — lateness is exact.
	raw, ends := synthStream(t, 6)
	clk := newFakeClock()
	cons := consumer{clk: clk, period: 10 * msec, readAhead: -1}
	arrivals, expected, err := cons.consume(context.Background(), newTimedReader(raw, ends, clk, 15*msec))
	if err != nil {
		t.Fatal(err)
	}
	if expected != 6 {
		t.Fatalf("expected = %d, want 6", expected)
	}
	if !reflect6(arrivals, d(0, 15, 30, 45, 60, 75)) {
		t.Fatalf("arrivals = %v, want 15ms steps", arrivals)
	}
	stats, _ := Tally(arrivals, expected, Schedule{Period: 10 * msec})
	if stats.Late != 1 || stats.Dropped != 4 {
		t.Fatalf("late/dropped = %d/%d, want 1/4", stats.Late, stats.Dropped)
	}
	if len(clk.slept) != 0 {
		t.Fatalf("greedy consumer slept %v, want no sleeps", clk.slept)
	}
}

func reflect6(got, want []time.Duration) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] != want[i] {
			return false
		}
	}
	return true
}

func TestConsumePacingSleepTargets(t *testing.T) {
	// Instant delivery, readAhead 2, period 10ms: frames 0..2 are read
	// immediately; before frame i >= 3 (and the EOF probe at i == 6) the
	// pacer sleeps until the playhead reaches i-2 — four exact 10ms
	// sleeps, and every frame lands well ahead of its deadline.
	raw, ends := synthStream(t, 6)
	clk := newFakeClock()
	cons := consumer{clk: clk, period: 10 * msec, readAhead: 2}
	arrivals, expected, err := cons.consume(context.Background(), newTimedReader(raw, ends, clk, 0))
	if err != nil {
		t.Fatal(err)
	}
	if expected != 6 {
		t.Fatalf("expected = %d, want 6", expected)
	}
	if !reflect6(clk.slept, d(10, 10, 10, 10)) {
		t.Fatalf("sleeps = %v, want four 10ms sleeps", clk.slept)
	}
	if !reflect6(arrivals, d(0, 0, 0, 10, 20, 30)) {
		t.Fatalf("arrivals = %v", arrivals)
	}
	stats, _ := Tally(arrivals, expected, Schedule{Period: 10 * msec})
	if stats.Misses() != 0 {
		t.Fatalf("paced on-time stream tallied %d misses: %+v", stats.Misses(), stats)
	}
}

func TestConsumeCancellation(t *testing.T) {
	// A cancelled context surfaces from the pacer's sleep; frames read
	// so far are retained for partial accounting.
	raw, ends := synthStream(t, 6)
	clk := newFakeClock()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cons := consumer{clk: clk, period: 10 * msec, readAhead: 1}
	arrivals, expected, err := cons.consume(ctx, newTimedReader(raw, ends, clk, 0))
	if err == nil {
		t.Fatal("cancelled consume returned nil error")
	}
	if expected != 6 {
		t.Fatalf("expected = %d, want 6", expected)
	}
	if len(arrivals) == 0 || len(arrivals) >= 6 {
		t.Fatalf("arrivals = %v, want a strict prefix", arrivals)
	}
}

func TestConsumeTruncatedStream(t *testing.T) {
	// A stream cut mid-flight errors (ErrUnexpectedEOF inside) and keeps
	// the delivered prefix, so the tally can drop the rest.
	raw, ends := synthStream(t, 6)
	cut := raw[:ends[2]]
	clk := newFakeClock()
	cons := consumer{clk: clk, period: 10 * msec, readAhead: -1}
	arrivals, expected, err := cons.consume(context.Background(), newTimedReader(cut, ends[:2], clk, 0))
	if err == nil {
		t.Fatal("truncated stream returned nil error")
	}
	if expected != 6 || len(arrivals) != 3 {
		t.Fatalf("expected/arrivals = %d/%d, want 6/3", expected, len(arrivals))
	}
	stats, _ := Tally(arrivals, expected, Schedule{Period: 10 * msec})
	if stats.Dropped != 3 {
		t.Fatalf("dropped = %d, want the 3 undelivered frames", stats.Dropped)
	}
}
