package slo

import (
	"reflect"
	"testing"
	"time"
)

const msec = time.Millisecond

func d(vals ...int) []time.Duration {
	out := make([]time.Duration, len(vals))
	for i, v := range vals {
		out[i] = time.Duration(v) * msec
	}
	return out
}

func TestTallyAllOnTime(t *testing.T) {
	// Frames arriving exactly at (or ahead of) their deadlines: clean.
	arr := d(0, 5, 20, 28, 40)
	stats, lat := Tally(arr, 5, Schedule{Period: 10 * msec})
	// Frame 0 anchors playback, so its lateness is zero by construction
	// and MaxLateness of a fully on-time stream is exactly zero.
	want := FrameStats{Frames: 5, Expected: 5, MaxLateness: 0}
	if stats != want {
		t.Fatalf("stats = %+v, want %+v", stats, want)
	}
	if !reflect.DeepEqual(lat, d(0, 0, 0, 0, 0)) {
		t.Fatalf("latency population = %v, want zeros", lat)
	}
}

func TestTallyLateAndDropped(t *testing.T) {
	// Deliveries at 15ms/frame against a 10ms period: lateness 5i ms.
	// With DropAfter = one period (10ms): frame 1 is late (5ms), frames
	// 2..5 are dropped (10, 15, 20, 25ms).
	arr := d(0, 15, 30, 45, 60, 75)
	stats, lat := Tally(arr, 6, Schedule{Period: 10 * msec})
	want := FrameStats{
		Frames: 6, Expected: 6, Late: 1, Dropped: 4,
		// Sorted population [0 5 10 15 20 25]: nearest-rank p50 = 3rd
		// value, p95 and p99 = 6th.
		Latency:     Quantiles{P50: 10 * msec, P95: 25 * msec, P99: 25 * msec},
		MaxLateness: 25 * msec,
	}
	if stats != want {
		t.Fatalf("stats = %+v, want %+v", stats, want)
	}
	if !reflect.DeepEqual(lat, d(0, 5, 10, 15, 20, 25)) {
		t.Fatalf("latency population = %v, want 5ms steps", lat)
	}
	if got := stats.Misses(); got != 5 {
		t.Fatalf("Misses() = %d, want 5", got)
	}
}

func TestTallyDropAfterWidensLateWindow(t *testing.T) {
	// Same schedule, DropAfter = 25ms: only frame 5 (25ms late) reaches
	// the drop threshold; frames 1..4 are merely late.
	arr := d(0, 15, 30, 45, 60, 75)
	stats, _ := Tally(arr, 6, Schedule{Period: 10 * msec, DropAfter: 25 * msec})
	if stats.Late != 4 || stats.Dropped != 1 {
		t.Fatalf("late/dropped = %d/%d, want 4/1", stats.Late, stats.Dropped)
	}
}

func TestTallyTruncatedStreamDropsUndelivered(t *testing.T) {
	// 3 of 10 declared frames delivered, all on time: the missing 7
	// count dropped.
	stats, _ := Tally(d(0, 10, 20), 10, Schedule{Period: 10 * msec})
	if stats.Frames != 3 || stats.Expected != 10 || stats.Late != 0 || stats.Dropped != 7 {
		t.Fatalf("stats = %+v, want 3/10 frames, 0 late, 7 dropped", stats)
	}
}

func TestTallyEmpty(t *testing.T) {
	stats, lat := Tally(nil, 0, Schedule{Period: 10 * msec})
	if stats != (FrameStats{}) || len(lat) != 0 {
		t.Fatalf("empty tally = %+v, %v", stats, lat)
	}
}

func TestQuantilesNearestRank(t *testing.T) {
	cases := []struct {
		pop  []time.Duration
		want Quantiles
	}{
		// Single value: every percentile is it.
		{d(7), Quantiles{7 * msec, 7 * msec, 7 * msec}},
		// 1..100: textbook nearest rank — p50=50th, p95=95th, p99=99th.
		{func() []time.Duration {
			v := make([]time.Duration, 100)
			for i := range v {
				v[i] = time.Duration(i+1) * msec
			}
			return v
		}(), Quantiles{50 * msec, 95 * msec, 99 * msec}},
		// Unsorted input, n=4: p50 = ceil(2)=2nd, p95/p99 = 4th.
		{d(40, 10, 30, 20), Quantiles{20 * msec, 40 * msec, 40 * msec}},
		// Empty population.
		{nil, Quantiles{}},
	}
	for i, c := range cases {
		if got := quantiles(c.pop); got != c.want {
			t.Errorf("case %d: quantiles = %+v, want %+v", i, got, c.want)
		}
	}
	// quantiles must not mutate its input.
	pop := d(30, 10, 20)
	quantiles(pop)
	if !reflect.DeepEqual(pop, d(30, 10, 20)) {
		t.Fatalf("quantiles mutated its input: %v", pop)
	}
}

func TestSearchMax(t *testing.T) {
	cases := []struct {
		threshold int // ok(n) means n <= threshold
		limit     int
		want      int
	}{
		{0, 32, 0},   // even 1 client fails
		{1, 32, 1},   // only 1 sustains
		{5, 32, 5},   // interior value, not a power of two
		{8, 32, 8},   // power of two
		{32, 32, 32}, // everything sustains: answer is the cap
		{100, 32, 32},
		{3, 3, 3},
		{7, 4, 4},
	}
	for _, c := range cases {
		probes := 0
		got := searchMax(func(n int) bool { probes++; return n <= c.threshold }, c.limit)
		if got != c.want {
			t.Errorf("searchMax(threshold=%d, limit=%d) = %d, want %d", c.threshold, c.limit, got, c.want)
		}
		if probes > 12 {
			t.Errorf("searchMax(threshold=%d, limit=%d) used %d probes, want O(log n)", c.threshold, c.limit, probes)
		}
	}
}

func TestSearchRecordsProbes(t *testing.T) {
	// Miss rate grows with load: 0.005·n against a 0.01 budget → max 2.
	res := Search(func(n int) RunResult {
		return RunResult{Clients: n, MissRate: 0.005 * float64(n)}
	}, 0.01, 16)
	if res.MaxStreams != 2 {
		t.Fatalf("MaxStreams = %d, want 2", res.MaxStreams)
	}
	if len(res.Probes) == 0 || res.Probes[0].Clients != 1 {
		t.Fatalf("probes = %+v, want first probe at 1 client", res.Probes)
	}
	for _, p := range res.Probes {
		if p.MissRate != 0.005*float64(p.Clients) {
			t.Fatalf("probe %+v lost its miss rate", p)
		}
	}
	// Errors disqualify regardless of miss rate.
	res = Search(func(n int) RunResult {
		return RunResult{Clients: n, Errors: 1}
	}, 0.01, 16)
	if res.MaxStreams != 0 {
		t.Fatalf("MaxStreams with errors = %d, want 0", res.MaxStreams)
	}
}

func TestRunResultSustained(t *testing.T) {
	r := RunResult{Expected: 100, MissRate: 0.01}
	if !r.Sustained(0.01) {
		t.Fatal("miss rate exactly at budget should sustain")
	}
	if r.Sustained(0.009) {
		t.Fatal("miss rate above budget should not sustain")
	}
	r.Errors = 1
	if r.Sustained(0.5) {
		t.Fatal("errors should disqualify even under a loose budget")
	}
}
