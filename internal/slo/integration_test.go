package slo_test

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"runtime"
	"testing"

	"hdvideobench/internal/serve"
	"hdvideobench/internal/slo"
)

// TestWarmPathMeetsDeadlines runs four paced viewers against the
// production handler in-process, on the warm gopcache path at a
// deliberately sustainable deadline: serving cached bytes at 20fps for
// a 96x80 stream must not drop a single frame, even on a loaded 1-core
// CI box. The pacer's sleeps dominate the wall clock (~300ms), so a
// drop here means the harness or the serving path is broken, not that
// the machine was busy — a frame only drops after a >200ms stall.
func TestWarmPathMeetsDeadlines(t *testing.T) {
	dir := t.TempDir()
	srv, err := serve.New(serve.Config{Workers: 1, MaxConcurrent: 8, CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Routes())
	defer ts.Close()

	q := url.Values{
		"codec": {"mpeg2"}, "seq": {"blue_sky"},
		"width": {"96"}, "height": {"80"},
		"frames": {"10"}, "gop": {"5"},
	}
	streamURL := ts.URL + "/transcode?" + q.Encode()

	// Prime the cache: the measured viewers must all hit it.
	resp, err := http.Get(streamURL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prime: %s", resp.Status)
	}

	res := slo.Run(context.Background(), slo.RunConfig{
		URL:       streamURL,
		Clients:   4,
		FPS:       20,
		ReadAhead: 4,
	})
	if res.Errors != 0 {
		t.Fatalf("errors = %d, want 0 (result %+v)", res.Errors, res)
	}
	if res.Frames != 40 || res.Expected != 40 {
		t.Fatalf("frames = %d/%d, want 40/40", res.Frames, res.Expected)
	}
	if res.Dropped != 0 {
		t.Fatalf("dropped = %d on the warm path at a sustainable deadline, want 0 (%+v)", res.Dropped, res)
	}
	if res.CacheHits != 4 {
		t.Fatalf("cache hits = %d, want all 4 viewers served warm", res.CacheHits)
	}
	if res.MissRate != float64(res.Late+res.Dropped)/40 {
		t.Fatalf("miss rate %v inconsistent with late=%d dropped=%d", res.MissRate, res.Late, res.Dropped)
	}
	if res.Bytes == 0 || res.TTFB.P95 <= 0 {
		t.Fatalf("bytes=%d ttfb=%+v, want nonzero transfer metrics", res.Bytes, res.TTFB)
	}
	// The pacer must actually have paced: 10 frames minus 4 read-ahead
	// at 50ms is 300ms of mandatory playhead waiting.
	if res.WallSeconds < 0.25 {
		t.Fatalf("wall = %.3fs, want >= 0.25s of paced playback", res.WallSeconds)
	}

	// The result embeds into a report that survives the JSON round trip.
	rep := slo.Report{
		Benchmark: "hdvslo",
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Config: slo.ReportConfig{
			Codec: "MPEG-2", Seq: "blue_sky", Width: 96, Height: 80,
			Frames: 10, Q: 5, GOP: 5, Clients: 4,
		},
		Runs: []slo.ReportRun{{Path: "warm", RunResult: res}},
	}
	b, err := rep.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := slo.ParseReport(b)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, back) {
		t.Fatalf("report round trip diverged:\n got %+v\nwant %+v", back, rep)
	}
}

// TestColdPathStreams checks the cold (encoding) path end to end with a
// single viewer at a loose deadline: the stream must complete with
// every frame delivered and classified, whatever the lateness.
func TestColdPathStreams(t *testing.T) {
	srv, err := serve.New(serve.Config{Workers: 1, MaxConcurrent: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Routes())
	defer ts.Close()

	q := url.Values{
		"codec": {"mpeg2"}, "seq": {"rush_hour"},
		"width": {"96"}, "height": {"80"}, "frames": {"6"}, "gop": {"3"},
	}
	res, err := slo.ConsumeStream(context.Background(), slo.Real, ts.Client(), slo.StreamConfig{
		URL: ts.URL + "/transcode?" + q.Encode(),
		FPS: 5, // 200ms periods: roomy even for a cold encode of 96x80
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames != 6 || res.Expected != 6 {
		t.Fatalf("frames = %d/%d, want 6/6", res.Frames, res.Expected)
	}
	if res.Cache == "hit" {
		t.Fatal("cold request reported a cache hit")
	}
	if res.Frames != res.Late+res.Dropped+(res.Frames-res.Misses()) {
		t.Fatalf("classification doesn't partition: %+v", res.FrameStats)
	}
	if res.TTFB <= 0 || res.Bytes == 0 {
		t.Fatalf("ttfb=%v bytes=%d, want nonzero", res.TTFB, res.Bytes)
	}
}

// TestParseReportRejectsGarbage pins the report validator.
func TestParseReportRejectsGarbage(t *testing.T) {
	if _, err := slo.ParseReport([]byte(`{"benchmark":"other","runs":[{}]}`)); err == nil {
		t.Fatal("wrong benchmark name accepted")
	}
	if _, err := slo.ParseReport([]byte(`{"benchmark":"hdvslo"}`)); err == nil {
		t.Fatal("empty report accepted")
	}
	if _, err := slo.ParseReport([]byte(`not json`)); err == nil {
		t.Fatal("non-JSON accepted")
	}
}

// TestRunAggregatesErrors points viewers at a refusing server: every
// viewer errors, nothing sustains.
func TestRunAggregatesErrors(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "no", http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	res := slo.Run(context.Background(), slo.RunConfig{
		URL: ts.URL + "/transcode", Clients: 3, FPS: 30,
	})
	if res.Errors != 3 || res.Frames != 0 {
		t.Fatalf("errors/frames = %d/%d, want 3/0", res.Errors, res.Frames)
	}
	if res.Sustained(1.0) {
		t.Fatal("all-error run must not sustain any budget")
	}
}
