package slo

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"hdvideobench/internal/container"
)

// StreamConfig configures one synthetic viewer.
type StreamConfig struct {
	// URL is the full /transcode URL to stream.
	URL string
	// FPS is the display rate the viewer plays at.
	FPS int
	// DropAfter is the Schedule drop threshold; zero means one period.
	DropAfter time.Duration
	// ReadAhead caps how many frames the viewer buffers past the
	// playhead. 0 means one second's worth (FPS frames); negative
	// disables pacing (a greedy reader, no backpressure).
	ReadAhead int
}

// StreamResult is one viewer's outcome.
type StreamResult struct {
	FrameStats
	// TTFB is request start to first response body byte.
	TTFB time.Duration
	// Bytes is the stream payload size read.
	Bytes int64
	// Cache is the server's X-HDVB-Cache verdict ("hit", "miss", or ""
	// for servers without the header).
	Cache string
	// Lateness is the per-frame max(0, lateness) population, kept for
	// merging across viewers.
	Lateness []time.Duration `json:"-"`
}

// ConsumeStream plays cfg.URL as a paced viewer on clk and tallies the
// result. A partial result accompanies any error: frames delivered
// before the failure stay classified, and undelivered frames count
// dropped via the header's expected count.
func ConsumeStream(ctx context.Context, clk Clock, hc *http.Client, cfg StreamConfig) (StreamResult, error) {
	if hc == nil {
		hc = http.DefaultClient
	}
	period := time.Second / time.Duration(cfg.FPS)
	cons := consumer{
		clk:       clk,
		period:    period,
		readAhead: cfg.ReadAhead,
	}
	if cons.readAhead == 0 {
		cons.readAhead = cfg.FPS
	}

	var res StreamResult
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, cfg.URL, nil)
	if err != nil {
		return res, err
	}
	start := clk.Now()
	resp, err := hc.Do(req)
	if err != nil {
		return res, err
	}
	defer resp.Body.Close()
	res.Cache = resp.Header.Get("X-HDVB-Cache")
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return res, fmt.Errorf("GET %s: %s: %s", cfg.URL, resp.Status, strings.TrimSpace(string(msg)))
	}

	fb := &firstByteReader{r: resp.Body, clk: clk}
	arrivals, expected, err := cons.consume(ctx, fb)
	if fb.seen {
		res.TTFB = fb.first.Sub(start)
	} else {
		res.TTFB = clk.Now().Sub(start)
	}
	res.Bytes = fb.n
	res.FrameStats, res.Lateness = Tally(arrivals, expected, Schedule{Period: period, DropAfter: cfg.DropAfter})
	return res, err
}

// consumer is the pacing core, separated from HTTP so tests can feed it
// synthetic streams on a fake clock.
type consumer struct {
	clk       Clock
	period    time.Duration
	readAhead int // <0 = greedy
}

// consume reads every container packet on r, pacing so the viewer never
// holds more than readAhead frames past the playhead, and returns each
// frame's arrival time relative to frame 0's. Container packets arrive
// in coding order, so packet i stands in for display slot i — exact for
// MPEG-2/MPEG-4 here and a one-GOP-bounded reorder approximation for
// H.264 B-frames.
func (c consumer) consume(ctx context.Context, r io.Reader) (arrivals []time.Duration, expected int, err error) {
	sr, err := container.NewStreamReader(r)
	if err != nil {
		return nil, 0, fmt.Errorf("stream header: %w", err)
	}
	expected = sr.Header().Frames
	var anchor time.Time
	for i := 0; ; i++ {
		if i > c.readAhead && c.readAhead >= 0 {
			// The playhead shows frame (now-anchor)/period; frame i may
			// only be buffered once the playhead reaches i - readAhead.
			target := anchor.Add(time.Duration(i-c.readAhead) * c.period)
			if d := target.Sub(c.clk.Now()); d > 0 {
				if err := c.clk.Sleep(ctx, d); err != nil {
					return arrivals, expected, err
				}
			}
		}
		if _, err := sr.Next(); err != nil {
			if err == io.EOF {
				return arrivals, expected, nil
			}
			return arrivals, expected, fmt.Errorf("frame %d: %w", i, err)
		}
		now := c.clk.Now()
		if i == 0 {
			anchor = now
		}
		arrivals = append(arrivals, now.Sub(anchor))
	}
}

// firstByteReader records when the first body byte lands and counts the
// total read, using the injected clock so TTFB stays testable.
type firstByteReader struct {
	r     io.Reader
	clk   Clock
	seen  bool
	first time.Time
	n     int64
}

func (f *firstByteReader) Read(p []byte) (int, error) {
	n, err := f.r.Read(p)
	if n > 0 && !f.seen {
		f.seen = true
		f.first = f.clk.Now()
	}
	f.n += int64(n)
	return n, err
}
