package slo

import (
	"context"
	"net/http"
	"sync"
	"time"
)

// RunConfig configures one load point: Clients concurrent viewers all
// streaming URL at FPS.
type RunConfig struct {
	URL       string
	Clients   int
	FPS       int
	DropAfter time.Duration
	ReadAhead int
	// Client is the HTTP client to stream with; nil means a dedicated
	// client with enough idle connections for the viewer count.
	Client *http.Client
	// Clock is the pacing clock; nil means Real.
	Clock Clock
}

// RunResult aggregates one load point across its viewers. Latency
// fields are merged populations, not averages of per-viewer quantiles.
type RunResult struct {
	Clients int `json:"clients"`
	FPS     int `json:"fps"`
	// Frames delivered / expected, summed over viewers.
	Frames   int `json:"frames"`
	Expected int `json:"expected_frames"`
	Late     int `json:"late"`
	Dropped  int `json:"dropped"`
	// Errors counts viewers whose stream failed (refused, truncated,
	// non-200); their delivered frames still tally above.
	Errors int `json:"errors"`
	// CacheHits counts viewers served from the GOP cache.
	CacheHits int `json:"cache_hits"`
	// MissRate is (late+dropped)/expected over all viewers.
	MissRate float64 `json:"miss_rate"`
	// TTFB quantiles are over the per-viewer TTFB population.
	TTFB LatencyMS `json:"ttfb"`
	// FrameLatency quantiles are over every delivered frame of every
	// viewer (max(0, lateness) per frame).
	FrameLatency  LatencyMS `json:"frame_latency"`
	MaxLatenessMS float64   `json:"max_lateness_ms"`
	Bytes         int64     `json:"bytes"`
	WallSeconds   float64   `json:"wall_seconds"`
}

// Sustained reports whether the run stayed within a deadline-miss
// budget (misses as a fraction of expected frames). Any viewer error
// disqualifies the run outright.
func (r RunResult) Sustained(budget float64) bool {
	return r.Errors == 0 && r.MissRate <= budget
}

// LatencyMS is a Quantiles rendered as milliseconds for JSON reports.
type LatencyMS struct {
	P50 float64 `json:"p50_ms"`
	P95 float64 `json:"p95_ms"`
	P99 float64 `json:"p99_ms"`
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// MS converts q to milliseconds.
func (q Quantiles) MS() LatencyMS {
	return LatencyMS{P50: ms(q.P50), P95: ms(q.P95), P99: ms(q.P99)}
}

// Run drives cfg.Clients concurrent paced viewers against cfg.URL and
// merges their results.
func Run(ctx context.Context, cfg RunConfig) RunResult {
	clk := cfg.Clock
	if clk == nil {
		clk = Real
	}
	hc := cfg.Client
	if hc == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConnsPerHost = cfg.Clients
		hc = &http.Client{Transport: tr}
		defer tr.CloseIdleConnections()
	}

	results := make([]StreamResult, cfg.Clients)
	errs := make([]error, cfg.Clients)
	start := clk.Now()
	var wg sync.WaitGroup
	for i := 0; i < cfg.Clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = ConsumeStream(ctx, clk, hc, StreamConfig{
				URL:       cfg.URL,
				FPS:       cfg.FPS,
				DropAfter: cfg.DropAfter,
				ReadAhead: cfg.ReadAhead,
			})
		}(i)
	}
	wg.Wait()

	out := RunResult{
		Clients:     cfg.Clients,
		FPS:         cfg.FPS,
		WallSeconds: clk.Now().Sub(start).Seconds(),
	}
	var ttfbs, lat []time.Duration
	var maxLate time.Duration
	for i, r := range results {
		out.Frames += r.Frames
		out.Expected += r.Expected
		out.Late += r.Late
		out.Dropped += r.Dropped
		out.Bytes += r.Bytes
		if errs[i] != nil {
			out.Errors++
		}
		if r.Cache == "hit" {
			out.CacheHits++
		}
		if r.Frames > 0 {
			ttfbs = append(ttfbs, r.TTFB)
			lat = append(lat, r.Lateness...)
			if r.MaxLateness > maxLate {
				maxLate = r.MaxLateness
			}
		}
	}
	if out.Expected > 0 {
		out.MissRate = float64(out.Late+out.Dropped) / float64(out.Expected)
	}
	out.TTFB = quantiles(ttfbs).MS()
	out.FrameLatency = quantiles(lat).MS()
	out.MaxLatenessMS = ms(maxLate)
	return out
}

// Probe is one search-mode data point.
type Probe struct {
	Clients  int     `json:"clients"`
	MissRate float64 `json:"miss_rate"`
	Errors   int     `json:"errors"`
	Dropped  int     `json:"dropped"`
}

// SearchResult is the outcome of a max-sustainable-streams search.
type SearchResult struct {
	MissBudget float64 `json:"miss_budget"`
	// MaxStreams is the largest probed client count within budget; 0
	// means even one viewer missed it.
	MaxStreams int     `json:"max_streams"`
	Probes     []Probe `json:"probes"`
}

// Search finds the maximum concurrent viewer count that stays within
// the miss budget, assuming sustainability is monotone in load. run
// executes one load point at n clients; giving each probe fresh
// conditions (e.g. an empty cache for cold-path searches) is the
// caller's business.
func Search(run func(clients int) RunResult, budget float64, limit int) SearchResult {
	out := SearchResult{MissBudget: budget}
	ok := func(n int) bool {
		r := run(n)
		out.Probes = append(out.Probes, Probe{
			Clients: n, MissRate: r.MissRate, Errors: r.Errors, Dropped: r.Dropped,
		})
		return r.Sustained(budget)
	}
	out.MaxStreams = searchMax(ok, limit)
	return out
}

// searchMax returns the largest n in [1, limit] with ok(n), or 0 when
// ok(1) fails, probing O(log limit) points: doubling up from 1 until a
// failure or the limit, then bisecting the open gap.
func searchMax(ok func(int) bool, limit int) int {
	if limit < 1 {
		limit = 1
	}
	if !ok(1) {
		return 0
	}
	good, bad := 1, 0 // bad == 0: no failure seen yet
	for good < limit && bad == 0 {
		n := good * 2
		if n > limit {
			n = limit
		}
		if ok(n) {
			good = n
		} else {
			bad = n
		}
	}
	for bad != 0 && bad-good > 1 {
		mid := good + (bad-good)/2
		if ok(mid) {
			good = mid
		} else {
			bad = mid
		}
	}
	return good
}
