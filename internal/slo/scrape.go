package slo

import (
	"context"
	"fmt"
	"io"
	"math"
	"net/http"

	"hdvideobench/internal/obs"
)

// ServerStats is one scrape of the hdvserve counters the harness cares
// about. Values are the raw cumulative counters; subtract two scrapes
// (Delta) to attribute activity to one load point.
type ServerStats struct {
	Encodes     float64
	CacheHits   float64
	CacheMisses float64
	BytesServed float64
}

// ServerDelta is the server-side view of one load point, embedded in
// the report next to the client-side deadline results: how many encoder
// runs the point actually cost, how the cache split, and the bytes the
// server believes it wrote. A warm run with Encodes != 0 or a cold run
// with CacheHits != 0 means the harness didn't measure the path it
// claims.
type ServerDelta struct {
	Encodes     int64 `json:"encodes"`
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	BytesServed int64 `json:"bytes_served"`
}

// ScrapeServer fetches and parses base+"/metrics". Cache series are
// absent when the server runs uncached; they read as zero.
func ScrapeServer(ctx context.Context, base string) (ServerStats, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return ServerStats{}, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return ServerStats{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return ServerStats{}, fmt.Errorf("GET %s/metrics: %s", base, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return ServerStats{}, err
	}
	fams, err := obs.ParseText(body)
	if err != nil {
		return ServerStats{}, fmt.Errorf("parse %s/metrics: %w", base, err)
	}
	vals := obs.Values(fams)
	return ServerStats{
		Encodes:     vals["hdvserve_encodes_total"],
		CacheHits:   vals["hdvserve_cache_hits_total"],
		CacheMisses: vals["hdvserve_cache_misses_total"],
		BytesServed: vals["hdvserve_bytes_served_total"],
	}, nil
}

// Delta returns the counter movement from before to s.
func (s ServerStats) Delta(before ServerStats) *ServerDelta {
	round := func(v float64) int64 { return int64(math.Round(v)) }
	return &ServerDelta{
		Encodes:     round(s.Encodes - before.Encodes),
		CacheHits:   round(s.CacheHits - before.CacheHits),
		CacheMisses: round(s.CacheMisses - before.CacheMisses),
		BytesServed: round(s.BytesServed - before.BytesServed),
	}
}
