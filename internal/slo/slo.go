// Package slo is the real-time serving benchmark behind cmd/hdvslo: it
// drives an hdvserve instance with N concurrent synthetic viewers, each
// consuming the chunked HDVB stream against wall-clock frame deadlines,
// and reports what production serving is judged by — dropped and late
// frames, time-to-first-byte and per-frame latency quantiles, and the
// maximum concurrent stream count that sustains a deadline-miss budget.
// The fps-style throughput suite (cmd/hdvbench) answers "how fast";
// this package answers "how many viewers, at what tail".
//
// # Deadline model
//
// A viewer requests a stream and consumes coded frames (container
// packets, in coding order) as they arrive. The completion of frame 0
// anchors playback: frame i's deadline is i display periods (1/fps)
// after that anchor, the startup latency itself being measured
// separately as TTFB. Frame i's lateness is its arrival past its
// deadline:
//
//	late:    0 < lateness < DropAfter  (the player stalls, then shows it)
//	dropped: lateness >= DropAfter     (its display window fully missed;
//	                                    the player skips it)
//
// DropAfter defaults to one period. Frames a truncated stream never
// delivers count as dropped against the container header's declared
// frame count. The per-frame latency distribution is max(0, lateness)
// over delivered frames — p50 == 0 reads "at least half the frames were
// on time", and the p95/p99 tail is the stall the 95th/99th-percentile
// frame causes.
//
// # Pacing and backpressure
//
// Viewers are paced, not greedy: a viewer reads at most ReadAhead
// frames past the playhead (default one second's worth), then sleeps
// until the playhead catches up, exactly like a player with a bounded
// jitter buffer. The unread bytes back-pressure the server through the
// HTTP connection, so an overloaded server sees the same queueing a
// real viewer fleet produces.
//
// The accounting core (Tally) is a pure function over an arrival
// schedule, and pacing runs against an injected Clock, so the unit
// tests drive synthetic schedules through a fake clock and assert
// exact late/drop counts and quantiles — no wall-clock flakiness.
//
// # Search mode
//
// Search binary-searches the viewer count (doubling, then bisecting)
// for the largest N whose run stays within a deadline-miss budget
// (misses = late + dropped, as a fraction of expected frames; any
// transport error disqualifies). That N — max sustainable streams — is
// the capacity figure BENCH_SLO.json tracks per {cold, warm} × fps
// point: cold measures the encode path, warm the gopcache serving path.
package slo

import (
	"context"
	"time"
)

// Clock abstracts wall time for the pacer so tests can drive it
// deterministically.
type Clock interface {
	Now() time.Time
	// Sleep blocks for d or until ctx is done, returning ctx.Err() in
	// the latter case.
	Sleep(ctx context.Context, d time.Duration) error
}

// Real is the wall-clock Clock used outside tests.
var Real Clock = realClock{}

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

func (realClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
