package slo

import (
	"sort"
	"time"
)

// Schedule is the deadline model of one paced stream.
type Schedule struct {
	// Period is the display interval, 1/fps.
	Period time.Duration
	// DropAfter is the lateness at which a frame counts dropped rather
	// than late. Zero means one Period.
	DropAfter time.Duration
}

func (s Schedule) dropAfter() time.Duration {
	if s.DropAfter > 0 {
		return s.DropAfter
	}
	return s.Period
}

// Quantiles are nearest-rank percentiles over a latency population:
// q(p) is the ceil(p·n)-th smallest value, so every reported figure is
// an actually observed latency and the computation is exact and
// deterministic.
type Quantiles struct {
	P50 time.Duration
	P95 time.Duration
	P99 time.Duration
}

// quantiles computes nearest-rank P50/P95/P99 without mutating vals.
// An empty population yields zeros.
func quantiles(vals []time.Duration) Quantiles {
	if len(vals) == 0 {
		return Quantiles{}
	}
	sorted := append([]time.Duration(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := func(p float64) time.Duration {
		// Nearest rank: ceil(p*n), computed in integer math to keep the
		// result exact for the p values used here.
		n := len(sorted)
		k := (int(p*100)*n + 99) / 100
		if k < 1 {
			k = 1
		}
		return sorted[k-1]
	}
	return Quantiles{P50: rank(0.50), P95: rank(0.95), P99: rank(0.99)}
}

// FrameStats classifies one stream's frames against its schedule.
type FrameStats struct {
	// Frames is the count of frames actually delivered.
	Frames int
	// Expected is the count the container header declared (>= Frames
	// when the stream was truncated; 0 when the header never arrived).
	Expected int
	// Late frames arrived past their deadline but within DropAfter.
	Late int
	// Dropped frames arrived DropAfter or more past their deadline, or
	// were never delivered at all.
	Dropped int
	// Latency summarizes max(0, lateness) over delivered frames.
	Latency Quantiles
	// MaxLateness is the worst lateness of any delivered frame. Frame 0
	// anchors playback at lateness zero, so a fully on-time stream
	// reports exactly zero.
	MaxLateness time.Duration
}

// Misses returns late + dropped.
func (f FrameStats) Misses() int { return f.Late + f.Dropped }

// Tally classifies a stream's arrival schedule. arrivals[i] is frame
// i's delivery completion relative to frame 0's (so arrivals[0] == 0
// and frame 0 is by construction on time — startup cost is TTFB's
// business, not the deadline model's). Frame i's deadline is
// i·s.Period; its lateness is arrivals[i] minus that. expected is the
// header-declared frame count: the expected - len(arrivals) frames a
// truncated stream never delivered all count dropped.
//
// The second result is max(0, lateness) per delivered frame, in
// arrival order — the population behind FrameStats.Latency, returned
// so a multi-client run can merge populations before taking quantiles.
func Tally(arrivals []time.Duration, expected int, s Schedule) (FrameStats, []time.Duration) {
	drop := s.dropAfter()
	stats := FrameStats{Frames: len(arrivals), Expected: expected}
	lat := make([]time.Duration, len(arrivals))
	for i, a := range arrivals {
		lateness := a - time.Duration(i)*s.Period
		if i == 0 || lateness > stats.MaxLateness {
			stats.MaxLateness = lateness
		}
		switch {
		case lateness >= drop:
			stats.Dropped++
		case lateness > 0:
			stats.Late++
		}
		if lateness > 0 {
			lat[i] = lateness
		}
	}
	if expected > len(arrivals) {
		stats.Dropped += expected - len(arrivals)
	}
	stats.Latency = quantiles(lat)
	return stats, lat
}
