package entropy

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hdvideobench/internal/bitstream"
)

func TestUERoundTrip(t *testing.T) {
	w := bitstream.NewWriter(64)
	values := []uint32{0, 1, 2, 3, 7, 8, 100, 65535, 1 << 20}
	for _, v := range values {
		WriteUE(w, v)
	}
	r := bitstream.NewReader(w.Bytes())
	for _, want := range values {
		if got := ReadUE(r); got != want {
			t.Fatalf("UE: got %d want %d", got, want)
		}
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

func TestUEKnownCodes(t *testing.T) {
	// ue(0) = "1", ue(1) = "010", ue(2) = "011", ue(3) = "00100".
	w := bitstream.NewWriter(8)
	WriteUE(w, 0)
	WriteUE(w, 1)
	WriteUE(w, 2)
	WriteUE(w, 3)
	if w.BitsWritten() != 1+3+3+5 {
		t.Fatalf("total bits = %d, want 12", w.BitsWritten())
	}
	r := bitstream.NewReader(w.Bytes())
	if r.ReadBits(1) != 1 {
		t.Fatal("ue(0) must be '1'")
	}
	if r.ReadBits(3) != 0b010 {
		t.Fatal("ue(1) must be '010'")
	}
}

func TestSERoundTrip(t *testing.T) {
	w := bitstream.NewWriter(64)
	values := []int32{0, 1, -1, 2, -2, 100, -100, 32767, -32768}
	for _, v := range values {
		WriteSE(w, v)
	}
	r := bitstream.NewReader(w.Bytes())
	for _, want := range values {
		if got := ReadSE(r); got != want {
			t.Fatalf("SE: got %d want %d", got, want)
		}
	}
}

func TestSEProperty(t *testing.T) {
	check := func(vals []int32) bool {
		w := bitstream.NewWriter(64)
		for _, v := range vals {
			WriteSE(w, v/2) // halve to stay in mapping range
		}
		r := bitstream.NewReader(w.Bytes())
		for _, v := range vals {
			if ReadSE(r) != v/2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRangeCoderBitRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(5000)
		bits := make([]int, n)
		// Biased source exercises adaptation.
		bias := rng.Intn(100)
		for i := range bits {
			if rng.Intn(100) < bias {
				bits[i] = 1
			}
		}
		encCtx := make([]Prob, 4)
		ResetProbs(encCtx)
		e := NewEncoder(1024)
		for i, b := range bits {
			e.EncodeBit(&encCtx[i%4], b)
		}
		data := e.Finish()

		decCtx := make([]Prob, 4)
		ResetProbs(decCtx)
		d := NewDecoder(data)
		for i, want := range bits {
			if got := d.DecodeBit(&decCtx[i%4]); got != want {
				t.Fatalf("trial %d bit %d: got %d want %d", trial, i, got, want)
			}
		}
	}
}

func TestRangeCoderCompressesBiasedSource(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 100000
	e := NewEncoder(n / 4)
	ctx := NewProb()
	ones := 0
	for i := 0; i < n; i++ {
		b := 0
		if rng.Intn(100) < 5 { // 5% ones → entropy ≈ 0.286 bits/symbol
			b = 1
			ones++
		}
		e.EncodeBit(&ctx, b)
	}
	data := e.Finish()
	bitsPerSymbol := float64(len(data)*8) / float64(n)
	if bitsPerSymbol > 0.45 {
		t.Fatalf("adaptive coder output %.3f bits/symbol for a 5%% source", bitsPerSymbol)
	}
}

func TestRangeCoderBypassRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vals := make([]uint32, 500)
	e := NewEncoder(1024)
	for i := range vals {
		vals[i] = rng.Uint32() & 0xFFFF
		e.EncodeBypassBits(vals[i], 16)
	}
	d := NewDecoder(e.Finish())
	for i, want := range vals {
		if got := d.DecodeBypassBits(16); got != want {
			t.Fatalf("val %d: got %x want %x", i, got, want)
		}
	}
}

func TestRangeCoderMixedStream(t *testing.T) {
	// Interleave context bits, bypass bits, UE and SE values.
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		type op struct {
			kind int
			v    int64
		}
		n := 2000
		ops := make([]op, n)
		for i := range ops {
			switch rng.Intn(4) {
			case 0:
				ops[i] = op{0, int64(rng.Intn(2))}
			case 1:
				ops[i] = op{1, int64(rng.Intn(2))}
			case 2:
				ops[i] = op{2, int64(rng.Intn(10000))}
			case 3:
				ops[i] = op{3, int64(rng.Intn(20001) - 10000)}
			}
		}
		encCtx := make([]Prob, 8)
		ResetProbs(encCtx)
		ueCtx := make([]Prob, 6)
		ResetProbs(ueCtx)
		e := NewEncoder(4096)
		for _, o := range ops {
			switch o.kind {
			case 0:
				e.EncodeBit(&encCtx[0], int(o.v))
			case 1:
				e.EncodeBypass(int(o.v))
			case 2:
				e.EncodeUE(ueCtx, 8, uint32(o.v))
			case 3:
				e.EncodeSE(ueCtx, 8, int32(o.v))
			}
		}
		data := e.Finish()

		decCtx := make([]Prob, 8)
		ResetProbs(decCtx)
		dueCtx := make([]Prob, 6)
		ResetProbs(dueCtx)
		d := NewDecoder(data)
		for i, o := range ops {
			switch o.kind {
			case 0:
				if got := d.DecodeBit(&decCtx[0]); int64(got) != o.v {
					t.Fatalf("trial %d op %d ctx bit: got %d want %d", trial, i, got, o.v)
				}
			case 1:
				if got := d.DecodeBypass(); int64(got) != o.v {
					t.Fatalf("trial %d op %d bypass: got %d want %d", trial, i, got, o.v)
				}
			case 2:
				if got := d.DecodeUE(dueCtx, 8); int64(got) != o.v {
					t.Fatalf("trial %d op %d UE: got %d want %d", trial, i, got, o.v)
				}
			case 3:
				if got := d.DecodeSE(dueCtx, 8); int64(got) != o.v {
					t.Fatalf("trial %d op %d SE: got %d want %d", trial, i, got, o.v)
				}
			}
		}
	}
}

func TestRangeCoderUEBoundaries(t *testing.T) {
	// Values at and around the escape boundary.
	ctxE := make([]Prob, 3)
	ResetProbs(ctxE)
	e := NewEncoder(64)
	values := []uint32{0, 1, 7, 8, 9, 100, 1 << 16}
	for _, v := range values {
		e.EncodeUE(ctxE, 8, v)
	}
	ctxD := make([]Prob, 3)
	ResetProbs(ctxD)
	d := NewDecoder(e.Finish())
	for _, want := range values {
		if got := d.DecodeUE(ctxD, 8); got != want {
			t.Fatalf("UE boundary: got %d want %d", got, want)
		}
	}
}

func TestEncoderReset(t *testing.T) {
	e := NewEncoder(64)
	ctx := NewProb()
	e.EncodeBit(&ctx, 1)
	e.Finish()
	e.Reset()
	ctx = NewProb()
	e.EncodeBit(&ctx, 0)
	e.EncodeBit(&ctx, 1)
	d := NewDecoder(e.Finish())
	dc := NewProb()
	if d.DecodeBit(&dc) != 0 || d.DecodeBit(&dc) != 1 {
		t.Fatal("encoder reuse after Reset failed")
	}
}

func TestProbAdaptationDirection(t *testing.T) {
	p := NewProb()
	e := NewEncoder(64)
	for i := 0; i < 100; i++ {
		e.EncodeBit(&p, 0)
	}
	if p <= probInit {
		t.Fatalf("after 100 zeros prob = %d, want > %d", p, probInit)
	}
	p = NewProb()
	for i := 0; i < 100; i++ {
		e.EncodeBit(&p, 1)
	}
	if p >= probInit {
		t.Fatalf("after 100 ones prob = %d, want < %d", p, probInit)
	}
}
