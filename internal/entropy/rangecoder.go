package entropy

// The range coder below is a carry-less binary arithmetic coder with
// adaptive 11-bit probabilities (the construction used by LZMA; the same
// coder class as H.264 CABAC's M-coder). Encoder and decoder are exact
// inverses for any interleaving of context-coded and bypass bits.

// probBits is the probability resolution; probInit is p=0.5.
const (
	probBits  = 11
	probInit  = 1 << (probBits - 1)
	probMoves = 5 // adaptation rate
	topValue  = 1 << 24
)

// Prob is an adaptive binary probability (context model). The zero value is
// NOT valid; initialize with NewProb or ResetProbs.
type Prob uint16

// NewProb returns a context initialized to probability one half.
func NewProb() Prob { return probInit }

// ResetProbs reinitializes a slice of contexts to one half.
func ResetProbs(ps []Prob) {
	for i := range ps {
		ps[i] = probInit
	}
}

// Encoder is the range-coder encoder. Create with NewEncoder.
type Encoder struct {
	low       uint64
	rng       uint32
	cache     byte
	cacheSize int64
	buf       []byte
}

// NewEncoder returns an encoder with sizeHint bytes preallocated.
func NewEncoder(sizeHint int) *Encoder {
	return &Encoder{rng: 0xFFFFFFFF, cacheSize: 1, buf: make([]byte, 0, sizeHint)}
}

// Reset prepares the encoder for a new stream, keeping its buffer.
func (e *Encoder) Reset() {
	e.low = 0
	e.rng = 0xFFFFFFFF
	e.cache = 0
	e.cacheSize = 1
	e.buf = e.buf[:0]
}

func (e *Encoder) shiftLow() {
	if uint32(e.low) < 0xFF000000 || (e.low>>32) != 0 {
		temp := e.cache
		carry := byte(e.low >> 32)
		for {
			e.buf = append(e.buf, temp+carry)
			temp = 0xFF
			e.cacheSize--
			if e.cacheSize == 0 {
				break
			}
		}
		e.cache = byte(e.low >> 24)
	}
	e.cacheSize++
	e.low = (e.low & 0x00FFFFFF) << 8
}

// EncodeBit encodes one bit with the adaptive context p.
func (e *Encoder) EncodeBit(p *Prob, bit int) {
	bound := (e.rng >> probBits) * uint32(*p)
	if bit == 0 {
		e.rng = bound
		*p += (1<<probBits - *p) >> probMoves
	} else {
		e.low += uint64(bound)
		e.rng -= bound
		*p -= *p >> probMoves
	}
	for e.rng < topValue {
		e.rng <<= 8
		e.shiftLow()
	}
}

// EncodeBypass encodes one equiprobable bit without context adaptation.
func (e *Encoder) EncodeBypass(bit int) {
	e.rng >>= 1
	if bit != 0 {
		e.low += uint64(e.rng)
	}
	for e.rng < topValue {
		e.rng <<= 8
		e.shiftLow()
	}
}

// EncodeBypassBits encodes the low n bits of v, MSB first, as bypass bits.
func (e *Encoder) EncodeBypassBits(v uint32, n uint) {
	for i := int(n) - 1; i >= 0; i-- {
		e.EncodeBypass(int(v>>uint(i)) & 1)
	}
}

// EncodeUE encodes v with a unary context-coded prefix (contexts from ctx,
// clamped to its last element) followed by a bypass Exp-Golomb suffix once
// the prefix exceeds escape. This is the UEG-style binarization CABAC uses
// for levels and motion vector differences.
func (e *Encoder) EncodeUE(ctx []Prob, escape int, v uint32) {
	i := 0
	for ; i < escape && v > 0; i++ {
		e.EncodeBit(&ctx[min(i, len(ctx)-1)], 1)
		v--
	}
	if i < escape {
		e.EncodeBit(&ctx[min(i, len(ctx)-1)], 0)
		return
	}
	// Escape: bypass Exp-Golomb of the remainder.
	x := uint64(v) + 1
	n := bitLen64(x)
	for j := uint(0); j < n-1; j++ {
		e.EncodeBypass(0)
	}
	for j := int(n) - 1; j >= 0; j-- {
		e.EncodeBypass(int(x>>uint(j)) & 1)
	}
}

// EncodeSE encodes a signed value as EncodeUE of the magnitude mapping plus
// a bypass sign bit for non-zero values.
func (e *Encoder) EncodeSE(ctx []Prob, escape int, v int32) {
	mag := v
	if mag < 0 {
		mag = -mag
	}
	e.EncodeUE(ctx, escape, uint32(mag))
	if mag != 0 {
		sign := 0
		if v < 0 {
			sign = 1
		}
		e.EncodeBypass(sign)
	}
}

// Finish flushes the encoder and returns the coded bytes. The encoder must
// be Reset before reuse.
func (e *Encoder) Finish() []byte {
	for i := 0; i < 5; i++ {
		e.shiftLow()
	}
	return e.buf
}

// Len returns the current number of output bytes (before Finish).
func (e *Encoder) Len() int { return len(e.buf) }

// Decoder is the range-coder decoder. Create with NewDecoder over the bytes
// produced by Encoder.Finish.
type Decoder struct {
	rng  uint32
	code uint32
	buf  []byte
	pos  int
}

// NewDecoder returns a decoder over buf.
func NewDecoder(buf []byte) *Decoder {
	d := &Decoder{}
	d.Reset(buf)
	return d
}

// Reset re-points the decoder at a new coded buffer, allowing one
// Decoder to serve many payloads without reallocation.
func (d *Decoder) Reset(buf []byte) {
	*d = Decoder{rng: 0xFFFFFFFF, buf: buf, pos: 1} // first byte is always 0
	for i := 0; i < 4; i++ {
		d.code = d.code<<8 | uint32(d.nextByte())
	}
}

func (d *Decoder) nextByte() byte {
	if d.pos < len(d.buf) {
		b := d.buf[d.pos]
		d.pos++
		return b
	}
	d.pos++
	return 0
}

// DecodeBit decodes one bit with the adaptive context p.
func (d *Decoder) DecodeBit(p *Prob) int {
	bound := (d.rng >> probBits) * uint32(*p)
	var bit int
	if d.code < bound {
		d.rng = bound
		*p += (1<<probBits - *p) >> probMoves
	} else {
		d.code -= bound
		d.rng -= bound
		*p -= *p >> probMoves
		bit = 1
	}
	for d.rng < topValue {
		d.rng <<= 8
		d.code = d.code<<8 | uint32(d.nextByte())
	}
	return bit
}

// DecodeBypass decodes one equiprobable bit.
func (d *Decoder) DecodeBypass() int {
	d.rng >>= 1
	var bit int
	if d.code >= d.rng {
		d.code -= d.rng
		bit = 1
	}
	for d.rng < topValue {
		d.rng <<= 8
		d.code = d.code<<8 | uint32(d.nextByte())
	}
	return bit
}

// DecodeBypassBits decodes n bypass bits MSB-first.
func (d *Decoder) DecodeBypassBits(n uint) uint32 {
	var v uint32
	for i := uint(0); i < n; i++ {
		v = v<<1 | uint32(d.DecodeBypass())
	}
	return v
}

// DecodeUE mirrors Encoder.EncodeUE.
func (d *Decoder) DecodeUE(ctx []Prob, escape int) uint32 {
	v := uint32(0)
	i := 0
	for ; i < escape; i++ {
		if d.DecodeBit(&ctx[min(i, len(ctx)-1)]) == 0 {
			return v
		}
		v++
	}
	// Escape suffix: bypass Exp-Golomb.
	zeros := uint(0)
	for d.DecodeBypass() == 0 {
		zeros++
		if zeros > 32 {
			return v
		}
	}
	rest := uint64(0)
	for j := uint(0); j < zeros; j++ {
		rest = rest<<1 | uint64(d.DecodeBypass())
	}
	return v + uint32((1<<zeros|rest)-1)
}

// DecodeSE mirrors Encoder.EncodeSE.
func (d *Decoder) DecodeSE(ctx []Prob, escape int) int32 {
	mag := int32(d.DecodeUE(ctx, escape))
	if mag == 0 {
		return 0
	}
	if d.DecodeBypass() == 1 {
		return -mag
	}
	return mag
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
