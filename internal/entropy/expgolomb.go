// Package entropy provides the entropy-coding primitives of the three
// codecs: Exp-Golomb variable-length codes for the MPEG-2/MPEG-4 VLC layers
// and an adaptive binary range coder (the arithmetic-coding engine class
// that gives H.264/CABAC its compression edge).
package entropy

import (
	"math/bits"

	"hdvideobench/internal/bitstream"
)

// WriteUE writes v as an unsigned Exp-Golomb code: ⌊log2(v+1)⌋ zero bits,
// then the binary representation of v+1.
func WriteUE(w *bitstream.Writer, v uint32) {
	x := uint64(v) + 1
	n := bitLen64(x)
	w.WriteBits(0, n-1)
	w.WriteBits(x, n)
}

// ReadUE reads an unsigned Exp-Golomb code. The fast path peeks 32 bits and
// counts the zero prefix in one instruction (the role of the optimized VLC
// lookup tables in libmpeg2/FFmpeg).
func ReadUE(r *bitstream.Reader) uint32 {
	peek := uint32(r.PeekBits(32))
	if peek != 0 {
		lz := uint(bits.LeadingZeros32(peek))
		if lz <= 28 { // whole code within the peek window
			return uint32(r.ReadBits(2*lz+1) - 1)
		}
	}
	// Slow path: long codes or end of stream.
	zeros := uint(0)
	for r.ReadBits(1) == 0 {
		zeros++
		if zeros > 32 || r.Err() != nil {
			return 0
		}
	}
	rest := r.ReadBits(zeros)
	return uint32((1<<zeros | rest) - 1)
}

// WriteSE writes v as a signed Exp-Golomb code using the H.264 mapping
// (0, 1, -1, 2, -2, ... → 0, 1, 2, 3, 4, ...).
func WriteSE(w *bitstream.Writer, v int32) {
	var u uint32
	if v > 0 {
		u = uint32(2*v - 1)
	} else {
		u = uint32(-2 * v)
	}
	WriteUE(w, u)
}

// ReadSE reads a signed Exp-Golomb code.
func ReadSE(r *bitstream.Reader) int32 {
	u := ReadUE(r)
	if u%2 == 1 {
		return int32(u/2 + 1)
	}
	return -int32(u / 2)
}

func bitLen64(x uint64) uint {
	n := uint(0)
	for x > 0 {
		x >>= 1
		n++
	}
	return n
}
