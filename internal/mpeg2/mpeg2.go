// Package mpeg2 implements the HD-VideoBench MPEG-2-class video codec:
// the role FFmpeg's MPEG-2 encoder and the libmpeg2 decoder play in the
// paper. Toolset: 16×16 macroblocks, 8×8 DCT with the MPEG-2 intra matrix,
// half-pel motion compensation, I/P/B pictures with the paper's I-P-B-B
// GOP, EPZS motion estimation, and a run-level Exp-Golomb VLC layer.
//
// The bitstream is the HDVB container format (see DESIGN.md §2), not ISO
// 13818-2; encoder and decoder form a complete bit-exact pair.
package mpeg2

import (
	"fmt"

	"hdvideobench/internal/codec"
	"hdvideobench/internal/container"
)

// Macroblock modes. P frames use pSkip/pInter/pIntra; B frames use the b*
// set.
const (
	pInter = 0
	pIntra = 1
	pSkip  = 2

	bSkip  = 0
	bFwd   = 1
	bBwd   = 2
	bBi    = 3
	bIntra = 4
)

// eob8 is the end-of-block marker for intra AC coding (runs are ≤ 62).
const eob8 = 63

// eob64 is the end-of-block marker for inter coding (runs are ≤ 63).
const eob64 = 64

// dcPredInit is the intra DC predictor reset value (mid-grey, level scale).
const dcPredInit = 128

// predBuf holds one macroblock of prediction samples.
type predBuf struct {
	y      [256]byte // 16×16 luma
	yAlt   [256]byte // second hypothesis for bi-prediction / refinement
	cb, cr [64]byte  // 8×8 chroma
	cbAlt  [64]byte
	crAlt  [64]byte
}

// splitHalf splits a half-pel MV component into integer offset and
// half-pel fraction (floor semantics, valid for negative values).
func splitHalf(v int) (ipel, frac int) {
	return v >> 1, v & 1
}

// chromaMV derives the chroma half-pel MV from the luma half-pel MV
// (division by two truncating toward zero, per MPEG-2).
func chromaMV(v int) int { return v / 2 }

// lambdaFor maps the quantizer scale to the λ used in motion cost
// (SAD units per estimated bit).
func lambdaFor(q int) int {
	l := q
	if l < 1 {
		l = 1
	}
	return l
}

// header builds the container header for a config.
func header(cfg codec.Config, frames int) container.Header {
	var flags uint16
	if cfg.SliceQ() {
		flags |= container.FlagSliceQ
	}
	return container.Header{
		Codec:  container.CodecMPEG2,
		Flags:  flags,
		Width:  cfg.Width,
		Height: cfg.Height,
		FPSNum: cfg.FPSNum,
		FPSDen: cfg.FPSDen,
		Frames: frames,
	}
}

// validateSize checks a decoded packet's geometry against the header.
func validateSize(hdr container.Header) error {
	if hdr.Width%16 != 0 || hdr.Height%16 != 0 || hdr.Width <= 0 || hdr.Height <= 0 {
		return fmt.Errorf("mpeg2: invalid dimensions %dx%d", hdr.Width, hdr.Height)
	}
	return nil
}

// clampMVToWindow keeps a decoded integer-pel offset inside the padded
// reference area, guarding against corrupt streams.
func clampMVToWindow(ival, pos, size, blk int) int {
	lo := -pos - (codec.RefPad - 8)
	hi := size - pos - blk + (codec.RefPad - 8)
	if ival < lo {
		ival = lo
	}
	if ival > hi {
		ival = hi
	}
	return ival
}
