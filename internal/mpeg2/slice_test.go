package mpeg2

import (
	"strings"
	"testing"

	"hdvideobench/internal/codec"
	"hdvideobench/internal/container"
	"hdvideobench/internal/kernel"
	"hdvideobench/internal/seqgen"
)

// TestCorruptSliceFailsCleanly flips bits inside exactly one slice of a
// frame: decoding that frame must fail with an error naming the slice
// (never a panic), while the stream's other frames — and the same frame
// with the corruption reverted — stay decodable. This is the containment
// property the per-slice length table buys.
func TestCorruptSliceFailsCleanly(t *testing.T) {
	const w, h, slices = 96, 80, 4
	cfg := codec.Default(w, h)
	cfg.Slices = slices
	cfg.BFrames = 0
	cfg.IntraPeriod = 1 // every frame an I frame: frames decode independently

	enc, err := NewEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	inputs := seqgen.New(seqgen.RushHour, w, h).Generate(2)
	var pkts []container.Packet
	for _, f := range inputs {
		ps, err := enc.Encode(f)
		if err != nil {
			t.Fatal(err)
		}
		pkts = append(pkts, ps...)
	}
	ps, err := enc.Flush()
	if err != nil {
		t.Fatal(err)
	}
	pkts = append(pkts, ps...)
	if len(pkts) != 2 {
		t.Fatalf("encoded %d packets, want 2", len(pkts))
	}

	// Locate slice 2 of frame 0 and trash its bytes.
	spans, off, err := codec.ParseSliceTable(pkts[0].Payload[1:], h/16)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != slices {
		t.Fatalf("%d slices, want %d", len(spans), slices)
	}
	lo := 1 + off + spans[0].Size + spans[1].Size
	corrupt := append([]byte(nil), pkts[0].Payload...)
	orig := append([]byte(nil), corrupt[lo:lo+spans[2].Size]...)
	for i := lo; i < lo+spans[2].Size; i++ {
		corrupt[i] ^= 0xA5
	}

	dec, err := NewDecoder(enc.Header(), kernel.Scalar)
	if err != nil {
		t.Fatal(err)
	}
	bad := pkts[0]
	bad.Payload = corrupt
	if _, err := dec.Decode(bad); err == nil {
		t.Fatal("corrupted slice decoded without error")
	} else if !strings.Contains(err.Error(), "slice 2") {
		t.Fatalf("error does not name the corrupted slice: %v", err)
	}

	// The next frame (an independent I frame) still decodes on the same
	// decoder instance, and the reverted packet decodes too.
	if _, err := dec.Decode(pkts[1]); err != nil {
		t.Fatalf("later frame failed after a contained slice error: %v", err)
	}
	copy(corrupt[lo:], orig)
	dec2, err := NewDecoder(enc.Header(), kernel.Scalar)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dec2.Decode(bad); err != nil {
		t.Fatalf("reverted packet failed: %v", err)
	}
}
