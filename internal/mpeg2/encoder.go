package mpeg2

import (
	"fmt"

	"hdvideobench/internal/bitstream"
	"hdvideobench/internal/codec"
	"hdvideobench/internal/container"
	"hdvideobench/internal/dct"
	"hdvideobench/internal/entropy"
	"hdvideobench/internal/frame"
	"hdvideobench/internal/interp"
	"hdvideobench/internal/kernel"
	"hdvideobench/internal/motion"
	"hdvideobench/internal/quant"
	"hdvideobench/internal/swar"
)

// Encoder is the MPEG-2-class encoder (the paper's FFmpeg-mpeg2 role).
//
// Every frame is coded as cfg.Slices independent macroblock-row slices
// (see internal/codec's slice layer): each slice has its own bitstream,
// DC predictors and MV predictors, so the slices of one frame can run
// concurrently on the SliceRunner while the merged payload stays
// byte-identical for every schedule. Inside each slice the macroblock
// rows are coded by per-row coders (rowEnc) that can additionally run on
// a wavefront runner when cfg.Wavefront is set — see sliceEnc.encode.
type Encoder struct {
	cfg    codec.Config
	gop    codec.GOPScheduler
	runner codec.SliceRunner
	wfRun  codec.WavefrontRunner

	prevRef, lastRef *frame.Frame // reconstructed references, coding order

	spans  []codec.SliceSpan // fixed row split for cfg.Slices
	slices []*sliceEnc       // per-slice coders, reused across frames

	inCount int // display frames accepted
	ptsBase int // chunk offset in the global timeline (codec.PTSRebaser)
	frames  int // frames coded

	rc       *codec.RateController // nil = constant Q
	frameQ   int                   // quantizer of the frame being coded
	sliceQs  []int                 // per-slice quantizers (nil unless cfg.SliceQ())
	tap      *motion.Field         // capture target for cfg.MotionTap, per frame
	hint     *motion.Field         // hint field for the frame being coded
	sliceBuf []int                 // scratch: per-slice bits for the controller
}

// sliceEnc codes one slice as a stack of per-row coders. Slices of one
// frame write disjoint macroblock rows of the shared reconstruction, so
// concurrent slices never touch each other's state; rows inside a slice
// only couple through the parity MV predictor buffers, whose access
// pattern is exactly the wavefront dependency shape.
type sliceEnc struct {
	e    *Encoder
	bw   *bitstream.Writer // final slice stream: row writers concatenated
	rows []*rowEnc         // per-row coders, index = row within the slice

	// mvBuf is the pair of full-pel MV predictor buffers the rows
	// alternate between: row y writes mvBuf[y%2] and reads the row
	// above from mvBuf[(y+1)%2]. Reads are {x-1 same row, x and x+1 row
	// above} — the wavefront dependency rule — so under a wavefront
	// runner every access is ordered by the front's progress counters.
	mvBuf [2][]motion.MV
}

// rowEnc carries the state of one macroblock row: the row's bitstream
// plus every predictor that resets at the row boundary. One goroutine
// owns a row for its whole left-to-right walk (serially or on the
// wavefront), so none of this needs synchronization.
type rowEnc struct {
	e  *Encoder
	bw *bitstream.Writer

	pred predBuf

	q      int32 // quantizer for the row's slice (frame or rebalanced slice q)
	lambda int   // motion λ derived from q

	dcPred  [3]int32
	fwdPred motion.MV   // half-pel forward MV predictor within the row
	bwdPred motion.MV   // half-pel backward MV predictor within the row
	mvRow   []motion.MV // full-pel MVs of the current row (predictor source)
	mvAbove []motion.MV // full-pel MVs of the row above

	epzsPreds [4]motion.MV // scratch for the EPZS candidate list (3 spatial + hint)
}

// NewEncoder returns an MPEG-2 encoder for cfg.
func NewEncoder(cfg codec.Config) (*Encoder, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("mpeg2: %w", err)
	}
	e := &Encoder{
		cfg: cfg,
		gop: codec.GOPScheduler{BFrames: cfg.BFrames, IntraPeriod: cfg.IntraPeriod, SceneCut: cfg.SceneCutIntra},
		rc:  codec.NewRateController(cfg),
	}
	e.spans = codec.SliceRows(cfg.MBRows(), cfg.Slices)
	e.slices = make([]*sliceEnc, len(e.spans))
	hint := cfg.Width*cfg.Height/4/len(e.spans) + 64
	rowHint := cfg.Width*cfg.Height/4/cfg.MBRows() + 64
	for i := range e.slices {
		s := &sliceEnc{
			e:    e,
			bw:   bitstream.NewWriter(hint),
			rows: make([]*rowEnc, e.spans[i].Rows),
		}
		s.mvBuf[0] = make([]motion.MV, cfg.MBCols())
		s.mvBuf[1] = make([]motion.MV, cfg.MBCols())
		for r := range s.rows {
			s.rows[r] = &rowEnc{e: e, bw: bitstream.NewWriter(rowHint)}
		}
		e.slices[i] = s
	}
	return e, nil
}

// SetSliceRunner implements codec.SliceScheduler: per-frame slice jobs
// run on r (nil restores the serial default). Output bytes do not depend
// on the runner.
func (e *Encoder) SetSliceRunner(r codec.SliceRunner) { e.runner = r }

// SetWavefrontRunner implements codec.WavefrontScheduler: when
// cfg.Wavefront is set, each slice's macroblock grid runs on r (nil
// restores the serial default). Output bytes depend on neither the
// runner nor cfg.Wavefront.
func (e *Encoder) SetWavefrontRunner(r codec.WavefrontRunner) { e.wfRun = r }

// SetPTSBase implements codec.PTSRebaser: the GOP-parallel pipeline
// announces the chunk's offset in the global display timeline so the
// motion tap/hint callbacks key on global stamps.
func (e *Encoder) SetPTSBase(base int) { e.ptsBase = base }

// Header implements codec.Encoder.
func (e *Encoder) Header() container.Header { return header(e.cfg, 0) }

// Encode implements codec.Encoder.
func (e *Encoder) Encode(f *frame.Frame) ([]container.Packet, error) {
	if f.Width != e.cfg.Width || f.Height != e.cfg.Height {
		return nil, fmt.Errorf("mpeg2: frame is %dx%d, config is %dx%d",
			f.Width, f.Height, e.cfg.Width, e.cfg.Height)
	}
	f.PTS = e.inCount // display index = arrival order
	e.inCount++
	var pkts []container.Packet
	for _, entry := range e.gop.Push(f) {
		pkts = append(pkts, e.encodeFrame(entry.Frame, entry.Type))
	}
	return pkts, nil
}

// Flush implements codec.Encoder.
func (e *Encoder) Flush() ([]container.Packet, error) {
	var pkts []container.Packet
	for _, entry := range e.gop.Flush() {
		pkts = append(pkts, e.encodeFrame(entry.Frame, entry.Type))
	}
	return pkts, nil
}

func (e *Encoder) encodeFrame(src *frame.Frame, ftype container.FrameType) container.Packet {
	recon := frame.NewPadded(e.cfg.Width, e.cfg.Height, codec.RefPad)
	recon.PTS = src.PTS

	e.frameQ = e.cfg.Q
	if e.rc != nil {
		e.frameQ = e.rc.FrameQ(ftype)
		if e.cfg.SliceQ() {
			e.sliceQs = e.rc.SliceQs(e.frameQ, len(e.spans))
		}
	}
	e.tap, e.hint = nil, nil
	if ftype != container.FrameI {
		if e.cfg.MotionTap != nil {
			e.tap = motion.NewField(e.cfg.Width, e.cfg.Height)
		}
		if e.cfg.MotionHints != nil {
			e.hint = e.cfg.MotionHints(src.PTS + e.ptsBase)
		}
	}

	codec.RunSlices(e.runner, len(e.spans), func(i int) {
		e.slices[i].encode(src, recon, ftype, e.spans[i], i)
	})

	recon.ExtendBorders()
	switch ftype {
	case container.FrameI:
		// Closed GOP: an I frame invalidates earlier references, so a
		// chunk encoder starting here matches the serial stream exactly.
		interp.BuildHalfPelBilin(recon, e.cfg.Kernels)
		e.prevRef = nil
		e.lastRef = recon
	case container.FrameP:
		interp.BuildHalfPelBilin(recon, e.cfg.Kernels)
		e.prevRef = e.lastRef
		e.lastRef = recon
	}
	e.frames++

	// Payload layout: one quantizer byte, the slice table, then the
	// per-slice bitstreams in row order.
	total := 1 + codec.SliceTableSize(len(e.spans))
	for i, s := range e.slices {
		e.spans[i].Size = len(s.bw.Bytes())
		total += e.spans[i].Size
	}
	payload := make([]byte, 0, total)
	payload = append(payload, byte(e.frameQ))
	payload = codec.AppendSliceTable(payload, e.spans)
	for _, s := range e.slices {
		payload = append(payload, s.bw.Bytes()...)
	}

	if e.rc != nil {
		e.rc.AddFrame(ftype, 8*len(payload))
		if e.cfg.SliceQ() {
			e.sliceBuf = e.sliceBuf[:0]
			for i := range e.spans {
				e.sliceBuf = append(e.sliceBuf, 8*e.spans[i].Size)
			}
			e.rc.AddSlices(e.sliceBuf)
		}
	}
	if e.tap != nil {
		e.cfg.MotionTap(src.PTS+e.ptsBase, e.tap)
		e.tap = nil
	}
	return container.Packet{Type: ftype, DisplayIndex: src.PTS, Payload: payload}
}

// encode codes one slice: the macroblock rows [span.Row, span.Row+span.Rows)
// with all prediction state starting from the slice-boundary reset.
//
// Each row is coded by its own rowEnc into its own bitstream; the row
// streams are concatenated bit-exactly afterwards, so the slice bytes
// are those of a single raster-order pass regardless of schedule. With
// cfg.Wavefront set and a runner installed, the rows run concurrently in
// wavefront dependency order — which is exactly the order the EPZS
// predictor reads (left, above, above-right) require.
func (s *sliceEnc) encode(src, recon *frame.Frame, ftype container.FrameType, span codec.SliceSpan, idx int) {
	cols := s.e.cfg.MBCols()
	// The slice quantizer: the frame q, or the rebalanced per-slice q
	// when rate control is slicing the budget.
	q := int32(s.e.frameQ)
	if s.e.sliceQs != nil {
		q = int32(s.e.sliceQs[idx])
	}
	lambda := lambdaFor(int(q))
	for _, r := range s.rows {
		r.q, r.lambda = q, lambda
	}
	// Row 0 reads a zeroed "row above" (the slice-boundary reset); every
	// later row fully overwrites its write buffer before it is read.
	for i := range s.mvBuf[1] {
		s.mvBuf[1][i] = motion.MV{}
	}
	var run codec.WavefrontRunner
	if s.e.cfg.Wavefront {
		run = s.e.wfRun
	}
	tap := s.e.tap
	codec.RunWavefront(run, span.Rows, cols, func(x, y int) bool {
		r := s.rows[y]
		if x == 0 {
			r.bw.Reset()
			r.resetRowState()
			r.mvRow = s.mvBuf[y%2]
			r.mvAbove = s.mvBuf[(y+1)%2]
		}
		mby := span.Row + y
		switch ftype {
		case container.FrameI:
			r.encodeIntraMB(src, recon, x, mby)
		case container.FrameP:
			r.encodePMB(src, recon, x, mby)
		default:
			r.encodeBMB(src, recon, x, mby)
		}
		if tap != nil {
			// Winning full-pel vector of the macroblock just coded:
			// disjoint cells, safe under any schedule.
			tap.Set(x, mby, r.mvRow[x])
		}
		return true
	})
	s.bw.Reset()
	if s.e.sliceQs != nil {
		// FlagSliceQ layout: the slice body leads with its own q byte.
		s.bw.WriteBits(uint64(q), 8)
	}
	for y := 0; y < span.Rows; y++ {
		s.bw.AppendWriter(s.rows[y].bw)
	}
	s.bw.AlignByte()
}

func (s *rowEnc) resetRowState() {
	s.dcPred = [3]int32{dcPredInit, dcPredInit, dcPredInit}
	s.fwdPred = motion.MV{}
	s.bwdPred = motion.MV{}
}

// encodeIntraMB codes all six blocks of a macroblock in intra mode.
//
//hdvlint:noalloc
func (s *rowEnc) encodeIntraMB(src, recon *frame.Frame, mbx, mby int) {
	px, py := mbx*16, mby*16
	q := s.q
	// Luma blocks Y0..Y3.
	for i := 0; i < 4; i++ {
		off := src.YOrigin + (py+8*(i/2))*src.YStride + px + 8*(i%2)
		roff := recon.YOrigin + (py+8*(i/2))*recon.YStride + px + 8*(i%2)
		s.intraBlock(src.Y, off, src.YStride, recon.Y, roff, recon.YStride, q, 0)
	}
	cx, cy := px/2, py/2
	coff := src.COrigin + cy*src.CStride + cx
	croff := recon.COrigin + cy*recon.CStride + cx
	s.intraBlock(src.Cb, coff, src.CStride, recon.Cb, croff, recon.CStride, q, 1)
	s.intraBlock(src.Cr, coff, src.CStride, recon.Cr, croff, recon.CStride, q, 2)
	s.mvRow[mbx] = motion.MV{}
}

// intraBlock transforms, quantizes, writes and reconstructs one 8×8 intra
// block. comp selects the DC predictor (0=Y, 1=Cb, 2=Cr).
//
//hdvlint:noalloc
func (s *rowEnc) intraBlock(plane []byte, off, stride int, rec []byte, roff, rstride int, q int32, comp int) {
	var blk [64]int32
	codec.LoadBlock8(&blk, plane, off, stride)
	dct.Forward8(&blk)
	quant.Mpeg2QuantIntra(&blk, q)

	entropy.WriteSE(s.bw, blk[0]-s.dcPred[comp])
	s.dcPred[comp] = blk[0]
	writeRunLevels(s.bw, &blk, 1, eob8)

	quant.Mpeg2DequantIntra(&blk, q)
	dct.Inverse8(&blk)
	codec.Store8Clip(rec, roff, rstride, &blk)
}

// writeRunLevels codes the zigzag run/level pairs from scan position start,
// terminated by the eob marker.
func writeRunLevels(bw *bitstream.Writer, blk *[64]int32, start int, eob uint32) {
	run := uint32(0)
	for i := start; i < 64; i++ {
		v := blk[dct.Zigzag8[i]]
		if v == 0 {
			run++
			continue
		}
		entropy.WriteUE(bw, run)
		entropy.WriteSE(bw, v)
		run = 0
	}
	entropy.WriteUE(bw, eob)
}

// sadMB computes SAD between the current 16×16 luma block and a prediction
// buffer using the configured kernel set.
//
//hdvlint:noalloc
func (s *rowEnc) sadMB(src *frame.Frame, px, py int, pred []byte) int {
	off := src.YOrigin + py*src.YStride + px
	if s.e.cfg.Kernels == kernel.SWAR {
		return swar.SADBlock(src.Y[off:], src.YStride, pred, 16, 16, 16)
	}
	return codec.SADBlockBytes(src.Y, off, src.YStride, pred, 0, 16, 16, 16)
}

// intraCostMB estimates the intra coding cost of a macroblock as the mean
// absolute deviation from the block mean (plus a fixed mode bias).
//
//hdvlint:noalloc
func intraCostMB(src *frame.Frame, px, py int) int {
	off := src.YOrigin + py*src.YStride + px
	sum := 0
	for r := 0; r < 16; r++ {
		sum += swar.SumRow(src.Y[off+r*src.YStride:], 16)
	}
	mean := byte(sum / 256)
	cost := 0
	for r := 0; r < 16; r++ {
		row := src.Y[off+r*src.YStride:]
		for c := 0; c < 16; c++ {
			d := int(row[c]) - int(mean)
			if d < 0 {
				d = -d
			}
			cost += d
		}
	}
	return cost + 512 // intra mode bias
}

// setupEstimator points the shared estimator at the current luma block.
func (s *rowEnc) setupEstimator(est *motion.Estimator, src, ref *frame.Frame, px, py int, predFull motion.MV) {
	est.Kern = s.e.cfg.Kernels
	est.Cur = src.Y
	est.CurOff = src.YOrigin + py*src.YStride + px
	est.CurStride = src.YStride
	est.Ref = ref.Y
	est.RefOrigin = ref.YOrigin
	est.RefStride = ref.YStride
	est.PosX, est.PosY = px, py
	est.W, est.H = 16, 16
	est.Lambda = s.lambda
	est.Pred = predFull
	est.Window(s.e.cfg.SearchRange, s.e.cfg.Width, s.e.cfg.Height, codec.RefPad)
}

// searchLuma runs EPZS + half-pel refinement against ref and returns the
// best half-pel MV, its SAD, and fills pred with the winning prediction.
//
// Hot-path shape: the full-pel stage threads its best-so-far cost into
// the SAD kernel (motion.Estimator.CostMax inside EPZS), the full-pel
// baseline SADs directly against the padded reference (no copy-then-SAD),
// and the eight half-pel candidates score straight against the
// reference's precomputed bilinear half planes with early termination —
// no per-candidate interpolation. Every comparison is the same strict
// `sad < best` as the per-block path, so decisions and bitstream bytes
// are unchanged (pinned by the root equivalence matrix).
func (s *rowEnc) searchLuma(src, ref *frame.Frame, px, py, mbx int, predHalf motion.MV, pred []byte) (motion.MV, int) {
	var est motion.Estimator
	predFull := motion.MV{X: predHalf.X >> 1, Y: predHalf.Y >> 1}
	s.setupEstimator(&est, src, ref, px, py, predFull)

	preds := s.epzsPreds[:0]
	if mbx > 0 {
		preds = append(preds, s.mvRow[mbx-1])
	}
	preds = append(preds, s.mvAbove[mbx])
	if mbx+1 < len(s.mvAbove) {
		preds = append(preds, s.mvAbove[mbx+1])
	}
	if h := s.e.hint; h != nil {
		// Cross-rung seed: the full-resolution rung's vector for this
		// macroblock, scaled to our geometry. Near-optimal, so the
		// early-termination threshold usually fires almost immediately.
		preds = append(preds, h.Sample(mbx, py/16, s.e.cfg.Width, s.e.cfg.Height))
	}
	exitT := 2 * int(s.q) * 16
	if s.e.hint != nil {
		// A trusted cross-rung seed is in the candidate list, so accept a
		// looser match without the diamond walk (EPZS's adaptive-threshold
		// move); the ladder PSNR guard bounds the quality cost.
		exitT *= 4
	}
	res := est.EPZS(preds, exitT)

	// Half-pel refinement around the full-pel winner, scored against the
	// bilinear half planes.
	bestMV := motion.MV{X: res.MV.X * 2, Y: res.MV.Y * 2}
	bestSAD := res.Cost - est.MVCost(int(res.MV.X), int(res.MV.Y))
	for dy := -1; dy <= 1; dy++ {
		for dx := -1; dx <= 1; dx++ {
			if dx == 0 && dy == 0 {
				continue
			}
			hx := int(res.MV.X)*2 + dx
			hy := int(res.MV.Y)*2 + dy
			ix, fx := splitHalf(hx)
			iy, fy := splitHalf(hy)
			est.Ref = interp.BilinPlaneFor(ref, fx, fy)
			if sad := est.SADMax(ix, iy, bestSAD); sad < bestSAD {
				bestSAD = sad
				bestMV = motion.MV{X: int16(hx), Y: int16(hy)}
			}
		}
	}

	// Materialize only the winning prediction, straight from its plane.
	ix, fx := splitHalf(int(bestMV.X))
	iy, fy := splitHalf(int(bestMV.Y))
	so := ref.YOrigin + (py+iy)*ref.YStride + px + ix
	swar.CopyBlock(pred, 16, interp.BilinPlaneFor(ref, fx, fy)[so:], ref.YStride, 16, 16)
	return bestMV, bestSAD
}

// predictChroma fills the chroma prediction for a half-pel luma MV.
func predictChroma(ref *frame.Frame, px, py int, mv motion.MV, cb, cr []byte, k kernel.Set) {
	cvx := chromaMV(int(mv.X))
	cvy := chromaMV(int(mv.Y))
	ix, fx := splitHalf(cvx)
	iy, fy := splitHalf(cvy)
	cx, cy := px/2, py/2
	so := ref.COrigin + (cy+iy)*ref.CStride + cx + ix
	interp.HalfPel(cb, 8, ref.Cb[so:], ref.CStride, 8, 8, fx, fy, k)
	interp.HalfPel(cr, 8, ref.Cr[so:], ref.CStride, 8, 8, fx, fy, k)
}

// codeResidualMB writes CBP and residual blocks for an inter MB, using the
// prediction in s.pred (y/cb/cr), and reconstructs into recon.
// Returns the CBP.
//
//hdvlint:noalloc
func (s *rowEnc) codeResidualMB(src, recon *frame.Frame, px, py int) int {
	q := s.q
	// First pass: find CBP.
	var blks [6][64]int32
	cbp := 0
	for i := 0; i < 4; i++ {
		co := src.YOrigin + (py+8*(i/2))*src.YStride + px + 8*(i%2)
		po := 8*(i/2)*16 + 8*(i%2)
		codec.Residual8(&blks[i], src.Y, co, src.YStride, s.pred.y[:], po, 16, s.e.cfg.Kernels)
		dct.Forward8(&blks[i])
		if quant.Mpeg2QuantInter(&blks[i], q) > 0 {
			cbp |= 1 << (5 - i)
		}
	}
	cx, cy := px/2, py/2
	co := src.COrigin + cy*src.CStride + cx
	codec.Residual8(&blks[4], src.Cb, co, src.CStride, s.pred.cb[:], 0, 8, s.e.cfg.Kernels)
	dct.Forward8(&blks[4])
	if quant.Mpeg2QuantInter(&blks[4], q) > 0 {
		cbp |= 1 << 1
	}
	codec.Residual8(&blks[5], src.Cr, co, src.CStride, s.pred.cr[:], 0, 8, s.e.cfg.Kernels)
	dct.Forward8(&blks[5])
	if quant.Mpeg2QuantInter(&blks[5], q) > 0 {
		cbp |= 1
	}

	s.bw.WriteBits(uint64(cbp), 6)
	for i := 0; i < 6; i++ {
		if cbp&(1<<(5-i)) != 0 {
			writeRunLevels(s.bw, &blks[i], 0, eob64)
		}
	}

	// Reconstruction.
	for i := 0; i < 4; i++ {
		ro := recon.YOrigin + (py+8*(i/2))*recon.YStride + px + 8*(i%2)
		po := 8*(i/2)*16 + 8*(i%2)
		if cbp&(1<<(5-i)) != 0 {
			quant.Mpeg2DequantInter(&blks[i], q)
			dct.Inverse8(&blks[i])
			codec.Add8Clip(recon.Y, ro, recon.YStride, s.pred.y[:], po, 16, &blks[i], s.e.cfg.Kernels)
		} else {
			codec.Copy8(recon.Y, ro, recon.YStride, s.pred.y[:], po, 16)
		}
	}
	cro := recon.COrigin + cy*recon.CStride + cx
	if cbp&2 != 0 {
		quant.Mpeg2DequantInter(&blks[4], q)
		dct.Inverse8(&blks[4])
		codec.Add8Clip(recon.Cb, cro, recon.CStride, s.pred.cb[:], 0, 8, &blks[4], s.e.cfg.Kernels)
	} else {
		codec.Copy8(recon.Cb, cro, recon.CStride, s.pred.cb[:], 0, 8)
	}
	if cbp&1 != 0 {
		quant.Mpeg2DequantInter(&blks[5], q)
		dct.Inverse8(&blks[5])
		codec.Add8Clip(recon.Cr, cro, recon.CStride, s.pred.cr[:], 0, 8, &blks[5], s.e.cfg.Kernels)
	} else {
		codec.Copy8(recon.Cr, cro, recon.CStride, s.pred.cr[:], 0, 8)
	}
	return cbp
}

// residualWouldBeZero checks cheaply whether the quantized residual of the
// MB would be all zero for the current prediction (used for skip decisions).
func (s *rowEnc) residualWouldBeZero(src *frame.Frame, px, py int) bool {
	q := s.q
	var blk [64]int32
	for i := 0; i < 4; i++ {
		co := src.YOrigin + (py+8*(i/2))*src.YStride + px + 8*(i%2)
		po := 8*(i/2)*16 + 8*(i%2)
		codec.Residual8(&blk, src.Y, co, src.YStride, s.pred.y[:], po, 16, s.e.cfg.Kernels)
		dct.Forward8(&blk)
		if quant.Mpeg2QuantInter(&blk, q) > 0 {
			return false
		}
	}
	cx, cy := px/2, py/2
	co := src.COrigin + cy*src.CStride + cx
	codec.Residual8(&blk, src.Cb, co, src.CStride, s.pred.cb[:], 0, 8, s.e.cfg.Kernels)
	dct.Forward8(&blk)
	if quant.Mpeg2QuantInter(&blk, q) > 0 {
		return false
	}
	codec.Residual8(&blk, src.Cr, co, src.CStride, s.pred.cr[:], 0, 8, s.e.cfg.Kernels)
	dct.Forward8(&blk)
	return quant.Mpeg2QuantInter(&blk, q) == 0
}

// copyPredToRecon writes the current prediction unchanged into recon
// (skip macroblocks).
func (s *rowEnc) copyPredToRecon(recon *frame.Frame, px, py int) {
	for r := 0; r < 16; r++ {
		ro := recon.YOrigin + (py+r)*recon.YStride + px
		copy(recon.Y[ro:ro+16], s.pred.y[r*16:r*16+16])
	}
	cx, cy := px/2, py/2
	for r := 0; r < 8; r++ {
		ro := recon.COrigin + (cy+r)*recon.CStride + cx
		copy(recon.Cb[ro:ro+8], s.pred.cb[r*8:r*8+8])
		copy(recon.Cr[ro:ro+8], s.pred.cr[r*8:r*8+8])
	}
}

// encodePMB codes one macroblock of a P frame.
//
//hdvlint:noalloc
func (s *rowEnc) encodePMB(src, recon *frame.Frame, mbx, mby int) {
	px, py := mbx*16, mby*16
	ref := s.e.lastRef

	mv, interSAD := s.searchLuma(src, ref, px, py, mbx, s.fwdPred, s.pred.y[:])
	intraCost := intraCostMB(src, px, py)

	if intraCost < interSAD {
		entropy.WriteUE(s.bw, pIntra)
		s.encodeIntraMB(src, recon, mbx, mby)
		s.fwdPred = motion.MV{}
		s.mvRow[mbx] = motion.MV{}
		return
	}

	predictChroma(ref, px, py, mv, s.pred.cb[:], s.pred.cr[:], s.e.cfg.Kernels)

	// Skip: zero MV and empty residual.
	if mv == (motion.MV{}) && s.residualWouldBeZero(src, px, py) {
		entropy.WriteUE(s.bw, pSkip)
		s.copyPredToRecon(recon, px, py)
		s.fwdPred = motion.MV{}
		s.mvRow[mbx] = motion.MV{}
		s.dcPred = [3]int32{dcPredInit, dcPredInit, dcPredInit}
		return
	}

	entropy.WriteUE(s.bw, pInter)
	entropy.WriteSE(s.bw, int32(mv.X)-int32(s.fwdPred.X))
	entropy.WriteSE(s.bw, int32(mv.Y)-int32(s.fwdPred.Y))
	s.fwdPred = mv
	s.mvRow[mbx] = motion.MV{X: mv.X >> 1, Y: mv.Y >> 1}
	s.codeResidualMB(src, recon, px, py)
	s.dcPred = [3]int32{dcPredInit, dcPredInit, dcPredInit}
}

// encodeBMB codes one macroblock of a B frame.
//
//hdvlint:noalloc
func (s *rowEnc) encodeBMB(src, recon *frame.Frame, mbx, mby int) {
	px, py := mbx*16, mby*16
	fwdRef, bwdRef := s.e.prevRef, s.e.lastRef

	fwdMV, fwdSAD := s.searchLuma(src, fwdRef, px, py, mbx, s.fwdPred, s.pred.y[:])
	// Keep the forward prediction; search backward into yAlt.
	bwdMV, bwdSAD := s.searchLumaAlt(src, bwdRef, px, py, mbx, s.bwdPred)

	// Bi-directional hypothesis: average of both predictions.
	var bi [256]byte
	copy(bi[:], s.pred.y[:])
	interp.Avg(bi[:], 16, s.pred.yAlt[:], 16, 16, 16, s.e.cfg.Kernels)
	biSAD := s.sadMB(src, px, py, bi[:]) + 2*s.lambda // extra MV cost

	intraCost := intraCostMB(src, px, py)

	mode := bFwd
	best := fwdSAD
	if bwdSAD < best {
		mode, best = bBwd, bwdSAD
	}
	if biSAD < best {
		mode, best = bBi, biSAD
	}
	if intraCost < best {
		entropy.WriteUE(s.bw, bIntra)
		s.encodeIntraMB(src, recon, mbx, mby)
		s.fwdPred = motion.MV{}
		s.bwdPred = motion.MV{}
		s.mvRow[mbx] = motion.MV{}
		return
	}

	// Assemble final prediction into s.pred.
	switch mode {
	case bFwd:
		predictChroma(fwdRef, px, py, fwdMV, s.pred.cb[:], s.pred.cr[:], s.e.cfg.Kernels)
	case bBwd:
		copy(s.pred.y[:], s.pred.yAlt[:])
		predictChroma(bwdRef, px, py, bwdMV, s.pred.cb[:], s.pred.cr[:], s.e.cfg.Kernels)
	case bBi:
		copy(s.pred.y[:], bi[:])
		predictChroma(fwdRef, px, py, fwdMV, s.pred.cb[:], s.pred.cr[:], s.e.cfg.Kernels)
		predictChroma(bwdRef, px, py, bwdMV, s.pred.cbAlt[:], s.pred.crAlt[:], s.e.cfg.Kernels)
		interp.Avg(s.pred.cb[:], 8, s.pred.cbAlt[:], 8, 8, 8, s.e.cfg.Kernels)
		interp.Avg(s.pred.cr[:], 8, s.pred.crAlt[:], 8, 8, 8, s.e.cfg.Kernels)
	}

	// Skip: forward mode with MV equal to the predictor and no residual.
	if mode == bFwd && fwdMV == s.fwdPred && s.residualWouldBeZero(src, px, py) {
		entropy.WriteUE(s.bw, bSkip)
		s.copyPredToRecon(recon, px, py)
		s.mvRow[mbx] = motion.MV{X: fwdMV.X >> 1, Y: fwdMV.Y >> 1}
		s.dcPred = [3]int32{dcPredInit, dcPredInit, dcPredInit}
		return
	}

	entropy.WriteUE(s.bw, uint32(mode))
	if mode == bFwd || mode == bBi {
		entropy.WriteSE(s.bw, int32(fwdMV.X)-int32(s.fwdPred.X))
		entropy.WriteSE(s.bw, int32(fwdMV.Y)-int32(s.fwdPred.Y))
		s.fwdPred = fwdMV
	}
	if mode == bBwd || mode == bBi {
		entropy.WriteSE(s.bw, int32(bwdMV.X)-int32(s.bwdPred.X))
		entropy.WriteSE(s.bw, int32(bwdMV.Y)-int32(s.bwdPred.Y))
		s.bwdPred = bwdMV
	}
	switch mode {
	case bFwd, bBi:
		s.mvRow[mbx] = motion.MV{X: fwdMV.X >> 1, Y: fwdMV.Y >> 1}
	default:
		s.mvRow[mbx] = motion.MV{X: bwdMV.X >> 1, Y: bwdMV.Y >> 1}
	}
	s.codeResidualMB(src, recon, px, py)
	s.dcPred = [3]int32{dcPredInit, dcPredInit, dcPredInit}
}

// searchLumaAlt is searchLuma writing its prediction into pred.yAlt.
func (s *rowEnc) searchLumaAlt(src, ref *frame.Frame, px, py, mbx int, predHalf motion.MV) (motion.MV, int) {
	return s.searchLuma(src, ref, px, py, mbx, predHalf, s.pred.yAlt[:])
}
